// HLS realm code generation (the paper's Section 6 extension) and GMIO
// external interfaces.
#include <gtest/gtest.h>

#include "core/cgsim.hpp"
#include "extractor/codegen_hls.hpp"
#include "extractor/extractor.hpp"
#include "extractor/scanner.hpp"

namespace {

using namespace cgsim;

inline constexpr PortSettings hg_gmio{.io = IoKind::gmio};

COMPUTE_KERNEL(aie, hg_front,
               KernelReadPort<float, hg_gmio> in,
               KernelWritePort<float> mid) {
  while (true) co_await mid.put(co_await in.get() * 0.5f);
}

COMPUTE_KERNEL(hls, hg_filter,
               KernelReadPort<float> mid,
               KernelWritePort<float> filtered) {
  while (true) co_await filtered.put(co_await mid.get() + 1.0f);
}

COMPUTE_KERNEL(hls, hg_pack,
               KernelReadPort<float> filtered,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(static_cast<int>(co_await filtered.get()));
  }
}

constexpr auto hg_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> m, f;
  IoConnector<int> o;
  hg_front(a, m);
  hg_filter(m, f);
  hg_pack(f, o);
  return std::make_tuple(o);
}>;

const char* kProto = R"cpp(
#include "core/cgsim.hpp"

inline constexpr cgsim::PortSettings hg_gmio{.io = cgsim::IoKind::gmio};

COMPUTE_KERNEL(aie, hg_front,
               cgsim::KernelReadPort<float, hg_gmio> in,
               cgsim::KernelWritePort<float> mid) {
  while (true) co_await mid.put(co_await in.get() * 0.5f);
}

COMPUTE_KERNEL(hls, hg_filter,
               cgsim::KernelReadPort<float> mid,
               cgsim::KernelWritePort<float> filtered) {
  while (true) co_await filtered.put(co_await mid.get() + 1.0f);
}

COMPUTE_KERNEL(hls, hg_pack,
               cgsim::KernelReadPort<float> filtered,
               cgsim::KernelWritePort<int> out) {
  while (true) {
    co_await out.put(static_cast<int>(co_await filtered.get()));
  }
}
)cpp";

struct Fixture {
  cgx::GraphDesc desc =
      cgx::GraphDesc::from_view(hg_graph.view(), "hg_graph", "hg.cpp");
  cgx::SourceFile file{"hg.cpp", kProto};
  cgx::ScanResult scanned = cgx::scan(file);
};

TEST(HlsRealm, MixedGraphStillSimulates) {
  std::vector<float> in{2.0f, 4.0f};
  std::vector<int> out;
  hg_graph(in, out);
  EXPECT_EQ(out, (std::vector<int>{2, 3}));  // 2*0.5+1=2, 4*0.5+1=3
}

TEST(HlsRealm, PartitioningSeparatesRealms) {
  Fixture fx;
  EXPECT_EQ(cgx::kernels_in_realm(fx.desc, Realm::aie).size(), 1u);
  EXPECT_EQ(cgx::kernels_in_realm(fx.desc, Realm::hls).size(), 2u);
  // The mid edge crosses aie -> hls.
  int inter = 0;
  for (const auto& e : fx.desc.edges) {
    inter += e.cls == cgx::PortClass::inter_realm ? 1 : 0;
  }
  EXPECT_EQ(inter, 1);
}

TEST(HlsRealm, GeneratesHlsFiles) {
  Fixture fx;
  const auto proj =
      cgx::generate_hls_project(fx.desc, fx.file, fx.scanned);
  EXPECT_TRUE(proj.warnings.empty());
  EXPECT_TRUE(proj.files.contains("hls/hls_kernel_ports.hpp"));
  EXPECT_TRUE(proj.files.contains("hls/hls_kernels.hpp"));
  EXPECT_TRUE(proj.files.contains("hls/hg_filter_hls.cpp"));
  EXPECT_TRUE(proj.files.contains("hls/hg_pack_hls.cpp"));
  EXPECT_TRUE(proj.files.contains("hls/hg_graph_dataflow.cpp"));
}

TEST(HlsRealm, TopFunctionHasAxisInterfaces) {
  Fixture fx;
  const auto proj = cgx::generate_hls_project(fx.desc, fx.file, fx.scanned);
  const std::string& src = proj.files.at("hls/hg_filter_hls.cpp");
  EXPECT_NE(src.find("extern \"C\" void hg_filter_hls("
                     "hls::stream<float>& native_0, "
                     "hls::stream<float>& native_1)"),
            std::string::npos)
      << src;
  EXPECT_NE(src.find("#pragma HLS INTERFACE axis port=native_0"),
            std::string::npos);
  EXPECT_EQ(src.find("co_await"), std::string::npos);
  EXPECT_NE(src.find("filtered.put(mid.get() + 1.0f)"), std::string::npos)
      << src;
}

TEST(HlsRealm, DataflowWrapperWiresIntraRealmEdge) {
  Fixture fx;
  const auto proj = cgx::generate_hls_project(fx.desc, fx.file, fx.scanned);
  const std::string& df = proj.files.at("hls/hg_graph_dataflow.cpp");
  EXPECT_NE(df.find("#pragma HLS DATAFLOW"), std::string::npos);
  // The filtered edge (hls -> hls) becomes an internal stream.
  EXPECT_NE(df.find("static hls::stream<float>"), std::string::npos) << df;
  EXPECT_NE(df.find("hg_filter_hls("), std::string::npos);
  EXPECT_NE(df.find("hg_pack_hls("), std::string::npos);
}

TEST(HlsRealm, DriverMergesBothRealms) {
  Fixture fx;
  cgx::ExtractOptions opts;
  opts.write_files = false;
  const auto rep = cgx::extract_graph(fx.desc, fx.file, opts);
  EXPECT_EQ(rep.aie_kernels, 1);
  EXPECT_EQ(rep.hls_kernels, 2);
  // AIE files and HLS files in one project.
  EXPECT_TRUE(rep.project.files.contains("graph.hpp"));
  EXPECT_TRUE(rep.project.files.contains("hls/hg_graph_dataflow.cpp"));
}

TEST(HlsRealm, SupportHeaderUsesHlsStream) {
  const std::string h = cgx::hls_port_support_header();
  EXPECT_NE(h.find("#include <hls_stream.h>"), std::string::npos);
  EXPECT_NE(h.find("stream_->read()"), std::string::npos);
}

TEST(Gmio, AieGraphUsesGmioPort) {
  Fixture fx;
  const auto proj = cgx::generate_aie_project(fx.desc, fx.file, fx.scanned);
  const std::string& g = proj.files.at("graph.hpp");
  EXPECT_NE(g.find("adf::input_gmio"), std::string::npos) << g;
  EXPECT_NE(g.find("adf::input_gmio::create("), std::string::npos);
}

TEST(Gmio, SettingsMergeRules) {
  const auto ok = try_merge_settings(PortSettings{.io = IoKind::gmio},
                                     PortSettings{});
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.merged.io, IoKind::gmio);
  const auto bad = try_merge_settings(PortSettings{.io = IoKind::gmio},
                                      PortSettings{.io = IoKind::plio});
  EXPECT_FALSE(bad.ok);
}

TEST(Gmio, IoKindNames) {
  EXPECT_EQ(io_kind_name(IoKind::plio), "plio");
  EXPECT_EQ(io_kind_name(IoKind::gmio), "gmio");
}

}  // namespace

// Structural source scanning: kernel expansion ranges, declaration units,
// includes (paper Sections 4.4 and 4.6).
#include <gtest/gtest.h>

#include <algorithm>

#include "extractor/scanner.hpp"

namespace {

using cgx::ScanResult;
using cgx::SourceFile;

const char* kSample = R"cpp(
#include <vector>
#include "core/cgsim.hpp"

using namespace cgsim;

constexpr float kScale = 2.5f;

struct Sample {
  float v;
};

float helper(float x) { return x * kScale; }

COMPUTE_KERNEL(aie, scaler,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) {
    co_await out.put(helper(co_await in.get()));
  }
}

COMPUTE_KERNEL(noextract, passthru,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get());
}

constexpr auto g = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> b, c;
  scaler(a, b);
  passthru(b, c);
  return std::make_tuple(c);
}>;

CGSIM_EXTRACTABLE(g);
)cpp";

SourceFile sample_file() { return SourceFile{"sample.cpp", kSample}; }

TEST(Scanner, FindsBothKernels) {
  const SourceFile f = sample_file();
  const ScanResult s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 2u);
  EXPECT_EQ(s.kernels[0].name, "scaler");
  EXPECT_EQ(s.kernels[0].realm, "aie");
  EXPECT_EQ(s.kernels[1].name, "passthru");
  EXPECT_EQ(s.kernels[1].realm, "noextract");
}

TEST(Scanner, KernelExpansionRangeCoversMacroThroughBody) {
  const SourceFile f = sample_file();
  const ScanResult s = cgx::scan(f);
  const auto* k = cgx::find_kernel(s, "scaler");
  ASSERT_NE(k, nullptr);
  const std::string_view full = f.text(k->full_range);
  EXPECT_TRUE(full.starts_with("COMPUTE_KERNEL"));
  EXPECT_TRUE(full.ends_with("}"));
  EXPECT_NE(full.find("co_await out.put"), std::string_view::npos);
}

TEST(Scanner, KernelParamsRange) {
  const SourceFile f = sample_file();
  const ScanResult s = cgx::scan(f);
  const auto* k = cgx::find_kernel(s, "scaler");
  ASSERT_NE(k, nullptr);
  const std::string_view params = f.text(k->params_range);
  EXPECT_NE(params.find("KernelReadPort<float> in"), std::string_view::npos);
  EXPECT_NE(params.find("KernelWritePort<float> out"),
            std::string_view::npos);
  EXPECT_EQ(params.find("scaler"), std::string_view::npos);
}

TEST(Scanner, KernelBodyRangeIsBraced) {
  const SourceFile f = sample_file();
  const ScanResult s = cgx::scan(f);
  const auto* k = cgx::find_kernel(s, "passthru");
  ASSERT_NE(k, nullptr);
  const std::string_view body = f.text(k->body_range);
  EXPECT_TRUE(body.starts_with("{"));
  EXPECT_TRUE(body.ends_with("}"));
}

TEST(Scanner, FindsIncludes) {
  const ScanResult s = cgx::scan(sample_file());
  ASSERT_EQ(s.includes.size(), 2u);
  EXPECT_EQ(s.includes[0].header, "vector");
  EXPECT_TRUE(s.includes[0].angled);
  EXPECT_EQ(s.includes[1].header, "core/cgsim.hpp");
  EXPECT_FALSE(s.includes[1].angled);
}

TEST(Scanner, DeclUnitsCoverHelpers) {
  const ScanResult s = cgx::scan(sample_file());
  auto declares = [&](std::string_view name) {
    return std::any_of(s.decls.begin(), s.decls.end(), [&](const auto& d) {
      return std::find(d.declared.begin(), d.declared.end(), name) !=
             d.declared.end();
    });
  };
  EXPECT_TRUE(declares("kScale"));
  EXPECT_TRUE(declares("Sample"));
  EXPECT_TRUE(declares("helper"));
}

TEST(Scanner, HelperReferencesItsDependencies) {
  const ScanResult s = cgx::scan(sample_file());
  const cgx::DeclUnit* helper = nullptr;
  for (const auto& d : s.decls) {
    if (std::find(d.declared.begin(), d.declared.end(), "helper") !=
        d.declared.end()) {
      helper = &d;
    }
  }
  ASSERT_NE(helper, nullptr);
  EXPECT_NE(std::find(helper->referenced.begin(), helper->referenced.end(),
                      "kScale"),
            helper->referenced.end());
}

TEST(Scanner, KernelsAreNotDeclUnits) {
  const SourceFile f = sample_file();
  const ScanResult s = cgx::scan(f);
  for (const auto& d : s.decls) {
    const std::string_view text = f.text(d.range);
    EXPECT_EQ(text.find("COMPUTE_KERNEL"), std::string_view::npos)
        << "kernel leaked into decl unit: " << text.substr(0, 40);
  }
}

TEST(Scanner, NamespaceBlocksAreScannedPerDeclaration) {
  const char* src = R"cpp(
namespace util {
struct Point { int x, y; };
int manhattan(Point p) { return p.x + p.y; }
}  // namespace util
)cpp";
  const SourceFile f{"ns.cpp", src};
  const ScanResult s = cgx::scan(f);
  ASSERT_EQ(s.decls.size(), 2u);
  EXPECT_EQ(s.decls[0].namespace_prefix, "util::");
  EXPECT_EQ(s.decls[0].declared, (std::vector<std::string>{"Point"}));
  EXPECT_EQ(s.decls[1].namespace_prefix, "util::");
  EXPECT_EQ(s.decls[1].declared, (std::vector<std::string>{"manhattan"}));
}

TEST(Scanner, NestedNamespacesCompose) {
  const char* src = R"cpp(
namespace a::b {
namespace c {
int deep() { return 1; }
}
int shallow() { return 2; }
}
)cpp";
  const SourceFile f{"ns2.cpp", src};
  const ScanResult s = cgx::scan(f);
  ASSERT_EQ(s.decls.size(), 2u);
  EXPECT_EQ(s.decls[0].namespace_prefix, "a::b::c::");
  EXPECT_EQ(s.decls[1].namespace_prefix, "a::b::");
}

TEST(Scanner, KernelNamespacePrefixAssigned) {
  const char* src = R"cpp(
namespace apps::demo {
COMPUTE_KERNEL(aie, nsk,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get());
}
}
)cpp";
  const SourceFile f{"nsk.cpp", src};
  const ScanResult s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  EXPECT_EQ(s.kernels[0].namespace_prefix, "apps::demo::");
}

TEST(Scanner, MalformedKernelMissingBodyIsSkipped) {
  const SourceFile f{"bad.cpp", "COMPUTE_KERNEL(aie, broken, int x);"};
  const ScanResult s = cgx::scan(f);
  EXPECT_TRUE(s.kernels.empty());
}

TEST(Scanner, FindKernelByName) {
  const ScanResult s = cgx::scan(sample_file());
  EXPECT_NE(cgx::find_kernel(s, "scaler"), nullptr);
  EXPECT_EQ(cgx::find_kernel(s, "nonexistent"), nullptr);
}

TEST(Scanner, NestedBracesInKernelBody) {
  const char* src = R"cpp(
COMPUTE_KERNEL(aie, nested,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) {
    int v = co_await in.get();
    if (v > 0) {
      for (int i = 0; i < v; ++i) { v += i; }
    }
    co_await out.put(v);
  }
}
)cpp";
  const SourceFile f{"nested.cpp", src};
  const ScanResult s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const std::string_view body = f.text(s.kernels[0].body_range);
  EXPECT_TRUE(body.ends_with("}"));
  EXPECT_NE(body.find("v += i"), std::string_view::npos);
}

TEST(SourceFileTest, LineMapping) {
  const SourceFile f{"x.cpp", "a\nbb\nccc\n"};
  EXPECT_EQ(f.loc(0).line, 1);
  EXPECT_EQ(f.loc(2).line, 2);
  EXPECT_EQ(f.loc(2).column, 1);
  EXPECT_EQ(f.loc(3).column, 2);
  EXPECT_EQ(f.loc(5).line, 3);
}

}  // namespace

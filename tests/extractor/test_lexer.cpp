// C++ lexer tests (extractor substrate).
#include <gtest/gtest.h>

#include "extractor/lexer.hpp"

namespace {

using cgx::lex;
using cgx::TokKind;

std::vector<cgx::Token> code_tokens(std::string_view s) {
  auto toks = lex(s);
  std::erase_if(toks, [](const cgx::Token& t) {
    return t.kind == TokKind::end_of_file;
  });
  return toks;
}

TEST(Lexer, IdentifiersAndPunct) {
  const std::string src = "int foo = bar(1, 2);";
  const auto toks = code_tokens(src);
  ASSERT_EQ(toks.size(), 10u);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].kind, TokKind::identifier);
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[2].kind, TokKind::punct);
  EXPECT_EQ(toks[4].text, "(");
  EXPECT_EQ(toks[5].kind, TokKind::number);
}

TEST(Lexer, OffsetsIndexOriginalText) {
  const std::string src = "ab + cd";
  const auto toks = code_tokens(src);
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 3u);
  EXPECT_EQ(toks[2].offset, 5u);
  EXPECT_EQ(src.substr(toks[2].offset, toks[2].text.size()), "cd");
}

TEST(Lexer, MultiCharPunctuatorsMaximalMunch) {
  const auto toks = code_tokens("a <<= b >> c :: d -> e <=> f");
  EXPECT_EQ(toks[1].text, "<<=");
  EXPECT_EQ(toks[3].text, ">>");
  EXPECT_EQ(toks[5].text, "::");
  EXPECT_EQ(toks[7].text, "->");
  EXPECT_EQ(toks[9].text, "<=>");
}

TEST(Lexer, LineComment) {
  const auto toks = code_tokens("x // trailing comment\ny");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokKind::comment);
  EXPECT_EQ(toks[1].text, "// trailing comment");
  EXPECT_EQ(toks[2].text, "y");
}

TEST(Lexer, BlockComment) {
  const auto toks = code_tokens("x /* multi\nline */ y");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[1].kind, TokKind::comment);
  EXPECT_EQ(toks[2].text, "y");
}

TEST(Lexer, StringsWithEscapes) {
  const auto toks = code_tokens(R"(f("a\"b", 'c'))");
  EXPECT_EQ(toks[2].kind, TokKind::string_lit);
  EXPECT_EQ(toks[2].text, R"("a\"b")");
  EXPECT_EQ(toks[4].kind, TokKind::char_lit);
}

TEST(Lexer, RawStrings) {
  const std::string src = "auto s = R\"xy(content )\" here)xy\"; int z;";
  const auto toks = code_tokens(src);
  bool found = false;
  for (const auto& t : toks) {
    if (t.kind == TokKind::string_lit) {
      EXPECT_EQ(t.text, "R\"xy(content )\" here)xy\"");
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(toks.back().text, ";");
}

TEST(Lexer, PreprocessorDirectiveIsOneToken) {
  const auto toks = code_tokens("#include <vector>\nint x;");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].kind, TokKind::preprocessor);
  EXPECT_EQ(toks[0].text, "#include <vector>");
  EXPECT_EQ(toks[1].text, "int");
}

TEST(Lexer, PreprocessorContinuationLines) {
  const auto toks = code_tokens("#define M(a) \\\n  (a + 1)\nint x;");
  EXPECT_EQ(toks[0].kind, TokKind::preprocessor);
  EXPECT_NE(toks[0].text.find("(a + 1)"), std::string_view::npos);
  EXPECT_EQ(toks[1].text, "int");
}

TEST(Lexer, HashInMiddleOfLineIsNotPreprocessor) {
  const auto toks = code_tokens("int a; # not directive");
  // '#' after code on the same line lexes as punctuation.
  bool saw_pp = false;
  for (const auto& t : toks) saw_pp |= t.kind == TokKind::preprocessor;
  EXPECT_FALSE(saw_pp);
}

TEST(Lexer, NumbersWithSuffixesAndExponents) {
  const auto toks = code_tokens("1.5e-3f 0x1Fu 1'000'000 2.0");
  ASSERT_EQ(toks.size(), 4u);
  for (const auto& t : toks) EXPECT_EQ(t.kind, TokKind::number);
  EXPECT_EQ(toks[0].text, "1.5e-3f");
  EXPECT_EQ(toks[2].text, "1'000'000");
}

TEST(Lexer, CoAwaitIsSingleIdentifier) {
  const auto toks = code_tokens("co_await port.get();");
  EXPECT_EQ(toks[0].text, "co_await");
  EXPECT_EQ(toks[0].kind, TokKind::identifier);
}

TEST(Lexer, EmptyInput) {
  const auto toks = lex(std::string_view{""});
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::end_of_file);
}

TEST(Lexer, UnterminatedStringDoesNotCrash) {
  const auto toks = code_tokens("\"never closed");
  ASSERT_EQ(toks.size(), 1u);
  EXPECT_EQ(toks[0].kind, TokKind::string_lit);
}

}  // namespace

// AIE code generation (paper Sections 4.5 and 4.7): kernel_decls.hpp,
// graph.hpp, per-kernel sources with adapter thunks.
#include <gtest/gtest.h>

#include "core/cgsim.hpp"
#include "extractor/codegen_aie.hpp"
#include "extractor/scanner.hpp"

namespace {

using namespace cgsim;

inline constexpr PortSettings cg_win{.beat_bits = 0,
                                     .rtp = false,
                                     .buffer = BufferMode::pingpong,
                                     .window_size = 16};
inline constexpr PortSettings cg_rtp{.rtp = true};

COMPUTE_KERNEL(aie, cg_stage1,
               KernelReadPort<float> in,
               KernelWritePort<float, cg_win> mid) {
  while (true) co_await mid.put(co_await in.get());
}

COMPUTE_KERNEL(aie, cg_stage2,
               KernelReadPort<float, cg_win> mid,
               KernelReadPort<int, cg_rtp> factor,
               KernelWritePort<float> out) {
  while (true) {
    co_await out.put(co_await mid.get() *
                     static_cast<float>(co_await factor.get()));
  }
}

constexpr auto cg_graph = make_compute_graph_v<[](IoConnector<float> a,
                                                  IoConnector<int> f) {
  a.attr("plio_name", "DataIn0");
  IoConnector<float> m, o;
  cg_stage1(a, m);
  cg_stage2(m, f, o);
  o.attr("plio_name", "DataOut0");
  return std::make_tuple(o);
}>;

// The prototype source text the scanner sees (kernels as written above).
const char* kProtoSrc = R"cpp(
#include "core/cgsim.hpp"

inline constexpr cgsim::PortSettings cg_win{
    .beat_bits = 0, .rtp = false,
    .buffer = cgsim::BufferMode::pingpong, .window_size = 16};
inline constexpr cgsim::PortSettings cg_rtp{.rtp = true};

COMPUTE_KERNEL(aie, cg_stage1,
               cgsim::KernelReadPort<float> in,
               cgsim::KernelWritePort<float, cg_win> mid) {
  while (true) co_await mid.put(co_await in.get());
}

COMPUTE_KERNEL(aie, cg_stage2,
               cgsim::KernelReadPort<float, cg_win> mid,
               cgsim::KernelReadPort<int, cg_rtp> factor,
               cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(co_await mid.get() *
                     static_cast<float>(co_await factor.get()));
  }
}
)cpp";

struct Fixture {
  cgx::GraphDesc desc =
      cgx::GraphDesc::from_view(cg_graph.view(), "cg_graph", "proto.cpp");
  cgx::SourceFile file{"proto.cpp", kProtoSrc};
  cgx::ScanResult scanned = cgx::scan(file);
  cgx::GeneratedProject proj =
      cgx::generate_aie_project(desc, file, scanned);

  [[nodiscard]] const std::string& get(const std::string& name) const {
    auto it = proj.files.find(name);
    EXPECT_NE(it, proj.files.end()) << "missing file " << name;
    static const std::string empty;
    return it == proj.files.end() ? empty : it->second;
  }
};

TEST(CodegenAie, EmitsExpectedFileSet) {
  Fixture fx;
  EXPECT_TRUE(fx.proj.warnings.empty());
  EXPECT_EQ(fx.proj.files.size(), 7u);
  EXPECT_TRUE(fx.proj.files.contains("graph.hpp"));
  EXPECT_TRUE(fx.proj.files.contains("graph.cpp"));
  EXPECT_TRUE(fx.proj.files.contains("Makefile"));
  EXPECT_TRUE(fx.proj.files.contains("kernel_decls.hpp"));
  EXPECT_TRUE(fx.proj.files.contains("aie_kernel_ports.hpp"));
  EXPECT_TRUE(fx.proj.files.contains("cg_stage1.cc"));
  EXPECT_TRUE(fx.proj.files.contains("cg_stage2.cc"));
}

TEST(CodegenAie, MakefileDrivesAiecompiler) {
  Fixture fx;
  const std::string& mk = fx.proj.files.at("Makefile");
  EXPECT_NE(mk.find("aiecompiler --platform=$(PLATFORM)"),
            std::string::npos);
  EXPECT_NE(mk.find("cg_stage1.cc"), std::string::npos);
  EXPECT_NE(mk.find("aiesimulator"), std::string::npos);
  EXPECT_NE(mk.find("x86simulator"), std::string::npos);
}

TEST(CodegenAie, GraphMainInstantiatesGraph) {
  Fixture fx;
  const std::string& m = fx.proj.files.at("graph.cpp");
  EXPECT_NE(m.find("cg_graph_aie the_graph;"), std::string::npos);
  EXPECT_NE(m.find("the_graph.init();"), std::string::npos);
  EXPECT_NE(m.find("the_graph.run("), std::string::npos);
}

TEST(CodegenAie, GraphHppDefinesAdfGraph) {
  Fixture fx;
  const std::string& g = fx.get("graph.hpp");
  EXPECT_NE(g.find("class cg_graph_aie : public adf::graph"),
            std::string::npos);
  EXPECT_NE(g.find("adf::kernel k0;"), std::string::npos);
  EXPECT_NE(g.find("adf::kernel k1;"), std::string::npos);
  EXPECT_NE(g.find("adf::kernel::create(cg_stage1_aie)"), std::string::npos);
  EXPECT_NE(g.find("adf::source(k0) = \"cg_stage1.cc\""), std::string::npos);
}

TEST(CodegenAie, PlioUsesUserAttributes) {
  Fixture fx;
  const std::string& g = fx.get("graph.hpp");
  // Paper Section 3.4: plio_name attributes feed the extractor.
  EXPECT_NE(g.find("adf::input_plio::create(\"DataIn0\""), std::string::npos);
  EXPECT_NE(g.find("adf::output_plio::create(\"DataOut0\""),
            std::string::npos);
}

TEST(CodegenAie, IntraRealmWindowConnection) {
  Fixture fx;
  const std::string& g = fx.get("graph.hpp");
  // The stage1 -> stage2 window edge connects kernels directly (no PLIO).
  EXPECT_NE(g.find("adf::connect<adf::window<4>>(k0.out[0], k1.in[0])"),
            std::string::npos)
      << g;
}

TEST(CodegenAie, RtpBecomesAsyncParameter) {
  Fixture fx;
  const std::string& g = fx.get("graph.hpp");
  EXPECT_NE(g.find("adf::connect<adf::parameter>"), std::string::npos);
  EXPECT_NE(g.find("adf::async(k1.in[1])"), std::string::npos) << g;
}

TEST(CodegenAie, KernelDeclsHasDeclarationsAndThunks) {
  Fixture fx;
  const std::string& d = fx.get("kernel_decls.hpp");
  EXPECT_NE(d.find("void cg_stage1(KernelReadPort<float> in"),
            std::string::npos);
  EXPECT_NE(d.find("void cg_stage1_aie(input_stream<float>* native_0, "
                   "output_window<float>* native_1)"),
            std::string::npos)
      << d;
  // The RTP port becomes a plain scalar thunk parameter.
  EXPECT_NE(d.find("int native_1"), std::string::npos) << d;
  // Simulation headers are blacklisted.
  EXPECT_EQ(d.find("core/cgsim.hpp"), std::string::npos);
}

TEST(CodegenAie, KernelSourceHasTransformedBodyAndThunk) {
  Fixture fx;
  const std::string& s = fx.get("cg_stage2.cc");
  EXPECT_EQ(s.find("co_await"), std::string::npos);
  EXPECT_NE(s.find("out.put(mid.get()"), std::string::npos) << s;
  EXPECT_NE(s.find("void cg_stage2_aie("), std::string::npos);
  EXPECT_NE(s.find("cg_stage2(port_0, port_1, port_2);"), std::string::npos);
  // Thunk constructs the generic ports from native handles.
  EXPECT_NE(s.find("KernelReadPort<float, cg_win> port_0{native_0}"),
            std::string::npos)
      << s;
}

TEST(CodegenAie, CoextractedSettingsConstantsIncluded) {
  Fixture fx;
  const std::string& d = fx.get("kernel_decls.hpp");
  // cg_win / cg_rtp are referenced by kernel signatures and must be copied
  // (with cgsim:: stripped).
  EXPECT_NE(d.find("constexpr PortSettings cg_win"), std::string::npos) << d;
  EXPECT_EQ(d.find("cgsim::PortSettings"), std::string::npos);
}

TEST(CodegenAie, SupportHeaderIsSelfContained) {
  const std::string h = cgx::aie_port_support_header();
  EXPECT_NE(h.find("class KernelReadPort"), std::string::npos);
  EXPECT_NE(h.find("class KernelWritePort"), std::string::npos);
  EXPECT_NE(h.find("#include <adf.h>"), std::string::npos);
  // No cgsim includes: the generated project must build without cgsim.
  EXPECT_EQ(h.find("#include \"core"), std::string::npos);
}

TEST(CodegenAie, MissingKernelSourceWarns) {
  cgx::GraphDesc desc =
      cgx::GraphDesc::from_view(cg_graph.view(), "cg_graph", "proto.cpp");
  cgx::SourceFile empty{"proto.cpp", "int unrelated;"};
  const auto scanned = cgx::scan(empty);
  const auto proj = cgx::generate_aie_project(desc, empty, scanned);
  EXPECT_EQ(proj.warnings.size(), 2u);
}

}  // namespace

// Registry (CGSIM_EXTRACTABLE) and top-level extractor driver tests.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/cgsim.hpp"
#include "extractor/extractor.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, rg_twice,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(2 * co_await in.get());
}

constexpr auto rg_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b;
  rg_twice(a, b);
  return std::make_tuple(b);
}>;

// Registered at static-initialization time, like the paper's attribute.
CGSIM_EXTRACTABLE(rg_graph);

TEST(Registry, MacroRegistersGraphWithNameAndFile) {
  bool found = false;
  for (const cgx::GraphDesc& g : cgx::registry()) {
    if (g.name != "rg_graph") continue;
    found = true;
    EXPECT_NE(g.source_path.find("test_registry_driver.cpp"),
              std::string::npos);
    ASSERT_EQ(g.kernels.size(), 1u);
    EXPECT_EQ(g.kernels[0].name, "rg_twice");
    EXPECT_EQ(g.edges.size(), 2u);
  }
  EXPECT_TRUE(found);
}

TEST(Registry, ProgrammaticRegistration) {
  const std::size_t before = cgx::registry().size();
  cgx::GraphDesc d =
      cgx::GraphDesc::from_view(rg_graph.view(), "prog_graph", "x.cpp");
  cgx::register_graph(std::move(d));
  EXPECT_EQ(cgx::registry().size(), before + 1);
  EXPECT_EQ(cgx::registry().back().name, "prog_graph");
}

TEST(Driver, ExtractAllProcessesTheRegistry) {
  // rg_graph's source path is this very test file, which the driver loads
  // from disk and scans -- the full self-ingesting flow.
  cgx::ExtractOptions opts;
  opts.write_files = false;
  const auto reports = cgx::extract_all(opts);
  const cgx::ExtractReport* mine = nullptr;
  for (const auto& r : reports) {
    if (r.graph_name == "rg_graph") mine = &r;
  }
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->aie_kernels, 1);
  EXPECT_TRUE(mine->project.warnings.empty());
  const std::string& src = mine->project.files.at("rg_twice.cc");
  EXPECT_NE(src.find("void rg_twice(KernelReadPort<int> in"),
            std::string::npos)
      << src;
  EXPECT_EQ(src.find("co_await"), std::string::npos);
}

TEST(Driver, WriteProjectCreatesNestedDirectories) {
  cgx::GeneratedProject p;
  p.files["graph.hpp"] = "// top\n";
  p.files["hls/nested.cpp"] = "// nested\n";
  const auto dir =
      std::filesystem::temp_directory_path() / "cgx_write_project_test";
  std::filesystem::remove_all(dir);
  cgx::write_project(p, dir.string());
  EXPECT_TRUE(std::filesystem::exists(dir / "graph.hpp"));
  EXPECT_TRUE(std::filesystem::exists(dir / "hls" / "nested.cpp"));
  std::ifstream f{dir / "hls" / "nested.cpp"};
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "// nested");
  std::filesystem::remove_all(dir);
}

TEST(Driver, MissingSourceFileThrows) {
  EXPECT_THROW(cgx::SourceFile::load("/nonexistent/path/file.cpp"),
               std::runtime_error);
}

}  // namespace

namespace {

using namespace cgsim;

// A second extractable graph sharing rg_twice with rg_graph: multi-graph
// files must extract each graph into its own project.
constexpr auto rg_graph2 = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b, c;
  rg_twice(a, b);
  rg_twice(b, c);
  return std::make_tuple(c);
}>;

CGSIM_EXTRACTABLE(rg_graph2);

TEST(Driver, MultipleGraphsPerFileExtractIndependently) {
  cgx::ExtractOptions opts;
  opts.write_files = false;
  const auto reports = cgx::extract_all(opts);
  const cgx::ExtractReport* one = nullptr;
  const cgx::ExtractReport* two = nullptr;
  for (const auto& r : reports) {
    if (r.graph_name == "rg_graph") one = &r;
    if (r.graph_name == "rg_graph2") two = &r;
  }
  ASSERT_NE(one, nullptr);
  ASSERT_NE(two, nullptr);
  EXPECT_EQ(one->aie_kernels, 1);
  EXPECT_EQ(two->aie_kernels, 2);  // two instances of the shared kernel
  // Both projects carry the shared kernel source; the two-instance graph
  // instantiates it twice from one .cc (paper Section 4.4: each *unique*
  // kernel function is processed once).
  EXPECT_TRUE(one->project.files.contains("rg_twice.cc"));
  EXPECT_TRUE(two->project.files.contains("rg_twice.cc"));
  const std::string& g2 = two->project.files.at("graph.hpp");
  EXPECT_NE(g2.find("adf::kernel k0"), std::string::npos);
  EXPECT_NE(g2.find("adf::kernel k1"), std::string::npos);
}

}  // namespace

namespace {

TEST(Manifest, EmittedAndStructurallySound) {
  cgx::ExtractOptions opts;
  opts.write_files = false;
  const auto reports = cgx::extract_all(opts);
  const cgx::ExtractReport* mine = nullptr;
  for (const auto& r : reports) {
    if (r.graph_name == "rg_graph") mine = &r;
  }
  ASSERT_NE(mine, nullptr);
  ASSERT_TRUE(mine->project.files.contains("graph.json"));
  const std::string& j = mine->project.files.at("graph.json");
  EXPECT_NE(j.find("\"graph\": \"rg_graph\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"rg_twice\""), std::string::npos);
  EXPECT_NE(j.find("\"realm\": \"aie\""), std::string::npos);
  EXPECT_NE(j.find("\"class\": \"global\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  long braces = 0, brackets = 0;
  bool in_str = false;
  for (std::size_t i = 0; i < j.size(); ++i) {
    const char c = j[i];
    if (c == '"' && (i == 0 || j[i - 1] != '\\')) in_str = !in_str;
    if (in_str) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

}  // namespace

// Graph ingestion (paper Section 4.2) and realm partitioning (Section 4.3).
#include <gtest/gtest.h>

#include "core/cgsim.hpp"
#include "extractor/graph_desc.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, gd_a,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get());
}

COMPUTE_KERNEL(aie, gd_b,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get());
}

COMPUTE_KERNEL(noextract, gd_host,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get());
}

// in -> gd_a -> (intra) -> gd_b -> (inter) -> gd_host -> out
constexpr auto gd_graph = make_compute_graph_v<[](IoConnector<float> a) {
  a.attr("plio_name", "In0");
  IoConnector<float> x, y, z;
  gd_a(a, x);
  gd_b(x, y);
  gd_host(y, z);
  return std::make_tuple(z);
}>;

cgx::GraphDesc make_desc() {
  return cgx::GraphDesc::from_view(gd_graph.view(), "gd_graph", "gd.cpp");
}

TEST(GraphDesc, DeserializesKernels) {
  const auto d = make_desc();
  ASSERT_EQ(d.kernels.size(), 3u);
  EXPECT_EQ(d.kernels[0].name, "gd_a");
  EXPECT_EQ(d.kernels[0].realm, Realm::aie);
  EXPECT_EQ(d.kernels[2].name, "gd_host");
  EXPECT_EQ(d.kernels[2].realm, Realm::noextract);
  EXPECT_EQ(d.kernels[0].ports.size(), 2u);
  EXPECT_TRUE(d.kernels[0].ports[0].is_read);
  EXPECT_FALSE(d.kernels[0].ports[1].is_read);
}

TEST(GraphDesc, TypeInformationRecoveredFromVTables) {
  const auto d = make_desc();
  for (const auto& e : d.edges) {
    EXPECT_EQ(e.type_name, "float");
    EXPECT_EQ(e.elem_size, sizeof(float));
  }
}

TEST(GraphDesc, AttributesCarriedThrough) {
  const auto d = make_desc();
  const auto& in_edge =
      d.edges[static_cast<std::size_t>(d.input_edges[0])];
  EXPECT_EQ(in_edge.attr_or("plio_name", "?"), "In0");
  EXPECT_EQ(in_edge.attr_or("missing", "fallback"), "fallback");
}

TEST(GraphDesc, PortClassification) {
  // Paper Section 4.3: intra-realm, inter-realm, global.
  const auto d = make_desc();
  int intra = 0, inter = 0, global = 0;
  for (const auto& e : d.edges) {
    switch (e.cls) {
      case cgx::PortClass::intra_realm: ++intra; break;
      case cgx::PortClass::inter_realm: ++inter; break;
      case cgx::PortClass::global_io: ++global; break;
    }
  }
  EXPECT_EQ(global, 2);  // graph input and output
  EXPECT_EQ(intra, 1);   // gd_a -> gd_b (both AIE)
  EXPECT_EQ(inter, 1);   // gd_b -> gd_host (AIE -> noextract)
}

TEST(GraphDesc, IsGlobalEdge) {
  const auto d = make_desc();
  EXPECT_TRUE(d.is_global_edge(d.input_edges[0]));
  EXPECT_TRUE(d.is_global_edge(d.output_edges[0]));
}

TEST(GraphDesc, KernelsInRealm) {
  const auto d = make_desc();
  const auto aie = cgx::kernels_in_realm(d, Realm::aie);
  ASSERT_EQ(aie.size(), 2u);
  EXPECT_EQ(aie[0]->name, "gd_a");
  const auto host = cgx::kernels_in_realm(d, Realm::noextract);
  ASSERT_EQ(host.size(), 1u);
  EXPECT_EQ(host[0]->name, "gd_host");
}

TEST(GraphDesc, RealmsOf) {
  const auto d = make_desc();
  const auto realms = cgx::realms_of(d);
  ASSERT_EQ(realms.size(), 2u);
  EXPECT_EQ(realms[0], Realm::aie);
  EXPECT_EQ(realms[1], Realm::noextract);
}

TEST(GraphDesc, PortClassNames) {
  EXPECT_EQ(cgx::port_class_name(cgx::PortClass::intra_realm), "intra-realm");
  EXPECT_EQ(cgx::port_class_name(cgx::PortClass::inter_realm), "inter-realm");
  EXPECT_EQ(cgx::port_class_name(cgx::PortClass::global_io), "global");
}

}  // namespace

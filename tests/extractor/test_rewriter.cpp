// Standard kernel transformations (paper Section 4.4): co_await removal,
// declaration/definition splitting, namespace respelling.
#include <gtest/gtest.h>

#include "extractor/rewriter.hpp"
#include "extractor/scanner.hpp"

namespace {

using cgx::SourceFile;

TEST(Rewriter, StripCoAwaitSimple) {
  EXPECT_EQ(cgx::strip_co_await("co_await in.get();"), "in.get();");
  EXPECT_EQ(cgx::strip_co_await("x = co_await a.get() + co_await b.get();"),
            "x = a.get() + b.get();");
}

TEST(Rewriter, StripCoAwaitDoesNotTouchLookalikes) {
  // Identifier boundaries respected: no substring damage.
  EXPECT_EQ(cgx::strip_co_await("int co_awaited = my_co_await;"),
            "int co_awaited = my_co_await;");
}

TEST(Rewriter, StripCoAwaitIgnoresStringsAndComments) {
  EXPECT_EQ(cgx::strip_co_await("s = \"co_await\"; // co_await note"),
            "s = \"co_await\"; // co_await note");
}

TEST(Rewriter, StripCgsimNamespace) {
  EXPECT_EQ(cgx::strip_cgsim_namespace("cgsim::KernelReadPort<float> p"),
            "KernelReadPort<float> p");
  EXPECT_EQ(cgx::strip_cgsim_namespace("::cgsim::KernelWritePort<int> q"),
            "KernelWritePort<int> q");
  EXPECT_EQ(cgx::strip_cgsim_namespace("not_cgsim::thing"),
            "not_cgsim::thing");
}

TEST(Rewriter, CollapseBlankRuns) {
  EXPECT_EQ(cgx::collapse_blank_runs("a\n\n\n\nb"), "a\n\nb");
  EXPECT_EQ(cgx::collapse_blank_runs("a\nb"), "a\nb");
}

const char* kKernelSrc = R"cpp(
COMPUTE_KERNEL(aie, twice,
               cgsim::KernelReadPort<float> in,
               cgsim::KernelWritePort<float> out) {
  while (true) {
    const float v = co_await in.get();
    co_await out.put(2.0f * v);
  }
}
)cpp";

TEST(Rewriter, KernelDeclaration) {
  const SourceFile f{"k.cpp", kKernelSrc};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const std::string decl = cgx::kernel_declaration(f, s.kernels[0]);
  EXPECT_TRUE(decl.starts_with("void twice("));
  EXPECT_TRUE(decl.ends_with(");"));
  EXPECT_NE(decl.find("KernelReadPort<float> in"), std::string::npos);
  // Namespace qualification removed (realm header provides the types).
  EXPECT_EQ(decl.find("cgsim::"), std::string::npos);
  // Declaration has no body.
  EXPECT_EQ(decl.find("while"), std::string::npos);
}

TEST(Rewriter, KernelDefinition) {
  const SourceFile f{"k.cpp", kKernelSrc};
  const auto s = cgx::scan(f);
  const std::string def = cgx::kernel_definition(f, s.kernels[0]);
  EXPECT_TRUE(def.starts_with("void twice("));
  // Body present, co_await gone, blocking calls remain.
  EXPECT_NE(def.find("while (true)"), std::string::npos);
  EXPECT_EQ(def.find("co_await"), std::string::npos);
  EXPECT_NE(def.find("in.get()"), std::string::npos);
  EXPECT_NE(def.find("out.put(2.0f * v)"), std::string::npos);
  EXPECT_EQ(def.find("cgsim::"), std::string::npos);
}

TEST(Rewriter, DeclDefSplitIsConsistent) {
  // Paper: each kernel is processed twice -- the declaration must be a
  // prefix-compatible signature of the definition.
  const SourceFile f{"k.cpp", kKernelSrc};
  const auto s = cgx::scan(f);
  const std::string decl = cgx::kernel_declaration(f, s.kernels[0]);
  const std::string def = cgx::kernel_definition(f, s.kernels[0]);
  const std::string sig = decl.substr(0, decl.size() - 1);  // drop ';'
  EXPECT_EQ(def.substr(0, sig.size()), sig);
}

TEST(Rewriter, SettingsTemplateArgumentsSurvive) {
  const char* src = R"cpp(
COMPUTE_KERNEL(aie, wink,
               cgsim::KernelReadPort<Block, kWindowIo> in,
               cgsim::KernelWritePort<Block, kWindowIo> out) {
  while (true) co_await out.put(co_await in.get());
}
)cpp";
  const SourceFile f{"w.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const std::string decl = cgx::kernel_declaration(f, s.kernels[0]);
  EXPECT_NE(decl.find("KernelReadPort<Block, kWindowIo>"), std::string::npos);
}

}  // namespace

// Extractor robustness: messy-but-legal prototype sources.
#include <gtest/gtest.h>

#include "extractor/coextract.hpp"
#include "extractor/rewriter.hpp"
#include "extractor/scanner.hpp"

namespace {

using cgx::SourceFile;

TEST(EdgeCases, CommentsInsideMacroArguments) {
  const char* src = R"cpp(
COMPUTE_KERNEL(aie /* the array */,
               commented,  // kernel name
               /* first port */ cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out /* last */) {
  while (true) co_await out.put(co_await in.get());
}
)cpp";
  const SourceFile f{"c.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  EXPECT_EQ(s.kernels[0].name, "commented");
  EXPECT_EQ(s.kernels[0].realm, "aie");
  const std::string decl = cgx::kernel_declaration(f, s.kernels[0]);
  EXPECT_NE(decl.find("KernelReadPort<int> in"), std::string::npos);
}

TEST(EdgeCases, CoAwaitInsideStringLiteralsSurvives) {
  const char* src = R"cpp(
const char* kHelp = "call co_await to wait";
COMPUTE_KERNEL(aie, stringy,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) {
    const char* note = "co_await is removed from code, not strings";
    (void)note;
    co_await out.put(co_await in.get());
  }
}
)cpp";
  const SourceFile f{"s.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const std::string def = cgx::kernel_definition(f, s.kernels[0]);
  // The string literal keeps its co_await; the code loses both of them.
  EXPECT_NE(def.find("\"co_await is removed from code, not strings\""),
            std::string::npos);
  EXPECT_NE(def.find("out.put(in.get())"), std::string::npos) << def;
}

TEST(EdgeCases, BracesInsideStringsDoNotConfuseBodyRange) {
  const char* src = R"cpp(
COMPUTE_KERNEL(aie, bracey,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) {
    const char* json = "{ \"key\": { \"nested\": 1 } }";
    (void)json;
    co_await out.put(co_await in.get());
  }
}
int after_kernel = 1;
)cpp";
  const SourceFile f{"b.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const std::string_view body = f.text(s.kernels[0].body_range);
  EXPECT_TRUE(body.ends_with("}"));
  EXPECT_EQ(body.find("after_kernel"), std::string_view::npos);
  // after_kernel is scanned as its own declaration unit.
  bool found = false;
  for (const auto& d : s.decls) {
    for (const auto& n : d.declared) found |= n == "after_kernel";
  }
  EXPECT_TRUE(found);
}

TEST(EdgeCases, PreprocessorConditionalsAreIgnoredStructurally) {
  const char* src = R"cpp(
#ifdef NDEBUG
#define TRACE(x)
#else
#define TRACE(x) log(x)
#endif

int helper() { return 1; }

COMPUTE_KERNEL(aie, condk,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + helper());
}
)cpp";
  const SourceFile f{"p.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const auto co = cgx::coextract(f, s, {&s.kernels[0]});
  ASSERT_EQ(co.decls.size(), 1u);
  EXPECT_EQ(co.decls[0]->declared[0], "helper");
}

TEST(EdgeCases, MultipleKernelsBackToBack) {
  const char* src = R"cpp(
COMPUTE_KERNEL(aie, k1, cgsim::KernelWritePort<int> o) { co_await o.put(1); }
COMPUTE_KERNEL(aie, k2, cgsim::KernelReadPort<int> i,
               cgsim::KernelWritePort<int> o) {
  while (true) co_await o.put(co_await i.get());
}
COMPUTE_KERNEL(noextract, k3, cgsim::KernelReadPort<int> i,
               cgsim::KernelWritePort<int> o) {
  while (true) co_await o.put(co_await i.get());
}
)cpp";
  const SourceFile f{"m.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 3u);
  EXPECT_EQ(s.kernels[0].name, "k1");
  EXPECT_EQ(s.kernels[2].realm, "noextract");
}

TEST(EdgeCases, TrailingSemicolonAfterKernelBody) {
  const char* src = R"cpp(
COMPUTE_KERNEL(aie, semi,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get());
};
int after = 2;
)cpp";
  const SourceFile f{"t.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  bool leaked = false;
  for (const auto& d : s.decls) {
    leaked |= f.text(d.range).find("COMPUTE_KERNEL") != std::string_view::npos;
  }
  EXPECT_FALSE(leaked);
}

TEST(EdgeCases, WindowsLineEndings) {
  const std::string src =
      "COMPUTE_KERNEL(aie, crlf,\r\n"
      "               cgsim::KernelReadPort<int> in,\r\n"
      "               cgsim::KernelWritePort<int> out) {\r\n"
      "  while (true) co_await out.put(co_await in.get());\r\n"
      "}\r\n";
  const SourceFile f{"w.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const std::string def = cgx::kernel_definition(f, s.kernels[0]);
  EXPECT_EQ(def.find("co_await"), std::string::npos);
}

TEST(EdgeCases, DeeplyNestedTemplatesInParams) {
  const char* src = R"cpp(
COMPUTE_KERNEL(aie, nested_tpl,
               cgsim::KernelReadPort<std::array<std::array<int, 4>, 4>> in,
               cgsim::KernelWritePort<int> out) {
  while (true) {
    auto block = co_await in.get();
    co_await out.put(block[0][0]);
  }
}
)cpp";
  const SourceFile f{"n.cpp", src};
  const auto s = cgx::scan(f);
  ASSERT_EQ(s.kernels.size(), 1u);
  const std::string decl = cgx::kernel_declaration(f, s.kernels[0]);
  EXPECT_NE(
      decl.find("KernelReadPort<std::array<std::array<int, 4>, 4>> in"),
      std::string::npos)
      << decl;
}

}  // namespace

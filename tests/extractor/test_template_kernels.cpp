// Templated kernel support (paper Section 6 lists it as future work;
// implemented here): simulation with multiple instantiations and
// extraction with per-instantiation adapter thunks.
#include <gtest/gtest.h>

#include "core/cgsim.hpp"
#include "extractor/codegen_aie.hpp"
#include "extractor/extractor.hpp"
#include "extractor/rewriter.hpp"
#include "extractor/scanner.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL_TEMPLATE(aie, tk_to_float, T,
                        KernelReadPort<T> in,
                        KernelWritePort<float> out) {
  while (true) {
    co_await out.put(static_cast<float>(co_await in.get()));
  }
}

COMPUTE_KERNEL(aie, tk_sum2,
               KernelReadPort<float> a,
               KernelReadPort<float> b,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

constexpr auto tk_graph = make_compute_graph_v<[](IoConnector<int> xi,
                                                  IoConnector<double> xd) {
  IoConnector<float> fi, fd, sum;
  tk_to_float<int>(xi, fi);
  tk_to_float<double>(xd, fd);
  tk_sum2(fi, fd, sum);
  return std::make_tuple(sum);
}>;

TEST(TemplateKernels, InstantiationsCarrySynthesizedNames) {
  const GraphView g = tk_graph.view();
  ASSERT_EQ(g.kernels.size(), 3u);
  EXPECT_EQ(g.kernels[0].name, "tk_to_float<int>");
  EXPECT_EQ(g.kernels[1].name, "tk_to_float<double>");
  EXPECT_EQ(g.kernels[2].name, "tk_sum2");
}

TEST(TemplateKernels, SimulationRunsBothInstantiations) {
  std::vector<int> xi{1, 2, 3};
  std::vector<double> xd{0.5, 0.25, 0.125};
  std::vector<float> out;
  tk_graph(xi, xd, out);
  EXPECT_EQ(out, (std::vector<float>{1.5f, 2.25f, 3.125f}));
}

TEST(TemplateKernels, ThreadedBackendAgrees) {
  std::vector<int> xi{10, 20};
  std::vector<double> xd{1.0, 2.0};
  std::vector<float> coop, thr;
  tk_graph(xi, xd, coop);
  tk_graph.run(RunOptions{.mode = ExecMode::threaded}, xi, xd, thr);
  EXPECT_EQ(coop, thr);
}

// --- extraction ---

const char* kProto = R"cpp(
#include "core/cgsim.hpp"

COMPUTE_KERNEL_TEMPLATE(aie, tk_to_float, T,
                        cgsim::KernelReadPort<T> in,
                        cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(static_cast<float>(co_await in.get()));
  }
}

COMPUTE_KERNEL(aie, tk_sum2,
               cgsim::KernelReadPort<float> a,
               cgsim::KernelReadPort<float> b,
               cgsim::KernelWritePort<float> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}
)cpp";

struct Fixture {
  cgx::GraphDesc desc =
      cgx::GraphDesc::from_view(tk_graph.view(), "tk_graph", "tk.cpp");
  cgx::SourceFile file{"tk.cpp", kProto};
  cgx::ScanResult scanned = cgx::scan(file);
  cgx::GeneratedProject proj =
      cgx::generate_aie_project(desc, file, scanned);
};

TEST(TemplateKernels, ScannerRecognizesTemplateMacro) {
  Fixture fx;
  const auto* site = cgx::find_kernel(fx.scanned, "tk_to_float");
  ASSERT_NE(site, nullptr);
  EXPECT_TRUE(site->is_template);
  EXPECT_EQ(site->template_param, "T");
  const auto* plain = cgx::find_kernel(fx.scanned, "tk_sum2");
  ASSERT_NE(plain, nullptr);
  EXPECT_FALSE(plain->is_template);
}

TEST(TemplateKernels, OneSourcePerBaseKernel) {
  Fixture fx;
  EXPECT_TRUE(fx.proj.warnings.empty());
  EXPECT_TRUE(fx.proj.files.contains("tk_to_float.cc"));
  EXPECT_TRUE(fx.proj.files.contains("tk_sum2.cc"));
  // No per-instantiation .cc files.
  EXPECT_FALSE(fx.proj.files.contains("tk_to_float<int>.cc"));
}

TEST(TemplateKernels, DefinitionStaysTemplated) {
  Fixture fx;
  const std::string& src = fx.proj.files.at("tk_to_float.cc");
  EXPECT_NE(src.find("template <class T>\nvoid tk_to_float(KernelReadPort<T> "
                     "in"),
            std::string::npos)
      << src;
  EXPECT_EQ(src.find("co_await"), std::string::npos);
}

TEST(TemplateKernels, ThunkPerInstantiationWithSanitizedNames) {
  Fixture fx;
  const std::string& src = fx.proj.files.at("tk_to_float.cc");
  EXPECT_NE(src.find("void tk_to_float_int_aie(input_stream<int>* native_0, "
                     "output_stream<float>* native_1)"),
            std::string::npos)
      << src;
  EXPECT_NE(src.find("void tk_to_float_double_aie(input_stream<double>*"),
            std::string::npos);
  // The thunk substitutes the template parameter in the port types and
  // calls the instantiation explicitly.
  EXPECT_NE(src.find("KernelReadPort<int> port_0{native_0}"),
            std::string::npos)
      << src;
  EXPECT_NE(src.find("tk_to_float<int>(port_0, port_1);"),
            std::string::npos);
  EXPECT_NE(src.find("tk_to_float<double>(port_0, port_1);"),
            std::string::npos);
}

TEST(TemplateKernels, GraphCreatesSanitizedEntryPoints) {
  Fixture fx;
  const std::string& g = fx.proj.files.at("graph.hpp");
  EXPECT_NE(g.find("adf::kernel::create(tk_to_float_int_aie)"),
            std::string::npos)
      << g;
  EXPECT_NE(g.find("adf::kernel::create(tk_to_float_double_aie)"),
            std::string::npos);
  // Both instances compile from the shared base source.
  EXPECT_NE(g.find("adf::source(k0) = \"tk_to_float.cc\""),
            std::string::npos);
  EXPECT_NE(g.find("adf::source(k1) = \"tk_to_float.cc\""),
            std::string::npos);
}

TEST(TemplateKernels, DeclHeaderHasTemplateDeclAndBothThunks) {
  Fixture fx;
  const std::string& d = fx.proj.files.at("kernel_decls.hpp");
  EXPECT_NE(d.find("template <class T>\nvoid tk_to_float("),
            std::string::npos)
      << d;
  EXPECT_NE(d.find("tk_to_float_int_aie"), std::string::npos);
  EXPECT_NE(d.find("tk_to_float_double_aie"), std::string::npos);
}

TEST(TemplateKernels, RewriterSubstituteIdentifier) {
  EXPECT_EQ(cgx::substitute_identifier("KernelReadPort<T> in, T x", "T",
                                       "int"),
            "KernelReadPort<int> in, int x");
  // Identifier boundaries respected.
  EXPECT_EQ(cgx::substitute_identifier("TT T Tx", "T", "int"), "TT int Tx");
}

}  // namespace

// Co-extraction of referenced code (paper Section 4.6): transitive
// dependency closure and the per-realm header blacklist.
#include <gtest/gtest.h>

#include <algorithm>

#include "extractor/coextract.hpp"
#include "extractor/scanner.hpp"

namespace {

using cgx::SourceFile;

const char* kSrc = R"cpp(
#include <array>
#include <vector>
#include "core/cgsim.hpp"
#include "aie/aie.hpp"

constexpr int kDepth = 4;           // used by helper_b -> transitively needed
constexpr int kUnused = 99;         // referenced by nothing

struct Inner { int v; };            // used by Outer
struct Outer { Inner i; };          // used directly by the kernel

int helper_b(int x) { return x + kDepth; }
int helper_a(Outer o) { return helper_b(o.i.v); }

int lonely(int x) { return x - 1; } // not reachable from the kernel

COMPUTE_KERNEL(aie, consumer,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) {
    Outer o{ Inner{ co_await in.get() } };
    co_await out.put(helper_a(o));
  }
}
)cpp";

struct Fixture {
  SourceFile file{"co.cpp", kSrc};
  cgx::ScanResult scanned = cgx::scan(file);
  cgx::CoextractResult result = cgx::coextract(
      file, scanned, {cgx::find_kernel(scanned, "consumer")});

  [[nodiscard]] bool has_decl(std::string_view name) const {
    return std::any_of(
        result.decls.begin(), result.decls.end(), [&](const auto* d) {
          return std::find(d->declared.begin(), d->declared.end(), name) !=
                 d->declared.end();
        });
  }
  [[nodiscard]] bool has_include(std::string_view h) const {
    return std::any_of(result.includes.begin(), result.includes.end(),
                       [&](const auto* i) { return i->header == h; });
  }
};

TEST(Coextract, DirectDependenciesIncluded) {
  Fixture fx;
  EXPECT_TRUE(fx.has_decl("Outer"));
  EXPECT_TRUE(fx.has_decl("helper_a"));
}

TEST(Coextract, TransitiveDependenciesIncluded) {
  Fixture fx;
  // helper_a -> helper_b -> kDepth; Outer -> Inner.
  EXPECT_TRUE(fx.has_decl("helper_b"));
  EXPECT_TRUE(fx.has_decl("kDepth"));
  EXPECT_TRUE(fx.has_decl("Inner"));
}

TEST(Coextract, UnreferencedDeclarationsExcluded) {
  Fixture fx;
  EXPECT_FALSE(fx.has_decl("kUnused"));
  EXPECT_FALSE(fx.has_decl("lonely"));
}

TEST(Coextract, BlacklistedHeadersExcluded) {
  Fixture fx;
  EXPECT_FALSE(fx.has_include("core/cgsim.hpp"));
  EXPECT_TRUE(fx.has_include("array"));
  EXPECT_TRUE(fx.has_include("vector"));
  EXPECT_TRUE(fx.has_include("aie/aie.hpp"));
}

TEST(Coextract, DeclsKeepSourceOrder) {
  Fixture fx;
  // Inner must come before Outer (source order), so the generated file
  // compiles.
  std::size_t inner_pos = 0, outer_pos = 0;
  for (std::size_t i = 0; i < fx.result.decls.size(); ++i) {
    const auto& names = fx.result.decls[i]->declared;
    if (std::find(names.begin(), names.end(), "Inner") != names.end()) {
      inner_pos = i;
    }
    if (std::find(names.begin(), names.end(), "Outer") != names.end()) {
      outer_pos = i;
    }
  }
  EXPECT_LT(inner_pos, outer_pos);
}

TEST(Coextract, HeaderMapRewritesSimulationHeaders) {
  cgx::CoextractConfig cfg;
  EXPECT_EQ(cfg.mapped("aie/aie.hpp"), "aie_api/aie.hpp");
  EXPECT_EQ(cfg.mapped("src/aie/aie.hpp"), "aie_api/aie.hpp");
  EXPECT_EQ(cfg.mapped("vector"), "vector");
}

TEST(Coextract, NoRootsYieldsNothing) {
  SourceFile file{"co.cpp", kSrc};
  const auto scanned = cgx::scan(file);
  const auto res = cgx::coextract(file, scanned, {});
  EXPECT_TRUE(res.decls.empty());
}

TEST(Coextract, ParamTypesAreRoots) {
  // A type that appears only in the signature must still be co-extracted.
  const char* src = R"cpp(
struct OnlyInSignature { int x; };
COMPUTE_KERNEL(aie, sig_user,
               cgsim::KernelReadPort<OnlyInSignature> in,
               cgsim::KernelWritePort<int> out) {
  while (true) co_await out.put((co_await in.get()).x);
}
)cpp";
  SourceFile file{"sig.cpp", src};
  const auto scanned = cgx::scan(file);
  const auto res =
      cgx::coextract(file, scanned, {cgx::find_kernel(scanned, "sig_user")});
  ASSERT_EQ(res.decls.size(), 1u);
  EXPECT_EQ(res.decls[0]->declared[0], "OnlyInSignature");
}

}  // namespace

// Kernel-to-tile placement and stream-switch hop latency on the 2D array.
#include <gtest/gtest.h>

#include "aiesim/engine.hpp"
#include "core/cgsim.hpp"

namespace {

using namespace cgsim;
using aiesim::Placement;
using aiesim::TileCoord;

COMPUTE_KERNEL(aie, pl_stage1,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get() + 1.0f);
}

COMPUTE_KERNEL(aie, pl_stage2,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get() * 2.0f);
}

constexpr auto pl_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> m, z;
  pl_stage1(a, m);
  pl_stage2(m, z);
  return std::make_tuple(z);
}>;

TEST(Placement, AutomaticSnakeOrder) {
  const Placement p = Placement::automatic(pl_graph.view(), /*columns=*/4);
  EXPECT_EQ(p.of(0), (TileCoord{0, 0}));
  EXPECT_EQ(p.of(1), (TileCoord{1, 0}));
}

TEST(Placement, SnakeReversesOnOddRows) {
  // A fabricated 6-kernel view is unnecessary: exercise the math directly
  // via a wider graph-independent check using the 2-kernel view but
  // column width 1 (kernel 1 lands on row 1, which is reversed).
  const Placement p = Placement::automatic(pl_graph.view(), /*columns=*/1);
  EXPECT_EQ(p.of(0), (TileCoord{0, 0}));
  EXPECT_EQ(p.of(1), (TileCoord{0, 1}));
}

TEST(Placement, ExplicitOverride) {
  const Placement p = Placement::explicit_by_name(
      pl_graph.view(), {{"pl_stage2", TileCoord{7, 3}}});
  EXPECT_EQ(p.of(0), (TileCoord{0, 0}));  // automatic
  EXPECT_EQ(p.of(1), (TileCoord{7, 3}));  // overridden
}

TEST(Placement, EdgeHopsReflectDistance) {
  const GraphView g = pl_graph.view();
  const Placement near = Placement::explicit_by_name(
      g, {{"pl_stage1", TileCoord{0, 0}}, {"pl_stage2", TileCoord{1, 0}}});
  const Placement far = Placement::explicit_by_name(
      g, {{"pl_stage1", TileCoord{0, 0}}, {"pl_stage2", TileCoord{7, 7}}});
  // The middle edge (index of m) is the only kernel-to-kernel edge.
  int middle = -1;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    bool has_writer = false, has_reader = false;
    for (const FlatPort& p : g.ports) {
      if (p.edge != static_cast<int>(e)) continue;
      (p.is_read ? has_reader : has_writer) = true;
    }
    if (has_reader && has_writer) middle = static_cast<int>(e);
  }
  ASSERT_NE(middle, -1);
  EXPECT_EQ(near.edge_hops(g, middle), 1);
  EXPECT_EQ(far.edge_hops(g, middle), 14);
}

TEST(Placement, DistantPlacementSlowsSimulation) {
  std::vector<float> in(256, 1.0f);
  std::vector<float> out;
  aiesim::SimConfig near_cfg;
  near_cfg.placement = {{"pl_stage1", TileCoord{0, 0}},
                        {"pl_stage2", TileCoord{1, 0}}};
  const auto near_res =
      aiesim::simulate(pl_graph.view(), near_cfg, in, out);
  out.clear();
  aiesim::SimConfig far_cfg;
  far_cfg.placement = {{"pl_stage1", TileCoord{0, 0}},
                       {"pl_stage2", TileCoord{7, 7}}};
  const auto far_res = aiesim::simulate(pl_graph.view(), far_cfg, in, out);
  EXPECT_GT(far_res.virtual_cycles, near_res.virtual_cycles);
  // Functional results are placement-invariant.
  EXPECT_EQ(out.size(), 256u);
  EXPECT_EQ(out[0], 4.0f);
}

TEST(Placement, GlobalEdgesUnaffectedByPlacement) {
  // A single-kernel graph has no kernel-to-kernel edge: placement must not
  // change its timing.
  static constexpr auto single = make_compute_graph_v<[](
      IoConnector<float> a) {
    IoConnector<float> z;
    pl_stage1(a, z);
    return std::make_tuple(z);
  }>;
  std::vector<float> in(64, 1.0f);
  std::vector<float> out;
  aiesim::SimConfig c1;
  const auto r1 = aiesim::simulate(single.view(), c1, in, out);
  out.clear();
  aiesim::SimConfig c2;
  c2.placement = {{"pl_stage1", TileCoord{7, 7}}};
  const auto r2 = aiesim::simulate(single.view(), c2, in, out);
  EXPECT_EQ(r1.virtual_cycles, r2.virtual_cycles);
}

}  // namespace

// Event-queue ordering contract (satellite of the aiesim fast path):
// events with equal timestamps must pop in seq (push) order, and the
// global pop order is exactly ascending (time, seq). This file pins the
// contract against the reference PriorityEventQueue *before* the timing
// wheel replaces it in the engine, then fuzz-compares the two structures
// event-for-event.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "aiesim/event_queue.hpp"

namespace {

using aiesim::Event;
using aiesim::PriorityEventQueue;
using aiesim::TimingWheelQueue;

// Coroutine handles are only compared by address in these tests; the queue
// never resumes them, so tagging events with small fake frames is safe.
std::coroutine_handle<> handle_tag(std::uintptr_t i) {
  return std::coroutine_handle<>::from_address(
      reinterpret_cast<void*>((i + 1) << 4));
}

TEST(PriorityEventQueue, PopsAscendingTime) {
  PriorityEventQueue q;
  q.push(Event{30, 0, handle_tag(0)});
  q.push(Event{10, 1, handle_tag(1)});
  q.push(Event{20, 2, handle_tag(2)});
  Event e;
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 10u);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 20u);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 30u);
  EXPECT_FALSE(q.pop(e));
  EXPECT_TRUE(q.empty());
}

// The locked-in contract: simultaneous events resume in seq order. The
// engine relies on this for run-to-run determinism (start_all pushes every
// task at t=0, so the very first activations are a same-cycle burst).
TEST(PriorityEventQueue, SameCycleEventsPopInSeqOrder) {
  PriorityEventQueue q;
  // Push same-cycle events out of "nice" order relative to other times.
  q.push(Event{100, 0, handle_tag(0)});
  q.push(Event{50, 1, handle_tag(1)});
  q.push(Event{100, 2, handle_tag(2)});
  q.push(Event{100, 3, handle_tag(3)});
  q.push(Event{50, 4, handle_tag(4)});
  Event e;
  std::vector<std::uint64_t> seqs;
  while (q.pop(e)) seqs.push_back(e.seq);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 4, 0, 2, 3}));
}

TEST(PriorityEventQueue, InterleavedPushPopKeepsSeqOrderWithinCycle) {
  PriorityEventQueue q;
  std::uint64_t seq = 0;
  q.push(Event{5, seq++, handle_tag(0)});
  q.push(Event{5, seq++, handle_tag(1)});
  Event e;
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.seq, 0u);
  // New same-cycle push while the cycle is draining: must pop after the
  // older seq 1 event.
  q.push(Event{5, seq++, handle_tag(2)});
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.seq, 1u);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.seq, 2u);
}

// Exhaustive ordering invariant under a randomized push/pop schedule that
// mimics the engine: mostly-forward times with occasional "past" wakes
// (a consumer woken with the virtual-time stamp of an item produced before
// the current event), heavy same-cycle collision rate.
TEST(PriorityEventQueue, FuzzGlobalTimeSeqOrder) {
  std::mt19937_64 rng{0xA1E51u};
  for (int round = 0; round < 40; ++round) {
    PriorityEventQueue q;
    std::uint64_t seq = 0;
    std::uint64_t now = 0;
    std::vector<Event> popped;
    const int ops = 400;
    for (int i = 0; i < ops; ++i) {
      const bool do_push = q.empty() || (rng() % 3) != 0;
      if (do_push) {
        // Cluster times to force same-cycle ties; sometimes push into the
        // past of the last popped event, sometimes far ahead.
        std::uint64_t t = now;
        switch (rng() % 5) {
          case 0: t = now + (rng() % 4); break;             // near / tie
          case 1: t = now + (rng() % 64); break;            // level-0 span
          case 2: t = now + (rng() % 5000); break;          // mid levels
          case 3: t = now + (rng() % 3000000); break;       // high levels
          case 4: t = now > 500 ? now - (rng() % 500) : 0;  // past wake
        }
        q.push(Event{t, seq++, handle_tag(seq)});
      } else {
        Event e;
        ASSERT_TRUE(q.pop(e));
        now = std::max(now, e.time);
        popped.push_back(e);
      }
    }
    Event e;
    while (q.pop(e)) popped.push_back(e);
    ASSERT_EQ(popped.size(), seq);
    for (std::size_t i = 1; i < popped.size(); ++i) {
      const Event& a = popped[i - 1];
      const Event& b = popped[i];
      // Order restriction applies to events *simultaneously pending*: a
      // past-dated push after a later pop legitimately pops "late". What
      // must always hold is the tie rule: equal times pop in seq order
      // whenever they were pending together, which the schedule above
      // guarantees by construction for adjacent pops.
      if (a.time == b.time) EXPECT_LT(a.seq, b.seq);
    }
  }
}

// --- TimingWheelQueue: the engine's replacement structure --------------

TEST(TimingWheelQueue, PopsAscendingTime) {
  TimingWheelQueue q;
  q.push(Event{30, 0, handle_tag(0)});
  q.push(Event{10, 1, handle_tag(1)});
  q.push(Event{20, 2, handle_tag(2)});
  Event e;
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 10u);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 20u);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 30u);
  EXPECT_FALSE(q.pop(e));
  EXPECT_TRUE(q.empty());
}

TEST(TimingWheelQueue, SameCycleEventsPopInSeqOrder) {
  TimingWheelQueue q;
  q.push(Event{100, 0, handle_tag(0)});
  q.push(Event{50, 1, handle_tag(1)});
  q.push(Event{100, 2, handle_tag(2)});
  q.push(Event{100, 3, handle_tag(3)});
  q.push(Event{50, 4, handle_tag(4)});
  Event e;
  std::vector<std::uint64_t> seqs;
  while (q.pop(e)) seqs.push_back(e.seq);
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 4, 0, 2, 3}));
}

TEST(TimingWheelQueue, SpansAllLevelsAndOverflow) {
  // One event per wheel level plus one beyond the 2^30-cycle horizon, plus
  // a past-dated wake after the floor has advanced.
  TimingWheelQueue q;
  std::uint64_t seq = 0;
  const std::uint64_t times[] = {3,        70,        5000,
                                 300000,   20000000,  (1ull << 30) + 12345};
  for (std::uint64_t t : times) q.push(Event{t, seq++, handle_tag(seq)});
  Event e;
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 3u);
  // Wake dated before the current floor (already popped past it).
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 70u);
  q.push(Event{50, seq++, handle_tag(seq)});
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, 50u);  // past event drains before the wheel
  std::vector<std::uint64_t> rest;
  while (q.pop(e)) rest.push_back(e.time);
  EXPECT_EQ(rest, (std::vector<std::uint64_t>{5000, 300000, 20000000,
                                              (1ull << 30) + 12345}));
}

// Regression: an overflow entry whose time falls inside the *current*
// level-0 window. Walk the floor to just below an overflow event's time
// (advance() never re-files because every intermediate stop bids below
// over_min_), then push a same-time event, which lands directly in a
// level-0 slot. The level-0 fast path used to pop that newer push without
// consulting the overflow array -- breaking (time, seq) FIFO against the
// older overflow entry -- and the floor could then overrun over_min_,
// underflowing the level-index computation on the eventual re-file.
TEST(TimingWheelQueue, OverflowTiesWithSameCycleWheelSlot) {
  const std::uint64_t kSpan = 1ull << 30;
  const std::uint64_t T = kSpan + 100;  // T % 64 == 36: mid-window
  TimingWheelQueue q;
  q.push(Event{T, 0, handle_tag(0)});      // beyond horizon -> overflow
  q.push(Event{200, 1, handle_tag(1)});
  Event e;
  ASSERT_TRUE(q.pop(e));                   // floor -> 200
  EXPECT_EQ(e.time, 200u);
  q.push(Event{T - 2, 2, handle_tag(2)});  // now within span -> wheel
  ASSERT_TRUE(q.pop(e));                   // floor -> T - 2
  EXPECT_EQ(e.time, T - 2);
  EXPECT_EQ(e.seq, 2u);
  // Same-cycle tie against the overflow entry, filed straight to level 0.
  q.push(Event{T, 3, handle_tag(3)});
  q.push(Event{T + 1, 4, handle_tag(4)});
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, T);
  EXPECT_EQ(e.seq, 0u);  // the overflow entry is the older push
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, T);
  EXPECT_EQ(e.seq, 3u);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, T + 1);
  EXPECT_EQ(e.seq, 4u);
  EXPECT_FALSE(q.pop(e));
  EXPECT_TRUE(q.empty());
}

// Regression: an overflow entry older than a same-time event filed
// *directly* into a high wheel level (pushed once the floor had advanced
// to within the span). The overflow re-file can land the older entry at a
// lower level while the direct entry is still cascading down from above;
// file_front's seq-aware insert must merge them in push order, not let
// the cascade jump its (newer) events in front.
TEST(TimingWheelQueue, OverflowOlderThanDirectWheelEntrySameCycle) {
  const std::uint64_t kSpan = 1ull << 30;
  const std::uint64_t T = kSpan + 100;
  TimingWheelQueue q;
  q.push(Event{T, 0, handle_tag(0)});    // d >= span -> overflow
  q.push(Event{200, 1, handle_tag(1)});
  Event e;
  ASSERT_TRUE(q.pop(e));                 // floor -> 200; T now within span
  EXPECT_EQ(e.time, 200u);
  q.push(Event{T, 2, handle_tag(2)});    // same time, direct to level 4
  q.push(Event{T, 3, handle_tag(3)});
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.time, T);
  EXPECT_EQ(e.seq, 0u);  // the overflow entry is the oldest push
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.seq, 2u);
  ASSERT_TRUE(q.pop(e));
  EXPECT_EQ(e.seq, 3u);
  EXPECT_FALSE(q.pop(e));
}

// The wheel must reproduce the reference heap's pop sequence *exactly*
// (same time and same seq at every step) under a randomized schedule
// shaped like the engine's: same-cycle bursts, level-0..high-level gaps,
// past wakes, and occasional beyond-horizon pushes.
TEST(TimingWheelQueue, FuzzMatchesPriorityQueuePopForPop) {
  std::mt19937_64 rng{0xB0C4E7u};
  for (int round = 0; round < 40; ++round) {
    PriorityEventQueue ref;
    TimingWheelQueue wheel;
    std::uint64_t seq = 0;
    std::uint64_t now = 0;
    std::vector<std::uint64_t> seen;  // replay pool: forces exact ties
    const int ops = 600;
    for (int i = 0; i < ops; ++i) {
      const bool do_push = ref.empty() || (rng() % 3) != 0;
      if (do_push) {
        std::uint64_t t = now;
        switch (rng() % 7) {
          case 0: t = now + (rng() % 4); break;              // near / tie
          case 1: t = now + (rng() % 64); break;             // level 0
          case 2: t = now + (rng() % 5000); break;           // mid levels
          case 3: t = now + (rng() % 3000000); break;        // high levels
          case 4:
            t = now > 500 ? now - (rng() % 500) : 0;         // past wake
            break;
          case 5:
            t = now + (1ull << 30) + (rng() % 1000);         // overflow
            break;
          case 6:
            // Replay an earlier push time verbatim: exact same-cycle
            // collisions with pending past / wheel / overflow entries.
            if (!seen.empty()) t = seen[rng() % seen.size()];
            break;
        }
        seen.push_back(t);
        const Event e{t, seq++, handle_tag(seq)};
        ref.push(e);
        wheel.push(e);
      } else {
        Event a;
        Event b;
        ASSERT_TRUE(ref.pop(a));
        ASSERT_TRUE(wheel.pop(b));
        ASSERT_EQ(a.time, b.time);
        ASSERT_EQ(a.seq, b.seq);
        now = std::max(now, a.time);
      }
      ASSERT_EQ(ref.size(), wheel.size());
    }
    Event a;
    Event b;
    while (ref.pop(a)) {
      ASSERT_TRUE(wheel.pop(b));
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
    }
    EXPECT_FALSE(wheel.pop(b));
    EXPECT_TRUE(wheel.empty());
  }
}

}  // namespace

// Micro-model equivalence: the block-stepped/jump-ahead fast tile model
// must match the retained per-cycle reference loop bit for bit -- full
// state snapshots (LFSR, pipeline, scoreboard, FIFOs, banks) and the run
// checksum -- across arbitrary stall/busy segment interleavings. Also pins
// the stream-FIFO model to its spec: 2 in + 2 out FIFOs means exactly 4
// occupancy counters (the original engine walked a 64-entry array).
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "aiesim/micro_model.hpp"

namespace {

using aiesim::lfsr_step;
using aiesim::MicroSnapshot;
using aiesim::TileMicroFast;
using aiesim::TileMicroRef;

// The satellite fix: the spec models 2 input + 2 output stream FIFOs
// (16-deep each), i.e. 4 occupancy counters -- not 64.
TEST(MicroModel, StreamFifoCountMatchesSpec) {
  static_assert(aiesim::kStreamFifos == 4);
  static_assert(sizeof(MicroSnapshot{}.fifo) == 4 * sizeof(std::uint64_t));
  // Each step adds (lfsr >> 5) & 3 to each of the 4 FIFOs; per-cycle
  // checksum contribution is therefore at most 4 * 15.
  TileMicroRef m;
  m.step_busy(1);
  const MicroSnapshot s = m.snapshot();
  std::uint64_t fifo_part = 0;
  for (const std::uint64_t f : s.fifo) fifo_part += f;
  EXPECT_LE(fifo_part, 4u * 15u);
}

TEST(MicroModel, LfsrJumpMatchesScalarLoop) {
  std::uint64_t x = aiesim::kLfsrSeed;
  // Jumps below the table threshold use the scalar loop; exercise both
  // sides of the threshold plus values around lane/block boundaries.
  const std::uint64_t jumps[] = {0, 1, 7, 63, 511, 512, 513, 1000, 4096,
                                 123457, 1 << 20};
  for (const std::uint64_t n : jumps) {
    std::uint64_t loop = x;
    for (std::uint64_t i = 0; i < n; ++i) loop = lfsr_step(loop);
    EXPECT_EQ(aiesim::detail::lfsr_jump(x, n), loop) << "n=" << n;
    x = loop;  // chain: varied starting states
  }
}

TEST(MicroModel, FastMatchesReferenceOnBusySegments) {
  TileMicroRef ref;
  TileMicroFast fast;
  // Segment lengths around every internal boundary: pipe warm-up (7/8),
  // SIMD lanes (8), block size (128) and beyond.
  const std::uint64_t lens[] = {1, 2, 6, 7, 8, 9, 15, 16, 17, 63, 64,
                                127, 128, 129, 255, 256, 1000, 4096};
  for (const std::uint64_t n : lens) {
    ref.step_busy(n);
    fast.step_busy(n);
    ASSERT_EQ(fast.snapshot(), ref.snapshot()) << "after busy n=" << n;
  }
}

TEST(MicroModel, FastMatchesReferenceOnStallBusyInterleavings) {
  std::mt19937_64 rng{0x51ABu};
  for (int round = 0; round < 20; ++round) {
    TileMicroRef ref;
    TileMicroFast fast;
    for (int seg = 0; seg < 60; ++seg) {
      const bool stall = (rng() % 2) != 0;
      std::uint64_t n = 0;
      switch (rng() % 4) {
        case 0: n = rng() % 8; break;
        case 1: n = rng() % 130; break;
        case 2: n = rng() % 2048; break;
        case 3: n = rng() % 100000; break;  // exercises jump-ahead tables
      }
      if (stall) {
        ref.step_stall(n);
        fast.step_stall(n);
      } else {
        // Bound busy spans: the reference loop is the slow part.
        n %= 3000;
        ref.step_busy(n);
        fast.step_busy(n);
      }
      ASSERT_EQ(fast.snapshot(), ref.snapshot())
          << "round " << round << " seg " << seg << (stall ? " stall " : " busy ")
          << n;
    }
    ASSERT_EQ(fast.checksum(), ref.checksum());
  }
}

// The uniformity invariants the fast path's algebra relies on: from the
// zero start state, all scoreboard entries stay equal, all FIFO
// occupancies stay equal and all bank counters stay equal, forever.
TEST(MicroModel, ReferenceStateStaysUniform) {
  TileMicroRef ref;
  ref.step_stall(97);
  ref.step_busy(1023);
  ref.step_stall(5);
  ref.step_busy(64);
  const MicroSnapshot s = ref.snapshot();
  for (const std::uint64_t r : s.scoreboard) EXPECT_EQ(r, s.scoreboard[0]);
  for (const std::uint64_t f : s.fifo) EXPECT_EQ(f, s.fifo[0]);
  for (const std::uint64_t b : s.banks) EXPECT_EQ(b, s.banks[0]);
}

}  // namespace

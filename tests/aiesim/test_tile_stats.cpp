// Per-tile utilization statistics of the cycle-approximate engine.
#include <gtest/gtest.h>

#include <numeric>

#include "aiesim/engine.hpp"
#include "aie/aie.hpp"
#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, ts_light,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get());
}

COMPUTE_KERNEL(aie, ts_heavy,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) {
    const float v = co_await in.get();
    auto vec = aie::broadcast<float, 8>(v);
    auto acc = aie::mul(vec, vec);
    for (int i = 0; i < 50; ++i) acc = aie::mac(acc, vec, vec);
    co_await out.put(aie::to_vector(acc).get(0));
  }
}

constexpr auto ts_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> m, z;
  ts_light(a, m);
  ts_heavy(m, z);
  return std::make_tuple(z);
}>;

TEST(TileStats, OneEntryPerKernel) {
  std::vector<float> in(32, 1.0f);
  std::vector<float> out;
  const auto res = aiesim::simulate(ts_graph.view(), aiesim::SimConfig{},
                                    in, out);
  ASSERT_EQ(res.tiles.size(), 2u);
  std::vector<std::string> names{res.tiles[0].kernel, res.tiles[1].kernel};
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"ts_heavy", "ts_light"}));
}

TEST(TileStats, HeavyKernelDominatesBusyCycles) {
  std::vector<float> in(64, 2.0f);
  std::vector<float> out;
  const auto res = aiesim::simulate(ts_graph.view(), aiesim::SimConfig{},
                                    in, out);
  const aiesim::TileStats* light = nullptr;
  const aiesim::TileStats* heavy = nullptr;
  for (const auto& t : res.tiles) {
    if (t.kernel == "ts_light") light = &t;
    if (t.kernel == "ts_heavy") heavy = &t;
  }
  ASSERT_NE(light, nullptr);
  ASSERT_NE(heavy, nullptr);
  EXPECT_GT(heavy->busy_cycles, light->busy_cycles);
  // The heavy kernel's MAC count shows in the instrumentation.
  EXPECT_GE(heavy->ops[aie::OpClass::vector_mac], 64u * 51u);
  EXPECT_EQ(light->ops[aie::OpClass::vector_mac], 0u);
}

TEST(TileStats, UtilizationIsAFractionOfMakespan) {
  std::vector<float> in(32, 1.0f);
  std::vector<float> out;
  const auto res = aiesim::simulate(ts_graph.view(), aiesim::SimConfig{},
                                    in, out);
  for (const auto& t : res.tiles) {
    const double u = t.utilization(res.virtual_cycles);
    EXPECT_GT(u, 0.0) << t.kernel;
    EXPECT_LE(u, 1.0) << t.kernel;
    EXPECT_LE(t.final_clock, res.virtual_cycles);
    EXPECT_GT(t.activations, 0u);
  }
}

TEST(TileStats, BusyCyclesNeverExceedFinalClock) {
  std::vector<float> in(16, 1.0f);
  std::vector<float> out;
  const auto res = aiesim::simulate(ts_graph.view(), aiesim::SimConfig{},
                                    in, out);
  for (const auto& t : res.tiles) {
    EXPECT_LE(t.busy_cycles, t.final_clock) << t.kernel;
  }
}

TEST(TileStats, PipelineOverlapsInVirtualTime) {
  // Two chained kernels execute concurrently on their own tiles: the
  // makespan must be well below the serialized sum of busy cycles once the
  // pipeline fills.
  std::vector<float> in(128, 1.0f);
  std::vector<float> out;
  const auto res = aiesim::simulate(ts_graph.view(), aiesim::SimConfig{},
                                    in, out);
  std::uint64_t busy_sum = 0;
  for (const auto& t : res.tiles) busy_sum += t.busy_cycles;
  EXPECT_LT(res.virtual_cycles, busy_sum);
}

}  // namespace

// VLIW / stream / window cost model unit tests.
#include <gtest/gtest.h>

#include "aiesim/cost_model.hpp"

namespace {

using aiesim::CostModel;

TEST(CostModel, EmptyCountsCostNothing) {
  CostModel m;
  EXPECT_EQ(m.compute_cycles(aie::OpCounts{}), 0u);
}

TEST(CostModel, VectorSlotDominates) {
  CostModel m;
  aie::OpCounts c;
  c.add(aie::OpClass::vector_mac, 100);
  c.add(aie::OpClass::load, 50);  // 50 loads / 2 slots = 25 cycles
  const auto cycles = m.compute_cycles(c);
  EXPECT_EQ(cycles, 100u + static_cast<std::uint64_t>(m.activation_ramp));
}

TEST(CostModel, LoadSlotDominatesWhenLoadBound) {
  CostModel m;
  aie::OpCounts c;
  c.add(aie::OpClass::load, 100);  // 50 cycles through 2 load slots
  c.add(aie::OpClass::vector_alu, 10);
  EXPECT_EQ(m.compute_cycles(c),
            50u + static_cast<std::uint64_t>(m.activation_ramp));
}

TEST(CostModel, ScalarSlots) {
  CostModel m;
  aie::OpCounts c;
  c.add(aie::OpClass::scalar, 100);
  EXPECT_EQ(m.compute_cycles(c),
            50u + static_cast<std::uint64_t>(m.activation_ramp));
}

TEST(CostModel, StreamBeatsScaleWithElementSize) {
  CostModel m;
  const cgsim::PortSettings stream{};
  const auto small = m.port_cycles(stream, 4, false, false);
  const auto big = m.port_cycles(stream, 64, false, false);
  EXPECT_GT(big, small);
  // 64 bytes = 16 beats of 32 bits.
  EXPECT_EQ(big, static_cast<std::uint64_t>(16 + m.stream_access_overhead));
}

TEST(CostModel, PlioCrossingCostsClockRatio) {
  CostModel m;
  const cgsim::PortSettings stream{};
  const auto local = m.port_cycles(stream, 64, false, false);
  const auto plio = m.port_cycles(stream, 64, true, false);
  EXPECT_EQ(plio - m.stream_access_overhead,
            (local - m.stream_access_overhead) * 2);
}

TEST(CostModel, GeneratedAdapterCostsMorePerBeat) {
  CostModel m;
  const cgsim::PortSettings stream{};
  const auto native = m.port_cycles(stream, 256, true, false);
  const auto generated = m.port_cycles(stream, 256, true, true);
  EXPECT_GT(generated, native);
}

TEST(CostModel, WindowCostIsIoModeInvariant) {
  // The mechanism behind the paper's IIR parity (Table 1): window accesses
  // cost the same whether the kernel is hand-written or extracted.
  CostModel m;
  const cgsim::PortSettings win{.beat_bits = 0,
                                .rtp = false,
                                .buffer = cgsim::BufferMode::pingpong,
                                .window_size = 2048};
  EXPECT_EQ(m.port_cycles(win, 8192, true, false),
            m.port_cycles(win, 8192, true, true));
}

TEST(CostModel, WindowBulkBeatsPerByteStream) {
  CostModel m;
  const cgsim::PortSettings win{.beat_bits = 0,
                                .rtp = false,
                                .buffer = cgsim::BufferMode::window,
                                .window_size = 2048};
  const cgsim::PortSettings stream{};
  // Moving 8 KiB through a window is far cheaper than beat-by-beat.
  EXPECT_LT(m.port_cycles(win, 8192, true, false),
            m.port_cycles(stream, 8192, true, false));
}

TEST(CostModel, WiderBeatsReduceStreamCost) {
  CostModel m;
  const cgsim::PortSettings w32{.beat_bits = 32};
  const cgsim::PortSettings w128{.beat_bits = 128};
  EXPECT_GT(m.port_cycles(w32, 256, false, false),
            m.port_cycles(w128, 256, false, false));
}

}  // namespace

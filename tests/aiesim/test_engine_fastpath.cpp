// Engine-variant equivalence: EngineVariant::fast (timing wheel, dense id
// tables, block-stepped micro model, buffered trace) must reproduce
// EngineVariant::reference bit for bit on every observable: makespan,
// step checksum, per-task busy cycles and the trace digest. Also covers
// the bind-time name backfill and the no-reallocation guarantee of the
// dense state tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "aiesim/engine.hpp"
#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, fp_scale,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(3.0f * co_await in.get());
}

COMPUTE_KERNEL(aie, fp_offset,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(1.0f + co_await in.get());
}

constexpr auto fp_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> b, c;
  fp_scale(a, b);
  fp_offset(b, c);
  return std::make_tuple(c);
}>;

std::vector<float> ramp(std::size_t n) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), 1.0f);
  return v;
}

aiesim::SimResult run_variant(aiesim::EngineVariant v, aiesim::DetailLevel d,
                              std::size_t n, std::vector<float>& out,
                              int repetitions = 1) {
  aiesim::SimConfig cfg;
  cfg.engine = v;
  cfg.detail = d;
  cfg.repetitions = repetitions;
  out.clear();
  return aiesim::simulate(fp_graph.view(), cfg, ramp(n), out);
}

TEST(EngineVariants, BitIdenticalObservables) {
  std::vector<float> out_f;
  std::vector<float> out_r;
  const auto rf = run_variant(aiesim::EngineVariant::fast,
                              aiesim::DetailLevel::cycle, 96, out_f, 3);
  const auto rr = run_variant(aiesim::EngineVariant::reference,
                              aiesim::DetailLevel::cycle, 96, out_r, 3);
  EXPECT_EQ(out_f, out_r);
  EXPECT_EQ(rf.virtual_cycles, rr.virtual_cycles);
  EXPECT_EQ(rf.step_checksum, rr.step_checksum);
  EXPECT_EQ(rf.output_items, rr.output_items);
  EXPECT_EQ(rf.trace.digest(), rr.trace.digest());
  ASSERT_EQ(rf.tiles.size(), rr.tiles.size());
  for (std::size_t i = 0; i < rf.tiles.size(); ++i) {
    EXPECT_EQ(rf.tiles[i].kernel, rr.tiles[i].kernel);
    EXPECT_EQ(rf.tiles[i].busy_cycles, rr.tiles[i].busy_cycles);
    EXPECT_EQ(rf.tiles[i].final_clock, rr.tiles[i].final_clock);
    EXPECT_EQ(rf.tiles[i].activations, rr.tiles[i].activations);
  }
}

TEST(EngineVariants, BitIdenticalAtEventDetailToo) {
  std::vector<float> out_f;
  std::vector<float> out_r;
  const auto rf = run_variant(aiesim::EngineVariant::fast,
                              aiesim::DetailLevel::event, 64, out_f);
  const auto rr = run_variant(aiesim::EngineVariant::reference,
                              aiesim::DetailLevel::event, 64, out_r);
  EXPECT_EQ(out_f, out_r);
  EXPECT_EQ(rf.virtual_cycles, rr.virtual_cycles);
  EXPECT_EQ(rf.trace.digest(), rr.trace.digest());
}

TEST(EngineVariants, DigestIsDeterministicAcrossRuns) {
  std::vector<float> out;
  const auto r1 = run_variant(aiesim::EngineVariant::fast,
                              aiesim::DetailLevel::cycle, 48, out);
  const auto r2 = run_variant(aiesim::EngineVariant::fast,
                              aiesim::DetailLevel::cycle, 48, out);
  EXPECT_EQ(r1.trace.digest(), r2.trace.digest());
  EXPECT_EQ(r1.step_checksum, r2.step_checksum);
  EXPECT_EQ(r1.virtual_cycles, r2.virtual_cycles);
}

TEST(EngineVariants, TracesNameEveryTask) {
  // Bind-time interning + backfill: no trace event or kernel tile may end
  // up anonymous in either variant.
  for (const auto v :
       {aiesim::EngineVariant::fast, aiesim::EngineVariant::reference}) {
    std::vector<float> out;
    const auto res = run_variant(v, aiesim::DetailLevel::event, 16, out);
    ASSERT_FALSE(res.trace.events().empty());
    for (const auto& e : res.trace.events()) {
      EXPECT_EQ(e.kernel, "fp_offset");  // the output-writing kernel
    }
    ASSERT_EQ(res.tiles.size(), 2u);
    EXPECT_EQ(res.tiles[0].kernel, "fp_offset");
    EXPECT_EQ(res.tiles[1].kernel, "fp_scale");
  }
}

TEST(EngineVariants, NamesBackfilledWhenStatePredatesBind) {
  // Drive the engine by hand: create a state via make_ready *before*
  // bind() attaches the context, as an executor wired up early would.
  aiesim::SimConfig cfg;
  cfg.engine = aiesim::EngineVariant::fast;
  aiesim::SimEngine engine{cfg};
  cgsim::RuntimeContext ctx{fp_graph.view(), cgsim::ExecMode::sim, &engine,
                            &engine};
  // Touch a task state pre-bind (no resume; just state creation).
  auto& rec = ctx.tasks().front();
  engine.make_ready(rec.task.handle(), 0);
  engine.bind(ctx);
  const auto tiles_pre = engine.tile_stats();  // names already backfilled
  for (const auto& t : tiles_pre) EXPECT_FALSE(t.kernel.empty());
}

TEST(EngineVariants, StateCacheSurvivesIndexRehash) {
  // Regression: the engine's one-entry (handle -> state) cache is filled
  // from the open-addressed HandleIndex, whose storage reallocates on
  // rehash. Force many rehashes mid-stream (each insert doubles the table
  // at 50% load) with cache fills interleaved, and verify that every
  // handle keeps resolving to its original state object and that
  // state_tables_stable() -- which now cross-checks the cache against the
  // index generation -- holds at every step.
  aiesim::SimConfig cfg;
  cfg.engine = aiesim::EngineVariant::fast;
  aiesim::SimEngine engine{cfg};  // unbound: manual driving, like an
                                  // executor wired up before its context
  const auto tag = [](std::uintptr_t i) {
    return std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>((i + 1) << 4));
  };
  std::vector<const void*> identity;
  for (std::uintptr_t i = 0; i < 200; ++i) {
    identity.push_back(engine.state_identity(tag(i)));  // insert + cache
    // Revisit the first handle so the cache holds a pre-rehash fill when
    // the next insert grows the table.
    ASSERT_EQ(engine.state_identity(tag(0)), identity[0]);
    ASSERT_TRUE(engine.state_tables_stable());
  }
  for (std::uintptr_t i = 0; i < 200; ++i) {
    EXPECT_EQ(engine.state_identity(tag(i)), identity[i]);
  }
  EXPECT_TRUE(engine.state_tables_stable());
}

TEST(EngineVariants, BindAfterManualWarmupInvalidatesStateCache) {
  // bind() re-reserves the handle index (a rehash) after the cache may
  // already hold a pre-bind entry; the engine must drop that entry and
  // still resolve the warmed-up handle to its original state.
  aiesim::SimConfig cfg;
  cfg.engine = aiesim::EngineVariant::fast;
  aiesim::SimEngine engine{cfg};
  cgsim::RuntimeContext ctx{fp_graph.view(), cgsim::ExecMode::sim, &engine,
                            &engine};
  auto& rec = ctx.tasks().front();
  const void* pre = engine.state_identity(rec.task.handle());
  engine.bind(ctx);
  EXPECT_TRUE(engine.state_tables_stable());
  EXPECT_EQ(engine.state_identity(rec.task.handle()), pre);
  EXPECT_TRUE(engine.state_tables_stable());
}

TEST(EngineVariants, StateTablesStayStableAcrossRun) {
  std::vector<float> out;
  aiesim::SimConfig cfg;
  cfg.engine = aiesim::EngineVariant::fast;
  cfg.detail = aiesim::DetailLevel::cycle;
  aiesim::SimEngine engine{cfg};
  cgsim::RuntimeContext ctx{fp_graph.view(), cgsim::ExecMode::sim, &engine,
                            &engine};
  const auto in = ramp(64);
  cgsim::RunOptions opts{cgsim::ExecMode::sim, 1};
  cgsim::detail::attach_io(ctx, fp_graph.view(), opts, 0, in);
  cgsim::detail::attach_io(ctx, fp_graph.view(), opts, 1, out);
  engine.bind(ctx);
  ctx.start_all();
  ctx.finish(engine.run());
  // Everything was known at bind: the reserve must have held.
  EXPECT_TRUE(engine.state_tables_stable());
}

}  // namespace

// GMIO timing extension in the cycle-approximate cost model.
#include <gtest/gtest.h>

#include "aiesim/engine.hpp"
#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

TEST(GmioCost, BulkTransfersBeatPerBeatStreams) {
  aiesim::CostModel m;
  const PortSettings gmio{.io = IoKind::gmio};
  const PortSettings plio{};
  // An 8 KiB block over GMIO bursts is far cheaper than 2048 PLIO beats.
  EXPECT_LT(m.port_cycles(gmio, 8192, true, false),
            m.port_cycles(plio, 8192, true, false));
}

TEST(GmioCost, SmallTransfersPaySetup) {
  aiesim::CostModel m;
  const PortSettings gmio{.io = IoKind::gmio};
  const PortSettings plio{};
  // A 4-byte scalar over GMIO pays the DMA setup; PLIO wins there.
  EXPECT_GT(m.port_cycles(gmio, 4, true, false),
            m.port_cycles(plio, 4, true, false));
}

TEST(GmioCost, ImmuneToExtractionPenalty) {
  // Like window I/O, GMIO transfers are DMA-driven: the generated adapter
  // thunk adds no per-beat cost.
  aiesim::CostModel m;
  const PortSettings gmio{.io = IoKind::gmio};
  EXPECT_EQ(m.port_cycles(gmio, 4096, true, false),
            m.port_cycles(gmio, 4096, true, true));
}

TEST(GmioCost, CrossoverExists) {
  // There is a block size where GMIO and PLIO cost the same; below it PLIO
  // wins, above it GMIO wins (burst amortization).
  aiesim::CostModel m;
  const PortSettings gmio{.io = IoKind::gmio};
  const PortSettings plio{};
  bool plio_wins_small = false;
  bool gmio_wins_large = false;
  for (std::size_t bytes = 4; bytes <= 65536; bytes *= 2) {
    const auto g = m.port_cycles(gmio, bytes, true, false);
    const auto p = m.port_cycles(plio, bytes, true, false);
    if (bytes <= 64 && p < g) plio_wins_small = true;
    if (bytes >= 16384 && g < p) gmio_wins_large = true;
  }
  EXPECT_TRUE(plio_wins_small);
  EXPECT_TRUE(gmio_wins_large);
}

inline constexpr PortSettings gm_in{.io = IoKind::gmio};

COMPUTE_KERNEL(aie, gm_scale,
               KernelReadPort<float, gm_in> in,
               KernelWritePort<float, gm_in> out) {
  while (true) co_await out.put(2.0f * co_await in.get());
}

constexpr auto gm_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> b;
  gm_scale(a, b);
  return std::make_tuple(b);
}>;

TEST(GmioCost, EndToEndSimulationRuns) {
  std::vector<float> in(64, 1.5f);
  std::vector<float> out;
  const auto res =
      aiesim::simulate(gm_graph.view(), aiesim::SimConfig{}, in, out);
  ASSERT_EQ(out.size(), 64u);
  EXPECT_EQ(out[0], 3.0f);
  EXPECT_GT(res.virtual_cycles, 0u);
}

TEST(GmioCost, GeneratedIoDoesNotSlowGmioGraph) {
  std::vector<float> in(64, 1.0f);
  std::vector<float> out;
  aiesim::SimConfig native;
  const auto rn = aiesim::simulate(gm_graph.view(), native, in, out);
  out.clear();
  aiesim::SimConfig gen;
  gen.generated_io = true;
  const auto rg = aiesim::simulate(gm_graph.view(), gen, in, out);
  EXPECT_EQ(rn.virtual_cycles, rg.virtual_cycles);
}

}  // namespace

// Persistent compiled-artifact store: flat-format round-trip fidelity,
// cache/store integration, corruption hardening, caps eviction, and the
// differential contract -- a store-loaded artifact must drive simulation
// bit-identically to a freshly compiled one, and any damaged file must
// fall back to recompilation (never crash, never poison a run).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "aiesim/compiled.hpp"
#include "aiesim/compiled_store.hpp"
#include "aiesim/engine.hpp"
#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"

namespace {

using namespace cgsim;
namespace fs = std::filesystem;

inline constexpr PortSettings cs_rtp{.rtp = true};

COMPUTE_KERNEL(aie, cs_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, cs_scale,
               KernelReadPort<int> in,
               KernelReadPort<int, cs_rtp> factor,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await factor.get());
  }
}

/// in -> cs_inc -> cs_scale(rtp) -> out, same shape test_compiled uses.
class StoreChain {
 public:
  StoreChain() {
    a_ = b_.add_edge<int>();
    m_ = b_.add_edge<int>();
    z_ = b_.add_edge<int>();
    f_ = b_.add_edge<int>(1, cs_rtp);
    b_.add_kernel(cs_inc, {a_, m_});
    b_.add_kernel(cs_scale, {m_, f_, z_});
    b_.add_input(a_);
    b_.add_input(f_);
    b_.add_output(z_);
  }
  GraphView view() { return b_.view(); }

 private:
  rt::DynamicGraphBuilder b_;
  int a_, m_, z_, f_;
};

std::vector<int> iota_vec(std::size_t n, int start = 1) {
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = start + static_cast<int>(i);
  return v;
}

/// Scoped temp dir + guaranteed cache detach/clear so a failing test can
/// not leak a store into the process-global cache other suites share.
class StoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cgsim-store-test-" +
             std::to_string(static_cast<long>(::getpid())) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
    auto& cache = aiesim::CompiledGraphCache::instance();
    cache.set_store(nullptr);
    cache.clear();
  }
  void TearDown() override {
    auto& cache = aiesim::CompiledGraphCache::instance();
    cache.set_store(nullptr);
    cache.clear();
    fs::remove_all(dir_);
  }

  /// Compiles the chain (no store involved) and returns the artifact.
  std::shared_ptr<const aiesim::CompiledGraph> compile() {
    auto& cache = aiesim::CompiledGraphCache::instance();
    cache.clear();
    return cache.get_or_compile(chain_.view(), cost_, false, {}, 4);
  }

  std::string dir_;
  StoreChain chain_;
  aiesim::CostModel cost_{};
};

template <class T>
void expect_equal_spans(std::span<const T> a, std::span<const T> b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(T)))
      << what;
}

void expect_equal_adj(const aiesim::AdjTable& a, const aiesim::AdjTable& b,
                      const char* what) {
  expect_equal_spans(a.offsets, b.offsets, what);
  expect_equal_spans(a.values, b.values, what);
}

void expect_equal_artifacts(const aiesim::CompiledGraph& a,
                            const aiesim::CompiledGraph& b) {
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.generated_io, b.generated_io);
  EXPECT_EQ(a.array_columns, b.array_columns);
  EXPECT_EQ(a.n_kernels, b.n_kernels);
  EXPECT_EQ(a.n_edges, b.n_edges);
  expect_equal_spans(a.placement_coords, b.placement_coords, "placement");
  expect_equal_spans(a.edge_flags, b.edge_flags, "edge_flags");
  expect_equal_spans(a.edge_hop, b.edge_hop, "edge_hop");
  expect_equal_spans(a.edge_cost, b.edge_cost, "edge_cost");
  expect_equal_adj(a.kernel_in_edges, b.kernel_in_edges, "kernel_in");
  expect_equal_adj(a.kernel_out_edges, b.kernel_out_edges, "kernel_out");
  expect_equal_adj(a.edge_producer_kernels, b.edge_producer_kernels,
                   "edge_producers");
  expect_equal_adj(a.edge_consumer_kernels, b.edge_consumer_kernels,
                   "edge_consumers");
  // Field-by-field: CostModel has padding after its int member, so a
  // struct memcmp would compare indeterminate bytes.
  EXPECT_EQ(a.cost.vector_slots, b.cost.vector_slots);
  EXPECT_EQ(a.cost.shuffle_slots, b.cost.shuffle_slots);
  EXPECT_EQ(a.cost.load_slots, b.cost.load_slots);
  EXPECT_EQ(a.cost.store_slots, b.cost.store_slots);
  EXPECT_EQ(a.cost.scalar_slots, b.cost.scalar_slots);
  EXPECT_EQ(a.cost.activation_ramp, b.cost.activation_ramp);
  EXPECT_EQ(a.cost.stream_beat_bits, b.cost.stream_beat_bits);
  EXPECT_EQ(a.cost.plio_clock_ratio, b.cost.plio_clock_ratio);
  EXPECT_EQ(a.cost.stream_access_overhead, b.cost.stream_access_overhead);
  EXPECT_EQ(a.cost.generated_beat_factor, b.cost.generated_beat_factor);
  EXPECT_EQ(a.cost.window_sync_cycles, b.cost.window_sync_cycles);
  EXPECT_EQ(a.cost.window_bytes_per_cycle, b.cost.window_bytes_per_cycle);
  EXPECT_EQ(a.cost.hop_cycles, b.cost.hop_cycles);
  EXPECT_EQ(a.cost.gmio_setup_cycles, b.cost.gmio_setup_cycles);
  EXPECT_EQ(a.cost.gmio_bytes_per_cycle, b.cost.gmio_bytes_per_cycle);
  // The arena IS the payload, so equal artifacts are equal byte-for-byte.
  EXPECT_EQ(a.payload(), b.payload());
}

TEST_F(StoreFixture, SerializeDeserializeRoundTrip) {
  auto cg = compile();
  ASSERT_NE(cg, nullptr);
  const std::string payload = aiesim::serialize_compiled_graph(*cg);
  auto back = aiesim::deserialize_compiled_graph(
      reinterpret_cast<const std::byte*>(payload.data()), payload.size());
  ASSERT_NE(back, nullptr);
  expect_equal_artifacts(*cg, *back);
}

TEST_F(StoreFixture, DeserializeRejectsEveryTruncation) {
  auto cg = compile();
  const std::string payload = aiesim::serialize_compiled_graph(*cg);
  // Every proper prefix must be rejected cleanly (no crash, no partial
  // artifact) -- the Reader bounds-checks each field.
  for (std::size_t cut = 0; cut < payload.size();
       cut += std::max<std::size_t>(1, payload.size() / 97)) {
    EXPECT_EQ(aiesim::deserialize_compiled_graph(
                  reinterpret_cast<const std::byte*>(payload.data()), cut),
              nullptr)
        << "cut=" << cut;
  }
}

TEST_F(StoreFixture, SaveLoadThroughStore) {
  auto cg = compile();
  aiesim::CompiledStore store{dir_};
  store.save(*cg);
  EXPECT_EQ(store.stats().saves, 1u);
  ASSERT_TRUE(fs::exists(store.path_for(cg->key)));

  auto loaded = store.load(cg->key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->from_store);
  EXPECT_FALSE(cg->from_store);
  expect_equal_artifacts(*cg, *loaded);
  EXPECT_EQ(store.stats().load_hits, 1u);
  EXPECT_EQ(store.load("no-such-key"), nullptr);
  EXPECT_EQ(store.stats().load_misses, 1u);
}

TEST_F(StoreFixture, LoadedArtifactIsZeroCopyIntoItsPayload) {
  auto cg = compile();
  aiesim::CompiledStore store{dir_};
  store.save(*cg);
  auto loaded = store.load(cg->key);
  ASSERT_NE(loaded, nullptr);

  // Every table must be a view into the artifact's own payload arena
  // (for a store load: the file mapping) -- no per-table copies.
  const char* lo = loaded->payload_data;
  const char* hi = lo + loaded->payload_bytes;
  auto inside = [&](const void* p, std::size_t bytes) {
    const char* c = static_cast<const char*>(p);
    return lo <= c && c + bytes <= hi;
  };
  EXPECT_TRUE(inside(loaded->placement_coords.data(),
                     loaded->placement_coords.size_bytes()));
  EXPECT_TRUE(inside(loaded->edge_flags.data(),
                     loaded->edge_flags.size_bytes()));
  EXPECT_TRUE(inside(loaded->edge_hop.data(), loaded->edge_hop.size_bytes()));
  EXPECT_TRUE(inside(loaded->edge_cost.data(),
                     loaded->edge_cost.size_bytes()));
  for (const aiesim::AdjTable* t :
       {&loaded->kernel_in_edges, &loaded->kernel_out_edges,
        &loaded->edge_producer_kernels, &loaded->edge_consumer_kernels}) {
    EXPECT_TRUE(inside(t->offsets.data(), t->offsets.size_bytes()));
    EXPECT_TRUE(inside(t->values.data(), t->values.size_bytes()));
  }

  // ...and every span must be naturally aligned despite living at an
  // arbitrary offset behind the 24-byte file header.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(loaded->edge_hop.data()) % 8, 0u);
  EXPECT_EQ(
      reinterpret_cast<std::uintptr_t>(loaded->edge_cost.data()) %
          alignof(aiesim::EdgeCost),
      0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                loaded->kernel_in_edges.offsets.data()) %
                alignof(std::uint32_t),
            0u);

  // The compile-side artifact honors the same invariant (its arena).
  const char* clo = cg->payload_data;
  const char* chi = clo + cg->payload_bytes;
  const char* coords = reinterpret_cast<const char*>(
      cg->placement_coords.data());
  EXPECT_TRUE(clo <= coords && coords < chi);
}

TEST_F(StoreFixture, CacheIntegrationHitsTheStoreAcrossRestarts) {
  auto& cache = aiesim::CompiledGraphCache::instance();
  auto store = std::make_shared<aiesim::CompiledStore>(dir_);
  cache.set_store(store);
  cache.clear();

  auto first = cache.get_or_compile(chain_.view(), cost_, false, {}, 4);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->from_store);
  EXPECT_EQ(cache.stats().store_writes, 1u);
  EXPECT_EQ(cache.stats().store_hits, 0u);

  cache.clear();  // simulated daemon restart: memory gone, disk warm
  auto second = cache.get_or_compile(chain_.view(), cost_, false, {}, 4);
  ASSERT_NE(second, nullptr);
  EXPECT_TRUE(second->from_store);
  EXPECT_EQ(cache.stats().store_hits, 1u);
  EXPECT_EQ(cache.stats().store_writes, 0u);
  expect_equal_artifacts(*first, *second);

  // In-memory hit on the already-bound artifact: the store is not asked.
  auto third = cache.get_or_compile(chain_.view(), cost_, false, {}, 4);
  EXPECT_EQ(third.get(), second.get());
  EXPECT_EQ(store->stats().load_hits, 1u);
}

TEST_F(StoreFixture, CorruptedFilesFallBackToRecompile) {
  auto cg = compile();
  aiesim::CompiledStore store{dir_};
  const std::string path = store.path_for(cg->key);

  auto corrupt_at = [&](std::size_t offset) {
    store.save(*cg);
    std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(f.tellg());
    ASSERT_LT(offset, size);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
  };

  // Header CRC, payload CRC, and deep-payload corruption all reject and
  // delete the file; the next load is a plain miss.
  for (const std::size_t offset : {std::size_t{8}, std::size_t{30},
                                   std::size_t{200}}) {
    corrupt_at(offset);
    EXPECT_EQ(store.load(cg->key), nullptr) << "offset=" << offset;
    EXPECT_FALSE(fs::exists(path)) << "offset=" << offset;
  }

  // Truncations at every interesting boundary reject + delete too.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{10},
                                 std::size_t{24}, std::size_t{60}}) {
    store.save(*cg);
    fs::resize_file(path, keep);
    EXPECT_EQ(store.load(cg->key), nullptr) << "keep=" << keep;
    EXPECT_FALSE(fs::exists(path)) << "keep=" << keep;
  }
  EXPECT_GE(store.stats().load_failures, 7u);

  // And an undamaged save still loads: the store was not poisoned.
  store.save(*cg);
  EXPECT_NE(store.load(cg->key), nullptr);
}

TEST_F(StoreFixture, StaleVersionRejectedAndDeleted) {
  auto cg = compile();
  aiesim::CompiledStore store{dir_};
  store.save(*cg);
  const std::string path = store.path_for(cg->key);

  // Bump the format version and re-seal the header CRC so only the
  // version check can reject it.
  std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
  ASSERT_TRUE(f.good());
  aiesim::StoreFileHdr hdr{};
  f.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  hdr.version = aiesim::kStoreVersion + 1;
  hdr.header_crc = aiesim::store_crc32c(
      &hdr, offsetof(aiesim::StoreFileHdr, header_crc));
  f.seekp(0);
  f.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  f.close();

  EXPECT_EQ(store.load(cg->key), nullptr);
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(StoreFixture, FileCountCapEvictsOldestFirst) {
  aiesim::CompiledStore store{dir_, 256u << 20, /*max_files=*/2};
  auto& cache = aiesim::CompiledGraphCache::instance();
  // Distinct cost models produce distinct keys (and distinct files).
  for (int i = 0; i < 5; ++i) {
    cache.clear();
    aiesim::CostModel c = cost_;
    c.hop_cycles += static_cast<std::uint64_t>(i);
    auto cg = cache.get_or_compile(chain_.view(), c, false, {}, 4);
    store.save(*cg);
  }
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator{dir_}) {
    files += e.path().extension() == ".cgc" ? 1 : 0;
  }
  EXPECT_LE(files, 2u);
  EXPECT_GE(store.stats().evicted_files, 3u);
  // The most recent artifact survived the cap.
  aiesim::CostModel last = cost_;
  last.hop_cycles += 4;
  cache.clear();
  auto cg = cache.get_or_compile(chain_.view(), last, false, {}, 4);
  EXPECT_NE(store.load(cg->key), nullptr);
}

TEST_F(StoreFixture, ByteCapEvicts) {
  // A cap smaller than one artifact: every save immediately evicts, and
  // the directory never holds more than the just-written file.
  aiesim::CompiledStore store{dir_, /*max_bytes=*/1, /*max_files=*/256};
  auto cg = compile();
  store.save(*cg);
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator{dir_}) {
    files += e.path().extension() == ".cgc" ? 1 : 0;
  }
  EXPECT_EQ(files, 0u);
  EXPECT_GE(store.stats().evicted_files, 1u);
}

TEST_F(StoreFixture, StoreLoadedArtifactSimulatesIdentically) {
  auto& cache = aiesim::CompiledGraphCache::instance();
  auto store = std::make_shared<aiesim::CompiledStore>(dir_);

  // Fresh compile drives the baseline run.
  aiesim::SimConfig cfg;
  std::vector<int> out_fresh;
  const auto r_fresh =
      aiesim::simulate(chain_.view(), cfg, iota_vec(24), 5, out_fresh);

  // Persist, wipe memory, and rerun: the binding now comes off disk.
  cache.set_store(store);
  cache.clear();
  std::vector<int> out_warmup;
  (void)aiesim::simulate(chain_.view(), cfg, iota_vec(24), 5, out_warmup);
  EXPECT_GE(cache.stats().store_writes, 1u);
  cache.clear();
  std::vector<int> out_store;
  const auto r_store =
      aiesim::simulate(chain_.view(), cfg, iota_vec(24), 5, out_store);
  EXPECT_GE(cache.stats().store_hits, 1u);

  EXPECT_EQ(out_fresh, out_store);
  EXPECT_EQ(r_fresh.virtual_cycles, r_store.virtual_cycles);
  EXPECT_EQ(r_fresh.output_items, r_store.output_items);
  EXPECT_EQ(r_fresh.trace.digest(), r_store.trace.digest());
  EXPECT_EQ(r_fresh.step_checksum, r_store.step_checksum);
}

TEST_F(StoreFixture, CrcKnownVector) {
  // RFC 3720 iSCSI check value for "123456789" (CRC-32C Castagnoli).
  EXPECT_EQ(aiesim::store_crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(aiesim::store_crc32c("", 0), 0u);
}

TEST_F(StoreFixture, WideCrcIsDeterministicAndBitSensitive) {
  // The 4-lane payload checksum: stable across calls, and every single
  // flipped bit anywhere in the buffer changes the value (the property
  // the corruption tests lean on).
  std::vector<unsigned char> buf(4096 + 13);  // remainder lands in lane 3
  std::uint32_t x = 0x12345678u;
  for (auto& b : buf) {
    x = x * 1664525u + 1013904223u;
    b = static_cast<unsigned char>(x >> 24);
  }
  const std::uint32_t ref = aiesim::store_crc32c_wide(buf.data(), buf.size());
  EXPECT_EQ(ref, aiesim::store_crc32c_wide(buf.data(), buf.size()));
  for (std::size_t at : {std::size_t{0}, buf.size() / 4 - 1, buf.size() / 2,
                         (3 * buf.size()) / 4 + 5, buf.size() - 1}) {
    buf[at] ^= 0x01;
    EXPECT_NE(ref, aiesim::store_crc32c_wide(buf.data(), buf.size()))
        << "at=" << at;
    buf[at] ^= 0x01;
  }
  EXPECT_EQ(ref, aiesim::store_crc32c_wide(buf.data(), buf.size()));
  // Tiny inputs (quarter == 0) are well-defined too.
  (void)aiesim::store_crc32c_wide("abc", 3);
  EXPECT_EQ(aiesim::store_crc32c_wide("abc", 3),
            aiesim::store_crc32c_wide("abc", 3));
}

}  // namespace

// Sweep-engine primitives (core/sweep.hpp) and their composition with the
// aiesim ResimSession: Arena reset-not-free semantics, MpscQueue FIFO and
// multi-producer fuzz, SweepRunner batch execution + arena reuse,
// SessionPool exclusive leases, the ResimSession thread-affinity guard,
// and a pooled RTP sweep whose per-variant digests must equal a serial
// sweep of the same variants.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "aiesim/engine.hpp"
#include "aiesim/resim.hpp"
#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"
#include "core/sweep.hpp"

namespace {

using namespace cgsim;

// --- Arena -----------------------------------------------------------------

TEST(Arena, AllocatesAlignedAndGrows) {
  Arena a{64};
  void* p1 = a.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 16, 0u);
  void* p2 = a.allocate(1000);  // forces a bigger block
  EXPECT_NE(p2, nullptr);
  EXPECT_GE(a.capacity_bytes(), 1000u);
  EXPECT_GE(a.blocks(), 2u);
}

TEST(Arena, ResetKeepsCapacityAndReusesBlocks) {
  Arena a{128};
  for (int i = 0; i < 10; ++i) (void)a.alloc_array<int>(200);
  const std::size_t cap = a.capacity_bytes();
  const std::size_t nblocks = a.blocks();
  a.reset();
  EXPECT_EQ(a.capacity_bytes(), cap);
  EXPECT_EQ(a.blocks(), nblocks);
  EXPECT_EQ(a.resets(), 1u);
  // Steady state: the same allocation pattern must not grow the arena.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) (void)a.alloc_array<int>(200);
    a.reset();
  }
  EXPECT_EQ(a.capacity_bytes(), cap);
  EXPECT_EQ(a.blocks(), nblocks);
}

TEST(Arena, DistinctLiveAllocationsDoNotOverlap) {
  Arena a{64};
  int* x = a.alloc_array<int>(8);
  int* y = a.alloc_array<int>(8);
  for (int i = 0; i < 8; ++i) x[i] = i;
  for (int i = 0; i < 8; ++i) y[i] = 100 + i;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(x[i], i);
}

// --- MpscQueue -------------------------------------------------------------

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 100; ++i) q.push(i);
  int v = -1;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, MultiProducerPreservesPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kEach = 5000;
  MpscQueue<int> q;
  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kEach; ++i) q.push(p * kEach + i);
    });
  }
  std::vector<int> last(kProducers, -1);
  int got = 0, v = -1;
  while (got < kProducers * kEach) {
    if (!q.try_pop(v)) continue;
    const int p = v / kEach;
    ASSERT_LT(p, kProducers);
    EXPECT_GT(v % kEach, last[static_cast<std::size_t>(p)]);
    last[static_cast<std::size_t>(p)] = v % kEach;
    ++got;
  }
  EXPECT_FALSE(q.try_pop(v));
}

// --- SweepRunner -----------------------------------------------------------

TEST(SweepRunner, RunsEveryJobExactlyOnceAcrossBatches) {
  SweepRunner runner{3};
  EXPECT_EQ(runner.workers(), 3);
  for (int batch = 0; batch < 4; ++batch) {
    std::set<std::size_t> seen;
    runner.run_batch(
        17,
        [](std::size_t i, SweepRunner::WorkerSlot& slot) {
          int* scratch = slot.arena.alloc_array<int>(64);
          scratch[0] = static_cast<int>(i);
          return static_cast<int>(i) * 2;
        },
        [&](std::size_t i, int r) {
          EXPECT_EQ(r, static_cast<int>(i) * 2);
          EXPECT_TRUE(seen.insert(i).second) << "job " << i << " duplicated";
        });
    EXPECT_EQ(seen.size(), 17u);
  }
  std::uint64_t jobs = 0, resets = 0;
  for (int i = 0; i < runner.workers(); ++i) {
    jobs += runner.slot(i).jobs;
    resets += runner.slot(i).arena.resets();
  }
  EXPECT_EQ(jobs, 4u * 17u);
  EXPECT_EQ(resets, 4u * 17u);  // one arena reset per job
}

TEST(SweepRunner, ArenaCapacityStabilizesAcrossBatches) {
  // Job distribution across workers is nondeterministic (on a loaded box
  // one worker can swallow a whole batch, leaving the other's arena empty
  // until a later batch), so the multi-worker check is the per-slot
  // invariant: the 4 KiB scratch fits the arena's first block and the
  // arena is reset -- not freed -- before every job, so no slot ever grows
  // past one block no matter how many jobs land on it.
  SweepRunner runner{2};
  const auto run_once = [](SweepRunner& r) {
    r.run_batch(
        8,
        [](std::size_t i, SweepRunner::WorkerSlot& slot) {
          (void)slot.arena.alloc_array<double>(512);
          return i;
        },
        [](std::size_t, std::size_t) {});
  };
  for (int b = 0; b < 4; ++b) run_once(runner);
  std::uint64_t jobs = 0;
  for (int i = 0; i < runner.workers(); ++i) {
    jobs += runner.slot(i).jobs;
    EXPECT_LE(runner.slot(i).arena.blocks(), 1u);
    EXPECT_LE(runner.slot(i).arena.capacity_bytes(), std::size_t{1} << 16);
  }
  EXPECT_EQ(jobs, 4u * 8u);
  // Deterministic steady-state check: a single-worker pool serves every
  // job, so its capacity after batch 1 must not grow over later batches.
  SweepRunner solo{1};
  run_once(solo);
  const std::size_t cap = solo.slot(0).arena.capacity_bytes();
  EXPECT_GT(cap, 0u);
  for (int b = 0; b < 3; ++b) run_once(solo);
  EXPECT_EQ(solo.slot(0).arena.capacity_bytes(), cap);
}

// --- SessionPool -----------------------------------------------------------

struct FakeSession {
  int id;
};

TEST(SessionPool, LeasesAreExclusiveAndWarmAfterReturn) {
  SessionPool<int, FakeSession> pool;
  int next_id = 0;
  const auto make = [&] {
    return std::make_unique<FakeSession>(FakeSession{next_id++});
  };
  {
    auto l1 = pool.checkout(0, make);
    auto l2 = pool.checkout(0, make);  // first lease still out: new session
    EXPECT_TRUE(l1.fresh());
    EXPECT_TRUE(l2.fresh());
    EXPECT_NE(l1->id, l2->id);
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 2u);
  EXPECT_EQ(pool.created(), 2u);
  {
    auto l3 = pool.checkout(0, make);
    EXPECT_FALSE(l3.fresh());  // reused, baseline already established
    EXPECT_EQ(pool.idle_count(), 1u);
  }
  EXPECT_EQ(pool.reused(), 1u);
  // Keys are separate lanes: a different key never reuses lane 0 sessions.
  auto l4 = pool.checkout(7, make);
  EXPECT_TRUE(l4.fresh());
  EXPECT_EQ(pool.created(), 3u);
}

TEST(SessionPool, CapacityBoundsIdleRetention) {
  SessionPool<int, FakeSession> pool;
  pool.set_capacity(2);
  int next_id = 0;
  const auto make = [&] {
    return std::make_unique<FakeSession>(FakeSession{next_id++});
  };
  for (int key = 0; key < 3; ++key) {
    auto l = pool.checkout(key, make);  // returned at scope end
  }
  EXPECT_EQ(pool.idle_count(), 2u);
  EXPECT_EQ(pool.evicted(), 1u);
  // Key 0 was the least-recently-returned lane and is gone; 1 and 2 warm.
  // Hold all three leases at once so the put_backs can't evict mid-check.
  auto l0 = pool.checkout(0, make);
  auto l1 = pool.checkout(1, make);
  auto l2 = pool.checkout(2, make);
  EXPECT_TRUE(l0.fresh());
  EXPECT_FALSE(l1.fresh());
  EXPECT_FALSE(l2.fresh());
}

TEST(SessionPool, EvictionOrderFollowsRecency) {
  SessionPool<int, FakeSession> pool;
  pool.set_capacity(2);
  int next_id = 0;
  const auto make = [&] {
    return std::make_unique<FakeSession>(FakeSession{next_id++});
  };
  { auto l = pool.checkout(0, make); }
  { auto l = pool.checkout(1, make); }
  // Touch key 0: checkout + return moves it to most-recently-returned.
  { auto l = pool.checkout(0, make); }
  // A third lane overflows the pool; key 1 is now the oldest and evicts.
  { auto l = pool.checkout(2, make); }
  EXPECT_EQ(pool.evicted(), 1u);
  auto l0 = pool.checkout(0, make);
  auto l1 = pool.checkout(1, make);
  EXPECT_FALSE(l0.fresh());
  EXPECT_TRUE(l1.fresh());
}

TEST(SessionPool, SetCapacityShrinkEvictsImmediately) {
  SessionPool<int, FakeSession> pool;
  int next_id = 0;
  const auto make = [&] {
    return std::make_unique<FakeSession>(FakeSession{next_id++});
  };
  for (int key = 0; key < 4; ++key) {
    auto l = pool.checkout(key, make);
  }
  EXPECT_EQ(pool.idle_count(), 4u);
  pool.set_capacity(1);
  EXPECT_EQ(pool.idle_count(), 1u);
  EXPECT_EQ(pool.evicted(), 3u);
  EXPECT_FALSE(pool.checkout(3, make).fresh());  // newest lane survives
}

TEST(SessionPool, ZeroCapacityRetainsNothing) {
  SessionPool<int, FakeSession> pool;
  pool.set_capacity(0);
  int next_id = 0;
  const auto make = [&] {
    return std::make_unique<FakeSession>(FakeSession{next_id++});
  };
  { auto l = pool.checkout(0, make); }
  { auto l = pool.checkout(0, make); }
  EXPECT_EQ(pool.idle_count(), 0u);
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.reused(), 0u);
  EXPECT_EQ(pool.evicted(), 2u);
}

TEST(SessionPool, ConcurrentCheckoutStressUnderTinyCapacity) {
  // N threads hammer a capacity-2 pool across a handful of keys: every
  // lease must stay exclusive (no two threads inside one session at
  // once), no thread may ever observe a destroyed session (use after
  // evict), and the created/reused/evicted counters must balance.
  struct StressSession {
    std::atomic<int> occupants{0};
    std::atomic<bool> destroyed{false};
    std::uint64_t scribble = 0;

    ~StressSession() { destroyed.store(true, std::memory_order_release); }
  };
  SessionPool<int, StressSession> pool;
  pool.set_capacity(2);

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::atomic<std::uint64_t> made{0};
  std::atomic<int> exclusivity_violations{0};
  std::atomic<int> dead_sessions_seen{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      unsigned x = static_cast<unsigned>(t) * 2654435761u + 1;
      for (int i = 0; i < kItersPerThread; ++i) {
        x = x * 1664525u + 1013904223u;
        const int key = static_cast<int>(x % 5);
        auto lease = pool.checkout(key, [&] {
          made.fetch_add(1, std::memory_order_relaxed);
          return std::make_unique<StressSession>();
        });
        if (lease->destroyed.load(std::memory_order_acquire)) {
          dead_sessions_seen.fetch_add(1, std::memory_order_relaxed);
        }
        if (lease->occupants.fetch_add(1, std::memory_order_acq_rel) !=
            0) {
          exclusivity_violations.fetch_add(1, std::memory_order_relaxed);
        }
        // Unsynchronized write: TSan flags any lease-sharing the
        // occupants counter somehow missed.
        lease->scribble += static_cast<std::uint64_t>(key) + 1;
        lease->occupants.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(exclusivity_violations.load(), 0);
  EXPECT_EQ(dead_sessions_seen.load(), 0);
  EXPECT_EQ(pool.created(), made.load());
  EXPECT_EQ(pool.created(),
            static_cast<std::uint64_t>(kThreads) * kItersPerThread -
                pool.reused());
  EXPECT_LE(pool.idle_count(), 2u) << "capacity cap violated";
  // Everything built either idles in the pool now or was evicted.
  EXPECT_EQ(pool.created(), pool.evicted() + pool.idle_count());
}

// --- ResimSession thread-affinity guard ------------------------------------

std::atomic<bool> sg_gate{false};
std::atomic<bool> sg_entered{false};

COMPUTE_KERNEL(aie, sg_slow_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) {
    const int v = co_await in.get();
    sg_entered.store(true, std::memory_order_release);
    while (!sg_gate.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    co_await out.put(v + 1);
  }
}

TEST(ResimGuard, ConcurrentEntryThrowsInsteadOfCorrupting) {
  rt::DynamicGraphBuilder b;
  const int e0 = b.add_edge<int>();
  const int e1 = b.add_edge<int>();
  b.add_kernel(sg_slow_inc, {e0, e1});
  b.add_input(e0);
  b.add_output(e1);
  const GraphView view = b.view();
  aiesim::SimConfig cfg;
  aiesim::ResimSession session{view, cfg};

  sg_gate.store(false);
  sg_entered.store(false);
  const std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  std::jthread runner{[&] { (void)session.run(in, out); }};
  while (!sg_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The session is mid-run on `runner`; entering from this thread must
  // fail loudly -- this is the invariant SessionPool's exclusive leases
  // uphold by construction.
  std::vector<int> out2;
  EXPECT_THROW((void)session.run(in, out2), std::logic_error);
  EXPECT_THROW((void)session.resimulate({}, in, out2), std::logic_error);
  sg_gate.store(true, std::memory_order_release);
  runner.join();
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
  // After the run finishes the guard is released: re-entry works again.
  (void)session.run(in, out2);
  EXPECT_EQ(out2, (std::vector<int>{2, 3, 4}));
}

// --- pooled aiesim sweep matches serial ------------------------------------

inline constexpr PortSettings ts_rtp{.rtp = true};

COMPUTE_KERNEL(aie, ts_scale,
               KernelReadPort<int> in,
               KernelReadPort<int, ts_rtp> factor,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await factor.get());
  }
}

COMPUTE_KERNEL(aie, ts_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

// Distinct name on purpose: trace records are spliced by kernel name, so a
// name shared between a cone kernel and a skipped kernel forces the full-
// rerun fallback (see ResimSession::incremental_preconditions_hold).
COMPUTE_KERNEL(aie, ts_side_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

/// input0 -> scale(rtp = input1) -> inc -> output0, plus an independent
/// side chain input2 -> side_inc -> output1. The side chain stays outside
/// the RTP cone, so resimulate({1}) can actually run incrementally -- with
/// every kernel in the cone the session falls back to a full rerun.
void build_rtp_graph(rt::DynamicGraphBuilder& b) {
  const int in = b.add_edge<int>();
  b.add_input(in);
  const int rtp = b.add_edge<int>(1, ts_rtp);
  const int mid = b.add_edge<int>();
  const int out = b.add_edge<int>();
  b.add_kernel(ts_scale, {in, rtp, mid});
  b.add_kernel(ts_inc, {mid, out});
  b.add_output(out);
  b.add_input(rtp);  // input 1
  const int side_in = b.add_edge<int>();
  const int side_out = b.add_edge<int>();
  b.add_kernel(ts_side_inc, {side_in, side_out});
  b.add_input(side_in);    // input 2
  b.add_output(side_out);  // output 1
}

std::uint64_t variant_digest(const aiesim::SimResult& r,
                             const std::vector<int>& out,
                             const std::vector<int>& side_out) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* d, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(d);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  const std::uint64_t td = r.trace.digest();
  mix(&td, sizeof td);
  mix(&r.virtual_cycles, sizeof r.virtual_cycles);
  mix(out.data(), out.size() * sizeof(int));
  mix(side_out.data(), side_out.size() * sizeof(int));
  return h;
}

TEST(SweepIntegration, PooledRtpSweepMatchesSerialDigests) {
  constexpr int kVariants = 8;
  rt::DynamicGraphBuilder b;
  build_rtp_graph(b);
  const GraphView view = b.view();
  aiesim::SimConfig cfg;
  const std::vector<int> in{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> side{10, 20, 30};

  // Serial reference: simulate() per variant.
  std::vector<std::uint64_t> serial(kVariants);
  for (int v = 0; v < kVariants; ++v) {
    std::vector<int> out, side_out;
    const auto r = aiesim::simulate(view, cfg, in, v + 2, side, out, side_out);
    serial[static_cast<std::size_t>(v)] = variant_digest(r, out, side_out);
  }

  // Pooled: SweepRunner + SessionPool, resimulate({rtp}) per variant.
  SessionPool<int, aiesim::ResimSession> pool;
  SweepRunner runner{2};
  std::vector<std::uint64_t> pooled(kVariants);
  std::atomic<int> incremental{0};
  runner.run_batch(
      kVariants,
      [&](std::size_t i, SweepRunner::WorkerSlot&) {
        auto lease = pool.checkout(0, [&] {
          return std::make_unique<aiesim::ResimSession>(view, cfg);
        });
        std::vector<int> out, side_out;
        if (lease.fresh()) (void)lease->run(in, 1, side, out, side_out);
        const auto r = lease->resimulate({1}, in, static_cast<int>(i) + 2,
                                         side, out, side_out);
        if (lease->last_was_incremental()) {
          incremental.fetch_add(1, std::memory_order_relaxed);
        }
        return variant_digest(r, out, side_out);
      },
      [&](std::size_t i, std::uint64_t d) { pooled[i] = d; });

  EXPECT_EQ(pooled, serial);
  EXPECT_GE(incremental.load(), 1);  // warm sessions actually resimulate
  EXPECT_GE(pool.created(), 1u);
}

}  // namespace

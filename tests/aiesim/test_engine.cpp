// Cycle-approximate engine tests: virtual-time ordering, dependency
// propagation, the generated-I/O penalty and the execution trace.
#include <gtest/gtest.h>

#include <numeric>

#include "aiesim/engine.hpp"
#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, se_double,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(2.0f * co_await in.get());
}

COMPUTE_KERNEL(aie, se_chain2,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(1.0f + co_await in.get());
}

constexpr auto se_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> b, c;
  se_double(a, b);
  se_chain2(b, c);
  return std::make_tuple(c);
}>;

std::vector<float> some_input(std::size_t n) {
  std::vector<float> v(n);
  std::iota(v.begin(), v.end(), 1.0f);
  return v;
}

TEST(SimEngine, FunctionalResultsMatchCoop) {
  const auto in = some_input(64);
  std::vector<float> coop_out, sim_out;
  se_graph(in, coop_out);
  aiesim::SimConfig cfg;
  aiesim::simulate(se_graph.view(), cfg, in, sim_out);
  EXPECT_EQ(coop_out, sim_out);
}

TEST(SimEngine, VirtualTimeAdvances) {
  const auto in = some_input(32);
  std::vector<float> out;
  const auto res = aiesim::simulate(se_graph.view(), aiesim::SimConfig{},
                                    in, out);
  EXPECT_GT(res.virtual_cycles, 0u);
  EXPECT_GT(res.ns_total, 0.0);
  EXPECT_EQ(res.output_items, 32u);
}

TEST(SimEngine, MoreDataTakesMoreVirtualTime) {
  std::vector<float> out;
  const auto r1 = aiesim::simulate(se_graph.view(), aiesim::SimConfig{},
                                   some_input(16), out);
  out.clear();
  const auto r2 = aiesim::simulate(se_graph.view(), aiesim::SimConfig{},
                                   some_input(64), out);
  EXPECT_GT(r2.virtual_cycles, r1.virtual_cycles);
}

TEST(SimEngine, GeneratedIoIsSlowerOnStreams) {
  // The paper's central Table 1 mechanism: extracted kernels lose a
  // bounded fraction of stream throughput to the adapter thunk.
  const auto in = some_input(128);
  std::vector<float> out;
  aiesim::SimConfig native;
  const auto rn = aiesim::simulate(se_graph.view(), native, in, out);
  out.clear();
  aiesim::SimConfig generated;
  generated.generated_io = true;
  const auto rg = aiesim::simulate(se_graph.view(), generated, in, out);
  EXPECT_GT(rg.virtual_cycles, rn.virtual_cycles);
  const double rel = static_cast<double>(rn.virtual_cycles) /
                     static_cast<double>(rg.virtual_cycles);
  // >= 70 % (the paper's examples stay >= 85 %; this synthetic kernel has
  // almost no compute to amortize the I/O penalty, so allow more).
  EXPECT_GT(rel, 0.5);
  EXPECT_LT(rel, 1.0);
}

TEST(SimEngine, TraceRecordsOneEventPerOutputItem) {
  const auto in = some_input(20);
  std::vector<float> out;
  const auto res =
      aiesim::simulate(se_graph.view(), aiesim::SimConfig{}, in, out);
  ASSERT_EQ(res.trace.events().size(), 20u);
  // Trace timestamps are monotonically non-decreasing per kernel.
  std::uint64_t prev = 0;
  for (const auto& e : res.trace.events()) {
    EXPECT_GE(e.cycles, prev);
    prev = e.cycles;
    EXPECT_EQ(e.kernel, "se_chain2");  // the output-writing kernel
  }
  EXPECT_GT(res.trace.mean_iteration_delta(2), 0.0);
}

TEST(SimEngine, CycleDetailMatchesEventTiming) {
  // Per-cycle stepping is a fidelity knob, not a timing change.
  const auto in = some_input(32);
  std::vector<float> out;
  aiesim::SimConfig ev;
  const auto re = aiesim::simulate(se_graph.view(), ev, in, out);
  out.clear();
  aiesim::SimConfig cy;
  cy.detail = aiesim::DetailLevel::cycle;
  const auto rc = aiesim::simulate(se_graph.view(), cy, in, out);
  EXPECT_EQ(re.virtual_cycles, rc.virtual_cycles);
}

TEST(SimEngine, RepetitionsScaleWork) {
  std::vector<float> out;
  aiesim::SimConfig cfg;
  cfg.repetitions = 3;
  const auto res = aiesim::simulate(se_graph.view(), cfg, some_input(8), out);
  EXPECT_EQ(out.size(), 24u);
  EXPECT_EQ(res.output_items, 24u);
}

TEST(SimEngine, DownstreamKernelNeverOutrunsProducer) {
  // Virtual-time causality: the consumer's trace events must lie at or
  // after the producer could have delivered the data.
  const auto in = some_input(16);
  std::vector<float> out;
  const auto res =
      aiesim::simulate(se_graph.view(), aiesim::SimConfig{}, in, out);
  // With two chained kernels the makespan cannot be smaller than the
  // last trace event.
  ASSERT_FALSE(res.trace.events().empty());
  EXPECT_GE(res.virtual_cycles, res.trace.events().back().cycles);
}

TEST(SimEngine, NsPerIterationUsesClock) {
  const auto in = some_input(32);
  std::vector<float> out;
  aiesim::SimConfig cfg;
  const auto res = aiesim::simulate(se_graph.view(), cfg, in, out);
  const double d = res.trace.mean_iteration_delta(2);
  EXPECT_NEAR(res.ns_per_iteration(cfg.aie_mhz, 2), d * 1e3 / 1250.0, 1e-9);
}

TEST(Trace, DumpFormat) {
  aiesim::Trace t;
  t.record(10, "k", 1);
  t.record(25, "k", 2);
  std::ostringstream os;
  t.dump(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("t=10 kernel=k iteration=1"), std::string::npos);
  EXPECT_NE(s.find("t=25"), std::string::npos);
}

TEST(Trace, MeanDeltaNeedsEnoughEvents) {
  aiesim::Trace t;
  t.record(10, "k", 1);
  EXPECT_EQ(t.mean_iteration_delta(1), 0.0);
}

}  // namespace

namespace {

inline constexpr cgsim::PortSettings se_rtp{.rtp = true};

COMPUTE_KERNEL(aie, se_gain,
               cgsim::KernelReadPort<float> in,
               cgsim::KernelReadPort<float, se_rtp> gain,
               cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await gain.get());
  }
}

constexpr auto se_rtp_graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<float> a, cgsim::IoConnector<float> g) {
  cgsim::IoConnector<float> z;
  se_gain(a, g, z);
  return std::make_tuple(z);
}>;

TEST(SimEngine, RtpGraphsSimulateInVirtualTime) {
  std::vector<float> in(32, 2.0f);
  std::vector<float> out;
  const auto res = aiesim::simulate(se_rtp_graph.view(), aiesim::SimConfig{},
                                    in, 3.0f, out);
  ASSERT_EQ(out.size(), 32u);
  EXPECT_EQ(out[0], 6.0f);
  EXPECT_GT(res.virtual_cycles, 0u);
}

}  // namespace

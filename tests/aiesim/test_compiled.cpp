// Graph compilation + incremental cone re-simulation: differential tests.
//
// The compiled-graph cache and the ResimSession splice are only allowed to
// make simulation *faster*, never *different*: every observable (trace
// digest, makespan, output items, output data, per-tile stats) must be bit
// identical to a cold full run under EngineVariant::reference. These tests
// enforce that pop for pop -- first on targeted shapes that pin down the
// cone/replay boundary cases, then with a randomized differential fuzz
// over DynamicGraphBuilder-generated graphs and random dirty sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "aiesim/compiled.hpp"
#include "aiesim/engine.hpp"
#include "aiesim/resim.hpp"
#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"

namespace {

using namespace cgsim;

inline constexpr PortSettings tc_rtp{.rtp = true};

COMPUTE_KERNEL(aie, tc_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, tc_scale,
               KernelReadPort<int> in,
               KernelReadPort<int, tc_rtp> factor,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await factor.get());
  }
}

/// in -> tc_inc -> tc_scale(rtp) -> out: the canonical RTP-sweep shape.
/// Only tc_scale sits in the cone of the RTP input; the mid edge is
/// replayed from the baseline tap and tc_inc is skipped entirely.
class ChainFixture {
 public:
  ChainFixture() {
    a_ = b_.add_edge<int>();
    m_ = b_.add_edge<int>();
    z_ = b_.add_edge<int>();
    f_ = b_.add_edge<int>(1, tc_rtp);
    b_.add_kernel(tc_inc, {a_, m_});
    b_.add_kernel(tc_scale, {m_, f_, z_});
    b_.add_input(a_);
    b_.add_input(f_);
    b_.add_output(z_);
  }
  GraphView view() { return b_.view(); }

 private:
  rt::DynamicGraphBuilder b_;
  int a_, m_, z_, f_;
};

std::vector<int> iota_vec(std::size_t n, int start = 1) {
  std::vector<int> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = start + static_cast<int>(i);
  return v;
}

using TileKey =
    std::tuple<std::string, std::uint64_t, std::uint64_t, std::uint64_t,
               std::uint64_t>;

std::vector<TileKey> tile_keys(const aiesim::SimResult& r,
                               bool with_activations) {
  std::vector<TileKey> keys;
  keys.reserve(r.tiles.size());
  for (const auto& t : r.tiles) {
    keys.emplace_back(t.kernel, t.busy_cycles, t.final_clock,
                      with_activations ? t.activations : 0, t.iterations);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// The equality contract of the whole feature: every paper-level
/// observable matches. Scheduler-execution metadata (step_checksum,
/// per-tile activation counts) is only comparable between two *full*
/// runs -- a spliced run executes fewer scheduler segments by design.
void expect_same_observables(const aiesim::SimResult& a,
                             const aiesim::SimResult& b,
                             bool both_full = false) {
  EXPECT_EQ(a.virtual_cycles, b.virtual_cycles);
  EXPECT_EQ(a.output_items, b.output_items);
  EXPECT_EQ(a.trace.digest(), b.trace.digest());
  EXPECT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.run.deadlocked, b.run.deadlocked);
  EXPECT_EQ(a.run.items_consumed, b.run.items_consumed);
  EXPECT_EQ(tile_keys(a, both_full), tile_keys(b, both_full));
  if (both_full) {
    EXPECT_EQ(a.step_checksum, b.step_checksum);
  }
}

TEST(CompiledCache, HitsMissesAndClear) {
  auto& cache = aiesim::CompiledGraphCache::instance();
  cache.clear();
  ChainFixture g;
  aiesim::SimConfig cfg;  // fast variant: goes through the cache
  std::vector<int> out;
  (void)aiesim::simulate(g.view(), cfg, iota_vec(8), 3, out);
  const auto s1 = cache.stats();
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(s1.hits, 0u);
  EXPECT_EQ(s1.entries, 1u);
  (void)aiesim::simulate(g.view(), cfg, iota_vec(8), 3, out);
  const auto s2 = cache.stats();
  EXPECT_EQ(s2.misses, 1u);
  EXPECT_EQ(s2.hits, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CompiledCache, CostModelChangesTheKey) {
  auto& cache = aiesim::CompiledGraphCache::instance();
  cache.clear();
  ChainFixture g;
  aiesim::SimConfig cfg;
  std::vector<int> out;
  (void)aiesim::simulate(g.view(), cfg, iota_vec(8), 3, out);
  cfg.cost.stream_access_overhead += 1;
  (void)aiesim::simulate(g.view(), cfg, iota_vec(8), 3, out);
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 2u);  // distinct cost model => distinct artifact
  EXPECT_EQ(s.hits, 0u);
  cache.clear();
}

TEST(CompiledCache, ReferenceVariantBypassesTheCache) {
  auto& cache = aiesim::CompiledGraphCache::instance();
  cache.clear();
  ChainFixture g;
  aiesim::SimConfig cfg;
  cfg.engine = aiesim::EngineVariant::reference;
  std::vector<int> out;
  (void)aiesim::simulate(g.view(), cfg, iota_vec(8), 3, out);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(CompiledCache, CapacityBoundTriggersEviction) {
  auto& cache = aiesim::CompiledGraphCache::instance();
  cache.clear();
  cache.set_capacity(1);
  ChainFixture g;
  aiesim::SimConfig a;
  aiesim::SimConfig b;
  b.cost.hop_cycles += 2;
  std::vector<int> out;
  (void)aiesim::simulate(g.view(), a, iota_vec(4), 2, out);
  (void)aiesim::simulate(g.view(), b, iota_vec(4), 2, out);
  const auto s = cache.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GE(s.evictions, 1u);
  cache.set_capacity(64);
  cache.clear();
}

TEST(CompiledSim, CachedFastBindMatchesReference) {
  ChainFixture g;
  aiesim::SimConfig fast;
  aiesim::SimConfig ref;
  ref.engine = aiesim::EngineVariant::reference;
  std::vector<int> out_f;
  std::vector<int> out_r;
  // Run the fast variant twice so the second bind comes from a cache hit.
  std::vector<int> scratch;
  (void)aiesim::simulate(g.view(), fast, iota_vec(24), 5, scratch);
  const auto rf = aiesim::simulate(g.view(), fast, iota_vec(24), 5, out_f);
  const auto rr = aiesim::simulate(g.view(), ref, iota_vec(24), 5, out_r);
  EXPECT_EQ(out_f, out_r);
  expect_same_observables(rf, rr, /*both_full=*/true);
}

TEST(Resim, WarmRerunMatchesColdSimulate) {
  ChainFixture g;
  aiesim::SimConfig cfg;
  std::vector<int> out_cold;
  const auto cold = aiesim::simulate(g.view(), cfg, iota_vec(16), 4, out_cold);

  aiesim::ResimSession s{g.view(), cfg};
  std::vector<int> out_warm;
  const auto r1 = s.run(iota_vec(16), 4, out_warm);
  EXPECT_EQ(out_warm, out_cold);
  expect_same_observables(r1, cold, /*both_full=*/true);

  // Rerunning in place (reset channels + rebuilt coroutines, same engine
  // address) must reproduce the cold run again, bit for bit.
  const auto r2 = s.run(iota_vec(16), 4, out_warm);
  EXPECT_EQ(out_warm, out_cold);
  expect_same_observables(r2, cold, /*both_full=*/true);
}

TEST(Resim, RtpSweepRunsIncrementallyAndMatchesReference) {
  ChainFixture g;
  aiesim::SimConfig cfg;
  aiesim::SimConfig ref;
  ref.engine = aiesim::EngineVariant::reference;
  aiesim::ResimSession s{g.view(), cfg};
  std::vector<int> out;
  const auto in = iota_vec(12);
  (void)s.run(in, 2, out);
  for (int factor : {3, 5, -1, 7}) {
    std::vector<int> out_inc;
    std::vector<int> out_ref;
    const auto ri = s.resimulate({1}, in, factor, out_inc);
    EXPECT_TRUE(s.last_was_incremental());
    EXPECT_EQ(s.last_cone_size(), 1u);  // only tc_scale; tc_inc is replayed
    const auto rr = aiesim::simulate(g.view(), ref, in, factor, out_ref);
    EXPECT_EQ(out_inc, out_ref);
    expect_same_observables(ri, rr);
  }
}

TEST(Resim, EmptyDirtySetReturnsBaseline) {
  ChainFixture g;
  aiesim::SimConfig cfg;
  aiesim::ResimSession s{g.view(), cfg};
  std::vector<int> out_base;
  const auto base = s.run(iota_vec(10), 3, out_base);
  std::vector<int> out;
  const auto r = s.resimulate({}, iota_vec(10), 3, out);
  EXPECT_TRUE(s.last_was_incremental());
  EXPECT_EQ(s.last_cone_size(), 0u);
  EXPECT_EQ(out, out_base);  // outputs refilled from the baseline tap
  expect_same_observables(r, base, /*both_full=*/true);
}

TEST(Resim, CycleDetailFallsBackToFullRun) {
  ChainFixture g;
  aiesim::SimConfig cfg;
  cfg.detail = aiesim::DetailLevel::cycle;
  aiesim::SimConfig ref = cfg;
  ref.engine = aiesim::EngineVariant::reference;
  aiesim::ResimSession s{g.view(), cfg};
  std::vector<int> out;
  const auto in = iota_vec(12);
  (void)s.run(in, 2, out);
  std::vector<int> out_inc;
  std::vector<int> out_ref;
  const auto ri = s.resimulate({1}, in, 4, out_inc);
  EXPECT_FALSE(s.last_was_incremental());  // cycle micro-model: no splice
  const auto rr = aiesim::simulate(g.view(), ref, in, 4, out_ref);
  EXPECT_EQ(out_inc, out_ref);
  expect_same_observables(ri, rr);
}

TEST(Resim, DirtyStreamInputCoversTheWholeConeAndFallsBack) {
  ChainFixture g;
  aiesim::SimConfig cfg;
  aiesim::SimConfig ref;
  ref.engine = aiesim::EngineVariant::reference;
  aiesim::ResimSession s{g.view(), cfg};
  std::vector<int> out;
  (void)s.run(iota_vec(12), 2, out);
  // The stream input feeds tc_inc; closure pulls tc_scale in too, so the
  // cone is every kernel and incremental execution has nothing to skip.
  std::vector<int> out_inc;
  std::vector<int> out_ref;
  const auto in2 = iota_vec(12, 100);
  const auto ri = s.resimulate({0}, in2, 2, out_inc);
  EXPECT_FALSE(s.last_was_incremental());
  const auto rr = aiesim::simulate(g.view(), ref, in2, 2, out_ref);
  EXPECT_EQ(out_inc, out_ref);
  expect_same_observables(ri, rr);
}

TEST(Resim, CostModelChangeRerunsFullAndMatchesReference) {
  ChainFixture g;
  aiesim::SimConfig cfg;
  aiesim::ResimSession s{g.view(), cfg};
  std::vector<int> out;
  const auto in = iota_vec(12);
  (void)s.run(in, 2, out);
  aiesim::CostModel cost;
  cost.stream_access_overhead += 3;
  cost.hop_cycles += 1;
  std::vector<int> out_s;
  std::vector<int> out_r;
  const auto rs = s.resimulate_with_cost(cost, in, 2, out_s);
  EXPECT_FALSE(s.last_was_incremental());
  aiesim::SimConfig ref;
  ref.engine = aiesim::EngineVariant::reference;
  ref.cost = cost;
  const auto rr = aiesim::simulate(g.view(), ref, in, 2, out_r);
  EXPECT_EQ(out_s, out_r);
  expect_same_observables(rs, rr);
}

TEST(Resim, ReferenceVariantSupportsIncrementalSplice) {
  // The cone machinery sits above the engine variants: the reference
  // engine must splice to the same observables as the fast engine.
  ChainFixture g;
  aiesim::SimConfig cfg;
  cfg.engine = aiesim::EngineVariant::reference;
  aiesim::ResimSession s{g.view(), cfg};
  std::vector<int> out;
  const auto in = iota_vec(12);
  (void)s.run(in, 2, out);
  std::vector<int> out_inc;
  std::vector<int> out_ref;
  const auto ri = s.resimulate({1}, in, 9, out_inc);
  EXPECT_TRUE(s.last_was_incremental());
  const auto rr = aiesim::simulate(g.view(), cfg, in, 9, out_ref);
  EXPECT_EQ(out_inc, out_ref);
  expect_same_observables(ri, rr);
}

// ---------------------------------------------------------------------------
// Differential fuzz: random DAGs, random dirty sets, pop-for-pop equality
// against a cold EngineVariant::reference run of the same arguments.
// ---------------------------------------------------------------------------

// Distinct kernel handles (the builder names kernels after the handle, and
// the splice falls back when a cone kernel and a skipped kernel share a
// name -- using each handle at most once per graph keeps names unique so
// the fuzz actually exercises the incremental path).
#define TC_DEFINE_INC(NAME, DELTA)                      \
  COMPUTE_KERNEL(aie, NAME, KernelReadPort<int> in,     \
                 KernelWritePort<int> out) {            \
    while (true) co_await out.put(co_await in.get() + (DELTA)); \
  }

#define TC_DEFINE_ADD(NAME)                                        \
  COMPUTE_KERNEL(aie, NAME, KernelReadPort<int> a,                 \
                 KernelReadPort<int> b, KernelWritePort<int> out) { \
    while (true) co_await out.put(co_await a.get() + co_await b.get()); \
  }

#define TC_DEFINE_SCALE(NAME)                                     \
  COMPUTE_KERNEL(aie, NAME, KernelReadPort<int> in,               \
                 KernelReadPort<int, tc_rtp> factor,              \
                 KernelWritePort<int> out) {                      \
    while (true) {                                                \
      co_await out.put(co_await in.get() * co_await factor.get()); \
    }                                                             \
  }

TC_DEFINE_INC(fz_inc0, 1)
TC_DEFINE_INC(fz_inc1, 2)
TC_DEFINE_INC(fz_inc2, 3)
TC_DEFINE_INC(fz_inc3, 5)
TC_DEFINE_INC(fz_inc4, 7)
TC_DEFINE_INC(fz_inc5, 11)
TC_DEFINE_ADD(fz_add0)
TC_DEFINE_ADD(fz_add1)
TC_DEFINE_ADD(fz_add2)
TC_DEFINE_SCALE(fz_scale0)
TC_DEFINE_SCALE(fz_scale1)
TC_DEFINE_SCALE(fz_scale2)

struct KernelMaker {
  int data_inputs = 1;  ///< stream in-ports
  bool uses_rtp = false;
  std::function<void(rt::DynamicGraphBuilder&, const std::vector<int>&, int,
                     int)>
      emit;  ///< (builder, data in-edges, rtp edge, out edge)
};

std::vector<KernelMaker> maker_pool() {
  std::vector<KernelMaker> pool;
  const auto inc = [&pool](auto handle) {
    pool.push_back({1, false,
                    [handle](rt::DynamicGraphBuilder& b,
                             const std::vector<int>& in, int, int out) {
                      b.add_kernel(handle, {in[0], out});
                    }});
  };
  const auto add = [&pool](auto handle) {
    pool.push_back({2, false,
                    [handle](rt::DynamicGraphBuilder& b,
                             const std::vector<int>& in, int, int out) {
                      b.add_kernel(handle, {in[0], in[1], out});
                    }});
  };
  const auto scale = [&pool](auto handle) {
    pool.push_back({1, true,
                    [handle](rt::DynamicGraphBuilder& b,
                             const std::vector<int>& in, int rtp, int out) {
                      b.add_kernel(handle, {in[0], rtp, out});
                    }});
  };
  inc(fz_inc0); inc(fz_inc1); inc(fz_inc2);
  inc(fz_inc3); inc(fz_inc4); inc(fz_inc5);
  add(fz_add0); add(fz_add1); add(fz_add2);
  scale(fz_scale0); scale(fz_scale1); scale(fz_scale2);
  return pool;
}

/// One randomly built layered DAG plus the bookkeeping the fuzz needs.
struct FuzzGraph {
  rt::DynamicGraphBuilder builder;
  std::size_t n_stream_inputs = 0;
  bool has_rtp = false;        ///< rtp edge is input index n_stream_inputs
  std::size_t n_outputs = 0;
};

FuzzGraph build_random_graph(std::mt19937& rng) {
  FuzzGraph g;
  auto& b = g.builder;
  std::uniform_int_distribution<int> d_inputs(1, 2);
  std::uniform_int_distribution<int> d_kernels(3, 8);
  std::vector<int> data_edges;            // candidates for consumption
  std::vector<int> consumers;             // kernel-consumer count per edge id
  const auto new_edge = [&]() {
    const int e = b.add_edge<int>();
    if (static_cast<std::size_t>(e) >= consumers.size()) {
      consumers.resize(static_cast<std::size_t>(e) + 1, 0);
    }
    return e;
  };
  g.n_stream_inputs = static_cast<std::size_t>(d_inputs(rng));
  for (std::size_t i = 0; i < g.n_stream_inputs; ++i) {
    const int e = new_edge();
    data_edges.push_back(e);
    b.add_input(e);
  }
  auto pool = maker_pool();
  std::shuffle(pool.begin(), pool.end(), rng);
  int rtp_edge = -1;
  const int n_kernels = d_kernels(rng);
  std::size_t next = 0;
  for (int k = 0; k < n_kernels && next < pool.size(); ++k) {
    KernelMaker& m = pool[next++];
    if (m.uses_rtp && rtp_edge < 0) {
      rtp_edge = b.add_edge<int>(1, tc_rtp);
      if (static_cast<std::size_t>(rtp_edge) >= consumers.size()) {
        consumers.resize(static_cast<std::size_t>(rtp_edge) + 1, 0);
      }
      g.has_rtp = true;
    }
    std::vector<int> ins;
    std::uniform_int_distribution<std::size_t> pick(0, data_edges.size() - 1);
    for (int i = 0; i < m.data_inputs; ++i) {
      // Bias towards recent edges so graphs grow deep, not just wide.
      std::size_t idx = std::max(pick(rng), pick(rng));
      ins.push_back(data_edges[idx]);
      ++consumers[static_cast<std::size_t>(data_edges[idx])];
    }
    const int out = new_edge();
    m.emit(b, ins, rtp_edge, out);
    data_edges.push_back(out);
  }
  // Kernel-produced edges nobody consumes become global outputs. The
  // dispatch table below covers up to 6 outputs; any sink edge beyond that
  // stays unconsumed, which is safe because a run produces at most ~14
  // items per edge against a channel capacity of 64 (no backpressure).
  for (int e : data_edges) {
    const bool is_input = static_cast<std::size_t>(e) <
                          g.n_stream_inputs;  // inputs come first
    if (!is_input && consumers[static_cast<std::size_t>(e)] == 0 &&
        g.n_outputs < 6) {
      b.add_output(e);
      ++g.n_outputs;
    }
  }
  if (g.has_rtp) b.add_input(rtp_edge);
  return g;
}

TEST(Resim, DifferentialFuzzAgainstReference) {
  std::size_t incremental_runs = 0;
  std::size_t total_resims = 0;
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    std::mt19937 rng(seed);
    FuzzGraph g = build_random_graph(rng);
    const GraphView view = g.builder.view();
    if (g.n_outputs == 0) continue;  // degenerate; nothing observable

    std::uniform_int_distribution<int> d_len(4, 14);
    std::uniform_int_distribution<int> d_val(-20, 20);
    std::vector<std::vector<int>> inputs(g.n_stream_inputs);
    for (auto& v : inputs) {
      v.resize(static_cast<std::size_t>(d_len(rng)));
      for (int& x : v) x = d_val(rng);
    }
    int rtp_value = d_val(rng);
    std::vector<std::vector<int>> outs_resim(g.n_outputs);
    std::vector<std::vector<int>> outs_ref(g.n_outputs);

    aiesim::SimConfig cfg;
    aiesim::SimConfig ref;
    ref.engine = aiesim::EngineVariant::reference;
    aiesim::ResimSession session{view, cfg};

    // A graph invocation takes (inputs..., rtp?, outputs...) positionally;
    // the argument count varies per random graph, so dispatch over the
    // small set of shapes the generator can produce.
    const auto with_args = [&](std::vector<std::vector<int>>& outs,
                               auto&& fn) -> aiesim::SimResult {
      // simulate()'s sinks append; a resimulate() with an empty cone hands
      // back untouched baseline outputs. Start every invocation clean so
      // cross-round comparisons see exactly this run's data.
      for (auto& o : outs) o.clear();
      const std::size_t no = g.n_outputs;
      const std::size_t ni = g.n_stream_inputs;
      const bool rtp = g.has_rtp;
      const auto call = [&](auto&&... args) { return fn(args...); };
      // Generator bounds: 1-2 stream inputs, 0-1 rtp input, 1-6 outputs.
      if (ni == 1 && !rtp) {
        if (no == 1) return call(inputs[0], outs[0]);
        if (no == 2) return call(inputs[0], outs[0], outs[1]);
        if (no == 3) return call(inputs[0], outs[0], outs[1], outs[2]);
        if (no == 4)
          return call(inputs[0], outs[0], outs[1], outs[2], outs[3]);
        if (no == 5)
          return call(inputs[0], outs[0], outs[1], outs[2], outs[3], outs[4]);
        return call(inputs[0], outs[0], outs[1], outs[2], outs[3], outs[4],
                    outs[5]);
      }
      if (ni == 1 && rtp) {
        if (no == 1) return call(inputs[0], rtp_value, outs[0]);
        if (no == 2) return call(inputs[0], rtp_value, outs[0], outs[1]);
        if (no == 3)
          return call(inputs[0], rtp_value, outs[0], outs[1], outs[2]);
        if (no == 4)
          return call(inputs[0], rtp_value, outs[0], outs[1], outs[2],
                      outs[3]);
        if (no == 5)
          return call(inputs[0], rtp_value, outs[0], outs[1], outs[2],
                      outs[3], outs[4]);
        return call(inputs[0], rtp_value, outs[0], outs[1], outs[2], outs[3],
                    outs[4], outs[5]);
      }
      if (ni == 2 && !rtp) {
        if (no == 1) return call(inputs[0], inputs[1], outs[0]);
        if (no == 2) return call(inputs[0], inputs[1], outs[0], outs[1]);
        if (no == 3)
          return call(inputs[0], inputs[1], outs[0], outs[1], outs[2]);
        if (no == 4)
          return call(inputs[0], inputs[1], outs[0], outs[1], outs[2],
                      outs[3]);
        if (no == 5)
          return call(inputs[0], inputs[1], outs[0], outs[1], outs[2],
                      outs[3], outs[4]);
        return call(inputs[0], inputs[1], outs[0], outs[1], outs[2], outs[3],
                    outs[4], outs[5]);
      }
      if (no == 1) return call(inputs[0], inputs[1], rtp_value, outs[0]);
      if (no == 2)
        return call(inputs[0], inputs[1], rtp_value, outs[0], outs[1]);
      if (no == 3)
        return call(inputs[0], inputs[1], rtp_value, outs[0], outs[1],
                    outs[2]);
      if (no == 4)
        return call(inputs[0], inputs[1], rtp_value, outs[0], outs[1],
                    outs[2], outs[3]);
      if (no == 5)
        return call(inputs[0], inputs[1], rtp_value, outs[0], outs[1],
                    outs[2], outs[3], outs[4]);
      return call(inputs[0], inputs[1], rtp_value, outs[0], outs[1], outs[2],
                  outs[3], outs[4], outs[5]);
    };
    ASSERT_LE(g.n_outputs, 6u) << "generator bound drifted; extend dispatch";

    // Baseline: warm session vs cold reference run.
    const auto base = with_args(outs_resim, [&](auto&... a) {
      return session.run(a...);
    });
    const auto base_ref = with_args(outs_ref, [&](auto&... a) {
      return aiesim::simulate(view, ref, a...);
    });
    ASSERT_FALSE(base.run.deadlocked) << "seed " << seed;
    expect_same_observables(base, base_ref);
    EXPECT_EQ(outs_resim, outs_ref) << "seed " << seed;

    // Random dirty sets: mutate some inputs, resimulate, diff against a
    // cold reference run of the same (new) arguments. Dirtiness is
    // relative to the *baseline*, which only full runs advance, so the
    // set accumulates across consecutive incremental rounds.
    std::set<std::size_t> dirty_vs_baseline;
    std::uniform_int_distribution<int> d_choice(0, 2);
    for (int round = 0; round < 4; ++round) {
      const int choice = d_choice(rng);
      if (g.has_rtp && choice != 1) {
        rtp_value = d_val(rng);
        dirty_vs_baseline.insert(g.n_stream_inputs);  // rtp is last
      }
      if (choice >= 1) {
        std::uniform_int_distribution<std::size_t> pick(
            0, g.n_stream_inputs - 1);
        const std::size_t i = pick(rng);
        for (int& x : inputs[i]) x = d_val(rng);
        dirty_vs_baseline.insert(i);
      }
      const std::vector<std::size_t> dirty(dirty_vs_baseline.begin(),
                                           dirty_vs_baseline.end());
      const auto ri = with_args(outs_resim, [&](auto&... a) {
        return session.resimulate(dirty, a...);
      });
      total_resims += 1;
      if (session.last_was_incremental()) {
        incremental_runs += 1;
      } else {
        dirty_vs_baseline.clear();  // fallback reran in full: new baseline
      }
      const auto rr = with_args(outs_ref, [&](auto&... a) {
        return aiesim::simulate(view, ref, a...);
      });
      expect_same_observables(ri, rr);
      EXPECT_EQ(outs_resim, outs_ref)
          << "seed " << seed << " round " << round << " dirty.size()="
          << dirty.size();
    }
  }
  EXPECT_GT(total_resims, 0u);
  // The point of the fuzz is to exercise the splice, not just the
  // fallback; with these seeds a healthy fraction runs incrementally.
  EXPECT_GT(incremental_runs, 0u);
  aiesim::CompiledGraphCache::instance().clear();
}

}  // namespace

// Instrumentation plumbing: operation counting into the active counter.
#include <gtest/gtest.h>

#include "aie/aie.hpp"

namespace {

TEST(CycleModel, NoCounterMeansNoCrash) {
  ASSERT_EQ(aie::active_counter(), nullptr);
  const auto v = aie::broadcast<float, 8>(1.0f);
  (void)aie::add(v, v);  // records into nothing
  SUCCEED();
}

TEST(CycleModel, ScopedCounterCollects) {
  aie::OpCounter c;
  {
    aie::ScopedCounter scope{&c};
    const auto v = aie::broadcast<float, 8>(1.0f);
    (void)aie::add(v, v);
    (void)aie::mul(v, v);
  }
  EXPECT_EQ(aie::active_counter(), nullptr);
  EXPECT_EQ(c.counts[aie::OpClass::vector_alu], 2u);  // broadcast + add
  EXPECT_EQ(c.counts[aie::OpClass::vector_mac], 1u);
}

TEST(CycleModel, ScopedCounterNests) {
  aie::OpCounter outer, inner;
  aie::ScopedCounter o{&outer};
  (void)aie::broadcast<int, 4>(1);
  {
    aie::ScopedCounter i{&inner};
    (void)aie::broadcast<int, 4>(2);
  }
  (void)aie::broadcast<int, 4>(3);
  EXPECT_EQ(outer.counts[aie::OpClass::vector_alu], 2u);
  EXPECT_EQ(inner.counts[aie::OpClass::vector_alu], 1u);
}

TEST(CycleModel, LoadsCountIn256BitUnits) {
  aie::OpCounter c;
  aie::ScopedCounter scope{&c};
  float buf[16] = {};
  (void)aie::load_v<16>(buf);  // 64 bytes = two 256-bit loads
  aie::store_v(buf, aie::v16float{});
  EXPECT_EQ(c.counts[aie::OpClass::load], 2u);
  EXPECT_EQ(c.counts[aie::OpClass::store], 2u);
}

TEST(CycleModel, SlidingMulCountsPointsMacs) {
  aie::OpCounter c;
  aie::ScopedCounter scope{&c};
  aie::vector<std::int16_t, 8> coeff;
  aie::vector<std::int16_t, 16> data;
  (void)aie::sliding_mul_ops<8, 8>::mul(coeff, 0u, data, 0u);
  EXPECT_EQ(c.counts[aie::OpClass::vector_mac], 8u);
}

TEST(CycleModel, CountsAccumulateAndReset) {
  aie::OpCounter c;
  {
    aie::ScopedCounter scope{&c};
    aie::record(aie::OpClass::scalar, 5);
    aie::record(aie::OpClass::scalar, 7);
  }
  EXPECT_EQ(c.counts[aie::OpClass::scalar], 12u);
  EXPECT_EQ(c.counts.total(), 12u);
  c.reset();
  EXPECT_EQ(c.counts.total(), 0u);
}

TEST(CycleModel, OpCountsAddition) {
  aie::OpCounts a, b;
  a.add(aie::OpClass::load, 3);
  b.add(aie::OpClass::load, 4);
  b.add(aie::OpClass::store, 1);
  a += b;
  EXPECT_EQ(a[aie::OpClass::load], 7u);
  EXPECT_EQ(a[aie::OpClass::store], 1u);
}

TEST(CycleModel, ClassNames) {
  EXPECT_EQ(aie::op_class_name(aie::OpClass::vector_mac), "vector_mac");
  EXPECT_EQ(aie::op_class_name(aie::OpClass::shuffle), "shuffle");
}

}  // namespace

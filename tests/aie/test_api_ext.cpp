// Extended AIE API surface: abs/clamp and the symmetric sliding multiply.
#include <gtest/gtest.h>

#include <random>

#include "aie/aie.hpp"

namespace {

TEST(AieApiExt, Abs) {
  aie::v4int32 a{-3, 4, 0, -7};
  EXPECT_EQ(aie::abs(a), (aie::v4int32{3, 4, 0, 7}));
  aie::v4float f{-1.5f, 2.5f};
  EXPECT_EQ(aie::abs(f), (aie::v4float{1.5f, 2.5f}));
}

TEST(AieApiExt, Clamp) {
  aie::v8int32 a;
  for (unsigned i = 0; i < 8; ++i) {
    a.set(i, static_cast<int>(i) * 10 - 35);  // -35 .. 35
  }
  const auto c = aie::clamp(a, -20, 20);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_GE(c.get(i), -20);
    EXPECT_LE(c.get(i), 20);
  }
  EXPECT_EQ(c.get(0), -20);
  EXPECT_EQ(c.get(7), 20);
  EXPECT_EQ(c.get(3), -5);  // in range: unchanged
}

TEST(AieApiExt, SymmetricSlidingMulMatchesGeneralForm) {
  // For a symmetric coefficient set the optimized form must equal the
  // general sliding multiply.
  aie::vector<std::int16_t, 8> sym_coeff{2, -5, 7, 11, 11, 7, -5, 2};
  aie::vector<std::int16_t, 16> data;
  std::mt19937 rng{5};
  std::uniform_int_distribution<int> d{-1000, 1000};
  for (unsigned i = 0; i < 16; ++i) {
    data.set(i, static_cast<std::int16_t>(d(rng)));
  }
  const auto general =
      aie::sliding_mul_ops<8, 8>::mul(sym_coeff, 0u, data, 0u);
  const auto symmetric =
      aie::sliding_mul_sym_ops<8, 8>::mul(sym_coeff, 0u, data, 0u);
  for (unsigned lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(general.get(lane), symmetric.get(lane)) << "lane " << lane;
  }
}

TEST(AieApiExt, SymmetricFormHalvesMacCount) {
  aie::vector<std::int16_t, 8> coeff{1, 2, 2, 1};
  aie::vector<std::int16_t, 16> data;
  aie::OpCounter general_ops, sym_ops;
  {
    aie::ScopedCounter s{&general_ops};
    (void)aie::sliding_mul_ops<8, 4>::mul(coeff, 0u, data, 0u);
  }
  {
    aie::ScopedCounter s{&sym_ops};
    (void)aie::sliding_mul_sym_ops<8, 4>::mul(coeff, 0u, data, 0u);
  }
  EXPECT_EQ(general_ops.counts[aie::OpClass::vector_mac], 4u);
  EXPECT_EQ(sym_ops.counts[aie::OpClass::vector_mac], 2u);
}

TEST(AieApiExt, FilterEvenOdd) {
  aie::v8int32 v;
  for (unsigned i = 0; i < 8; ++i) v.set(i, static_cast<int>(i));
  const auto even = aie::filter_even(v);
  const auto odd = aie::filter_odd(v);
  static_assert(decltype(even)::size_v == 4);
  EXPECT_EQ(even, (aie::v4int32{0, 2, 4, 6}));
  EXPECT_EQ(odd, (aie::v4int32{1, 3, 5, 7}));
  // interleave_zip(even, odd) restores the original ordering pairwise.
  aie::v4int32 e = even, o = odd;
  const auto [lo, hi] = aie::interleave_zip(e, o);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(lo.get(i), v.get(i));
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(hi.get(i), v.get(4 + i));
}

// Property: symmetric == general over random symmetric taps and data.
class SymSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SymSweep, EquivalenceOverRandomInputs) {
  std::mt19937 rng{GetParam()};
  std::uniform_int_distribution<int> d{-5000, 5000};
  aie::vector<std::int16_t, 8> coeff;
  for (unsigned p = 0; p < 4; ++p) {
    const auto c = static_cast<std::int16_t>(d(rng));
    coeff.set(p, c);
    coeff.set(7 - p, c);  // enforce symmetry
  }
  aie::vector<std::int16_t, 16> data;
  for (unsigned i = 0; i < 16; ++i) {
    data.set(i, static_cast<std::int16_t>(d(rng)));
  }
  const auto g = aie::sliding_mul_ops<8, 8>::mul(coeff, 0u, data, 0u);
  const auto s = aie::sliding_mul_sym_ops<8, 8>::mul(coeff, 0u, data, 0u);
  for (unsigned lane = 0; lane < 8; ++lane) {
    ASSERT_EQ(g.get(lane), s.get(lane));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymSweep, ::testing::Range(0u, 12u));

}  // namespace

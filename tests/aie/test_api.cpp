// AIE API emulation: arithmetic, MACs, sliding multiplies, shuffles,
// compares/selects and reductions, checked against scalar models.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>

#include "aie/aie.hpp"

namespace {

TEST(AieApi, AddSubNeg) {
  aie::v4float a{1, 2, 3, 4}, b{10, 20, 30, 40};
  EXPECT_EQ(aie::add(a, b), (aie::v4float{11, 22, 33, 44}));
  EXPECT_EQ(aie::sub(b, a), (aie::v4float{9, 18, 27, 36}));
  EXPECT_EQ(aie::neg(a), (aie::v4float{-1, -2, -3, -4}));
}

TEST(AieApi, MinMax) {
  aie::v4int32 a{1, 9, 3, 7}, b{5, 2, 8, 7};
  EXPECT_EQ(aie::min(a, b), (aie::v4int32{1, 2, 3, 7}));
  EXPECT_EQ(aie::max(a, b), (aie::v4int32{5, 9, 8, 7}));
}

TEST(AieApi, MulFloatGoesToFloatAccum) {
  aie::v4float a{1.5f, 2, 3, 4}, b{2, 2, 2, 2};
  const auto acc = aie::mul(a, b);
  EXPECT_FLOAT_EQ(acc.get(0), 3.0f);
  EXPECT_FLOAT_EQ(acc.get(3), 8.0f);
}

TEST(AieApi, MulIntGoesToWideAccum) {
  aie::vector<std::int16_t, 4> a{30000, -30000}, b{4, 4};
  const auto acc = aie::mul(a, b);
  EXPECT_EQ(acc.get(0), 120000);   // exceeds int16 range: kept in acc48
  EXPECT_EQ(acc.get(1), -120000);
}

TEST(AieApi, MacAccumulates) {
  aie::v4float a{1, 2, 3, 4}, b{10, 10, 10, 10};
  auto acc = aie::mul(a, b);
  acc = aie::mac(acc, a, b);
  EXPECT_FLOAT_EQ(acc.get(2), 60.0f);
}

TEST(AieApi, MscSubtracts) {
  aie::v4float a{1, 2, 3, 4}, b{10, 10, 10, 10};
  auto acc = aie::mul(a, b);
  acc = aie::msc(acc, a, b);
  for (unsigned i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(acc.get(i), 0.0f);
}

TEST(AieApi, ScalarBroadcastMulMac) {
  aie::v4float a{1, 2, 3, 4};
  auto acc = aie::mul(a, 3.0f);
  EXPECT_FLOAT_EQ(acc.get(3), 12.0f);
  acc = aie::mac(acc, a, 1.0f);
  EXPECT_FLOAT_EQ(acc.get(3), 16.0f);
}

TEST(AieApi, SlidingMulMatchesScalarFir) {
  // 8 lanes, 4 taps over int16, against a scalar convolution.
  aie::vector<std::int16_t, 8> coeff{1, -2, 3, -4};
  aie::vector<std::int16_t, 16> data;
  for (unsigned i = 0; i < 16; ++i) {
    data.set(i, static_cast<std::int16_t>(i + 1));
  }
  const auto acc = aie::sliding_mul_ops<8, 4>::mul(coeff, 0u, data, 0u);
  for (unsigned lane = 0; lane < 8; ++lane) {
    std::int64_t want = 0;
    for (unsigned p = 0; p < 4; ++p) {
      want += static_cast<std::int64_t>(coeff.get(p)) * data.get(lane + p);
    }
    EXPECT_EQ(acc.get(lane), want) << "lane " << lane;
  }
}

TEST(AieApi, SlidingMacAccumulatesOnTop) {
  aie::vector<std::int16_t, 8> coeff{2};
  aie::vector<std::int16_t, 16> data;
  data.set(0, 5);
  auto acc = aie::sliding_mul_ops<8, 1>::mul(coeff, 0u, data, 0u);
  acc = aie::sliding_mul_ops<8, 1>::mac(acc, coeff, 0u, data, 0u);
  EXPECT_EQ(acc.get(0), 20);
}

TEST(AieApi, SlidingMulCoeffStep) {
  // CoeffStep = 2 reads every other coefficient.
  aie::vector<std::int16_t, 8> coeff{1, 99, 2, 99, 3, 99};
  aie::vector<std::int16_t, 16> data;
  for (unsigned i = 0; i < 16; ++i) data.set(i, 1);
  const auto acc =
      aie::sliding_mul_ops<4, 3, /*CoeffStep=*/2>::mul(coeff, 0u, data, 0u);
  EXPECT_EQ(acc.get(0), 1 + 2 + 3);
}

TEST(AieApi, CompareAndSelect) {
  aie::v4int32 a{1, 5, 3, 7}, b{2, 4, 3, 8};
  const auto m = aie::lt(a, b);
  EXPECT_TRUE(m.get(0));
  EXPECT_FALSE(m.get(1));
  EXPECT_FALSE(m.get(2));  // equal is not less
  const auto sel = aie::select(a, b, m);
  EXPECT_EQ(sel, (aie::v4int32{1, 4, 3, 7}));
  const auto g = aie::ge(a, b);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(g.get(i), !m.get(i));
}

TEST(AieApi, ShuffleUpDownAreInverse) {
  aie::v8int32 v;
  for (unsigned i = 0; i < 8; ++i) v.set(i, static_cast<int>(i));
  EXPECT_EQ(aie::shuffle_up(aie::shuffle_down(v, 3), 3), v);
  const auto d = aie::shuffle_down(v, 2);
  EXPECT_EQ(d.get(0), 2);
  EXPECT_EQ(d.get(7), 1);  // wraps
}

TEST(AieApi, Reverse) {
  aie::v4int32 v{1, 2, 3, 4};
  EXPECT_EQ(aie::reverse(v), (aie::v4int32{4, 3, 2, 1}));
  EXPECT_EQ(aie::reverse(aie::reverse(v)), v);
}

TEST(AieApi, ButterflyIsInvolution) {
  aie::v16float v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, static_cast<float>(i));
  for (unsigned stride : {1u, 2u, 4u, 8u}) {
    const auto b = aie::butterfly(v, stride);
    EXPECT_EQ(aie::butterfly(b, stride), v) << "stride " << stride;
    EXPECT_EQ(b.get(0), static_cast<float>(stride));
  }
}

TEST(AieApi, Permute) {
  aie::v4int32 v{10, 20, 30, 40};
  aie::vector<std::int32_t, 4> idx{3, 2, 1, 0};
  EXPECT_EQ(aie::permute(v, idx), (aie::v4int32{40, 30, 20, 10}));
}

TEST(AieApi, InterleaveZipUnzipRoundTrip) {
  aie::v8int32 a, b;
  for (unsigned i = 0; i < 8; ++i) {
    a.set(i, static_cast<int>(i));
    b.set(i, static_cast<int>(100 + i));
  }
  const auto [lo, hi] = aie::interleave_zip(a, b);
  EXPECT_EQ(lo.get(0), 0);
  EXPECT_EQ(lo.get(1), 100);
  EXPECT_EQ(lo.get(2), 1);
  const auto [even, odd] = aie::interleave_unzip(lo, hi);
  EXPECT_EQ(even, a);
  EXPECT_EQ(odd, b);
}

TEST(AieApi, Reductions) {
  aie::v8float v{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FLOAT_EQ(aie::reduce_add(v), 36.0f);
  EXPECT_FLOAT_EQ(aie::reduce_min(v), 1.0f);
  EXPECT_FLOAT_EQ(aie::reduce_max(v), 8.0f);
}

// Property sweep: a compare-exchange built from min/max/select sorts any
// pair of lanes -- the primitive underlying the bitonic kernel.
class CompareExchange : public ::testing::TestWithParam<unsigned> {};

TEST_P(CompareExchange, ButterflyMinMaxSorts) {
  const unsigned seed = GetParam();
  std::mt19937 rng{seed};
  std::uniform_real_distribution<float> dist{-100, 100};
  aie::v16float v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, dist(rng));
  const auto partner = aie::butterfly(v, 1);
  const auto lo = aie::min(v, partner);
  const auto hi = aie::max(v, partner);
  aie::mask<16> take_min;
  for (unsigned i = 0; i < 16; ++i) take_min.set(i, (i & 1) == 0);
  const auto r = aie::select(lo, hi, take_min);
  for (unsigned i = 0; i < 16; i += 2) {
    EXPECT_LE(r.get(i), r.get(i + 1));
    // The exchange is a permutation of each pair.
    EXPECT_EQ(std::minmax(v.get(i), v.get(i + 1)),
              std::minmax(r.get(i), r.get(i + 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompareExchange,
                         ::testing::Range(0u, 10u));

}  // namespace

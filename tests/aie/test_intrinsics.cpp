// AIE1 intrinsic-style compatibility layer.
#include <gtest/gtest.h>

#include "aie/aie.hpp"

namespace {

namespace ai = aie::intrinsics;

TEST(Intrinsics, FpmacFamily) {
  aie::v8float a{1, 2, 3, 4, 5, 6, 7, 8};
  aie::v8float b{2, 2, 2, 2, 2, 2, 2, 2};
  auto acc = ai::fpmul(a, b);
  EXPECT_FLOAT_EQ(acc.get(3), 8.0f);
  acc = ai::fpmac(acc, a, b);
  EXPECT_FLOAT_EQ(acc.get(3), 16.0f);
  acc = ai::fpmsc(acc, a, b);
  EXPECT_FLOAT_EQ(acc.get(3), 8.0f);
}

TEST(Intrinsics, Mac16IsWideAccumulate) {
  aie::v16int16 a, b;
  for (unsigned i = 0; i < 16; ++i) {
    a.set(i, 30000);
    b.set(i, 4);
  }
  auto acc = ai::mul16(a, b);
  acc = ai::mac16(acc, a, b);
  EXPECT_EQ(acc.get(0), 240000);  // exceeds int16: held in acc48
}

TEST(Intrinsics, UpdExtW) {
  aie::v16float big;
  aie::v8float half;
  for (unsigned i = 0; i < 8; ++i) half.set(i, static_cast<float>(i + 1));
  big = ai::upd_w(big, 1, half);
  EXPECT_EQ(big.get(8), 1.0f);
  EXPECT_EQ(big.get(15), 8.0f);
  EXPECT_EQ(big.get(0), 0.0f);
  const auto back = ai::ext_w(big, 1);
  EXPECT_EQ(back, half);
}

TEST(Intrinsics, UpdExtElem) {
  aie::v4int32 v{1, 2, 3, 4};
  v = ai::upd_elem(v, 2, 99);
  EXPECT_EQ(ai::ext_elem(v, 2), 99);
  EXPECT_EQ(ai::ext_elem(v, 0), 1);
}

TEST(Intrinsics, Concat) {
  aie::v4float lo{1, 2, 3, 4}, hi{5, 6, 7, 8};
  const auto c = ai::concat(lo, hi);
  static_assert(decltype(c)::size_v == 8);
  EXPECT_EQ(c.get(0), 1.0f);
  EXPECT_EQ(c.get(4), 5.0f);
  EXPECT_EQ(c.get(7), 8.0f);
}

TEST(Intrinsics, ShiftElementsZeroFills) {
  aie::v8int32 v;
  for (unsigned i = 0; i < 8; ++i) v.set(i, static_cast<int>(i + 1));
  const auto up = ai::shift_elements(v, 2);
  EXPECT_EQ(up.get(0), 0);
  EXPECT_EQ(up.get(2), 1);
  EXPECT_EQ(up.get(7), 6);
  const auto down = ai::shift_elements(v, -3);
  EXPECT_EQ(down.get(0), 4);
  EXPECT_EQ(down.get(4), 8);
  EXPECT_EQ(down.get(5), 0);
}

TEST(Intrinsics, RecordIntoCycleModel) {
  aie::OpCounter c;
  {
    aie::ScopedCounter s{&c};
    aie::v8float a, b;
    (void)ai::fpmac(ai::fpmul(a, b), a, b);
    (void)ai::concat(aie::v4float{}, aie::v4float{});
  }
  EXPECT_EQ(c.counts[aie::OpClass::vector_mac], 2u);
  EXPECT_GE(c.counts[aie::OpClass::shuffle], 1u);
}

}  // namespace

// Property / fuzz tests for the SIMD execution backends (src/aie/simd.hpp):
// every emulated intrinsic must produce bit-identical results on the
// scalar_backend (per-lane reference loops) and the native_backend (vector
// extensions), including the saturation / rounding / overflow corners and
// the permutation index edge cases. Also pins down the instrumentation
// invariants: OpCounts are byte-identical across backends, and the batched
// recording paths (ScopedCounterBatch, the IIR per-window scalar batch)
// count exactly what the per-element form counted.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <typeinfo>

#include "aie/aie.hpp"
#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/iir.hpp"

namespace {

using Scalar = aie::simd::scalar_backend;
using Native = aie::simd::native_backend;

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

template <class T>
T random_lane(std::mt19937& rng, bool full_range) {
  if constexpr (std::is_floating_point_v<T>) {
    if (!full_range) {
      // Finite-only: NaNs *generated* by float arithmetic (inf - inf,
      // 0 * inf) carry payload/sign bits that depend on how the compiler
      // schedules the operands, so the MAC-family fuzz sticks to numbers.
      // NaN *propagation* through min/max/select is covered by the
      // full-range element-wise fuzz, where it is well-defined.
      std::uniform_real_distribution<T> dist(T(-1e6), T(1e6));
      return dist(rng);
    }
    // Mostly finite values, with the order-sensitive specials mixed in.
    switch (rng() % 16) {
      case 0: return T(0.0);
      case 1: return T(-0.0);
      case 2: return std::numeric_limits<T>::quiet_NaN();
      case 3: return std::numeric_limits<T>::infinity();
      case 4: return -std::numeric_limits<T>::infinity();
      case 5: return std::numeric_limits<T>::denorm_min();
      default: {
        std::uniform_real_distribution<T> dist(T(-1e6), T(1e6));
        return dist(rng);
      }
    }
  } else {
    const auto raw = static_cast<std::int64_t>(rng()) -
                     static_cast<std::int64_t>(1u << 31);
    if (full_range) return static_cast<T>(raw);
    // MAC-safe range: keeps int64 accumulation far from overflow even for
    // 32-bit lanes (products stay below 2^40).
    return static_cast<T>(raw % (std::int64_t{1} << 20));
  }
}

template <class T, unsigned N>
aie::vector<T, N> random_vector(std::mt19937& rng, bool full_range = true) {
  aie::vector<T, N> v;
  for (unsigned i = 0; i < N; ++i) v.set(i, random_lane<T>(rng, full_range));
  return v;
}

/// Bit-exact comparison (NaN payloads and -0.0 included).
template <class T, unsigned N>
::testing::AssertionResult bits_eq(const aie::vector<T, N>& a,
                                   const aie::vector<T, N>& b) {
  if (std::memcmp(a.data().data(), b.data().data(), sizeof(T) * N) == 0) {
    return ::testing::AssertionSuccess();
  }
  auto r = ::testing::AssertionFailure() << "vectors differ:";
  for (unsigned i = 0; i < N; ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(T)) != 0) {
      r << " lane " << i << " (" << +a.get(i) << " vs " << +b.get(i) << ")";
    }
  }
  return r;
}

template <class Tag, unsigned N>
::testing::AssertionResult bits_eq(const aie::accum<Tag, N>& a,
                                   const aie::accum<Tag, N>& b) {
  using S = typename aie::accum<Tag, N>::storage;
  if (std::memcmp(a.data().data(), b.data().data(), sizeof(S) * N) == 0) {
    return ::testing::AssertionSuccess();
  }
  auto r = ::testing::AssertionFailure() << "accumulators differ:";
  for (unsigned i = 0; i < N; ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(S)) != 0) {
      r << " lane " << i << " (" << +a.get(i) << " vs " << +b.get(i) << ")";
    }
  }
  return r;
}

constexpr unsigned kFuzzRounds = 50;

// ---------------------------------------------------------------------------
// element-wise / compare / shuffle equivalence over the full type matrix
// ---------------------------------------------------------------------------

template <class T, unsigned N>
void check_elementwise(unsigned seed) {
  SCOPED_TRACE(::testing::Message() << "T=" << typeid(T).name() << " N=" << N);
  std::mt19937 rng(seed);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    const auto a = random_vector<T, N>(rng);
    const auto b = random_vector<T, N>(rng);

    EXPECT_TRUE(bits_eq(aie::add<Scalar>(a, b), aie::add<Native>(a, b)));
    EXPECT_TRUE(bits_eq(aie::sub<Scalar>(a, b), aie::sub<Native>(a, b)));
    EXPECT_TRUE(bits_eq(aie::neg<Scalar>(a), aie::neg<Native>(a)));
    EXPECT_TRUE(bits_eq(aie::abs<Scalar>(a), aie::abs<Native>(a)));
    EXPECT_TRUE(bits_eq(aie::min<Scalar>(a, b), aie::min<Native>(a, b)));
    EXPECT_TRUE(bits_eq(aie::max<Scalar>(a, b), aie::max<Native>(a, b)));

    T lo = random_lane<T>(rng, true);
    T hi = random_lane<T>(rng, true);
    if constexpr (std::is_floating_point_v<T>) {
      // std::clamp requires an ordered (non-NaN) range.
      if (std::isnan(lo)) lo = T(-1);
      if (std::isnan(hi)) hi = T(1);
    }
    if (hi < lo) std::swap(lo, hi);
    EXPECT_TRUE(
        bits_eq(aie::clamp<Scalar>(a, lo, hi), aie::clamp<Native>(a, lo, hi)));

    const T s = random_lane<T>(rng, true);
    EXPECT_TRUE(bits_eq(aie::broadcast<T, N, Scalar>(s),
                        aie::broadcast<T, N, Native>(s)));
    EXPECT_TRUE(bits_eq((aie::iota<T, N, Scalar>(s, T{3})),
                        (aie::iota<T, N, Native>(s, T{3}))));

    // Compares and select must agree on every lane pattern they produce.
    const auto mlt_s = aie::lt<Scalar>(a, b);
    const auto mlt_n = aie::lt<Native>(a, b);
    EXPECT_EQ(mlt_s, mlt_n);
    const auto mge_s = aie::ge<Scalar>(a, b);
    EXPECT_EQ(mge_s, aie::ge<Native>(a, b));
    EXPECT_TRUE(bits_eq(aie::select<Scalar>(a, b, mlt_s),
                        aie::select<Native>(a, b, mlt_n)));

    // Lane permutations, including rotations beyond N (wrap semantics).
    for (unsigned n : {0u, 1u, N / 2, N - 1, N, N + 3, 7 * N + 5}) {
      EXPECT_TRUE(bits_eq(aie::shuffle_down<Scalar>(a, n),
                          aie::shuffle_down<Native>(a, n)));
      EXPECT_TRUE(bits_eq(aie::shuffle_up<Scalar>(a, n),
                          aie::shuffle_up<Native>(a, n)));
    }
    EXPECT_TRUE(bits_eq(aie::reverse<Scalar>(a), aie::reverse<Native>(a)));
    for (unsigned stride : {1u, 2u, N / 2, N - 1, N + 1}) {
      EXPECT_TRUE(bits_eq(aie::butterfly<Scalar>(a, stride),
                          aie::butterfly<Native>(a, stride)));
    }

    // Arbitrary gather with hostile indices: negative and far out of range
    // (both reduce modulo N).
    aie::vector<std::int32_t, N> idx;
    for (unsigned i = 0; i < N; ++i) {
      const std::int32_t raw = static_cast<std::int32_t>(rng());
      idx.set(i, raw % 5 == 0 ? -static_cast<std::int32_t>(i + 1)
                              : raw % (3 * static_cast<std::int32_t>(N) + 7));
    }
    EXPECT_TRUE(
        bits_eq(aie::permute<Scalar>(a, idx), aie::permute<Native>(a, idx)));

    const auto zip_s = aie::interleave_zip<Scalar>(a, b);
    const auto zip_n = aie::interleave_zip<Native>(a, b);
    EXPECT_TRUE(bits_eq(zip_s.first, zip_n.first));
    EXPECT_TRUE(bits_eq(zip_s.second, zip_n.second));
    const auto unzip_s = aie::interleave_unzip<Scalar>(a, b);
    const auto unzip_n = aie::interleave_unzip<Native>(a, b);
    EXPECT_TRUE(bits_eq(unzip_s.first, unzip_n.first));
    EXPECT_TRUE(bits_eq(unzip_s.second, unzip_n.second));
    EXPECT_TRUE(
        bits_eq(aie::filter_even<Scalar>(a), aie::filter_even<Native>(a)));
    EXPECT_TRUE(
        bits_eq(aie::filter_odd<Scalar>(a), aie::filter_odd<Native>(a)));
  }
}

TEST(SimdBackend, ElementwiseEquivalenceAllTypes) {
  check_elementwise<std::int8_t, 8>(11);
  check_elementwise<std::int8_t, 16>(12);
  check_elementwise<std::int8_t, 32>(13);
  check_elementwise<std::int16_t, 8>(21);
  check_elementwise<std::int16_t, 16>(22);
  check_elementwise<std::int16_t, 32>(23);
  check_elementwise<std::int32_t, 8>(31);
  check_elementwise<std::int32_t, 16>(32);
  check_elementwise<std::int32_t, 32>(33);
  check_elementwise<float, 8>(41);
  check_elementwise<float, 16>(42);
  check_elementwise<float, 32>(43);
}

// ---------------------------------------------------------------------------
// reductions (sequential order must match exactly, floats included)
// ---------------------------------------------------------------------------

template <class T, unsigned N>
void check_reductions(unsigned seed) {
  std::mt19937 rng(seed);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    const auto a = random_vector<T, N>(rng, /*full_range=*/false);
    const T add_s = aie::reduce_add<Scalar>(a);
    const T add_n = aie::reduce_add<Native>(a);
    EXPECT_EQ(0, std::memcmp(&add_s, &add_n, sizeof(T)));
    EXPECT_EQ(aie::reduce_min<Scalar>(a), aie::reduce_min<Native>(a));
    EXPECT_EQ(aie::reduce_max<Scalar>(a), aie::reduce_max<Native>(a));
  }
}

TEST(SimdBackend, ReductionEquivalence) {
  check_reductions<std::int16_t, 16>(51);
  check_reductions<std::int32_t, 8>(52);
  check_reductions<float, 8>(53);
  check_reductions<float, 32>(54);
}

// ---------------------------------------------------------------------------
// MAC family: widening accumulation, scalar broadcasts, float accumulators
// ---------------------------------------------------------------------------

template <class T, unsigned N>
void check_mul_mac(unsigned seed) {
  SCOPED_TRACE(::testing::Message() << "T=" << typeid(T).name() << " N=" << N);
  std::mt19937 rng(seed);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    const auto a = random_vector<T, N>(rng, /*full_range=*/false);
    const auto b = random_vector<T, N>(rng, /*full_range=*/false);
    const auto c = random_vector<T, N>(rng, /*full_range=*/false);

    const auto acc_s = aie::mul<Scalar>(a, b);
    const auto acc_n = aie::mul<Native>(a, b);
    EXPECT_TRUE(bits_eq(acc_s, acc_n));
    EXPECT_TRUE(bits_eq(aie::mac<Scalar>(acc_s, b, c),
                        aie::mac<Native>(acc_n, b, c)));
    EXPECT_TRUE(bits_eq(aie::msc<Scalar>(acc_s, b, c),
                        aie::msc<Native>(acc_n, b, c)));

    const T s = random_lane<T>(rng, false);
    EXPECT_TRUE(bits_eq(aie::mul<Scalar>(a, s), aie::mul<Native>(a, s)));
    EXPECT_TRUE(
        bits_eq(aie::mac<Scalar>(acc_s, a, s), aie::mac<Native>(acc_n, a, s)));
  }
}

TEST(SimdBackend, MulMacEquivalence) {
  check_mul_mac<std::int8_t, 16>(61);
  check_mul_mac<std::int16_t, 8>(62);
  check_mul_mac<std::int16_t, 16>(63);
  check_mul_mac<std::int32_t, 8>(64);
  check_mul_mac<float, 8>(65);
  check_mul_mac<float, 16>(66);
}

// The narrow-product fast path: int16 extremes whose products overflow
// int16 (and whose running sum overflows int32) must still accumulate
// exactly in the wide lanes on both backends.
TEST(SimdBackend, MacSignedOverflowWideAccumulation) {
  constexpr unsigned N = 16;
  aie::vector<std::int16_t, N> lo, hi;
  for (unsigned i = 0; i < N; ++i) {
    lo.set(i, std::numeric_limits<std::int16_t>::min());  // -32768
    hi.set(i, i % 2 ? std::numeric_limits<std::int16_t>::max()
                    : std::numeric_limits<std::int16_t>::min());
  }
  auto acc_s = aie::mul<Scalar>(lo, hi);
  auto acc_n = aie::mul<Native>(lo, hi);
  EXPECT_TRUE(bits_eq(acc_s, acc_n));
  // (-32768)^2 accumulated 8 times exceeds int32 range: the packed 32-bit
  // product shortcut must widen *before* the accumulation.
  for (unsigned k = 0; k < 8; ++k) {
    acc_s = aie::mac<Scalar>(acc_s, lo, hi);
    acc_n = aie::mac<Native>(acc_n, lo, hi);
    EXPECT_TRUE(bits_eq(acc_s, acc_n));
  }
  EXPECT_EQ(acc_s.get(0),
            std::int64_t{9} * 32768 * 32768);  // 9 exact products summed
}

// ---------------------------------------------------------------------------
// srs / ups: saturation boundaries and round-half-up edges
// ---------------------------------------------------------------------------

template <class T>
void check_srs_boundaries() {
  SCOPED_TRACE(typeid(T).name());
  constexpr unsigned N = 8;
  const std::int64_t kMin = std::numeric_limits<T>::min();
  const std::int64_t kMax = std::numeric_limits<T>::max();
  const std::array<std::int64_t, N> lanes = {
      std::int64_t{1} << 47,     // saturates high through any small shift
      -(std::int64_t{1} << 47),  // saturates low
      kMax,                      // representable boundary
      kMin,
      2 * kMax + 1,  // (v+1)>>1 == kMax+1: saturates after rounding
      -1,            // round-half-up: (-1+1)>>1 == 0
      1,             // (1+1)>>1 == 1
      3,             // shift 2: (3+2)>>2 == 1
  };
  aie::acc48<N> acc;
  for (unsigned i = 0; i < N; ++i) acc.set(i, lanes[i]);

  for (int shift : {0, 1, 2, 14, 40}) {
    const auto s = aie::srs<T, Scalar>(acc, shift);
    const auto n = aie::srs<T, Native>(acc, shift);
    EXPECT_TRUE(bits_eq(s, n)) << "shift=" << shift;
    // Cross-check against the canonical scalar semantics.
    for (unsigned i = 0; i < N; ++i) {
      const auto want = aie::simd::detail::saturate_i64<T>(
          aie::simd::detail::shift_round(acc.get(i), shift));
      EXPECT_EQ(want, s.get(i)) << "shift=" << shift << " lane=" << i;
    }
  }

  // Negative shift is a plain left shift (no rounding, then saturate).
  aie::acc48<N> small;
  for (unsigned i = 0; i < N; ++i) small.set(i, static_cast<int>(i) - 4);
  const auto ls = aie::srs<T, Scalar>(small, -2);
  const auto ln = aie::srs<T, Native>(small, -2);
  EXPECT_TRUE(bits_eq(ls, ln));
  EXPECT_EQ(ls.get(0), static_cast<T>(-16));

  // Explicit saturation values survive the clamp on both backends.
  const auto sat0 = aie::srs<T, Scalar>(acc, 0);
  EXPECT_EQ(sat0.get(0), std::numeric_limits<T>::max());
  EXPECT_EQ(sat0.get(1), std::numeric_limits<T>::min());
}

TEST(SimdBackend, SrsSaturationBoundaries) {
  check_srs_boundaries<std::int8_t>();
  check_srs_boundaries<std::int16_t>();
  check_srs_boundaries<std::int32_t>();
}

TEST(SimdBackend, UpsAndFloatAccumMoves) {
  std::mt19937 rng(71);
  constexpr unsigned N = 16;
  const auto v16 = random_vector<std::int16_t, N>(rng);
  for (int shift : {0, 1, 14}) {
    EXPECT_TRUE(bits_eq(aie::ups<aie::acc48_tag, Scalar>(v16, shift),
                        aie::ups<aie::acc48_tag, Native>(v16, shift)));
  }
  const auto vf = random_vector<float, 8>(rng);
  EXPECT_TRUE(bits_eq(aie::to_accum<Scalar>(vf), aie::to_accum<Native>(vf)));
  const auto af = aie::to_accum<Scalar>(vf);
  EXPECT_TRUE(bits_eq(aie::to_vector<Scalar>(af), aie::to_vector<Native>(af)));
  EXPECT_TRUE(bits_eq(aie::srs<float, Scalar>(af, 0),
                      aie::srs<float, Native>(af, 0)));
}

// ---------------------------------------------------------------------------
// sliding multiplies: fast contiguous path vs generic wrap path
// ---------------------------------------------------------------------------

/// Reference semantics straight from the sliding_mul_ops doc comment.
template <unsigned Lanes, unsigned Points, int CoeffStep, int DataStepX,
          int DataStepY, class C, unsigned NC, class D, unsigned ND>
aie::acc48<Lanes> sliding_ref(const aie::vector<C, NC>& coeff, unsigned cstart,
                              const aie::vector<D, ND>& data, unsigned dstart) {
  aie::acc48<Lanes> acc;
  for (unsigned lane = 0; lane < Lanes; ++lane) {
    std::int64_t sum = 0;
    for (unsigned p = 0; p < Points; ++p) {
      const auto ci = static_cast<unsigned>(static_cast<int>(cstart) +
                                            static_cast<int>(p) * CoeffStep) %
                      NC;
      const auto di = static_cast<unsigned>(static_cast<int>(dstart) +
                                            static_cast<int>(lane) * DataStepY +
                                            static_cast<int>(p) * DataStepX) %
                      ND;
      sum += static_cast<std::int64_t>(coeff.get(ci)) *
             static_cast<std::int64_t>(data.get(di));
    }
    acc.set(lane, sum);
  }
  return acc;
}

TEST(SimdBackend, SlidingMulFastAndGenericPaths) {
  std::mt19937 rng(81);
  const auto coeff = random_vector<std::int16_t, 8>(rng);
  const auto data = random_vector<std::int16_t, 16>(rng);
  // dstart 0/1: contiguous fast path; dstart 12: lane+point indices wrap
  // past ND=16, forcing the generic modulo path.
  for (unsigned dstart : {0u, 1u, 12u}) {
    const auto want =
        sliding_ref<8, 8, 1, 1, 1>(coeff, 0u, data, dstart);
    const auto got_s =
        aie::sliding_mul_ops<8, 8, 1, 1, 1, Scalar>::mul(coeff, 0u, data,
                                                         dstart);
    const auto got_n =
        aie::sliding_mul_ops<8, 8, 1, 1, 1, Native>::mul(coeff, 0u, data,
                                                         dstart);
    EXPECT_TRUE(bits_eq(want, got_s)) << "dstart=" << dstart;
    EXPECT_TRUE(bits_eq(got_s, got_n)) << "dstart=" << dstart;
  }
  // Strided coefficient / data steps fall back to the generic path too.
  const auto want2 = sliding_ref<4, 4, 2, 2, 1>(coeff, 1u, data, 2u);
  const auto got2_s =
      aie::sliding_mul_ops<4, 4, 2, 2, 1, Scalar>::mul(coeff, 1u, data, 2u);
  const auto got2_n =
      aie::sliding_mul_ops<4, 4, 2, 2, 1, Native>::mul(coeff, 1u, data, 2u);
  EXPECT_TRUE(bits_eq(want2, got2_s));
  EXPECT_TRUE(bits_eq(got2_s, got2_n));

  // mac continues an existing accumulator identically on both paths.
  const auto acc0 = aie::sliding_mul_ops<8, 8, 1, 1, 1, Scalar>::mul(
      coeff, 0u, data, 0u);
  EXPECT_TRUE(bits_eq(
      aie::sliding_mul_ops<8, 8, 1, 1, 1, Scalar>::mac(acc0, coeff, 2u, data,
                                                       1u),
      aie::sliding_mul_ops<8, 8, 1, 1, 1, Native>::mac(acc0, coeff, 2u, data,
                                                       1u)));
}

// Coefficients wider than int16 must bypass the packed-32-bit broadcast-MAC
// shortcut (the runtime magnitude check) and still match the reference.
TEST(SimdBackend, SlidingMulWideCoefficients) {
  std::mt19937 rng(82);
  aie::vector<std::int32_t, 8> coeff;
  for (unsigned i = 0; i < 8; ++i) {
    coeff.set(i, (i % 2 ? 1 : -1) * (100000 + static_cast<int>(i)));
  }
  const auto data = random_vector<std::int16_t, 16>(rng);
  const auto want = sliding_ref<8, 4, 1, 1, 1>(coeff, 0u, data, 0u);
  const auto got_s =
      aie::sliding_mul_ops<8, 4, 1, 1, 1, Scalar>::mul(coeff, 0u, data, 0u);
  const auto got_n =
      aie::sliding_mul_ops<8, 4, 1, 1, 1, Native>::mul(coeff, 0u, data, 0u);
  EXPECT_TRUE(bits_eq(want, got_s));
  EXPECT_TRUE(bits_eq(got_s, got_n));
}

TEST(SimdBackend, SlidingMulSymEquivalence) {
  std::mt19937 rng(83);
  const auto coeff = random_vector<std::int16_t, 8>(rng);
  const auto data = random_vector<std::int16_t, 16>(rng);
  for (unsigned dstart : {0u, 1u, 12u}) {  // 12: generic wrap path
    aie::acc48<8> want;
    for (unsigned lane = 0; lane < 8; ++lane) {
      std::int64_t sum = 0;
      for (unsigned p = 0; p < 4; ++p) {
        const std::int64_t c = coeff.get(p % 8);
        const std::int64_t d1 = data.get((dstart + lane + p) % 16);
        const std::int64_t d2 = data.get((dstart + lane + 7 - p) % 16);
        sum += c * (d1 + d2);
      }
      want.set(lane, sum);
    }
    const auto got_s =
        aie::sliding_mul_sym_ops<8, 8, Scalar>::mul(coeff, 0u, data, dstart);
    const auto got_n =
        aie::sliding_mul_sym_ops<8, 8, Native>::mul(coeff, 0u, data, dstart);
    EXPECT_TRUE(bits_eq(want, got_s)) << "dstart=" << dstart;
    EXPECT_TRUE(bits_eq(got_s, got_n)) << "dstart=" << dstart;
  }
}

// ---------------------------------------------------------------------------
// intrinsic spellings ride on the same backends
// ---------------------------------------------------------------------------

TEST(SimdBackend, IntrinsicsEquivalence) {
  std::mt19937 rng(91);
  const auto a = random_vector<float, 8>(rng);
  const auto b = random_vector<float, 8>(rng);
  const auto acc_s = aie::intrinsics::fpmul<Scalar>(a, b);
  const auto acc_n = aie::intrinsics::fpmul<Native>(a, b);
  EXPECT_TRUE(bits_eq(acc_s, acc_n));
  EXPECT_TRUE(bits_eq(aie::intrinsics::fpmac<Scalar>(acc_s, a, b),
                      aie::intrinsics::fpmac<Native>(acc_n, a, b)));
  EXPECT_TRUE(bits_eq(aie::intrinsics::fpmsc<Scalar>(acc_s, a, b),
                      aie::intrinsics::fpmsc<Native>(acc_n, a, b)));

  const auto i16a = random_vector<std::int16_t, 16>(rng);
  const auto i16b = random_vector<std::int16_t, 16>(rng);
  const auto m_s = aie::intrinsics::mul16<Scalar>(i16a, i16b);
  const auto m_n = aie::intrinsics::mul16<Native>(i16a, i16b);
  EXPECT_TRUE(bits_eq(m_s, m_n));
  EXPECT_TRUE(bits_eq(aie::intrinsics::mac16<Scalar>(m_s, i16a, i16b),
                      aie::intrinsics::mac16<Native>(m_n, i16a, i16b)));
}

// ---------------------------------------------------------------------------
// non-full register manipulation (block copies, backend-independent)
// ---------------------------------------------------------------------------

TEST(SimdBackend, ExtractInsertGrowRoundtrip) {
  std::mt19937 rng(101);
  const auto v = random_vector<std::int16_t, 16>(rng);
  const auto lo = v.extract<2>(0);
  const auto hi = v.extract<2>(1);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(lo.get(i), v.get(i));
    EXPECT_EQ(hi.get(i), v.get(8 + i));
  }
  aie::vector<std::int16_t, 16> back;
  back.insert(0, lo);
  back.insert(1, hi);
  EXPECT_EQ(back, v);

  const auto g = lo.grow();
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(g.get(i), lo.get(i));
  for (unsigned i = 8; i < 16; ++i) EXPECT_EQ(g.get(i), 0);  // zero upper half

  // Quarter extract (non-half split) keeps lane order.
  const auto q = v.extract<4>(2);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(q.get(i), v.get(8 + i));
}

// ---------------------------------------------------------------------------
// value initialization (satellite: lanes_ must never be stack garbage)
// ---------------------------------------------------------------------------

TEST(SimdBackend, VectorsValueInitialize) {
  const aie::vector<float, 16> dflt;
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(dflt.get(i), 0.0f);

  const aie::vector<std::int16_t, 8> partial{1, 2, 3};
  EXPECT_EQ(partial.get(0), 1);
  EXPECT_EQ(partial.get(1), 2);
  EXPECT_EQ(partial.get(2), 3);
  for (unsigned i = 3; i < 8; ++i) EXPECT_EQ(partial.get(i), 0);

  const aie::acc48<8> acc;
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(acc.get(i), 0);

  const aie::mask<8> m;
  for (unsigned i = 0; i < 8; ++i) EXPECT_FALSE(m.get(i));
}

// ---------------------------------------------------------------------------
// instrumentation invariants
// ---------------------------------------------------------------------------

/// A mixed op sequence touching every record() call shape.
template <class B>
void run_instrumented_sequence() {
  std::mt19937 rng(111);
  const auto a = random_vector<std::int16_t, 16>(rng, false);
  const auto b = random_vector<std::int16_t, 16>(rng, false);
  auto acc = aie::mul<B>(a, b);
  acc = aie::mac<B>(acc, a, b);
  const auto v = aie::srs<std::int16_t, B>(acc, 14);
  const auto m = aie::lt<B>(v, b);
  const auto sel = aie::select<B>(v, b, m);
  (void)aie::reduce_add<B>(sel);
  (void)aie::shuffle_down<B>(sel, 3);
  (void)aie::sliding_mul_ops<8, 8, 1, 1, 1, B>::mul(
      aie::vector<std::int16_t, 8>{1, 2, 3, 4}, 0u, a, 0u);
  aie::record(aie::OpClass::scalar, 5);
}

TEST(SimdBackend, OpCountsIdenticalAcrossBackends) {
  aie::OpCounter cs, cn;
  {
    aie::ScopedCounter scoped{&cs};
    run_instrumented_sequence<Scalar>();
  }
  {
    aie::ScopedCounter scoped{&cn};
    run_instrumented_sequence<Native>();
  }
  EXPECT_EQ(cs.counts, cn.counts);
  EXPECT_GT(cs.counts.total(), 0u);
}

TEST(SimdBackend, ScopedCounterBatchMatchesDirectCounter) {
  aie::OpCounter direct, batched;
  {
    aie::ScopedCounter scoped{&direct};
    run_instrumented_sequence<Native>();
  }
  {
    aie::ScopedCounterBatch scoped{&batched};
    run_instrumented_sequence<Native>();
  }
  EXPECT_EQ(direct.counts, batched.counts);

  // Null destination must not activate counting (functional mode): any
  // records inside the scope land nowhere, and the previously active
  // counter is restored afterwards.
  aie::OpCounter outer;
  {
    aie::ScopedCounter outer_scope{&outer};
    {
      aie::ScopedCounterBatch none{nullptr};
      aie::record(aie::OpClass::scalar, 100);
    }
    aie::record(aie::OpClass::scalar, 1);
  }
  EXPECT_EQ(outer.counts[aie::OpClass::scalar], 1u);
}

// The IIR feedback loop batches its per-sample scalar accounting into one
// record() per window; the batched total must equal the per-sample form it
// replaced (2 scalar MACs per sample).
TEST(SimdBackend, IirBatchedScalarRecordMatchesPerSample) {
  apps::iir::Block in{};
  for (unsigned i = 0; i < apps::iir::kBlockSamples; ++i) {
    in.samples[i] = static_cast<float>(i % 17) - 8.0f;
  }
  apps::iir::State st{};
  aie::OpCounter c;
  {
    aie::ScopedCounterBatch scoped{&c};
    (void)apps::iir::process_block(in, st, apps::iir::kDefaultCoeffs, 1.0f);
  }
  aie::OpCounts per_sample;
  for (unsigned i = 0; i < apps::iir::kBlockSamples; ++i) {
    per_sample.add(aie::OpClass::scalar, 2);
  }
  EXPECT_EQ(c.counts[aie::OpClass::scalar],
            per_sample[aie::OpClass::scalar]);
}

// ---------------------------------------------------------------------------
// whole-kernel equivalence: the four app inner loops, both backends
// ---------------------------------------------------------------------------

TEST(SimdBackend, AppKernelsBitExactAcrossBackends) {
  std::mt19937 rng(121);

  {  // bilinear
    apps::bilinear::Packet q;
    for (unsigned l = 0; l < apps::bilinear::kLanes; ++l) {
      std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
      std::uniform_real_distribution<float> frac(0.0f, 1.0f);
      q.p00.set(l, dist(rng));
      q.p01.set(l, dist(rng));
      q.p10.set(l, dist(rng));
      q.p11.set(l, dist(rng));
      q.fx.set(l, frac(rng));
      q.fy.set(l, frac(rng));
    }
    EXPECT_TRUE(bits_eq(apps::bilinear::interpolate<Scalar>(q),
                        apps::bilinear::interpolate<Native>(q)));
  }

  {  // bitonic: both backends, and actually sorted
    apps::bitonic::Block v;
    for (unsigned l = 0; l < 16; ++l) {
      v.set(l, static_cast<float>(static_cast<int>(rng() % 2000) - 1000));
    }
    const auto s = apps::bitonic::sort16<Scalar>(v);
    const auto n = apps::bitonic::sort16<Native>(v);
    EXPECT_TRUE(bits_eq(s, n));
    std::array<float, 16> ref{};
    for (unsigned l = 0; l < 16; ++l) ref[l] = v.get(l);
    std::sort(ref.begin(), ref.end());
    for (unsigned l = 0; l < 16; ++l) EXPECT_EQ(s.get(l), ref[l]);
  }

  {  // farrow: two chained windows so the carried state is exercised
    apps::farrow::SampleBlock in;
    apps::farrow::MuBlock mu;
    apps::farrow::BranchState st_s{}, st_n{};
    for (unsigned w = 0; w < 2; ++w) {
      for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
        in.s[i] = static_cast<std::int16_t>(rng());
        mu.mu[i] = static_cast<std::int16_t>(rng() % 16384);
      }
      const auto br_s = apps::farrow::branch_filters<Scalar>(in, st_s);
      const auto br_n = apps::farrow::branch_filters<Native>(in, st_n);
      EXPECT_EQ(br_s, br_n);
      const auto out_s = apps::farrow::combine<Scalar>(br_s, mu);
      const auto out_n = apps::farrow::combine<Native>(br_n, mu);
      EXPECT_EQ(out_s, out_n);
    }
  }

  {  // iir feed-forward
    apps::iir::Block in;
    for (unsigned i = 0; i < apps::iir::kBlockSamples; ++i) {
      std::uniform_real_distribution<float> dist(-100.0f, 100.0f);
      in.samples[i] = dist(rng);
    }
    apps::iir::State st_s{}, st_n{};
    const auto fir_s =
        apps::iir::feed_forward<Scalar>(in, st_s, apps::iir::kDefaultCoeffs);
    const auto fir_n =
        apps::iir::feed_forward<Native>(in, st_n, apps::iir::kDefaultCoeffs);
    EXPECT_EQ(0, std::memcmp(fir_s.data(), fir_n.data(),
                             sizeof(float) * fir_s.size()));
    EXPECT_EQ(st_s.x1, st_n.x1);
    EXPECT_EQ(st_s.x2, st_n.x2);
  }
}

}  // namespace

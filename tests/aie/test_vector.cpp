// AIE vector register emulation tests.
#include <gtest/gtest.h>

#include <numeric>

#include "aie/aie.hpp"

namespace {

TEST(AieVector, DefaultIsZero) {
  aie::v8float v;
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(v.get(i), 0.0f);
}

TEST(AieVector, InitializerList) {
  aie::vector<int, 4> v{1, 2, 3};
  EXPECT_EQ(v.get(0), 1);
  EXPECT_EQ(v.get(2), 3);
  EXPECT_EQ(v.get(3), 0);  // unfilled lanes stay zero
}

TEST(AieVector, SetGetRoundTrip) {
  aie::v16int16 v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, static_cast<std::int16_t>(i * 3));
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(v[i], static_cast<std::int16_t>(i * 3));
  }
}

TEST(AieVector, LoadStoreRoundTrip) {
  float buf[16];
  std::iota(buf, buf + 16, 1.0f);
  const auto v = aie::load_v<16>(buf);
  float out[16] = {};
  aie::store_v(out, v);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(out[i], buf[i]);
}

TEST(AieVector, ExtractParts) {
  aie::v16float v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, static_cast<float>(i));
  const auto lo = v.extract<2>(0);
  const auto hi = v.extract<2>(1);
  static_assert(decltype(lo)::size_v == 8);
  EXPECT_EQ(lo.get(0), 0.0f);
  EXPECT_EQ(lo.get(7), 7.0f);
  EXPECT_EQ(hi.get(0), 8.0f);
  EXPECT_EQ(hi.get(7), 15.0f);
}

TEST(AieVector, InsertParts) {
  aie::v8int32 sub;
  for (unsigned i = 0; i < 8; ++i) sub.set(i, static_cast<int>(100 + i));
  aie::v16int32 v;
  v.insert(1, sub);
  EXPECT_EQ(v.get(8), 100);
  EXPECT_EQ(v.get(15), 107);
  EXPECT_EQ(v.get(0), 0);
}

TEST(AieVector, Grow) {
  aie::v4float v{1, 2, 3, 4};
  const auto g = v.grow();
  static_assert(decltype(g)::size_v == 8);
  EXPECT_EQ(g.get(3), 4.0f);
  EXPECT_EQ(g.get(4), 0.0f);
}

TEST(AieVector, BroadcastAndZeros) {
  const auto b = aie::broadcast<float, 8>(2.5f);
  for (unsigned i = 0; i < 8; ++i) EXPECT_EQ(b.get(i), 2.5f);
  const auto z = aie::zeros<int, 4>();
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(z.get(i), 0);
}

TEST(AieVector, Iota) {
  const auto v = aie::iota<int, 8>(10, 2);
  EXPECT_EQ(v.get(0), 10);
  EXPECT_EQ(v.get(7), 24);
}

TEST(AieVector, EqualityIsLaneWise) {
  aie::v4float a{1, 2, 3, 4}, b{1, 2, 3, 4}, c{1, 2, 3, 5};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(AieMask, CountAndAccess) {
  aie::mask<8> m;
  m.set(1, true);
  m.set(5, true);
  EXPECT_TRUE(m.get(1));
  EXPECT_FALSE(m.get(0));
  EXPECT_EQ(m.count(), 2u);
}

// Property sweep: extract/insert are inverses for every part index.
class ExtractInsert : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExtractInsert, RoundTrip) {
  const unsigned part = GetParam();
  aie::v16int32 v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, static_cast<int>(i * i));
  const auto sub = v.extract<4>(part);
  aie::v16int32 w;
  w.insert(part, sub);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(w.get(part * 4 + i), v.get(part * 4 + i));
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, ExtractInsert, ::testing::Values(0u, 1u, 2u, 3u));

}  // namespace

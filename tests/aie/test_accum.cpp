// AIE accumulator emulation: shift-round-saturate and upshift semantics.
#include <gtest/gtest.h>

#include "aie/aie.hpp"

namespace {

TEST(AieAccum, UpsShiftsLeft) {
  aie::vector<std::int16_t, 8> v;
  v.set(0, 3);
  v.set(1, -2);
  const auto a = aie::ups(v, 4);
  EXPECT_EQ(a.get(0), 48);
  EXPECT_EQ(a.get(1), -32);
}

TEST(AieAccum, SrsRoundsHalfUp) {
  aie::acc48<8> a;
  a.set(0, 15);   // 15 >> 3 = 1.875 -> rounds to 2
  a.set(1, 12);   // 12 >> 3 = 1.5   -> rounds to 2 (half up)
  a.set(2, 11);   // 11 >> 3 = 1.375 -> rounds to 1
  a.set(3, -12);  // -1.5 -> rounds toward +inf => -1
  const auto v = aie::srs<std::int16_t>(a, 3);
  EXPECT_EQ(v.get(0), 2);
  EXPECT_EQ(v.get(1), 2);
  EXPECT_EQ(v.get(2), 1);
  EXPECT_EQ(v.get(3), -1);
}

TEST(AieAccum, SrsSaturatesToLaneType) {
  aie::acc48<4> a;
  a.set(0, 1'000'000);
  a.set(1, -1'000'000);
  const auto v = aie::srs<std::int16_t>(a, 0);
  EXPECT_EQ(v.get(0), 32767);
  EXPECT_EQ(v.get(1), -32768);
}

TEST(AieAccum, SrsZeroShiftIsIdentityInRange) {
  aie::acc48<4> a;
  a.set(0, 1234);
  a.set(1, -4321);
  const auto v = aie::srs<std::int32_t>(a, 0);
  EXPECT_EQ(v.get(0), 1234);
  EXPECT_EQ(v.get(1), -4321);
}

TEST(AieAccum, UpsSrsRoundTrip) {
  aie::vector<std::int16_t, 8> v;
  for (unsigned i = 0; i < 8; ++i) {
    v.set(i, static_cast<std::int16_t>(static_cast<int>(i) * 100 - 350));
  }
  const auto rt = aie::srs<std::int16_t>(aie::ups(v, 10), 10);
  EXPECT_EQ(rt, v);
}

TEST(AieAccum, FloatAccumConversions) {
  aie::v8float v{1.5f, -2.5f};
  const auto a = aie::to_accum(v);
  EXPECT_EQ(a.get(0), 1.5f);
  const auto back = aie::to_vector(a);
  EXPECT_EQ(back, v);
}

TEST(AieAccum, FloatSrsIgnoresShift) {
  aie::accfloat<4> a;
  a.set(0, 3.75f);
  const auto v = aie::srs<float>(a, 7);
  EXPECT_EQ(v.get(0), 3.75f);
}

// Property: srs(ups(v, s), s) == v for all shifts while values stay in
// range (no saturation, exact rounding).
class UpsSrs : public ::testing::TestWithParam<int> {};

TEST_P(UpsSrs, RoundTripAllShifts) {
  const int shift = GetParam();
  aie::vector<std::int16_t, 16> v;
  for (unsigned i = 0; i < 16; ++i) {
    v.set(i, static_cast<std::int16_t>(static_cast<int>(i * 37) - 300));
  }
  EXPECT_EQ(aie::srs<std::int16_t>(aie::ups(v, shift), shift), v)
      << "shift=" << shift;
}

INSTANTIATE_TEST_SUITE_P(Shifts, UpsSrs,
                         ::testing::Values(0, 1, 2, 4, 8, 12, 14, 16));

}  // namespace

// Property / fuzz tests for the ML extensions of the SIMD backends
// (src/aie/simd.hpp): the int8 dot-product MAC (mac_dot4), the int32
// accumulator moves (srs32 / ups32), the saturating narrowing converts,
// the bf16 <-> fp32 converts (round-to-nearest-even, NaN quieting), and
// the fixed-point exp2_neg_q15 polynomial. Every op must be bit-identical
// between scalar_backend and native_backend -- including the int8 overflow
// extremes, the srs saturation edges and the bf16 rounding ties -- and
// must match an independently spelled-out reference where one exists.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>

#include "aie/aie.hpp"

namespace {

using Scalar = aie::simd::scalar_backend;
using Native = aie::simd::native_backend;

constexpr unsigned kFuzzRounds = 50;

template <class T, unsigned N>
aie::vector<T, N> random_int_vector(std::mt19937& rng) {
  static_assert(std::is_integral_v<T>);
  aie::vector<T, N> v;
  for (unsigned i = 0; i < N; ++i) {
    // Full range of T, extremes included.
    v.set(i, static_cast<T>(rng()));
  }
  return v;
}

/// Streamable representation of a lane: bf16 prints as its bit pattern,
/// everything else promotes through unary + (so int8 prints numerically).
int lane_repr(aie::bf16 v) { return v.bits; }
template <class T>
auto lane_repr(T v) {
  return +v;
}

/// Bit-exact vector comparison.
template <class T, unsigned N>
::testing::AssertionResult bits_eq(const aie::vector<T, N>& a,
                                   const aie::vector<T, N>& b) {
  if (std::memcmp(a.data().data(), b.data().data(), sizeof(T) * N) == 0) {
    return ::testing::AssertionSuccess();
  }
  auto r = ::testing::AssertionFailure() << "vectors differ:";
  for (unsigned i = 0; i < N; ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(T)) != 0) {
      r << " lane " << i << " (" << lane_repr(a.get(i)) << " vs "
        << lane_repr(b.get(i)) << ")";
    }
  }
  return r;
}

template <class Tag, unsigned N>
::testing::AssertionResult bits_eq(const aie::accum<Tag, N>& a,
                                   const aie::accum<Tag, N>& b) {
  using S = typename aie::accum<Tag, N>::storage;
  if (std::memcmp(a.data().data(), b.data().data(), sizeof(S) * N) == 0) {
    return ::testing::AssertionSuccess();
  }
  auto r = ::testing::AssertionFailure() << "accumulators differ:";
  for (unsigned i = 0; i < N; ++i) {
    if (std::memcmp(&a.data()[i], &b.data()[i], sizeof(S)) != 0) {
      r << " lane " << i << " (" << +a.get(i) << " vs " << +b.get(i) << ")";
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// mac_dot4: 4-deep int8 dot-product MAC into int32 lanes
// ---------------------------------------------------------------------------

TEST(SimdMl, MacDot4MatchesLoopReference) {
  std::mt19937 rng(101);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    auto a = random_int_vector<std::int8_t, 64>(rng);
    auto b = random_int_vector<std::int8_t, 64>(rng);
    if (round == 0) {
      // Worst-case magnitude: 4 * (-128 * -128) per lane group.
      for (unsigned i = 0; i < 64; ++i) {
        a.set(i, std::numeric_limits<std::int8_t>::min());
        b.set(i, std::numeric_limits<std::int8_t>::min());
      }
    }
    auto base = random_int_vector<std::int32_t, 16>(rng);
    const auto acc = aie::ups<aie::acc32_tag, Scalar>(base, 0);

    const auto rs = aie::mac_dot4<Scalar>(acc, a, b);
    const auto rn = aie::mac_dot4<Native>(acc, a, b);
    EXPECT_TRUE(bits_eq(rs, rn)) << "round " << round;

    // Independent reference, int32 wrap-around semantics included.
    for (unsigned l = 0; l < 16; ++l) {
      std::int32_t s = base.get(l);
      for (unsigned j = 0; j < 4; ++j) {
        s += static_cast<std::int32_t>(a.get(4 * l + j)) *
             static_cast<std::int32_t>(b.get(4 * l + j));
      }
      EXPECT_EQ(rs.get(l), s) << "round " << round << " lane " << l;
    }
  }
}

TEST(SimdMl, MulDot4Int16AndShortVectors) {
  std::mt19937 rng(202);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    const auto a16 = random_int_vector<std::int16_t, 32>(rng);
    const auto b16 = random_int_vector<std::int16_t, 32>(rng);
    EXPECT_TRUE(bits_eq(aie::mul_dot4<Scalar>(a16, b16),
                        aie::mul_dot4<Native>(a16, b16)));
    const auto a8 = random_int_vector<std::int8_t, 16>(rng);
    const auto b8 = random_int_vector<std::int8_t, 16>(rng);
    EXPECT_TRUE(bits_eq(aie::mul_dot4<Scalar>(a8, b8),
                        aie::mul_dot4<Native>(a8, b8)));
  }
}

TEST(SimdMl, MacBroadcastInt32MatchesLoopReference) {
  std::mt19937 rng(303);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    const auto a = random_int_vector<std::int8_t, 16>(rng);
    auto base = random_int_vector<std::int32_t, 16>(rng);
    const std::int32_t s =
        static_cast<std::int32_t>(rng() % 512) - 256;  // conv-tap range
    const auto acc = aie::ups<aie::acc32_tag, Scalar>(base, 0);
    const auto rs = aie::mac<Scalar>(acc, a, s);
    const auto rn = aie::mac<Native>(acc, a, s);
    EXPECT_TRUE(bits_eq(rs, rn));
    for (unsigned l = 0; l < 16; ++l) {
      EXPECT_EQ(rs.get(l),
                base.get(l) + s * static_cast<std::int32_t>(a.get(l)));
    }
  }
}

// ---------------------------------------------------------------------------
// srs32 / ups32: int32 accumulator moves, saturation edges
// ---------------------------------------------------------------------------

TEST(SimdMl, Srs32SaturationEdges) {
  constexpr std::int32_t kEdges[] = {
      std::numeric_limits<std::int32_t>::min(),
      std::numeric_limits<std::int32_t>::min() + 1,
      -129 << 7, -128 << 7, (-128 << 7) - 64, (-128 << 7) - 65,
      -1, 0, 1, 63, 64, 65,
      (127 << 7) + 63, (127 << 7) + 64, 128 << 7,
      std::numeric_limits<std::int32_t>::max() - 1,
  };
  aie::vector<std::int32_t, 16> v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, kEdges[i]);
  for (const int shift : {0, 1, 2, 7, 15, 23, 30, -2}) {
    const auto acc = aie::ups<aie::acc32_tag, Scalar>(v, 0);
    const auto s8 = aie::srs<std::int8_t, Scalar>(acc, shift);
    const auto n8 = aie::srs<std::int8_t, Native>(acc, shift);
    EXPECT_TRUE(bits_eq(s8, n8)) << "shift " << shift;
    const auto s16 = aie::srs<std::int16_t, Scalar>(acc, shift);
    const auto n16 = aie::srs<std::int16_t, Native>(acc, shift);
    EXPECT_TRUE(bits_eq(s16, n16)) << "shift " << shift;
    const auto s32 = aie::srs<std::int32_t, Scalar>(acc, shift);
    const auto n32 = aie::srs<std::int32_t, Native>(acc, shift);
    EXPECT_TRUE(bits_eq(s32, n32)) << "shift " << shift;
    // Round-half-up + clamp reference on the int8 narrow.
    for (unsigned l = 0; l < 16; ++l) {
      std::int64_t r = static_cast<std::int64_t>(v.get(l));
      r = shift <= 0 ? (r << -shift) : ((r + (std::int64_t{1} << (shift - 1)))
                                        >> shift);
      EXPECT_EQ(s8.get(l), static_cast<std::int8_t>(
                               std::clamp<std::int64_t>(r, -128, 127)))
          << "shift " << shift << " lane " << l;
    }
  }
}

TEST(SimdMl, Srs32RoundingBiasCannotOverflow) {
  // INT32_MAX with shift 1: bias addition would overflow a 32-bit lane;
  // the backends must evaluate in 64 bits. (2^31 - 1 + 1) >> 1 = 2^30.
  aie::vector<std::int32_t, 16> v;
  for (unsigned i = 0; i < 16; ++i) {
    v.set(i, std::numeric_limits<std::int32_t>::max());
  }
  const auto acc = aie::ups<aie::acc32_tag, Scalar>(v, 0);
  const auto s = aie::srs<std::int32_t, Scalar>(acc, 1);
  const auto n = aie::srs<std::int32_t, Native>(acc, 1);
  EXPECT_TRUE(bits_eq(s, n));
  EXPECT_EQ(s.get(0), std::int32_t{1} << 30);
}

TEST(SimdMl, Ups32RoundtripAndShift) {
  std::mt19937 rng(404);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    const auto v8 = random_int_vector<std::int8_t, 16>(rng);
    for (const int sh : {0, 1, 8, 16}) {
      const auto as = aie::ups<aie::acc32_tag, Scalar>(v8, sh);
      const auto an = aie::ups<aie::acc32_tag, Native>(v8, sh);
      EXPECT_TRUE(bits_eq(as, an));
      for (unsigned l = 0; l < 16; ++l) {
        EXPECT_EQ(as.get(l), static_cast<std::int32_t>(v8.get(l)) << sh);
      }
      // srs undoes ups exactly for non-negative lanes scaled back down.
      const auto back = aie::srs<std::int8_t, Scalar>(as, sh);
      if (sh < 8) {
        for (unsigned l = 0; l < 16; ++l) {
          EXPECT_EQ(back.get(l), v8.get(l));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// widening / saturating narrowing converts
// ---------------------------------------------------------------------------

TEST(SimdMl, UnpackWideningMatches) {
  std::mt19937 rng(505);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    const auto v8 = random_int_vector<std::int8_t, 16>(rng);
    EXPECT_TRUE(bits_eq(aie::unpack<std::int32_t, Scalar>(v8),
                        aie::unpack<std::int32_t, Native>(v8)));
    EXPECT_TRUE(bits_eq(aie::unpack<std::int16_t, Scalar>(v8),
                        aie::unpack<std::int16_t, Native>(v8)));
    const auto v16 = random_int_vector<std::int16_t, 16>(rng);
    EXPECT_TRUE(bits_eq(aie::unpack<std::int32_t, Scalar>(v16),
                        aie::unpack<std::int32_t, Native>(v16)));
  }
}

template <class To, class From>
void check_pack_sat(unsigned seed) {
  std::mt19937 rng(seed);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    auto v = random_int_vector<From, 16>(rng);
    if (round == 0) {
      v.set(0, std::numeric_limits<From>::min());
      v.set(1, std::numeric_limits<From>::max());
      v.set(2, static_cast<From>(std::numeric_limits<To>::min()) - From{1});
      v.set(3, static_cast<From>(std::numeric_limits<To>::max()) + From{1});
      v.set(4, static_cast<From>(std::numeric_limits<To>::min()));
      v.set(5, static_cast<From>(std::numeric_limits<To>::max()));
    }
    const auto s = aie::pack_sat<To, Scalar>(v);
    const auto n = aie::pack_sat<To, Native>(v);
    EXPECT_TRUE(bits_eq(s, n)) << "round " << round;
    for (unsigned l = 0; l < 16; ++l) {
      const auto c = std::clamp<std::int64_t>(
          v.get(l), std::numeric_limits<To>::min(),
          std::numeric_limits<To>::max());
      EXPECT_EQ(s.get(l), static_cast<To>(c)) << "lane " << l;
    }
  }
}

TEST(SimdMl, PackSatInt32ToInt8) { check_pack_sat<std::int8_t, std::int32_t>(606); }
TEST(SimdMl, PackSatInt32ToInt16) {
  check_pack_sat<std::int16_t, std::int32_t>(607);
}
TEST(SimdMl, PackSatInt16ToInt8) { check_pack_sat<std::int8_t, std::int16_t>(608); }

// ---------------------------------------------------------------------------
// bf16 converts: widen exact, narrow RNE, NaN quieting
// ---------------------------------------------------------------------------

aie::vector<aie::bf16, 16> bf16_vector(const std::array<std::uint16_t, 16>& u) {
  aie::vector<aie::bf16, 16> v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, aie::bf16{u[i]});
  return v;
}

TEST(SimdMl, Bf16WidenIsExact) {
  std::mt19937 rng(707);
  for (unsigned round = 0; round < kFuzzRounds; ++round) {
    std::array<std::uint16_t, 16> u{};
    for (auto& x : u) x = static_cast<std::uint16_t>(rng());
    const auto v = bf16_vector(u);
    const auto fs = aie::to_float<Scalar>(v);
    const auto fn = aie::to_float<Native>(v);
    EXPECT_TRUE(bits_eq(fs, fn));
    for (unsigned l = 0; l < 16; ++l) {
      std::uint32_t w = static_cast<std::uint32_t>(u[l]) << 16;
      float f;
      std::memcpy(&f, &w, 4);
      std::uint32_t got;
      std::memcpy(&got, &fs.data()[l], 4);
      EXPECT_EQ(got, w) << "lane " << l;
      // Scalar helper agrees with the vector op bit for bit.
      std::uint32_t h;
      const float hf = aie::bf16_to_float(aie::bf16{u[l]});
      std::memcpy(&h, &hf, 4);
      EXPECT_EQ(h, w);
      (void)f;
    }
  }
}

TEST(SimdMl, Bf16NarrowRoundsToNearestEven) {
  // (upper16, guard/sticky pattern) -> expected bf16 bits.
  struct Case {
    std::uint32_t f32;
    std::uint16_t expect;
  };
  const Case cases[] = {
      {0x3f800000u, 0x3f80},  // 1.0 exact
      {0x3f808000u, 0x3f80},  // tie, round to even (down)
      {0x3f818000u, 0x3f82},  // tie, round to even (up)
      {0x3f808001u, 0x3f81},  // above tie, round up
      {0x3f80ffffu, 0x3f81},  // just below next, round up
      {0x3f800001u, 0x3f80},  // just above 1.0, round down
      {0x7f7fffffu, 0x7f80},  // FLT_MAX rounds up to inf
      {0x7f800000u, 0x7f80},  // +inf stays inf
      {0xff800000u, 0xff80},  // -inf stays -inf
      {0x80000000u, 0x8000},  // -0.0 keeps its sign
      {0x00000000u, 0x0000},  // +0.0
  };
  aie::vector<float, 16> v{};
  for (unsigned i = 0; i < std::size(cases); ++i) {
    float f;
    std::memcpy(&f, &cases[i].f32, 4);
    v.set(i, f);
  }
  const auto s = aie::to_bf16<Scalar>(v);
  const auto n = aie::to_bf16<Native>(v);
  EXPECT_TRUE(bits_eq(s, n));
  for (unsigned i = 0; i < std::size(cases); ++i) {
    EXPECT_EQ(s.get(i).bits, cases[i].expect)
        << "case " << i << " f32=0x" << std::hex << cases[i].f32;
  }
}

TEST(SimdMl, Bf16NarrowQuietsNaNs) {
  const std::uint32_t nans[] = {
      0x7f800001u,  // signaling NaN, minimal payload
      0x7fc00000u,  // quiet NaN
      0x7f80ffffu,  // signaling NaN, full payload
      0xffc12345u,  // negative quiet NaN with payload
      0xff800001u,  // negative signaling NaN
  };
  aie::vector<float, 16> v{};
  for (unsigned i = 0; i < std::size(nans); ++i) {
    float f;
    std::memcpy(&f, &nans[i], 4);
    v.set(i, f);
  }
  const auto s = aie::to_bf16<Scalar>(v);
  const auto n = aie::to_bf16<Native>(v);
  EXPECT_TRUE(bits_eq(s, n));
  for (unsigned i = 0; i < std::size(nans); ++i) {
    const bool is_nan = (nans[i] & 0x7fffffffu) > 0x7f800000u;
    if (!is_nan) continue;
    const std::uint16_t b = s.get(i).bits;
    EXPECT_GT(b & 0x7fffu, 0x7f80u) << "case " << i << " not NaN";
    EXPECT_TRUE(b & 0x0040u) << "case " << i << " not quiet";
  }
}

TEST(SimdMl, Bf16NarrowFullU32Fuzz) {
  std::mt19937 rng(808);
  for (unsigned round = 0; round < 4 * kFuzzRounds; ++round) {
    aie::vector<float, 16> v;
    for (unsigned i = 0; i < 16; ++i) {
      const std::uint32_t u = rng();
      float f;
      std::memcpy(&f, &u, 4);
      v.set(i, f);
    }
    const auto s = aie::to_bf16<Scalar>(v);
    const auto n = aie::to_bf16<Native>(v);
    EXPECT_TRUE(bits_eq(s, n)) << "round " << round;
  }
}

TEST(SimdMl, Bf16RoundtripThroughFloatIsIdentity) {
  // Every non-NaN bf16 widens exactly, so narrow(widen(x)) == x.
  for (std::uint32_t b = 0; b < 0x10000u; b += 16) {
    std::array<std::uint16_t, 16> u{};
    for (unsigned i = 0; i < 16; ++i) {
      u[i] = static_cast<std::uint16_t>(b + i);
    }
    const auto wide = aie::to_float<Scalar>(bf16_vector(u));
    const auto back = aie::to_bf16<Scalar>(wide);
    for (unsigned i = 0; i < 16; ++i) {
      const bool is_nan = (u[i] & 0x7fffu) > 0x7f80u;
      if (is_nan) continue;  // NaNs re-quiet; covered above
      EXPECT_EQ(back.get(i).bits, u[i]) << "bits 0x" << std::hex << u[i];
    }
  }
}

// ---------------------------------------------------------------------------
// exp2_neg_q15: endpoints, monotonicity, accuracy, backend equivalence
// ---------------------------------------------------------------------------

aie::vector<std::int32_t, 16> exp_inputs(const std::array<std::int32_t, 16>& u) {
  aie::vector<std::int32_t, 16> v;
  for (unsigned i = 0; i < 16; ++i) v.set(i, u[i]);
  return v;
}

TEST(SimdMl, Exp2NegQ15Endpoints) {
  const auto v = exp_inputs({0, 32768, 65536, 98304, 32768 * 15, -5, -100000,
                             1, 32767, 32769, 16384, 1 << 20, 1 << 25, 1 << 30,
                             std::numeric_limits<std::int32_t>::max(), 3});
  const auto s = aie::exp2_neg_q15<Scalar>(v);
  const auto n = aie::exp2_neg_q15<Native>(v);
  EXPECT_TRUE(bits_eq(s, n));
  EXPECT_EQ(s.get(0), 32768);  // 2^0 = 1.0
  EXPECT_EQ(s.get(1), 16384);  // 2^-1
  EXPECT_EQ(s.get(2), 8192);   // 2^-2
  EXPECT_EQ(s.get(3), 4096);   // 2^-3
  EXPECT_EQ(s.get(4), 1);      // 2^-15 in Q15
  EXPECT_EQ(s.get(5), 32768);  // negative input clamps to 1.0
  EXPECT_EQ(s.get(6), 32768);
  EXPECT_EQ(s.get(13), 0);  // deep underflow -> 0
  EXPECT_EQ(s.get(14), 0);  // INT32_MAX must not shift out of range (UB)
}

TEST(SimdMl, Exp2NegQ15MonotoneNonincreasing) {
  std::int32_t prev = 32769;
  for (std::int32_t u = 0; u <= (1 << 19); u += 37) {
    std::array<std::int32_t, 16> a{};
    for (unsigned i = 0; i < 16; ++i) a[i] = u + static_cast<std::int32_t>(i);
    const auto r = aie::exp2_neg_q15<Scalar>(exp_inputs(a));
    for (unsigned i = 0; i < 16; ++i) {
      EXPECT_LE(r.get(i), prev) << "u=" << (u + static_cast<std::int32_t>(i));
      prev = r.get(i);
    }
  }
}

TEST(SimdMl, Exp2NegQ15AccuracyVsLibm) {
  std::mt19937 rng(909);
  for (unsigned round = 0; round < 8 * kFuzzRounds; ++round) {
    std::array<std::int32_t, 16> a{};
    for (auto& x : a) {
      x = static_cast<std::int32_t>(rng() % (18u << 15));  // up to 2^-18
    }
    const auto v = exp_inputs(a);
    const auto s = aie::exp2_neg_q15<Scalar>(v);
    const auto n = aie::exp2_neg_q15<Native>(v);
    EXPECT_TRUE(bits_eq(s, n)) << "round " << round;
    for (unsigned l = 0; l < 16; ++l) {
      const double exact =
          std::exp2(-static_cast<double>(a[l]) / 32768.0) * 32768.0;
      EXPECT_NEAR(static_cast<double>(s.get(l)), exact, 12.0)
          << "u=" << a[l];
    }
  }
}

TEST(SimdMl, Exp2NegQ15FullRangeFuzzEquivalence) {
  std::mt19937 rng(1010);
  for (unsigned round = 0; round < 4 * kFuzzRounds; ++round) {
    aie::vector<std::int32_t, 16> v;
    for (unsigned i = 0; i < 16; ++i) {
      v.set(i, static_cast<std::int32_t>(rng()));  // full int32, sign included
    }
    const auto s = aie::exp2_neg_q15<Scalar>(v);
    const auto n = aie::exp2_neg_q15<Native>(v);
    EXPECT_TRUE(bits_eq(s, n)) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// instrumentation: the new ops record identical OpCounts on both backends
// ---------------------------------------------------------------------------

template <class B>
aie::OpCounts run_ml_op_mix(unsigned seed) {
  std::mt19937 rng(seed);
  const auto a8 = random_int_vector<std::int8_t, 64>(rng);
  const auto b8 = random_int_vector<std::int8_t, 64>(rng);
  const auto w = random_int_vector<std::int32_t, 16>(rng);
  aie::OpCounter cnt;
  {
    aie::ScopedCounter scoped{&cnt};
    auto acc = aie::mul_dot4<B>(a8, b8);
    acc = aie::mac_dot4<B>(acc, a8, b8);
    const auto narrowed = aie::srs<std::int8_t, B>(acc, 7);
    const auto widened = aie::ups<aie::acc32_tag, B>(narrowed, 0);
    const auto mixed = aie::mac<B>(widened, narrowed, std::int32_t{3});
    (void)aie::srs<std::int32_t, B>(mixed, 0);
    (void)aie::unpack<std::int32_t, B>(narrowed);
    (void)aie::pack_sat<std::int8_t, B>(w);
    const auto e = aie::exp2_neg_q15<B>(w);
    (void)e;
    aie::vector<float, 16> f{};
    for (unsigned i = 0; i < 16; ++i) f.set(i, static_cast<float>(i) * 0.5f);
    const auto bf = aie::to_bf16<B>(f);
    (void)aie::to_float<B>(bf);
  }
  return cnt.counts;
}

TEST(SimdMl, OpCountsIdenticalAcrossBackends) {
  const auto s = run_ml_op_mix<Scalar>(42);
  const auto n = run_ml_op_mix<Native>(42);
  EXPECT_EQ(s, n);
  EXPECT_GT(s[aie::OpClass::vector_mac], 0u);
  EXPECT_GT(s[aie::OpClass::vector_alu], 0u);
  EXPECT_GT(s[aie::OpClass::vector_shift], 0u);
}

}  // namespace

// MUST NOT COMPILE: a runtime-parameter port connected to a streaming port
// (paper Section 3.4).
#include "core/cgsim.hpp"
using namespace cgsim;

inline constexpr PortSettings rtp{.rtp = true};
inline constexpr PortSettings stream{.buffer = BufferMode::stream};

COMPUTE_KERNEL(aie, cf_rtp_writer, KernelWritePort<int, rtp> out) {
  co_await out.put(1);
}
COMPUTE_KERNEL(aie, cf_stream_reader, KernelReadPort<int, stream> in,
               KernelWritePort<int> out) {
  co_await out.put(co_await in.get());
}

constexpr auto bad = make_compute_graph_v<[]() {
  IoConnector<int> mid, out;
  cf_rtp_writer(mid);
  cf_stream_reader(mid, out);
  return std::make_tuple(out);
}>;

int main() { return bad.counts.kernels; }

// MUST NOT COMPILE: two ports with different beat widths on one connector
// (paper Section 3.4: "If the settings are incompatible, a compile-time
// error is generated").
#include "core/cgsim.hpp"
using namespace cgsim;

inline constexpr PortSettings w32{.beat_bits = 32};
inline constexpr PortSettings w64{.beat_bits = 64};

COMPUTE_KERNEL(aie, cf_w32, KernelWritePort<int, w32> out) {
  co_await out.put(1);
}
COMPUTE_KERNEL(aie, cf_r64, KernelReadPort<int, w64> in,
               KernelWritePort<int> out) {
  co_await out.put(co_await in.get());
}

constexpr auto bad = make_compute_graph_v<[]() {
  IoConnector<int> mid, out;
  cf_w32(mid);
  cf_r64(mid, out);  // 32-bit writer meets 64-bit reader: constexpr throw
  return std::make_tuple(out);
}>;

int main() { return bad.counts.kernels; }

// MUST NOT COMPILE: connector element type differs from the kernel port
// type (paper Section 3.3: port types are checked at compile time).
#include "core/cgsim.hpp"
using namespace cgsim;

COMPUTE_KERNEL(aie, cf_float_kernel, KernelReadPort<float> in,
               KernelWritePort<float> out) {
  co_await out.put(co_await in.get());
}

constexpr auto bad = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<float> b;
  cf_float_kernel(a, b);  // int connector into a float port
  return std::make_tuple(b);
}>;

int main() { return bad.counts.kernels; }

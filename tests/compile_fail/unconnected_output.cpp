// MUST NOT COMPILE: a returned graph output that is not connected to
// anything (constexpr throw during graph construction).
#include "core/cgsim.hpp"
using namespace cgsim;

COMPUTE_KERNEL(aie, cf_sink_only, KernelReadPort<int> in,
               KernelWritePort<int> out) {
  co_await out.put(co_await in.get());
}

constexpr auto bad = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> used, dangling;
  cf_sink_only(a, used);
  return std::make_tuple(dangling);  // never wired to any kernel
}>;

int main() { return bad.counts.kernels; }

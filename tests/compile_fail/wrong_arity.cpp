// MUST NOT COMPILE: kernel instantiated with the wrong number of
// connectors.
#include "core/cgsim.hpp"
using namespace cgsim;

COMPUTE_KERNEL(aie, cf_two_ports, KernelReadPort<int> in,
               KernelWritePort<int> out) {
  co_await out.put(co_await in.get());
}

constexpr auto bad = make_compute_graph_v<[](IoConnector<int> a) {
  cf_two_ports(a);  // missing the output connector
  return std::make_tuple(a);
}>;

int main() { return bad.counts.kernels; }

// Thread-per-kernel functional simulation (the x86sim model).
#include <gtest/gtest.h>

#include <numeric>

#include "core/cgsim.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, xs_square,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) {
    const int v = co_await in.get();
    co_await out.put(v * v);
  }
}

COMPUTE_KERNEL(aie, xs_sum2,
               KernelReadPort<int> a,
               KernelReadPort<int> b,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

constexpr auto diamond = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> l, r, s;
  xs_square(a, l);
  xs_square(a, r);
  xs_sum2(l, r, s);
  return std::make_tuple(s);
}>;

TEST(X86Sim, FunctionalEquivalenceWithCoop) {
  std::vector<int> in(256);
  std::iota(in.begin(), in.end(), -128);
  std::vector<int> coop_out, thr_out;
  diamond(in, coop_out);
  const auto r = x86sim::simulate(diamond.view(), 1, in, thr_out);
  EXPECT_EQ(coop_out, thr_out);
  EXPECT_FALSE(r.run.deadlocked);
}

TEST(X86Sim, OneThreadPerTask) {
  std::vector<int> in{1};
  std::vector<int> out;
  const auto r = x86sim::simulate(diamond.view(), 1, in, out);
  // 3 kernels + 1 source + 1 sink.
  EXPECT_EQ(r.threads_used, 5u);
}

TEST(X86Sim, RepetitionsReplayInput) {
  std::vector<int> in{2, 3};
  std::vector<int> out;
  x86sim::simulate(diamond.view(), 4, in, out);
  EXPECT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); i += 2) {
    EXPECT_EQ(out[i], 8);       // 2*2 + 2*2
    EXPECT_EQ(out[i + 1], 18);  // 3*3 + 3*3
  }
}

TEST(X86Sim, LargeStreamManySmallBlocks) {
  // Exercises the mutex/cv path under contention (the regime where the
  // paper's Table 2 shows cgsim beating x86sim).
  std::vector<int> in(5000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out;
  x86sim::simulate(diamond.view(), 1, in, out);
  ASSERT_EQ(out.size(), 5000u);
  EXPECT_EQ(out[10], 200);  // 2 * 10^2
}

}  // namespace

namespace {

inline constexpr cgsim::PortSettings xs_rtp{.rtp = true};

COMPUTE_KERNEL(aie, xs_count_out,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int, xs_rtp> total) {
  int n = 0;
  while (true) {
    n += co_await in.get();
    co_await total.put(n);
  }
}

constexpr auto xs_rtp_graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<int> a) {
  cgsim::IoConnector<int> t;
  xs_count_out(a, t);
  return std::make_tuple(t);
}>;

TEST(X86Sim, RtpSinkGetsFinalValue) {
  std::vector<int> in{1, 2, 3, 4};
  int total = -1;
  x86sim::simulate(xs_rtp_graph.view(), 1, in, total);
  EXPECT_EQ(total, 10);
}

}  // namespace

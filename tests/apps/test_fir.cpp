// Symmetric FIR application (extension app): bit-exactness against the
// scalar reference and DSP sanity properties.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "apps/fir.hpp"

namespace {

using apps::fir::Block;
using apps::fir::kBlockSamples;
using apps::fir::kTaps;

std::vector<Block> to_blocks(const std::vector<std::int16_t>& s) {
  std::vector<Block> blocks(s.size() / kBlockSamples);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (unsigned i = 0; i < kBlockSamples; ++i) {
      blocks[b].s[i] = s[b * kBlockSamples + i];
    }
  }
  return blocks;
}

// An impulse of amplitude 2^14 reproduces the Q14 taps exactly.
static_assert(apps::fir::kQ == 14);

TEST(Fir, ImpulseRecoversCoefficients) {
  std::vector<std::int16_t> x(kBlockSamples, 0);
  x[0] = 1 << apps::fir::kQ;  // unit impulse in Q14
  apps::fir::State st{};
  const Block y = apps::fir::process_block(to_blocks(x)[0], st);
  // y[n] = c[kTaps-1-n] for n < kTaps, which equals c[n] by symmetry.
  for (unsigned j = 0; j < kTaps; ++j) {
    EXPECT_EQ(y.s[j], apps::fir::kCoeffs[j]) << "tap " << j;
  }
  // After the support the response is identically zero.
  for (unsigned n = kTaps; n < kTaps + 32; ++n) {
    EXPECT_EQ(y.s[n], 0) << "n=" << n;
  }
}

TEST(Fir, BitExactAgainstReference) {
  std::mt19937 rng{51};
  std::uniform_int_distribution<int> d{-20000, 20000};
  std::vector<std::int16_t> x(3 * kBlockSamples);
  for (auto& v : x) v = static_cast<std::int16_t>(d(rng));
  std::vector<Block> out;
  apps::fir::graph(to_blocks(x), out);
  ASSERT_EQ(out.size(), 3u);
  const auto ref = apps::fir::reference(x);
  for (std::size_t b = 0; b < out.size(); ++b) {
    for (unsigned i = 0; i < kBlockSamples; ++i) {
      ASSERT_EQ(out[b].s[i], ref[b * kBlockSamples + i])
          << "block " << b << " sample " << i;
    }
  }
}

TEST(Fir, StateCarriesAcrossWindows) {
  // One long window vs two half-length passes through the same State.
  std::mt19937 rng{53};
  std::uniform_int_distribution<int> d{-10000, 10000};
  std::vector<std::int16_t> x(2 * kBlockSamples);
  for (auto& v : x) v = static_cast<std::int16_t>(d(rng));
  apps::fir::State st{};
  std::vector<std::int16_t> got;
  for (const Block& b : to_blocks(x)) {
    const Block y = apps::fir::process_block(b, st);
    got.insert(got.end(), y.s.begin(), y.s.end());
  }
  const auto ref = apps::fir::reference(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(got[i], ref[i]) << "sample " << i;
  }
}

TEST(Fir, DcGainMatchesCoefficientSum) {
  // A constant input converges to input * sum(c)/2^14.
  const std::int16_t amplitude = 1000;
  std::vector<std::int16_t> x(kBlockSamples, amplitude);
  const auto y = apps::fir::reference(x);
  std::int64_t csum = 0;
  for (auto c : apps::fir::kCoeffs) csum += c;
  const auto expect = static_cast<std::int16_t>(
      (static_cast<std::int64_t>(amplitude) * csum +
       (std::int64_t{1} << (apps::fir::kQ - 1))) >>
      apps::fir::kQ);
  EXPECT_NEAR(y.back(), expect, 1);
}

TEST(Fir, LowPassAttenuatesAlternatingSignal) {
  // The prototype is a low-pass: a Nyquist-rate alternating signal must
  // come out much smaller than a DC signal of the same amplitude.
  std::vector<std::int16_t> nyq(kBlockSamples), dc(kBlockSamples, 10000);
  for (unsigned i = 0; i < kBlockSamples; ++i) {
    nyq[i] = static_cast<std::int16_t>(i % 2 == 0 ? 10000 : -10000);
  }
  const auto y_nyq = apps::fir::reference(nyq);
  const auto y_dc = apps::fir::reference(dc);
  EXPECT_LT(std::abs(static_cast<int>(y_nyq.back())),
            std::abs(static_cast<int>(y_dc.back())) / 10);
}

TEST(Fir, GraphUsesWindows) {
  const cgsim::GraphView g = apps::fir::graph.view();
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.inputs[0].edge)]
                .settings.buffer,
            cgsim::BufferMode::pingpong);
}

// Property: linearity (scaling the input scales the output) within
// rounding, across random seeds.
class FirLinearity : public ::testing::TestWithParam<unsigned> {};

TEST_P(FirLinearity, DoublingInputDoublesOutput) {
  std::mt19937 rng{GetParam()};
  std::uniform_int_distribution<int> d{-5000, 5000};
  std::vector<std::int16_t> x1(kBlockSamples), x2(kBlockSamples);
  for (unsigned i = 0; i < kBlockSamples; ++i) {
    x1[i] = static_cast<std::int16_t>(d(rng));
    x2[i] = static_cast<std::int16_t>(2 * x1[i]);
  }
  const auto y1 = apps::fir::reference(x1);
  const auto y2 = apps::fir::reference(x2);
  for (std::size_t i = 64; i < y1.size(); i += 97) {
    EXPECT_NEAR(y2[i], 2 * y1[i], 2) << "sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FirLinearity, ::testing::Range(0u, 6u));

}  // namespace

// Ported implementing-iir-filter example (paper Section 5): SIMD biquad
// with ping-pong window I/O and a gain runtime parameter.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <random>

#include "apps/iir.hpp"

namespace {

using apps::iir::Block;
using apps::iir::kBlockSamples;

std::vector<Block> to_blocks(const std::vector<float>& s) {
  std::vector<Block> blocks(s.size() / kBlockSamples);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (unsigned i = 0; i < kBlockSamples; ++i) {
      blocks[b].samples[i] = s[b * kBlockSamples + i];
    }
  }
  return blocks;
}

std::vector<float> from_blocks(const std::vector<Block>& blocks) {
  std::vector<float> s;
  s.reserve(blocks.size() * kBlockSamples);
  for (const Block& b : blocks) {
    s.insert(s.end(), b.samples.begin(), b.samples.end());
  }
  return s;
}

TEST(Iir, ImpulseResponseMatchesReference) {
  std::vector<float> x(kBlockSamples, 0.0f);
  x[0] = 1.0f;
  apps::iir::State st{};
  const Block y = apps::iir::process_block(to_blocks(x)[0], st,
                                           apps::iir::kDefaultCoeffs, 1.0f);
  const auto ref = apps::iir::reference(x, apps::iir::kDefaultCoeffs, 1.0f);
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_NEAR(y.samples[i], ref[i], 1e-5f) << "sample " << i;
  }
  // A stable filter's impulse response decays.
  EXPECT_LT(std::abs(y.samples[kBlockSamples - 1]), 1e-3f);
}

TEST(Iir, StateCarriesAcrossBlockBoundary) {
  // Filtering one long stream must equal filtering it window by window --
  // this is the seam the ping-pong window design has to get right.
  std::mt19937 rng{23};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<float> x(4 * kBlockSamples);
  for (auto& v : x) v = d(rng);
  apps::iir::State st{};
  std::vector<float> got;
  for (const Block& b : to_blocks(x)) {
    const Block y =
        apps::iir::process_block(b, st, apps::iir::kDefaultCoeffs, 1.0f);
    got.insert(got.end(), y.samples.begin(), y.samples.end());
  }
  const auto ref = apps::iir::reference(x, apps::iir::kDefaultCoeffs, 1.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-3f * (1 + std::abs(ref[i])))
        << "sample " << i;
  }
}

TEST(Iir, DcGain) {
  // For a biquad, DC gain = (b0+b1+b2)/(1+a1+a2).
  const auto& c = apps::iir::kDefaultCoeffs;
  const float dc = (c.b0 + c.b1 + c.b2) / (1 + c.a1 + c.a2);
  std::vector<float> x(8 * kBlockSamples, 1.0f);
  const auto y = apps::iir::reference(x, c, 1.0f);
  EXPECT_NEAR(y.back(), dc, 1e-3f);
}

TEST(Iir, GraphAppliesGainRtp) {
  std::mt19937 rng{29};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<float> x(2 * kBlockSamples);
  for (auto& v : x) v = d(rng);
  const auto in = to_blocks(x);
  std::vector<Block> out1, out3;
  apps::iir::graph(in, 1.0f, out1);
  apps::iir::graph(in, 3.0f, out3);
  ASSERT_EQ(out1.size(), 2u);
  ASSERT_EQ(out3.size(), 2u);
  const auto y1 = from_blocks(out1);
  const auto y3 = from_blocks(out3);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    ASSERT_NEAR(y3[i], 3.0f * y1[i], 1e-3f * (1 + std::abs(y1[i])));
  }
}

TEST(Iir, GraphUsesPingPongWindows) {
  const cgsim::GraphView g = apps::iir::graph.view();
  const cgsim::FlatEdge& in_edge =
      g.edges[static_cast<std::size_t>(g.inputs[0].edge)];
  EXPECT_EQ(in_edge.settings.buffer, cgsim::BufferMode::pingpong);
  EXPECT_EQ(in_edge.settings.window_size,
            static_cast<int>(kBlockSamples));
  // 8192-byte blocks: the Table 1 block size.
  EXPECT_EQ(in_edge.vtable().elem_size, 8192u);
  // The gain edge is a runtime parameter.
  const cgsim::FlatEdge& gain_edge =
      g.edges[static_cast<std::size_t>(g.inputs[1].edge)];
  EXPECT_TRUE(gain_edge.settings.rtp);
}

TEST(Iir, StabilityOnLongStream) {
  // Bounded input -> bounded output over many blocks.
  std::mt19937 rng{31};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<float> x(16 * kBlockSamples);
  for (auto& v : x) v = d(rng);
  const auto y = apps::iir::reference(x, apps::iir::kDefaultCoeffs, 1.0f);
  const float peak =
      std::abs(*std::max_element(y.begin(), y.end(), [](float a, float b) {
        return std::abs(a) < std::abs(b);
      }));
  EXPECT_LT(peak, 10.0f);
}

// Property sweep: graph output matches the scalar reference for several
// gains and block counts.
struct IirCase {
  float gain;
  int blocks;
};

class IirProperty : public ::testing::TestWithParam<IirCase> {};

TEST_P(IirProperty, GraphMatchesReference) {
  const auto [gain, blocks] = GetParam();
  std::mt19937 rng{static_cast<unsigned>(blocks * 100 + 7)};
  std::uniform_real_distribution<float> d{-2, 2};
  std::vector<float> x(static_cast<std::size_t>(blocks) * kBlockSamples);
  for (auto& v : x) v = d(rng);
  std::vector<Block> out;
  apps::iir::graph(to_blocks(x), gain, out);
  const auto got = from_blocks(out);
  const auto ref = apps::iir::reference(x, apps::iir::kDefaultCoeffs, gain);
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], ref[i], 1e-3f * (1 + std::abs(ref[i])))
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GainsAndSizes, IirProperty,
    ::testing::Values(IirCase{1.0f, 1}, IirCase{0.5f, 2}, IirCase{2.0f, 3},
                      IirCase{-1.0f, 1}, IirCase{10.0f, 2}));

}  // namespace

namespace {

TEST(Iir, PingPongEdgesGetDoubleBufferCapacity) {
  // On hardware a ping-pong window connection holds exactly two buffers;
  // the runtime models that unless the user overrides the capacity.
  cgsim::RuntimeContext ctx{apps::iir::graph.view()};
  const cgsim::GraphView g = apps::iir::graph.view();
  auto* ch = dynamic_cast<cgsim::CoopChannel<apps::iir::Block>*>(
      ctx.channel(g.inputs[0].edge));
  ASSERT_NE(ch, nullptr);
  EXPECT_EQ(ch->capacity(), 2u);
}

}  // namespace

// Ported Bilinear_Interpolation example (paper Section 5).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "apps/bilinear.hpp"

namespace {

using apps::bilinear::kLanes;
using apps::bilinear::Packet;
using apps::bilinear::V;

Packet random_packet(std::mt19937& rng) {
  std::uniform_real_distribution<float> pix{0, 255};
  std::uniform_real_distribution<float> frac{0, 1};
  Packet p;
  for (unsigned i = 0; i < kLanes; ++i) {
    p.p00.set(i, pix(rng));
    p.p01.set(i, pix(rng));
    p.p10.set(i, pix(rng));
    p.p11.set(i, pix(rng));
    p.fx.set(i, frac(rng));
    p.fy.set(i, frac(rng));
  }
  return p;
}

TEST(Bilinear, CornersAreExact) {
  Packet p;
  for (unsigned i = 0; i < kLanes; ++i) {
    p.p00.set(i, 10);
    p.p01.set(i, 20);
    p.p10.set(i, 30);
    p.p11.set(i, 40);
  }
  // fx = fy = 0 -> p00
  const V at00 = apps::bilinear::interpolate(p);
  for (unsigned i = 0; i < kLanes; ++i) EXPECT_FLOAT_EQ(at00.get(i), 10.0f);
  // fx = 1, fy = 0 -> p01
  for (unsigned i = 0; i < kLanes; ++i) p.fx.set(i, 1.0f);
  const V at01 = apps::bilinear::interpolate(p);
  for (unsigned i = 0; i < kLanes; ++i) EXPECT_FLOAT_EQ(at01.get(i), 20.0f);
  // fx = fy = 1 -> p11
  for (unsigned i = 0; i < kLanes; ++i) p.fy.set(i, 1.0f);
  const V at11 = apps::bilinear::interpolate(p);
  for (unsigned i = 0; i < kLanes; ++i) EXPECT_FLOAT_EQ(at11.get(i), 40.0f);
}

TEST(Bilinear, CenterIsAverage) {
  Packet p;
  for (unsigned i = 0; i < kLanes; ++i) {
    p.p00.set(i, 0);
    p.p01.set(i, 10);
    p.p10.set(i, 20);
    p.p11.set(i, 30);
    p.fx.set(i, 0.5f);
    p.fy.set(i, 0.5f);
  }
  const V c = apps::bilinear::interpolate(p);
  for (unsigned i = 0; i < kLanes; ++i) EXPECT_FLOAT_EQ(c.get(i), 15.0f);
}

TEST(Bilinear, ResultWithinNeighbourEnvelope) {
  std::mt19937 rng{5};
  for (int n = 0; n < 50; ++n) {
    const Packet p = random_packet(rng);
    const V r = apps::bilinear::interpolate(p);
    for (unsigned i = 0; i < kLanes; ++i) {
      const float lo = std::min({p.p00.get(i), p.p01.get(i), p.p10.get(i),
                                 p.p11.get(i)});
      const float hi = std::max({p.p00.get(i), p.p01.get(i), p.p10.get(i),
                                 p.p11.get(i)});
      EXPECT_GE(r.get(i), lo - 1e-3f);
      EXPECT_LE(r.get(i), hi + 1e-3f);
    }
  }
}

TEST(Bilinear, GraphMatchesReference) {
  std::mt19937 rng{11};
  std::vector<Packet> in(40);
  for (auto& p : in) p = random_packet(rng);
  std::vector<V> out;
  apps::bilinear::graph(in, out);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    const auto want = apps::bilinear::reference(in[k]);
    for (unsigned i = 0; i < kLanes; ++i) {
      EXPECT_NEAR(out[k].get(i), want[i], 1e-3f) << "packet " << k;
    }
  }
}

// Property: interpolation is monotone in fx when p01 >= p00, p11 >= p10.
class BilinearMonotone : public ::testing::TestWithParam<float> {};

TEST_P(BilinearMonotone, MonotoneInFx) {
  const float fy = GetParam();
  Packet lo_p, hi_p;
  for (unsigned i = 0; i < kLanes; ++i) {
    for (Packet* p : {&lo_p, &hi_p}) {
      p->p00.set(i, 1);
      p->p01.set(i, 5);
      p->p10.set(i, 2);
      p->p11.set(i, 9);
      p->fy.set(i, fy);
    }
    lo_p.fx.set(i, 0.25f);
    hi_p.fx.set(i, 0.75f);
  }
  const V lo = apps::bilinear::interpolate(lo_p);
  const V hi = apps::bilinear::interpolate(hi_p);
  for (unsigned i = 0; i < kLanes; ++i) EXPECT_LE(lo.get(i), hi.get(i));
}

INSTANTIATE_TEST_SUITE_P(Fy, BilinearMonotone,
                         ::testing::Values(0.0f, 0.25f, 0.5f, 0.75f, 1.0f));

}  // namespace

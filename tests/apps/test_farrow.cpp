// Ported farrow_filter example (paper Section 5): fixed-point fractional
// delay, two kernels with ping-pong buffer I/O.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "apps/farrow.hpp"

namespace {

using apps::farrow::BranchBlock;
using apps::farrow::kBlockSamples;
using apps::farrow::kTaps;
using apps::farrow::MuBlock;
using apps::farrow::SampleBlock;

std::vector<SampleBlock> to_sample_blocks(const std::vector<std::int16_t>& s) {
  std::vector<SampleBlock> blocks(s.size() / kBlockSamples);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (unsigned i = 0; i < kBlockSamples; ++i) {
      blocks[b].s[i] = s[b * kBlockSamples + i];
    }
  }
  return blocks;
}

std::vector<MuBlock> to_mu_blocks(const std::vector<std::int16_t>& s) {
  std::vector<MuBlock> blocks(s.size() / kBlockSamples);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    for (unsigned i = 0; i < kBlockSamples; ++i) {
      blocks[b].mu[i] = s[b * kBlockSamples + i];
    }
  }
  return blocks;
}

TEST(Farrow, Q14Rounding) {
  EXPECT_EQ(apps::farrow::q14_round(0), 0);
  EXPECT_EQ(apps::farrow::q14_round(1 << 14), 1);
  EXPECT_EQ(apps::farrow::q14_round((1 << 13)), 1);      // 0.5 rounds up
  EXPECT_EQ(apps::farrow::q14_round((1 << 13) - 1), 0);  // just below 0.5
  EXPECT_EQ(apps::farrow::sat16(40000), 32767);
  EXPECT_EQ(apps::farrow::sat16(-40000), -32768);
}

TEST(Farrow, Branch0IsPassthroughTap) {
  // Branch 0's coefficients are a pure delay of 4 samples in Q14; for a
  // constant input the branch output equals the input.
  std::vector<std::int16_t> x(kBlockSamples, 1000);
  apps::farrow::BranchState st{};
  const BranchBlock br =
      apps::farrow::branch_filters(to_sample_blocks(x)[0], st);
  // After the group delay has filled.
  for (unsigned i = kTaps; i < 64; ++i) {
    EXPECT_EQ(br.b0[i], 1000) << "i=" << i;
  }
}

TEST(Farrow, MuZeroSelectsBranch0) {
  // Horner with mu = 0 reduces to b0.
  BranchBlock br{};
  for (unsigned i = 0; i < kBlockSamples; ++i) {
    br.b0[i] = static_cast<std::int16_t>(i % 1000);
    br.b1[i] = 1111;
    br.b2[i] = 2222;
    br.b3[i] = 3333;
  }
  MuBlock mu{};  // all zero
  const SampleBlock y = apps::farrow::combine(br, mu);
  for (unsigned i = 0; i < kBlockSamples; ++i) {
    EXPECT_EQ(y.s[i], static_cast<std::int16_t>(i % 1000));
  }
}

TEST(Farrow, GraphBitExactAgainstReference) {
  std::mt19937 rng{41};
  std::uniform_int_distribution<int> dx{-25000, 25000};
  std::uniform_int_distribution<int> dmu{0, (1 << 14) - 1};
  std::vector<std::int16_t> xs(3 * kBlockSamples), mus(xs.size());
  for (auto& v : xs) v = static_cast<std::int16_t>(dx(rng));
  for (auto& v : mus) v = static_cast<std::int16_t>(dmu(rng));
  std::vector<SampleBlock> out;
  apps::farrow::graph(to_sample_blocks(xs), to_mu_blocks(mus), out);
  ASSERT_EQ(out.size(), 3u);
  const auto ref = apps::farrow::reference(xs, mus);
  for (std::size_t b = 0; b < out.size(); ++b) {
    for (unsigned i = 0; i < kBlockSamples; ++i) {
      ASSERT_EQ(out[b].s[i], ref[b * kBlockSamples + i])
          << "block " << b << " sample " << i;
    }
  }
}

TEST(Farrow, StateCarriesAcrossWindows) {
  // The branch filter keeps the last taps-1 samples; a stream filtered in
  // one window must equal the same stream filtered in two.
  std::mt19937 rng{43};
  std::uniform_int_distribution<int> dx{-20000, 20000};
  std::vector<std::int16_t> xs(2 * kBlockSamples);
  for (auto& v : xs) v = static_cast<std::int16_t>(dx(rng));

  apps::farrow::BranchState st{};
  std::vector<std::int16_t> two_windows;
  for (const SampleBlock& blk : to_sample_blocks(xs)) {
    const BranchBlock br = apps::farrow::branch_filters(blk, st);
    two_windows.insert(two_windows.end(), br.b1.begin(), br.b1.end());
  }
  // Recompute branch 1 over the full stream at once and compare across the
  // window seam.
  for (std::size_t n = kTaps; n < xs.size(); ++n) {
    std::int64_t acc = 0;
    for (unsigned j = 0; j < kTaps; ++j) {
      acc += static_cast<std::int64_t>(apps::farrow::kCoeffs[1][j]) *
             xs[n - (kTaps - 1) + j];
    }
    ASSERT_EQ(two_windows[n], apps::farrow::q14_round(acc)) << "n=" << n;
  }
}

TEST(Farrow, GraphTopology) {
  static_assert(apps::farrow::graph.counts.kernels == 2);
  static_assert(apps::farrow::graph.counts.inputs == 2);
  static_assert(apps::farrow::graph.counts.outputs == 1);
  const cgsim::GraphView g = apps::farrow::graph.view();
  EXPECT_EQ(g.kernels[0].name, "farrow_branches");
  EXPECT_EQ(g.kernels[1].name, "farrow_combine");
  // The inter-kernel branch edge uses ping-pong windows.
  bool found_pingpong = false;
  for (const cgsim::FlatEdge& e : g.edges) {
    if (e.settings.buffer == cgsim::BufferMode::pingpong) {
      found_pingpong = true;
      EXPECT_EQ(e.vtable().type_name, "apps::farrow::BranchBlock");
    }
  }
  EXPECT_TRUE(found_pingpong);
  // 4096-byte sample blocks: the Table 1 block size.
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.inputs[0].edge)]
                .vtable()
                .elem_size,
            4096u);
}

// Property: for constant mu, output is a linear function of input scale
// within rounding (checks fixed-point arithmetic consistency).
class FarrowScale : public ::testing::TestWithParam<int> {};

TEST_P(FarrowScale, SaturationIsClamped) {
  const int scale = GetParam();
  std::vector<std::int16_t> xs(kBlockSamples,
                               static_cast<std::int16_t>(scale));
  std::vector<std::int16_t> mus(kBlockSamples, 1 << 13);  // mu = 0.5
  const auto y = apps::farrow::reference(xs, mus);
  for (std::int16_t v : y) {
    EXPECT_GE(v, -32768);
    EXPECT_LE(v, 32767);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, FarrowScale,
                         ::testing::Values(100, 1000, 10000, 32767, -32768));

}  // namespace

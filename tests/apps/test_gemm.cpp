// Tiled GEMM application (split-K across two AIE kernels).
#include <gtest/gtest.h>

#include <random>

#include "apps/gemm.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using apps::gemm::kTile;
using apps::gemm::Tile;
using apps::gemm::TilePair;

Tile random_tile(std::mt19937& rng) {
  std::uniform_real_distribution<float> d{-2, 2};
  Tile t;
  for (auto& v : t.m) v = d(rng);
  return t;
}

Tile identity_tile() {
  Tile t;
  for (unsigned i = 0; i < kTile; ++i) t.set(i, i, 1.0f);
  return t;
}

void expect_tiles_near(const Tile& got, const Tile& want, float tol) {
  for (unsigned i = 0; i < kTile * kTile; ++i) {
    ASSERT_NEAR(got.m[i], want.m[i], tol * (1 + std::abs(want.m[i])))
        << "element " << i;
  }
}

TEST(Gemm, TileKernelMatchesReference) {
  std::mt19937 rng{61};
  const Tile a = random_tile(rng);
  const Tile b = random_tile(rng);
  expect_tiles_near(apps::gemm::multiply_tile(a, b),
                    apps::gemm::reference_multiply(a, b), 1e-4f);
}

TEST(Gemm, IdentityIsNeutral) {
  std::mt19937 rng{67};
  const Tile a = random_tile(rng);
  expect_tiles_near(apps::gemm::multiply_tile(a, identity_tile()), a, 1e-5f);
  expect_tiles_near(apps::gemm::multiply_tile(identity_tile(), a), a, 1e-5f);
}

TEST(Gemm, GraphComputesSplitKProducts) {
  std::mt19937 rng{71};
  const Tile a0 = random_tile(rng), b0 = random_tile(rng);
  const Tile a1 = random_tile(rng), b1 = random_tile(rng);
  std::vector<TilePair> half0{{a0, b0}};
  std::vector<TilePair> half1{{a1, b1}};
  std::vector<Tile> out;
  apps::gemm::graph(half0, half1, out);
  ASSERT_EQ(out.size(), 1u);
  // out = a0*b0 + a1*b1
  const Tile p0 = apps::gemm::reference_multiply(a0, b0);
  const Tile p1 = apps::gemm::reference_multiply(a1, b1);
  Tile want;
  for (unsigned i = 0; i < kTile * kTile; ++i) want.m[i] = p0.m[i] + p1.m[i];
  expect_tiles_near(out[0], want, 1e-4f);
}

TEST(Gemm, TiledDriverMatchesFullReference) {
  // 2x4 tile grid times 4x3 tile grid (K = 4 tiles, split across halves).
  std::mt19937 rng{73};
  std::vector<std::vector<Tile>> a(2, std::vector<Tile>(4));
  std::vector<std::vector<Tile>> b(4, std::vector<Tile>(3));
  for (auto& row : a) {
    for (auto& t : row) t = random_tile(rng);
  }
  for (auto& row : b) {
    for (auto& t : row) t = random_tile(rng);
  }
  const auto got = apps::gemm::multiply_tiled(a, b);
  ASSERT_EQ(got.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      Tile want{};
      for (std::size_t k = 0; k < 4; ++k) {
        const Tile p = apps::gemm::reference_multiply(a[r][k], b[k][c]);
        for (unsigned i = 0; i < kTile * kTile; ++i) want.m[i] += p.m[i];
      }
      expect_tiles_near(got[r * 3 + c], want, 1e-3f);
    }
  }
}

TEST(Gemm, BackendsAgree) {
  std::mt19937 rng{79};
  std::vector<TilePair> half0{{random_tile(rng), random_tile(rng)},
                              {random_tile(rng), random_tile(rng)}};
  std::vector<TilePair> half1{{random_tile(rng), random_tile(rng)},
                              {random_tile(rng), random_tile(rng)}};
  std::vector<Tile> coop, threaded;
  apps::gemm::graph(half0, half1, coop);
  x86sim::simulate(apps::gemm::graph.view(), 1, half0, half1, threaded);
  EXPECT_EQ(coop, threaded);
}

TEST(Gemm, GraphTopology) {
  static_assert(apps::gemm::graph.counts.kernels == 3);
  const cgsim::GraphView g = apps::gemm::graph.view();
  EXPECT_EQ(g.kernels[0].name, "gemm_half");
  EXPECT_EQ(g.kernels[1].name, "gemm_half");
  EXPECT_EQ(g.kernels[2].name, "gemm_acc");
  // 1 KiB tiles, 2 KiB tile pairs.
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.inputs[0].edge)]
                .vtable()
                .elem_size,
            2048u);
}

}  // namespace

// Tests for the ML kernel workload family (ml_gemm / conv2d / softmax):
// micro-kernels must match hand-written scalar references exactly on the
// integer paths (and bit-identically across SIMD backends), the multi-tile
// graphs must reproduce the references end to end through the coop runtime
// and the thread-per-kernel x86sim backend, and the bf16 variants must
// track their float oracles within the bf16 rounding budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "apps/conv2d.hpp"
#include "apps/ml_gemm.hpp"
#include "apps/softmax.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using Scalar = aie::simd::scalar_backend;
using Native = aie::simd::native_backend;

std::int8_t rand_i8(std::mt19937& rng) { return static_cast<std::int8_t>(rng()); }

// ---------------------------------------------------------------------------
// ml_gemm: int8 dot-product micro-kernel, requantize, graph, bf16
// ---------------------------------------------------------------------------

apps::ml_gemm::Tile8 random_tile8(std::mt19937& rng) {
  apps::ml_gemm::Tile8 t;
  for (auto& v : t.m) v = rand_i8(rng);
  return t;
}

TEST(MlGemm, MacTileMatchesExactReference) {
  std::mt19937 rng(11);
  for (unsigned round = 0; round < 20; ++round) {
    auto a = random_tile8(rng);
    auto b = random_tile8(rng);
    if (round == 0) {
      // Worst-case accumulation magnitude: all lanes at int8 min.
      for (auto& v : a.m) v = -128;
      for (auto& v : b.m) v = -128;
    }
    apps::ml_gemm::Tile32 cin{};
    for (auto& v : cin.m) v = static_cast<std::int32_t>(rng() % 65536) - 32768;

    const auto rs = apps::ml_gemm::mac_tile<Scalar>(cin, a, b);
    const auto rn = apps::ml_gemm::mac_tile<Native>(cin, a, b);
    EXPECT_EQ(rs, rn) << "backends diverge, round " << round;

    const auto prod = apps::tile::reference_multiply<std::int32_t>(a, b);
    for (unsigned i = 0; i < 256; ++i) {
      EXPECT_EQ(rs.m[i], cin.m[i] + prod.m[i]) << "elem " << i;
    }
  }
}

TEST(MlGemm, RequantizeSaturatesLikeReference) {
  apps::ml_gemm::Tile32 c{};
  std::mt19937 rng(13);
  c.m[0] = std::numeric_limits<std::int32_t>::max();
  c.m[1] = std::numeric_limits<std::int32_t>::min();
  c.m[2] = (127 << 6) + 31;  // rounds to 127 at shift 6
  c.m[3] = (127 << 6) + 32;  // rounds past 127, saturates
  c.m[4] = -(128 << 6);
  c.m[5] = -(128 << 6) - 33;
  for (unsigned i = 6; i < 256; ++i) {
    c.m[i] = static_cast<std::int32_t>(rng());
  }
  for (const int shift : {0, 1, 6, 15}) {
    const auto rs = apps::ml_gemm::requantize<Scalar>(c, shift);
    const auto rn = apps::ml_gemm::requantize<Native>(c, shift);
    EXPECT_EQ(rs, rn) << "shift " << shift;
    for (unsigned i = 0; i < 256; ++i) {
      EXPECT_EQ(rs.m[i], apps::ml_gemm::reference_requant(c.m[i], shift))
          << "shift " << shift << " elem " << i;
    }
  }
}

TEST(MlGemm, GraphIsTwoCascadeStripsOfFiveKernels) {
  static_assert(apps::ml_gemm::graph.counts.kernels == 10);
  static_assert(apps::ml_gemm::kCascade == 4);
  static_assert(apps::ml_gemm::kStrips == 2);
}

TEST(MlGemm, TiledMultiplyMatchesReference) {
  std::mt19937 rng(17);
  constexpr int kShift = 6;
  for (const auto& [mt, nt] : {std::pair{2u, 3u}, std::pair{1u, 3u}}) {
    std::vector<std::vector<apps::ml_gemm::Tile8>> a(mt), b(
        apps::ml_gemm::kCascade);
    for (auto& row : a) {
      for (unsigned k = 0; k < apps::ml_gemm::kCascade; ++k) {
        row.push_back(random_tile8(rng));
      }
    }
    for (auto& row : b) {
      for (unsigned c = 0; c < nt; ++c) row.push_back(random_tile8(rng));
    }
    const auto out = apps::ml_gemm::multiply_tiled(a, b, kShift);
    const auto ref = apps::ml_gemm::reference_multiply_tiled(a, b, kShift);
    ASSERT_EQ(out.size(), ref.size());
    EXPECT_EQ(out, ref) << "mt=" << mt << " nt=" << nt;
  }
}

TEST(MlGemm, GraphMatchesThreadedBackend) {
  std::mt19937 rng(19);
  constexpr unsigned kPairs = 3;
  std::array<std::vector<apps::ml_gemm::TilePair8>, 8> feeds;
  for (auto& f : feeds) {
    for (unsigned i = 0; i < kPairs; ++i) {
      f.push_back(apps::ml_gemm::TilePair8{random_tile8(rng),
                                           random_tile8(rng)});
    }
  }
  std::vector<apps::ml_gemm::Tile8> coop0, coop1, thr0, thr1;
  apps::ml_gemm::graph(feeds[0], feeds[1], feeds[2], feeds[3], feeds[4],
                       feeds[5], feeds[6], feeds[7], 6, 6, coop0, coop1);
  x86sim::simulate(apps::ml_gemm::graph.view(), 1, feeds[0], feeds[1],
                   feeds[2], feeds[3], feeds[4], feeds[5], feeds[6], feeds[7],
                   6, 6, thr0, thr1);
  EXPECT_EQ(coop0, thr0);
  EXPECT_EQ(coop1, thr1);
}

apps::ml_gemm::TileBf random_tile_bf(std::mt19937& rng) {
  std::uniform_real_distribution<float> d(-2.0f, 2.0f);
  apps::ml_gemm::TileBf t;
  for (auto& v : t.m) v = aie::float_to_bf16(d(rng));
  return t;
}

TEST(MlGemm, Bf16TileBackendsBitIdentical) {
  std::mt19937 rng(23);
  for (unsigned round = 0; round < 10; ++round) {
    const auto a = random_tile_bf(rng);
    const auto b = random_tile_bf(rng);
    const auto rs = apps::ml_gemm::multiply_tile_bf16<Scalar>(a, b);
    const auto rn = apps::ml_gemm::multiply_tile_bf16<Native>(a, b);
    EXPECT_EQ(rs, rn) << "round " << round;
  }
}

TEST(MlGemm, Bf16TileTracksFloatReference) {
  std::mt19937 rng(29);
  for (unsigned round = 0; round < 10; ++round) {
    const auto a = random_tile_bf(rng);
    const auto b = random_tile_bf(rng);
    const auto c = apps::ml_gemm::multiply_tile_bf16<Scalar>(a, b);
    const auto ref = apps::ml_gemm::reference_multiply_bf16(a, b);
    for (unsigned i = 0; i < 256; ++i) {
      // fp32 accumulation is exact vs the reference order up to rounding;
      // the final bf16 narrow costs at most 2^-8 relative.
      const float got = aie::bf16_to_float(c.m[i]);
      const float tol = 0.02f + 0.01f * std::fabs(ref.m[i]);
      EXPECT_NEAR(got, ref.m[i], tol) << "elem " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// conv2d: row micro-kernel, cascade graph vs reference
// ---------------------------------------------------------------------------

apps::conv2d::Row random_row(std::mt19937& rng) {
  apps::conv2d::Row r;
  for (auto& v : r.px) v = rand_i8(rng);
  return r;
}

apps::conv2d::Weights random_weights(std::mt19937& rng) {
  apps::conv2d::Weights w;
  for (unsigned i = 0; i < 9; ++i) w.w[i] = rand_i8(rng);
  return w;
}

TEST(Conv2d, ConvRowMatchesScalarLoop) {
  std::mt19937 rng(31);
  for (unsigned round = 0; round < 20; ++round) {
    const auto p0 = apps::conv2d::pad_row(random_row(rng));
    const auto p1 = apps::conv2d::pad_row(random_row(rng));
    const auto p2 = apps::conv2d::pad_row(random_row(rng));
    const auto w = random_weights(rng);
    apps::conv2d::PartialRow base{};
    for (auto& v : base.px) {
      v = static_cast<std::int32_t>(rng() % 65536) - 32768;
    }
    const bool with_base = round % 2 == 0;
    const auto* bp = with_base ? &base : nullptr;
    const auto rs = apps::conv2d::conv_row<Scalar>(p0, p1, p2, w, bp);
    const auto rn = apps::conv2d::conv_row<Native>(p0, p1, p2, w, bp);
    EXPECT_EQ(rs, rn) << "round " << round;
    const std::array<const apps::conv2d::Padded*, 3> rows{&p0, &p1, &p2};
    for (unsigned x = 0; x < apps::conv2d::kW; ++x) {
      std::int32_t acc = with_base ? base.px[x] : 0;
      for (unsigned dy = 0; dy < 3; ++dy) {
        for (unsigned dx = 0; dx < 3; ++dx) {
          acc += static_cast<std::int32_t>(w.w[dy * 3 + dx]) *
                 (*rows[dy])[x + dx];
        }
      }
      EXPECT_EQ(rs.px[x], acc) << "x=" << x;
    }
  }
}

TEST(Conv2d, GraphIsFourKernelCascade) {
  static_assert(apps::conv2d::graph.counts.kernels == apps::conv2d::kChannels);
}

TEST(Conv2d, GraphMatchesReference) {
  std::mt19937 rng(37);
  constexpr std::size_t kH = 9;
  std::array<std::vector<apps::conv2d::Row>, apps::conv2d::kChannels> img;
  std::array<apps::conv2d::Weights, apps::conv2d::kChannels> w;
  for (auto& ch : img) {
    for (std::size_t y = 0; y < kH; ++y) ch.push_back(random_row(rng));
  }
  for (auto& cw : w) cw = random_weights(rng);
  const auto out = apps::conv2d::run(img, w);
  const auto ref = apps::conv2d::reference(img, w);
  ASSERT_EQ(out.size(), kH - 2);
  EXPECT_EQ(out, ref);
}

TEST(Conv2d, GraphMatchesThreadedBackend) {
  std::mt19937 rng(41);
  constexpr std::size_t kH = 6;
  std::array<std::vector<apps::conv2d::Row>, apps::conv2d::kChannels> img;
  std::array<apps::conv2d::Weights, apps::conv2d::kChannels> w;
  for (auto& ch : img) {
    for (std::size_t y = 0; y < kH; ++y) ch.push_back(random_row(rng));
  }
  for (auto& cw : w) cw = random_weights(rng);
  std::vector<apps::conv2d::Row> coop, threaded;
  apps::conv2d::graph(img[0], img[1], img[2], img[3], w[0], w[1], w[2], w[3],
                      coop);
  x86sim::simulate(apps::conv2d::graph.view(), 1, img[0], img[1], img[2],
                   img[3], w[0], w[1], w[2], w[3], threaded);
  EXPECT_EQ(coop, threaded);
}

// ---------------------------------------------------------------------------
// softmax: fixed-point pipeline vs integer reference and float oracle
// ---------------------------------------------------------------------------

apps::softmax::Block random_block(std::mt19937& rng) {
  apps::softmax::Block b;
  for (auto& v : b.x) v = rand_i8(rng);
  return b;
}

TEST(Softmax, BlockMatchesIntegerReference) {
  std::mt19937 rng(43);
  for (unsigned round = 0; round < 30; ++round) {
    auto b = random_block(rng);
    if (round == 0) {
      for (auto& v : b.x) v = 127;  // all-equal extremes
    } else if (round == 1) {
      for (auto& v : b.x) v = -128;
    }
    const auto rs = apps::softmax::softmax_block<Scalar>(b);
    const auto rn = apps::softmax::softmax_block<Native>(b);
    EXPECT_EQ(rs, rn) << "round " << round;
    EXPECT_EQ(rs, apps::softmax::reference_softmax(b)) << "round " << round;
  }
}

TEST(Softmax, GraphIsThreeKernelPipeline) {
  static_assert(apps::softmax::graph.counts.kernels == 3);
}

TEST(Softmax, GraphMatchesReferencePerBlock) {
  std::mt19937 rng(47);
  std::vector<apps::softmax::Block> in(12);
  for (auto& b : in) b = random_block(rng);
  std::vector<apps::softmax::Block> out, threaded;
  apps::softmax::graph(in, out);
  x86sim::simulate(apps::softmax::graph.view(), 1, in, threaded);
  ASSERT_EQ(out.size(), in.size());
  EXPECT_EQ(out, threaded);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], apps::softmax::reference_softmax(in[i])) << "block " << i;
  }
}

TEST(Softmax, ProbabilitiesSumToOneInQ7) {
  std::mt19937 rng(53);
  for (unsigned round = 0; round < 20; ++round) {
    const auto b = random_block(rng);
    const auto p = apps::softmax::softmax_block<Scalar>(b);
    std::int32_t sum = 0;
    for (const auto v : p.x) {
      EXPECT_GE(v, 0);
      sum += v;
    }
    // Per-element rounding is at most half a Q7 ulp; 64 elements.
    EXPECT_NEAR(static_cast<double>(sum), 128.0, 40.0) << "round " << round;
  }
}

TEST(Softmax, FixedPointTracksFloatOracle) {
  std::mt19937 rng(59);
  for (unsigned round = 0; round < 20; ++round) {
    const auto b = random_block(rng);
    const auto p = apps::softmax::softmax_block<Scalar>(b);
    const auto ref = apps::softmax::reference_softmax_float(b);
    for (unsigned i = 0; i < apps::softmax::kN; ++i) {
      EXPECT_NEAR(static_cast<double>(p.x[i]) / 128.0,
                  static_cast<double>(ref[i]), 0.02)
          << "round " << round << " elem " << i;
    }
  }
}

TEST(Softmax, Bf16VariantTracksFloatReference) {
  std::mt19937 rng(61);
  std::uniform_real_distribution<float> d(-8.0f, 8.0f);
  for (unsigned round = 0; round < 10; ++round) {
    std::array<aie::bf16, apps::softmax::kN> in{};
    for (auto& v : in) v = aie::float_to_bf16(d(rng));
    const auto rs = apps::softmax::softmax_bf16<Scalar>(in);
    const auto rn = apps::softmax::softmax_bf16<Native>(in);
    for (unsigned i = 0; i < apps::softmax::kN; ++i) {
      EXPECT_EQ(rs[i].bits, rn[i].bits) << "elem " << i;
    }
    // Float oracle over the exact widened inputs.
    std::array<float, apps::softmax::kN> f{};
    float mx = -1e30f;
    for (unsigned i = 0; i < apps::softmax::kN; ++i) {
      f[i] = aie::bf16_to_float(in[i]);
      mx = std::max(mx, f[i]);
    }
    float sum = 0.0f;
    std::array<float, apps::softmax::kN> e{};
    for (unsigned i = 0; i < apps::softmax::kN; ++i) {
      e[i] = std::exp(f[i] - mx);
      sum += e[i];
    }
    for (unsigned i = 0; i < apps::softmax::kN; ++i) {
      EXPECT_NEAR(aie::bf16_to_float(rs[i]), e[i] / sum,
                  0.005f + 0.01f * e[i] / sum)
          << "elem " << i;
    }
  }
}

}  // namespace

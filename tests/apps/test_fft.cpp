// 16-point radix-2 FFT application.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "apps/fft.hpp"

namespace {

using apps::fft::Frame;
using apps::fft::kN;

Frame random_frame(std::mt19937& rng) {
  std::uniform_real_distribution<float> d{-2, 2};
  Frame f;
  for (unsigned i = 0; i < kN; ++i) {
    f.re.set(i, d(rng));
    f.im.set(i, d(rng));
  }
  return f;
}

void expect_matches_dft(const Frame& in, float tol = 1e-4f) {
  const Frame got = apps::fft::fft16(in);
  const auto want = apps::fft::reference_dft(in);
  for (unsigned k = 0; k < kN; ++k) {
    ASSERT_NEAR(got.re.get(k), want[k].real(), tol) << "bin " << k;
    ASSERT_NEAR(got.im.get(k), want[k].imag(), tol) << "bin " << k;
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  Frame f{};
  f.re.set(0, 1.0f);
  const Frame got = apps::fft::fft16(f);
  for (unsigned k = 0; k < kN; ++k) {
    EXPECT_NEAR(got.re.get(k), 1.0f, 1e-5f);
    EXPECT_NEAR(got.im.get(k), 0.0f, 1e-5f);
  }
}

TEST(Fft, DcGivesSingleBin) {
  Frame f{};
  for (unsigned i = 0; i < kN; ++i) f.re.set(i, 1.0f);
  const Frame got = apps::fft::fft16(f);
  EXPECT_NEAR(got.re.get(0), 16.0f, 1e-4f);
  for (unsigned k = 1; k < kN; ++k) {
    EXPECT_NEAR(got.re.get(k), 0.0f, 1e-4f) << k;
    EXPECT_NEAR(got.im.get(k), 0.0f, 1e-4f) << k;
  }
}

TEST(Fft, PureToneLandsInItsBin) {
  for (unsigned bin : {1u, 3u, 7u}) {
    Frame f{};
    for (unsigned n = 0; n < kN; ++n) {
      const double ang = 2.0 * std::numbers::pi *
                         static_cast<double>(bin * n) /
                         static_cast<double>(kN);
      f.re.set(n, static_cast<float>(std::cos(ang)));
      f.im.set(n, static_cast<float>(std::sin(ang)));
    }
    const Frame got = apps::fft::fft16(f);
    for (unsigned k = 0; k < kN; ++k) {
      const double mag = std::hypot(got.re.get(k), got.im.get(k));
      if (k == bin) {
        EXPECT_NEAR(mag, 16.0, 1e-3) << "bin " << bin;
      } else {
        EXPECT_NEAR(mag, 0.0, 1e-3) << "bin " << bin << " leak at " << k;
      }
    }
  }
}

TEST(Fft, MatchesReferenceDftOnRandomInput) {
  std::mt19937 rng{111};
  for (int i = 0; i < 20; ++i) expect_matches_dft(random_frame(rng));
}

TEST(Fft, Parseval) {
  std::mt19937 rng{113};
  const Frame f = random_frame(rng);
  const Frame got = apps::fft::fft16(f);
  double time_e = 0, freq_e = 0;
  for (unsigned i = 0; i < kN; ++i) {
    time_e += f.re.get(i) * f.re.get(i) + f.im.get(i) * f.im.get(i);
    freq_e += got.re.get(i) * got.re.get(i) + got.im.get(i) * got.im.get(i);
  }
  EXPECT_NEAR(freq_e, 16.0 * time_e, 1e-2 * (1 + freq_e));
}

TEST(Fft, LinearityProperty) {
  std::mt19937 rng{117};
  const Frame a = random_frame(rng);
  const Frame b = random_frame(rng);
  Frame sum;
  for (unsigned i = 0; i < kN; ++i) {
    sum.re.set(i, a.re.get(i) + b.re.get(i));
    sum.im.set(i, a.im.get(i) + b.im.get(i));
  }
  const Frame fa = apps::fft::fft16(a);
  const Frame fb = apps::fft::fft16(b);
  const Frame fs = apps::fft::fft16(sum);
  for (unsigned k = 0; k < kN; ++k) {
    EXPECT_NEAR(fs.re.get(k), fa.re.get(k) + fb.re.get(k), 1e-3f);
    EXPECT_NEAR(fs.im.get(k), fa.im.get(k) + fb.im.get(k), 1e-3f);
  }
}

TEST(Fft, GraphStreamsFrames) {
  std::mt19937 rng{119};
  std::vector<Frame> in(16);
  for (auto& f : in) f = random_frame(rng);
  std::vector<Frame> out;
  apps::fft::graph(in, out);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto want = apps::fft::reference_dft(in[i]);
    for (unsigned k = 0; k < kN; ++k) {
      ASSERT_NEAR(out[i].re.get(k), want[k].real(), 1e-3f)
          << "frame " << i << " bin " << k;
    }
  }
}

// Property sweep: FFT matches DFT across many random seeds.
class FftSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FftSweep, MatchesDft) {
  std::mt19937 rng{GetParam()};
  expect_matches_dft(random_frame(rng), 2e-4f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftSweep, ::testing::Range(200u, 215u));

}  // namespace

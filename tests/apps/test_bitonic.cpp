// Ported bitonic-sorting example (paper Section 5): correctness of the
// 16-wide sorting network and its single-kernel graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "apps/bitonic.hpp"

namespace {

using apps::bitonic::Block;

Block make_block(const std::array<float, 16>& a) {
  Block b;
  for (unsigned i = 0; i < 16; ++i) b.set(i, a[i]);
  return b;
}

std::array<float, 16> to_array(const Block& b) {
  std::array<float, 16> a{};
  for (unsigned i = 0; i < 16; ++i) a[i] = b.get(i);
  return a;
}

TEST(Bitonic, SortsAscending) {
  std::array<float, 16> a{9, 3, 7, 1, 15, 0, 2, 8, 5, 11, 4, 13, 6, 10, 14, 12};
  const auto sorted = to_array(apps::bitonic::sort16(make_block(a)));
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(Bitonic, OutputIsPermutationOfInput) {
  std::array<float, 16> a{};
  std::mt19937 rng{3};
  std::uniform_real_distribution<float> d{-50, 50};
  for (auto& v : a) v = d(rng);
  auto sorted = to_array(apps::bitonic::sort16(make_block(a)));
  auto want = a;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(sorted, want);
}

TEST(Bitonic, AlreadySortedAndReversed) {
  std::array<float, 16> asc{};
  for (unsigned i = 0; i < 16; ++i) asc[i] = static_cast<float>(i);
  EXPECT_EQ(to_array(apps::bitonic::sort16(make_block(asc))), asc);
  std::array<float, 16> desc = asc;
  std::reverse(desc.begin(), desc.end());
  EXPECT_EQ(to_array(apps::bitonic::sort16(make_block(desc))), asc);
}

TEST(Bitonic, Duplicates) {
  std::array<float, 16> a{};
  a.fill(3.5f);
  a[7] = 1.0f;
  a[2] = 9.0f;
  const auto sorted = to_array(apps::bitonic::sort16(make_block(a)));
  EXPECT_EQ(sorted[0], 1.0f);
  EXPECT_EQ(sorted[15], 9.0f);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(Bitonic, NegativeAndSpecialMagnitudes) {
  std::array<float, 16> a{-1e30f, 1e30f, -1e-30f, 1e-30f, 0.0f, -0.0f,
                          100.f, -100.f, 1.f, -1.f, 2.f, -2.f,
                          3.f, -3.f, 4.f, -4.f};
  const auto sorted = to_array(apps::bitonic::sort16(make_block(a)));
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_EQ(sorted[0], -1e30f);
  EXPECT_EQ(sorted[15], 1e30f);
}

TEST(Bitonic, GraphStructure) {
  static_assert(apps::bitonic::graph.counts.kernels == 1);
  static_assert(apps::bitonic::graph.counts.inputs == 1);
  static_assert(apps::bitonic::graph.counts.outputs == 1);
  const cgsim::GraphView g = apps::bitonic::graph.view();
  EXPECT_EQ(g.kernels[0].name, "bitonic_sort16");
  EXPECT_EQ(g.kernels[0].realm, cgsim::Realm::aie);
  // 64-byte stream elements, matching the Table 1 block size.
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.inputs[0].edge)]
                .vtable()
                .elem_size,
            64u);
}

TEST(Bitonic, GraphSortsStreams) {
  std::mt19937 rng{17};
  std::uniform_real_distribution<float> d{-100, 100};
  std::vector<Block> in(50);
  for (auto& b : in) {
    for (unsigned i = 0; i < 16; ++i) b.set(i, d(rng));
  }
  std::vector<Block> out;
  apps::bitonic::graph(in, out);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t k = 0; k < in.size(); ++k) {
    const auto want = apps::bitonic::reference_sort(to_array(in[k]));
    EXPECT_EQ(to_array(out[k]), want) << "block " << k;
  }
}

// Property sweep over random seeds: the network equals std::sort.
class BitonicProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitonicProperty, MatchesStdSort) {
  std::mt19937 rng{GetParam()};
  std::uniform_real_distribution<float> d{-1000, 1000};
  std::array<float, 16> a{};
  for (auto& v : a) v = d(rng);
  const auto got = to_array(apps::bitonic::sort16(make_block(a)));
  EXPECT_EQ(got, apps::bitonic::reference_sort(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitonicProperty, ::testing::Range(0u, 25u));

}  // namespace

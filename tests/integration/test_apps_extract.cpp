// Integration: extract the real ported AMD example graphs from their actual
// source headers (the full paper Figure 5 flow over paper Section 5's
// applications).
#include <gtest/gtest.h>

#include <fstream>

#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/iir.hpp"
#include "extractor/extractor.hpp"

namespace {

cgx::ExtractReport extract_app(const cgsim::GraphView& view,
                               const std::string& name,
                               const std::string& header) {
  const std::string path = std::string{CGSIM_SOURCE_DIR} + "/apps/" + header;
  cgx::GraphDesc desc = cgx::GraphDesc::from_view(view, name, path);
  cgx::ExtractOptions opts;
  opts.write_files = false;
  return cgx::extract_graph(desc, cgx::SourceFile::load(path), opts);
}

TEST(AppsExtract, Bitonic) {
  const auto rep =
      extract_app(apps::bitonic::graph.view(), "bitonic", "bitonic.hpp");
  EXPECT_TRUE(rep.project.warnings.empty()) << rep.project.warnings[0];
  EXPECT_EQ(rep.aie_kernels, 1);
  EXPECT_EQ(rep.global_edges, 2);
  ASSERT_TRUE(rep.project.files.contains("bitonic_sort16.cc"));
  const std::string& src = rep.project.files.at("bitonic_sort16.cc");
  EXPECT_EQ(src.find("co_await"), std::string::npos);
  EXPECT_NE(src.find("sort16"), std::string::npos);
  // The sorting helper and its stage tables are co-extracted.
  const std::string& decls = rep.project.files.at("kernel_decls.hpp");
  EXPECT_NE(decls.find("stage_take_min"), std::string::npos);
  // The AIE emulation include is rewritten to the hardware AIE API header.
  EXPECT_NE(decls.find("#include <aie_api/aie.hpp>"), std::string::npos);
}

TEST(AppsExtract, Farrow) {
  const auto rep =
      extract_app(apps::farrow::graph.view(), "farrow", "farrow.hpp");
  EXPECT_TRUE(rep.project.warnings.empty()) << rep.project.warnings[0];
  EXPECT_EQ(rep.aie_kernels, 2);
  ASSERT_TRUE(rep.project.files.contains("farrow_branches.cc"));
  ASSERT_TRUE(rep.project.files.contains("farrow_combine.cc"));
  const std::string& g = rep.project.files.at("graph.hpp");
  // Two kernels and a window connection between them.
  EXPECT_NE(g.find("adf::kernel k0"), std::string::npos);
  EXPECT_NE(g.find("adf::kernel k1"), std::string::npos);
  EXPECT_NE(g.find("adf::connect<adf::window<"), std::string::npos);
  // PLIO names from the graph attributes.
  EXPECT_NE(g.find("\"DataIn0\""), std::string::npos);
  EXPECT_NE(g.find("\"DelayIn0\""), std::string::npos);
}

TEST(AppsExtract, IirHasRtpParameter) {
  const auto rep = extract_app(apps::iir::graph.view(), "iir", "iir.hpp");
  EXPECT_TRUE(rep.project.warnings.empty()) << rep.project.warnings[0];
  const std::string& g = rep.project.files.at("graph.hpp");
  EXPECT_NE(g.find("adf::connect<adf::parameter>"), std::string::npos);
  EXPECT_NE(g.find("runtime parameter"), std::string::npos);
  const std::string& decls = rep.project.files.at("kernel_decls.hpp");
  // Window thunks for the data path, scalar for the RTP.
  EXPECT_NE(decls.find("input_window<"), std::string::npos);
  EXPECT_NE(decls.find("float native_1"), std::string::npos) << decls;
}

TEST(AppsExtract, Bilinear) {
  const auto rep = extract_app(apps::bilinear::graph.view(), "bilinear",
                               "bilinear.hpp");
  EXPECT_TRUE(rep.project.warnings.empty()) << rep.project.warnings[0];
  const std::string& src = rep.project.files.at("bilinear_kernel.cc");
  EXPECT_NE(src.find("interpolate"), std::string::npos);
  EXPECT_EQ(src.find("co_await"), std::string::npos);
  // Struct stream types are spelled through into the thunk signature.
  const std::string& decls = rep.project.files.at("kernel_decls.hpp");
  EXPECT_NE(decls.find("input_stream<apps::bilinear::Packet>"),
            std::string::npos)
      << decls;
}

TEST(AppsExtract, WriteToDisk) {
  const std::string out =
      std::string{CGSIM_BINARY_DIR} + "/extract_test_out";
  const std::string path =
      std::string{CGSIM_SOURCE_DIR} + "/apps/bitonic.hpp";
  cgx::GraphDesc desc =
      cgx::GraphDesc::from_view(apps::bitonic::graph.view(), "bitonic", path);
  cgx::ExtractOptions opts;
  opts.out_dir = out;
  opts.write_files = true;
  const auto rep =
      cgx::extract_graph(desc, cgx::SourceFile::load(path), opts);
  EXPECT_EQ(rep.out_dir, out + "/bitonic");
  std::ifstream f{rep.out_dir + "/graph.hpp"};
  EXPECT_TRUE(f.good());
}

}  // namespace

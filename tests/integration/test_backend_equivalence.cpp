// Cross-backend integration: every execution strategy (cooperative,
// thread-per-kernel, cycle-approximate) must produce identical data for
// all four ported AMD examples (paper Section 5.1 functional correctness).
#include <gtest/gtest.h>

#include <random>

#include "aiesim/engine.hpp"
#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/iir.hpp"
#include "x86sim/x86sim.hpp"

namespace {

TEST(BackendEquivalence, Bitonic) {
  std::mt19937 rng{71};
  std::uniform_real_distribution<float> d{-100, 100};
  std::vector<apps::bitonic::Block> in(64);
  for (auto& b : in) {
    for (unsigned i = 0; i < 16; ++i) b.set(i, d(rng));
  }
  std::vector<apps::bitonic::Block> coop, threaded, sim;
  apps::bitonic::graph(in, coop);
  x86sim::simulate(apps::bitonic::graph.view(), 1, in, threaded);
  aiesim::simulate(apps::bitonic::graph.view(), aiesim::SimConfig{}, in, sim);
  EXPECT_EQ(coop, threaded);
  EXPECT_EQ(coop, sim);
}

TEST(BackendEquivalence, Bilinear) {
  std::mt19937 rng{73};
  std::uniform_real_distribution<float> pix{0, 255};
  std::uniform_real_distribution<float> frac{0, 1};
  std::vector<apps::bilinear::Packet> in(48);
  for (auto& p : in) {
    for (unsigned i = 0; i < apps::bilinear::kLanes; ++i) {
      p.p00.set(i, pix(rng));
      p.p01.set(i, pix(rng));
      p.p10.set(i, pix(rng));
      p.p11.set(i, pix(rng));
      p.fx.set(i, frac(rng));
      p.fy.set(i, frac(rng));
    }
  }
  std::vector<apps::bilinear::V> coop, threaded, sim;
  apps::bilinear::graph(in, coop);
  x86sim::simulate(apps::bilinear::graph.view(), 1, in, threaded);
  aiesim::simulate(apps::bilinear::graph.view(), aiesim::SimConfig{}, in,
                   sim);
  EXPECT_EQ(coop, threaded);
  EXPECT_EQ(coop, sim);
}

TEST(BackendEquivalence, IirWithRtp) {
  std::mt19937 rng{79};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<apps::iir::Block> in(2);
  for (auto& b : in) {
    for (auto& s : b.samples) s = d(rng);
  }
  std::vector<apps::iir::Block> coop, threaded, sim;
  apps::iir::graph(in, 2.0f, coop);
  x86sim::simulate(apps::iir::graph.view(), 1, in, 2.0f, threaded);
  aiesim::simulate(apps::iir::graph.view(), aiesim::SimConfig{}, in, 2.0f,
                   sim);
  EXPECT_EQ(coop, threaded);
  EXPECT_EQ(coop, sim);
}

TEST(BackendEquivalence, FarrowTwoKernels) {
  std::mt19937 rng{83};
  std::uniform_int_distribution<int> dx{-20000, 20000};
  std::uniform_int_distribution<int> dmu{0, (1 << 14) - 1};
  std::vector<apps::farrow::SampleBlock> in(2);
  std::vector<apps::farrow::MuBlock> mu(2);
  for (int b = 0; b < 2; ++b) {
    for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
      in[static_cast<std::size_t>(b)].s[i] =
          static_cast<std::int16_t>(dx(rng));
      mu[static_cast<std::size_t>(b)].mu[i] =
          static_cast<std::int16_t>(dmu(rng));
    }
  }
  std::vector<apps::farrow::SampleBlock> coop, threaded, sim;
  apps::farrow::graph(in, mu, coop);
  x86sim::simulate(apps::farrow::graph.view(), 1, in, mu, threaded);
  aiesim::simulate(apps::farrow::graph.view(), aiesim::SimConfig{}, in, mu,
                   sim);
  EXPECT_EQ(coop, threaded);
  EXPECT_EQ(coop, sim);
}

// The bulk-enabled kernels batch 64 packets (bilinear) / 2 windows (iir,
// farrow) per suspension; stream lengths that are larger than, and not a
// multiple of, the batch exercise the partial-transfer-at-close path on
// every backend.

TEST(BackendEquivalence, BilinearManyPacketsPartialBatch) {
  std::mt19937 rng{89};
  std::uniform_real_distribution<float> pix{0, 255};
  std::uniform_real_distribution<float> frac{0, 1};
  std::vector<apps::bilinear::Packet> in(200);  // 3 full batches + 8
  for (auto& p : in) {
    for (unsigned i = 0; i < apps::bilinear::kLanes; ++i) {
      p.p00.set(i, pix(rng));
      p.p01.set(i, pix(rng));
      p.p10.set(i, pix(rng));
      p.p11.set(i, pix(rng));
      p.fx.set(i, frac(rng));
      p.fy.set(i, frac(rng));
    }
  }
  std::vector<apps::bilinear::V> coop, threaded, sim;
  apps::bilinear::graph(in, coop);
  x86sim::simulate(apps::bilinear::graph.view(), 1, in, threaded);
  aiesim::simulate(apps::bilinear::graph.view(), aiesim::SimConfig{}, in,
                   sim);
  EXPECT_EQ(coop.size(), in.size());
  EXPECT_EQ(coop, threaded);
  EXPECT_EQ(coop, sim);
}

TEST(BackendEquivalence, IirOddBlockCount) {
  std::mt19937 rng{97};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<apps::iir::Block> in(5);  // 2 window pairs + a partial batch
  for (auto& b : in) {
    for (auto& s : b.samples) s = d(rng);
  }
  std::vector<apps::iir::Block> coop, threaded, sim;
  apps::iir::graph(in, 2.0f, coop);
  x86sim::simulate(apps::iir::graph.view(), 1, in, 2.0f, threaded);
  aiesim::simulate(apps::iir::graph.view(), aiesim::SimConfig{}, in, 2.0f,
                   sim);
  EXPECT_EQ(coop.size(), in.size());
  EXPECT_EQ(coop, threaded);
  EXPECT_EQ(coop, sim);
}

TEST(BackendEquivalence, FarrowOddBlockCount) {
  std::mt19937 rng{101};
  std::uniform_int_distribution<int> dx{-20000, 20000};
  std::uniform_int_distribution<int> dmu{0, (1 << 14) - 1};
  constexpr int kBlocks = 5;
  std::vector<apps::farrow::SampleBlock> in(kBlocks);
  std::vector<apps::farrow::MuBlock> mu(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
      in[static_cast<std::size_t>(b)].s[i] =
          static_cast<std::int16_t>(dx(rng));
      mu[static_cast<std::size_t>(b)].mu[i] =
          static_cast<std::int16_t>(dmu(rng));
    }
  }
  std::vector<apps::farrow::SampleBlock> coop, threaded, sim;
  apps::farrow::graph(in, mu, coop);
  x86sim::simulate(apps::farrow::graph.view(), 1, in, mu, threaded);
  aiesim::simulate(apps::farrow::graph.view(), aiesim::SimConfig{}, in, mu,
                   sim);
  EXPECT_EQ(coop.size(), in.size());
  EXPECT_EQ(coop, threaded);
  EXPECT_EQ(coop, sim);
}

TEST(BackendEquivalence, RepetitionsAgreeAcrossBackends) {
  std::vector<apps::bitonic::Block> in(4);
  for (unsigned i = 0; i < 16; ++i) in[0].set(i, static_cast<float>(16 - i));
  std::vector<apps::bitonic::Block> coop, threaded;
  apps::bitonic::graph.run(
      cgsim::RunOptions{.mode = cgsim::ExecMode::coop, .repetitions = 5}, in,
      coop);
  x86sim::simulate(apps::bitonic::graph.view(), 5, in, threaded);
  EXPECT_EQ(coop.size(), 20u);
  EXPECT_EQ(coop, threaded);
}

}  // namespace

// Extended round-trip integration: host-compile generated code for the
// harder extraction shapes -- a template kernel with two instantiations
// plus a window-I/O kernel (AIE realm), and an HLS-realm kernel against an
// hls::stream shim. Like test_roundtrip.cpp, this proves the generated
// C++ is well-formed and functionally equivalent to the prototype.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/cgsim.hpp"
#include "extractor/extractor.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL_TEMPLATE(aie, rte_cast, T,
                        KernelReadPort<T> in,
                        KernelWritePort<float> out) {
  while (true) {
    co_await out.put(static_cast<float>(co_await in.get()) * 2.0f);
  }
}

COMPUTE_KERNEL(hls, rte_offset,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) {
    co_await out.put(co_await in.get() + 0.5f);
  }
}

constexpr auto rte_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<float> mid, z;
  rte_cast<int>(a, mid);
  rte_offset(mid, z);
  return std::make_tuple(z);
}>;

const char* kProto = R"cpp(
#include "core/cgsim.hpp"

COMPUTE_KERNEL_TEMPLATE(aie, rte_cast, T,
                        cgsim::KernelReadPort<T> in,
                        cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(static_cast<float>(co_await in.get()) * 2.0f);
  }
}

COMPUTE_KERNEL(hls, rte_offset,
               cgsim::KernelReadPort<float> in,
               cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(co_await in.get() + 0.5f);
  }
}
)cpp";

// Shim for <adf.h> (stream subset; see test_roundtrip.cpp for the full
// version with windows).
const char* kAdfShim = R"cpp(
#pragma once
#include <cstddef>
#include <vector>
struct end_of_stream {};
template <class T>
struct input_stream { const T* data; std::size_t n; std::size_t i = 0; };
template <class T>
T readincr(input_stream<T>* s) {
  if (s->i >= s->n) throw end_of_stream{};
  return s->data[s->i++];
}
template <class T>
struct output_stream { std::vector<T>* out; };
template <class T>
void writeincr(output_stream<T>* s, const T& v) { s->out->push_back(v); }
template <class T>
struct input_window { const T* data; std::size_t n; std::size_t i = 0; };
template <class T>
void window_readincr(input_window<T>* w, T& v) {
  if (w->i >= w->n) throw end_of_stream{};
  v = w->data[w->i++];
}
template <class T>
struct output_window { std::vector<T>* out; };
template <class T>
void window_writeincr(output_window<T>* w, const T& v) {
  w->out->push_back(v);
}
)cpp";

// Shim for <hls_stream.h>.
const char* kHlsShim = R"cpp(
#pragma once
#include <deque>
namespace hls {
template <class T>
class stream {
 public:
  T read() {
    T v = q_.front();
    q_.pop_front();
    return v;
  }
  void write(const T& v) { q_.push_back(v); }
  bool empty() const { return q_.empty(); }
 private:
  std::deque<T> q_;
};
}  // namespace hls
)cpp";

const char* kAieHarness = R"cpp(
#include <cstdio>
#include <vector>
#include "kernel_decls.hpp"
int main() {
  std::vector<int> in{1, 2, 3};
  std::vector<float> out;
  input_stream<int> s_in{in.data(), in.size()};
  output_stream<float> s_out{&out};
  try {
    rte_cast_int_aie(&s_in, &s_out);
  } catch (const end_of_stream&) {
  }
  if (out.size() != 3) return 1;
  for (std::size_t i = 0; i < 3; ++i) {
    if (out[i] != 2.0f * static_cast<float>(in[i])) return 2;
  }
  return 0;
}
)cpp";

TEST(RoundtripExt, TemplateKernelCompilesAndRuns) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path{CGSIM_BINARY_DIR} / "roundtrip_ext";
  fs::create_directories(dir);
  {
    std::ofstream f{dir / "proto.cpp"};
    f << kProto;
  }
  cgx::GraphDesc desc = cgx::GraphDesc::from_view(
      rte_graph.view(), "rte_graph", (dir / "proto.cpp").string());
  cgx::ExtractOptions opts;
  opts.out_dir = dir.string();
  const auto rep = cgx::extract_graph(
      desc, cgx::SourceFile::load((dir / "proto.cpp").string()), opts);
  ASSERT_TRUE(rep.project.warnings.empty())
      << rep.project.warnings.front();
  const fs::path proj = dir / "rte_graph";
  ASSERT_TRUE(fs::exists(proj / "rte_cast.cc"));

  {
    std::ofstream f{proj / "adf.h"};
    f << kAdfShim;
  }
  {
    std::ofstream f{proj / "harness.cpp"};
    f << kAieHarness;
  }
  const std::string cmd = "g++ -std=c++20 -I " + proj.string() + " " +
                          (proj / "harness.cpp").string() + " " +
                          (proj / "rte_cast.cc").string() + " -o " +
                          (proj / "rt").string() + " 2> " +
                          (proj / "compile.log").string();
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream log{proj / "compile.log"};
    std::string all{std::istreambuf_iterator<char>{log}, {}};
    FAIL() << "template-kernel codegen failed to compile:\n" << all;
  }
  EXPECT_EQ(std::system((proj / "rt").string().c_str()), 0);
}

TEST(RoundtripExt, HlsProjectCompiles) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path{CGSIM_BINARY_DIR} / "roundtrip_ext";
  const fs::path proj = dir / "rte_graph";
  ASSERT_TRUE(fs::exists(proj / "hls" / "rte_offset_hls.cpp"))
      << "run TemplateKernelCompilesAndRuns first (same fixture dir)";
  {
    std::ofstream f{proj / "hls" / "hls_stream.h"};
    f << kHlsShim;
  }
  // Compile-only check for the HLS sources (the dataflow wrapper's
  // while(true) kernels need an HLS scheduler to terminate, so running is
  // out of scope for a host shim).
  const std::string cmd =
      "g++ -std=c++20 -fsyntax-only -I " + (proj / "hls").string() + " " +
      (proj / "hls" / "rte_offset_hls.cpp").string() + " " +
      (proj / "hls" / "rte_graph_dataflow.cpp").string() + " 2> " +
      (proj / "hls" / "compile.log").string();
  if (std::system(cmd.c_str()) != 0) {
    std::ifstream log{proj / "hls" / "compile.log"};
    std::string all{std::istreambuf_iterator<char>{log}, {}};
    FAIL() << "HLS codegen failed to compile:\n" << all;
  }
}

}  // namespace

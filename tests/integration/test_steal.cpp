// Work-stealing shard execution (RunOptions{.steal = true}): bit-identical
// outputs against single-threaded coop and pinned-shard coop_mt across
// worker/shard-count combinations, repeated-run determinism, randomized
// DAG fuzzing, and the per-worker load accounting invariants.
//
// The soundness claim under test: shard-granularity stealing migrates a
// whole shard (its executor queue, inbox and channels) between workers,
// and the kernels are deterministic Kahn processes -- so the outputs must
// be byte-identical no matter which worker ran which shard when.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "apps/bitonic.hpp"
#include "apps/gemm.hpp"
#include "apps/iir.hpp"
#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"

namespace {

using namespace cgsim;

RunOptions steal_opts(int workers, int shards = 0) {
  return RunOptions{.mode = ExecMode::coop_mt, .repetitions = 1,
                    .workers = workers, .steal = true, .shards = shards};
}

std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <class T>
std::uint64_t digest(const std::vector<T>& v) {
  return fnv1a_bytes(v.data(), v.size() * sizeof(T));
}

// --- kernels / graphs ------------------------------------------------------

COMPUTE_KERNEL(aie, st_double,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() * 2);
}

COMPUTE_KERNEL(aie, st_add_one,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

constexpr auto st_chain = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b, c;
  st_double(a, b);
  st_add_one(b, c);
  return std::make_tuple(c);
}>;

constexpr auto st_wide = make_compute_graph_v<[](
    IoConnector<int> a, IoConnector<int> b, IoConnector<int> c,
    IoConnector<int> d) {
  IoConnector<int> a1, b1, c1, d1;
  st_double(a, a1);
  st_double(b, b1);
  st_double(c, c1);
  st_double(d, d1);
  return std::make_tuple(a1, b1, c1, d1);
}>;

// --- equivalence: steal on/off x workers x shard counts --------------------

TEST(Steal, ChainMatchesCoopAcrossWorkerAndShardCounts) {
  std::vector<int> in(800);
  for (int i = 0; i < 800; ++i) in[static_cast<std::size_t>(i)] = i - 400;
  std::vector<int> reference;
  st_chain(in, reference);
  for (const int workers : {1, 2, 4}) {
    for (const int shards : {0, 4 * workers}) {
      std::vector<int> out;
      const RunResult r = st_chain.run(steal_opts(workers, shards), in, out);
      EXPECT_FALSE(r.deadlocked) << workers << "w/" << shards << "s";
      EXPECT_EQ(out, reference) << workers << "w/" << shards << "s";
    }
  }
}

TEST(Steal, WideGraphMatchesPinnedShardExecution) {
  std::vector<int> a(300, 1), b(300, 2), c(300, 3), d(300, 4);
  std::vector<int> pa, pb, pc, pd;  // pinned (steal off)
  st_wide.run(RunOptions{.mode = ExecMode::coop_mt, .repetitions = 1,
                         .workers = 4},
              a, b, c, d, pa, pb, pc, pd);
  for (const int workers : {1, 2, 4}) {
    std::vector<int> sa, sb, sc, sd;
    const RunResult r =
        st_wide.run(steal_opts(workers), a, b, c, d, sa, sb, sc, sd);
    EXPECT_FALSE(r.deadlocked);
    // Over-partitioning is clamped to the kernel count.
    EXPECT_GE(r.shards_used, workers == 1 ? 1 : 2);
    EXPECT_EQ(sa, pa);
    EXPECT_EQ(sb, pb);
    EXPECT_EQ(sc, pc);
    EXPECT_EQ(sd, pd);
  }
}

TEST(Steal, AppsMatchCoopIncludingRtp) {
  std::mt19937 rng{131};
  std::uniform_real_distribution<float> d{-100, 100};
  std::vector<apps::bitonic::Block> bin(48);
  for (auto& blk : bin) {
    for (unsigned i = 0; i < 16; ++i) blk.set(i, d(rng));
  }
  std::vector<apps::bitonic::Block> bref, bsteal;
  apps::bitonic::graph(bin, bref);
  apps::bitonic::graph.run(steal_opts(4), bin, bsteal);
  EXPECT_EQ(bref, bsteal);

  std::uniform_real_distribution<float> g{-5, 5};
  std::vector<apps::gemm::TilePair> h0(4), h1(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (auto& v : h0[i].a.m) v = g(rng);
    for (auto& v : h0[i].b.m) v = g(rng);
    for (auto& v : h1[i].a.m) v = g(rng);
    for (auto& v : h1[i].b.m) v = g(rng);
  }
  std::vector<apps::gemm::Tile> gref, gsteal;
  apps::gemm::graph(h0, h1, gref);
  apps::gemm::graph.run(steal_opts(2), h0, h1, gsteal);
  EXPECT_EQ(gref, gsteal);

  // RTP-bearing app: the runtime-parameter ring must survive shard
  // migration between workers.
  std::uniform_real_distribution<float> s{-1, 1};
  std::vector<apps::iir::Block> iin(5);
  for (auto& blk : iin) {
    for (auto& v : blk.samples) v = s(rng);
  }
  std::vector<apps::iir::Block> iref, isteal;
  apps::iir::graph(iin, 2.0f, iref);
  apps::iir::graph.run(steal_opts(4), iin, 2.0f, isteal);
  EXPECT_EQ(iref, isteal);
}

// --- determinism -----------------------------------------------------------

TEST(Steal, RepeatedRunsAreDeterministic) {
  std::vector<int> in(600);
  for (int i = 0; i < 600; ++i) in[static_cast<std::size_t>(i)] = i * 7;
  std::vector<int> reference;
  st_chain(in, reference);
  const std::uint64_t ref_digest = digest(reference);
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<int> out;
    const RunResult r = st_chain.run(steal_opts(3), in, out);
    ASSERT_FALSE(r.deadlocked);
    ASSERT_EQ(digest(out), ref_digest) << "run " << rep << " diverged";
  }
}

// --- randomized-graph fuzz -------------------------------------------------

COMPUTE_KERNEL(aie, st_dyn_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, st_dyn_add,
               KernelReadPort<int> a,
               KernelReadPort<int> b,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

COMPUTE_KERNEL(aie, st_dyn_split,
               KernelReadPort<int> in,
               KernelWritePort<int> lo,
               KernelWritePort<int> hi) {
  while (true) {
    const int v = co_await in.get();
    co_await lo.put(v - 1);
    co_await hi.put(v + 1);
  }
}

/// Random DAG over open edges: every kernel consumes previously produced
/// edges and opens new ones, so the construction order is a topological
/// order and the graph is acyclic by construction.
void build_random_dag(rt::DynamicGraphBuilder& b, std::mt19937& rng,
                      int n_inputs, int n_kernels) {
  std::vector<int> open;
  for (int i = 0; i < n_inputs; ++i) {
    const int e = b.add_edge<int>();
    b.add_input(e);
    open.push_back(e);
  }
  std::uniform_int_distribution<int> op{0, 2};
  for (int k = 0; k < n_kernels; ++k) {
    std::shuffle(open.begin(), open.end(), rng);
    switch (open.size() >= 2 ? op(rng) : 0) {
      case 0: {  // inc: 1 -> 1
        const int o = b.add_edge<int>();
        b.add_kernel(st_dyn_inc, {open.back(), o});
        open.back() = o;
        break;
      }
      case 1: {  // add: 2 -> 1 (narrows the frontier)
        const int o = b.add_edge<int>();
        const int x = open.back();
        open.pop_back();
        b.add_kernel(st_dyn_add, {x, open.back(), o});
        open.back() = o;
        break;
      }
      default: {  // split: 1 -> 2 (widens the frontier)
        const int lo = b.add_edge<int>();
        const int hi = b.add_edge<int>();
        b.add_kernel(st_dyn_split, {open.back(), lo, hi});
        open.back() = lo;
        open.push_back(hi);
        break;
      }
    }
  }
  std::sort(open.begin(), open.end());  // canonical output order
  for (const int e : open) b.add_output(e);
}

TEST(Steal, RandomizedDagsMatchCoop) {
  for (const unsigned seed : {11u, 23u, 37u, 41u, 59u, 67u, 83u, 97u, 109u,
                              127u}) {
    std::mt19937 rng{seed};
    rt::DynamicGraphBuilder b;
    std::uniform_int_distribution<int> ni{2, 4}, nk{6, 18};
    build_random_dag(b, rng, ni(rng), nk(rng));
    const GraphView view = b.view();

    // All global inputs/outputs are int streams; drive them generically.
    std::vector<std::vector<int>> ins(view.inputs.size());
    for (std::size_t i = 0; i < ins.size(); ++i) {
      ins[i].resize(64);
      for (int j = 0; j < 64; ++j) {
        ins[i][static_cast<std::size_t>(j)] =
            static_cast<int>(i) * 1000 + j - 32;
      }
    }
    const auto run_mode = [&](const RunOptions& o) {
      std::vector<std::vector<int>> outs(view.outputs.size());
      RuntimeContext ctx{view, o.mode, nullptr, nullptr, o.workers, o.steal,
                         o.shards};
      for (std::size_t i = 0; i < ins.size(); ++i) {
        ctx.add_stream_source<int>(i, std::span<const int>{ins[i]});
      }
      for (std::size_t i = 0; i < outs.size(); ++i) {
        ctx.add_stream_sink<int>(i, outs[i]);
      }
      const RunResult r =
          o.mode == ExecMode::coop ? ctx.run_coop() : ctx.run_coop_mt();
      EXPECT_FALSE(r.deadlocked) << "seed " << seed;
      return outs;
    };

    const auto reference = run_mode(RunOptions{.mode = ExecMode::coop});
    for (const int workers : {2, 4}) {
      const auto stolen = run_mode(steal_opts(workers));
      ASSERT_EQ(stolen, reference)
          << "seed " << seed << ", " << workers << " workers";
    }
  }
}

// --- accounting invariants -------------------------------------------------

TEST(Steal, WorkerLoadsSumToTotalResumes) {
  std::vector<int> a(200, 1), b(200, 2), c(200, 3), d(200, 4);
  std::vector<int> oa, ob, oc, od;
  const RunResult r =
      st_wide.run(steal_opts(4), a, b, c, d, oa, ob, oc, od);
  ASSERT_FALSE(r.deadlocked);
  ASSERT_FALSE(r.worker_loads.empty());
  std::uint64_t sum = 0, attempts = 0;
  for (const WorkerLoad& w : r.worker_loads) {
    sum += w.resumes;
    attempts += w.steal_attempts;
    EXPECT_GE(w.steal_attempts, w.steals);
  }
  EXPECT_EQ(sum, r.resumes);
  EXPECT_GE(attempts, r.steals);
}

TEST(Steal, PinnedModeReportsZeroSteals) {
  std::vector<int> in(100);
  for (int i = 0; i < 100; ++i) in[static_cast<std::size_t>(i)] = i;
  std::vector<int> out;
  const RunResult r = st_chain.run(
      RunOptions{.mode = ExecMode::coop_mt, .repetitions = 1, .workers = 2},
      in, out);
  EXPECT_EQ(r.steals, 0u);
  std::uint64_t sum = 0;
  for (const WorkerLoad& w : r.worker_loads) sum += w.resumes;
  EXPECT_EQ(sum, r.resumes);
}

TEST(Steal, ShardOverrideControlsPartitionCount) {
  std::vector<int> a(50, 1), b(50, 2), c(50, 3), d(50, 4);
  std::vector<int> oa, ob, oc, od;
  // 2 workers, explicit 4 shards: more shards than workers is the whole
  // point of stealing.
  const RunResult r =
      st_wide.run(steal_opts(2, 4), a, b, c, d, oa, ob, oc, od);
  ASSERT_FALSE(r.deadlocked);
  EXPECT_EQ(r.shards_used, 4);
  EXPECT_EQ(r.worker_loads.size(), 2u);
  EXPECT_EQ(oa, std::vector<int>(50, 2));
}

}  // namespace

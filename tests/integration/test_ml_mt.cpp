// Digest-identity tests for the ML workload graphs under the sharded
// execution backends: for ml_gemm (10-kernel double cascade), conv2d
// (4-kernel cascade) and softmax (3-kernel pipeline), the single-threaded
// coop run, pinned-shard coop_mt and work-stealing coop_mt at 1/2/4
// workers must all produce byte-identical outputs. The ML kernels are
// exact integer pipelines, so any divergence is a scheduling bug, not a
// rounding artifact.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <random>
#include <vector>

#include "apps/conv2d.hpp"
#include "apps/ml_gemm.hpp"
#include "apps/softmax.hpp"
#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

RunOptions mt_opts(int workers) {
  return RunOptions{.mode = ExecMode::coop_mt, .repetitions = 1,
                    .workers = workers};
}

RunOptions steal_opts(int workers) {
  return RunOptions{.mode = ExecMode::coop_mt, .repetitions = 1,
                    .workers = workers, .steal = true};
}

std::uint64_t fnv1a_bytes(const void* data, std::size_t n,
                          std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <class T>
std::uint64_t digest(const std::vector<T>& v) {
  return fnv1a_bytes(v.data(), v.size() * sizeof(T));
}

constexpr std::array<int, 3> kWorkerCounts{1, 2, 4};

// ---------------------------------------------------------------------------

TEST(MlMt, MlGemmDigestIdenticalAcrossModes) {
  std::mt19937 rng(211);
  constexpr unsigned kPairs = 4;
  std::array<std::vector<apps::ml_gemm::TilePair8>, 8> feeds;
  for (auto& f : feeds) {
    for (unsigned i = 0; i < kPairs; ++i) {
      apps::ml_gemm::TilePair8 p;
      for (auto& v : p.a.m) v = static_cast<std::int8_t>(rng());
      for (auto& v : p.b.m) v = static_cast<std::int8_t>(rng());
      f.push_back(p);
    }
  }
  std::vector<apps::ml_gemm::Tile8> ref0, ref1;
  apps::ml_gemm::graph(feeds[0], feeds[1], feeds[2], feeds[3], feeds[4],
                       feeds[5], feeds[6], feeds[7], 6, 6, ref0, ref1);
  const auto d0 = digest(ref0);
  const auto d1 = digest(ref1);
  for (const int w : kWorkerCounts) {
    for (const bool steal : {false, true}) {
      std::vector<apps::ml_gemm::Tile8> out0, out1;
      apps::ml_gemm::graph.run(steal ? steal_opts(w) : mt_opts(w), feeds[0],
                               feeds[1], feeds[2], feeds[3], feeds[4],
                               feeds[5], feeds[6], feeds[7], 6, 6, out0,
                               out1);
      EXPECT_EQ(digest(out0), d0) << "workers=" << w << " steal=" << steal;
      EXPECT_EQ(digest(out1), d1) << "workers=" << w << " steal=" << steal;
    }
  }
}

TEST(MlMt, Conv2dDigestIdenticalAcrossModes) {
  std::mt19937 rng(223);
  constexpr std::size_t kH = 10;
  std::array<std::vector<apps::conv2d::Row>, apps::conv2d::kChannels> img;
  std::array<apps::conv2d::Weights, apps::conv2d::kChannels> w;
  for (auto& ch : img) {
    for (std::size_t y = 0; y < kH; ++y) {
      apps::conv2d::Row r;
      for (auto& v : r.px) v = static_cast<std::int8_t>(rng());
      ch.push_back(r);
    }
  }
  for (auto& cw : w) {
    for (unsigned i = 0; i < 9; ++i) cw.w[i] = static_cast<std::int8_t>(rng());
  }
  std::vector<apps::conv2d::Row> ref;
  apps::conv2d::graph(img[0], img[1], img[2], img[3], w[0], w[1], w[2], w[3],
                      ref);
  const auto d = digest(ref);
  ASSERT_EQ(ref.size(), kH - 2);
  for (const int workers : kWorkerCounts) {
    for (const bool steal : {false, true}) {
      std::vector<apps::conv2d::Row> out;
      apps::conv2d::graph.run(steal ? steal_opts(workers) : mt_opts(workers),
                              img[0], img[1], img[2], img[3], w[0], w[1],
                              w[2], w[3], out);
      EXPECT_EQ(digest(out), d)
          << "workers=" << workers << " steal=" << steal;
    }
  }
}

TEST(MlMt, SoftmaxDigestIdenticalAcrossModes) {
  std::mt19937 rng(227);
  std::vector<apps::softmax::Block> in(16);
  for (auto& b : in) {
    for (auto& v : b.x) v = static_cast<std::int8_t>(rng());
  }
  std::vector<apps::softmax::Block> ref;
  apps::softmax::graph(in, ref);
  const auto d = digest(ref);
  for (const int workers : kWorkerCounts) {
    for (const bool steal : {false, true}) {
      std::vector<apps::softmax::Block> out;
      apps::softmax::graph.run(steal ? steal_opts(workers) : mt_opts(workers),
                               in, out);
      EXPECT_EQ(digest(out), d)
          << "workers=" << workers << " steal=" << steal;
    }
  }
}

// Repeated-run determinism under stealing: the raciest mode must stay
// fixed-point over many runs.
TEST(MlMt, SoftmaxStealRepeatedRunsDeterministic) {
  std::mt19937 rng(229);
  std::vector<apps::softmax::Block> in(24);
  for (auto& b : in) {
    for (auto& v : b.x) v = static_cast<std::int8_t>(rng());
  }
  std::vector<apps::softmax::Block> ref;
  apps::softmax::graph(in, ref);
  const auto d = digest(ref);
  for (unsigned rep = 0; rep < 8; ++rep) {
    std::vector<apps::softmax::Block> out;
    apps::softmax::graph.run(steal_opts(4), in, out);
    ASSERT_EQ(digest(out), d) << "rep " << rep;
  }
}

}  // namespace

// Round-trip integration: extract a graph, then actually COMPILE the
// generated kernel source (against a host-side shim of the AIE streaming
// interfaces) and check that the extracted kernel computes the same data
// as the cgsim prototype. This validates the whole paper Figure 5 flow:
// without Vitis hardware we cannot run aiecompiler, but the generated
// C++ must be well-formed and semantically equivalent.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/cgsim.hpp"
#include "extractor/extractor.hpp"

namespace {

using namespace cgsim;

constexpr float kRoundtripScale = 3.0f;

COMPUTE_KERNEL(aie, rtk_scale,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) {
    co_await out.put(kRoundtripScale * co_await in.get());
  }
}

constexpr auto rtk_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> b;
  rtk_scale(a, b);
  return std::make_tuple(b);
}>;

// The prototype source as the extractor sees it.
const char* kProto = R"cpp(
#include "core/cgsim.hpp"

constexpr float kRoundtripScale = 3.0f;

COMPUTE_KERNEL(aie, rtk_scale,
               cgsim::KernelReadPort<float> in,
               cgsim::KernelWritePort<float> out) {
  while (true) {
    co_await out.put(kRoundtripScale * co_await in.get());
  }
}
)cpp";

// Host-side stand-in for <adf.h>: just enough of the native streaming
// interface for the generated thunk to run on the development machine.
const char* kAdfShim = R"cpp(
#pragma once
#include <cstddef>
#include <vector>

struct end_of_stream {};

template <class T>
struct input_stream {
  const T* data;
  std::size_t n;
  std::size_t i = 0;
};
template <class T>
T readincr(input_stream<T>* s) {
  if (s->i >= s->n) throw end_of_stream{};
  return s->data[s->i++];
}

template <class T>
struct output_stream {
  std::vector<T>* out;
};
template <class T>
void writeincr(output_stream<T>* s, const T& v) { s->out->push_back(v); }

template <class T>
struct input_window {
  const T* data;
  std::size_t n;
  std::size_t i = 0;
};
template <class T>
void window_readincr(input_window<T>* w, T& v) {
  if (w->i >= w->n) throw end_of_stream{};
  v = w->data[w->i++];
}

template <class T>
struct output_window {
  std::vector<T>* out;
};
template <class T>
void window_writeincr(output_window<T>* w, const T& v) {
  w->out->push_back(v);
}
)cpp";

const char* kHarness = R"cpp(
#include <cstdio>
#include <vector>
#include "kernel_decls.hpp"

int main() {
  std::vector<float> in{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> out;
  input_stream<float> s_in{in.data(), in.size()};
  output_stream<float> s_out{&out};
  try {
    rtk_scale_aie(&s_in, &s_out);
  } catch (const end_of_stream&) {
    // Stream drained: the kernel's while(true) loop ends here, exactly as
    // it would on hardware when the PLIO stops delivering data.
  }
  if (out.size() != 4) return 1;
  for (std::size_t i = 0; i < 4; ++i) {
    if (out[i] != 3.0f * in[i]) return 2;
  }
  std::puts("roundtrip ok");
  return 0;
}
)cpp";

TEST(Roundtrip, ExtractedKernelCompilesAndMatchesPrototype) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path{CGSIM_BINARY_DIR} / "roundtrip";
  fs::create_directories(dir);

  // 1. Run the prototype through cgsim.
  std::vector<float> in{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> proto_out;
  rtk_graph(in, proto_out);
  ASSERT_EQ(proto_out, (std::vector<float>{3.0f, 6.0f, 9.0f, 12.0f}));

  // 2. Extract the graph into the temp project.
  cgx::GraphDesc desc = cgx::GraphDesc::from_view(
      rtk_graph.view(), "rtk_graph", (dir / "proto.cpp").string());
  {
    std::ofstream f{dir / "proto.cpp"};
    f << kProto;
  }
  cgx::ExtractOptions opts;
  opts.out_dir = dir.string();
  const auto rep = cgx::extract_graph(
      desc, cgx::SourceFile::load((dir / "proto.cpp").string()), opts);
  ASSERT_TRUE(rep.project.warnings.empty());
  const fs::path proj = dir / "rtk_graph";
  ASSERT_TRUE(fs::exists(proj / "rtk_scale.cc"));

  // 3. Drop in the host shim + harness and compile with the system
  //    compiler.
  {
    std::ofstream f{proj / "adf.h"};
    f << kAdfShim;
  }
  {
    std::ofstream f{proj / "harness.cpp"};
    f << kHarness;
  }
  const std::string cmd = "g++ -std=c++20 -I " + proj.string() + " " +
                          (proj / "harness.cpp").string() + " " +
                          (proj / "rtk_scale.cc").string() + " -o " +
                          (proj / "rt").string() + " 2> " +
                          (proj / "compile.log").string();
  const int compile_rc = std::system(cmd.c_str());
  if (compile_rc != 0) {
    std::ifstream log{proj / "compile.log"};
    std::string line;
    std::string all;
    while (std::getline(log, line)) all += line + "\n";
    FAIL() << "generated code failed to compile:\n" << all;
  }

  // 4. Run the extracted kernel and compare.
  const int run_rc = std::system(((proj / "rt").string() + " > " +
                                  (proj / "run.log").string())
                                     .c_str());
  EXPECT_EQ(run_rc, 0) << "extracted kernel produced wrong data";
}

}  // namespace

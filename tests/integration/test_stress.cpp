// Stress and failure-injection integration tests: wide/deep graphs, tiny
// channel capacities, threaded error propagation, and randomized
// cross-backend equivalence sweeps.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <stdexcept>

#include "core/cgsim.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, st_mix,
               KernelReadPort<int> a,
               KernelReadPort<int> b,
               KernelWritePort<int> lo,
               KernelWritePort<int> hi) {
  while (true) {
    const int x = co_await a.get();
    const int y = co_await b.get();
    co_await lo.put(std::min(x, y));
    co_await hi.put(std::max(x, y));
  }
}

COMPUTE_KERNEL(aie, st_add,
               KernelReadPort<int> a,
               KernelReadPort<int> b,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

COMPUTE_KERNEL(aie, st_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, st_fail_on_negative,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) {
    const int v = co_await in.get();
    if (v < 0) throw std::domain_error{"negative input"};
    co_await out.put(v);
  }
}

// A 4-stage sorting-network-ish butterfly of st_mix kernels: 8 kernels,
// plenty of cross connections, two outputs.
constexpr auto butterfly_graph = make_compute_graph_v<[](
    IoConnector<int> a, IoConnector<int> b, IoConnector<int> c,
    IoConnector<int> d) {
  IoConnector<int> l0, h0, l1, h1, lo, mid1, mid2, hi;
  st_mix(a, b, l0, h0);
  st_mix(c, d, l1, h1);
  st_mix(l0, l1, lo, mid1);
  st_mix(h0, h1, mid2, hi);
  return std::make_tuple(lo, mid1, mid2, hi);
}>;

TEST(Stress, MultiOutputButterfly) {
  std::mt19937 rng{101};
  std::uniform_int_distribution<int> d{-1000, 1000};
  const int n = 2000;
  std::vector<int> a(n), b(n), c(n), e(n);
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = d(rng);
    b[static_cast<std::size_t>(i)] = d(rng);
    c[static_cast<std::size_t>(i)] = d(rng);
    e[static_cast<std::size_t>(i)] = d(rng);
  }
  std::vector<int> lo, m1, m2, hi;
  const RunResult r = butterfly_graph(a, b, c, e, lo, m1, m2, hi);
  EXPECT_FALSE(r.deadlocked);
  ASSERT_EQ(lo.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    // lo is the min of all four; hi the max of all four.
    const int mn = std::min({a[idx], b[idx], c[idx], e[idx]});
    const int mx = std::max({a[idx], b[idx], c[idx], e[idx]});
    ASSERT_EQ(lo[idx], mn) << i;
    ASSERT_EQ(hi[idx], mx) << i;
    // The four outputs are a permutation of the four inputs.
    std::array<int, 4> got{lo[idx], m1[idx], m2[idx], hi[idx]};
    std::array<int, 4> want{a[idx], b[idx], c[idx], e[idx]};
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << i;
  }
}

TEST(Stress, ButterflyCoopEqualsThreaded) {
  std::vector<int> a{3, 1}, b{2, 9}, c{7, 4}, e{5, 6};
  std::vector<int> lo1, m11, m21, hi1, lo2, m12, m22, hi2;
  butterfly_graph(a, b, c, e, lo1, m11, m21, hi1);
  x86sim::simulate(butterfly_graph.view(), 1, a, b, c, e, lo2, m12, m22,
                   hi2);
  EXPECT_EQ(lo1, lo2);
  EXPECT_EQ(m11, m12);
  EXPECT_EQ(m21, m22);
  EXPECT_EQ(hi1, hi2);
}

// Tiny capacities force suspensions on nearly every element.
constexpr auto tiny_graph = make_compute_graph_v<[](IoConnector<int> a) {
  a.capacity(1);
  IoConnector<int> x, y, z;
  x.capacity(1);
  y.capacity(1);
  z.capacity(1);
  st_inc(a, x);
  st_inc(x, y);
  st_inc(y, z);
  return std::make_tuple(z);
}>;

TEST(Stress, CapacityOnePipeline) {
  std::vector<int> in(10000);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out;
  const RunResult r = tiny_graph(in, out);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i) + 3);
  }
  // With capacity 1 the scheduler must ping-pong: far more resumes than
  // tasks.
  EXPECT_GT(r.resumes, 10000u);
}

TEST(Stress, ThreadedErrorPropagates) {
  constexpr auto g = make_compute_graph_v<[](IoConnector<int> a) {
    IoConnector<int> b;
    st_fail_on_negative(a, b);
    return std::make_tuple(b);
  }>;
  std::vector<int> in{1, 2, -3, 4};
  std::vector<int> out;
  EXPECT_THROW(
      g.run(RunOptions{.mode = ExecMode::threaded}, in, out),
      std::domain_error);
  // The cooperative backend reports the same failure.
  out.clear();
  EXPECT_THROW(g(in, out), std::domain_error);
}

// Fan-out/fan-in diamond with shared source, randomized sweep over sizes.
constexpr auto diamond_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> l, r, s;
  st_inc(a, l);
  st_inc(a, r);
  st_add(l, r, s);
  return std::make_tuple(s);
}>;

class StressSweep : public ::testing::TestWithParam<int> {};

TEST_P(StressSweep, DiamondAllBackendsAgree) {
  const int n = GetParam();
  std::mt19937 rng{static_cast<unsigned>(n)};
  std::uniform_int_distribution<int> d{-100000, 100000};
  std::vector<int> in(static_cast<std::size_t>(n));
  for (auto& v : in) v = d(rng);
  std::vector<int> coop, threaded;
  diamond_graph(in, coop);
  x86sim::simulate(diamond_graph.view(), 1, in, threaded);
  ASSERT_EQ(coop.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < coop.size(); ++i) {
    ASSERT_EQ(coop[i], 2 * in[i] + 2);
  }
  EXPECT_EQ(coop, threaded);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StressSweep,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 1000, 4096));

}  // namespace

// Sharded cooperative execution (ExecMode::coop_mt): bit-identical outputs
// against the single-threaded cooperative and the thread-per-kernel
// backends on every ported app, cross-shard close/partial-batch behaviour,
// and repeated-run determinism.
#include <gtest/gtest.h>

#include <array>
#include <random>
#include <span>
#include <vector>

#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/fft.hpp"
#include "apps/fir.hpp"
#include "apps/gemm.hpp"
#include "apps/iir.hpp"
#include "core/cgsim.hpp"
#include "x86sim/x86sim.hpp"

namespace {

using namespace cgsim;

RunOptions mt(int workers) {
  return RunOptions{.mode = ExecMode::coop_mt, .repetitions = 1,
                    .workers = workers};
}

// --- all-app backend equivalence: coop vs coop_mt vs threaded -------------

TEST(CoopMt, BitonicMatchesCoopAndThreaded) {
  std::mt19937 rng{71};
  std::uniform_real_distribution<float> d{-100, 100};
  std::vector<apps::bitonic::Block> in(64);
  for (auto& b : in) {
    for (unsigned i = 0; i < 16; ++i) b.set(i, d(rng));
  }
  std::vector<apps::bitonic::Block> coop, mt2, mt4, threaded;
  apps::bitonic::graph(in, coop);
  apps::bitonic::graph.run(mt(2), in, mt2);
  apps::bitonic::graph.run(mt(4), in, mt4);
  x86sim::simulate(apps::bitonic::graph.view(), 1, in, threaded);
  EXPECT_EQ(coop, mt2);
  EXPECT_EQ(coop, mt4);
  EXPECT_EQ(coop, threaded);
}

TEST(CoopMt, BilinearMatchesCoopAndThreaded) {
  std::mt19937 rng{73};
  std::uniform_real_distribution<float> pix{0, 255};
  std::uniform_real_distribution<float> frac{0, 1};
  std::vector<apps::bilinear::Packet> in(200);  // partial final batch
  for (auto& p : in) {
    for (unsigned i = 0; i < apps::bilinear::kLanes; ++i) {
      p.p00.set(i, pix(rng));
      p.p01.set(i, pix(rng));
      p.p10.set(i, pix(rng));
      p.p11.set(i, pix(rng));
      p.fx.set(i, frac(rng));
      p.fy.set(i, frac(rng));
    }
  }
  std::vector<apps::bilinear::V> coop, mt2, threaded;
  apps::bilinear::graph(in, coop);
  apps::bilinear::graph.run(mt(2), in, mt2);
  x86sim::simulate(apps::bilinear::graph.view(), 1, in, threaded);
  EXPECT_EQ(coop, mt2);
  EXPECT_EQ(coop, threaded);
}

TEST(CoopMt, IirWithRtpMatchesCoopAndThreaded) {
  std::mt19937 rng{79};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<apps::iir::Block> in(5);
  for (auto& b : in) {
    for (auto& s : b.samples) s = d(rng);
  }
  std::vector<apps::iir::Block> coop, mt4, threaded;
  apps::iir::graph(in, 2.0f, coop);
  apps::iir::graph.run(mt(4), in, 2.0f, mt4);
  x86sim::simulate(apps::iir::graph.view(), 1, in, 2.0f, threaded);
  EXPECT_EQ(coop, mt4);
  EXPECT_EQ(coop, threaded);
}

TEST(CoopMt, FarrowMatchesCoopAndThreaded) {
  std::mt19937 rng{83};
  std::uniform_int_distribution<int> dx{-20000, 20000};
  std::uniform_int_distribution<int> dmu{0, (1 << 14) - 1};
  constexpr int kBlocks = 5;
  std::vector<apps::farrow::SampleBlock> in(kBlocks);
  std::vector<apps::farrow::MuBlock> mu(kBlocks);
  for (int b = 0; b < kBlocks; ++b) {
    for (unsigned i = 0; i < apps::farrow::kBlockSamples; ++i) {
      in[static_cast<std::size_t>(b)].s[i] =
          static_cast<std::int16_t>(dx(rng));
      mu[static_cast<std::size_t>(b)].mu[i] =
          static_cast<std::int16_t>(dmu(rng));
    }
  }
  std::vector<apps::farrow::SampleBlock> coop, mt2, threaded;
  apps::farrow::graph(in, mu, coop);
  apps::farrow::graph.run(mt(2), in, mu, mt2);
  x86sim::simulate(apps::farrow::graph.view(), 1, in, mu, threaded);
  EXPECT_EQ(coop, mt2);
  EXPECT_EQ(coop, threaded);
}

TEST(CoopMt, FirMatchesCoop) {
  std::mt19937 rng{89};
  std::uniform_int_distribution<int> d{-1000, 1000};
  std::vector<apps::fir::Block> in(8);
  for (auto& b : in) {
    for (auto& s : b.s) s = static_cast<std::int16_t>(d(rng));
  }
  std::vector<apps::fir::Block> coop, mt2;
  apps::fir::graph(in, coop);
  apps::fir::graph.run(mt(2), in, mt2);
  EXPECT_EQ(coop, mt2);
}

TEST(CoopMt, FftMatchesCoop) {
  std::mt19937 rng{97};
  std::uniform_real_distribution<float> d{-1, 1};
  std::vector<apps::fft::Frame> in(6);
  for (auto& f : in) {
    for (unsigned i = 0; i < apps::fft::kN; ++i) {
      f.re.set(i, d(rng));
      f.im.set(i, d(rng));
    }
  }
  std::vector<apps::fft::Frame> coop, mt2;
  apps::fft::graph(in, coop);
  apps::fft::graph.run(mt(2), in, mt2);
  EXPECT_EQ(coop, mt2);
}

TEST(CoopMt, GemmThreeKernelsMatchesCoopAndThreaded) {
  std::mt19937 rng{101};
  std::uniform_real_distribution<float> d{-5, 5};
  std::vector<apps::gemm::TilePair> h0(4), h1(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (auto& v : h0[i].a.m) v = d(rng);
    for (auto& v : h0[i].b.m) v = d(rng);
    for (auto& v : h1[i].a.m) v = d(rng);
    for (auto& v : h1[i].b.m) v = d(rng);
  }
  std::vector<apps::gemm::Tile> coop, mt2, mt4, threaded;
  apps::gemm::graph(h0, h1, coop);
  apps::gemm::graph.run(mt(2), h0, h1, mt2);
  apps::gemm::graph.run(mt(4), h0, h1, mt4);
  x86sim::simulate(apps::gemm::graph.view(), 1, h0, h1, threaded);
  EXPECT_EQ(coop, mt2);
  EXPECT_EQ(coop, mt4);
  EXPECT_EQ(coop, threaded);
}

// --- cross-shard channel behaviour through the runtime --------------------

COMPUTE_KERNEL(aie, mt_double,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() * 2);
}

COMPUTE_KERNEL(aie, mt_add_one,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

// Bulk kernel: 7-element windows force partial batches over the
// cross-shard edge whenever the stream length is not a multiple of 7.
COMPUTE_KERNEL(aie, mt_bulk_negate,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  std::array<int, 7> buf{};
  while (true) {
    const std::size_t n = co_await in.get_n(std::span{buf});
    for (std::size_t i = 0; i < n; ++i) buf[i] = -buf[i];
    co_await out.put_n(std::span<const int>{buf.data(), n});
    if (n < buf.size()) co_return;  // stream closed mid-batch
  }
}

// Two-stage chain: at 2 workers the partitioner must cut its middle edge.
constexpr auto mt_chain = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b, c;
  mt_double(a, b);
  mt_add_one(b, c);
  return std::make_tuple(c);
}>;

constexpr auto mt_bulk_chain = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b, c;
  mt_bulk_negate(a, b);
  mt_bulk_negate(b, c);
  return std::make_tuple(c);
}>;

// Four disjoint pipelines: the multi-component case coop_mt is built for.
constexpr auto mt_wide = make_compute_graph_v<[](
    IoConnector<int> a, IoConnector<int> b, IoConnector<int> c,
    IoConnector<int> d) {
  IoConnector<int> a1, b1, c1, d1;
  mt_double(a, a1);
  mt_double(b, b1);
  mt_double(c, c1);
  mt_double(d, d1);
  return std::make_tuple(a1, b1, c1, d1);
}>;

TEST(CoopMt, CrossShardChainMatchesCoop) {
  std::vector<int> in(1000);
  for (int i = 0; i < 1000; ++i) in[static_cast<std::size_t>(i)] = i;
  std::vector<int> coop, shards;
  mt_chain(in, coop);
  const RunResult r = mt_chain.run(mt(2), in, shards);
  EXPECT_EQ(r.shards_used, 2);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(coop, shards);
}

TEST(CoopMt, CrossShardCloseDeliversPartialBatch) {
  std::vector<int> in(23);  // 3 full windows + 2: closes mid-batch twice
  for (int i = 0; i < 23; ++i) in[static_cast<std::size_t>(i)] = i + 1;
  std::vector<int> coop, shards;
  mt_bulk_chain(in, coop);
  const RunResult r = mt_bulk_chain.run(mt(2), in, shards);
  ASSERT_EQ(coop.size(), in.size());
  EXPECT_EQ(r.shards_used, 2);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(coop, shards);  // double negation: back to the input values
}

TEST(CoopMt, WideGraphUsesAllShardsWithoutCrossEdges) {
  std::vector<int> a(100, 1), b(100, 2), c(100, 3), d(100, 4);
  std::vector<int> oa, ob, oc, od;
  const RunResult r = mt_wide.run(mt(4), a, b, c, d, oa, ob, oc, od);
  EXPECT_EQ(r.shards_used, 4);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(oa, std::vector<int>(100, 2));
  EXPECT_EQ(ob, std::vector<int>(100, 4));
  EXPECT_EQ(oc, std::vector<int>(100, 6));
  EXPECT_EQ(od, std::vector<int>(100, 8));
}

TEST(CoopMt, RepeatedRunsAreDeterministic) {
  std::vector<int> in(500);
  for (int i = 0; i < 500; ++i) in[static_cast<std::size_t>(i)] = i * 3;
  std::vector<int> reference;
  mt_chain(in, reference);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<int> out;
    mt_chain.run(mt(3), in, out);
    ASSERT_EQ(out, reference) << "run " << rep << " diverged";
  }
}

TEST(CoopMt, MoreWorkersThanKernelsClampsShards) {
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  const RunResult r = mt_chain.run(mt(16), in, out);
  EXPECT_LE(r.shards_used, 2);  // two kernels (+ source/sink on their homes)
  EXPECT_EQ(out, (std::vector<int>{3, 5, 7}));
}

TEST(CoopMt, RepetitionsReplayTheSource) {
  std::vector<int> in{1, 2};
  std::vector<int> out;
  mt_chain.run(RunOptions{.mode = ExecMode::coop_mt, .repetitions = 3,
                          .workers = 2},
               in, out);
  EXPECT_EQ(out, (std::vector<int>{3, 5, 3, 5, 3, 5}));
}

TEST(CoopMt, InteractiveSessionRejectsNonCoopModes) {
  EXPECT_THROW(
      (InteractiveSession{mt_chain.view(), ExecMode::coop_mt}),
      std::invalid_argument);
  EXPECT_THROW(
      (InteractiveSession{mt_chain.view(), ExecMode::threaded}),
      std::invalid_argument);
  // The default stays the cooperative backend and keeps working.
  InteractiveSession s{mt_chain.view()};
  ASSERT_TRUE(s.push<int>(0, 10));
  s.finish();
  const auto v = s.poll<int>(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 21);
}

TEST(CoopMt, RunCoopOnMtContextThrows) {
  RuntimeContext ctx{mt_chain.view(), ExecMode::coop_mt, nullptr, nullptr, 2};
  EXPECT_THROW((void)ctx.run_coop(), std::logic_error);
}

}  // namespace

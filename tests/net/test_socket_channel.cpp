// SocketChannel: the TypedChannel interface over a real socket -- bulk
// batching, end-of-stream propagation, and digest identity with an
// in-process channel carrying the same stream.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "net/socket_channel.hpp"
#include "service/protocol.hpp"

namespace {

using namespace cgsim;
using namespace cgsim::net;

TEST(SocketChannel, BlockingPushPopSum) {
  auto [a, b] = socket_pair();
  SocketChannel<int> tx{0, std::move(a)};
  SocketChannel<int> rx{1, std::move(b)};
  tx.set_producers(1);
  rx.set_producers(1);

  constexpr int kN = 100000;
  std::thread producer{[&] {
    for (int i = 0; i < kN; ++i) tx.blocking_push(i);
    tx.producer_done();
  }};
  long long sum = 0;
  int count = 0;
  int v = 0;
  while (rx.blocking_pop(0, v)) {
    sum += v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kN);
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(SocketChannel, BulkTransferBatchesSyscalls) {
  auto [a, b] = socket_pair();
  SocketChannel<int> tx{0, std::move(a)};
  SocketChannel<int> rx{1, std::move(b)};
  tx.set_producers(1);
  rx.set_producers(1);

  constexpr std::size_t kN = 1 << 18;  // 1 MiB of ints
  std::vector<int> src(kN);
  std::iota(src.begin(), src.end(), 0);

  std::thread producer{[&] {
    std::size_t done = 0;
    while (done < kN) {
      ChanStatus st{};
      done += tx.try_push_n(src.data() + done, kN - done, st);
      tx.flush();
      if (done < kN) tx.pump();
    }
    tx.producer_done();
  }};

  std::vector<int> dst;
  dst.reserve(kN);
  int buf[4096];
  for (;;) {
    ChanStatus st{};
    const std::size_t k = rx.try_pop_n(0, buf, 4096, st);
    dst.insert(dst.end(), buf, buf + k);
    if (k == 0) {
      if (st == ChanStatus::closed) break;
      rx.pump();
    }
  }
  producer.join();
  ASSERT_EQ(dst.size(), kN);
  EXPECT_EQ(dst, src);
}

TEST(SocketChannel, DigestIdentityAcrossSocket) {
  // The same element stream must digest identically whether it crossed a
  // socket or stayed in memory -- SocketChannel must be bitwise loss-free.
  std::vector<float> stream(50000);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    stream[i] = static_cast<float>(i) * 0.25f - 1000.0f;
  }
  const std::uint64_t reference = cgsim::service::fnv1a(
      stream.data(), stream.size() * sizeof(float));

  auto [a, b] = socket_pair();
  SocketChannel<float> tx{0, std::move(a)};
  SocketChannel<float> rx{1, std::move(b)};
  tx.set_producers(1);
  rx.set_producers(1);
  std::thread producer{[&] {
    std::size_t done = 0;
    while (done < stream.size()) {
      ChanStatus st{};
      done += tx.try_push_n(stream.data() + done, stream.size() - done, st);
      tx.flush();
      if (done < stream.size()) tx.pump();
    }
    tx.producer_done();
  }};
  std::uint64_t digest = cgsim::service::kFnvSeed;
  float v = 0.0f;
  std::size_t n = 0;
  while (rx.blocking_pop(0, v)) {
    digest = cgsim::service::fnv1a(&v, sizeof v, digest);
    ++n;
  }
  producer.join();
  EXPECT_EQ(n, stream.size());
  EXPECT_EQ(digest, reference);
}

TEST(SocketChannel, ConsumerCloseReachesProducer) {
  auto [a, b] = socket_pair();
  SocketChannel<int> tx{0, std::move(a)};
  SocketChannel<int> rx{1, std::move(b)};
  tx.set_producers(1);
  rx.set_producers(1);

  std::thread consumer{[&] {
    int v = 0;
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(rx.blocking_pop(0, v));
    rx.consumer_done(0);
  }};
  // Keep pushing until the peer's goodbye lands: pushes start failing.
  bool closed_seen = false;
  for (int i = 0; i < 2'000'000 && !closed_seen; ++i) {
    closed_seen = !tx.blocking_push(i);
  }
  consumer.join();
  EXPECT_TRUE(closed_seen);
}

TEST(SocketChannel, EosWithoutDataDeliversClosed) {
  auto [a, b] = socket_pair();
  SocketChannel<int> tx{0, std::move(a)};
  SocketChannel<int> rx{1, std::move(b)};
  tx.set_producers(1);
  rx.set_producers(1);
  tx.producer_done();
  int v = 0;
  EXPECT_FALSE(rx.blocking_pop(0, v));
}

}  // namespace

// Wire protocol: varints, CRC framing, batched writev/readv scatter-gather
// and the versioned handshake.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace {

using namespace cgsim::net;

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 ~0ull};
  for (std::uint64_t v : cases) {
    std::string s;
    put_varint(s, v);
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    const std::byte* end = p + s.size();
    std::uint64_t got = 0;
    ASSERT_TRUE(get_varint(p, end, got));
    EXPECT_EQ(got, v);
    EXPECT_EQ(p, end) << "no trailing bytes";
  }
}

TEST(Varint, TruncationRejected) {
  std::string s;
  put_varint(s, 1ull << 40);
  for (std::size_t cut = 0; cut < s.size(); ++cut) {
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    std::uint64_t got = 0;
    EXPECT_FALSE(get_varint(p, p + cut, got)) << "cut=" << cut;
  }
}

TEST(Crc32, KnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Frame, WriterReaderRoundTrip) {
  auto [a, b] = socket_pair();
  FrameWriter w;
  std::vector<std::string> payloads;
  payloads.reserve(100);
  for (int i = 0; i < 100; ++i) {
    payloads.push_back(std::string(static_cast<std::size_t>(i) * 7, 'x'));
    payloads.back().append(std::to_string(i));
    w.frame_str(FrameType::data, static_cast<std::uint64_t>(i),
                payloads.back());
  }
  EXPECT_EQ(w.pending_frames(), 100u);
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  // 100 small frames collapse into very few writev calls (batching).
  EXPECT_LE(w.writev_calls(), 4u);

  FrameReader r;
  int seen = 0;
  while (seen < 100) {
    FrameView f;
    std::string err;
    const auto pr = r.next(f, &err);
    if (pr == FrameReader::ParseResult::frame) {
      EXPECT_EQ(f.type, FrameType::data);
      EXPECT_EQ(f.stream, static_cast<std::uint64_t>(seen));
      const std::string got{reinterpret_cast<const char*>(f.payload.data()),
                            f.payload.size()};
      EXPECT_EQ(got, payloads[static_cast<std::size_t>(seen)]);
      ++seen;
      continue;
    }
    ASSERT_EQ(pr, FrameReader::ParseResult::need_more) << err;
    ASSERT_TRUE(wait_fd(b.get(), false, 1000));
    ASSERT_EQ(r.fill(b.get()), FrameReader::IoResult::ok);
  }
  EXPECT_EQ(r.parsed_frames(), 100u);
}

TEST(Frame, ZeroCopyBulkPayload) {
  auto [a, b] = socket_pair();
  // Large payload: referenced zero-copy, must survive until flush returns.
  std::vector<int> bulk(100000);
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    bulk[i] = static_cast<int>(i * 3);
  }
  const std::size_t bytes = bulk.size() * sizeof(int);

  std::thread consumer{[&, fd = b.get()] {
    FrameReader r;
    for (;;) {
      FrameView f;
      const auto pr = r.next(f);
      if (pr == FrameReader::ParseResult::frame) {
        ASSERT_EQ(f.type, FrameType::data);
        ASSERT_EQ(f.payload.size(), bytes);
        EXPECT_EQ(std::memcmp(f.payload.data(), bulk.data(), bytes), 0);
        return;
      }
      ASSERT_EQ(pr, FrameReader::ParseResult::need_more);
      ASSERT_TRUE(wait_fd(fd, false, 5000));
      const auto io = r.fill(fd);
      ASSERT_TRUE(io == FrameReader::IoResult::ok ||
                  io == FrameReader::IoResult::would_block);
    }
  }};
  FrameWriter w;
  w.frame(FrameType::data, 7, bulk.data(), bytes);
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  consumer.join();
}

TEST(Frame, HeaderCorruptionDetected) {
  FrameWriter w;
  w.frame_str(FrameType::data, 1, "hello");
  // Render the frame into a pipe-backed buffer via a socketpair.
  auto [a, b] = socket_pair();
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  std::vector<char> raw(64);
  const ssize_t n = ::read(b.get(), raw.data(), raw.size());
  ASSERT_GT(n, 4);
  raw[2] ^= 0x40;  // flip a bit inside the header (stream id varint)
  auto [c, d] = socket_pair();
  ASSERT_EQ(::write(c.get(), raw.data(), static_cast<std::size_t>(n)), n);
  FrameReader r;
  ASSERT_EQ(r.fill(d.get()), FrameReader::IoResult::ok);
  FrameView f;
  std::string err;
  EXPECT_EQ(r.next(f, &err), FrameReader::ParseResult::corrupt);
  EXPECT_NE(err.find("CRC"), std::string::npos);
}

TEST(Frame, PayloadCrcFlag) {
  auto [a, b] = socket_pair();
  FrameWriter w;
  const std::string payload = "guarded payload";
  w.frame(FrameType::data, 3, payload.data(), payload.size(),
          kFlagPayloadCrc);
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  FrameReader r;
  ASSERT_EQ(r.fill(b.get()), FrameReader::IoResult::ok);
  FrameView f;
  ASSERT_EQ(r.next(f), FrameReader::ParseResult::frame);
  EXPECT_EQ(f.flags & kFlagPayloadCrc, kFlagPayloadCrc);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(f.payload.data()),
                        f.payload.size()),
            payload);
}

TEST(Frame, HandshakeVersionSkewRejected) {
  auto [client, server] = socket_pair();
  std::thread srv{[fd = server.get()] {
    FrameReader r;
    FrameWriter w;
    for (;;) {
      FrameView f;
      if (r.next(f) == FrameReader::ParseResult::frame) {
        Hello h;
        ASSERT_TRUE(Hello::decode(f.payload, h));
        EXPECT_EQ(h.magic, kWireMagic);
        w.frame_str(FrameType::reject, 0, "unsupported protocol version");
        ASSERT_EQ(w.flush(fd), FrameWriter::IoResult::ok);
        return;
      }
      ASSERT_TRUE(wait_fd(fd, false, 5000));
      ASSERT_EQ(r.fill(fd), FrameReader::IoResult::ok);
    }
  }};
  FrameWriter w;
  FrameReader r;
  EXPECT_THROW(client_handshake(client.get(), w, r), std::runtime_error);
  srv.join();
}

TEST(Frame, HandshakeAccepted) {
  auto [client, server] = socket_pair();
  std::thread srv{[fd = server.get()] {
    FrameReader r;
    FrameWriter w;
    for (;;) {
      FrameView f;
      if (r.next(f) == FrameReader::ParseResult::frame) {
        ASSERT_EQ(f.type, FrameType::hello);
        w.frame_str(FrameType::hello_ack, 0, Hello{}.encode());
        ASSERT_EQ(w.flush(fd), FrameWriter::IoResult::ok);
        return;
      }
      ASSERT_TRUE(wait_fd(fd, false, 5000));
      ASSERT_EQ(r.fill(fd), FrameReader::IoResult::ok);
    }
  }};
  FrameWriter w;
  FrameReader r;
  EXPECT_NO_THROW(client_handshake(client.get(), w, r));
  srv.join();
}

}  // namespace

// Wire protocol: varints, CRC framing, batched writev/readv scatter-gather
// and the versioned handshake.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"

namespace {

using namespace cgsim::net;

TEST(Varint, RoundTripBoundaries) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ull << 32) - 1,
                                 1ull << 32,
                                 ~0ull};
  for (std::uint64_t v : cases) {
    std::string s;
    put_varint(s, v);
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    const std::byte* end = p + s.size();
    std::uint64_t got = 0;
    ASSERT_TRUE(get_varint(p, end, got));
    EXPECT_EQ(got, v);
    EXPECT_EQ(p, end) << "no trailing bytes";
  }
}

TEST(Varint, TruncationRejected) {
  std::string s;
  put_varint(s, 1ull << 40);
  for (std::size_t cut = 0; cut < s.size(); ++cut) {
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    std::uint64_t got = 0;
    EXPECT_FALSE(get_varint(p, p + cut, got)) << "cut=" << cut;
  }
}

TEST(Crc32, KnownVector) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Frame, WriterReaderRoundTrip) {
  auto [a, b] = socket_pair();
  FrameWriter w;
  std::vector<std::string> payloads;
  payloads.reserve(100);
  for (int i = 0; i < 100; ++i) {
    payloads.push_back(std::string(static_cast<std::size_t>(i) * 7, 'x'));
    payloads.back().append(std::to_string(i));
    w.frame_str(FrameType::data, static_cast<std::uint64_t>(i),
                payloads.back());
  }
  EXPECT_EQ(w.pending_frames(), 100u);
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  // 100 small frames collapse into very few writev calls (batching).
  EXPECT_LE(w.writev_calls(), 4u);

  FrameReader r;
  int seen = 0;
  while (seen < 100) {
    FrameView f;
    std::string err;
    const auto pr = r.next(f, &err);
    if (pr == FrameReader::ParseResult::frame) {
      EXPECT_EQ(f.type, FrameType::data);
      EXPECT_EQ(f.stream, static_cast<std::uint64_t>(seen));
      const std::string got{reinterpret_cast<const char*>(f.payload.data()),
                            f.payload.size()};
      EXPECT_EQ(got, payloads[static_cast<std::size_t>(seen)]);
      ++seen;
      continue;
    }
    ASSERT_EQ(pr, FrameReader::ParseResult::need_more) << err;
    ASSERT_TRUE(wait_fd(b.get(), false, 1000));
    ASSERT_EQ(r.fill(b.get()), FrameReader::IoResult::ok);
  }
  EXPECT_EQ(r.parsed_frames(), 100u);
}

TEST(Frame, ZeroCopyBulkPayload) {
  auto [a, b] = socket_pair();
  // Large payload: referenced zero-copy, must survive until flush returns.
  std::vector<int> bulk(100000);
  for (std::size_t i = 0; i < bulk.size(); ++i) {
    bulk[i] = static_cast<int>(i * 3);
  }
  const std::size_t bytes = bulk.size() * sizeof(int);

  std::thread consumer{[&, fd = b.get()] {
    FrameReader r;
    for (;;) {
      FrameView f;
      const auto pr = r.next(f);
      if (pr == FrameReader::ParseResult::frame) {
        ASSERT_EQ(f.type, FrameType::data);
        ASSERT_EQ(f.payload.size(), bytes);
        EXPECT_EQ(std::memcmp(f.payload.data(), bulk.data(), bytes), 0);
        return;
      }
      ASSERT_EQ(pr, FrameReader::ParseResult::need_more);
      ASSERT_TRUE(wait_fd(fd, false, 5000));
      const auto io = r.fill(fd);
      ASSERT_TRUE(io == FrameReader::IoResult::ok ||
                  io == FrameReader::IoResult::would_block);
    }
  }};
  FrameWriter w;
  w.frame(FrameType::data, 7, bulk.data(), bytes);
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  consumer.join();
}

TEST(Frame, HeaderCorruptionDetected) {
  FrameWriter w;
  w.frame_str(FrameType::data, 1, "hello");
  // Render the frame into a pipe-backed buffer via a socketpair.
  auto [a, b] = socket_pair();
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  std::vector<char> raw(64);
  const ssize_t n = ::read(b.get(), raw.data(), raw.size());
  ASSERT_GT(n, 4);
  raw[2] ^= 0x40;  // flip a bit inside the header (stream id varint)
  auto [c, d] = socket_pair();
  ASSERT_EQ(::write(c.get(), raw.data(), static_cast<std::size_t>(n)), n);
  FrameReader r;
  ASSERT_EQ(r.fill(d.get()), FrameReader::IoResult::ok);
  FrameView f;
  std::string err;
  EXPECT_EQ(r.next(f, &err), FrameReader::ParseResult::corrupt);
  EXPECT_NE(err.find("CRC"), std::string::npos);
}

TEST(Frame, PayloadCrcFlag) {
  auto [a, b] = socket_pair();
  FrameWriter w;
  const std::string payload = "guarded payload";
  w.frame(FrameType::data, 3, payload.data(), payload.size(),
          kFlagPayloadCrc);
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  FrameReader r;
  ASSERT_EQ(r.fill(b.get()), FrameReader::IoResult::ok);
  FrameView f;
  ASSERT_EQ(r.next(f), FrameReader::ParseResult::frame);
  EXPECT_EQ(f.flags & kFlagPayloadCrc, kFlagPayloadCrc);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(f.payload.data()),
                        f.payload.size()),
            payload);
}

/// One parsed frame, owned (FrameViews die at the next fill()).
struct OwnedFrame {
  FrameType type{};
  std::uint64_t stream = 0;
  std::string payload;

  bool operator==(const OwnedFrame&) const = default;
};

/// Feeds `raw` to a FrameReader in chunks chosen by `next_chunk`,
/// appending every frame parsed to `out`. Each chunk goes through a real
/// socketpair so fill()'s readv path is exercised, not bypassed.
void parse_in_chunks(
    const std::vector<char>& raw,
    const std::function<std::size_t(std::size_t remaining)>& next_chunk,
    std::vector<OwnedFrame>& out) {
  auto [a, b] = socket_pair();
  FrameReader r;
  std::size_t sent = 0;
  auto drain = [&] {
    for (;;) {
      FrameView f;
      std::string err;
      const auto pr = r.next(f, &err);
      if (pr == FrameReader::ParseResult::need_more) return;
      ASSERT_EQ(pr, FrameReader::ParseResult::frame) << err;
      out.push_back(OwnedFrame{
          f.type, f.stream,
          std::string{reinterpret_cast<const char*>(f.payload.data()),
                      f.payload.size()}});
    }
  };
  while (sent < raw.size()) {
    const std::size_t n =
        std::min(next_chunk(raw.size() - sent), raw.size() - sent);
    ASSERT_GT(n, 0u);
    ASSERT_EQ(::write(a.get(), raw.data() + sent, n),
              static_cast<ssize_t>(n));
    sent += n;
    ASSERT_EQ(r.fill(b.get()), FrameReader::IoResult::ok);
    drain();
  }
  EXPECT_EQ(r.buffered_bytes(), 0u) << "undigested trailing bytes";
}

TEST(Frame, ByteBoundaryFuzzMatchesWholeBufferParse) {
  // A stream of frames whose sizes straddle every header boundary: empty
  // payloads, 1-byte, varint-length edges (127/128), multi-byte stream
  // ids, and payload-CRC-guarded frames.
  FrameWriter w;
  std::vector<OwnedFrame> expect;
  std::mt19937 rng{0xC65157u};
  const std::size_t sizes[] = {0, 1, 2, 126, 127, 128, 129, 1000, 4000};
  std::uint64_t stream = 0;
  for (int rep = 0; rep < 4; ++rep) {
    for (const std::size_t sz : sizes) {
      std::string payload(sz, '\0');
      for (auto& c : payload) {
        c = static_cast<char>(rng() & 0xff);
      }
      stream = stream * 131 + 7;  // exercises multi-byte stream varints
      const bool guard = (rng() & 1) != 0;
      w.frame(FrameType::data, stream, payload.data(), payload.size(),
              guard ? kFlagPayloadCrc : 0);
      expect.push_back(OwnedFrame{FrameType::data, stream,
                                  std::move(payload)});
    }
  }
  auto [a, b] = socket_pair();
  ASSERT_EQ(w.flush(a.get()), FrameWriter::IoResult::ok);
  std::vector<char> raw(128 << 10);
  const ssize_t n = ::read(b.get(), raw.data(), raw.size());
  ASSERT_GT(n, 0);
  ASSERT_LT(static_cast<std::size_t>(n), raw.size()) << "grow the buffer";
  raw.resize(static_cast<std::size_t>(n));

  // Whole buffer in one write...
  std::vector<OwnedFrame> whole;
  parse_in_chunks(raw, [](std::size_t rem) { return rem; }, whole);
  ASSERT_EQ(whole, expect);
  // ...must parse identically to one byte at a time...
  std::vector<OwnedFrame> bytewise;
  parse_in_chunks(raw, [](std::size_t) { return std::size_t{1}; },
                  bytewise);
  EXPECT_EQ(bytewise, expect);
  // ...and to randomized split points.
  for (unsigned seed = 1; seed <= 8; ++seed) {
    std::mt19937 split_rng{seed};
    std::vector<OwnedFrame> split;
    parse_in_chunks(raw, [&](std::size_t) {
      return static_cast<std::size_t>(split_rng() % 97 + 1);
    }, split);
    EXPECT_EQ(split, expect) << "seed=" << seed;
  }
}

TEST(Frame, HandshakeVersionSkewRejected) {
  auto [client, server] = socket_pair();
  std::thread srv{[fd = server.get()] {
    FrameReader r;
    FrameWriter w;
    for (;;) {
      FrameView f;
      if (r.next(f) == FrameReader::ParseResult::frame) {
        Hello h;
        ASSERT_TRUE(Hello::decode(f.payload, h));
        EXPECT_EQ(h.magic, kWireMagic);
        w.frame_str(FrameType::reject, 0, "unsupported protocol version");
        ASSERT_EQ(w.flush(fd), FrameWriter::IoResult::ok);
        return;
      }
      ASSERT_TRUE(wait_fd(fd, false, 5000));
      ASSERT_EQ(r.fill(fd), FrameReader::IoResult::ok);
    }
  }};
  FrameWriter w;
  FrameReader r;
  EXPECT_THROW(client_handshake(client.get(), w, r), std::runtime_error);
  srv.join();
}

TEST(Frame, HandshakeAccepted) {
  auto [client, server] = socket_pair();
  std::thread srv{[fd = server.get()] {
    FrameReader r;
    FrameWriter w;
    for (;;) {
      FrameView f;
      if (r.next(f) == FrameReader::ParseResult::frame) {
        ASSERT_EQ(f.type, FrameType::hello);
        w.frame_str(FrameType::hello_ack, 0, Hello{}.encode());
        ASSERT_EQ(w.flush(fd), FrameWriter::IoResult::ok);
        return;
      }
      ASSERT_TRUE(wait_fd(fd, false, 5000));
      ASSERT_EQ(r.fill(fd), FrameReader::IoResult::ok);
    }
  }};
  FrameWriter w;
  FrameReader r;
  EXPECT_NO_THROW(client_handshake(client.get(), w, r));
  srv.join();
}

}  // namespace

// Shared-memory data plane: SPSC ring semantics (all-or-nothing writes,
// wraparound, zero-copy peek/consume, futex-parked blocking transfers),
// the bidirectional ShmPlane over anonymous and named segments, and the
// SocketChannel bulk path riding the ring -- which must stay bit-identical
// to the socket path it replaces.
#include <gtest/gtest.h>

#include <sys/eventfd.h>
#include <unistd.h>

#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "net/shm_ring.hpp"
#include "net/socket.hpp"
#include "net/socket_channel.hpp"

namespace {

using namespace cgsim;
using namespace cgsim::net;

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  unsigned x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    v[i] = static_cast<std::byte>(x >> 24);
  }
  return v;
}

TEST(ShmRing, WriteReadRoundTripWithWrap) {
  auto plane = ShmPlane::create_anon(ShmPlane::kMinRingBytes);
  ShmRing& ring = plane.tx();
  ASSERT_TRUE(ring.valid());
  const std::size_t cap = ring.capacity();
  EXPECT_EQ(cap & (cap - 1), 0u) << "power-of-two capacity";

  // Many odd-sized chunks force the cursors through several wraps.
  const auto src = pattern_bytes(cap * 7 + 13, 1);
  std::vector<std::byte> dst(src.size());
  std::size_t w = 0, r = 0;
  while (r < src.size()) {
    const std::size_t chunk = std::min<std::size_t>(97, src.size() - w);
    if (chunk > 0 && ring.try_write(src.data() + w, chunk)) w += chunk;
    const std::size_t have = std::min(ring.readable(), src.size() - r);
    if (have > 0) {
      ASSERT_TRUE(ring.try_read_exact(dst.data() + r, have));
      r += have;
    }
  }
  EXPECT_EQ(dst, src);
}

TEST(ShmRing, TryWriteIsAllOrNothing) {
  auto plane = ShmPlane::create_anon(ShmPlane::kMinRingBytes);
  ShmRing& ring = plane.tx();
  const std::size_t cap = ring.capacity();
  const auto src = pattern_bytes(cap, 2);
  ASSERT_TRUE(ring.try_write(src.data(), cap));  // exactly full
  EXPECT_EQ(ring.free_bytes(), 0u);
  // A full ring rejects without touching the cursors.
  EXPECT_FALSE(ring.try_write(src.data(), 1));
  EXPECT_EQ(ring.readable(), cap);
  std::vector<std::byte> dst(cap);
  ASSERT_TRUE(ring.try_read_exact(dst.data(), cap));
  EXPECT_EQ(dst, src);
  // And an oversized request fails even on an empty ring.
  EXPECT_FALSE(ring.try_write(src.data(), cap + 1));
  EXPECT_EQ(ring.readable(), 0u);
}

TEST(ShmRing, TryReadExactIsAllOrNothing) {
  auto plane = ShmPlane::create_anon(ShmPlane::kMinRingBytes);
  ShmRing& ring = plane.tx();
  const auto src = pattern_bytes(100, 3);
  ASSERT_TRUE(ring.try_write(src.data(), 100));
  std::vector<std::byte> dst(101, std::byte{0});
  EXPECT_FALSE(ring.try_read_exact(dst.data(), 101));
  EXPECT_EQ(ring.readable(), 100u) << "failed read consumed nothing";
  EXPECT_TRUE(ring.try_read_exact(dst.data(), 100));
}

TEST(ShmRing, PeekConsumeSpansTheWrap) {
  auto plane = ShmPlane::create_anon(ShmPlane::kMinRingBytes);
  ShmRing& ring = plane.tx();
  const std::size_t cap = ring.capacity();
  // Park the cursors near the end so a subsequent write wraps.
  std::vector<std::byte> scratch(cap - 16);
  ASSERT_TRUE(ring.try_write(scratch.data(), scratch.size()));
  ASSERT_TRUE(ring.try_read_exact(scratch.data(), scratch.size()));

  const auto src = pattern_bytes(64, 4);
  ASSERT_TRUE(ring.try_write(src.data(), src.size()));
  std::span<const std::byte> a, b;
  ASSERT_TRUE(ring.peek(src.size(), a, b));
  ASSERT_EQ(a.size() + b.size(), src.size());
  EXPECT_EQ(a.size(), 16u) << "first span runs to the end of the buffer";
  std::vector<std::byte> joined;
  joined.insert(joined.end(), a.begin(), a.end());
  joined.insert(joined.end(), b.begin(), b.end());
  EXPECT_EQ(joined, src);
  ring.consume(src.size());
  EXPECT_EQ(ring.readable(), 0u);
}

TEST(ShmRing, BlockingTransferAcrossThreads) {
  // A payload many times the ring size forces both sides through the
  // futex park/wake path repeatedly.
  auto plane = ShmPlane::create_anon(ShmPlane::kMinRingBytes);
  auto peer = plane.peer_view();
  const auto src = pattern_bytes(ShmPlane::kMinRingBytes * 23 + 5, 5);
  std::vector<std::byte> dst(src.size());
  std::thread producer{[&] {
    ASSERT_TRUE(plane.tx().write_all(src.data(), src.size(), 10'000));
  }};
  ASSERT_TRUE(peer.rx().read_all(dst.data(), dst.size(), 10'000));
  producer.join();
  EXPECT_EQ(dst, src);
}

TEST(ShmRing, DoorbellFiresWhenArmed) {
  auto plane = ShmPlane::create_anon(ShmPlane::kMinRingBytes);
  auto peer = plane.peer_view();
  const int efd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  ASSERT_GE(efd, 0);
  plane.tx().set_doorbell_fd(efd);

  std::uint64_t v = 0;
  const char byte = 'x';
  // Unarmed: publishing does not ring.
  ASSERT_TRUE(plane.tx().try_write(&byte, 1));
  EXPECT_LT(::read(efd, &v, sizeof(v)), 0);
  // Armed: the next publish rings exactly through the eventfd.
  peer.rx().arm_doorbell(true);
  ASSERT_TRUE(plane.tx().try_write(&byte, 1));
  ASSERT_EQ(::read(efd, &v, sizeof(v)), static_cast<ssize_t>(sizeof(v)));
  EXPECT_GE(v, 1u);
  peer.rx().arm_doorbell(false);
  ::close(efd);
}

TEST(ShmPlane, PeerViewCrossesTheRings) {
  auto plane = ShmPlane::create_anon(1 << 16);
  auto peer = plane.peer_view();
  const auto fwd = pattern_bytes(1000, 6);
  const auto bwd = pattern_bytes(1000, 7);
  ASSERT_TRUE(plane.tx().try_write(fwd.data(), fwd.size()));
  ASSERT_TRUE(peer.tx().try_write(bwd.data(), bwd.size()));
  std::vector<std::byte> got_fwd(fwd.size()), got_bwd(bwd.size());
  ASSERT_TRUE(peer.rx().try_read_exact(got_fwd.data(), got_fwd.size()));
  ASSERT_TRUE(plane.rx().try_read_exact(got_bwd.data(), got_bwd.size()));
  EXPECT_EQ(got_fwd, fwd);
  EXPECT_EQ(got_bwd, bwd);
}

TEST(ShmPlane, NamedSegmentAttachAndUnlink) {
  auto initiator = ShmPlane::create_initiator(1 << 16);
  const std::string name = initiator.name();
  ASSERT_FALSE(name.empty());
  ASSERT_EQ(name.front(), '/');

  auto peer = ShmPlane::attach_peer(name);
  // attach_peer unlinks: the name is single-use.
  EXPECT_THROW((void)ShmPlane::attach_peer(name), std::exception);

  const auto fwd = pattern_bytes(512, 8);
  ASSERT_TRUE(initiator.tx().try_write(fwd.data(), fwd.size()));
  std::vector<std::byte> got(fwd.size());
  ASSERT_TRUE(peer.rx().try_read_exact(got.data(), got.size()));
  EXPECT_EQ(got, fwd);
  initiator.unlink_name();  // idempotent after peer unlink
}

TEST(ShmPlane, AttachRejectsForeignSegment) {
  // A named segment without the plane header must be refused.
  auto seg = ShmSegment::create_named(1 << 16);
  std::memset(seg.data(), 0xab, 64);
  const std::string name = seg.name();
  EXPECT_THROW((void)ShmPlane::attach_peer(name), std::exception);
  seg.unlink_name();
}

TEST(ShmSetup, CodecRoundTripAndValidation) {
  ShmSetupMsg m;
  m.ring_bytes = 4 << 20;
  m.name = "/cgsim-1234-0";
  const std::string wire = m.encode();
  ShmSetupMsg back;
  ASSERT_TRUE(ShmSetupMsg::decode(
      std::span<const std::byte>{
          reinterpret_cast<const std::byte*>(wire.data()), wire.size()},
      back));
  EXPECT_EQ(back.ring_bytes, m.ring_bytes);
  EXPECT_EQ(back.name, m.name);

  // Names not rooted at '/' (or empty) are rejected.
  ShmSetupMsg bad;
  bad.ring_bytes = 1;
  bad.name = "cgsim-no-slash";
  const std::string bad_wire = bad.encode();
  ShmSetupMsg out;
  EXPECT_FALSE(ShmSetupMsg::decode(
      std::span<const std::byte>{
          reinterpret_cast<const std::byte*>(bad_wire.data()),
          bad_wire.size()},
      out));
}

// --- SocketChannel over the plane ------------------------------------------

struct ChannelTransfer {
  std::vector<int> received;
  std::uint64_t ring_tx = 0;
  std::uint64_t ring_rx = 0;
};

/// Pushes `src` through a channel pair (optionally shm-attached) and
/// returns everything the consumer popped, in order.
ChannelTransfer channel_transfer(const std::vector<int>& src, bool use_shm,
                                 std::size_t batch) {
  auto [a, b] = socket_pair();
  SocketChannel<int> tx{0, std::move(a)};
  SocketChannel<int> rx{1, std::move(b)};
  tx.set_producers(1);
  rx.set_producers(1);
  ShmPlane plane, peer;
  if (use_shm) {
    plane = ShmPlane::create_anon(1 << 20);
    peer = plane.peer_view();
    tx.attach_shm(plane.tx(), plane.rx());
    rx.attach_shm(peer.tx(), peer.rx());
  }
  std::thread producer{[&] {
    std::size_t done = 0;
    while (done < src.size()) {
      ChanStatus st{};
      done += tx.try_push_n(src.data() + done,
                            std::min(batch, src.size() - done), st);
      tx.flush();
      if (done < src.size()) tx.pump();
    }
    tx.producer_done();
  }};
  ChannelTransfer out;
  std::vector<int> buf(8192);
  for (;;) {
    ChanStatus st{};
    const std::size_t k = rx.try_pop_n(0, buf.data(), buf.size(), st);
    out.received.insert(out.received.end(), buf.begin(),
                        buf.begin() + static_cast<std::ptrdiff_t>(k));
    if (k == 0) {
      if (st == ChanStatus::closed) break;
      rx.pump();
    }
  }
  producer.join();
  out.ring_tx = tx.shm_tx_bytes();
  out.ring_rx = rx.shm_rx_bytes();
  return out;
}

TEST(SocketChannelShm, BulkPayloadRidesTheRingBitIdentically) {
  std::vector<int> src(300'000);
  std::iota(src.begin(), src.end(), -17);
  // Batches above the 4 KiB threshold take the ring...
  const ChannelTransfer shm = channel_transfer(src, true, 32 << 10);
  EXPECT_EQ(shm.received, src);
  EXPECT_GT(shm.ring_tx, 0u) << "bulk path never engaged the ring";
  EXPECT_EQ(shm.ring_tx, shm.ring_rx);
  // ...and the socket-only run of the same data matches bit for bit.
  const ChannelTransfer sock = channel_transfer(src, false, 32 << 10);
  EXPECT_EQ(sock.received, src);
  EXPECT_EQ(sock.ring_tx, 0u);
}

TEST(SocketChannelShm, SmallBatchesStayOnTheSocket) {
  std::vector<int> src(10'000);
  std::iota(src.begin(), src.end(), 5);
  // 256-element (1 KiB) batches sit under the shm threshold.
  const ChannelTransfer out = channel_transfer(src, true, 256);
  EXPECT_EQ(out.received, src);
  EXPECT_EQ(out.ring_tx, 0u);
}

TEST(SocketChannelShm, MixedBatchSizesInterleaveInOrder) {
  std::vector<int> src(200'000);
  std::iota(src.begin(), src.end(), 1);
  auto [a, b] = socket_pair();
  SocketChannel<int> tx{0, std::move(a)};
  SocketChannel<int> rx{1, std::move(b)};
  tx.set_producers(1);
  rx.set_producers(1);
  auto plane = ShmPlane::create_anon(1 << 20);
  auto peer = plane.peer_view();
  tx.attach_shm(plane.tx(), plane.rx());
  rx.attach_shm(peer.tx(), peer.rx());

  std::thread producer{[&] {
    // Alternate tiny (socket) and huge (ring) batches: the consumer must
    // splice the two byte paths back into one ordered stream.
    const std::size_t plan[] = {64, 32 << 10, 128, 48 << 10, 256};
    std::size_t done = 0, pick = 0;
    while (done < src.size()) {
      const std::size_t want =
          std::min(plan[pick++ % 5], src.size() - done);
      std::size_t sent = 0;
      while (sent < want) {
        ChanStatus st{};
        sent += tx.try_push_n(src.data() + done + sent, want - sent, st);
        tx.flush();
        if (sent < want) tx.pump();
      }
      done += want;
    }
    tx.producer_done();
  }};
  std::vector<int> got;
  std::vector<int> buf(4096);
  for (;;) {
    ChanStatus st{};
    const std::size_t k = rx.try_pop_n(0, buf.data(), buf.size(), st);
    got.insert(got.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(k));
    if (k == 0) {
      if (st == ChanStatus::closed) break;
      rx.pump();
    }
  }
  producer.join();
  EXPECT_EQ(got, src);
  EXPECT_GT(tx.shm_tx_bytes(), 0u);
  EXPECT_LT(tx.shm_tx_bytes(), src.size() * sizeof(int))
      << "tiny batches should not have taken the ring";
}

}  // namespace

// Graphviz export and DMA descriptor transforms (corner-turning extension,
// paper Section 6).
#include <gtest/gtest.h>

#include <array>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, dd_pass,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get());
}

constexpr auto dd_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b;
  dd_pass(a, b);
  return std::make_tuple(b);
}>;

TEST(GraphDot, ContainsKernelsAndIo) {
  const std::string dot = to_dot(dd_graph.view());
  EXPECT_NE(dot.find("digraph compute_graph"), std::string::npos);
  EXPECT_NE(dot.find("k0 [shape=box,label=\"dd_pass\\n(aie)\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("in0 [shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("out0 [shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("in0 -> k0"), std::string::npos);
  EXPECT_NE(dot.find("k0 -> out0"), std::string::npos);
}

TEST(GraphDot, EdgeLabelsShowTypes) {
  const std::string dot = to_dot(dd_graph.view());
  EXPECT_NE(dot.find("label=\"int\""), std::string::npos);
}

TEST(GraphDot, OptionsSuppressTypes) {
  DotOptions opts;
  opts.show_types = false;
  opts.graph_name = "g2";
  const std::string dot = to_dot(dd_graph.view(), opts);
  EXPECT_NE(dot.find("digraph g2"), std::string::npos);
  EXPECT_EQ(dot.find("label=\"int\""), std::string::npos);
}

// --- DMA transforms ---

using Block4x4 = std::array<int, 16>;

TEST(Dma, CornerTurnTransposes) {
  Block4x4 in{};
  for (int i = 0; i < 16; ++i) in[static_cast<std::size_t>(i)] = i;
  const Block4x4 out = cgsim::dma::CornerTurn<4, 4>{}(in);
  // in is row-major 4x4; out must be its transpose.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(out[c * 4 + r], in[r * 4 + c]);
    }
  }
}

TEST(Dma, CornerTurnIsInvolutionForSquare) {
  Block4x4 in{};
  for (int i = 0; i < 16; ++i) in[static_cast<std::size_t>(i)] = i * 7 - 3;
  const auto once = cgsim::dma::CornerTurn<4, 4>{}(in);
  EXPECT_EQ((cgsim::dma::CornerTurn<4, 4>{}(once)), in);
}

TEST(Dma, RectangularCornerTurn) {
  std::array<int, 6> in{1, 2, 3, 4, 5, 6};  // 2x3 row-major
  const auto out = cgsim::dma::CornerTurn<2, 3>{}(in);
  // 3x2 row-major result.
  EXPECT_EQ(out, (std::array<int, 6>{1, 4, 2, 5, 3, 6}));
}

TEST(Dma, Stride1D) {
  std::array<int, 8> in{0, 1, 2, 3, 4, 5, 6, 7};
  const auto out = cgsim::dma::Stride1D<3>{}(in);
  EXPECT_EQ(out, (std::array<int, 8>{0, 3, 6, 1, 4, 7, 2, 5}));
}

COMPUTE_KERNEL(aie, dd_block_pass,
               KernelReadPort<Block4x4> in,
               KernelWritePort<Block4x4> out) {
  while (true) co_await out.put(co_await in.get());
}

constexpr auto dd_block_graph = make_compute_graph_v<[](
    IoConnector<Block4x4> a) {
  IoConnector<Block4x4> b;
  dd_block_pass(a, b);
  return std::make_tuple(b);
}>;

TEST(Dma, SourceAppliesCornerTurnDuringTransfer) {
  Block4x4 blk{};
  for (int i = 0; i < 16; ++i) blk[static_cast<std::size_t>(i)] = i;
  std::vector<Block4x4> in{blk};
  std::vector<Block4x4> out;
  RuntimeContext ctx{dd_block_graph.view()};
  ctx.add_stream_source<Block4x4>(0, std::span<const Block4x4>{in}, 1,
                                  cgsim::dma::CornerTurn<4, 4>{});
  ctx.add_stream_sink<Block4x4>(0, out);
  ctx.run_coop();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (cgsim::dma::CornerTurn<4, 4>{}(blk)));
}

TEST(Dma, SinkTransformUndoesSourceTransform) {
  Block4x4 blk{};
  for (int i = 0; i < 16; ++i) blk[static_cast<std::size_t>(i)] = 100 - i;
  std::vector<Block4x4> in{blk};
  std::vector<Block4x4> out;
  RuntimeContext ctx{dd_block_graph.view()};
  ctx.add_stream_source<Block4x4>(0, std::span<const Block4x4>{in}, 1,
                                  cgsim::dma::CornerTurn<4, 4>{});
  ctx.add_stream_sink<Block4x4>(0, out, cgsim::dma::CornerTurn<4, 4>{});
  ctx.run_coop();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], blk);  // turn + turn = identity
}

}  // namespace

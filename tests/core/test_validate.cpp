// Structural graph validation over constexpr graphs, dynamic graphs, the
// ported apps, and deliberately corrupted views.
#include <gtest/gtest.h>

#include "apps/bilinear.hpp"
#include "apps/bitonic.hpp"
#include "apps/farrow.hpp"
#include "apps/fir.hpp"
#include "apps/gemm.hpp"
#include "apps/iir.hpp"
#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"
#include "core/validate.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, va_pass,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get());
}

constexpr auto va_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b;
  va_pass(a, b);
  return std::make_tuple(b);
}>;

TEST(Validate, ConstexprGraphsAreValidByConstruction) {
  EXPECT_TRUE(validate_graph(va_graph.view()).empty());
}

TEST(Validate, AllPortedAppsAreValid) {
  for (const GraphView& g :
       {apps::bitonic::graph.view(), apps::bilinear::graph.view(),
        apps::iir::graph.view(), apps::farrow::graph.view(),
        apps::fir::graph.view(), apps::gemm::graph.view()}) {
    const auto issues = validate_graph(g);
    EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues[0]);
  }
}

TEST(Validate, DynamicBuilderProducesValidGraphs) {
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  const int z = b.add_edge<int>();
  b.add_kernel(va_pass, {a, z});
  b.add_input(a);
  b.add_output(z);
  const auto issues = validate_graph(b.view());
  EXPECT_TRUE(issues.empty()) << (issues.empty() ? "" : issues[0]);
}

// --- corrupted views ---

struct Corruptible {
  std::vector<FlatKernel> kernels;
  std::vector<FlatPort> ports;
  std::vector<FlatEdge> edges;
  std::vector<FlatGlobal> inputs;
  std::vector<FlatGlobal> outputs;

  static Corruptible from(const GraphView& g) {
    return Corruptible{{g.kernels.begin(), g.kernels.end()},
                       {g.ports.begin(), g.ports.end()},
                       {g.edges.begin(), g.edges.end()},
                       {g.inputs.begin(), g.inputs.end()},
                       {g.outputs.begin(), g.outputs.end()}};
  }
  [[nodiscard]] GraphView view() const {
    return GraphView{kernels, ports, edges, inputs, outputs};
  }
};

bool mentions(const std::vector<std::string>& issues,
              std::string_view needle) {
  for (const auto& i : issues) {
    if (i.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(Validate, DetectsBadEdgeIndex) {
  auto c = Corruptible::from(va_graph.view());
  c.ports[0].edge = 99;
  EXPECT_TRUE(mentions(validate_graph(c.view()), "invalid edge"));
}

TEST(Validate, DetectsConsumerCountMismatch) {
  auto c = Corruptible::from(va_graph.view());
  c.edges[static_cast<std::size_t>(c.inputs[0].edge)].n_consumers = 5;
  EXPECT_TRUE(
      mentions(validate_graph(c.view()), "consumer count mismatch"));
}

TEST(Validate, DetectsDuplicateEndpoints) {
  auto c = Corruptible::from(apps::gemm::graph.view());
  // Give two read ports of one edge the same endpoint.
  int edge_with_two = -1;
  for (std::size_t e = 0; e < c.edges.size(); ++e) {
    if (c.edges[e].n_consumers >= 1) continue;
  }
  // gemm_acc reads two distinct edges; duplicate an endpoint artificially
  // on the accumulator output's edge consumers instead: simpler -- set the
  // global output endpoint equal to an existing one after adding a fake
  // read port... Easiest reliable corruption: clone endpoint 0.
  for (FlatPort& p : c.ports) {
    if (p.is_read && p.endpoint == 0 && edge_with_two == -1) {
      edge_with_two = p.edge;
    } else if (p.is_read && p.edge == edge_with_two && p.endpoint != 0) {
      p.endpoint = 0;
      const auto issues = validate_graph(c.view());
      EXPECT_TRUE(mentions(issues, "duplicates endpoint") ||
                  mentions(issues, "missing endpoint"));
      return;
    }
  }
  // Fallback: corrupt the bitonic output endpoint.
  auto c2 = Corruptible::from(va_graph.view());
  c2.outputs[0].endpoint = 7;
  EXPECT_TRUE(mentions(validate_graph(c2.view()), "missing endpoint"));
}

TEST(Validate, DetectsMissingThunk) {
  auto c = Corruptible::from(va_graph.view());
  c.kernels[0].thunk = nullptr;
  EXPECT_TRUE(mentions(validate_graph(c.view()), "no runtime thunk"));
}

TEST(Validate, DetectsWriterlessEdge) {
  auto c = Corruptible::from(va_graph.view());
  // Drop the global input: its edge keeps a reader but loses its writer.
  c.inputs.clear();
  const auto issues = validate_graph(c.view());
  EXPECT_TRUE(mentions(issues, "producer count mismatch") ||
              mentions(issues, "no writer"));
}

TEST(Validate, DetectsNonPositiveCapacity) {
  auto c = Corruptible::from(va_graph.view());
  c.edges[0].capacity = 0;
  EXPECT_TRUE(mentions(validate_graph(c.view()), "non-positive capacity"));
}

TEST(Validate, DetectsTypeDisagreement) {
  auto c = Corruptible::from(va_graph.view());
  c.inputs[0].type = type_id<float>();
  EXPECT_TRUE(mentions(validate_graph(c.view()), "type disagrees"));
}

}  // namespace

// Interactive streaming sessions: incremental push/poll embedding of a
// compute graph in a host application loop.
#include <gtest/gtest.h>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, ss_double,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(2 * co_await in.get());
}

COMPUTE_KERNEL(aie, ss_pairsum,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) {
    const int a = co_await in.get();
    const int b = co_await in.get();
    co_await out.put(a + b);
  }
}

constexpr auto ss_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b;
  ss_double(a, b);
  return std::make_tuple(b);
}>;

constexpr auto ss_pair_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b;
  ss_pairsum(a, b);
  return std::make_tuple(b);
}>;

TEST(Session, PushPollRoundTrip) {
  InteractiveSession s{ss_graph.view()};
  ASSERT_TRUE(s.push<int>(0, 21));
  const auto v = s.poll<int>(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_FALSE(s.poll<int>(0).has_value());  // nothing more yet
}

TEST(Session, OutputsArriveOnlyWhenComputable) {
  InteractiveSession s{ss_pair_graph.view()};
  ASSERT_TRUE(s.push<int>(0, 1));
  EXPECT_FALSE(s.poll<int>(0).has_value());  // pair incomplete
  ASSERT_TRUE(s.push<int>(0, 2));
  const auto v = s.poll<int>(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 3);
}

TEST(Session, InterleavedStreaming) {
  InteractiveSession s{ss_graph.view()};
  std::vector<int> got;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(s.push<int>(0, i));
    if (i % 3 == 0) {
      while (auto v = s.poll<int>(0)) got.push_back(*v);
    }
  }
  while (auto v = s.poll<int>(0)) got.push_back(*v);
  ASSERT_EQ(got.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], 2 * i);
  }
}

TEST(Session, BackPressureReportsFullAndRecovers) {
  // Without polling, the default capacity eventually exerts back-pressure.
  InteractiveSession s{ss_graph.view()};
  int accepted = 0;
  while (accepted < 10000 && s.push<int>(0, accepted)) ++accepted;
  EXPECT_GT(accepted, 0);
  EXPECT_LT(accepted, 10000);  // back-pressure kicked in
  // Draining frees space again.
  int drained = 0;
  while (auto v = s.poll<int>(0)) {
    EXPECT_EQ(*v, 2 * drained);
    ++drained;
  }
  EXPECT_GT(drained, 0);
  EXPECT_TRUE(s.push<int>(0, accepted));
}

TEST(Session, FinishTerminatesKernels) {
  InteractiveSession s{ss_graph.view()};
  ASSERT_TRUE(s.push<int>(0, 1));
  EXPECT_FALSE(s.drained());
  s.finish();
  // The remaining output is still retrievable after finish().
  const auto v = s.poll<int>(0);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 2);
  EXPECT_TRUE(s.drained());
}

TEST(Session, PushAfterFinishThrows) {
  InteractiveSession s{ss_graph.view()};
  s.finish();
  EXPECT_THROW((void)s.push<int>(0, 1), std::logic_error);
}

TEST(Session, TypeAndIndexChecks) {
  InteractiveSession s{ss_graph.view()};
  EXPECT_THROW((void)s.push<float>(0, 1.0f), TypeMismatchError);
  EXPECT_THROW((void)s.push<int>(5, 1), std::out_of_range);
  EXPECT_THROW((void)s.poll<float>(0), TypeMismatchError);
  EXPECT_THROW((void)s.poll<int>(3), std::out_of_range);
}

}  // namespace

namespace {

inline constexpr cgsim::PortSettings ss_rtp{.rtp = true};

COMPUTE_KERNEL(aie, ss_scale_rtp,
               cgsim::KernelReadPort<int> in,
               cgsim::KernelReadPort<int, ss_rtp> factor,
               cgsim::KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await factor.get());
  }
}

constexpr auto ss_rtp_graph = cgsim::make_compute_graph_v<[](
    cgsim::IoConnector<int> data, cgsim::IoConnector<int> f) {
  cgsim::IoConnector<int> out;
  ss_scale_rtp(data, f, out);
  return std::make_tuple(out);
}>;

TEST(Session, RuntimeParameterUpdatesLive) {
  cgsim::InteractiveSession s{ss_rtp_graph.view()};
  ASSERT_TRUE(s.push<int>(1, 10));  // set the RTP first
  ASSERT_TRUE(s.push<int>(0, 1));
  EXPECT_EQ(s.poll<int>(0).value_or(-1), 10);
  // Update the runtime parameter mid-stream, as AIE RTPs allow.
  ASSERT_TRUE(s.push<int>(1, 100));
  ASSERT_TRUE(s.push<int>(0, 2));
  EXPECT_EQ(s.poll<int>(0).value_or(-1), 200);
}

}  // namespace

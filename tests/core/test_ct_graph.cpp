// Compile-time graph construction tests (paper Sections 3.3-3.4, Figure 4).
#include <gtest/gtest.h>

#include <tuple>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, ct_pass,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get());
}

COMPUTE_KERNEL(aie, ct_add,
               KernelReadPort<int> a,
               KernelReadPort<int> b,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

COMPUTE_KERNEL(noextract, ct_host_sink_stage,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get());
}

COMPUTE_KERNEL(aie, ct_gen,
               KernelWritePort<int> out) {
  for (int i = 0; i < 4; ++i) co_await out.put(i);
}

// --- Figure 4: two chained kernels, one input, one output ---
constexpr auto fig4_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b, c;
  ct_pass(a, b);
  ct_pass(b, c);
  return std::make_tuple(c);
}>;

TEST(CtGraph, Figure4Counts) {
  static_assert(fig4_graph.counts.kernels == 2);
  static_assert(fig4_graph.counts.edges == 3);
  static_assert(fig4_graph.counts.ports == 4);
  static_assert(fig4_graph.counts.inputs == 1);
  static_assert(fig4_graph.counts.outputs == 1);
  SUCCEED();
}

TEST(CtGraph, Figure4Topology) {
  const GraphView g = fig4_graph.view();
  ASSERT_EQ(g.kernels.size(), 2u);
  EXPECT_EQ(g.kernels[0].name, "ct_pass");
  EXPECT_EQ(g.kernels[1].name, "ct_pass");
  EXPECT_EQ(g.kernels[0].realm, Realm::aie);
  // The two kernels share exactly one edge (b), and the graph input/output
  // edges are distinct from it.
  const FlatPort& k0_in = g.ports[static_cast<std::size_t>(
      g.kernels[0].first_port)];
  const FlatPort& k0_out = g.ports[static_cast<std::size_t>(
      g.kernels[0].first_port + 1)];
  EXPECT_TRUE(k0_in.is_read);
  EXPECT_FALSE(k0_out.is_read);
  // One kernel reads the global input, the other writes the global output,
  // and they are chained through a shared middle edge.
  const int in_edge = g.inputs[0].edge;
  const int out_edge = g.outputs[0].edge;
  EXPECT_NE(in_edge, out_edge);
  int middle = -1;
  for (const FlatPort& p : g.ports) {
    if (p.edge != in_edge && p.edge != out_edge) middle = p.edge;
  }
  ASSERT_NE(middle, -1);
  int readers = 0;
  int writers = 0;
  for (const FlatPort& p : g.ports) {
    if (p.edge == middle) (p.is_read ? readers : writers)++;
  }
  EXPECT_EQ(readers, 1);
  EXPECT_EQ(writers, 1);
}

TEST(CtGraph, Figure4Execution) {
  std::vector<int> in{5, 6, 7};
  std::vector<int> out;
  const RunResult r = fig4_graph(in, out);
  EXPECT_EQ(out, (std::vector<int>{5, 6, 7}));
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.items_consumed, 3u);
}

// --- broadcast: one connector feeding two readers ---
constexpr auto bcast_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> l, r, sum;
  ct_pass(a, l);
  ct_pass(a, r);
  ct_add(l, r, sum);
  return std::make_tuple(sum);
}>;

TEST(CtGraph, BroadcastConsumers) {
  const GraphView g = bcast_graph.view();
  const int in_edge = g.inputs[0].edge;
  EXPECT_EQ(g.edges[static_cast<std::size_t>(in_edge)].n_consumers, 2);
  // source is the only producer
  EXPECT_EQ(g.edges[static_cast<std::size_t>(in_edge)].n_producers, 1);
}

TEST(CtGraph, BroadcastExecution) {
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  bcast_graph(in, out);
  EXPECT_EQ(out, (std::vector<int>{2, 4, 6}));
}

// --- merge: two writers into one connector ---
constexpr auto merge_graph = make_compute_graph_v<[](IoConnector<int> a,
                                                     IoConnector<int> b) {
  IoConnector<int> m;
  ct_pass(a, m);
  ct_pass(b, m);
  return std::make_tuple(m);
}>;

TEST(CtGraph, MergeProducers) {
  const GraphView g = merge_graph.view();
  const int out_edge = g.outputs[0].edge;
  EXPECT_EQ(g.edges[static_cast<std::size_t>(out_edge)].n_producers, 2);
}

TEST(CtGraph, MergeExecutionDeliversAllItems) {
  std::vector<int> a{1, 2}, b{10, 20};
  std::vector<int> out;
  const RunResult r = merge_graph(a, b, out);
  EXPECT_EQ(r.items_consumed, 4u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 10, 20}));
}

// --- generator kernels: construction order independence (union-find) ---
constexpr auto gen_graph = make_compute_graph_v<[]() {
  IoConnector<int> produced, result;
  // ct_gen is instantiated before its connector touches anything else;
  // its arena merges later when ct_pass links them.
  ct_gen(produced);
  ct_pass(produced, result);
  return std::make_tuple(result);
}>;

TEST(CtGraph, GeneratorKernelNoInputs) {
  static_assert(gen_graph.counts.inputs == 0);
  std::vector<int> out;
  gen_graph(out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

// --- out-of-order construction: kernels instantiated sink-first ---
constexpr auto reversed_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b, c;
  ct_pass(b, c);  // downstream kernel first: lives in its own arena ...
  ct_pass(a, b);  // ... merged here through the shared connector b
  return std::make_tuple(c);
}>;

TEST(CtGraph, OutOfOrderConstruction) {
  static_assert(reversed_graph.counts.kernels == 2);
  std::vector<int> in{42};
  std::vector<int> out;
  reversed_graph(in, out);
  EXPECT_EQ(out, (std::vector<int>{42}));
}

// --- attributes (paper Section 3.4) ---
constexpr auto attr_graph = make_compute_graph_v<[](IoConnector<int> a) {
  a.attr("plio_name", "DataIn0").attr("depth", 7LL);
  IoConnector<int> b;
  ct_pass(a, b);
  b.attr("plio_name", "DataOut0");
  return std::make_tuple(b);
}>;

TEST(CtGraph, AttributesSurviveFlattening) {
  const GraphView g = attr_graph.view();
  const FlatEdge& in_edge =
      g.edges[static_cast<std::size_t>(g.inputs[0].edge)];
  ASSERT_EQ(in_edge.n_attrs, 2);
  EXPECT_EQ(in_edge.attrs[0].key, "plio_name");
  EXPECT_EQ(in_edge.attrs[0].str_value, "DataIn0");
  EXPECT_FALSE(in_edge.attrs[0].is_int);
  EXPECT_EQ(in_edge.attrs[1].key, "depth");
  EXPECT_EQ(in_edge.attrs[1].int_value, 7);
  EXPECT_TRUE(in_edge.attrs[1].is_int);
  const FlatEdge& out_edge =
      g.edges[static_cast<std::size_t>(g.outputs[0].edge)];
  ASSERT_EQ(out_edge.n_attrs, 1);
  EXPECT_EQ(out_edge.attrs[0].str_value, "DataOut0");
}

// --- channel capacity override ---
constexpr auto cap_graph = make_compute_graph_v<[](IoConnector<int> a) {
  a.capacity(3);
  IoConnector<int> b;
  ct_pass(a, b);
  return std::make_tuple(b);
}>;

TEST(CtGraph, CapacityOverrideSurvivesFlattening) {
  const GraphView g = cap_graph.view();
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.inputs[0].edge)].capacity, 3);
  // Still executes correctly with a tiny buffer.
  std::vector<int> in(100);
  for (int i = 0; i < 100; ++i) in[static_cast<std::size_t>(i)] = i;
  std::vector<int> out;
  cap_graph(in, out);
  EXPECT_EQ(out, in);
}

// --- realm metadata ---
constexpr auto realm_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b, c;
  ct_pass(a, b);
  ct_host_sink_stage(b, c);
  return std::make_tuple(c);
}>;

TEST(CtGraph, RealmsRecorded) {
  const GraphView g = realm_graph.view();
  EXPECT_EQ(g.kernels[0].realm, Realm::aie);
  EXPECT_EQ(g.kernels[1].realm, Realm::noextract);
}

TEST(CtGraph, KernelHandleMetadata) {
  EXPECT_EQ(decltype(ct_pass)::name(), "ct_pass");
  EXPECT_EQ(decltype(ct_pass)::realm(), Realm::aie);
  EXPECT_EQ(decltype(ct_pass)::arity(), 2u);
  EXPECT_EQ(decltype(ct_add)::arity(), 3u);
}

// --- same connector read twice by one kernel ---
constexpr auto selfpair_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> doubled;
  ct_add(a, a, doubled);
  return std::make_tuple(doubled);
}>;

TEST(CtGraph, SameConnectorTwiceBroadcastsToBothPorts) {
  const GraphView g = selfpair_graph.view();
  const int in_edge = g.inputs[0].edge;
  EXPECT_EQ(g.edges[static_cast<std::size_t>(in_edge)].n_consumers, 2);
  std::vector<int> in{3, 4};
  std::vector<int> out;
  selfpair_graph(in, out);
  EXPECT_EQ(out, (std::vector<int>{6, 8}));
}

}  // namespace

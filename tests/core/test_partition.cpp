// Graph partitioning for sharded cooperative execution: connected
// components, greedy bisection of oversized components, RTP-edge
// contraction, and the edge home/cross classification the runtime builds
// its channels from.
#include <gtest/gtest.h>

#include <vector>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, pt_stage,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

inline constexpr PortSettings pt_rtp{.rtp = true};

COMPUTE_KERNEL(aie, pt_scaled,
               KernelReadPort<int> in,
               KernelReadPort<int, pt_rtp> factor,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() * co_await factor.get());
}

COMPUTE_KERNEL(aie, pt_rtp_relay,
               KernelReadPort<int> in,
               KernelWritePort<int, pt_rtp> factor) {
  while (true) co_await factor.put(co_await in.get());
}

// Four disjoint two-stage pipelines: the canonical multi-component case.
constexpr auto four_pipes = make_compute_graph_v<[](
    IoConnector<int> a, IoConnector<int> b, IoConnector<int> c,
    IoConnector<int> d) {
  IoConnector<int> a1, a2, b1, b2, c1, c2, d1, d2;
  pt_stage(a, a1);
  pt_stage(a1, a2);
  pt_stage(b, b1);
  pt_stage(b1, b2);
  pt_stage(c, c1);
  pt_stage(c1, c2);
  pt_stage(d, d1);
  pt_stage(d1, d2);
  return std::make_tuple(a2, b2, c2, d2);
}>;

// One six-stage chain: splitting it requires cutting edges.
constexpr auto chain6 = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> s1, s2, s3, s4, s5, s6;
  pt_stage(a, s1);
  pt_stage(s1, s2);
  pt_stage(s2, s3);
  pt_stage(s3, s4);
  pt_stage(s4, s5);
  pt_stage(s5, s6);
  return std::make_tuple(s6);
}>;

// An RTP edge inside a chain: the relay feeds pt_scaled's factor port.
constexpr auto rtp_chain = make_compute_graph_v<[](IoConnector<int> a,
                                                   IoConnector<int> f) {
  IoConnector<int> s1, s2, factor, s3;
  pt_stage(a, s1);
  pt_rtp_relay(f, factor);
  pt_scaled(s1, factor, s2);
  pt_stage(s2, s3);
  return std::make_tuple(s3);
}>;

/// Recomputes, from the flattened view, whether the kernel endpoints of
/// `edge` span more than one shard under `p`.
bool edge_spans_shards(const GraphView& g, const Partition& p, int edge) {
  int seen = -1;
  for (std::size_t ki = 0; ki < g.kernels.size(); ++ki) {
    const FlatKernel& k = g.kernels[ki];
    for (int pi = 0; pi < k.nports; ++pi) {
      if (g.ports[static_cast<std::size_t>(k.first_port + pi)].edge != edge) {
        continue;
      }
      const int s = p.kernel_shard[ki];
      if (seen < 0) {
        seen = s;
      } else if (s != seen) {
        return true;
      }
    }
  }
  return false;
}

TEST(Partition, SingleShardHasNoCrossEdges) {
  const GraphView g = chain6.view();
  const Partition p = partition_graph(g, 1);
  EXPECT_EQ(p.n_shards, 1);
  EXPECT_EQ(p.n_cross_edges, 0);
  for (int s : p.kernel_shard) EXPECT_EQ(s, 0);
}

TEST(Partition, DisjointComponentsSplitWithoutCuts) {
  const GraphView g = four_pipes.view();
  const Partition p = partition_graph(g, 4);
  EXPECT_EQ(p.n_components, 4);
  EXPECT_EQ(p.n_shards, 4);
  EXPECT_EQ(p.n_cross_edges, 0);
  // Connected kernels stay together; all four shards are used.
  std::vector<int> used(4, 0);
  for (int s : p.kernel_shard) used[static_cast<std::size_t>(s)] = 1;
  EXPECT_EQ(used, (std::vector<int>{1, 1, 1, 1}));
}

TEST(Partition, FewerShardsThanComponentsBalancesLoad) {
  const GraphView g = four_pipes.view();
  const Partition p = partition_graph(g, 2);
  EXPECT_EQ(p.n_shards, 2);
  EXPECT_EQ(p.n_cross_edges, 0);
  std::vector<int> load(2, 0);
  for (int s : p.kernel_shard) ++load[static_cast<std::size_t>(s)];
  EXPECT_EQ(load[0], 4);  // 8 kernels, two components per shard
  EXPECT_EQ(load[1], 4);
}

TEST(Partition, OversizedComponentIsBisected) {
  const GraphView g = chain6.view();
  const Partition p = partition_graph(g, 2);
  EXPECT_EQ(p.n_components, 1);
  EXPECT_EQ(p.n_shards, 2);
  EXPECT_GE(p.n_cross_edges, 1);
  std::vector<int> load(2, 0);
  for (int s : p.kernel_shard) ++load[static_cast<std::size_t>(s)];
  EXPECT_EQ(load[0] + load[1], 6);
  EXPECT_GT(load[0], 0);
  EXPECT_GT(load[1], 0);
}

TEST(Partition, CrossFlagsMatchShardAssignment) {
  const GraphView g = chain6.view();
  const Partition p = partition_graph(g, 3);
  int cross = 0;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    EXPECT_EQ(p.edge_cross[e] != 0,
              edge_spans_shards(g, p, static_cast<int>(e)))
        << "edge " << e;
    cross += p.edge_cross[e];
  }
  EXPECT_EQ(cross, p.n_cross_edges);
}

TEST(Partition, EdgeHomeIsAnEndpointShard) {
  const GraphView g = four_pipes.view();
  const Partition p = partition_graph(g, 4);
  for (std::size_t ki = 0; ki < g.kernels.size(); ++ki) {
    const FlatKernel& k = g.kernels[ki];
    for (int pi = 0; pi < k.nports; ++pi) {
      const FlatPort& fp = g.ports[static_cast<std::size_t>(k.first_port + pi)];
      const std::size_t e = static_cast<std::size_t>(fp.edge);
      if (p.edge_cross[e] == 0) {
        // Every endpoint of an intra-shard edge lives on the home shard.
        EXPECT_EQ(p.edge_home[e], p.kernel_shard[ki]);
      }
    }
  }
}

TEST(Partition, RtpEdgesAreNeverCut) {
  const GraphView g = rtp_chain.view();
  // Even asking for one shard per kernel must keep the RTP edge whole.
  const Partition p = partition_graph(g, static_cast<int>(g.kernels.size()));
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    if (g.edges[e].settings.rtp) {
      EXPECT_EQ(p.edge_cross[e], 0) << "RTP edge " << e << " was cut";
    }
  }
}

TEST(Partition, ShardCountClampedToKernelCount) {
  const GraphView g = chain6.view();
  const Partition p = partition_graph(g, 64);
  EXPECT_LE(p.n_shards, 6);
  EXPECT_GE(p.n_shards, 1);
}

TEST(Partition, NonPositiveMaxShardsMeansOne) {
  const GraphView g = four_pipes.view();
  const Partition p = partition_graph(g, 0);
  EXPECT_EQ(p.n_shards, 1);
  EXPECT_EQ(p.n_cross_edges, 0);
}

}  // namespace

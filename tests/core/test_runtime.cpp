// Runtime graph instantiation and execution (paper Sections 3.6-3.8):
// deserialization, global I/O, scheduling to quiescence, termination,
// error propagation and the thread-per-kernel execution strategy.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, rt_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, rt_sum_pairs,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) {
    const int a = co_await in.get();
    const int b = co_await in.get();
    co_await out.put(a + b);
  }
}

COMPUTE_KERNEL(aie, rt_throws,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  const int v = co_await in.get();
  if (v == 13) throw std::runtime_error{"unlucky"};
  co_await out.put(v);
}

inline constexpr PortSettings rt_rtp{.rtp = true};

COMPUTE_KERNEL(aie, rt_scale_by_rtp,
               KernelReadPort<int> in,
               KernelReadPort<int, rt_rtp> factor,
               KernelWritePort<int> out) {
  while (true) {
    const int v = co_await in.get();
    co_await out.put(v * co_await factor.get());
  }
}

COMPUTE_KERNEL(aie, rt_count_to_rtp,
               KernelReadPort<int> in,
               KernelWritePort<int, rt_rtp> count) {
  int n = 0;
  while (true) {
    co_await in.get();
    ++n;
    co_await count.put(n);
  }
}

constexpr auto inc_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b;
  rt_inc(a, b);
  return std::make_tuple(b);
}>;

TEST(Runtime, BasicPipelineDeliversInOrder) {
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  std::vector<int> out;
  const RunResult r = inc_graph(in, out);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i + 1);
  }
  EXPECT_FALSE(r.deadlocked);
  EXPECT_GT(r.resumes, 0u);
}

TEST(Runtime, EmptyInputTerminatesCleanly) {
  std::vector<int> in;
  std::vector<int> out;
  const RunResult r = inc_graph(in, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(r.deadlocked);
}

TEST(Runtime, RepetitionsReplayTheSource) {
  std::vector<int> in{1, 2};
  std::vector<int> out;
  inc_graph.run(RunOptions{.mode = ExecMode::coop, .repetitions = 3}, in,
                out);
  EXPECT_EQ(out, (std::vector<int>{2, 3, 2, 3, 2, 3}));
}

TEST(Runtime, TypeMismatchThrows) {
  std::vector<float> wrong{1.0f};
  std::vector<int> out;
  EXPECT_THROW(inc_graph(wrong, out), TypeMismatchError);
}

TEST(Runtime, ArityMismatchThrows) {
  std::vector<int> in{1};
  EXPECT_THROW(inc_graph(in), std::invalid_argument);
}

TEST(Runtime, KernelExceptionPropagates) {
  constexpr auto g = make_compute_graph_v<[](IoConnector<int> a) {
    IoConnector<int> b;
    rt_throws(a, b);
    return std::make_tuple(b);
  }>;
  std::vector<int> in{13};
  std::vector<int> out;
  EXPECT_THROW(g(in, out), std::runtime_error);
}

// A kernel consuming two items per output: odd trailing item simply stays
// unconsumed; the run still terminates (quiescence).
constexpr auto pairs_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> b;
  rt_sum_pairs(a, b);
  return std::make_tuple(b);
}>;

TEST(Runtime, PairwiseConsumptionAndStarvationTermination) {
  std::vector<int> in{1, 2, 3, 4, 5};  // 5th has no partner
  std::vector<int> out;
  const RunResult r = pairs_graph(in, out);
  EXPECT_EQ(out, (std::vector<int>{3, 7}));
  EXPECT_FALSE(r.deadlocked);  // StreamClosed unwind is clean termination
}

// --- runtime parameters (paper Section 3.7) ---

constexpr auto rtp_in_graph = make_compute_graph_v<[](IoConnector<int> data,
                                                      IoConnector<int> f) {
  IoConnector<int> out;
  rt_scale_by_rtp(data, f, out);
  return std::make_tuple(out);
}>;

TEST(Runtime, RtpSourceScalar) {
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  rtp_in_graph(in, 10, out);
  EXPECT_EQ(out, (std::vector<int>{10, 20, 30}));
}

TEST(Runtime, RtpEdgeIsMarkedInFlatGraph) {
  const GraphView g = rtp_in_graph.view();
  EXPECT_TRUE(g.edges[static_cast<std::size_t>(g.inputs[1].edge)]
                  .settings.rtp);
  EXPECT_FALSE(
      g.edges[static_cast<std::size_t>(g.inputs[0].edge)].settings.rtp);
}

TEST(Runtime, RtpScalarTypeMismatchThrows) {
  std::vector<int> in{1};
  std::vector<int> out;
  EXPECT_THROW(rtp_in_graph(in, 2.5, out), TypeMismatchError);
}

constexpr auto rtp_out_graph = make_compute_graph_v<[](IoConnector<int> a) {
  IoConnector<int> n;
  rt_count_to_rtp(a, n);
  return std::make_tuple(n);
}>;

TEST(Runtime, RtpSinkReceivesFinalValue) {
  std::vector<int> in{5, 5, 5, 5};
  int count = -1;
  rtp_out_graph(in, count);
  EXPECT_EQ(count, 4);
}

// --- thread-per-kernel execution (x86sim model) ---

TEST(Runtime, ThreadedMatchesCooperative) {
  std::vector<int> in(500);
  std::iota(in.begin(), in.end(), 10);
  std::vector<int> coop_out, thr_out;
  inc_graph.run(RunOptions{.mode = ExecMode::coop}, in, coop_out);
  inc_graph.run(RunOptions{.mode = ExecMode::threaded}, in, thr_out);
  EXPECT_EQ(coop_out, thr_out);
}

TEST(Runtime, ThreadedRtp) {
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  rtp_in_graph.run(RunOptions{.mode = ExecMode::threaded}, in, 7, out);
  EXPECT_EQ(out, (std::vector<int>{7, 14, 21}));
}

TEST(Runtime, SimModeRequiresEngine) {
  std::vector<int> in{1};
  std::vector<int> out;
  EXPECT_THROW(inc_graph.run(RunOptions{.mode = ExecMode::sim}, in, out),
               std::invalid_argument);
}

// --- multiple invocations of the same constexpr graph are independent ---

TEST(Runtime, RepeatedInvocationsAreIsolated) {
  std::vector<int> in{1};
  for (int i = 0; i < 5; ++i) {
    std::vector<int> out;
    inc_graph(in, out);
    ASSERT_EQ(out, (std::vector<int>{2}));
  }
}

// --- stats surface ---

TEST(Runtime, StatsCountItemsAndKernels) {
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  const RunResult r = inc_graph(in, out);
  EXPECT_EQ(r.items_consumed, 3u);
  // kernel + source + sink all complete
  EXPECT_EQ(r.kernels_completed, 3);
  EXPECT_EQ(r.kernels_destroyed, 0);
  EXPECT_TRUE(r.blocked_kernels.empty());
}

// Deadlock surface: a two-kernel cycle with no external input starves.
COMPUTE_KERNEL(aie, rt_cycle_a,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get());
}

TEST(Runtime, CycleWithoutSeedIsReportedAsDeadlock) {
  constexpr auto g = make_compute_graph_v<[](IoConnector<int> seed) {
    IoConnector<int> x, y;
    rt_cycle_a(x, y);
    rt_cycle_a(y, x);
    // Seed merges into the cycle so the graph is connected; the external
    // output taps the cycle.
    rt_cycle_a(seed, x);
    return std::make_tuple(y);
  }>;
  // No input data: the cycle never receives a seed element, every kernel
  // blocks forever, quiescence reports the blocked kernels.
  std::vector<int> in;
  std::vector<int> out;
  const RunResult r = g(in, out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.blocked_kernels.empty());
}

}  // namespace

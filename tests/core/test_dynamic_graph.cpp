// Runtime (Graphtoy-style) graph construction baseline -- the design
// alternative the paper rejects in Section 3.1, implemented for comparison
// and for data-dependent topologies.
#include <gtest/gtest.h>

#include <numeric>

#include "core/cgsim.hpp"
#include "core/dynamic_graph.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, dg_inc,
               KernelReadPort<int> in,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, dg_add,
               KernelReadPort<int> a,
               KernelReadPort<int> b,
               KernelWritePort<int> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

inline constexpr PortSettings dg_rtp{.rtp = true};

COMPUTE_KERNEL(aie, dg_rtp_scale,
               KernelReadPort<int> in,
               KernelReadPort<int, dg_rtp> factor,
               KernelWritePort<int> out) {
  while (true) {
    co_await out.put(co_await in.get() * co_await factor.get());
  }
}

TEST(DynamicGraph, BuildAndRunPipeline) {
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  const int m = b.add_edge<int>();
  const int z = b.add_edge<int>();
  b.add_kernel(dg_inc, {a, m});
  b.add_kernel(dg_inc, {m, z});
  b.add_input(a);
  b.add_output(z);
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  const RunResult r = b(in, out);
  EXPECT_EQ(out, (std::vector<int>{3, 4, 5}));
  EXPECT_FALSE(r.deadlocked);
}

TEST(DynamicGraph, DataDependentTopology) {
  // The case compile-time construction cannot express: the pipeline depth
  // comes from a runtime value.
  for (int depth : {1, 3, 7}) {
    rt::DynamicGraphBuilder b;
    int prev = b.add_edge<int>();
    b.add_input(prev);
    for (int i = 0; i < depth; ++i) {
      const int next = b.add_edge<int>();
      b.add_kernel(dg_inc, {prev, next});
      prev = next;
    }
    b.add_output(prev);
    std::vector<int> in{100};
    std::vector<int> out;
    b(in, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 100 + depth) << "depth " << depth;
  }
}

TEST(DynamicGraph, BroadcastAndMerge) {
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  const int l = b.add_edge<int>();
  const int r = b.add_edge<int>();
  const int s = b.add_edge<int>();
  b.add_kernel(dg_inc, {a, l});
  b.add_kernel(dg_inc, {a, r});  // a broadcasts to two readers
  b.add_kernel(dg_add, {l, r, s});
  b.add_input(a);
  b.add_output(s);
  std::vector<int> in{5};
  std::vector<int> out;
  b(in, out);
  EXPECT_EQ(out, (std::vector<int>{12}));  // (5+1)+(5+1)
}

TEST(DynamicGraph, TypeMismatchThrowsAtConstruction) {
  rt::DynamicGraphBuilder b;
  const int f = b.add_edge<float>();
  const int o = b.add_edge<int>();
  EXPECT_THROW(b.add_kernel(dg_inc, {f, o}), std::invalid_argument);
}

TEST(DynamicGraph, ArityMismatchThrows) {
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  EXPECT_THROW(b.add_kernel(dg_inc, {a}), std::invalid_argument);
}

TEST(DynamicGraph, EdgeIdOutOfRangeThrows) {
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  EXPECT_THROW(b.add_kernel(dg_inc, {a, 42}), std::out_of_range);
}

TEST(DynamicGraph, SettingsConflictThrowsAtConstruction) {
  // The dynamic counterpart of tests/compile_fail/rtp_stream_conflict.
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  const int m = b.add_edge<int>();
  const int o = b.add_edge<int>();
  b.add_kernel(dg_inc, {a, m});  // plain stream write into m
  EXPECT_THROW(b.add_kernel(dg_rtp_scale, {a, m, o}),  // RTP read of m
               std::invalid_argument);
}

TEST(DynamicGraph, RtpWorks) {
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  const int f = b.add_edge<int>(1, PortSettings{.rtp = true});
  const int o = b.add_edge<int>();
  b.add_kernel(dg_rtp_scale, {a, f, o});
  b.add_input(a);
  b.add_input(f);
  b.add_output(o);
  std::vector<int> in{1, 2, 3};
  std::vector<int> out;
  b(in, 10, out);
  EXPECT_EQ(out, (std::vector<int>{10, 20, 30}));
}

TEST(DynamicGraph, MatchesEquivalentConstexprGraph) {
  // Same topology built both ways produces identical results.
  static constexpr auto ct_graph = make_compute_graph_v<[](
      IoConnector<int> a) {
    IoConnector<int> l, r, s;
    dg_inc(a, l);
    dg_inc(a, r);
    dg_add(l, r, s);
    return std::make_tuple(s);
  }>;
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  const int l = b.add_edge<int>();
  const int r = b.add_edge<int>();
  const int s = b.add_edge<int>();
  b.add_kernel(dg_inc, {a, l});
  b.add_kernel(dg_inc, {a, r});
  b.add_kernel(dg_add, {l, r, s});
  b.add_input(a);
  b.add_output(s);

  std::vector<int> in(200);
  std::iota(in.begin(), in.end(), -100);
  std::vector<int> ct_out, dyn_out;
  ct_graph(in, ct_out);
  b(in, dyn_out);
  EXPECT_EQ(ct_out, dyn_out);
}

TEST(DynamicGraph, ThreadedBackend) {
  rt::DynamicGraphBuilder b;
  const int a = b.add_edge<int>();
  const int z = b.add_edge<int>();
  b.add_kernel(dg_inc, {a, z});
  b.add_input(a);
  b.add_output(z);
  std::vector<int> in{7};
  std::vector<int> out;
  b.run(RunOptions{.mode = ExecMode::threaded}, in, out);
  EXPECT_EQ(out, (std::vector<int>{8}));
}

}  // namespace

// Port settings merging and attribute plumbing (paper Section 3.4).
#include <gtest/gtest.h>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

TEST(PortSettings, DefaultsAreUnspecified) {
  constexpr PortSettings s{};
  EXPECT_EQ(s.beat_bits, 0);
  EXPECT_FALSE(s.rtp);
  EXPECT_EQ(s.buffer, BufferMode::unspecified);
  EXPECT_EQ(effective_beat_bits(s), 32);
}

TEST(PortSettings, MergeUnspecifiedTakesConcrete) {
  const MergeResult r = try_merge_settings(
      PortSettings{}, PortSettings{.beat_bits = 64,
                                   .rtp = false,
                                   .buffer = BufferMode::stream,
                                   .window_size = 0});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.merged.beat_bits, 64);
  EXPECT_EQ(r.merged.buffer, BufferMode::stream);
}

TEST(PortSettings, MergeEqualSettingsOk) {
  const PortSettings s{.beat_bits = 128,
                       .rtp = false,
                       .buffer = BufferMode::window,
                       .window_size = 256};
  const MergeResult r = try_merge_settings(s, s);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.merged, s);
}

TEST(PortSettings, MergeConflictingBeatWidthFails) {
  const MergeResult r = try_merge_settings(PortSettings{.beat_bits = 32},
                                           PortSettings{.beat_bits = 64});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("beat"), std::string_view::npos);
}

TEST(PortSettings, MergeRtpWithStreamFails) {
  const MergeResult r =
      try_merge_settings(PortSettings{.rtp = true}, PortSettings{.rtp = false});
  EXPECT_FALSE(r.ok);
}

TEST(PortSettings, MergeConflictingBufferModesFails) {
  const MergeResult r = try_merge_settings(
      PortSettings{.buffer = BufferMode::stream},
      PortSettings{.buffer = BufferMode::pingpong});
  EXPECT_FALSE(r.ok);
}

TEST(PortSettings, MergeConflictingWindowSizesFails) {
  const MergeResult r = try_merge_settings(
      PortSettings{.buffer = BufferMode::window, .window_size = 128},
      PortSettings{.buffer = BufferMode::window, .window_size = 256});
  EXPECT_FALSE(r.ok);
}

TEST(PortSettings, MergeIsCommutative) {
  const PortSettings a{.beat_bits = 64};
  const PortSettings b{.buffer = BufferMode::stream};
  const MergeResult ab = try_merge_settings(a, b);
  const MergeResult ba = try_merge_settings(b, a);
  ASSERT_TRUE(ab.ok);
  ASSERT_TRUE(ba.ok);
  EXPECT_EQ(ab.merged, ba.merged);
}

TEST(PortSettings, MergeOrFailIsConstexprForCompatible) {
  constexpr PortSettings merged = merge_settings_or_fail(
      PortSettings{.beat_bits = 32}, PortSettings{});
  static_assert(merged.beat_bits == 32);
  SUCCEED();
}

// Property sweep: merging with the default (all-unspecified) settings is an
// identity, for every combination.
class MergeIdentity : public ::testing::TestWithParam<PortSettings> {};

TEST_P(MergeIdentity, DefaultIsNeutralElement) {
  const PortSettings s = GetParam();
  const MergeResult left = try_merge_settings(PortSettings{}, s);
  const MergeResult right = try_merge_settings(s, PortSettings{});
  ASSERT_TRUE(left.ok);
  ASSERT_TRUE(right.ok);
  EXPECT_EQ(left.merged, s);
  EXPECT_EQ(right.merged, s);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, MergeIdentity,
    ::testing::Values(
        PortSettings{},
        PortSettings{.beat_bits = 32},
        PortSettings{.beat_bits = 64},
        PortSettings{.beat_bits = 128},
        PortSettings{.buffer = BufferMode::stream},
        PortSettings{.buffer = BufferMode::window, .window_size = 64},
        PortSettings{.buffer = BufferMode::pingpong, .window_size = 2048},
        PortSettings{.beat_bits = 64,
                     .rtp = false,
                     .buffer = BufferMode::stream,
                     .window_size = 0}));

TEST(Attributes, Equality) {
  const Attribute a{"k", "v", 0, false};
  const Attribute b{"k", "v", 0, false};
  const Attribute c{"k", "", 3, true};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TypeId, DistinctPerType) {
  EXPECT_NE(type_id<int>(), type_id<float>());
  EXPECT_EQ(type_id<int>(), type_id<int>());
  struct Local {};
  EXPECT_NE(type_id<Local>(), type_id<int>());
}

TEST(TypeId, NamesAreSpelledOut) {
  EXPECT_EQ(type_name<int>(), "int");
  EXPECT_EQ(type_name<float>(), "float");
}

TEST(RealmNames, Spellings) {
  EXPECT_EQ(realm_name(Realm::aie), "aie");
  EXPECT_EQ(realm_name(Realm::noextract), "noextract");
  EXPECT_EQ(realm_name(Realm::host), "host");
}

TEST(BufferModeNames, Spellings) {
  EXPECT_EQ(buffer_mode_name(BufferMode::stream), "stream");
  EXPECT_EQ(buffer_mode_name(BufferMode::pingpong), "pingpong");
}

}  // namespace

// Cross-shard channel (coop_mt backend): SPSC and MPMC transfer across
// real threads, batched bulk operations, close propagation with partial
// batches, and the no-consumer discard path.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "core/channel.hpp"

namespace {

using namespace cgsim;

/// Thread-safe executor stub: ShardChannel completions may fire on any
/// thread, so the collector locks. The unit tests below stay on the
/// non-blocking paths and never actually park a coroutine.
class CollectingExecutor final : public Executor {
 public:
  void make_ready(std::coroutine_handle<> h, std::uint64_t) override {
    std::lock_guard lk{m_};
    ready_.push_back(h);
  }
  [[nodiscard]] std::size_t count() {
    std::lock_guard lk{m_};
    return ready_.size();
  }

 private:
  std::mutex m_;
  std::vector<std::coroutine_handle<>> ready_;
};

TEST(ShardChannel, SpscOrderPreservedAcrossThreads) {
  CollectingExecutor exec;
  ShardChannel<int> ch{/*consumers=*/1, /*capacity=*/8, &exec};
  ch.set_producers(1);
  constexpr int kN = 20000;

  std::thread producer{[&] {
    for (int i = 0; i < kN; ++i) {
      while (ch.try_push(i) == ChanStatus::blocked) std::this_thread::yield();
    }
    ch.producer_done();
  }};

  std::vector<int> got;
  got.reserve(kN);
  for (;;) {
    int v = 0;
    const ChanStatus st = ch.try_pop(0, v);
    if (st == ChanStatus::ok) {
      got.push_back(v);
    } else if (st == ChanStatus::closed) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
  }
}

TEST(ShardChannel, BulkTransfersAmortizeAcrossTheRing) {
  CollectingExecutor exec;
  ShardChannel<int> ch{1, /*capacity=*/16, &exec};
  ch.set_producers(1);
  constexpr int kN = 4096;
  constexpr std::size_t kBatch = 24;  // exceeds capacity: forces wrap+partial

  std::thread producer{[&] {
    std::vector<int> batch(kBatch);
    int next = 0;
    while (next < kN) {
      const std::size_t n =
          std::min(kBatch, static_cast<std::size_t>(kN - next));
      std::iota(batch.begin(), batch.begin() + static_cast<int>(n), next);
      std::size_t sent = 0;
      while (sent < n) {
        ChanStatus st{};
        sent += ch.try_push_n(batch.data() + sent, n - sent, st);
        if (st == ChanStatus::blocked) std::this_thread::yield();
        ASSERT_NE(st, ChanStatus::closed);
      }
      next += static_cast<int>(n);
    }
    ch.producer_done();
  }};

  std::vector<int> got;
  got.reserve(kN);
  std::vector<int> buf(31);  // co-prime with batch and capacity
  for (;;) {
    ChanStatus st{};
    const std::size_t k = ch.try_pop_n(0, buf.data(), buf.size(), st);
    got.insert(got.end(), buf.begin(),
               buf.begin() + static_cast<int>(k));
    if (st == ChanStatus::closed) break;
    if (k == 0) std::this_thread::yield();
  }
  producer.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i);
  }
}

TEST(ShardChannel, CloseDeliversPartialBatchThenClosed) {
  CollectingExecutor exec;
  ShardChannel<int> ch{1, 16, &exec};
  ch.set_producers(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(ch.try_push(i), ChanStatus::ok);
  }
  ch.producer_done();

  int buf[8] = {};
  ChanStatus st{};
  const std::size_t k = ch.try_pop_n(0, buf, 8, st);
  EXPECT_EQ(k, 5u);  // short count at end-of-stream
  EXPECT_EQ(st, ChanStatus::closed);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(buf[i], i);

  int v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::closed);
}

TEST(ShardChannel, ConsumerRetirementClosesProducers) {
  CollectingExecutor exec;
  ShardChannel<int> ch{1, 4, &exec};
  ch.set_producers(1);
  ASSERT_EQ(ch.try_push(1), ChanStatus::ok);
  ch.consumer_done(0);
  EXPECT_EQ(ch.try_push(2), ChanStatus::closed);
}

TEST(ShardChannel, BroadcastDeliversToEveryConsumer) {
  CollectingExecutor exec;
  ShardChannel<int> ch{/*consumers=*/2, /*capacity=*/8, &exec};
  ch.set_producers(1);
  constexpr int kN = 5000;

  auto consume = [&](int consumer, std::vector<int>& got) {
    for (;;) {
      int v = 0;
      const ChanStatus st = ch.try_pop(consumer, v);
      if (st == ChanStatus::ok) {
        got.push_back(v);
      } else if (st == ChanStatus::closed) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  };
  std::vector<int> got0, got1;
  std::thread c0{[&] { consume(0, got0); }};
  std::thread c1{[&] { consume(1, got1); }};
  for (int i = 0; i < kN; ++i) {
    while (ch.try_push(i) == ChanStatus::blocked) std::this_thread::yield();
  }
  ch.producer_done();
  c0.join();
  c1.join();

  ASSERT_EQ(got0.size(), static_cast<std::size_t>(kN));
  ASSERT_EQ(got1.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(got0[static_cast<std::size_t>(i)], i);
    ASSERT_EQ(got1[static_cast<std::size_t>(i)], i);
  }
}

TEST(ShardChannel, MpmcTwoProducersStayPerProducerOrdered) {
  CollectingExecutor exec;
  ShardChannel<int> ch{1, 8, &exec};
  ch.set_producers(2);
  constexpr int kPerProducer = 5000;

  // Producer p writes p * kPerProducer + i for increasing i.
  auto produce = [&](int p) {
    for (int i = 0; i < kPerProducer; ++i) {
      const int v = p * kPerProducer + i;
      while (ch.try_push(v) == ChanStatus::blocked) std::this_thread::yield();
    }
    ch.producer_done();
  };
  std::thread p0{[&] { produce(0); }};
  std::thread p1{[&] { produce(1); }};

  std::vector<int> got;
  got.reserve(2 * kPerProducer);
  for (;;) {
    int v = 0;
    const ChanStatus st = ch.try_pop(0, v);
    if (st == ChanStatus::ok) {
      got.push_back(v);
    } else if (st == ChanStatus::closed) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  p0.join();
  p1.join();

  ASSERT_EQ(got.size(), static_cast<std::size_t>(2 * kPerProducer));
  // Data from one producer must not reorder relative to itself.
  int next0 = 0;
  int next1 = kPerProducer;
  for (int v : got) {
    if (v < kPerProducer) {
      ASSERT_EQ(v, next0++);
    } else {
      ASSERT_EQ(v, next1++);
    }
  }
}

TEST(ShardChannel, NoConsumersDiscardsButCounts) {
  CollectingExecutor exec;
  ShardChannel<int> ch{/*consumers=*/0, 4, &exec};
  ch.set_producers(1);
  ChanStatus st{};
  EXPECT_EQ(ch.try_push_n(nullptr, 0, st), 0u);
  const int data[3] = {1, 2, 3};
  EXPECT_EQ(ch.try_push_n(data, 3, st), 3u);
  EXPECT_EQ(st, ChanStatus::ok);
  EXPECT_EQ(ch.total_pushed(), 3u);
}

TEST(ShardChannel, BlockingOpsAreRejected) {
  CollectingExecutor exec;
  ShardChannel<int> ch{1, 4, &exec};
  ch.set_producers(1);
  int v = 0;
  EXPECT_THROW((void)ch.blocking_push(1), std::logic_error);
  EXPECT_THROW((void)ch.blocking_pop(0, v), std::logic_error);
}

}  // namespace

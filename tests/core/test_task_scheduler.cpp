// KernelTask lifetime semantics and cooperative scheduler behaviour
// (paper Section 3.8).
#include <gtest/gtest.h>

#include <coroutine>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

struct Probe {
  int constructed = 0;
  int destroyed = 0;
};

struct Tracker {
  Probe* p;
  explicit Tracker(Probe* probe) : p(probe) { ++p->constructed; }
  ~Tracker() { ++p->destroyed; }
  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;
};

KernelTask make_counting_task(int* counter) {
  ++*counter;
  co_return;
}

KernelTask make_tracking_task(Probe* probe) {
  Tracker t{probe};
  co_await std::suspend_always{};
  co_return;
}

KernelTask make_throwing_task() {
  throw std::runtime_error{"boom"};
  co_return;  // unreachable; makes this a coroutine
}

KernelTask make_stream_closed_task() {
  throw StreamClosed{};
  co_return;
}

TEST(KernelTask, StartsSuspended) {
  int count = 0;
  KernelTask t = make_counting_task(&count);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.done());
  EXPECT_EQ(count, 0);  // initial_suspend: body not entered yet
  t.handle().resume();
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(t.done());
}

TEST(KernelTask, DestroyReleasesSuspendedFrame) {
  Probe p;
  {
    KernelTask t = make_tracking_task(&p);
    t.handle().resume();  // runs to the inner suspend point
    EXPECT_EQ(p.constructed, 1);
    EXPECT_EQ(p.destroyed, 0);
  }  // ~KernelTask destroys the suspended coroutine; RAII must run
  EXPECT_EQ(p.destroyed, 1);
}

TEST(KernelTask, MoveTransfersOwnership) {
  int count = 0;
  KernelTask a = make_counting_task(&count);
  KernelTask b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  b.handle().resume();
  EXPECT_TRUE(b.done());
  KernelTask c;
  c = std::move(b);
  EXPECT_TRUE(c.done());
}

TEST(KernelTask, ExceptionIsCaptured) {
  KernelTask t = make_throwing_task();
  t.handle().resume();
  EXPECT_TRUE(t.done());
  ASSERT_NE(t.error(), nullptr);
  EXPECT_THROW(std::rethrow_exception(t.error()), std::runtime_error);
}

TEST(KernelTask, StreamClosedIsNormalTermination) {
  KernelTask t = make_stream_closed_task();
  t.handle().resume();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.error(), nullptr);  // not an error
  EXPECT_TRUE(t.handle().promise().closed_normally);
}

TEST(Scheduler, RunsTasksFifo) {
  Scheduler s;
  std::vector<int> order;
  auto make = [&](int id) -> KernelTask {
    order.push_back(id);
    co_return;
  };
  KernelTask t1 = make(1);
  KernelTask t2 = make(2);
  KernelTask t3 = make(3);
  s.make_ready(t2.handle(), 0);
  s.make_ready(t1.handle(), 0);
  s.make_ready(t3.handle(), 0);
  int finished = 0;
  const auto resumes = s.run([&](std::coroutine_handle<>) { ++finished; });
  EXPECT_EQ(resumes, 3u);
  EXPECT_EQ(finished, 3);
  EXPECT_EQ(order, (std::vector<int>{2, 1, 3}));
}

TEST(Scheduler, IdleAndPending) {
  Scheduler s;
  EXPECT_TRUE(s.idle());
  int count = 0;
  KernelTask t = make_counting_task(&count);
  s.make_ready(t.handle(), 0);
  EXPECT_FALSE(s.idle());
  EXPECT_EQ(s.pending(), 1u);
  s.run([](std::coroutine_handle<>) {});
  EXPECT_TRUE(s.idle());
}

TEST(Scheduler, InstrumentedRunSeparatesResumeTime) {
  Scheduler s;
  int count = 0;
  KernelTask t = make_counting_task(&count);
  s.make_ready(t.handle(), 0);
  double resume_s = -1.0;
  const auto resumes =
      s.run_instrumented([](std::coroutine_handle<>) {}, resume_s);
  EXPECT_EQ(resumes, 1u);
  EXPECT_GE(resume_s, 0.0);
  EXPECT_EQ(count, 1);
}

}  // namespace

// Serialization of compute graphs into the flattened constexpr structure
// (paper Section 3.5) and its GraphView.
#include <gtest/gtest.h>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

COMPUTE_KERNEL(aie, fl_scale,
               KernelReadPort<float> in,
               KernelWritePort<float> out) {
  while (true) co_await out.put(2.0f * co_await in.get());
}

COMPUTE_KERNEL(aie, fl_pair,
               KernelReadPort<float> a,
               KernelReadPort<int> b,
               KernelWritePort<double> out) {
  while (true) {
    co_await out.put(static_cast<double>(co_await a.get()) +
                     co_await b.get());
  }
}

constexpr auto mixed_graph = make_compute_graph_v<[](IoConnector<float> x,
                                                     IoConnector<int> y) {
  IoConnector<float> scaled;
  IoConnector<double> result;
  fl_scale(x, scaled);
  fl_pair(scaled, y, result);
  return std::make_tuple(result);
}>;

TEST(Flatten, CountsMatchStructure) {
  static_assert(mixed_graph.counts.kernels == 2);
  static_assert(mixed_graph.counts.edges == 4);
  static_assert(mixed_graph.counts.ports == 5);
  static_assert(mixed_graph.counts.inputs == 2);
  static_assert(mixed_graph.counts.outputs == 1);
  SUCCEED();
}

TEST(Flatten, EdgeTypesPreserved) {
  const GraphView g = mixed_graph.view();
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.inputs[0].edge)].type,
            type_id<float>());
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.inputs[1].edge)].type,
            type_id<int>());
  EXPECT_EQ(g.edges[static_cast<std::size_t>(g.outputs[0].edge)].type,
            type_id<double>());
}

TEST(Flatten, VTablesReconstructTypeInfo) {
  const GraphView g = mixed_graph.view();
  const FlatEdge& out_edge =
      g.edges[static_cast<std::size_t>(g.outputs[0].edge)];
  const ChannelVTable& vt = out_edge.vtable();
  EXPECT_EQ(vt.type_name, "double");
  EXPECT_EQ(vt.elem_size, sizeof(double));
  EXPECT_EQ(vt.elem_align, alignof(double));
}

TEST(Flatten, PortEndpointsAreDense) {
  const GraphView g = mixed_graph.view();
  // Every read port has a non-negative endpoint unique per edge.
  for (const FlatKernel& k : g.kernels) {
    for (int p = 0; p < k.nports; ++p) {
      const FlatPort& fp =
          g.ports[static_cast<std::size_t>(k.first_port + p)];
      if (fp.is_read) {
        EXPECT_GE(fp.endpoint, 0);
        EXPECT_LT(fp.endpoint,
                  g.edges[static_cast<std::size_t>(fp.edge)].n_consumers);
      } else {
        EXPECT_EQ(fp.endpoint, -1);
      }
    }
  }
  // Global outputs get consumer endpoints too.
  EXPECT_GE(g.outputs[0].endpoint, 0);
}

TEST(Flatten, ProducerConsumerCountsIncludeGlobalIo) {
  const GraphView g = mixed_graph.view();
  const FlatEdge& in0 = g.edges[static_cast<std::size_t>(g.inputs[0].edge)];
  EXPECT_EQ(in0.n_producers, 1);  // the source
  EXPECT_EQ(in0.n_consumers, 1);  // fl_scale
  const FlatEdge& out = g.edges[static_cast<std::size_t>(g.outputs[0].edge)];
  EXPECT_EQ(out.n_producers, 1);  // fl_pair
  EXPECT_EQ(out.n_consumers, 1);  // the sink
}

TEST(Flatten, ThunksAreCallable) {
  // The serialized thunks reconstruct runnable kernels (paper Section 3.6);
  // instantiating the runtime exercises every thunk.
  RuntimeContext ctx{mixed_graph.view()};
  EXPECT_EQ(ctx.tasks().size(), 2u);
  for (const auto& rec : ctx.tasks()) {
    EXPECT_TRUE(rec.task.valid());
    EXPECT_FALSE(rec.task.done());
  }
}

TEST(Flatten, KernelNamesInView) {
  const GraphView g = mixed_graph.view();
  EXPECT_EQ(g.kernels[0].name, "fl_scale");
  EXPECT_EQ(g.kernels[1].name, "fl_pair");
}

// A lambda returning a single connector (not a tuple) is normalized.
constexpr auto single_ret_graph = make_compute_graph_v<[](
    IoConnector<float> x) {
  IoConnector<float> y;
  fl_scale(x, y);
  return y;
}>;

TEST(Flatten, SingleConnectorReturnIsNormalized) {
  static_assert(single_ret_graph.counts.outputs == 1);
  std::vector<float> in{1.0f};
  std::vector<float> out;
  single_ret_graph(in, out);
  EXPECT_EQ(out, (std::vector<float>{2.0f}));
}

// Deep pipeline: flattening scales to larger graphs.
constexpr auto deep_graph = make_compute_graph_v<[](IoConnector<float> a) {
  IoConnector<float> s1, s2, s3, s4, s5, s6, s7;
  fl_scale(a, s1);
  fl_scale(s1, s2);
  fl_scale(s2, s3);
  fl_scale(s3, s4);
  fl_scale(s4, s5);
  fl_scale(s5, s6);
  fl_scale(s6, s7);
  return std::make_tuple(s7);
}>;

TEST(Flatten, DeepPipeline) {
  static_assert(deep_graph.counts.kernels == 7);
  static_assert(deep_graph.counts.edges == 8);
  std::vector<float> in{1.0f, -2.0f};
  std::vector<float> out;
  deep_graph(in, out);
  EXPECT_EQ(out, (std::vector<float>{128.0f, -256.0f}));
}

}  // namespace

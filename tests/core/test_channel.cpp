// Broadcast MPMC channel semantics (paper Section 3.6): fixed capacity,
// per-consumer complete copies, per-producer ordering, closure behaviour.
#include <gtest/gtest.h>

#include <coroutine>
#include <thread>
#include <vector>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

/// Executor stub recording wakes.
class StubExec final : public Executor {
 public:
  void make_ready(std::coroutine_handle<> h, std::uint64_t nb) override {
    wakes.emplace_back(h, nb);
  }
  std::vector<std::pair<std::coroutine_handle<>, std::uint64_t>> wakes;
};

TEST(CoopChannel, FifoSingleConsumer) {
  StubExec ex;
  CoopChannel<int> ch{1, 8, &ex};
  ch.set_producers(1);
  EXPECT_EQ(ch.try_push(1), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::ok);
  int v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::blocked);
}

TEST(CoopChannel, CapacityBlocksProducer) {
  StubExec ex;
  CoopChannel<int> ch{1, 2, &ex};
  ch.set_producers(1);
  EXPECT_EQ(ch.try_push(1), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::blocked);
  int v = 0;
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::ok);
}

TEST(CoopChannel, BroadcastEveryConsumerSeesEverything) {
  StubExec ex;
  CoopChannel<int> ch{3, 8, &ex};
  ch.set_producers(1);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(ch.try_push(i), ChanStatus::ok);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) {
      int v = -1;
      ASSERT_EQ(ch.try_pop(c, v), ChanStatus::ok) << "consumer " << c;
      EXPECT_EQ(v, i);
    }
  }
}

TEST(CoopChannel, SlowestConsumerGatesRingReuse) {
  StubExec ex;
  CoopChannel<int> ch{2, 2, &ex};
  ch.set_producers(1);
  ASSERT_EQ(ch.try_push(1), ChanStatus::ok);
  ASSERT_EQ(ch.try_push(2), ChanStatus::ok);
  int v = 0;
  // Fast consumer drains; slow consumer has not read anything.
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::blocked);  // gated by consumer 1
  ASSERT_EQ(ch.try_pop(1, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::ok);
}

TEST(CoopChannel, ConsumerDoneReleasesGating) {
  StubExec ex;
  CoopChannel<int> ch{2, 1, &ex};
  ch.set_producers(1);
  ASSERT_EQ(ch.try_push(1), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::blocked);
  ch.consumer_done(1);  // the slow consumer leaves
  int v = 0;
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::ok);
}

TEST(CoopChannel, AllConsumersDoneClosesPush) {
  StubExec ex;
  CoopChannel<int> ch{1, 4, &ex};
  ch.set_producers(1);
  ch.consumer_done(0);
  EXPECT_EQ(ch.try_push(1), ChanStatus::closed);
}

TEST(CoopChannel, ProducerDoneDrainsThenCloses) {
  StubExec ex;
  CoopChannel<int> ch{1, 4, &ex};
  ch.set_producers(1);
  ASSERT_EQ(ch.try_push(7), ChanStatus::ok);
  ch.producer_done();
  int v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::ok);  // drains remaining data
  EXPECT_EQ(v, 7);
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::closed);
}

TEST(CoopChannel, ZeroConsumersDiscardsWrites) {
  StubExec ex;
  CoopChannel<int> ch{0, 2, &ex};
  ch.set_producers(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ch.try_push(i), ChanStatus::ok);
  }
  EXPECT_EQ(ch.total_pushed(), 10u);
}

TEST(CoopChannel, StatsCountPerConsumer) {
  StubExec ex;
  CoopChannel<int> ch{2, 8, &ex};
  ch.set_producers(1);
  ch.try_push(1);
  ch.try_push(2);
  int v = 0;
  ch.try_pop(0, v);
  EXPECT_EQ(ch.popped(0), 1u);
  EXPECT_EQ(ch.popped(1), 0u);
  EXPECT_EQ(ch.total_pushed(), 2u);
}

TEST(CoopChannel, BlockingOpsAreRejected) {
  StubExec ex;
  CoopChannel<int> ch{1, 2, &ex};
  int v = 0;
  EXPECT_THROW(ch.blocking_push(1), std::logic_error);
  EXPECT_THROW(ch.blocking_pop(0, v), std::logic_error);
}

// --- threaded channel ---

TEST(ThreadedChannel, BlockingRoundTrip) {
  ThreadedChannel<int> ch{1, 4};
  ch.set_producers(1);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(ch.blocking_push(i));
    ch.producer_done();
  });
  std::vector<int> got;
  int v = 0;
  while (ch.blocking_pop(0, v)) got.push_back(v);
  producer.join();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(ThreadedChannel, BroadcastTwoConsumers) {
  ThreadedChannel<int> ch{2, 4};
  ch.set_producers(1);
  std::vector<int> got0, got1;
  std::thread c0([&] {
    int v;
    while (ch.blocking_pop(0, v)) got0.push_back(v);
  });
  std::thread c1([&] {
    int v;
    while (ch.blocking_pop(1, v)) got1.push_back(v);
  });
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(ch.blocking_push(i));
  ch.producer_done();
  c0.join();
  c1.join();
  EXPECT_EQ(got0.size(), 50u);
  EXPECT_EQ(got0, got1);
}

TEST(ThreadedChannel, ConsumerDoneUnblocksProducer) {
  ThreadedChannel<int> ch{1, 1};
  ch.set_producers(1);
  ASSERT_TRUE(ch.blocking_push(1));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    ch.consumer_done(0);
  });
  // Full ring + departing consumer => push returns false (closed).
  EXPECT_FALSE(ch.blocking_push(2));
  closer.join();
}

TEST(ThreadedChannel, CoopOpsAreRejected) {
  ThreadedChannel<int> ch{1, 2};
  int v = 0;
  EXPECT_THROW(ch.try_push(1), std::logic_error);
  EXPECT_THROW(ch.try_pop(0, v), std::logic_error);
}

// --- RTP channel ---

TEST(RtpChannel, StickyLatestValue) {
  StubExec ex;
  RtpChannel<float> ch{1, ExecMode::coop, &ex};
  ch.set_producers(1);
  float v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::blocked);  // no value yet
  ASSERT_EQ(ch.try_push(1.5f), ChanStatus::ok);
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 1.5f);
  // Reading again returns the same value (non-consuming).
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 1.5f);
  // Overwrite.
  ASSERT_EQ(ch.try_push(2.5f), ChanStatus::ok);
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 2.5f);
}

TEST(RtpChannel, LatestForSinks) {
  StubExec ex;
  RtpChannel<int> ch{1, ExecMode::coop, &ex};
  ch.set_producers(1);
  int v = 0;
  EXPECT_FALSE(ch.latest(v));
  ch.try_push(9);
  ASSERT_TRUE(ch.latest(v));
  EXPECT_EQ(v, 9);
}

TEST(RtpChannel, ClosedWithoutValueReportsClosed) {
  StubExec ex;
  RtpChannel<int> ch{1, ExecMode::coop, &ex};
  ch.set_producers(1);
  ch.producer_done();
  int v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::closed);
}

// --- vtable factory ---

TEST(ChannelVTable, CreatesModeSpecificChannels) {
  StubExec ex;
  const ChannelVTable& vt = channel_vtable<int>();
  EXPECT_EQ(vt.elem_size, sizeof(int));
  EXPECT_EQ(vt.type_name, "int");
  std::unique_ptr<ChannelBase> coop{
      vt.create(ExecMode::coop, 1, 4, false, &ex)};
  std::unique_ptr<ChannelBase> thr{
      vt.create(ExecMode::threaded, 1, 4, false, &ex)};
  std::unique_ptr<ChannelBase> rtp{
      vt.create(ExecMode::coop, 1, 4, true, &ex)};
  EXPECT_NE(dynamic_cast<CoopChannel<int>*>(coop.get()), nullptr);
  EXPECT_NE(dynamic_cast<ThreadedChannel<int>*>(thr.get()), nullptr);
  EXPECT_NE(dynamic_cast<RtpChannel<int>*>(rtp.get()), nullptr);
}

}  // namespace

// Broadcast MPMC channel semantics (paper Section 3.6): fixed capacity,
// per-consumer complete copies, per-producer ordering, closure behaviour.
#include <gtest/gtest.h>

#include <array>
#include <coroutine>
#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

/// Executor stub recording wakes.
class StubExec final : public Executor {
 public:
  void make_ready(std::coroutine_handle<> h, std::uint64_t nb) override {
    wakes.emplace_back(h, nb);
  }
  std::vector<std::pair<std::coroutine_handle<>, std::uint64_t>> wakes;
};

TEST(CoopChannel, FifoSingleConsumer) {
  StubExec ex;
  CoopChannel<int> ch{1, 8, &ex};
  ch.set_producers(1);
  EXPECT_EQ(ch.try_push(1), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::ok);
  int v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 1);
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 2);
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::blocked);
}

TEST(CoopChannel, CapacityBlocksProducer) {
  StubExec ex;
  CoopChannel<int> ch{1, 2, &ex};
  ch.set_producers(1);
  EXPECT_EQ(ch.try_push(1), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::blocked);
  int v = 0;
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::ok);
}

TEST(CoopChannel, BroadcastEveryConsumerSeesEverything) {
  StubExec ex;
  CoopChannel<int> ch{3, 8, &ex};
  ch.set_producers(1);
  for (int i = 0; i < 5; ++i) ASSERT_EQ(ch.try_push(i), ChanStatus::ok);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) {
      int v = -1;
      ASSERT_EQ(ch.try_pop(c, v), ChanStatus::ok) << "consumer " << c;
      EXPECT_EQ(v, i);
    }
  }
}

TEST(CoopChannel, SlowestConsumerGatesRingReuse) {
  StubExec ex;
  CoopChannel<int> ch{2, 2, &ex};
  ch.set_producers(1);
  ASSERT_EQ(ch.try_push(1), ChanStatus::ok);
  ASSERT_EQ(ch.try_push(2), ChanStatus::ok);
  int v = 0;
  // Fast consumer drains; slow consumer has not read anything.
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::blocked);  // gated by consumer 1
  ASSERT_EQ(ch.try_pop(1, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(3), ChanStatus::ok);
}

TEST(CoopChannel, ConsumerDoneReleasesGating) {
  StubExec ex;
  CoopChannel<int> ch{2, 1, &ex};
  ch.set_producers(1);
  ASSERT_EQ(ch.try_push(1), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::blocked);
  ch.consumer_done(1);  // the slow consumer leaves
  int v = 0;
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(ch.try_push(2), ChanStatus::ok);
}

TEST(CoopChannel, AllConsumersDoneClosesPush) {
  StubExec ex;
  CoopChannel<int> ch{1, 4, &ex};
  ch.set_producers(1);
  ch.consumer_done(0);
  EXPECT_EQ(ch.try_push(1), ChanStatus::closed);
}

TEST(CoopChannel, ProducerDoneDrainsThenCloses) {
  StubExec ex;
  CoopChannel<int> ch{1, 4, &ex};
  ch.set_producers(1);
  ASSERT_EQ(ch.try_push(7), ChanStatus::ok);
  ch.producer_done();
  int v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::ok);  // drains remaining data
  EXPECT_EQ(v, 7);
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::closed);
}

TEST(CoopChannel, ZeroConsumersDiscardsWrites) {
  StubExec ex;
  CoopChannel<int> ch{0, 2, &ex};
  ch.set_producers(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ch.try_push(i), ChanStatus::ok);
  }
  EXPECT_EQ(ch.total_pushed(), 10u);
}

TEST(CoopChannel, StatsCountPerConsumer) {
  StubExec ex;
  CoopChannel<int> ch{2, 8, &ex};
  ch.set_producers(1);
  ch.try_push(1);
  ch.try_push(2);
  int v = 0;
  ch.try_pop(0, v);
  EXPECT_EQ(ch.popped(0), 1u);
  EXPECT_EQ(ch.popped(1), 0u);
  EXPECT_EQ(ch.total_pushed(), 2u);
}

TEST(CoopChannel, BlockingOpsAreRejected) {
  StubExec ex;
  CoopChannel<int> ch{1, 2, &ex};
  int v = 0;
  EXPECT_THROW(ch.blocking_push(1), std::logic_error);
  EXPECT_THROW(ch.blocking_pop(0, v), std::logic_error);
}

// --- threaded channel ---

TEST(ThreadedChannel, BlockingRoundTrip) {
  ThreadedChannel<int> ch{1, 4};
  ch.set_producers(1);
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) ASSERT_TRUE(ch.blocking_push(i));
    ch.producer_done();
  });
  std::vector<int> got;
  int v = 0;
  while (ch.blocking_pop(0, v)) got.push_back(v);
  producer.join();
  ASSERT_EQ(got.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(ThreadedChannel, BroadcastTwoConsumers) {
  ThreadedChannel<int> ch{2, 4};
  ch.set_producers(1);
  std::vector<int> got0, got1;
  std::thread c0([&] {
    int v;
    while (ch.blocking_pop(0, v)) got0.push_back(v);
  });
  std::thread c1([&] {
    int v;
    while (ch.blocking_pop(1, v)) got1.push_back(v);
  });
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(ch.blocking_push(i));
  ch.producer_done();
  c0.join();
  c1.join();
  EXPECT_EQ(got0.size(), 50u);
  EXPECT_EQ(got0, got1);
}

TEST(ThreadedChannel, ConsumerDoneUnblocksProducer) {
  ThreadedChannel<int> ch{1, 1};
  ch.set_producers(1);
  ASSERT_TRUE(ch.blocking_push(1));
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    ch.consumer_done(0);
  });
  // Full ring + departing consumer => push returns false (closed).
  EXPECT_FALSE(ch.blocking_push(2));
  closer.join();
}

TEST(ThreadedChannel, CoopOpsAreRejected) {
  ThreadedChannel<int> ch{1, 2};
  int v = 0;
  EXPECT_THROW(ch.try_push(1), std::logic_error);
  EXPECT_THROW(ch.try_pop(0, v), std::logic_error);
}

// --- RTP channel ---

TEST(RtpChannel, StickyLatestValue) {
  StubExec ex;
  RtpChannel<float> ch{1, ExecMode::coop, &ex};
  ch.set_producers(1);
  float v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::blocked);  // no value yet
  ASSERT_EQ(ch.try_push(1.5f), ChanStatus::ok);
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 1.5f);
  // Reading again returns the same value (non-consuming).
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 1.5f);
  // Overwrite.
  ASSERT_EQ(ch.try_push(2.5f), ChanStatus::ok);
  ASSERT_EQ(ch.try_pop(0, v), ChanStatus::ok);
  EXPECT_EQ(v, 2.5f);
}

TEST(RtpChannel, LatestForSinks) {
  StubExec ex;
  RtpChannel<int> ch{1, ExecMode::coop, &ex};
  ch.set_producers(1);
  int v = 0;
  EXPECT_FALSE(ch.latest(v));
  ch.try_push(9);
  ASSERT_TRUE(ch.latest(v));
  EXPECT_EQ(v, 9);
}

TEST(RtpChannel, ClosedWithoutValueReportsClosed) {
  StubExec ex;
  RtpChannel<int> ch{1, ExecMode::coop, &ex};
  ch.set_producers(1);
  ch.producer_done();
  int v = 0;
  EXPECT_EQ(ch.try_pop(0, v), ChanStatus::closed);
}

TEST(RtpChannel, ConsumerDoneIsIdempotent) {
  StubExec ex;
  RtpChannel<int> ch{2, ExecMode::coop, &ex};
  ch.set_producers(1);
  EXPECT_EQ(ch.consumers_open(), 2);
  ch.consumer_done(0);
  EXPECT_EQ(ch.consumers_open(), 1);
  // Repeated reports for the same endpoint (rtp sink attachment + task
  // teardown) must not decrement again.
  ch.consumer_done(0);
  ch.consumer_done(0);
  EXPECT_EQ(ch.consumers_open(), 1);
  ch.consumer_done(1);
  ch.consumer_done(1);
  EXPECT_EQ(ch.consumers_open(), 0);
}

// --- bulk operations ---

TEST(CoopChannelBulk, PushPopRoundTrip) {
  StubExec ex;
  CoopChannel<int> ch{1, 8, &ex};
  ch.set_producers(1);
  const std::array<int, 5> src{1, 2, 3, 4, 5};
  ChanStatus st{};
  EXPECT_EQ(ch.try_push_n(src.data(), src.size(), st), 5u);
  EXPECT_EQ(st, ChanStatus::ok);
  std::array<int, 5> dst{};
  EXPECT_EQ(ch.try_pop_n(0, dst.data(), dst.size(), st), 5u);
  EXPECT_EQ(st, ChanStatus::ok);
  EXPECT_EQ(dst, src);
  EXPECT_EQ(ch.total_pushed(), 5u);
  EXPECT_EQ(ch.popped(0), 5u);
}

TEST(CoopChannelBulk, WrapAroundCopies) {
  StubExec ex;
  CoopChannel<int> ch{1, 8, &ex};
  ch.set_producers(1);
  // Advance head and cursor past the middle of the ring so the next bulk
  // transfer is split at the wrap point.
  ChanStatus st{};
  std::array<int, 6> pre{10, 11, 12, 13, 14, 15};
  ASSERT_EQ(ch.try_push_n(pre.data(), pre.size(), st), 6u);
  std::array<int, 6> drain{};
  ASSERT_EQ(ch.try_pop_n(0, drain.data(), drain.size(), st), 6u);
  // head == cursor == 6; an 8-element batch spans slots 6,7,0..5.
  std::array<int, 8> src{0, 1, 2, 3, 4, 5, 6, 7};
  ASSERT_EQ(ch.try_push_n(src.data(), src.size(), st), 8u);
  EXPECT_EQ(st, ChanStatus::ok);
  std::array<int, 8> dst{};
  ASSERT_EQ(ch.try_pop_n(0, dst.data(), dst.size(), st), 8u);
  EXPECT_EQ(st, ChanStatus::ok);
  EXPECT_EQ(dst, src);
}

TEST(CoopChannelBulk, PartialPopReportsBlockedThenClosed) {
  StubExec ex;
  CoopChannel<int> ch{1, 8, &ex};
  ch.set_producers(1);
  ChanStatus st{};
  const std::array<int, 3> src{1, 2, 3};
  ASSERT_EQ(ch.try_push_n(src.data(), src.size(), st), 3u);
  std::array<int, 5> dst{};
  // More requested than buffered while the producer is still open.
  EXPECT_EQ(ch.try_pop_n(0, dst.data(), dst.size(), st), 3u);
  EXPECT_EQ(st, ChanStatus::blocked);
  ch.producer_done();
  EXPECT_EQ(ch.try_pop_n(0, dst.data(), dst.size(), st), 0u);
  EXPECT_EQ(st, ChanStatus::closed);
}

TEST(CoopChannelBulk, ParkedPopCompletesPartiallyAtClose) {
  StubExec ex;
  CoopChannel<int> ch{1, 8, &ex};
  ch.set_producers(1);
  std::array<int, 4> dst{};
  std::size_t moved = 0;
  ChanStatus st = ChanStatus::blocked;
  ch.add_bulk_pop_waiter({dst.data(), dst.size(), 0, &moved, &st,
                          std::coroutine_handle<>{}, 0, 0});
  EXPECT_EQ(st, ChanStatus::blocked);  // parked: nothing buffered yet
  ASSERT_EQ(ch.try_push(1), ChanStatus::ok);
  ASSERT_EQ(ch.try_push(2), ChanStatus::ok);
  EXPECT_EQ(st, ChanStatus::blocked);  // still short of 4
  ch.producer_done();
  EXPECT_EQ(st, ChanStatus::closed);  // completed with the partial batch
  EXPECT_EQ(moved, 2u);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[1], 2);
  ASSERT_EQ(ex.wakes.size(), 1u);
}

TEST(CoopChannelBulk, PushBlockedByLaggingBroadcastConsumer) {
  StubExec ex;
  CoopChannel<int> ch{2, 4, &ex};
  ch.set_producers(1);
  ChanStatus st{};
  const std::array<int, 4> first{0, 1, 2, 3};
  ASSERT_EQ(ch.try_push_n(first.data(), first.size(), st), 4u);
  // Fast consumer drains; consumer 1 still gates the ring.
  std::array<int, 4> dst{};
  ASSERT_EQ(ch.try_pop_n(0, dst.data(), dst.size(), st), 4u);
  const std::array<int, 2> more{4, 5};
  EXPECT_EQ(ch.try_push_n(more.data(), more.size(), st), 0u);
  EXPECT_EQ(st, ChanStatus::blocked);
  // The laggard advances two elements; exactly that much space opens up.
  ASSERT_EQ(ch.try_pop_n(1, dst.data(), 2, st), 2u);
  EXPECT_EQ(ch.try_push_n(more.data(), more.size(), st), 2u);
  EXPECT_EQ(st, ChanStatus::ok);
  // Both consumers still see the complete stream.
  ASSERT_EQ(ch.try_pop_n(0, dst.data(), 2, st), 2u);
  EXPECT_EQ(dst[0], 4);
  EXPECT_EQ(dst[1], 5);
  ASSERT_EQ(ch.try_pop_n(1, dst.data(), 4, st), 4u);
  EXPECT_EQ(dst[0], 2);
  EXPECT_EQ(dst[3], 5);
}

TEST(CoopChannelBulk, ParkedPushStreamsThroughSmallRing) {
  StubExec ex;
  CoopChannel<int> ch{1, 2, &ex};
  ch.set_producers(1);
  // A batch larger than the ring capacity: the waiter parks and streams
  // through the ring as the consumer drains it.
  const std::array<int, 6> src{1, 2, 3, 4, 5, 6};
  std::size_t moved = 0;
  ChanStatus st = ChanStatus::blocked;
  ch.add_bulk_push_waiter(
      {src.data(), src.size(), 0, &moved, &st, std::coroutine_handle<>{}});
  EXPECT_EQ(st, ChanStatus::blocked);  // 2 in the ring, 4 still pending
  std::vector<int> got;
  int v = 0;
  while (ch.try_pop(0, v) == ChanStatus::ok) got.push_back(v);
  EXPECT_EQ(st, ChanStatus::ok);
  EXPECT_EQ(moved, 6u);
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  ASSERT_EQ(ex.wakes.size(), 1u);  // exactly one wake per suspension
}

TEST(CoopChannelBulk, ZeroConsumersAcceptsOversizedBatch) {
  StubExec ex;
  CoopChannel<int> ch{0, 2, &ex};
  ch.set_producers(1);
  std::array<int, 7> src{};
  ChanStatus st{};
  EXPECT_EQ(ch.try_push_n(src.data(), src.size(), st), 7u);
  EXPECT_EQ(st, ChanStatus::ok);
  EXPECT_EQ(ch.total_pushed(), 7u);
}

TEST(ThreadedChannel, BulkOpsAreRejected) {
  ThreadedChannel<int> ch{1, 2};
  int v = 0;
  ChanStatus st{};
  EXPECT_THROW(ch.try_push_n(&v, 1, st), std::logic_error);
  EXPECT_THROW(ch.try_pop_n(0, &v, 1, st), std::logic_error);
}

TEST(RtpChannel, BulkOpsAreRejected) {
  StubExec ex;
  RtpChannel<int> ch{1, ExecMode::coop, &ex};
  int v = 0;
  ChanStatus st{};
  EXPECT_THROW(ch.try_push_n(&v, 1, st), std::logic_error);
  EXPECT_THROW(ch.try_pop_n(0, &v, 1, st), std::logic_error);
  std::size_t moved = 0;
  EXPECT_THROW(ch.add_bulk_push_waiter(
                   {&v, 1, 0, &moved, &st, std::coroutine_handle<>{}}),
               std::logic_error);
  EXPECT_THROW(ch.add_bulk_pop_waiter(
                   {&v, 1, 0, &moved, &st, std::coroutine_handle<>{}, 0, 0}),
               std::logic_error);
}

TEST(RtpPort, BulkPortOpsAreRejected) {
  StubExec ex;
  RtpChannel<int> ch{1, ExecMode::coop, &ex};
  ch.set_producers(1);
  PortBinding b{&ch, 0, ExecMode::coop, nullptr, /*rtp=*/true};
  KernelReadPort<int> in{b};
  KernelWritePort<int> out{b};
  std::array<int, 2> buf{};
  EXPECT_THROW(in.get_n(std::span<int>{buf}), std::logic_error);
  EXPECT_THROW(out.put_n(std::span<const int>{buf}), std::logic_error);
}

// --- vtable factory ---

TEST(ChannelVTable, CreatesModeSpecificChannels) {
  StubExec ex;
  const ChannelVTable& vt = channel_vtable<int>();
  EXPECT_EQ(vt.elem_size, sizeof(int));
  EXPECT_EQ(vt.type_name, "int");
  std::unique_ptr<ChannelBase> coop{
      vt.create(ExecMode::coop, 1, 4, false, &ex)};
  std::unique_ptr<ChannelBase> thr{
      vt.create(ExecMode::threaded, 1, 4, false, &ex)};
  std::unique_ptr<ChannelBase> rtp{
      vt.create(ExecMode::coop, 1, 4, true, &ex)};
  EXPECT_NE(dynamic_cast<CoopChannel<int>*>(coop.get()), nullptr);
  EXPECT_NE(dynamic_cast<ThreadedChannel<int>*>(thr.get()), nullptr);
  EXPECT_NE(dynamic_cast<RtpChannel<int>*>(rtp.get()), nullptr);
}

}  // namespace

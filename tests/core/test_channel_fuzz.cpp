// Randomized property test: the cooperative broadcast channel against a
// simple oracle (per-consumer FIFO views over one shared sequence).
#include <gtest/gtest.h>

#include <coroutine>
#include <deque>
#include <random>
#include <vector>

#include "core/cgsim.hpp"

namespace {

using namespace cgsim;

class NullExec final : public Executor {
 public:
  void make_ready(std::coroutine_handle<>, std::uint64_t) override {}
};

/// Oracle: every consumer sees the full pushed sequence in order; the ring
/// only admits a push when no consumer lags by `capacity`.
struct Oracle {
  explicit Oracle(int consumers, std::size_t capacity)
      : cursors(static_cast<std::size_t>(consumers), 0), cap(capacity) {}

  [[nodiscard]] bool can_push() const {
    std::size_t min_cursor = pushed.size();
    for (auto c : cursors) min_cursor = std::min(min_cursor, c);
    return pushed.size() - min_cursor < cap;
  }
  [[nodiscard]] bool can_pop(int c) const {
    return cursors[static_cast<std::size_t>(c)] < pushed.size();
  }

  std::vector<int> pushed;
  std::vector<std::size_t> cursors;
  std::size_t cap;
};

struct FuzzCase {
  unsigned seed;
  int consumers;
  int capacity;
};

class ChannelFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ChannelFuzz, AgreesWithOracle) {
  const auto [seed, consumers, capacity] = GetParam();
  NullExec ex;
  CoopChannel<int> ch{consumers, capacity, &ex};
  ch.set_producers(1);
  Oracle oracle{consumers, static_cast<std::size_t>(capacity)};

  std::mt19937 rng{seed};
  std::uniform_int_distribution<int> op{0, consumers};  // 0=push, i=pop i-1
  int next_value = 0;
  for (int step = 0; step < 20000; ++step) {
    const int o = op(rng);
    if (o == 0) {
      const ChanStatus st = ch.try_push(next_value);
      if (oracle.can_push()) {
        ASSERT_EQ(st, ChanStatus::ok) << "step " << step;
        oracle.pushed.push_back(next_value);
        ++next_value;
      } else {
        ASSERT_EQ(st, ChanStatus::blocked) << "step " << step;
      }
    } else {
      const int c = o - 1;
      int v = -1;
      const ChanStatus st = ch.try_pop(c, v);
      if (oracle.can_pop(c)) {
        ASSERT_EQ(st, ChanStatus::ok) << "step " << step;
        const auto cur = oracle.cursors[static_cast<std::size_t>(c)]++;
        ASSERT_EQ(v, oracle.pushed[cur]) << "step " << step;
      } else {
        ASSERT_EQ(st, ChanStatus::blocked) << "step " << step;
      }
    }
  }
  // Statistics agree at the end.
  EXPECT_EQ(ch.total_pushed(), oracle.pushed.size());
  for (int c = 0; c < consumers; ++c) {
    EXPECT_EQ(ch.popped(c), oracle.cursors[static_cast<std::size_t>(c)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChannelFuzz,
    ::testing::Values(FuzzCase{1, 1, 1}, FuzzCase{2, 1, 7},
                      FuzzCase{3, 2, 1}, FuzzCase{4, 2, 16},
                      FuzzCase{5, 3, 4}, FuzzCase{6, 4, 64},
                      FuzzCase{7, 3, 2}, FuzzCase{8, 2, 3}));

/// Same oracle, but scalar and bulk operations (random batch lengths up to
/// twice the capacity) are randomly interleaved: the bulk path must be
/// observably identical to element-at-a-time transfers, including partial
/// transfers and wrap-around copies.
class ChannelBulkFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(ChannelBulkFuzz, InterleavedScalarAndBulkAgreeWithOracle) {
  const auto [seed, consumers, capacity] = GetParam();
  NullExec ex;
  CoopChannel<int> ch{consumers, capacity, &ex};
  ch.set_producers(1);
  const auto cap = static_cast<std::size_t>(capacity);
  Oracle oracle{consumers, cap};

  std::mt19937 rng{seed};
  std::uniform_int_distribution<int> op{0, 3};
  std::uniform_int_distribution<int> pick_c{0, consumers - 1};
  std::uniform_int_distribution<std::size_t> len{1, 2 * cap};
  int next_value = 0;

  const auto oracle_free = [&] {
    std::size_t min_cursor = oracle.pushed.size();
    for (auto c : oracle.cursors) min_cursor = std::min(min_cursor, c);
    return cap - (oracle.pushed.size() - min_cursor);
  };

  for (int step = 0; step < 20000; ++step) {
    switch (op(rng)) {
      case 0: {  // scalar push
        const ChanStatus st = ch.try_push(next_value);
        if (oracle.can_push()) {
          ASSERT_EQ(st, ChanStatus::ok) << "step " << step;
          oracle.pushed.push_back(next_value);
          ++next_value;
        } else {
          ASSERT_EQ(st, ChanStatus::blocked) << "step " << step;
        }
        break;
      }
      case 1: {  // scalar pop
        const int c = pick_c(rng);
        int v = -1;
        const ChanStatus st = ch.try_pop(c, v);
        if (oracle.can_pop(c)) {
          ASSERT_EQ(st, ChanStatus::ok) << "step " << step;
          const auto cur = oracle.cursors[static_cast<std::size_t>(c)]++;
          ASSERT_EQ(v, oracle.pushed[cur]) << "step " << step;
        } else {
          ASSERT_EQ(st, ChanStatus::blocked) << "step " << step;
        }
        break;
      }
      case 2: {  // bulk push
        const std::size_t n = len(rng);
        std::vector<int> src(n);
        for (std::size_t i = 0; i < n; ++i) {
          src[i] = next_value + static_cast<int>(i);
        }
        ChanStatus st{};
        const std::size_t moved = ch.try_push_n(src.data(), n, st);
        const std::size_t expected = std::min(n, oracle_free());
        ASSERT_EQ(moved, expected) << "step " << step;
        ASSERT_EQ(st, moved == n ? ChanStatus::ok : ChanStatus::blocked)
            << "step " << step;
        for (std::size_t i = 0; i < moved; ++i) {
          oracle.pushed.push_back(src[i]);
        }
        next_value += static_cast<int>(moved);
        break;
      }
      default: {  // bulk pop
        const int c = pick_c(rng);
        const std::size_t n = len(rng);
        std::vector<int> dst(n, -1);
        ChanStatus st{};
        const std::size_t moved = ch.try_pop_n(c, dst.data(), n, st);
        auto& cur = oracle.cursors[static_cast<std::size_t>(c)];
        const std::size_t expected = std::min(n, oracle.pushed.size() - cur);
        ASSERT_EQ(moved, expected) << "step " << step;
        ASSERT_EQ(st, moved == n ? ChanStatus::ok : ChanStatus::blocked)
            << "step " << step;
        for (std::size_t i = 0; i < moved; ++i) {
          ASSERT_EQ(dst[i], oracle.pushed[cur + i]) << "step " << step;
        }
        cur += moved;
        break;
      }
    }
  }

  // Close the producer: every consumer drains the exact remainder and then
  // observes end-of-stream, whichever transfer width it uses.
  ch.producer_done();
  for (int c = 0; c < consumers; ++c) {
    auto& cur = oracle.cursors[static_cast<std::size_t>(c)];
    const std::size_t remaining = oracle.pushed.size() - cur;
    std::vector<int> dst(remaining + 3, -1);
    ChanStatus st{};
    const std::size_t moved = ch.try_pop_n(c, dst.data(), dst.size(), st);
    ASSERT_EQ(moved, remaining);
    ASSERT_EQ(st, ChanStatus::closed);
    for (std::size_t i = 0; i < moved; ++i) {
      ASSERT_EQ(dst[i], oracle.pushed[cur + i]);
    }
    cur += moved;
  }

  EXPECT_EQ(ch.total_pushed(), oracle.pushed.size());
  for (int c = 0; c < consumers; ++c) {
    EXPECT_EQ(ch.popped(c), oracle.cursors[static_cast<std::size_t>(c)]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ChannelBulkFuzz,
    ::testing::Values(FuzzCase{11, 1, 1}, FuzzCase{12, 1, 7},
                      FuzzCase{13, 2, 1}, FuzzCase{14, 2, 16},
                      FuzzCase{15, 3, 4}, FuzzCase{16, 4, 64},
                      FuzzCase{17, 3, 2}, FuzzCase{18, 2, 3}));

}  // namespace

// StealDeque (bounded Chase-Lev work-stealing deque): single-thread
// owner-side LIFO/steal-side FIFO semantics, capacity rounding, and a
// concurrent owner-vs-thieves fuzz that checks every pushed element is
// consumed exactly once. The deque carries shard ids in the scheduler, so
// the element type here is plain ints.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "core/steal.hpp"

namespace {

using cgsim::StealDeque;

TEST(StealDeque, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(StealDeque<int>{1}.capacity(), 16u);   // floor
  EXPECT_EQ(StealDeque<int>{16}.capacity(), 16u);
  EXPECT_EQ(StealDeque<int>{17}.capacity(), 32u);
  EXPECT_EQ(StealDeque<int>{100}.capacity(), 128u);
}

TEST(StealDeque, OwnerPopsLifoThievesStealFifo) {
  StealDeque<int> d{8};
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(d.push_bottom(i));
  int v = -1;
  // Owner side: LIFO.
  ASSERT_TRUE(d.pop_bottom(v));
  EXPECT_EQ(v, 5);
  // Thief side: FIFO (oldest element).
  ASSERT_TRUE(d.steal_top(v));
  EXPECT_EQ(v, 0);
  ASSERT_TRUE(d.steal_top(v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(d.pop_bottom(v));
  EXPECT_EQ(v, 4);
  ASSERT_TRUE(d.pop_bottom(v));
  EXPECT_EQ(v, 3);
  ASSERT_TRUE(d.pop_bottom(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(d.pop_bottom(v));
  EXPECT_FALSE(d.steal_top(v));
}

TEST(StealDeque, RejectsPushBeyondCapacity) {
  StealDeque<int> d{4};  // rounds to 16
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(d.push_bottom(i));
  EXPECT_FALSE(d.push_bottom(99));
  int v = -1;
  ASSERT_TRUE(d.steal_top(v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(d.push_bottom(99));  // slot freed by the steal
}

TEST(StealDeque, SingleElementRaceGoesToExactlyOneSide) {
  // The classic Chase-Lev edge case: one element, owner pop racing a
  // steal. Both run single-threaded here (interleaving is covered by the
  // fuzz below); this pins the sequential contract.
  StealDeque<int> d{8};
  ASSERT_TRUE(d.push_bottom(42));
  int a = -1, b = -1;
  const bool popped = d.pop_bottom(a);
  const bool stolen = d.steal_top(b);
  EXPECT_TRUE(popped);
  EXPECT_FALSE(stolen);
  EXPECT_EQ(a, 42);
}

// Owner pushes/pops while thieves steal: every value must surface exactly
// once across owner pops and steals.
TEST(StealDeque, ConcurrentOwnerVsThievesFuzz) {
  constexpr int kValues = 20000;
  constexpr int kThieves = 3;
  StealDeque<int> d{64};

  std::vector<int> owner_got;
  std::vector<std::vector<int>> thief_got(kThieves);
  std::atomic<bool> done{false};

  std::vector<std::jthread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      int v;
      while (!done.load(std::memory_order_acquire)) {
        if (d.steal_top(v)) thief_got[static_cast<std::size_t>(t)].push_back(v);
      }
      while (d.steal_top(v)) {
        thief_got[static_cast<std::size_t>(t)].push_back(v);
      }
    });
  }

  int next = 0;
  while (next < kValues) {
    // Push a burst (bounded deque: retry while thieves drain), then pop
    // some back LIFO like a worker executing its own shard queue.
    for (int burst = 0; burst < 16 && next < kValues; ++burst) {
      while (!d.push_bottom(next)) {
      }
      ++next;
    }
    int v;
    for (int k = 0; k < 8; ++k) {
      if (d.pop_bottom(v)) owner_got.push_back(v);
    }
  }
  int v;
  while (d.pop_bottom(v)) owner_got.push_back(v);
  done.store(true, std::memory_order_release);
  thieves.clear();  // join

  std::multiset<int> seen(owner_got.begin(), owner_got.end());
  for (const auto& tg : thief_got) seen.insert(tg.begin(), tg.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kValues));
  int expect = 0;
  for (int x : seen) EXPECT_EQ(x, expect++);  // each value exactly once
}

}  // namespace

// Shared-memory data plane through the full service stack, plus the
// persistent compiled-artifact cache across daemon restarts.
//
// The differential contract: a shm-negotiated client and a socket-only
// client running the same session must produce bit-identical outputs and
// digests -- the ring is a transport, never a semantic. And a daemon
// restarted over the same --cache-dir must serve its first sim bind from
// the persisted artifact (result.persisted) with the same digest.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "aiesim/compiled.hpp"
#include "net/socket.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/graph_codec.hpp"
#include "service/kernels.hpp"
#include "service/protocol.hpp"

namespace {

using namespace cgsim;
using namespace cgsim::service;
namespace fs = std::filesystem;

/// Daemon on an ephemeral loopback port plus shm-configurable connectors.
struct ShmDaemon {
  std::uint16_t port = 0;
  Daemon daemon;

  explicit ShmDaemon(DaemonConfig cfg = {})
      : daemon{net::listen_tcp_loopback(0, &port), cfg} {}

  [[nodiscard]] ServiceClient connect(bool use_shm = true) const {
    ServiceClientOptions o;
    o.use_shm = use_shm;
    return ServiceClient{net::connect_tcp_loopback(port), o};
  }
};

GraphSpec chain_spec(int kernels) {
  GraphSpec g;
  for (int e = 0; e <= kernels; ++e) g.edges.push_back({"i32", 64, {}});
  for (int k = 0; k < kernels; ++k) {
    g.kernels.push_back({"svc_inc_i32", {k, k + 1}});
  }
  g.inputs = {0};
  g.outputs = {kernels};
  return g;
}

/// 256 KiB of input: far above the 4 KiB shm threshold, so the chunk and
/// the output both ride the ring when a plane is negotiated.
std::vector<int> big_input() {
  std::vector<int> v((256 << 10) / sizeof(int));
  std::iota(v.begin(), v.end(), -1000);
  return v;
}

RunOutcome run_once(ServiceClient& cli, const GraphSpec& spec,
                    const std::vector<int>& in) {
  const auto sid = cli.open(RunMode::coop, spec);
  cli.send_input(sid, 0, in.data(), in.size() * sizeof(int));
  RunOutcome out = cli.run(sid);
  cli.close_session(sid);
  return out;
}

TEST(ShmService, NegotiatedClientMatchesSocketClientBitForBit) {
  ShmDaemon d;
  auto shm_cli = d.connect(/*use_shm=*/true);
  auto sock_cli = d.connect(/*use_shm=*/false);
  ASSERT_TRUE(shm_cli.shm_active());
  ASSERT_FALSE(sock_cli.shm_active());

  const GraphSpec spec = chain_spec(4);
  const std::vector<int> in = big_input();
  RunOutcome via_shm = run_once(shm_cli, spec, in);
  RunOutcome via_sock = run_once(sock_cli, spec, in);
  ASSERT_TRUE(via_shm.ok) << via_shm.error;
  ASSERT_TRUE(via_sock.ok) << via_sock.error;
  EXPECT_EQ(via_shm.outputs, via_sock.outputs);
  EXPECT_EQ(via_shm.result.digest, via_sock.result.digest);
  EXPECT_EQ(outputs_digest(via_shm.outputs), via_shm.result.digest);
  EXPECT_GE(d.daemon.stats().shm_conns.load(), 1u);
}

TEST(ShmService, DaemonWithShmDisabledFallsBackTransparently) {
  DaemonConfig cfg;
  cfg.enable_shm = false;
  ShmDaemon d{cfg};
  // The client asks for shm; the daemon refuses the feature bit and
  // everything stays on the socket -- bit-identically.
  auto cli = d.connect(/*use_shm=*/true);
  EXPECT_FALSE(cli.shm_active());
  RunOutcome out = run_once(cli, chain_spec(3), big_input());
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(outputs_digest(out.outputs), out.result.digest);
  EXPECT_EQ(d.daemon.stats().shm_conns.load(), 0u);
}

TEST(ShmService, SmallChunksStayOnSocketOverAShmConnection) {
  ShmDaemon d;
  auto cli = d.connect(/*use_shm=*/true);
  ASSERT_TRUE(cli.shm_active());
  // 64 ints = 256 bytes, below the threshold: correctness must not depend
  // on which transport a chunk picks.
  std::vector<int> in(64);
  std::iota(in.begin(), in.end(), 3);
  RunOutcome out = run_once(cli, chain_spec(2), in);
  ASSERT_TRUE(out.ok) << out.error;
  std::vector<int> got = out.output_as<int>(0);
  ASSERT_EQ(got.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(got[i], in[i] + 2);
  }
}

TEST(ShmService, SimLaneAndRtpUpdatesOverShm) {
  ShmDaemon d;
  auto shm_cli = d.connect(/*use_shm=*/true);
  auto sock_cli = d.connect(/*use_shm=*/false);
  ASSERT_TRUE(shm_cli.shm_active());

  // Both clients drive the same sim-mode session shape: cold run, then an
  // input rewrite + rerun (the incremental path). Digests must pair up.
  auto drive = [](ServiceClient& cli) {
    const GraphSpec spec = chain_spec(4);
    const auto sid = cli.open(RunMode::sim, spec);
    const std::vector<int> in = big_input();
    cli.send_input(sid, 0, in.data(), in.size() * sizeof(int));
    RunOutcome cold = cli.run(sid);
    std::vector<int> in2 = in;
    in2[0] += 100;
    cli.send_input(sid, 0, in2.data(), in2.size() * sizeof(int));
    RunOutcome rerun = cli.run(sid);
    cli.close_session(sid);
    return std::pair{cold, rerun};
  };
  auto [shm_cold, shm_rerun] = drive(shm_cli);
  auto [sock_cold, sock_rerun] = drive(sock_cli);
  ASSERT_TRUE(shm_cold.ok) << shm_cold.error;
  ASSERT_TRUE(shm_rerun.ok) << shm_rerun.error;
  ASSERT_TRUE(sock_cold.ok && sock_rerun.ok);
  EXPECT_EQ(shm_cold.result.digest, sock_cold.result.digest);
  EXPECT_EQ(shm_rerun.result.digest, sock_rerun.result.digest);
  EXPECT_EQ(shm_cold.outputs, sock_cold.outputs);
  EXPECT_EQ(shm_rerun.outputs, sock_rerun.outputs);
}

TEST(ShmService, ManySessionsInterleaveOverOnePlane) {
  ShmDaemon d;
  auto cli = d.connect(/*use_shm=*/true);
  ASSERT_TRUE(cli.shm_active());
  // Several live sessions share the connection's one ring pair; outputs
  // must land on the right session in the right order.
  const GraphSpec spec = chain_spec(3);
  const std::vector<int> base = big_input();
  std::vector<std::uint64_t> sids;
  for (int s = 0; s < 4; ++s) {
    const auto sid = cli.open(RunMode::coop, spec);
    std::vector<int> in = base;
    for (auto& v : in) v += s;
    cli.send_input(sid, 0, in.data(), in.size() * sizeof(int));
    cli.start_run(sid);
    sids.push_back(sid);
  }
  for (int s = 0; s < 4; ++s) {
    RunOutcome out = cli.wait(sids[static_cast<std::size_t>(s)]);
    ASSERT_TRUE(out.ok) << out.error;
    std::vector<int> got = out.output_as<int>(0);
    ASSERT_EQ(got.size(), base.size());
    EXPECT_EQ(got[0], base[0] + s + 3);
    EXPECT_EQ(got.back(), base.back() + s + 3);
  }
  for (const auto sid : sids) cli.close_session(sid);
}

TEST(ShmService, RestartServesPersistedArtifactWithSameDigest) {
  const std::string dir =
      (fs::temp_directory_path() /
       ("cgsim-shm-restart-" + std::to_string(static_cast<long>(::getpid()))))
          .string();
  fs::remove_all(dir);
  aiesim::CompiledGraphCache::instance().set_store(nullptr);
  aiesim::CompiledGraphCache::instance().clear();

  DaemonConfig cfg;
  cfg.cache_dir = dir;
  const GraphSpec spec = chain_spec(6);
  const std::vector<int> in = big_input();

  std::uint64_t first_digest = 0;
  {
    ShmDaemon d{cfg};
    auto cli = d.connect();
    const auto sid = cli.open(RunMode::sim, spec);
    cli.send_input(sid, 0, in.data(), in.size() * sizeof(int));
    RunOutcome out = cli.run(sid);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_FALSE(out.result.persisted) << "first-ever bind is a compile";
    first_digest = out.result.digest;
    cli.close_session(sid);
    d.daemon.stop();
  }
  // "Restart": the process-global in-memory cache is wiped; only the
  // on-disk artifact survives, exactly like a new cgsimd process.
  aiesim::CompiledGraphCache::instance().clear();
  {
    ShmDaemon d{cfg};
    auto cli = d.connect();
    const auto sid = cli.open(RunMode::sim, spec);
    cli.send_input(sid, 0, in.data(), in.size() * sizeof(int));
    RunOutcome out = cli.run(sid);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_TRUE(out.result.persisted)
        << "restarted daemon must bind from the persisted artifact";
    EXPECT_EQ(out.result.digest, first_digest);
    EXPECT_GE(d.daemon.stats().persisted_binds.load(), 1u);
    cli.close_session(sid);
    d.daemon.stop();
  }
  aiesim::CompiledGraphCache::instance().set_store(nullptr);
  aiesim::CompiledGraphCache::instance().clear();
  fs::remove_all(dir);
}

TEST(ShmService, ConcurrentShmClientsKeepDigestIdentity) {
  ShmDaemon d;
  const GraphSpec spec = chain_spec(4);
  const std::vector<int> in = big_input();
  RunOutcome ref = [&] {
    auto cli = d.connect(/*use_shm=*/false);
    return run_once(cli, spec, in);
  }();
  ASSERT_TRUE(ref.ok) << ref.error;

  std::vector<std::thread> clients;
  std::vector<std::uint64_t> digests(6, 0);
  std::vector<char> oks(6, 0);
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      auto cli = d.connect(/*use_shm=*/true);
      RunOutcome out = run_once(cli, spec, in);
      digests[static_cast<std::size_t>(c)] = out.result.digest;
      oks[static_cast<std::size_t>(c)] = out.ok ? 1 : 0;
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < 6; ++c) {
    EXPECT_EQ(oks[static_cast<std::size_t>(c)], 1);
    EXPECT_EQ(digests[static_cast<std::size_t>(c)], ref.result.digest);
  }
}

}  // namespace

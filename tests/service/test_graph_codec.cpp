// Graph wire codec: serialize -> parse round-trips, registry validation,
// and the randomized-DAG fuzz asserting that a spec rebuilt from its wire
// bytes simulates to bit-identical outputs.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/session.hpp"
#include "service/graph_codec.hpp"
#include "service/kernels.hpp"
#include "service/protocol.hpp"

namespace {

using namespace cgsim;
using namespace cgsim::service;

GraphSpec inc_spec() {
  GraphSpec g;
  g.edges = {{"i32", 64, {}}, {"i32", 64, {}}};
  g.kernels = {{"svc_inc_i32", {0, 1}}};
  g.inputs = {0};
  g.outputs = {1};
  return g;
}

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span{s.data(), s.size()});
}

TEST(GraphCodec, SerializeParseRoundTrip) {
  register_builtin_kernels();
  GraphSpec g = inc_spec();
  g.edges[0].settings.beat_bits = 64;
  g.edges[1].settings.window_size = 16;
  const std::string bytes = serialize_graph(g);
  GraphSpec back;
  ASSERT_TRUE(parse_graph(as_bytes(bytes), back));
  EXPECT_EQ(serialize_graph(back), bytes) << "round-trip must be stable";
  ASSERT_EQ(back.edges.size(), 2u);
  EXPECT_EQ(back.edges[0].type, "i32");
  EXPECT_EQ(back.edges[0].settings.beat_bits, 64);
  EXPECT_EQ(back.edges[1].settings.window_size, 16);
  ASSERT_EQ(back.kernels.size(), 1u);
  EXPECT_EQ(back.kernels[0].name, "svc_inc_i32");
  EXPECT_EQ(back.kernels[0].edges, (std::vector<int>{0, 1}));
  EXPECT_EQ(back.inputs, (std::vector<int>{0}));
  EXPECT_EQ(back.outputs, (std::vector<int>{1}));
}

TEST(GraphCodec, MalformedBytesRejected) {
  register_builtin_kernels();
  const std::string bytes = serialize_graph(inc_spec());
  GraphSpec g;
  // Any strict prefix is truncated, never a crash or an accepted parse.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::string part = bytes.substr(0, cut);
    EXPECT_FALSE(parse_graph(as_bytes(part), g)) << "cut=" << cut;
  }
  // Trailing garbage is rejected too.
  const std::string extended = bytes + "x";
  EXPECT_FALSE(parse_graph(as_bytes(extended), g));
}

TEST(GraphCodec, UnknownNamesRejectedAtBuild) {
  register_builtin_kernels();
  rt::DynamicGraphBuilder b;
  GraphSpec bad_type = inc_spec();
  bad_type.edges[0].type = "i128";
  EXPECT_THROW(build_graph(bad_type, b), std::invalid_argument);

  GraphSpec bad_kernel = inc_spec();
  bad_kernel.kernels[0].name = "svc_no_such";
  rt::DynamicGraphBuilder b2;
  EXPECT_THROW(build_graph(bad_kernel, b2), std::invalid_argument);

  GraphSpec bad_arity = inc_spec();
  bad_arity.kernels[0].edges = {0};
  rt::DynamicGraphBuilder b3;
  EXPECT_THROW(build_graph(bad_arity, b3), std::invalid_argument);

  GraphSpec bad_edge = inc_spec();
  bad_edge.kernels[0].edges = {0, 9};
  rt::DynamicGraphBuilder b4;
  EXPECT_THROW(build_graph(bad_edge, b4), std::invalid_argument);
}

TEST(GraphCodec, UniformTypeDetection) {
  register_builtin_kernels();
  EXPECT_NE(uniform_type(inc_spec()), nullptr);
  GraphSpec mixed = inc_spec();
  mixed.edges.push_back({"f32", 64, {}});
  EXPECT_EQ(uniform_type(mixed), nullptr);
  EXPECT_EQ(uniform_type(GraphSpec{}), nullptr);
}

// ---------------------------------------------------------------------------
// Randomized-DAG fuzz.
// ---------------------------------------------------------------------------

/// Builds a random i32 DAG out of the builtin service kernels using an
/// open-edge frontier: each kernel consumes open edges (or fresh global
/// inputs) and opens its output edges; whatever remains open at the end
/// becomes the global outputs. Every edge ends up with exactly one
/// producer and one consumer, so the graph always drains.
GraphSpec random_dag(std::mt19937& rng) {
  GraphSpec g;
  std::vector<int> open;
  auto new_edge = [&] {
    const int cap = 4 << std::uniform_int_distribution<int>{0, 4}(rng);
    g.edges.push_back(EdgeSpec{"i32", cap, {}});
    return static_cast<int>(g.edges.size()) - 1;
  };
  auto take_or_input = [&] {
    if (!open.empty() &&
        std::uniform_int_distribution<int>{0, 3}(rng) != 0) {
      const std::size_t at = std::uniform_int_distribution<std::size_t>{
          0, open.size() - 1}(rng);
      const int e = open[at];
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(at));
      return e;
    }
    const int e = new_edge();
    g.inputs.push_back(e);
    return e;
  };
  struct Shape {
    const char* name;
    int reads;
    int writes;
  };
  const Shape shapes[] = {{"svc_inc_i32", 1, 1},
                          {"svc_double_i32", 1, 1},
                          {"svc_mac_i32", 1, 1},
                          {"svc_add_i32", 2, 1},
                          {"svc_split_i32", 1, 2}};
  const int n_kernels = std::uniform_int_distribution<int>{2, 10}(rng);
  for (int k = 0; k < n_kernels; ++k) {
    const Shape& s =
        shapes[std::uniform_int_distribution<std::size_t>{0, 4}(rng)];
    KernelSpec ks;
    ks.name = s.name;
    for (int r = 0; r < s.reads; ++r) ks.edges.push_back(take_or_input());
    for (int w = 0; w < s.writes; ++w) {
      const int e = new_edge();
      ks.edges.push_back(e);
      open.push_back(e);
    }
    g.kernels.push_back(std::move(ks));
  }
  for (int e : open) g.outputs.push_back(e);
  return g;
}

/// Drives a coop session over `spec` with `inputs` and returns the chained
/// output digest (interleaved bulk push/drain, same scheme the daemon's
/// coop lane uses).
std::uint64_t run_spec_digest(const GraphSpec& spec,
                              const std::vector<std::vector<int>>& inputs) {
  rt::DynamicGraphBuilder b;
  build_graph(spec, b);
  InteractiveSession s{b.view()};
  std::vector<std::vector<int>> outputs(spec.outputs.size());
  std::vector<std::size_t> fed(inputs.size(), 0);
  int buf[1024];
  auto drain = [&] {
    bool any = false;
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      for (;;) {
        const std::size_t k = s.poll_n<int>(o, buf, 1024);
        if (k == 0) break;
        outputs[o].insert(outputs[o].end(), buf, buf + k);
        any = true;
        if (k < 1024) break;
      }
    }
    return any;
  };
  for (;;) {
    bool progress = false;
    bool all_fed = true;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (fed[i] >= inputs[i].size()) continue;
      const std::size_t k = s.push_n<int>(i, inputs[i].data() + fed[i],
                                          inputs[i].size() - fed[i]);
      fed[i] += k;
      progress |= k > 0;
      all_fed &= fed[i] >= inputs[i].size();
    }
    progress |= drain();
    if (all_fed) break;
    if (!progress) throw std::runtime_error{"graph stalled"};
  }
  s.finish();
  while (drain()) {
  }
  std::uint64_t digest = kFnvSeed;
  for (const auto& out : outputs) {
    digest = fnv1a(out.data(), out.size() * sizeof(int), digest);
    digest ^= out.size() * sizeof(int);
    digest *= 1099511628211ull;
  }
  return digest;
}

TEST(GraphCodecFuzz, RoundTripSimulateDigestEquality) {
  register_builtin_kernels();
  std::mt19937 rng{20260809};
  for (int trial = 0; trial < 40; ++trial) {
    const GraphSpec spec = random_dag(rng);
    const std::string bytes = serialize_graph(spec);
    GraphSpec back;
    ASSERT_TRUE(parse_graph(as_bytes(bytes), back)) << "trial " << trial;
    ASSERT_EQ(serialize_graph(back), bytes) << "trial " << trial;

    // One length for every input: all builtin kernels are rate-balanced
    // 1:1, so equal-length streams drain completely. Ragged lengths would
    // legitimately stall the graph (a join waits forever on the shorter
    // stream) and abort the trial before the digests are compared.
    std::vector<std::vector<int>> inputs(spec.inputs.size());
    std::uniform_int_distribution<int> len{0, 400};
    std::uniform_int_distribution<int> val{-1000, 1000};
    const std::size_t n = static_cast<std::size_t>(len(rng));
    for (auto& in : inputs) {
      in.resize(n);
      for (int& v : in) v = val(rng);
    }
    const std::uint64_t a = run_spec_digest(spec, inputs);
    const std::uint64_t b = run_spec_digest(back, inputs);
    EXPECT_EQ(a, b) << "trial " << trial
                    << ": wire round-trip changed simulation results";
  }
}

}  // namespace

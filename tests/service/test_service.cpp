// End-to-end cgsimd loopback tests: digest identity with in-process runs,
// warm-session reuse, incremental sim reruns, quota enforcement and
// concurrent clients multiplexed over one daemon.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/session.hpp"
#include "net/socket.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/graph_codec.hpp"
#include "service/kernels.hpp"
#include "service/protocol.hpp"

namespace {

using namespace cgsim;
using namespace cgsim::service;

/// add(e0,e1) -> e2, split(e2) -> (e3, e4): two inputs, two outputs.
GraphSpec diamond_spec() {
  GraphSpec g;
  g.edges = {{"i32", 64, {}}, {"i32", 64, {}}, {"i32", 64, {}},
             {"i32", 64, {}}, {"i32", 64, {}}};
  g.kernels = {{"svc_add_i32", {0, 1, 2}}, {"svc_split_i32", {2, 3, 4}}};
  g.inputs = {0, 1};
  g.outputs = {3, 4};
  return g;
}

GraphSpec inc_chain_spec(int extra = 0) {
  GraphSpec g;
  g.edges = {{"i32", 64, {}}, {"i32", 64, {}}, {"i32", 64, {}}};
  g.kernels = {{"svc_inc_i32", {0, 1}}, {"svc_double_i32", {1, 2}}};
  g.inputs = {0};
  g.outputs = {2};
  for (int i = 0; i < extra; ++i) {
    const int in = static_cast<int>(g.edges.size()) - 1;
    g.edges.push_back({"i32", 64, {}});
    g.kernels.push_back({"svc_inc_i32", {in, in + 1}});
    g.outputs = {in + 1};
  }
  return g;
}

/// Two independent inc->double chains. Dirtying one input leaves the other
/// chain outside the resim cone, so a server-side incremental rerun is
/// actually possible (in diamond_spec every input's cone is the whole
/// graph and resim must fall back to a full rerun).
GraphSpec twin_chain_spec() {
  GraphSpec g;
  g.edges = {{"i32", 64, {}}, {"i32", 64, {}}, {"i32", 64, {}},
             {"i32", 64, {}}, {"i32", 64, {}}, {"i32", 64, {}}};
  g.kernels = {{"svc_inc_i32", {0, 1}},
               {"svc_double_i32", {1, 2}},
               {"svc_inc_i32", {3, 4}},
               {"svc_double_i32", {4, 5}}};
  g.inputs = {0, 3};
  g.outputs = {2, 5};
  return g;
}

std::vector<int> iota_vec(int n, int start) {
  std::vector<int> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = start + i;
  return v;
}

/// In-process reference run of `spec` (same interleaved drive the daemon's
/// coop lane uses); returns per-output element bytes.
std::vector<std::string> run_in_process(
    const GraphSpec& spec, const std::vector<std::vector<int>>& inputs) {
  rt::DynamicGraphBuilder b;
  build_graph(spec, b);
  InteractiveSession s{b.view()};
  std::vector<std::string> outputs(spec.outputs.size());
  std::vector<std::size_t> fed(inputs.size(), 0);
  int buf[1024];
  auto drain = [&] {
    bool any = false;
    for (std::size_t o = 0; o < outputs.size(); ++o) {
      for (;;) {
        const std::size_t k = s.poll_n<int>(o, buf, 1024);
        if (k == 0) break;
        outputs[o].append(reinterpret_cast<const char*>(buf),
                          k * sizeof(int));
        any = true;
        if (k < 1024) break;
      }
    }
    return any;
  };
  for (;;) {
    bool progress = false;
    bool all_fed = true;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (fed[i] >= inputs[i].size()) continue;
      const std::size_t k = s.push_n<int>(i, inputs[i].data() + fed[i],
                                          inputs[i].size() - fed[i]);
      fed[i] += k;
      progress |= k > 0;
      all_fed &= fed[i] >= inputs[i].size();
    }
    progress |= drain();
    if (all_fed) break;
    if (!progress) throw std::runtime_error{"reference run stalled"};
  }
  s.finish();
  while (drain()) {
  }
  return outputs;
}

/// Daemon on an ephemeral loopback port plus a connector helper.
struct LocalDaemon {
  std::uint16_t port = 0;
  Daemon daemon;

  explicit LocalDaemon(DaemonConfig cfg = {})
      : daemon{net::listen_tcp_loopback(0, &port), cfg} {}

  [[nodiscard]] ServiceClient connect() const {
    return ServiceClient{net::connect_tcp_loopback(port)};
  }
};

void send_vec(ServiceClient& cli, std::uint64_t sid, std::size_t idx,
              const std::vector<int>& v) {
  cli.send_input(sid, idx, v.data(), v.size() * sizeof(int));
}

TEST(Service, CoopDigestIdentityWithInProcessRun) {
  LocalDaemon d;
  auto cli = d.connect();
  const GraphSpec spec = diamond_spec();
  const std::vector<std::vector<int>> inputs = {iota_vec(500, 1),
                                                iota_vec(500, -250)};
  const std::vector<std::string> expect = run_in_process(spec, inputs);
  const std::uint64_t expect_digest = outputs_digest(expect);

  const auto sid = cli.open(RunMode::coop, spec);
  send_vec(cli, sid, 0, inputs[0]);
  send_vec(cli, sid, 1, inputs[1]);
  RunOutcome out = cli.run(sid);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_FALSE(out.result.warm);
  EXPECT_EQ(out.outputs, expect) << "service outputs diverge from in-process";
  EXPECT_EQ(out.result.digest, expect_digest);
  EXPECT_EQ(outputs_digest(out.outputs), out.result.digest)
      << "server digest must cover exactly the bytes it shipped";
}

TEST(Service, WarmRerunIsFlaggedAndBitIdentical) {
  LocalDaemon d;
  auto cli = d.connect();
  const GraphSpec spec = inc_chain_spec();
  const auto sid = cli.open(RunMode::coop, spec);
  const std::vector<int> in = iota_vec(1000, 7);

  send_vec(cli, sid, 0, in);
  RunOutcome cold = cli.run(sid);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.result.warm);

  send_vec(cli, sid, 0, in);
  RunOutcome warm = cli.run(sid);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.result.warm) << "second run must hit the warm lane";
  EXPECT_EQ(warm.result.digest, cold.result.digest);
  EXPECT_EQ(warm.outputs, cold.outputs);
  EXPECT_GE(d.daemon.stats().warm_runs.load(), 1u);
}

TEST(Service, WarmLaneSurvivesSessionCloseViaPool) {
  LocalDaemon d;
  const GraphSpec spec = inc_chain_spec();
  const std::vector<int> in = iota_vec(256, 3);
  std::uint64_t first_digest = 0;
  {
    auto cli = d.connect();
    const auto sid = cli.open(RunMode::coop, spec);
    send_vec(cli, sid, 0, in);
    RunOutcome out = cli.run(sid);
    ASSERT_TRUE(out.ok) << out.error;
    first_digest = out.result.digest;
    cli.close_session(sid);
  }
  // A brand-new connection with the same spec bytes checks the lane back
  // out of the pool: warm run, identical bits.
  auto cli = d.connect();
  const auto sid = cli.open(RunMode::coop, spec);
  send_vec(cli, sid, 0, in);
  RunOutcome out = cli.run(sid);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(out.result.warm);
  EXPECT_EQ(out.result.digest, first_digest);
  EXPECT_GE(d.daemon.coop_pool().reused(), 1u);
}

TEST(Service, SimLaneRunsAndIncrementalRerun) {
  LocalDaemon d;
  auto cli = d.connect();
  const GraphSpec spec = twin_chain_spec();
  const auto sid = cli.open(RunMode::sim, spec);
  const std::vector<int> in0 = iota_vec(128, 0);
  std::vector<int> in1 = iota_vec(128, 100);

  send_vec(cli, sid, 0, in0);
  send_vec(cli, sid, 1, in1);
  RunOutcome cold = cli.run(sid);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.result.warm);
  EXPECT_FALSE(cold.result.incremental);
  EXPECT_GT(cold.result.virtual_cycles, 0u);

  // Only input 1 changes: the server's byte diff must take the
  // incremental path, and the result must match a cold run of the same
  // changed inputs on a fresh daemon.
  in1[5] += 9000;
  cli.send_rtp(sid, 1, in1.data(), in1.size() * sizeof(int));
  RunOutcome warm = cli.run(sid);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_TRUE(warm.result.warm);
  EXPECT_TRUE(warm.result.incremental);
  EXPECT_GE(d.daemon.stats().incremental_runs.load(), 1u);

  LocalDaemon fresh;
  auto cli2 = fresh.connect();
  const auto sid2 = cli2.open(RunMode::sim, spec);
  send_vec(cli2, sid2, 0, in0);
  send_vec(cli2, sid2, 1, in1);
  RunOutcome ref = cli2.run(sid2);
  ASSERT_TRUE(ref.ok) << ref.error;
  EXPECT_EQ(warm.result.digest, ref.result.digest)
      << "incremental rerun diverged from a cold run of the same inputs";
  EXPECT_EQ(warm.result.virtual_cycles, ref.result.virtual_cycles);
  EXPECT_EQ(warm.outputs, ref.outputs);
}

TEST(Service, ConcurrentClientsShareWarmLanes) {
  DaemonConfig cfg;
  cfg.io_threads = 2;
  LocalDaemon d{cfg};
  const GraphSpec spec = diamond_spec();
  const std::vector<std::vector<int>> inputs = {iota_vec(200, 11),
                                                iota_vec(200, -40)};
  const std::uint64_t expect = outputs_digest(run_in_process(spec, inputs));

  constexpr int kClients = 8;
  constexpr int kSessions = 8;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      try {
        auto cli = d.connect();
        std::vector<std::uint64_t> sids;
        sids.reserve(kSessions);
        for (int s = 0; s < kSessions; ++s) {
          const auto sid = cli.open(RunMode::coop, spec);
          send_vec(cli, sid, 0, inputs[0]);
          send_vec(cli, sid, 1, inputs[1]);
          cli.start_run(sid);
          sids.push_back(sid);
        }
        for (const auto sid : sids) {
          RunOutcome out = cli.wait(sid);
          if (!out.ok || out.result.digest != expect) bad.fetch_add(1);
          cli.close_session(sid);
        }
      } catch (...) {
        bad.fetch_add(100);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(d.daemon.stats().runs.load(),
            static_cast<std::uint64_t>(kClients * kSessions));
  // All 64 sessions are closed, so the pool holds idle warm lanes: one
  // more run of the same spec bytes must check a warm lane back out.
  // (Asserting on warm_runs during the storm would race run completion
  // against close_session lane returns.)
  auto cli = d.connect();
  const auto sid = cli.open(RunMode::coop, spec);
  send_vec(cli, sid, 0, inputs[0]);
  send_vec(cli, sid, 1, inputs[1]);
  RunOutcome out = cli.run(sid);
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_TRUE(out.result.warm);
  EXPECT_EQ(out.result.digest, expect);
  EXPECT_GE(d.daemon.coop_pool().reused(), 1u);
}

TEST(Service, UnknownKernelRejectedAtOpen) {
  LocalDaemon d;
  auto cli = d.connect();
  GraphSpec spec = inc_chain_spec();
  spec.kernels[0].name = "svc_not_registered";
  EXPECT_THROW(cli.open(RunMode::coop, spec), std::runtime_error);
  // The connection survives the rejected open.
  const auto sid = cli.open(RunMode::coop, inc_chain_spec());
  const std::vector<int> in = iota_vec(16, 0);
  send_vec(cli, sid, 0, in);
  EXPECT_TRUE(cli.run(sid).ok);
}

TEST(Service, LiveByteQuotaRejectsChunkButKeepsSession) {
  DaemonConfig cfg;
  cfg.quotas.max_live_bytes = 1024;
  LocalDaemon d{cfg};
  auto cli = d.connect();
  const auto sid = cli.open(RunMode::coop, inc_chain_spec());

  const std::vector<int> big = iota_vec(2048, 0);  // 8 KiB > quota
  send_vec(cli, sid, 0, big);
  RunOutcome out = cli.run(sid);
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.error.find("quota"), std::string::npos) << out.error;
  EXPECT_GE(d.daemon.stats().quota_rejections.load(), 1u);
  // The error raced ahead of the run itself: the finish_inputs above still
  // ran with the (empty) surviving buffer. Absorb that result.
  RunOutcome empty_run = cli.wait(sid);
  ASSERT_TRUE(empty_run.ok) << empty_run.error;
  EXPECT_TRUE(empty_run.outputs.at(0).empty());

  // The chunk was dropped, not the session: a small send still runs.
  const std::vector<int> small = iota_vec(64, 5);
  send_vec(cli, sid, 0, small);
  RunOutcome ok = cli.run(sid);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.outputs, run_in_process(inc_chain_spec(), {small}));
}

TEST(Service, WallBudgetExceededReportsError) {
  DaemonConfig cfg;
  cfg.quotas.wall_budget_ms = 0;  // every run blows the budget
  LocalDaemon d{cfg};
  auto cli = d.connect();
  const auto sid = cli.open(RunMode::coop, inc_chain_spec());
  const std::vector<int> in = iota_vec(64, 0);
  send_vec(cli, sid, 0, in);
  RunOutcome out = cli.run(sid);
  ASSERT_FALSE(out.ok);
  EXPECT_NE(out.error.find("wall-clock"), std::string::npos) << out.error;
}

TEST(Service, PoolEvictionUnderTinyCapacity) {
  DaemonConfig cfg;
  cfg.pool_capacity = 1;
  LocalDaemon d{cfg};
  auto cli = d.connect();
  const std::vector<int> in = iota_vec(32, 1);
  // Three distinct specs churn the single-lane pool.
  for (int extra = 0; extra < 3; ++extra) {
    const auto sid = cli.open(RunMode::coop, inc_chain_spec(extra));
    send_vec(cli, sid, 0, in);
    RunOutcome out = cli.run(sid);
    ASSERT_TRUE(out.ok) << out.error;
    cli.close_session(sid);
  }
  // close_session is fire-and-forget, so the third lane's return to the
  // pool may still be in flight. Running a fourth, distinct spec over the
  // same connection is a barrier: its open is processed after the close,
  // and its run executes after the worker has released the previous
  // session's lease.
  const auto probe = cli.open(RunMode::coop, inc_chain_spec(3));
  send_vec(cli, probe, 0, in);
  ASSERT_TRUE(cli.run(probe).ok);
  EXPECT_EQ(d.daemon.coop_pool().capacity(), 1u);
  EXPECT_GE(d.daemon.coop_pool().evicted(), 2u);
}

TEST(Service, EmptyInputProducesEmptyOutputs) {
  LocalDaemon d;
  auto cli = d.connect();
  const auto sid = cli.open(RunMode::coop, inc_chain_spec());
  RunOutcome out = cli.run(sid);  // no inputs sent at all
  ASSERT_TRUE(out.ok) << out.error;
  ASSERT_EQ(out.outputs.size(), 1u);
  EXPECT_TRUE(out.outputs[0].empty());
}

}  // namespace

// cgsim::service -- wire codec for compute graphs.
//
// Kernels are code: they cannot cross a process boundary. What crosses is
// a GraphSpec -- edges (element type name, capacity, settings), kernel
// instantiations (registered kernel name + edge ids), and the global
// input/output lists. The receiving process rebuilds a runnable graph by
// resolving every name against its ServiceRegistry: type names map to
// add_edge/push/poll thunks, kernel names map to DynamicGraphBuilder
// add_kernel thunks. A spec naming a kernel or type the server never
// registered is rejected at open time, not at run time.
//
// The serialized byte string doubles as the cache/pool key (exact-bytes
// keying, the same policy CompiledGraphCache uses): two clients submitting
// the identical spec hit the same warm session pool entry.
#pragma once

#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "../core/dynamic_graph.hpp"
#include "../core/session.hpp"
#include "../net/frame.hpp"

namespace cgsim::service {

// ---------------------------------------------------------------------------
// GraphSpec: the transportable graph description.
// ---------------------------------------------------------------------------

struct EdgeSpec {
  std::string type;  ///< registered element type name, e.g. "i32"
  int capacity = kDefaultChannelCapacity;
  PortSettings settings{};
};

struct KernelSpec {
  std::string name;        ///< registered kernel name
  std::vector<int> edges;  ///< edge ids in kernel signature order
};

struct GraphSpec {
  std::vector<EdgeSpec> edges;
  std::vector<KernelSpec> kernels;
  std::vector<int> inputs;   ///< edge ids fed by the client
  std::vector<int> outputs;  ///< edge ids streamed back to the client
};

inline constexpr std::uint32_t kGraphSpecVersion = 1;

namespace detail {
inline void put_str(std::string& out, std::string_view s) {
  net::put_varint(out, s.size());
  out.append(s);
}
inline bool get_str(const std::byte*& p, const std::byte* end,
                    std::string& s) {
  std::uint64_t n = 0;
  if (!net::get_varint(p, end, n)) return false;
  if (static_cast<std::uint64_t>(end - p) < n) return false;
  s.assign(reinterpret_cast<const char*>(p), static_cast<std::size_t>(n));
  p += n;
  return true;
}
}  // namespace detail

/// Serializes a spec into the wire/cache-key byte string.
inline std::string serialize_graph(const GraphSpec& g) {
  std::string out;
  net::put_varint(out, kGraphSpecVersion);
  net::put_varint(out, g.edges.size());
  for (const EdgeSpec& e : g.edges) {
    detail::put_str(out, e.type);
    net::put_varint(out, static_cast<std::uint64_t>(e.capacity));
    net::put_varint(out, static_cast<std::uint64_t>(e.settings.beat_bits));
    out.push_back(e.settings.rtp ? 1 : 0);
    out.push_back(static_cast<char>(e.settings.buffer));
    net::put_varint(out, static_cast<std::uint64_t>(e.settings.window_size));
    out.push_back(static_cast<char>(e.settings.io));
  }
  net::put_varint(out, g.kernels.size());
  for (const KernelSpec& k : g.kernels) {
    detail::put_str(out, k.name);
    net::put_varint(out, k.edges.size());
    for (int e : k.edges) net::put_varint(out, static_cast<std::uint64_t>(e));
  }
  net::put_varint(out, g.inputs.size());
  for (int e : g.inputs) net::put_varint(out, static_cast<std::uint64_t>(e));
  net::put_varint(out, g.outputs.size());
  for (int e : g.outputs) net::put_varint(out, static_cast<std::uint64_t>(e));
  return out;
}

/// Parses a serialized spec; returns false on malformed bytes.
inline bool parse_graph(std::span<const std::byte> bytes, GraphSpec& g) {
  const std::byte* p = bytes.data();
  const std::byte* end = p + bytes.size();
  std::uint64_t version = 0, n = 0;
  if (!net::get_varint(p, end, version) || version != kGraphSpecVersion) {
    return false;
  }
  if (!net::get_varint(p, end, n) || n > (1u << 20)) return false;
  g.edges.resize(static_cast<std::size_t>(n));
  for (EdgeSpec& e : g.edges) {
    std::uint64_t cap = 0, beat = 0, win = 0;
    if (!detail::get_str(p, end, e.type) ||
        !net::get_varint(p, end, cap)) {
      return false;
    }
    if (!net::get_varint(p, end, beat)) return false;
    if (end - p < 2) return false;
    e.settings.beat_bits = static_cast<int>(beat);
    e.settings.rtp = static_cast<std::uint8_t>(*p++) != 0;
    e.settings.buffer = static_cast<BufferMode>(*p++);
    if (!net::get_varint(p, end, win)) return false;
    if (end - p < 1) return false;
    e.settings.window_size = static_cast<int>(win);
    e.settings.io = static_cast<IoKind>(*p++);
    e.capacity = static_cast<int>(cap);
  }
  if (!net::get_varint(p, end, n) || n > (1u << 20)) return false;
  g.kernels.resize(static_cast<std::size_t>(n));
  for (KernelSpec& k : g.kernels) {
    std::uint64_t arity = 0;
    if (!detail::get_str(p, end, k.name) ||
        !net::get_varint(p, end, arity) || arity > 64) {
      return false;
    }
    k.edges.resize(static_cast<std::size_t>(arity));
    for (int& e : k.edges) {
      std::uint64_t id = 0;
      if (!net::get_varint(p, end, id)) return false;
      e = static_cast<int>(id);
    }
  }
  for (std::vector<int>* list : {&g.inputs, &g.outputs}) {
    if (!net::get_varint(p, end, n) || n > (1u << 20)) return false;
    list->resize(static_cast<std::size_t>(n));
    for (int& e : *list) {
      std::uint64_t id = 0;
      if (!net::get_varint(p, end, id)) return false;
      e = static_cast<int>(id);
    }
  }
  return p == end;
}

// ---------------------------------------------------------------------------
// ServiceRegistry: name -> construction/IO thunks.
// ---------------------------------------------------------------------------

/// Type-erased operations for one registered element type. The session
/// push/poll thunks move raw bytes between wire buffers and a typed
/// InteractiveSession; counts are in *elements*.
struct TypeOps {
  std::string name;
  std::size_t size = 0;
  int (*add_edge)(rt::DynamicGraphBuilder&, int capacity,
                  PortSettings) = nullptr;
  std::size_t (*session_push_n)(InteractiveSession&, std::size_t input_idx,
                                const void* src, std::size_t n) = nullptr;
  std::size_t (*session_poll_n)(InteractiveSession&, std::size_t output_idx,
                                void* dst, std::size_t n) = nullptr;
};

/// Type-erased instantiation thunk for one registered kernel.
struct KernelOps {
  std::string name;
  std::size_t arity = 0;
  void (*add)(rt::DynamicGraphBuilder&, std::span<const int> edges) = nullptr;
};

/// Process-wide name registries the codec resolves against. Registration
/// happens at daemon start-up (service/kernels.hpp registers the builtin
/// set); lookups are read-only afterwards, so no locking on the serve
/// path.
class ServiceRegistry {
 public:
  static ServiceRegistry& instance() {
    static ServiceRegistry r;
    return r;
  }

  template <class T>
  void register_type(std::string name) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "wire types must be trivially copyable");
    TypeOps ops;
    ops.name = name;
    ops.size = sizeof(T);
    ops.add_edge = [](rt::DynamicGraphBuilder& b, int cap, PortSettings s) {
      return b.add_edge<T>(cap, s);
    };
    ops.session_push_n = [](InteractiveSession& s, std::size_t idx,
                            const void* src, std::size_t n) {
      return s.push_n<T>(idx, static_cast<const T*>(src), n);
    };
    ops.session_poll_n = [](InteractiveSession& s, std::size_t idx,
                            void* dst, std::size_t n) {
      return s.poll_n<T>(idx, static_cast<T*>(dst), n);
    };
    types_[std::move(name)] = std::move(ops);
  }

  template <class Def>
  void register_kernel(KernelHandle<Def> /*handle*/) {
    using traits = fn_traits<decltype(&Def::body)>;
    KernelOps ops;
    ops.name = std::string{Def::kernel_name};
    ops.arity = traits::arity;
    ops.add = [](rt::DynamicGraphBuilder& b, std::span<const int> edges) {
      b.add_kernel(KernelHandle<Def>{}, edges);
    };
    kernels_[ops.name] = std::move(ops);
  }

  [[nodiscard]] const TypeOps* find_type(std::string_view name) const {
    const auto it = types_.find(std::string{name});
    return it == types_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const KernelOps* find_kernel(std::string_view name) const {
    const auto it = kernels_.find(std::string{name});
    return it == kernels_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::size_t type_count() const { return types_.size(); }
  [[nodiscard]] std::size_t kernel_count() const { return kernels_.size(); }

 private:
  std::map<std::string, TypeOps, std::less<>> types_;
  std::map<std::string, KernelOps, std::less<>> kernels_;
};

// ---------------------------------------------------------------------------
// Spec -> runnable graph.
// ---------------------------------------------------------------------------

/// Validates `spec` against the registry and materializes it into `b`.
/// Throws std::invalid_argument with a client-presentable message on any
/// unknown name, bad edge id, or arity mismatch; DynamicGraphBuilder adds
/// its own type checks on top (port element type vs edge type).
inline void build_graph(const GraphSpec& spec, rt::DynamicGraphBuilder& b) {
  const ServiceRegistry& reg = ServiceRegistry::instance();
  const int n_edges = static_cast<int>(spec.edges.size());
  for (const EdgeSpec& e : spec.edges) {
    const TypeOps* t = reg.find_type(e.type);
    if (t == nullptr) {
      throw std::invalid_argument{"unknown element type: " + e.type};
    }
    if (e.capacity < 1 || e.capacity > (1 << 24)) {
      throw std::invalid_argument{"edge capacity out of range"};
    }
    t->add_edge(b, e.capacity, e.settings);
  }
  for (const KernelSpec& k : spec.kernels) {
    const KernelOps* ops = reg.find_kernel(k.name);
    if (ops == nullptr) {
      throw std::invalid_argument{"unknown kernel: " + k.name};
    }
    if (ops->arity != k.edges.size()) {
      throw std::invalid_argument{k.name + ": wrong edge count"};
    }
    for (int e : k.edges) {
      if (e < 0 || e >= n_edges) {
        throw std::invalid_argument{k.name + ": edge id out of range"};
      }
    }
    ops->add(b, k.edges);
  }
  for (int e : spec.inputs) {
    if (e < 0 || e >= n_edges) {
      throw std::invalid_argument{"input edge id out of range"};
    }
    b.add_input(e);
  }
  for (int e : spec.outputs) {
    if (e < 0 || e >= n_edges) {
      throw std::invalid_argument{"output edge id out of range"};
    }
    b.add_output(e);
  }
  b.finalize();
}

/// Looks up the (single) element type shared by every edge of `spec`, the
/// shape the sim lane's uniform stream API requires; nullptr when edges
/// mix types.
inline const TypeOps* uniform_type(const GraphSpec& spec) {
  if (spec.edges.empty()) return nullptr;
  for (const EdgeSpec& e : spec.edges) {
    if (e.type != spec.edges.front().type) return nullptr;
  }
  return ServiceRegistry::instance().find_type(spec.edges.front().type);
}

}  // namespace cgsim::service

// cgsim::service -- blocking client for the cgsimd daemon.
//
// One ServiceClient owns one connection (blocking fd) and multiplexes any
// number of sessions over it. The API mirrors the wire conversation:
//
//   ServiceClient cli{net::connect_tcp_loopback(port)};
//   auto sid = cli.open(RunMode::coop, spec);
//   cli.send_input(sid, 0, data.data(), data.size() * sizeof(int));
//   auto out = cli.run(sid);             // finish_inputs + wait for result
//   cli.send_rtp(sid, 1, &v, sizeof v);  // warm rerun: only input 1 changed
//   out = cli.run(sid);
//
// Runs pipeline: start_run() on several sessions, then wait() them in any
// order -- frames for other sessions are routed to their per-session state
// while waiting. Sends respect the server's credit window (the client
// parks in read until credit returns), so a bulk upload exerts
// backpressure instead of ballooning either side's buffers.
//
// Not thread-safe: one thread per ServiceClient (use several connections
// for concurrency -- sessions are cheap, connections are cheap, the
// daemon's epoll loop multiplexes both).
#pragma once

#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "../net/frame.hpp"
#include "../net/socket.hpp"
#include "graph_codec.hpp"
#include "protocol.hpp"

namespace cgsim::service {

/// Outcome of one session run.
struct RunOutcome {
  bool ok = false;
  std::string error;
  SessionResultMsg result{};
  std::vector<std::string> outputs;  ///< element bytes per global output

  /// Typed view of one output stream.
  template <class T>
  [[nodiscard]] std::vector<T> output_as(std::size_t idx) const {
    const std::string& raw = outputs.at(idx);
    std::vector<T> v(raw.size() / sizeof(T));
    std::memcpy(v.data(), raw.data(), v.size() * sizeof(T));
    return v;
  }
};

class ServiceClient {
 public:
  /// Takes ownership of a connected (blocking) socket and performs the
  /// versioned handshake; throws on reject or version skew.
  explicit ServiceClient(net::Fd fd) : fd_(std::move(fd)) {
    net::client_handshake(fd_.get(), writer_, reader_);
  }

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  ~ServiceClient() {
    if (fd_.valid()) {
      writer_.frame(net::FrameType::goodbye, 0, nullptr, 0);
      (void)writer_.flush(fd_.get());
    }
  }

  /// Opens a session for `spec`; returns its id. Throws if the server
  /// rejects the spec (unknown kernel/type, malformed graph, ...).
  std::uint64_t open(RunMode mode, const GraphSpec& spec) {
    const std::uint64_t sid = next_sid_++;
    OpenSessionMsg msg;
    msg.mode = mode;
    msg.graph = serialize_graph(spec);
    send_frame(net::FrameType::open_session, sid, msg.encode());
    Sess& s = sessions_[sid];
    s.n_outputs = spec.outputs.size();
    while (!s.opened && s.open_error.empty()) read_one();
    if (!s.open_error.empty()) {
      const std::string err = s.open_error;
      sessions_.erase(sid);
      throw std::runtime_error{"open_session: " + err};
    }
    return sid;
  }

  /// Streams `bytes` of raw elements into global input `idx`. Blocks when
  /// the credit window is exhausted until the server grants more.
  void send_input(std::uint64_t sid, std::size_t idx, const void* data,
                  std::size_t bytes) {
    send_chunk(net::FrameType::input_chunk, sid, idx, data, bytes);
  }

  /// Replaces input `idx` wholesale (RTP-style scalar or small update);
  /// unchanged inputs persist server-side across warm reruns.
  void send_rtp(std::uint64_t sid, std::size_t idx, const void* data,
                std::size_t bytes) {
    send_chunk(net::FrameType::rtp_update, sid, idx, data, bytes);
  }

  /// Dispatches the run server-side without waiting (pipelining).
  void start_run(std::uint64_t sid) {
    send_frame(net::FrameType::finish_inputs, sid, std::string{});
  }

  /// Blocks until the next result (or error) for `sid` arrives.
  RunOutcome wait(std::uint64_t sid) {
    Sess& s = session(sid);
    while (s.done.empty()) read_one();
    RunOutcome out = std::move(s.done.front());
    s.done.pop_front();
    return out;
  }

  RunOutcome run(std::uint64_t sid) {
    start_run(sid);
    return wait(sid);
  }

  /// Frees server-side session state (the warm lane returns to the pool).
  void close_session(std::uint64_t sid) {
    send_frame(net::FrameType::close_session, sid, std::string{});
    sessions_.erase(sid);
  }

 private:
  struct Sess {
    bool opened = false;
    std::string open_error;
    std::uint64_t credit = 0;
    std::uint64_t window = 0;  ///< full window size granted at open
    std::size_t n_outputs = 0;
    std::vector<std::string> outputs;  ///< accumulating for the next result
    std::deque<RunOutcome> done;
  };

  Sess& session(std::uint64_t sid) {
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) {
      throw std::logic_error{"unknown session id"};
    }
    return it->second;
  }

  void send_frame(net::FrameType type, std::uint64_t sid,
                  std::string payload) {
    // Blocking fd: flush completes or fails, never would_block.
    writer_.frame(type, sid, payload.data(), payload.size());
    if (writer_.flush(fd_.get()) != net::FrameWriter::IoResult::ok) {
      throw std::runtime_error{"service client: connection lost on send"};
    }
  }

  void send_chunk(net::FrameType type, std::uint64_t sid, std::size_t idx,
                  const void* data, std::size_t bytes) {
    Sess& s = session(sid);
    std::string payload = ChunkMsg::encode_header(idx);
    payload.append(static_cast<const char*>(data), bytes);
    if (payload.size() > s.window) {
      throw std::invalid_argument{
          "chunk exceeds the credit window; split it across sends"};
    }
    while (s.credit < payload.size()) read_one();  // park for credit
    s.credit -= payload.size();
    send_frame(type, sid, std::move(payload));
  }

  /// Reads and routes exactly one frame (blocking).
  void read_one() {
    for (;;) {
      net::FrameView f;
      std::string err;
      const auto pr = reader_.next(f, &err);
      if (pr == net::FrameReader::ParseResult::corrupt) {
        throw std::runtime_error{"service client: " + err};
      }
      if (pr == net::FrameReader::ParseResult::frame) {
        dispatch(f);
        return;
      }
      const auto io = reader_.fill(fd_.get());
      if (io == net::FrameReader::IoResult::eof ||
          io == net::FrameReader::IoResult::error) {
        throw std::runtime_error{"service client: connection lost"};
      }
      if (io == net::FrameReader::IoResult::would_block) {
        net::wait_fd(fd_.get(), false, -1);
      }
    }
  }

  void dispatch(const net::FrameView& f) {
    const auto it = sessions_.find(f.stream);
    if (it == sessions_.end()) return;  // late frame for a closed session
    Sess& s = it->second;
    switch (f.type) {
      case net::FrameType::open_ack: {
        OpenAckMsg ack;
        if (!OpenAckMsg::decode(f.payload, ack)) {
          s.open_error = "malformed open_ack";
          return;
        }
        s.credit = ack.input_credit;
        s.window = ack.input_credit;
        s.opened = true;
        s.outputs.assign(s.n_outputs, {});
        return;
      }
      case net::FrameType::credit: {
        const std::byte* p = f.payload.data();
        std::uint64_t grant = 0;
        if (net::get_varint(p, p + f.payload.size(), grant)) {
          s.credit += grant;
        }
        return;
      }
      case net::FrameType::output_chunk: {
        ChunkMsg m;
        if (ChunkMsg::decode(f.payload, m) && m.index < s.outputs.size()) {
          s.outputs[static_cast<std::size_t>(m.index)].append(
              reinterpret_cast<const char*>(m.bytes.data()), m.bytes.size());
        }
        return;
      }
      case net::FrameType::session_result: {
        RunOutcome out;
        out.ok = SessionResultMsg::decode(f.payload, out.result);
        if (!out.ok) out.error = "malformed session_result";
        out.outputs = std::move(s.outputs);
        s.outputs.assign(s.n_outputs, {});
        s.done.push_back(std::move(out));
        return;
      }
      case net::FrameType::session_error: {
        const std::string msg{
            reinterpret_cast<const char*>(f.payload.data()),
            f.payload.size()};
        if (!s.opened) {
          s.open_error = msg.empty() ? "session rejected" : msg;
          return;
        }
        RunOutcome out;
        out.ok = false;
        out.error = msg;
        out.outputs = std::move(s.outputs);
        s.outputs.assign(s.n_outputs, {});
        s.done.push_back(std::move(out));
        return;
      }
      default:
        return;
    }
  }

  net::Fd fd_;
  net::FrameWriter writer_;
  net::FrameReader reader_;
  std::map<std::uint64_t, Sess> sessions_;
  std::uint64_t next_sid_ = 1;
};

}  // namespace cgsim::service

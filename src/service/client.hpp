// cgsim::service -- blocking client for the cgsimd daemon.
//
// One ServiceClient owns one connection (blocking fd) and multiplexes any
// number of sessions over it. The API mirrors the wire conversation:
//
//   ServiceClient cli{net::connect_tcp_loopback(port)};
//   auto sid = cli.open(RunMode::coop, spec);
//   cli.send_input(sid, 0, data.data(), data.size() * sizeof(int));
//   auto out = cli.run(sid);             // finish_inputs + wait for result
//   cli.send_rtp(sid, 1, &v, sizeof v);  // warm rerun: only input 1 changed
//   out = cli.run(sid);
//
// Runs pipeline: start_run() on several sessions, then wait() them in any
// order -- frames for other sessions are routed to their per-session state
// while waiting. Sends respect the server's credit window (the client
// parks in read until credit returns), so a bulk upload exerts
// backpressure instead of ballooning either side's buffers.
//
// Not thread-safe: one thread per ServiceClient (use several connections
// for concurrency -- sessions are cheap, connections are cheap, the
// daemon's epoll loop multiplexes both).
#pragma once

#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "../net/frame.hpp"
#include "../net/shm_ring.hpp"
#include "../net/socket.hpp"
#include "graph_codec.hpp"
#include "protocol.hpp"

namespace cgsim::service {

struct ServiceClientOptions {
  /// Offer kFeatureShm and, when the daemon acks it, negotiate a
  /// shared-memory plane. Degrades transparently: a daemon that does not
  /// ack the feature, cannot map the segment (remote peer), or predates
  /// it leaves the client on the plain socket path.
  bool use_shm = true;
  std::size_t shm_ring_bytes = 4 << 20;  ///< per-direction ring capacity
  /// Chunks of at least this many bytes take the ring; smaller ones stay
  /// on the socket.
  std::size_t shm_threshold = 4 << 10;
};

/// Outcome of one session run.
struct RunOutcome {
  bool ok = false;
  std::string error;
  SessionResultMsg result{};
  std::vector<std::string> outputs;  ///< element bytes per global output

  /// Typed view of one output stream.
  template <class T>
  [[nodiscard]] std::vector<T> output_as(std::size_t idx) const {
    const std::string& raw = outputs.at(idx);
    std::vector<T> v(raw.size() / sizeof(T));
    std::memcpy(v.data(), raw.data(), v.size() * sizeof(T));
    return v;
  }
};

class ServiceClient {
 public:
  /// Takes ownership of a connected (blocking) socket and performs the
  /// versioned handshake; throws on reject or version skew.
  explicit ServiceClient(net::Fd fd, ServiceClientOptions opts = {})
      : fd_(std::move(fd)), opts_(opts) {
    const std::uint32_t granted = net::client_handshake(
        fd_.get(), writer_, reader_,
        opts_.use_shm ? net::kFeatureShm : 0u);
    if ((granted & net::kFeatureShm) != 0) setup_shm();
  }

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  ~ServiceClient() {
    if (fd_.valid()) {
      writer_.frame(net::FrameType::goodbye, 0, nullptr, 0);
      (void)writer_.flush(fd_.get());
    }
  }

  /// Opens a session for `spec`; returns its id. Throws if the server
  /// rejects the spec (unknown kernel/type, malformed graph, ...).
  std::uint64_t open(RunMode mode, const GraphSpec& spec) {
    const std::uint64_t sid = next_sid_++;
    OpenSessionMsg msg;
    msg.mode = mode;
    msg.graph = serialize_graph(spec);
    send_frame(net::FrameType::open_session, sid, msg.encode());
    Sess& s = sessions_[sid];
    s.n_outputs = spec.outputs.size();
    while (!s.opened && s.open_error.empty()) read_one();
    if (!s.open_error.empty()) {
      const std::string err = s.open_error;
      sessions_.erase(sid);
      throw std::runtime_error{"open_session: " + err};
    }
    return sid;
  }

  /// Streams `bytes` of raw elements into global input `idx`. Blocks when
  /// the credit window is exhausted until the server grants more.
  void send_input(std::uint64_t sid, std::size_t idx, const void* data,
                  std::size_t bytes) {
    send_chunk(net::FrameType::input_chunk, sid, idx, data, bytes);
  }

  /// Replaces input `idx` wholesale (RTP-style scalar or small update);
  /// unchanged inputs persist server-side across warm reruns.
  void send_rtp(std::uint64_t sid, std::size_t idx, const void* data,
                std::size_t bytes) {
    send_chunk(net::FrameType::rtp_update, sid, idx, data, bytes);
  }

  /// Dispatches the run server-side without waiting (pipelining).
  void start_run(std::uint64_t sid) {
    send_frame(net::FrameType::finish_inputs, sid, std::string{});
  }

  /// Blocks until the next result (or error) for `sid` arrives.
  RunOutcome wait(std::uint64_t sid) {
    Sess& s = session(sid);
    while (s.done.empty()) read_one();
    RunOutcome out = std::move(s.done.front());
    s.done.pop_front();
    return out;
  }

  RunOutcome run(std::uint64_t sid) {
    start_run(sid);
    return wait(sid);
  }

  /// Frees server-side session state (the warm lane returns to the pool).
  void close_session(std::uint64_t sid) {
    send_frame(net::FrameType::close_session, sid, std::string{});
    sessions_.erase(sid);
  }

  /// True when a shared-memory plane was negotiated: bulk transfers in
  /// both directions bypass the socket.
  [[nodiscard]] bool shm_active() const { return shm_active_; }

 private:
  /// Negotiates the shm plane after the feature handshake: create a named
  /// segment, announce it, wait for the daemon's verdict. Any failure --
  /// creation, mapping on the daemon's side, a daemon on another host --
  /// leaves the client on the socket path.
  void setup_shm() {
    try {
      plane_ = net::ShmPlane::create_initiator(opts_.shm_ring_bytes);
    } catch (const std::exception&) {
      return;  // /dev/shm unavailable: stay on the socket
    }
    net::ShmSetupMsg m;
    m.ring_bytes = plane_.ring_bytes();
    m.name = plane_.name();
    send_frame(net::FrameType::shm_setup, 0, m.encode());
    while (!shm_ack_seen_) read_one();
    // The daemon unlinks the name when it attaches; unlink here too so a
    // refusal (or a crash between) cannot leak a /dev/shm entry.
    plane_.unlink_name();
    if (!shm_active_) plane_ = net::ShmPlane{};
  }
  struct Sess {
    bool opened = false;
    std::string open_error;
    std::uint64_t credit = 0;
    std::uint64_t window = 0;  ///< full window size granted at open
    std::size_t n_outputs = 0;
    std::vector<std::string> outputs;  ///< accumulating for the next result
    std::deque<RunOutcome> done;
  };

  Sess& session(std::uint64_t sid) {
    const auto it = sessions_.find(sid);
    if (it == sessions_.end()) {
      throw std::logic_error{"unknown session id"};
    }
    return it->second;
  }

  void send_frame(net::FrameType type, std::uint64_t sid,
                  std::string payload) {
    // Blocking fd: flush completes or fails, never would_block.
    writer_.frame(type, sid, payload.data(), payload.size());
    if (writer_.flush(fd_.get()) != net::FrameWriter::IoResult::ok) {
      throw std::runtime_error{"service client: connection lost on send"};
    }
  }

  void send_chunk(net::FrameType type, std::uint64_t sid, std::size_t idx,
                  const void* data, std::size_t bytes) {
    Sess& s = session(sid);
    if (shm_active_ && bytes >= opts_.shm_threshold &&
        send_chunk_shm(type, s, sid, idx, data, bytes)) {
      return;
    }
    std::string payload = ChunkMsg::encode_header(idx);
    payload.append(static_cast<const char*>(data), bytes);
    if (payload.size() > s.window) {
      throw std::invalid_argument{
          "chunk exceeds the credit window; split it across sends"};
    }
    while (s.credit < payload.size()) read_one();  // park for credit
    s.credit -= payload.size();
    send_frame(type, sid, std::move(payload));
  }

  /// Ships a chunk through the ring: payload first, announcement second
  /// (the ring-first contract -- announced bytes are always already
  /// present on the daemon's side). Credit covers announcement + payload
  /// bytes, and the window never exceeds the ring capacity in a sane
  /// config, so the all-or-nothing try_write cannot fail; if it ever does
  /// (window misconfigured past the ring size), nothing was written and
  /// the caller falls back to the socket.
  bool send_chunk_shm(net::FrameType type, Sess& s, std::uint64_t sid,
                      std::size_t idx, const void* data, std::size_t bytes) {
    std::string control = ShmChunkMsg::encode(idx, bytes);
    const std::size_t need = control.size() + bytes;
    if (need > s.window) {
      throw std::invalid_argument{
          "chunk exceeds the credit window; split it across sends"};
    }
    while (s.credit < need) read_one();  // park for credit
    if (!plane_.tx().try_write(data, bytes)) return false;
    s.credit -= need;
    send_frame(type == net::FrameType::rtp_update
                   ? net::FrameType::shm_rtp
                   : net::FrameType::shm_chunk,
               sid, std::move(control));
    return true;
  }

  /// Reads and routes exactly one frame (blocking).
  void read_one() {
    for (;;) {
      net::FrameView f;
      std::string err;
      const auto pr = reader_.next(f, &err);
      if (pr == net::FrameReader::ParseResult::corrupt) {
        throw std::runtime_error{"service client: " + err};
      }
      if (pr == net::FrameReader::ParseResult::frame) {
        dispatch(f);
        return;
      }
      const auto io = reader_.fill(fd_.get());
      if (io == net::FrameReader::IoResult::eof ||
          io == net::FrameReader::IoResult::error) {
        throw std::runtime_error{"service client: connection lost"};
      }
      if (io == net::FrameReader::IoResult::would_block) {
        net::wait_fd(fd_.get(), false, -1);
      }
    }
  }

  void dispatch(const net::FrameView& f) {
    if (f.type == net::FrameType::shm_ack) {
      shm_ack_seen_ = true;
      shm_active_ = !f.payload.empty() && f.payload[0] == std::byte{1};
      return;
    }
    if (f.type == net::FrameType::shm_output) {
      on_shm_output(f);  // consumes ring bytes even for closed sessions
      return;
    }
    const auto it = sessions_.find(f.stream);
    if (it == sessions_.end()) return;  // late frame for a closed session
    Sess& s = it->second;
    switch (f.type) {
      case net::FrameType::open_ack: {
        OpenAckMsg ack;
        if (!OpenAckMsg::decode(f.payload, ack)) {
          s.open_error = "malformed open_ack";
          return;
        }
        s.credit = ack.input_credit;
        s.window = ack.input_credit;
        s.opened = true;
        s.outputs.assign(s.n_outputs, {});
        return;
      }
      case net::FrameType::credit: {
        const std::byte* p = f.payload.data();
        std::uint64_t grant = 0;
        if (net::get_varint(p, p + f.payload.size(), grant)) {
          s.credit += grant;
        }
        return;
      }
      case net::FrameType::output_chunk: {
        ChunkMsg m;
        if (ChunkMsg::decode(f.payload, m) && m.index < s.outputs.size()) {
          s.outputs[static_cast<std::size_t>(m.index)].append(
              reinterpret_cast<const char*>(m.bytes.data()), m.bytes.size());
        }
        return;
      }
      case net::FrameType::session_result: {
        RunOutcome out;
        out.ok = SessionResultMsg::decode(f.payload, out.result);
        if (!out.ok) out.error = "malformed session_result";
        out.outputs = std::move(s.outputs);
        s.outputs.assign(s.n_outputs, {});
        s.done.push_back(std::move(out));
        return;
      }
      case net::FrameType::session_error: {
        const std::string msg{
            reinterpret_cast<const char*>(f.payload.data()),
            f.payload.size()};
        if (!s.opened) {
          s.open_error = msg.empty() ? "session rejected" : msg;
          return;
        }
        RunOutcome out;
        out.ok = false;
        out.error = msg;
        out.outputs = std::move(s.outputs);
        s.outputs.assign(s.n_outputs, {});
        s.done.push_back(std::move(out));
        return;
      }
      default:
        return;
    }
  }

  /// Output via the ring: the daemon wrote the bytes before sending this
  /// announcement, so they are guaranteed readable. Exactly nbytes leave
  /// the ring on every path (into the output buffer, or discarded when
  /// the session is gone) -- the ring would desynchronize otherwise.
  void on_shm_output(const net::FrameView& f) {
    ShmChunkMsg m;
    if (!shm_active_ || !ShmChunkMsg::decode(f.payload, m)) {
      throw std::runtime_error{"service client: malformed shm_output"};
    }
    const auto nbytes = static_cast<std::size_t>(m.nbytes);
    const auto it = sessions_.find(f.stream);
    if (it != sessions_.end() && m.index < it->second.outputs.size()) {
      std::string& out = it->second.outputs[static_cast<std::size_t>(m.index)];
      const std::size_t old = out.size();
      out.resize(old + nbytes);
      if (plane_.rx().try_read_exact(out.data() + old, nbytes)) return;
      out.resize(old);
      throw std::runtime_error{"service client: shm ring underrun"};
    }
    std::byte scratch[4096];  // closed session: drain and drop
    std::size_t left = nbytes;
    while (left > 0) {
      const std::size_t k = std::min(left, sizeof(scratch));
      if (!plane_.rx().try_read_exact(scratch, k)) {
        throw std::runtime_error{"service client: shm ring underrun"};
      }
      left -= k;
    }
  }

  net::Fd fd_;
  ServiceClientOptions opts_;
  net::FrameWriter writer_;
  net::FrameReader reader_;
  net::ShmPlane plane_;
  bool shm_active_ = false;
  bool shm_ack_seen_ = false;
  std::map<std::uint64_t, Sess> sessions_;
  std::uint64_t next_sid_ = 1;
};

}  // namespace cgsim::service

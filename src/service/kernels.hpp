// cgsim::service -- the builtin wire-visible kernel set.
//
// Clients compose graphs out of kernels the server registered by name;
// this header defines a small generic set (increment, add, scale, split,
// saturating accumulate) over i32 and f32 streams and registers them,
// together with the two element types, into the process ServiceRegistry.
// Applications embedding the daemon can register additional kernels the
// same way before serving.
#pragma once

#include <mutex>

#include "../core/cgsim.hpp"
#include "graph_codec.hpp"

namespace cgsim::service {

COMPUTE_KERNEL(aie, svc_inc_i32, cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() + 1);
}

COMPUTE_KERNEL(aie, svc_double_i32, cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  while (true) co_await out.put(co_await in.get() * 2);
}

COMPUTE_KERNEL(aie, svc_add_i32, cgsim::KernelReadPort<int> a,
               cgsim::KernelReadPort<int> b,
               cgsim::KernelWritePort<int> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

COMPUTE_KERNEL(aie, svc_split_i32, cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> lo,
               cgsim::KernelWritePort<int> hi) {
  while (true) {
    const int v = co_await in.get();
    co_await lo.put(v);
    co_await hi.put(v >> 1);
  }
}

COMPUTE_KERNEL(aie, svc_mac_i32, cgsim::KernelReadPort<int> in,
               cgsim::KernelWritePort<int> out) {
  int acc = 0;
  while (true) {
    acc += co_await in.get();
    co_await out.put(acc);
  }
}

COMPUTE_KERNEL(aie, svc_scale_f32, cgsim::KernelReadPort<float> in,
               cgsim::KernelWritePort<float> out) {
  while (true) co_await out.put(co_await in.get() * 0.5f);
}

COMPUTE_KERNEL(aie, svc_add_f32, cgsim::KernelReadPort<float> a,
               cgsim::KernelReadPort<float> b,
               cgsim::KernelWritePort<float> out) {
  while (true) co_await out.put(co_await a.get() + co_await b.get());
}

/// Registers the builtin types and kernels; idempotent and safe to call
/// from every entry point that may run first (daemon start, client-side
/// spec building in tests).
inline void register_builtin_kernels() {
  static std::once_flag once;
  std::call_once(once, [] {
    ServiceRegistry& r = ServiceRegistry::instance();
    r.register_type<int>("i32");
    r.register_type<float>("f32");
    r.register_kernel(svc_inc_i32);
    r.register_kernel(svc_double_i32);
    r.register_kernel(svc_add_i32);
    r.register_kernel(svc_split_i32);
    r.register_kernel(svc_mac_i32);
    r.register_kernel(svc_scale_f32);
    r.register_kernel(svc_add_f32);
  });
}

}  // namespace cgsim::service

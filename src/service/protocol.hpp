// cgsim::service -- request/response payload codecs and session policy.
//
// Frame *payloads* for the service conversation (the frame envelope lives
// in net/frame.hpp). Every message is varint-composed and versionless --
// the connection handshake already pinned the protocol version.
//
// Conversation, per session (stream id = client-chosen session id > 0):
//
//   client                          server
//   open_session(mode, spec) ---->
//                            <----  open_ack(input_credit)   | session_error
//   input_chunk(idx, bytes)* ---->                           (repeatable)
//   rtp_update(idx, bytes)*  ---->
//   finish_inputs            ---->  ... simulation dispatched ...
//                            <----  credit(consumed input bytes)
//                            <----  output_chunk(idx, bytes)*
//                            <----  session_result(digest, stats)
//   [loop back to input_chunk* for a warm re-run of the same session]
//   close_session            ---->
//
// Quotas are per session and enforced with backpressure semantics: the
// input credit window caps in-flight bytes (a well-behaved client stops
// sending, a misbehaving one gets session_error -- never a disconnect);
// the wall budget bounds simulation time server-side.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "../net/frame.hpp"

namespace cgsim::service {

// ---------------------------------------------------------------------------
// Digest: FNV-1a 64 over output byte streams.
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kFnvSeed = 1469598103934665603ull;

[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t n,
                                         std::uint64_t h = kFnvSeed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Digest of a whole output set: per-output byte digests chained in output
/// order, so client- and server-side computations agree bit for bit.
[[nodiscard]] inline std::uint64_t outputs_digest(
    const std::vector<std::string>& outputs) {
  std::uint64_t h = kFnvSeed;
  for (const std::string& out : outputs) {
    h = fnv1a(out.data(), out.size(), h);
    h ^= out.size();  // length delimiter: {"ab",""} != {"a","b"}
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Session policy.
// ---------------------------------------------------------------------------

/// Execution lane for a session's runs.
enum class RunMode : std::uint8_t {
  coop = 0,  ///< functional: warm InteractiveSession, no timing model
  sim = 1,   ///< cycle-approximate: warm ResimSession + CompiledGraphCache
};

/// Per-session resource quotas (server policy, advertised via open_ack
/// where the client needs them).
struct Quotas {
  std::size_t input_credit = 1 << 20;    ///< in-flight input byte window
  std::size_t max_live_bytes = 8 << 20;  ///< buffered in+out bytes cap
  std::size_t max_queued_frames = 4096;  ///< undelivered frames per session
  std::uint64_t wall_budget_ms = 10'000; ///< per-run simulation budget
};

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

struct OpenSessionMsg {
  RunMode mode = RunMode::coop;
  std::string graph;  ///< serialize_graph() bytes

  [[nodiscard]] std::string encode() const {
    std::string s;
    s.push_back(static_cast<char>(mode));
    net::put_varint(s, graph.size());
    s.append(graph);
    return s;
  }
  [[nodiscard]] static bool decode(std::span<const std::byte> p,
                                   OpenSessionMsg& m) {
    if (p.empty()) return false;
    const std::byte* it = p.data() + 1;
    const std::byte* end = p.data() + p.size();
    std::uint64_t n = 0;
    if (!net::get_varint(it, end, n) ||
        static_cast<std::uint64_t>(end - it) != n) {
      return false;
    }
    m.mode = static_cast<RunMode>(p[0]);
    m.graph.assign(reinterpret_cast<const char*>(it),
                   static_cast<std::size_t>(n));
    return true;
  }
};

struct OpenAckMsg {
  std::uint64_t input_credit = 0;
  std::uint64_t max_live_bytes = 0;

  [[nodiscard]] std::string encode() const {
    std::string s;
    net::put_varint(s, input_credit);
    net::put_varint(s, max_live_bytes);
    return s;
  }
  [[nodiscard]] static bool decode(std::span<const std::byte> p,
                                   OpenAckMsg& m) {
    const std::byte* it = p.data();
    const std::byte* end = it + p.size();
    return net::get_varint(it, end, m.input_credit) &&
           net::get_varint(it, end, m.max_live_bytes);
  }
};

/// input_chunk / rtp_update / output_chunk share one shape: varint stream
/// index + raw element bytes (element size implied by the edge type).
struct ChunkMsg {
  std::uint64_t index = 0;
  std::span<const std::byte> bytes{};  ///< borrowed from the frame payload

  [[nodiscard]] static std::string encode_header(std::uint64_t index) {
    std::string s;
    net::put_varint(s, index);
    return s;
  }
  [[nodiscard]] static bool decode(std::span<const std::byte> p,
                                   ChunkMsg& m) {
    const std::byte* it = p.data();
    const std::byte* end = it + p.size();
    if (!net::get_varint(it, end, m.index)) return false;
    m.bytes = std::span<const std::byte>{
        it, static_cast<std::size_t>(end - it)};
    return true;
  }
};

/// shm_chunk / shm_rtp / shm_output control header: the announced bytes
/// live in the connection's shm ring, not in the frame payload.
struct ShmChunkMsg {
  std::uint64_t index = 0;
  std::uint64_t nbytes = 0;

  [[nodiscard]] static std::string encode(std::uint64_t index,
                                          std::uint64_t nbytes) {
    std::string s;
    net::put_varint(s, index);
    net::put_varint(s, nbytes);
    return s;
  }
  [[nodiscard]] static bool decode(std::span<const std::byte> p,
                                   ShmChunkMsg& m) {
    const std::byte* it = p.data();
    const std::byte* end = it + p.size();
    return net::get_varint(it, end, m.index) &&
           net::get_varint(it, end, m.nbytes);
  }
};

struct SessionResultMsg {
  std::uint64_t digest = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t virtual_cycles = 0;  ///< 0 in coop mode
  std::uint64_t server_us = 0;       ///< wall time of the run on the server
  bool warm = false;                 ///< served by a pooled warm session
  bool incremental = false;          ///< cone-limited resimulation hit
  bool persisted = false;  ///< compiled artifact loaded from the on-disk store

  [[nodiscard]] std::string encode() const {
    std::string s;
    net::put_varint(s, digest);
    net::put_varint(s, output_bytes);
    net::put_varint(s, virtual_cycles);
    net::put_varint(s, server_us);
    s.push_back(static_cast<char>((warm ? 1 : 0) | (incremental ? 2 : 0) |
                                  (persisted ? 4 : 0)));
    return s;
  }
  [[nodiscard]] static bool decode(std::span<const std::byte> p,
                                   SessionResultMsg& m) {
    const std::byte* it = p.data();
    const std::byte* end = it + p.size();
    if (!net::get_varint(it, end, m.digest) ||
        !net::get_varint(it, end, m.output_bytes) ||
        !net::get_varint(it, end, m.virtual_cycles) ||
        !net::get_varint(it, end, m.server_us) || it == end) {
      return false;
    }
    const auto flags = static_cast<std::uint8_t>(*it);
    m.warm = (flags & 1) != 0;
    m.incremental = (flags & 2) != 0;
    m.persisted = (flags & 4) != 0;
    return true;
  }
};

}  // namespace cgsim::service

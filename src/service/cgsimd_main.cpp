// cgsimd -- the cgsim simulation daemon.
//
//   cgsimd --port 7463            # TCP loopback
//   cgsimd --unix /tmp/cgsim.sock # AF_UNIX
//
// Serves compute-graph simulation sessions over the cgsim::service wire
// protocol (docs/SERVICE.md) until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "client.hpp"  // IWYU pragma: keep (protocol sanity at build time)
#include "daemon.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N | --unix PATH] [--io-threads N] "
               "[--workers N] [--pool-capacity N]\n"
               "          [--cache-dir PATH] [--cache-bytes N] "
               "[--cache-files N] [--no-shm]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7463;
  std::string unix_path;
  cgsim::service::DaemonConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--unix") {
      unix_path = next();
    } else if (arg == "--io-threads") {
      cfg.io_threads = std::atoi(next());
    } else if (arg == "--workers") {
      cfg.workers = std::atoi(next());
    } else if (arg == "--pool-capacity") {
      cfg.pool_capacity = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--cache-dir") {
      cfg.cache_dir = next();
    } else if (arg == "--cache-bytes") {
      cfg.cache_max_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--cache-files") {
      cfg.cache_max_files = static_cast<std::size_t>(std::atol(next()));
    } else if (arg == "--no-shm") {
      cfg.enable_shm = false;
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  cgsim::net::Fd listen_fd;
  std::uint16_t bound = 0;
  try {
    if (!unix_path.empty()) {
      listen_fd = cgsim::net::listen_unix(unix_path);
    } else {
      listen_fd = cgsim::net::listen_tcp_loopback(port, &bound);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cgsimd: %s\n", e.what());
    return 1;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  cgsim::service::Daemon daemon{std::move(listen_fd), cfg};
  if (!unix_path.empty()) {
    std::fprintf(stderr, "cgsimd: serving on %s (%d workers)\n",
                 unix_path.c_str(), daemon.workers());
  } else {
    std::fprintf(stderr, "cgsimd: serving on 127.0.0.1:%u (%d workers)\n",
                 bound, daemon.workers());
  }
  while (g_stop == 0) {
    pause();  // signals break the sleep
  }
  daemon.stop();
  const auto& st = daemon.stats();
  std::fprintf(stderr,
               "cgsimd: %llu connections (%llu shm), %llu sessions, "
               "%llu runs (%llu warm, %llu incremental, %llu persisted), "
               "%llu errors\n",
               static_cast<unsigned long long>(st.connections.load()),
               static_cast<unsigned long long>(st.shm_conns.load()),
               static_cast<unsigned long long>(st.sessions_opened.load()),
               static_cast<unsigned long long>(st.runs.load()),
               static_cast<unsigned long long>(st.warm_runs.load()),
               static_cast<unsigned long long>(st.incremental_runs.load()),
               static_cast<unsigned long long>(st.persisted_binds.load()),
               static_cast<unsigned long long>(st.session_errors.load()));
  return 0;
}

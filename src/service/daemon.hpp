// cgsim::service -- the cgsimd daemon: epoll-driven simulation service.
//
// Thread architecture (ISSUE: "one acceptor + N I/O threads" + worker pool):
//
//   acceptor ---> round-robin ---> I/O thread 0..N-1 (epoll, edge-triggered)
//                                     |  parse frames, own the sockets
//                                     v  finish_inputs -> post job
//                                  SweepRunner workers (simulation)
//                                     |  results as Mail + eventfd wake
//                                     +--> back to the owning I/O thread,
//                                          which frames + flushes replies
//
// Ownership discipline that keeps this lock-light:
//   * a socket is touched by exactly one I/O thread -- readers, writers and
//     epoll registration never migrate;
//   * per-session protocol state (buffers, quotas, run queue) is I/O-thread
//     only; workers see an immutable RunRequest snapshot plus worker-only
//     lane state (the pool lease), and runs of one session never overlap
//     (the I/O thread serializes them through ServerSession::queued);
//   * the only cross-thread seams are SweepRunner::post() and the Mail
//     queue (one mutex per connection, locked for a splice).
//
// Warm multiplexing: lane state (a built graph + a live session) is keyed
// by the *serialized spec bytes* in a bounded SessionPool -- the same
// exact-bytes policy CompiledGraphCache uses one layer down. A client
// re-running its session reuses its leased lane directly; a new client
// with an identical spec checks a warm lane out of the pool; and even a
// cold lane construction hits the process-wide compiled-graph cache.
#pragma once

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "../aiesim/compiled_store.hpp"
#include "../aiesim/resim.hpp"
#include "../core/session.hpp"
#include "../core/sweep.hpp"
#include "../net/frame.hpp"
#include "../net/shm_ring.hpp"
#include "../net/socket.hpp"
#include "graph_codec.hpp"
#include "kernels.hpp"
#include "protocol.hpp"

namespace cgsim::service {

/// Copy-on-write input snapshot: a run borrows the session's input buffers
/// by reference instead of copying megabytes per dispatch. The I/O thread
/// clones a buffer only when the client mutates it while a snapshot is
/// live, so the common warm-rerun flow (touch one input, rerun) copies
/// exactly the touched buffer.
using InputSnapshot = std::vector<std::shared_ptr<const std::string>>;

// ---------------------------------------------------------------------------
// Sim-lane type erasure. TypeOps (graph_codec.hpp) covers the coop lane
// with core-only thunks; the cycle-approximate lane additionally needs
// ResimSession stream entry points, which only the daemon (linking
// aiesim) can instantiate -- hence a second, daemon-local registry.
// ---------------------------------------------------------------------------

struct SimStreamOps {
  std::size_t size = 0;  ///< element size in bytes
  aiesim::SimResult (*run)(aiesim::ResimSession&,
                           const InputSnapshot& in_bytes,
                           std::vector<std::string>& out_bytes) = nullptr;
  aiesim::SimResult (*resim)(aiesim::ResimSession&,
                             const std::vector<std::size_t>& dirty,
                             const InputSnapshot& in_bytes,
                             std::vector<std::string>& out_bytes) = nullptr;
};

namespace detail {
template <class T>
std::vector<std::vector<T>> bytes_to_streams(const InputSnapshot& in) {
  std::vector<std::vector<T>> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i].resize(in[i]->size() / sizeof(T));
    std::memcpy(out[i].data(), in[i]->data(), out[i].size() * sizeof(T));
  }
  return out;
}
template <class T>
void streams_to_bytes(const std::vector<std::vector<T>>& in,
                      std::vector<std::string>& out) {
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i].assign(reinterpret_cast<const char*>(in[i].data()),
                  in[i].size() * sizeof(T));
  }
}
}  // namespace detail

class SimOpsRegistry {
 public:
  static SimOpsRegistry& instance() {
    static SimOpsRegistry r;
    return r;
  }

  template <class T>
  void register_type(std::string name) {
    SimStreamOps ops;
    ops.size = sizeof(T);
    ops.run = [](aiesim::ResimSession& s, const InputSnapshot& in,
                 std::vector<std::string>& out) {
      const auto tin = detail::bytes_to_streams<T>(in);
      std::vector<std::vector<T>> tout(out.size());
      aiesim::SimResult r = s.run_streams<T>(tin, tout);
      detail::streams_to_bytes(tout, out);
      return r;
    };
    ops.resim = [](aiesim::ResimSession& s,
                   const std::vector<std::size_t>& dirty,
                   const InputSnapshot& in,
                   std::vector<std::string>& out) {
      const auto tin = detail::bytes_to_streams<T>(in);
      std::vector<std::vector<T>> tout(out.size());
      aiesim::SimResult r = s.resimulate_streams<T>(dirty, tin, tout);
      detail::streams_to_bytes(tout, out);
      return r;
    };
    ops_[std::move(name)] = ops;
  }

  [[nodiscard]] const SimStreamOps* find(std::string_view name) const {
    const auto it = ops_.find(std::string{name});
    return it == ops_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::string, SimStreamOps, std::less<>> ops_;
};

/// Sim-lane companion of register_builtin_kernels(); idempotent.
inline void register_builtin_sim_types() {
  static std::once_flag once;
  std::call_once(once, [] {
    SimOpsRegistry& r = SimOpsRegistry::instance();
    r.register_type<int>("i32");
    r.register_type<float>("f32");
  });
}

// ---------------------------------------------------------------------------
// Daemon configuration + stats.
// ---------------------------------------------------------------------------

struct DaemonConfig {
  int io_threads = 2;
  int workers = 0;  ///< 0: hardware_concurrency
  Quotas quotas{};
  std::size_t pool_capacity = 64;  ///< idle warm lanes retained per mode
  aiesim::SimConfig sim{};         ///< engine config for RunMode::sim lanes
  /// Acknowledge kFeatureShm in the handshake and accept shm planes.
  /// Negotiation is per connection: a client that never sends shm_setup
  /// (or whose segment the daemon cannot map -- e.g. a remote peer) stays
  /// on the socket path with no behavioral difference.
  bool enable_shm = true;
  /// When nonempty, compiled graph artifacts persist here (CompiledStore)
  /// and a restarted daemon binds warm from its first request.
  std::string cache_dir;
  std::size_t cache_max_bytes = 256u << 20;
  std::size_t cache_max_files = 256;
};

struct DaemonStats {
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> warm_runs{0};
  std::atomic<std::uint64_t> incremental_runs{0};
  std::atomic<std::uint64_t> session_errors{0};
  std::atomic<std::uint64_t> quota_rejections{0};
  std::atomic<std::uint64_t> shm_conns{0};       ///< planes attached
  std::atomic<std::uint64_t> persisted_binds{0}; ///< sim runs on store-loaded
                                                 ///  artifacts
};

// ---------------------------------------------------------------------------
// Daemon.
// ---------------------------------------------------------------------------

class Daemon {
  /// Warm coop-lane state: a built dynamic graph plus a paused interactive
  /// session over it (the builder must outlive the session).
  struct CoopLane {
    rt::DynamicGraphBuilder builder;
    std::optional<InteractiveSession> session;
  };

  /// Warm sim-lane state. `last_inputs` is the baseline input snapshot the
  /// *lane* last ran with -- the dirty set for an incremental rerun is
  /// computed server-side by byte comparison against it, which stays
  /// correct even when the lane was warmed by a different client session
  /// with the same spec.
  struct SimLane {
    rt::DynamicGraphBuilder builder;
    std::optional<aiesim::ResimSession> session;
    InputSnapshot last_inputs;
    bool has_baseline = false;
  };

  /// Immutable per-run snapshot handed to a worker: borrowed (CoW) input
  /// buffers, not copies.
  struct RunRequest {
    InputSnapshot inputs;
  };

  struct ServerSession;
  struct Connection;

  /// One reply frame queued from a worker back to the I/O thread.
  /// output_chunk frames carry the raw output bytes in `body` (header-free)
  /// so the delivering I/O thread can route them through the connection's
  /// shm ring -- or fall back to prepending the chunk header and taking the
  /// socket -- at queue time.
  struct OutFrame {
    net::FrameType type{};
    std::uint64_t stream = 0;
    std::string payload;
    std::string body;
    std::uint64_t out_idx = 0;
  };

  /// Worker -> I/O thread completion message.
  struct Mail {
    std::uint64_t sid = 0;
    std::vector<OutFrame> frames;
    bool run_done = false;
  };

  struct ServerSession {
    std::uint64_t id = 0;
    RunMode mode = RunMode::coop;
    GraphSpec spec;
    std::string key;  ///< serialized spec bytes: pool + cache key
    std::vector<const TypeOps*> in_ops;
    std::vector<const TypeOps*> out_ops;
    const SimStreamOps* sim_ops = nullptr;

    // --- I/O-thread-only protocol state ---
    /// Input buffers, persisted across warm reruns. Shared with dispatched
    /// RunRequest snapshots copy-on-write: `shared[i]` is set when a
    /// snapshot borrowed buffer i, and the next mutation of that input
    /// clones it first (deterministic -- no use_count races).
    std::vector<std::shared_ptr<std::string>> inputs;
    std::vector<char> shared;
    /// Set per input when a run is dispatched. Input buffers persist so an
    /// untouched input carries over to the next (warm) run, but the first
    /// chunk that arrives for a sealed input replaces the buffer instead of
    /// appending -- otherwise a client re-sending its inputs for a rerun
    /// would silently double them.
    std::vector<char> sealed;
    std::size_t live_bytes = 0;
    std::uint64_t credit_to_grant = 0;
    bool running = false;
    std::deque<RunRequest> queued;

    // --- worker-only lane state (runs of one session never overlap) ---
    SessionPool<std::string, CoopLane>::Lease coop;
    SessionPool<std::string, SimLane>::Lease sim;
    std::uint64_t completed_runs = 0;
  };

  struct Connection {
    net::Fd fd;
    int io_index = 0;
    net::FrameReader reader;
    net::FrameWriter writer;
    /// Frames staged into `writer` whose payload bytes must stay alive
    /// until a flush completes (zero-copy segments reference them).
    std::deque<OutFrame> inflight;
    bool greeted = false;
    bool peer_done = false;  ///< goodbye / EOF seen; close once drained
    bool closed = false;
    std::uint32_t features = 0;  ///< negotiated handshake feature bits
    /// Attached via shm_setup; this I/O thread is the sole consumer of
    /// rx() (client inputs) and sole producer of tx() (outputs), so the
    /// rings stay SPSC.
    std::optional<net::ShmPlane> plane;
    std::map<std::uint64_t, std::shared_ptr<ServerSession>> sessions;
    std::mutex mail_m;        ///< guards `mail` only
    std::vector<Mail> mail;   ///< worker-posted completions
  };

  struct IoThread {
    net::Fd epoll;
    net::Fd event;  ///< eventfd: new connections + worker mail
    std::mutex in_m;
    std::vector<net::Fd> incoming;  ///< guarded by in_m
    std::mutex wake_m;
    std::vector<std::shared_ptr<Connection>> woken;  ///< guarded by wake_m
    std::map<int, std::shared_ptr<Connection>> conns;  ///< io-thread only
    std::jthread thread;
  };

 public:
  /// Serves connections accepted from `listen_fd` until stop(). The caller
  /// chooses the endpoint (net::listen_tcp_loopback / net::listen_unix).
  explicit Daemon(net::Fd listen_fd, DaemonConfig cfg = {})
      : cfg_(cfg), listen_(std::move(listen_fd)) {
    register_builtin_kernels();
    register_builtin_sim_types();
    if (!cfg_.cache_dir.empty()) {
      aiesim::CompiledGraphCache::instance().set_store(
          std::make_shared<aiesim::CompiledStore>(
              cfg_.cache_dir, cfg_.cache_max_bytes, cfg_.cache_max_files));
    }
    coop_pool_.set_capacity(cfg_.pool_capacity);
    sim_pool_.set_capacity(cfg_.pool_capacity);
    net::set_nonblocking(listen_.get());
    stop_event_ = net::Fd{::eventfd(0, EFD_CLOEXEC)};
    if (!stop_event_.valid()) net::throw_errno("eventfd");
    int workers = cfg_.workers;
    if (workers <= 0) {
      workers = static_cast<int>(std::thread::hardware_concurrency());
      if (workers <= 0) workers = 2;
    }
    runner_ = std::make_unique<SweepRunner>(workers);
    const int n_io = cfg_.io_threads < 1 ? 1 : cfg_.io_threads;
    for (int i = 0; i < n_io; ++i) {
      auto io = std::make_unique<IoThread>();
      io->epoll = net::Fd{::epoll_create1(EPOLL_CLOEXEC)};
      if (!io->epoll.valid()) net::throw_errno("epoll_create1");
      io->event = net::Fd{::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)};
      if (!io->event.valid()) net::throw_errno("eventfd");
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = io->event.get();
      if (::epoll_ctl(io->epoll.get(), EPOLL_CTL_ADD, io->event.get(),
                      &ev) != 0) {
        net::throw_errno("epoll_ctl(eventfd)");
      }
      io_.push_back(std::move(io));
    }
    for (int i = 0; i < n_io; ++i) {
      IoThread* io = io_[static_cast<std::size_t>(i)].get();
      io->thread = std::jthread{[this, io, i] { io_main(*io, i); }};
    }
    acceptor_ = std::jthread{[this] { accept_main(); }};
  }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  ~Daemon() { stop(); }

  /// Orderly shutdown: stop accepting, finish in-flight runs, then tear
  /// down the I/O threads (best-effort final flush of completed results).
  void stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) return;
    accept_stop_.store(true, std::memory_order_release);
    signal_event(stop_event_.get());
    if (acceptor_.joinable()) acceptor_.join();
    runner_.reset();  // joins workers; queued-but-unstarted jobs are dropped
    io_stop_.store(true, std::memory_order_release);
    for (auto& io : io_) signal_event(io->event.get());
    for (auto& io : io_) {
      if (io->thread.joinable()) io->thread.join();
    }
  }

  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  [[nodiscard]] const SessionPool<std::string, CoopLane>& coop_pool() const {
    return coop_pool_;
  }
  [[nodiscard]] const SessionPool<std::string, SimLane>& sim_pool() const {
    return sim_pool_;
  }
  [[nodiscard]] int workers() const { return runner_ ? runner_->workers() : 0; }

 private:
  // ---- acceptor -----------------------------------------------------------

  static void signal_event(int fd) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t w = ::write(fd, &one, sizeof(one));
  }

  void accept_main() {
    pollfd pfds[2];
    pfds[0] = pollfd{listen_.get(), POLLIN, 0};
    pfds[1] = pollfd{stop_event_.get(), POLLIN, 0};
    std::size_t next_io = 0;
    while (!accept_stop_.load(std::memory_order_acquire)) {
      const int n = ::poll(pfds, 2, -1);
      if (n < 0 && errno == EINTR) continue;
      if (accept_stop_.load(std::memory_order_acquire)) break;
      for (;;) {
        const int cfd = ::accept4(listen_.get(), nullptr, nullptr,
                                  SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) {
          if (errno == EINTR) continue;
          break;  // EAGAIN or transient accept failure: back to poll
        }
        const int one = 1;  // no-op (harmless error) on AF_UNIX
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        stats_.connections.fetch_add(1, std::memory_order_relaxed);
        IoThread& io = *io_[next_io];
        next_io = (next_io + 1) % io_.size();
        {
          std::lock_guard lk{io.in_m};
          io.incoming.emplace_back(cfd);
        }
        signal_event(io.event.get());
      }
    }
  }

  // ---- I/O event loop -----------------------------------------------------

  void io_main(IoThread& io, int index) {
    epoll_event evs[64];
    for (;;) {
      const int n = ::epoll_wait(io.epoll.get(), evs, 64, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = evs[i].data.fd;
        if (fd == io.event.get()) {
          std::uint64_t drain = 0;
          while (::read(io.event.get(), &drain, sizeof(drain)) > 0) {
          }
          adopt_incoming(io, index);
          handle_wakeups(io);
          continue;
        }
        const auto it = io.conns.find(fd);
        if (it == io.conns.end()) continue;
        std::shared_ptr<Connection> conn = it->second;
        if ((evs[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          close_conn(io, conn);
          continue;
        }
        if ((evs[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
          on_readable(io, conn);
        }
        if (!conn->closed && (evs[i].events & EPOLLOUT) != 0) {
          pump_writer(io, conn);
        }
        maybe_finish(io, conn);
      }
      if (io_stop_.load(std::memory_order_acquire)) {
        handle_wakeups(io);  // flush completions that raced the stop signal
        for (auto it = io.conns.begin(); it != io.conns.end();) {
          std::shared_ptr<Connection> c = it->second;
          ++it;
          close_conn(io, c);
        }
        return;
      }
    }
  }

  void adopt_incoming(IoThread& io, int index) {
    std::vector<net::Fd> fresh;
    {
      std::lock_guard lk{io.in_m};
      fresh.swap(io.incoming);
    }
    for (net::Fd& fd : fresh) {
      auto conn = std::make_shared<Connection>();
      conn->io_index = index;
      const int raw = fd.get();
      conn->fd = std::move(fd);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
      ev.data.fd = raw;
      if (::epoll_ctl(io.epoll.get(), EPOLL_CTL_ADD, raw, &ev) != 0) {
        continue;  // fd closes with conn going out of scope
      }
      io.conns.emplace(raw, std::move(conn));
    }
  }

  void handle_wakeups(IoThread& io) {
    std::vector<std::shared_ptr<Connection>> woken;
    {
      std::lock_guard lk{io.wake_m};
      woken.swap(io.woken);
    }
    for (const std::shared_ptr<Connection>& conn : woken) {
      if (conn->closed) continue;
      std::vector<Mail> mail;
      {
        std::lock_guard lk{conn->mail_m};
        mail.swap(conn->mail);
      }
      for (Mail& m : mail) {
        for (OutFrame& f : m.frames) {
          if (f.type == net::FrameType::output_chunk) {
            queue_output(*conn, f);
          } else {
            queue_frame(*conn, f.type, f.stream, std::move(f.payload));
          }
        }
        if (m.run_done) {
          const auto it = conn->sessions.find(m.sid);
          if (it != conn->sessions.end()) {
            ServerSession& s = *it->second;
            s.running = false;
            if (!s.queued.empty()) {
              RunRequest req = std::move(s.queued.front());
              s.queued.pop_front();
              s.running = true;
              post_run(conn, it->second, std::move(req));
            }
          }
        }
      }
      pump_writer(io, conn);
      maybe_finish(io, conn);
    }
  }

  void on_readable(IoThread& io, const std::shared_ptr<Connection>& conn) {
    for (;;) {
      if (conn->closed) return;
      net::FrameView f;
      std::string err;
      const auto pr = conn->reader.next(f, &err);
      if (pr == net::FrameReader::ParseResult::frame) {
        handle_frame(io, conn, f);
        continue;
      }
      if (pr == net::FrameReader::ParseResult::corrupt) {
        close_conn(io, conn);
        return;
      }
      const auto r = conn->reader.fill(conn->fd.get());
      if (r == net::FrameReader::IoResult::would_block) break;
      if (r == net::FrameReader::IoResult::eof ||
          r == net::FrameReader::IoResult::error) {
        conn->peer_done = true;
        break;
      }
    }
    pump_writer(io, conn);
  }

  /// Connection teardown once the peer is done and nothing is pending:
  /// every session idle (no in-flight worker run) and the writer drained.
  void maybe_finish(IoThread& io, const std::shared_ptr<Connection>& conn) {
    if (conn->closed || !conn->peer_done) return;
    for (const auto& [sid, s] : conn->sessions) {
      if (s->running || !s->queued.empty()) return;
    }
    if (!conn->writer.empty()) return;
    close_conn(io, conn);
  }

  void close_conn(IoThread& io, const std::shared_ptr<Connection>& conn) {
    if (conn->closed) return;
    conn->closed = true;
    ::epoll_ctl(io.epoll.get(), EPOLL_CTL_DEL, conn->fd.get(), nullptr);
    io.conns.erase(conn->fd.get());
    conn->writer.clear();
    conn->inflight.clear();
    conn->sessions.clear();  // leases return warm lanes to the pools
    conn->plane.reset();     // unmaps the shm segment
  }

  // ---- frame dispatch (I/O thread) ----------------------------------------

  void queue_frame(Connection& conn, net::FrameType type,
                   std::uint64_t stream, std::string payload) {
    conn.inflight.push_back(OutFrame{type, stream, std::move(payload)});
    const OutFrame& f = conn.inflight.back();
    conn.writer.frame(type, stream, f.payload.data(), f.payload.size());
  }

  /// Routes one worker-produced output chunk: ring when the connection has
  /// a plane AND the body fits right now (try_write is all-or-nothing; the
  /// I/O thread must never park on ring space), socket otherwise. Ring
  /// payload is written before the announcing shm_output frame is queued.
  void queue_output(Connection& conn, OutFrame& f) {
    if (conn.plane.has_value() &&
        conn.plane->tx().try_write(f.body.data(), f.body.size())) {
      queue_frame(conn, net::FrameType::shm_output, f.stream,
                  ShmChunkMsg::encode(f.out_idx, f.body.size()));
      return;
    }
    std::string payload = ChunkMsg::encode_header(f.out_idx);
    payload.append(f.body);
    queue_frame(conn, net::FrameType::output_chunk, f.stream,
                std::move(payload));
  }

  void send_error(Connection& conn, std::uint64_t sid, std::string msg) {
    stats_.session_errors.fetch_add(1, std::memory_order_relaxed);
    queue_frame(conn, net::FrameType::session_error, sid, std::move(msg));
  }

  void pump_writer(IoThread& io, const std::shared_ptr<Connection>& conn) {
    if (conn->closed || conn->writer.empty()) return;
    const auto r = conn->writer.flush(conn->fd.get());
    if (r == net::FrameWriter::IoResult::ok) {
      conn->inflight.clear();
    } else if (r == net::FrameWriter::IoResult::error) {
      close_conn(io, conn);
    }
    // would_block: edge-triggered EPOLLOUT retries once writable again
  }

  void handle_frame(IoThread& io, const std::shared_ptr<Connection>& conn,
                    const net::FrameView& f) {
    Connection& c = *conn;
    if (!c.greeted) {
      net::Hello h;
      if (f.type != net::FrameType::hello || !net::Hello::decode(f.payload, h) ||
          h.magic != net::kWireMagic) {
        queue_frame(c, net::FrameType::reject, 0, "expected hello");
        c.peer_done = true;
        return;
      }
      if (h.version != net::kWireVersion) {
        queue_frame(c, net::FrameType::reject, 0,
                    "unsupported protocol version");
        c.peer_done = true;
        return;
      }
      // Echo the feature subset this daemon accepts; a feature is live
      // only when both sides agreed (old clients send 0 and see 0).
      c.features =
          h.features & (cfg_.enable_shm ? net::kFeatureShm : 0u);
      net::Hello ack;
      ack.features = c.features;
      queue_frame(c, net::FrameType::hello_ack, 0, ack.encode());
      c.greeted = true;
      return;
    }
    switch (f.type) {
      case net::FrameType::open_session:
        on_open_session(c, f);
        break;
      case net::FrameType::input_chunk:
        on_input(c, f, /*replace=*/false);
        break;
      case net::FrameType::rtp_update:
        on_input(c, f, /*replace=*/true);
        break;
      case net::FrameType::shm_setup:
        on_shm_setup(c, f);
        break;
      case net::FrameType::shm_chunk:
        on_input_shm(io, conn, f, /*replace=*/false);
        break;
      case net::FrameType::shm_rtp:
        on_input_shm(io, conn, f, /*replace=*/true);
        break;
      case net::FrameType::finish_inputs:
        on_finish_inputs(conn, f.stream);
        break;
      case net::FrameType::close_session:
        c.sessions.erase(f.stream);
        break;
      case net::FrameType::goodbye:
        c.peer_done = true;
        break;
      default:
        break;  // unknown/unexpected frame types are ignored (forward compat)
    }
  }

  void on_open_session(Connection& c, const net::FrameView& f) {
    const std::uint64_t sid = f.stream;
    if (sid == 0) {
      send_error(c, sid, "session id must be nonzero");
      return;
    }
    if (c.sessions.count(sid) != 0) {
      send_error(c, sid, "session id already open");
      return;
    }
    OpenSessionMsg msg;
    auto s = std::make_shared<ServerSession>();
    if (!OpenSessionMsg::decode(f.payload, msg) ||
        !parse_graph(std::as_bytes(std::span{msg.graph.data(),
                                             msg.graph.size()}),
                     s->spec)) {
      send_error(c, sid, "malformed open_session");
      return;
    }
    s->id = sid;
    s->mode = msg.mode;
    s->key = std::move(msg.graph);
    const ServiceRegistry& reg = ServiceRegistry::instance();
    try {
      // Full validation: resolves every name and type-checks every port
      // against the kernel signatures, so bad specs fail at open time.
      rt::DynamicGraphBuilder probe;
      build_graph(s->spec, probe);
    } catch (const std::exception& e) {
      send_error(c, sid, e.what());
      return;
    }
    for (int e : s->spec.inputs) {
      s->in_ops.push_back(
          reg.find_type(s->spec.edges[static_cast<std::size_t>(e)].type));
    }
    for (int e : s->spec.outputs) {
      s->out_ops.push_back(
          reg.find_type(s->spec.edges[static_cast<std::size_t>(e)].type));
    }
    if (s->mode == RunMode::sim) {
      const TypeOps* uni = uniform_type(s->spec);
      s->sim_ops = uni ? SimOpsRegistry::instance().find(uni->name) : nullptr;
      if (s->sim_ops == nullptr) {
        send_error(c, sid,
                   "sim mode requires a uniform, sim-registered element type");
        return;
      }
    }
    s->inputs.resize(s->in_ops.size());
    for (auto& in : s->inputs) in = std::make_shared<std::string>();
    s->shared.assign(s->in_ops.size(), 0);
    s->sealed.assign(s->in_ops.size(), 0);
    stats_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
    c.sessions.emplace(sid, std::move(s));
    OpenAckMsg ack;
    ack.input_credit = cfg_.quotas.input_credit;
    ack.max_live_bytes = cfg_.quotas.max_live_bytes;
    queue_frame(c, net::FrameType::open_ack, sid, ack.encode());
  }

  void on_input(Connection& c, const net::FrameView& f, bool replace) {
    const auto it = c.sessions.find(f.stream);
    if (it == c.sessions.end()) {
      send_error(c, f.stream, "no such session");
      return;
    }
    ServerSession& s = *it->second;
    ChunkMsg m;
    if (!ChunkMsg::decode(f.payload, m) || m.index >= s.inputs.size()) {
      send_error(c, s.id, "malformed input chunk");
      return;
    }
    const std::size_t elem = s.in_ops[m.index]->size;
    if (m.bytes.size() % elem != 0) {
      send_error(c, s.id, "input chunk not a whole number of elements");
      return;
    }
    const auto idx = static_cast<std::size_t>(m.index);
    const bool replace_now = replace || s.sealed[idx] != 0;
    const std::size_t after =
        s.live_bytes - (replace_now ? s.inputs[idx]->size() : 0) +
        m.bytes.size();
    if (after > cfg_.quotas.max_live_bytes) {
      stats_.quota_rejections.fetch_add(1, std::memory_order_relaxed);
      send_error(c, s.id, "live-byte quota exceeded; chunk dropped");
      return;
    }
    std::string& buf = mutable_input(s, idx, replace_now);
    if (replace_now) buf.clear();
    s.sealed[idx] = 0;
    buf.append(reinterpret_cast<const char*>(m.bytes.data()), m.bytes.size());
    s.live_bytes = after;
    // Credit is granted back as chunks are absorbed (batched to a quarter
    // window), bounding un-absorbed wire bytes rather than session state;
    // session state is bounded by max_live_bytes above.
    s.credit_to_grant += f.payload.size();
    if (s.credit_to_grant >= cfg_.quotas.input_credit / 4) {
      grant_credit(c, s);
    }
  }

  /// Copy-on-write access to input buffer `idx`: a buffer borrowed by a
  /// dispatched snapshot is cloned before the mutation (content copy
  /// skipped when the caller will clear it anyway).
  static std::string& mutable_input(ServerSession& s, std::size_t idx,
                                    bool will_clear) {
    auto& slot = s.inputs[idx];
    if (s.shared[idx] != 0) {
      slot = will_clear ? std::make_shared<std::string>()
                        : std::make_shared<std::string>(*slot);
      s.shared[idx] = 0;
    }
    return *slot;
  }

  void on_shm_setup(Connection& c, const net::FrameView& f) {
    net::ShmSetupMsg m;
    std::string ack(1, '\0');
    if (cfg_.enable_shm && (c.features & net::kFeatureShm) != 0 &&
        !c.plane.has_value() && net::ShmSetupMsg::decode(f.payload, m)) {
      try {
        // Maps + validates the client's named segment; fails for remote
        // peers (the name does not resolve on this host) or foreign
        // layouts, in which case the client stays on the socket path.
        c.plane.emplace(net::ShmPlane::attach_peer(m.name));
        ack[0] = '\x01';
        stats_.shm_conns.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception&) {
        c.plane.reset();
      }
    }
    queue_frame(c, net::FrameType::shm_ack, 0, std::move(ack));
  }

  /// Input via the shm ring. The announced bytes were written to the ring
  /// BEFORE the announcing frame was sent, so they are guaranteed readable
  /// here; every exit path consumes exactly `nbytes` from the ring (into
  /// the session buffer, or discarded on validation failure) -- anything
  /// else would desynchronize every later announcement.
  void on_input_shm(IoThread& io, const std::shared_ptr<Connection>& conn,
                    const net::FrameView& f, bool replace) {
    Connection& c = *conn;
    ShmChunkMsg m;
    if (!c.plane.has_value() || !ShmChunkMsg::decode(f.payload, m)) {
      // Announcement without a plane, or a torn header: the ring position
      // is unknowable, so the connection cannot be trusted further.
      send_error(c, f.stream, "malformed shm chunk");
      close_conn(io, conn);
      return;
    }
    const auto nbytes = static_cast<std::size_t>(m.nbytes);
    const auto it = c.sessions.find(f.stream);
    ServerSession* sp = it == c.sessions.end() ? nullptr : it->second.get();
    std::string err;
    std::size_t after = 0;
    bool replace_now = replace;
    if (sp == nullptr) {
      err = "no such session";
    } else if (m.index >= sp->inputs.size()) {
      err = "malformed input chunk";
    } else if (nbytes % sp->in_ops[m.index]->size != 0) {
      err = "input chunk not a whole number of elements";
    } else {
      const auto idx = static_cast<std::size_t>(m.index);
      replace_now = replace || sp->sealed[idx] != 0;
      after = sp->live_bytes -
              (replace_now ? sp->inputs[idx]->size() : 0) + nbytes;
      if (after > cfg_.quotas.max_live_bytes) {
        stats_.quota_rejections.fetch_add(1, std::memory_order_relaxed);
        err = "live-byte quota exceeded; chunk dropped";
      }
    }
    if (!err.empty()) {
      discard_ring(c, nbytes);
      send_error(c, f.stream, std::move(err));
      return;
    }
    ServerSession& s = *sp;
    const auto idx = static_cast<std::size_t>(m.index);
    std::string& buf = mutable_input(s, idx, replace_now);
    if (replace_now) buf.clear();
    s.sealed[idx] = 0;
    const std::size_t old = buf.size();
    buf.resize(old + nbytes);
    const bool ok = c.plane->rx().try_read_exact(buf.data() + old, nbytes);
    if (!ok) {  // ring-first contract violated by the peer
      buf.resize(old);
      send_error(c, s.id, "shm ring underrun");
      close_conn(io, conn);
      return;
    }
    s.live_bytes = after;
    // Ring bytes consume window credit exactly like socket payload bytes:
    // that bound (credit window < ring capacity) is what guarantees the
    // ring can always absorb announced data.
    s.credit_to_grant += f.payload.size() + nbytes;
    if (s.credit_to_grant >= cfg_.quotas.input_credit / 4) {
      grant_credit(c, s);
    }
  }

  /// Consumes and discards `nbytes` of announced ring payload (validation
  /// failed; the data has no destination but MUST leave the ring).
  static void discard_ring(Connection& c, std::size_t nbytes) {
    std::byte scratch[4096];
    while (nbytes > 0) {
      const std::size_t k = std::min(nbytes, sizeof(scratch));
      if (!c.plane->rx().try_read_exact(scratch, k)) break;
      nbytes -= k;
    }
  }

  void grant_credit(Connection& c, ServerSession& s) {
    if (s.credit_to_grant == 0) return;
    std::string grant;
    net::put_varint(grant, s.credit_to_grant);
    s.credit_to_grant = 0;
    queue_frame(c, net::FrameType::credit, s.id, std::move(grant));
  }

  void on_finish_inputs(const std::shared_ptr<Connection>& conn,
                        std::uint64_t sid) {
    Connection& c = *conn;
    const auto it = c.sessions.find(sid);
    if (it == c.sessions.end()) {
      send_error(c, sid, "no such session");
      return;
    }
    ServerSession& s = *it->second;
    grant_credit(c, s);  // flush any residual credit before the run
    if (s.queued.size() >= cfg_.quotas.max_queued_frames) {
      stats_.quota_rejections.fetch_add(1, std::memory_order_relaxed);
      send_error(c, sid, "run queue quota exceeded");
      return;
    }
    RunRequest req;
    // Zero-copy snapshot: the run borrows the buffers; `shared` marks them
    // so the next client mutation clones instead of racing the worker.
    req.inputs.assign(s.inputs.begin(), s.inputs.end());
    std::fill(s.shared.begin(), s.shared.end(), char{1});
    std::fill(s.sealed.begin(), s.sealed.end(), char{1});
    if (s.running) {
      s.queued.push_back(std::move(req));
    } else {
      s.running = true;
      post_run(conn, it->second, std::move(req));
    }
  }

  // ---- simulation dispatch (worker threads) -------------------------------

  void post_run(const std::shared_ptr<Connection>& conn,
                const std::shared_ptr<ServerSession>& sess, RunRequest req) {
    runner_->post([this, conn, sess, req = std::move(req)](
                      SweepRunner::WorkerSlot& /*slot*/) mutable {
      run_one(conn, sess, req);
    });
  }

  void run_one(const std::shared_ptr<Connection>& conn,
               const std::shared_ptr<ServerSession>& sess,
               const RunRequest& req) {
    Mail mail;
    mail.sid = sess->id;
    mail.run_done = true;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      std::vector<std::string> outputs(sess->out_ops.size());
      SessionResultMsg res;
      if (sess->mode == RunMode::coop) {
        run_coop(*sess, req, outputs, res);
      } else {
        run_sim(*sess, req, outputs, res);
      }
      res.server_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (res.server_us > cfg_.quotas.wall_budget_ms * 1000) {
        stats_.quota_rejections.fetch_add(1, std::memory_order_relaxed);
        stats_.session_errors.fetch_add(1, std::memory_order_relaxed);
        mail.frames.push_back(OutFrame{net::FrameType::session_error,
                                       sess->id,
                                       "wall-clock budget exceeded"});
      } else {
        res.digest = outputs_digest(outputs);
        for (std::size_t o = 0; o < outputs.size(); ++o) {
          res.output_bytes += outputs[o].size();
          // Raw body, no header: the I/O thread picks ring vs socket when
          // it delivers (queue_output).
          mail.frames.push_back(OutFrame{net::FrameType::output_chunk,
                                         sess->id, {},
                                         std::move(outputs[o]), o});
        }
        mail.frames.push_back(OutFrame{net::FrameType::session_result,
                                       sess->id, res.encode()});
        stats_.runs.fetch_add(1, std::memory_order_relaxed);
        if (res.warm) stats_.warm_runs.fetch_add(1, std::memory_order_relaxed);
        if (res.incremental) {
          stats_.incremental_runs.fetch_add(1, std::memory_order_relaxed);
        }
      }
      ++sess->completed_runs;
    } catch (const std::exception& e) {
      stats_.session_errors.fetch_add(1, std::memory_order_relaxed);
      mail.frames.push_back(
          OutFrame{net::FrameType::session_error, sess->id, e.what()});
    }
    deliver(conn, std::move(mail));
  }

  void deliver(const std::shared_ptr<Connection>& conn, Mail mail) {
    {
      std::lock_guard lk{conn->mail_m};
      conn->mail.push_back(std::move(mail));
    }
    IoThread& io = *io_[static_cast<std::size_t>(conn->io_index)];
    {
      std::lock_guard lk{io.wake_m};
      io.woken.push_back(conn);
    }
    signal_event(io.event.get());
  }

  /// Coop lane: drive a warm InteractiveSession with interleaved bulk
  /// pushes and output drains (the interleave is what prevents a deadlock
  /// against channel backpressure on large inputs).
  void run_coop(ServerSession& sess, const RunRequest& req,
                std::vector<std::string>& outputs, SessionResultMsg& res) {
    if (sess.coop.get() == nullptr) {
      sess.coop = coop_pool_.checkout(sess.key, [&] {
        auto lane = std::make_unique<CoopLane>();
        build_graph(sess.spec, lane->builder);
        return lane;
      });
    }
    CoopLane& lane = *sess.coop;
    if (!lane.session.has_value()) {
      lane.session.emplace(lane.builder.view());
      res.warm = false;
    } else {
      lane.session->resimulate();
      res.warm = true;
    }
    InteractiveSession& run = *lane.session;

    const std::size_t n_in = sess.in_ops.size();
    const std::size_t n_out = sess.out_ops.size();
    std::vector<std::size_t> fed(n_in, 0);  // elements already pushed
    alignas(16) std::byte scratch[16 << 10];
    auto drain = [&] {
      bool any = false;
      for (std::size_t o = 0; o < n_out; ++o) {
        const TypeOps& ops = *sess.out_ops[o];
        const std::size_t cap = sizeof(scratch) / ops.size;
        for (;;) {
          const std::size_t k = ops.session_poll_n(run, o, scratch, cap);
          if (k == 0) break;
          outputs[o].append(reinterpret_cast<const char*>(scratch),
                            k * ops.size);
          any = true;
          if (k < cap) break;
        }
      }
      return any;
    };
    for (;;) {
      bool progress = false;
      bool all_fed = true;
      for (std::size_t i = 0; i < n_in; ++i) {
        const TypeOps& ops = *sess.in_ops[i];
        const std::size_t total = req.inputs[i]->size() / ops.size;
        if (fed[i] >= total) continue;
        const std::size_t k = ops.session_push_n(
            run, i, req.inputs[i]->data() + fed[i] * ops.size,
            total - fed[i]);
        fed[i] += k;
        progress |= k > 0;
        all_fed &= fed[i] >= total;
      }
      progress |= drain();
      if (all_fed) break;
      if (!progress) {
        throw std::runtime_error{
            "graph stalled under backpressure (undersized channels?)"};
      }
    }
    run.finish();
    while (drain()) {
    }
  }

  /// Sim lane: warm ResimSession, dirty set computed by byte comparison
  /// against the lane's own baseline (correct across client sessions
  /// sharing a pooled lane).
  void run_sim(ServerSession& sess, const RunRequest& req,
               std::vector<std::string>& outputs, SessionResultMsg& res) {
    if (sess.sim.get() == nullptr) {
      sess.sim = sim_pool_.checkout(sess.key, [&] {
        auto lane = std::make_unique<SimLane>();
        build_graph(sess.spec, lane->builder);
        lane->session.emplace(lane->builder.view(), cfg_.sim);
        return lane;
      });
    }
    SimLane& lane = *sess.sim;
    const SimStreamOps& ops = *sess.sim_ops;
    aiesim::SimResult r;
    if (!lane.has_baseline) {
      r = ops.run(*lane.session, req.inputs, outputs);
      res.warm = false;
    } else {
      std::vector<std::size_t> dirty;
      for (std::size_t i = 0; i < req.inputs.size(); ++i) {
        // Pointer equality is the CoW fast path: an untouched input still
        // shares the baseline's buffer, so the byte comparison is skipped.
        if (req.inputs[i] != lane.last_inputs[i] &&
            *req.inputs[i] != *lane.last_inputs[i]) {
          dirty.push_back(i);
        }
      }
      r = ops.resim(*lane.session, dirty, req.inputs, outputs);
      res.warm = true;
      res.incremental = lane.session->last_was_incremental();
    }
    lane.last_inputs = req.inputs;  // pointer copies, not byte copies
    lane.has_baseline = true;
    res.virtual_cycles = r.virtual_cycles;
    res.persisted = lane.session->compiled().from_store;
    if (res.persisted) {
      stats_.persisted_binds.fetch_add(1, std::memory_order_relaxed);
    }
  }

  DaemonConfig cfg_;
  net::Fd listen_;
  net::Fd stop_event_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> accept_stop_{false};
  std::atomic<bool> io_stop_{false};
  DaemonStats stats_;
  SessionPool<std::string, CoopLane> coop_pool_;
  SessionPool<std::string, SimLane> sim_pool_;
  std::unique_ptr<SweepRunner> runner_;
  std::vector<std::unique_ptr<IoThread>> io_;
  std::jthread acceptor_;
};

}  // namespace cgsim::service

// aie -- functional emulation of the AIE vector API (UG1079 "AIE API").
//
// The operation set covers what the paper's four ported AMD examples need:
// element-wise arithmetic and MACs (bilinear, IIR), sliding multiplies
// (farrow's fixed-point convolution), and compare/select/shuffle primitives
// (bitonic sorting networks). Every operation records its VLIW issue-slot
// class for the cycle-approximate simulator.
//
// Lane arithmetic executes on a SIMD backend (simd.hpp): the default
// (`aie::simd::backend`, selected by the CGSIM_SIMD CMake option) maps each
// emulated op onto host vector instructions; passing an explicit backend
// template argument (`aie::add<aie::simd::scalar_backend>(a, b)`) pins an
// individual call, which is how the equivalence tests and the SIMD ablation
// bench compare backends within one binary. Instrumentation is recorded
// once per emulated operation, before backend dispatch, so OpCounts are
// byte-identical across backends.
#pragma once

#include <algorithm>
#include <cmath>
#include <type_traits>
#include <utility>

#include "accum.hpp"
#include "cycle_model.hpp"
#include "simd.hpp"
#include "vector.hpp"

namespace aie {

namespace detail {
template <class T>
using acc_tag_for = std::conditional_t<std::is_floating_point_v<T>,
                                       accfloat_tag, acc48_tag>;
template <class T>
using acc_elem_for =
    typename acc_storage<acc_tag_for<T>>::type;
}  // namespace detail

// ---------- element-wise vector arithmetic ----------

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> add(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template add<T, N>(r.data().data(), a.data().data(), b.data().data());
  return r;
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> sub(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template sub<T, N>(r.data().data(), a.data().data(), b.data().data());
  return r;
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> neg(const vector<T, N>& a) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template neg<T, N>(r.data().data(), a.data().data());
  return r;
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> abs(const vector<T, N>& a) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template abs_<T, N>(r.data().data(), a.data().data());
  return r;
}

/// Per-lane clamp into [lo, hi] (AIE `aie::max(aie::min(...))` idiom).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> clamp(const vector<T, N>& a, T lo, T hi) {
  record(OpClass::vector_alu, 2);
  vector<T, N> r;
  B::template clamp<T, N>(r.data().data(), a.data().data(), lo, hi);
  return r;
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> min(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template min_<T, N>(r.data().data(), a.data().data(), b.data().data());
  return r;
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> max(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template max_<T, N>(r.data().data(), a.data().data(), b.data().data());
  return r;
}

// ---------- multiply / multiply-accumulate ----------

/// Lane-wise multiply into an accumulator (AIE `aie::mul`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mul(
    const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> acc;
  B::template mul<detail::acc_elem_for<T>, T, N>(
      acc.data().data(), a.data().data(), b.data().data());
  return acc;
}

/// Lane-wise multiply-accumulate (AIE `aie::mac`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mac(
    const accum<detail::acc_tag_for<T>, N>& acc, const vector<T, N>& a,
    const vector<T, N>& b) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> r = acc;
  B::template mac<detail::acc_elem_for<T>, T, N>(
      r.data().data(), a.data().data(), b.data().data());
  return r;
}

/// Lane-wise multiply-subtract (AIE `aie::msc`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> msc(
    const accum<detail::acc_tag_for<T>, N>& acc, const vector<T, N>& a,
    const vector<T, N>& b) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> r = acc;
  B::template msc<detail::acc_elem_for<T>, T, N>(
      r.data().data(), a.data().data(), b.data().data());
  return r;
}

/// Multiply by a broadcast scalar (AIE `aie::mul(vec, scalar)`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mul(
    const vector<T, N>& a, T s) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> acc;
  B::template mul_s<detail::acc_elem_for<T>, T, N>(acc.data().data(),
                                                   a.data().data(), s);
  return acc;
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mac(
    const accum<detail::acc_tag_for<T>, N>& acc, const vector<T, N>& a, T s) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> r = acc;
  B::template mac_s<detail::acc_elem_for<T>, T, N>(r.data().data(),
                                                   a.data().data(), s);
  return r;
}

// ---------- ML extensions: dot-product MACs, converts, fixed exp ----------

/// 4-deep dot-product multiply into int32 accumulator lanes (the AIE-ML
/// 8-bit MAC shape): result lane l = sum_{j<4} a[4l+j] * b[4l+j].
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline acc32<N / 4> mul_dot4(const vector<T, N>& a,
                                           const vector<T, N>& b) {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 2 && N % 4 == 0);
  record(OpClass::vector_mac);
  acc32<N / 4> acc;
  B::template mac_dot4<std::int32_t, T, N / 4>(
      acc.data().data(), a.data().data(), b.data().data());
  return acc;
}

/// 4-deep dot-product multiply-accumulate (AIE-ML `aie::mac` 8-bit mode).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline acc32<N / 4> mac_dot4(const acc32<N / 4>& acc,
                                           const vector<T, N>& a,
                                           const vector<T, N>& b) {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 2 && N % 4 == 0);
  record(OpClass::vector_mac);
  acc32<N / 4> r = acc;
  B::template mac_dot4<std::int32_t, T, N / 4>(
      r.data().data(), a.data().data(), b.data().data());
  return r;
}

/// Broadcast-scalar MAC into int32 accumulator lanes: acc[l] += s * a[l]
/// (the conv2d tap step on AIE-ML's 32-bit accumulators).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline acc32<N> mac(const acc32<N>& acc, const vector<T, N>& a,
                                  std::int32_t s) {
  static_assert(std::is_integral_v<T> && sizeof(T) <= 2);
  record(OpClass::vector_mac);
  acc32<N> r = acc;
  B::template mac_bcast<std::int32_t, T, N>(r.data().data(), a.data().data(),
                                            s);
  return r;
}

/// Widening lane convert (AIE `aie::unpack`): int8 -> int16/int32, etc.
template <class To, class B = simd::backend, class From, unsigned N>
[[nodiscard]] inline vector<To, N> unpack(const vector<From, N>& a) {
  static_assert(sizeof(To) >= sizeof(From));
  record(OpClass::vector_alu);
  vector<To, N> r;
  B::template convert<To, From, N>(r.data().data(), a.data().data());
  return r;
}

/// Narrowing lane convert with saturation (AIE `aie::pack` with the
/// saturating mode): int32 -> int16/int8, int16 -> int8.
template <class To, class B = simd::backend, class From, unsigned N>
[[nodiscard]] inline vector<To, N> pack_sat(const vector<From, N>& a) {
  record(OpClass::vector_shift);
  vector<To, N> r;
  B::template convert_sat<To, From, N>(r.data().data(), a.data().data());
  return r;
}

/// Widens bf16 lanes to a float vector (bf16 load/convert emulation).
template <class B = simd::backend, unsigned N>
[[nodiscard]] inline vector<float, N> to_float(const vector<bf16, N>& a) {
  record(OpClass::vector_alu);
  vector<float, N> r;
  // bf16 is layout-identical to its uint16 payload (single-member struct).
  B::template bf16_to_f32<N>(
      r.data().data(),
      reinterpret_cast<const std::uint16_t*>(a.data().data()));
  return r;
}

/// Narrows float lanes to bf16 (round-to-nearest-even, NaNs quieted).
template <class B = simd::backend, unsigned N>
[[nodiscard]] inline vector<bf16, N> to_bf16(const vector<float, N>& a) {
  record(OpClass::vector_alu);
  vector<bf16, N> r;
  B::template f32_to_bf16<N>(
      reinterpret_cast<std::uint16_t*>(r.data().data()), a.data().data());
  return r;
}

/// Fixed-point negative exponential: r[i] = 2^(-u[i]/2^15) in Q15 (cubic
/// polynomial, ~2e-4 relative error; negative inputs clamp to 0, i.e.
/// result 1.0). The softmax exponential on integer lanes.
template <class B = simd::backend, unsigned N>
[[nodiscard]] inline vector<std::int32_t, N> exp2_neg_q15(
    const vector<std::int32_t, N>& a) {
  record(OpClass::vector_alu, /*range split + poly*/ 6);
  vector<std::int32_t, N> r;
  B::template exp2_neg_q15<N>(r.data().data(), a.data().data());
  return r;
}

// ---------- sliding multiplies (FIR-style convolution) ----------

/// Mirrors aie::sliding_mul_ops<Lanes, Points, CoeffStep, DataStepX, ...>:
/// lane L computes sum_{p<Points} coeff[cstart + p*CoeffStep] *
/// data[dstart + L*DataStepY + p*DataStepX]. This is the workhorse of
/// hand-optimized AIE FIR/Farrow kernels.
///
/// When successive lanes read contiguous data (DataStepY == 1) and no index
/// wraps, each tap executes as one broadcast-MAC over the whole lane vector
/// (`Points` vector MACs total); otherwise the generic per-lane form runs.
/// Both paths accumulate taps in the same order, so results are bit-exact
/// across paths and backends.
template <unsigned Lanes, unsigned Points, int CoeffStep = 1,
          int DataStepX = 1, int DataStepY = 1, class B = simd::backend>
struct sliding_mul_ops {
  template <class C, unsigned NC, class D, unsigned ND>
  [[nodiscard]] static accum<detail::acc_tag_for<D>, Lanes> mul(
      const vector<C, NC>& coeff, unsigned cstart, const vector<D, ND>& data,
      unsigned dstart) {
    record(OpClass::vector_mac, Points);  // Points MACs issue back-to-back
    accum<detail::acc_tag_for<D>, Lanes> acc;
    accumulate(acc, coeff, cstart, data, dstart);
    return acc;
  }

  template <class C, unsigned NC, class D, unsigned ND>
  [[nodiscard]] static accum<detail::acc_tag_for<D>, Lanes> mac(
      accum<detail::acc_tag_for<D>, Lanes> acc, const vector<C, NC>& coeff,
      unsigned cstart, const vector<D, ND>& data, unsigned dstart) {
    record(OpClass::vector_mac, Points);
    accumulate(acc, coeff, cstart, data, dstart);
    return acc;
  }

 private:
  /// True when every data access of this call lands in [0, ND) without the
  /// generic path's modulo wrap, so lanes can load contiguously.
  template <unsigned ND>
  [[nodiscard]] static bool contiguous_in_bounds(unsigned dstart) {
    if constexpr (DataStepY != 1) return (void)dstart, false;
    const int base = static_cast<int>(dstart);
    const int span = static_cast<int>(Points - 1) * DataStepX;
    const int lo = base + std::min(0, span);
    const int hi = base + std::max(0, span) + static_cast<int>(Lanes) - 1;
    return lo >= 0 && hi < static_cast<int>(ND);
  }

  template <class C, unsigned NC, class D, unsigned ND>
  static void accumulate(accum<detail::acc_tag_for<D>, Lanes>& acc,
                         const vector<C, NC>& coeff, unsigned cstart,
                         const vector<D, ND>& data, unsigned dstart) {
    using A = detail::acc_elem_for<D>;
    if (contiguous_in_bounds<ND>(dstart)) {
      for (unsigned p = 0; p < Points; ++p) {
        const auto ci =
            static_cast<unsigned>(static_cast<int>(cstart) +
                                  static_cast<int>(p) * CoeffStep) % NC;
        const int di0 = static_cast<int>(dstart) +
                        static_cast<int>(p) * DataStepX;
        B::template mac_bcast<A, D, Lanes>(
            acc.data().data(), data.data().data() + di0,
            static_cast<A>(coeff.get(ci)));
      }
      return;
    }
    for (unsigned lane = 0; lane < Lanes; ++lane) {
      A sum = acc.get(lane);
      for (unsigned p = 0; p < Points; ++p) {
        const auto ci =
            static_cast<unsigned>(static_cast<int>(cstart) +
                                  static_cast<int>(p) * CoeffStep) % NC;
        const auto di = static_cast<unsigned>(
                            static_cast<int>(dstart) +
                            static_cast<int>(lane) * DataStepY +
                            static_cast<int>(p) * DataStepX) %
                        ND;
        sum = sum + static_cast<A>(coeff.get(ci)) * static_cast<A>(data.get(di));
      }
      acc.set(lane, sum);
    }
  }
};

/// Symmetric sliding multiply (AIE `sliding_mul_sym_ops`): exploits
/// coefficient symmetry c[p] == c[Points-1-p] by pre-adding the mirrored
/// data samples, halving the MAC count -- the standard trick in
/// hand-optimized symmetric FIR kernels.
template <unsigned Lanes, unsigned Points, class B = simd::backend>
struct sliding_mul_sym_ops {
  static_assert(Points % 2 == 0, "symmetric form implemented for even taps");

  template <class C, unsigned NC, class D, unsigned ND>
  [[nodiscard]] static accum<detail::acc_tag_for<D>, Lanes> mul(
      const vector<C, NC>& coeff, unsigned cstart, const vector<D, ND>& data,
      unsigned dstart) {
    record(OpClass::vector_mac, Points / 2);
    record(OpClass::vector_alu, Points / 2);  // the pre-adds
    using A = detail::acc_elem_for<D>;
    accum<detail::acc_tag_for<D>, Lanes> acc;
    // Contiguous fast path: lanes read data[dstart + lane + p] and the
    // mirrored data[dstart + lane + Points-1-p]; all accesses stay in
    // bounds when the widest one does.
    if (dstart + Points - 1 + Lanes - 1 < ND) {
      for (unsigned p = 0; p < Points / 2; ++p) {
        B::template mac_bcast_pair<A, D, Lanes>(
            acc.data().data(), data.data().data() + dstart + p,
            data.data().data() + dstart + Points - 1 - p,
            static_cast<A>(coeff.get((cstart + p) % NC)));
      }
      return acc;
    }
    for (unsigned lane = 0; lane < Lanes; ++lane) {
      A sum{};
      for (unsigned p = 0; p < Points / 2; ++p) {
        const A c = static_cast<A>(coeff.get((cstart + p) % NC));
        const A lo = static_cast<A>(data.get((dstart + lane + p) % ND));
        const A hi = static_cast<A>(
            data.get((dstart + lane + Points - 1 - p) % ND));
        sum += c * (lo + hi);
      }
      acc.set(lane, sum);
    }
    return acc;
  }
};

// ---------- compares, select, shuffles (sorting networks) ----------

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline mask<N> lt(const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::vector_alu);
  mask<N> m;
  B::template lt<T, N>(m.data().data(), a.data().data(), b.data().data());
  return m;
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline mask<N> ge(const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::vector_alu);
  mask<N> m;
  B::template ge<T, N>(m.data().data(), a.data().data(), b.data().data());
  return m;
}

/// Per-lane select: lane i is a[i] where m[i], else b[i] (AIE `select`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> select(const vector<T, N>& a,
                                         const vector<T, N>& b,
                                         const mask<N>& m) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template select<T, N>(r.data().data(), a.data().data(), b.data().data(),
                           m.data().data());
  return r;
}

/// Rotates lanes down by `n` (lane i <- lane (i+n) mod N).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> shuffle_down(const vector<T, N>& a,
                                               unsigned n) {
  record(OpClass::shuffle);
  vector<T, N> r;
  B::template shuffle_down<T, N>(r.data().data(), a.data().data(), n);
  return r;
}

/// Rotates lanes up by `n` (lane i <- lane (i-n) mod N).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> shuffle_up(const vector<T, N>& a,
                                             unsigned n) {
  record(OpClass::shuffle);
  vector<T, N> r;
  B::template shuffle_up<T, N>(r.data().data(), a.data().data(), n);
  return r;
}

/// Reverses lane order (AIE `aie::reverse`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> reverse(const vector<T, N>& a) {
  record(OpClass::shuffle);
  vector<T, N> r;
  B::template reverse<T, N>(r.data().data(), a.data().data());
  return r;
}

/// Exchanges lanes within blocks of 2*`stride`: lane i swaps with lane
/// i XOR stride. This is the butterfly permutation bitonic networks use.
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> butterfly(const vector<T, N>& a,
                                            unsigned stride) {
  record(OpClass::shuffle);
  vector<T, N> r;
  B::template butterfly<T, N>(r.data().data(), a.data().data(), stride);
  return r;
}

/// Gathers arbitrary lanes: r[i] = a[idx[i]] (AIE generalized shuffle).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N> permute(const vector<T, N>& a,
                                          const vector<std::int32_t, N>& idx) {
  record(OpClass::shuffle);
  vector<T, N> r;
  B::template permute<T, N>(r.data().data(), a.data().data(),
                            idx.data().data());
  return r;
}

/// Interleaves even/odd lanes of two vectors (AIE `interleave_zip`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline std::pair<vector<T, N>, vector<T, N>> interleave_zip(
    const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::shuffle, 2);
  vector<T, N> lo, hi;
  B::template interleave_zip<T, N>(lo.data().data(), hi.data().data(),
                                   a.data().data(), b.data().data());
  return {lo, hi};
}

/// De-interleaves lanes of two vectors (AIE `interleave_unzip`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline std::pair<vector<T, N>, vector<T, N>> interleave_unzip(
    const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::shuffle, 2);
  vector<T, N> even, odd;
  B::template interleave_unzip<T, N>(even.data().data(), odd.data().data(),
                                     a.data().data(), b.data().data());
  return {even, odd};
}

/// Keeps the even-indexed lanes in the lower half (AIE `filter_even`);
/// the upper half is zero.
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N / 2> filter_even(const vector<T, N>& a) {
  record(OpClass::shuffle);
  vector<T, N / 2> r;
  B::template filter_even<T, N>(r.data().data(), a.data().data());
  return r;
}

/// Keeps the odd-indexed lanes (AIE `filter_odd`).
template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline vector<T, N / 2> filter_odd(const vector<T, N>& a) {
  record(OpClass::shuffle);
  vector<T, N / 2> r;
  B::template filter_odd<T, N>(r.data().data(), a.data().data());
  return r;
}

// ---------- reductions ----------
// Sequential on every backend: float reductions are order-sensitive, and a
// single evaluation order is what keeps backends bit-exact (simd.hpp).

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline T reduce_add(const vector<T, N>& a) {
  record(OpClass::vector_alu, /*log-tree*/ 4);
  return B::template reduce_add<T, N>(a.data().data());
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline T reduce_min(const vector<T, N>& a) {
  record(OpClass::vector_alu, 4);
  return B::template reduce_min<T, N>(a.data().data());
}

template <class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline T reduce_max(const vector<T, N>& a) {
  record(OpClass::vector_alu, 4);
  return B::template reduce_max<T, N>(a.data().data());
}

}  // namespace aie

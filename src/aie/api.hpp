// aie -- functional emulation of the AIE vector API (UG1079 "AIE API").
//
// The operation set covers what the paper's four ported AMD examples need:
// element-wise arithmetic and MACs (bilinear, IIR), sliding multiplies
// (farrow's fixed-point convolution), and compare/select/shuffle primitives
// (bitonic sorting networks). Every operation records its VLIW issue-slot
// class for the cycle-approximate simulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "accum.hpp"
#include "cycle_model.hpp"
#include "vector.hpp"

namespace aie {

namespace detail {
template <class T>
using acc_tag_for = std::conditional_t<std::is_floating_point_v<T>,
                                       accfloat_tag, acc48_tag>;
template <class T>
using acc_elem_for =
    typename acc_storage<acc_tag_for<T>>::type;
}  // namespace detail

// ---------- element-wise vector arithmetic ----------

template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> add(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, static_cast<T>(a.get(i) + b.get(i)));
  return r;
}

template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> sub(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, static_cast<T>(a.get(i) - b.get(i)));
  return r;
}

template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> neg(const vector<T, N>& a) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, static_cast<T>(-a.get(i)));
  return r;
}

template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> abs(const vector<T, N>& a) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) {
    r.set(i, a.get(i) < T{} ? static_cast<T>(-a.get(i)) : a.get(i));
  }
  return r;
}

/// Per-lane clamp into [lo, hi] (AIE `aie::max(aie::min(...))` idiom).
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> clamp(const vector<T, N>& a, T lo, T hi) {
  record(OpClass::vector_alu, 2);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) {
    r.set(i, std::clamp(a.get(i), lo, hi));
  }
  return r;
}

template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> min(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, std::min(a.get(i), b.get(i)));
  return r;
}

template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> max(const vector<T, N>& a,
                                      const vector<T, N>& b) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, std::max(a.get(i), b.get(i)));
  return r;
}

// ---------- multiply / multiply-accumulate ----------

/// Lane-wise multiply into an accumulator (AIE `aie::mul`).
template <class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mul(
    const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> acc;
  for (unsigned i = 0; i < N; ++i) {
    acc.set(i, static_cast<detail::acc_elem_for<T>>(a.get(i)) *
                   static_cast<detail::acc_elem_for<T>>(b.get(i)));
  }
  return acc;
}

/// Lane-wise multiply-accumulate (AIE `aie::mac`).
template <class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mac(
    const accum<detail::acc_tag_for<T>, N>& acc, const vector<T, N>& a,
    const vector<T, N>& b) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> r = acc;
  for (unsigned i = 0; i < N; ++i) {
    r.set(i, r.get(i) + static_cast<detail::acc_elem_for<T>>(a.get(i)) *
                            static_cast<detail::acc_elem_for<T>>(b.get(i)));
  }
  return r;
}

/// Lane-wise multiply-subtract (AIE `aie::msc`).
template <class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> msc(
    const accum<detail::acc_tag_for<T>, N>& acc, const vector<T, N>& a,
    const vector<T, N>& b) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> r = acc;
  for (unsigned i = 0; i < N; ++i) {
    r.set(i, r.get(i) - static_cast<detail::acc_elem_for<T>>(a.get(i)) *
                            static_cast<detail::acc_elem_for<T>>(b.get(i)));
  }
  return r;
}

/// Multiply by a broadcast scalar (AIE `aie::mul(vec, scalar)`).
template <class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mul(
    const vector<T, N>& a, T s) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> acc;
  for (unsigned i = 0; i < N; ++i) {
    acc.set(i, static_cast<detail::acc_elem_for<T>>(a.get(i)) *
                   static_cast<detail::acc_elem_for<T>>(s));
  }
  return acc;
}

template <class T, unsigned N>
[[nodiscard]] inline accum<detail::acc_tag_for<T>, N> mac(
    const accum<detail::acc_tag_for<T>, N>& acc, const vector<T, N>& a, T s) {
  record(OpClass::vector_mac);
  accum<detail::acc_tag_for<T>, N> r = acc;
  for (unsigned i = 0; i < N; ++i) {
    r.set(i, r.get(i) + static_cast<detail::acc_elem_for<T>>(a.get(i)) *
                            static_cast<detail::acc_elem_for<T>>(s));
  }
  return r;
}

// ---------- sliding multiplies (FIR-style convolution) ----------

/// Mirrors aie::sliding_mul_ops<Lanes, Points, CoeffStep, DataStepX, ...>:
/// lane L computes sum_{p<Points} coeff[cstart + p*CoeffStep] *
/// data[dstart + L*DataStepY + p*DataStepX]. This is the workhorse of
/// hand-optimized AIE FIR/Farrow kernels.
template <unsigned Lanes, unsigned Points, int CoeffStep = 1,
          int DataStepX = 1, int DataStepY = 1>
struct sliding_mul_ops {
  template <class C, unsigned NC, class D, unsigned ND>
  [[nodiscard]] static accum<detail::acc_tag_for<D>, Lanes> mul(
      const vector<C, NC>& coeff, unsigned cstart, const vector<D, ND>& data,
      unsigned dstart) {
    record(OpClass::vector_mac, Points);  // Points MACs issue back-to-back
    accum<detail::acc_tag_for<D>, Lanes> acc;
    accumulate(acc, coeff, cstart, data, dstart, /*negate=*/false);
    return acc;
  }

  template <class C, unsigned NC, class D, unsigned ND>
  [[nodiscard]] static accum<detail::acc_tag_for<D>, Lanes> mac(
      accum<detail::acc_tag_for<D>, Lanes> acc, const vector<C, NC>& coeff,
      unsigned cstart, const vector<D, ND>& data, unsigned dstart) {
    record(OpClass::vector_mac, Points);
    accumulate(acc, coeff, cstart, data, dstart, /*negate=*/false);
    return acc;
  }

 private:
  template <class C, unsigned NC, class D, unsigned ND>
  static void accumulate(accum<detail::acc_tag_for<D>, Lanes>& acc,
                         const vector<C, NC>& coeff, unsigned cstart,
                         const vector<D, ND>& data, unsigned dstart,
                         bool negate) {
    using A = detail::acc_elem_for<D>;
    for (unsigned lane = 0; lane < Lanes; ++lane) {
      A sum = acc.get(lane);
      for (unsigned p = 0; p < Points; ++p) {
        const auto ci =
            static_cast<unsigned>(static_cast<int>(cstart) +
                                  static_cast<int>(p) * CoeffStep) % NC;
        const auto di = static_cast<unsigned>(
                            static_cast<int>(dstart) +
                            static_cast<int>(lane) * DataStepY +
                            static_cast<int>(p) * DataStepX) %
                        ND;
        const A prod =
            static_cast<A>(coeff.get(ci)) * static_cast<A>(data.get(di));
        sum = negate ? sum - prod : sum + prod;
      }
      acc.set(lane, sum);
    }
  }
};

/// Symmetric sliding multiply (AIE `sliding_mul_sym_ops`): exploits
/// coefficient symmetry c[p] == c[Points-1-p] by pre-adding the mirrored
/// data samples, halving the MAC count -- the standard trick in
/// hand-optimized symmetric FIR kernels.
template <unsigned Lanes, unsigned Points>
struct sliding_mul_sym_ops {
  static_assert(Points % 2 == 0, "symmetric form implemented for even taps");

  template <class C, unsigned NC, class D, unsigned ND>
  [[nodiscard]] static accum<detail::acc_tag_for<D>, Lanes> mul(
      const vector<C, NC>& coeff, unsigned cstart, const vector<D, ND>& data,
      unsigned dstart) {
    record(OpClass::vector_mac, Points / 2);
    record(OpClass::vector_alu, Points / 2);  // the pre-adds
    using A = detail::acc_elem_for<D>;
    accum<detail::acc_tag_for<D>, Lanes> acc;
    for (unsigned lane = 0; lane < Lanes; ++lane) {
      A sum{};
      for (unsigned p = 0; p < Points / 2; ++p) {
        const A c = static_cast<A>(coeff.get((cstart + p) % NC));
        const A lo = static_cast<A>(data.get((dstart + lane + p) % ND));
        const A hi = static_cast<A>(
            data.get((dstart + lane + Points - 1 - p) % ND));
        sum += c * (lo + hi);
      }
      acc.set(lane, sum);
    }
    return acc;
  }
};

// ---------- compares, select, shuffles (sorting networks) ----------

template <class T, unsigned N>
[[nodiscard]] inline mask<N> lt(const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::vector_alu);
  mask<N> m;
  for (unsigned i = 0; i < N; ++i) m.set(i, a.get(i) < b.get(i));
  return m;
}

template <class T, unsigned N>
[[nodiscard]] inline mask<N> ge(const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::vector_alu);
  mask<N> m;
  for (unsigned i = 0; i < N; ++i) m.set(i, a.get(i) >= b.get(i));
  return m;
}

/// Per-lane select: lane i is a[i] where m[i], else b[i] (AIE `select`).
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> select(const vector<T, N>& a,
                                         const vector<T, N>& b,
                                         const mask<N>& m) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, m.get(i) ? a.get(i) : b.get(i));
  return r;
}

/// Rotates lanes down by `n` (lane i <- lane (i+n) mod N).
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> shuffle_down(const vector<T, N>& a,
                                               unsigned n) {
  record(OpClass::shuffle);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, a.get((i + n) % N));
  return r;
}

/// Rotates lanes up by `n` (lane i <- lane (i-n) mod N).
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> shuffle_up(const vector<T, N>& a,
                                             unsigned n) {
  record(OpClass::shuffle);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, a.get((i + N - (n % N)) % N));
  return r;
}

/// Reverses lane order (AIE `aie::reverse`).
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> reverse(const vector<T, N>& a) {
  record(OpClass::shuffle);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, a.get(N - 1 - i));
  return r;
}

/// Exchanges lanes within blocks of 2*`stride`: lane i swaps with lane
/// i XOR stride. This is the butterfly permutation bitonic networks use.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> butterfly(const vector<T, N>& a,
                                            unsigned stride) {
  record(OpClass::shuffle);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) r.set(i, a.get(i ^ stride));
  return r;
}

/// Gathers arbitrary lanes: r[i] = a[idx[i]] (AIE generalized shuffle).
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> permute(const vector<T, N>& a,
                                          const vector<std::int32_t, N>& idx) {
  record(OpClass::shuffle);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) {
    r.set(i, a.get(static_cast<unsigned>(idx.get(i)) % N));
  }
  return r;
}

/// Interleaves even/odd lanes of two vectors (AIE `interleave_zip`).
template <class T, unsigned N>
[[nodiscard]] inline std::pair<vector<T, N>, vector<T, N>> interleave_zip(
    const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::shuffle, 2);
  vector<T, N> lo, hi;
  for (unsigned i = 0; i < N / 2; ++i) {
    lo.set(2 * i, a.get(i));
    lo.set(2 * i + 1, b.get(i));
    hi.set(2 * i, a.get(N / 2 + i));
    hi.set(2 * i + 1, b.get(N / 2 + i));
  }
  return {lo, hi};
}

/// De-interleaves lanes of two vectors (AIE `interleave_unzip`).
template <class T, unsigned N>
[[nodiscard]] inline std::pair<vector<T, N>, vector<T, N>> interleave_unzip(
    const vector<T, N>& a, const vector<T, N>& b) {
  record(OpClass::shuffle, 2);
  vector<T, N> even, odd;
  for (unsigned i = 0; i < N / 2; ++i) {
    even.set(i, a.get(2 * i));
    odd.set(i, a.get(2 * i + 1));
    even.set(N / 2 + i, b.get(2 * i));
    odd.set(N / 2 + i, b.get(2 * i + 1));
  }
  return {even, odd};
}

/// Keeps the even-indexed lanes in the lower half (AIE `filter_even`);
/// the upper half is zero.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N / 2> filter_even(const vector<T, N>& a) {
  record(OpClass::shuffle);
  vector<T, N / 2> r;
  for (unsigned i = 0; i < N / 2; ++i) r.set(i, a.get(2 * i));
  return r;
}

/// Keeps the odd-indexed lanes (AIE `filter_odd`).
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N / 2> filter_odd(const vector<T, N>& a) {
  record(OpClass::shuffle);
  vector<T, N / 2> r;
  for (unsigned i = 0; i < N / 2; ++i) r.set(i, a.get(2 * i + 1));
  return r;
}

// ---------- reductions ----------

template <class T, unsigned N>
[[nodiscard]] inline T reduce_add(const vector<T, N>& a) {
  record(OpClass::vector_alu, /*log-tree*/ 4);
  T s{};
  for (unsigned i = 0; i < N; ++i) s = static_cast<T>(s + a.get(i));
  return s;
}

template <class T, unsigned N>
[[nodiscard]] inline T reduce_min(const vector<T, N>& a) {
  record(OpClass::vector_alu, 4);
  T s = a.get(0);
  for (unsigned i = 1; i < N; ++i) s = std::min(s, a.get(i));
  return s;
}

template <class T, unsigned N>
[[nodiscard]] inline T reduce_max(const vector<T, N>& a) {
  record(OpClass::vector_alu, 4);
  T s = a.get(0);
  for (unsigned i = 1; i < N; ++i) s = std::max(s, a.get(i));
  return s;
}

}  // namespace aie

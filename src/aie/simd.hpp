// aie -- portable SIMD execution backends for the AIE emulation layer.
//
// The functional emulation in api.hpp/accum.hpp used to evaluate every
// operation as an N-iteration per-lane loop. This header factors the lane
// arithmetic into two interchangeable *backends* so the emulated intrinsics
// execute as a handful of host vector instructions instead:
//
//   * `scalar_backend` -- the canonical per-lane loops. This is the
//     bit-exact reference semantics of every operation, kept deliberately
//     scalar (vectorization is disabled per-function on GCC) so the
//     scalar-vs-SIMD ablation in bench_ablation_simd measures per-lane
//     execution, not the autovectorizer.
//   * `native_backend` -- the same operations on GCC/Clang vector
//     extensions (`__attribute__((vector_size(...)))`): one emulated AIE
//     vector op maps onto one or two host SIMD instructions. On compilers
//     without vector extensions it degrades to `scalar_backend`.
//
// Both backends are always compiled, so equivalence tests and ablation
// benches can compare them within one binary. The *default* backend used
// by the aie:: API (`aie::simd::backend`) is selected at configure time
// with the CGSIM_SIMD CMake option (native | scalar); `scalar` defines
// CGSIM_SIMD_FORCE_SCALAR.
//
// Backends are pure lane arithmetic: they never touch instrumentation.
// OpCounts recording stays in the api layer and is therefore byte-identical
// across backends by construction (asserted by tests/aie/test_simd_backend).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>
#include <utility>

namespace aie::simd {

#if defined(__GNUC__) || defined(__clang__)
#define CGSIM_SIMD_HAVE_NATIVE 1
#else
#define CGSIM_SIMD_HAVE_NATIVE 0
#endif

// Pins the scalar backend's loops to per-lane code on GCC so that a
// "scalar" measurement means scalar execution (see header comment). This
// does not change results, only codegen.
#if defined(__GNUC__) && !defined(__clang__)
#define CGSIM_SIMD_SCALAR_LOOP \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define CGSIM_SIMD_SCALAR_LOOP
#endif

namespace detail {

/// Signed integer type with the same width as a vector lane of sizeof
/// `Bytes` -- the element type vector comparisons and shuffle masks use.
template <unsigned Bytes>
struct int_of;
template <>
struct int_of<1> {
  using type = std::int8_t;
};
template <>
struct int_of<2> {
  using type = std::int16_t;
};
template <>
struct int_of<4> {
  using type = std::int32_t;
};
template <>
struct int_of<8> {
  using type = std::int64_t;
};
template <unsigned Bytes>
using int_of_t = typename int_of<Bytes>::type;

/// Saturates an int64 accumulator lane into T's range (AIE srs clamp).
template <class T>
[[nodiscard]] constexpr T saturate_i64(std::int64_t v) {
  constexpr auto lo = static_cast<std::int64_t>(std::numeric_limits<T>::min());
  constexpr auto hi = static_cast<std::int64_t>(std::numeric_limits<T>::max());
  return static_cast<T>(std::clamp(v, lo, hi));
}

/// Arithmetic shift right with round-half-up, as AIE srs does by default.
[[nodiscard]] constexpr std::int64_t shift_round(std::int64_t v, int shift) {
  if (shift <= 0) return v << -shift;
  const std::int64_t bias = std::int64_t{1} << (shift - 1);
  return (v + bias) >> shift;
}

// Cubic coefficients of the Q15 2^y approximation on y in (0, 1]:
// 2^y ~= 1 + y*(c1 + y*(c2 + y*c3)), max relative error ~2e-4. Every
// intermediate product below stays under 2^31, so the evaluation is exact
// int32 arithmetic (identical on both backends by construction).
inline constexpr std::int32_t kExp2C1 = 22803;  // round(0.695802 * 2^15)
inline constexpr std::int32_t kExp2C2 = 7354;   // round(0.224426 * 2^15)
inline constexpr std::int32_t kExp2C3 = 2603;   // round(0.0794415 * 2^15)

/// One lane of the fixed-point negative exponential: 2^(-u / 2^15) in Q15.
/// Negative inputs clamp to 0 (result 32768 == 1.0); u >= 32 * 2^15
/// underflows to 0. The canonical formula both backends follow.
[[nodiscard]] constexpr std::int32_t exp2_neg_q15_lane(std::int32_t u) {
  u = u < 0 ? 0 : u;
  const std::int32_t n = u >> 15;
  const std::int32_t f = u & 32767;
  // 2^(-(n + f/2^15)) == 2^(1 - f/2^15) >> (n + 1); the f == 0 split keeps
  // the poly argument in (0, 32768] and the result exact at integers.
  const std::int32_t x = 32768 - f;
  std::int32_t t = kExp2C3;
  t = kExp2C2 + ((t * x) >> 15);
  t = kExp2C1 + ((t * x) >> 15);
  const std::int32_t p = 32768 + ((t * x) >> 15);
  const std::int32_t sh0 = n > 31 ? 31 : n;          // shift counts clamp to
  const std::int32_t sh1 = n > 30 ? 31 : n + 1;      // 31 (defined behaviour)
  return f == 0 ? (32768 >> sh0) : (p >> sh1);
}

/// Wrapping lane arithmetic: signed overflow is UB, so integral lanes
/// compute in unsigned (defined modular wrap) and cast back; the result is
/// the two's-complement bit pattern both backends agree on. Float lanes
/// pass through untouched.
template <class T>
[[nodiscard]] constexpr T lane_add(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(
        static_cast<U>(static_cast<U>(a) + static_cast<U>(b)));
  } else {
    return a + b;
  }
}

template <class T>
[[nodiscard]] constexpr T lane_sub(T a, T b) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(
        static_cast<U>(static_cast<U>(a) - static_cast<U>(b)));
  } else {
    return a - b;
  }
}

template <class T>
[[nodiscard]] constexpr T lane_neg(T a) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(U{} - static_cast<U>(a)));
  } else {
    return -a;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// scalar_backend: canonical per-lane loops (the reference semantics).
// ---------------------------------------------------------------------------

struct scalar_backend {
  static constexpr const char* name = "scalar";
  static constexpr bool vectorized = false;

  // ---- element-wise arithmetic ----

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void add(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = detail::lane_add(a[i], b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void sub(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = detail::lane_sub(a[i], b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void neg(T* r, const T* a) {
    for (unsigned i = 0; i < N; ++i) r[i] = detail::lane_neg(a[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void abs_(T* r, const T* a) {
    for (unsigned i = 0; i < N; ++i) {
      r[i] = a[i] < T{} ? detail::lane_neg(a[i]) : a[i];
    }
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void min_(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = std::min(a[i], b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void max_(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = std::max(a[i], b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void clamp(T* r, const T* a, T lo, T hi) {
    for (unsigned i = 0; i < N; ++i) r[i] = std::clamp(a[i], lo, hi);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void broadcast(T* r, T v) {
    for (unsigned i = 0; i < N; ++i) r[i] = v;
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void iota(T* r, T start, T step) {
    T v = start;
    for (unsigned i = 0; i < N; ++i, v = static_cast<T>(v + step)) r[i] = v;
  }

  // ---- multiply / multiply-accumulate into A-typed accumulator lanes ----

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mul(A* acc, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = static_cast<A>(a[i]) * static_cast<A>(b[i]);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac(A* acc, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] + static_cast<A>(a[i]) * static_cast<A>(b[i]);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void msc(A* acc, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] - static_cast<A>(a[i]) * static_cast<A>(b[i]);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mul_s(A* acc, const T* a, T s) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = static_cast<A>(a[i]) * static_cast<A>(s);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac_s(A* acc, const T* a, T s) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] + static_cast<A>(a[i]) * static_cast<A>(s);
    }
  }

  /// acc[l] += c * data[l] over `N` contiguous data lanes -- the inner step
  /// of the contiguous sliding-multiply fast path.
  template <class A, class D, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac_bcast(A* acc, const D* data, A c) {
    for (unsigned i = 0; i < N; ++i) acc[i] = acc[i] + c * static_cast<A>(data[i]);
  }

  /// acc[l] += c * (d1[l] + d2[l]) -- the pre-add step of the symmetric
  /// sliding multiply (both data windows contiguous).
  template <class A, class D, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac_bcast_pair(A* acc, const D* d1,
                                                    const D* d2, A c) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] + c * (static_cast<A>(d1[i]) + static_cast<A>(d2[i]));
    }
  }

  // ---- accumulator <-> vector moves (srs / ups) ----

  /// Shift-round-saturate int64 accumulator lanes down to T.
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void srs(T* r, const std::int64_t* acc,
                                         int shift) {
    for (unsigned i = 0; i < N; ++i) {
      r[i] = detail::saturate_i64<T>(detail::shift_round(acc[i], shift));
    }
  }

  /// Upshift T lanes into int64 accumulator lanes.
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void ups(std::int64_t* acc, const T* v,
                                         int shift) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = static_cast<std::int64_t>(v[i]) << shift;
    }
  }

  /// Lane-wise static_cast between accumulator and vector element types
  /// (the float accfloat<->vector moves and srs on float accumulators).
  template <class Dst, class Src, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void convert(Dst* r, const Src* a) {
    for (unsigned i = 0; i < N; ++i) r[i] = static_cast<Dst>(a[i]);
  }

  // ---- ML extensions: dot-product MAC, 32-bit accumulators, converts ----

  /// acc[l] += sum_{j<4} a[4l+j] * b[4l+j] -- the AIE-ML 8-bit MAC shape
  /// (4-deep multiply groups reduced into one accumulator lane). The sum
  /// evaluates exactly in int64 and truncates modulo the accumulator width
  /// (well-defined in C++20), so int16 inputs whose 4-product sum exceeds
  /// the int32 lane wrap instead of hitting signed-overflow UB; the native
  /// backend's pair-sum reduction lands on the same modular value.
  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac_dot4(A* acc, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) {
      const std::int64_t p0 = static_cast<std::int64_t>(a[4 * i + 0]) * b[4 * i + 0];
      const std::int64_t p1 = static_cast<std::int64_t>(a[4 * i + 1]) * b[4 * i + 1];
      const std::int64_t p2 = static_cast<std::int64_t>(a[4 * i + 2]) * b[4 * i + 2];
      const std::int64_t p3 = static_cast<std::int64_t>(a[4 * i + 3]) * b[4 * i + 3];
      acc[i] = static_cast<A>(acc[i] + ((p0 + p1) + (p2 + p3)));
    }
  }

  /// srs from int32 accumulator lanes (acc32). Evaluated in int64 so the
  /// rounding bias cannot overflow the lane, then the shared clamp.
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void srs32(T* r, const std::int32_t* acc,
                                           int shift) {
    for (unsigned i = 0; i < N; ++i) {
      r[i] = detail::saturate_i64<T>(detail::shift_round(acc[i], shift));
    }
  }

  /// Upshift T lanes into int32 accumulator lanes (acc32 ups).
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void ups32(std::int32_t* acc, const T* v,
                                           int shift) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = static_cast<std::int32_t>(v[i]) << shift;
    }
  }

  /// Narrowing lane convert with saturation (AIE pack-with-saturate).
  template <class Dst, class Src, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void convert_sat(Dst* r, const Src* a) {
    static_assert(std::is_integral_v<Dst> && std::is_integral_v<Src> &&
                  sizeof(Dst) < sizeof(Src));
    constexpr auto lo = static_cast<Src>(std::numeric_limits<Dst>::min());
    constexpr auto hi = static_cast<Src>(std::numeric_limits<Dst>::max());
    for (unsigned i = 0; i < N; ++i) {
      r[i] = static_cast<Dst>(std::clamp(a[i], lo, hi));
    }
  }

  /// bf16 -> f32 widen: a bf16 pattern is the high half of the f32 bits.
  template <unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void bf16_to_f32(float* r,
                                                 const std::uint16_t* a) {
    for (unsigned i = 0; i < N; ++i) {
      const std::uint32_t u = static_cast<std::uint32_t>(a[i]) << 16;
      std::memcpy(&r[i], &u, sizeof(float));
    }
  }

  /// f32 -> bf16 narrow with round-to-nearest-even; NaNs quiet to a
  /// canonical payload. Branchless select so every input (including NaN
  /// payload bits) follows the identical formula on both backends.
  template <unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void f32_to_bf16(std::uint16_t* r,
                                                 const float* a) {
    for (unsigned i = 0; i < N; ++i) {
      std::uint32_t u;
      std::memcpy(&u, &a[i], sizeof(float));
      const bool nan = (u & 0x7fffffffu) > 0x7f800000u;
      const std::uint32_t rne = (u + 0x7fffu + ((u >> 16) & 1u)) >> 16;
      const std::uint32_t quiet = (u >> 16) | 0x0040u;
      r[i] = static_cast<std::uint16_t>(nan ? quiet : rne);
    }
  }

  /// Fixed-point negative exponential r[i] = 2^(-u[i]/2^15) in Q15 (the
  /// softmax kernel's exp). All-int32 arithmetic; see detail::exp2_neg_q15_lane.
  template <unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void exp2_neg_q15(std::int32_t* r,
                                                  const std::int32_t* u) {
    for (unsigned i = 0; i < N; ++i) r[i] = detail::exp2_neg_q15_lane(u[i]);
  }

  // ---- compares and select ----

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void lt(bool* m, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) m[i] = a[i] < b[i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void ge(bool* m, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) m[i] = a[i] >= b[i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void select(T* r, const T* a, const T* b,
                                            const bool* m) {
    for (unsigned i = 0; i < N; ++i) r[i] = m[i] ? a[i] : b[i];
  }

  // ---- lane permutations ----

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void shuffle_down(T* r, const T* a,
                                                  unsigned n) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[(i + n) % N];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void shuffle_up(T* r, const T* a, unsigned n) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[(i + N - (n % N)) % N];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void reverse(T* r, const T* a) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[N - 1 - i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void butterfly(T* r, const T* a,
                                               unsigned stride) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[(i ^ stride) % N];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void permute(T* r, const T* a,
                                             const std::int32_t* idx) {
    for (unsigned i = 0; i < N; ++i) {
      r[i] = a[static_cast<unsigned>(idx[i]) % N];
    }
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void interleave_zip(T* lo, T* hi, const T* a,
                                                    const T* b) {
    for (unsigned i = 0; i < N / 2; ++i) {
      lo[2 * i] = a[i];
      lo[2 * i + 1] = b[i];
      hi[2 * i] = a[N / 2 + i];
      hi[2 * i + 1] = b[N / 2 + i];
    }
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void interleave_unzip(T* even, T* odd,
                                                      const T* a, const T* b) {
    for (unsigned i = 0; i < N / 2; ++i) {
      even[i] = a[2 * i];
      odd[i] = a[2 * i + 1];
      even[N / 2 + i] = b[2 * i];
      odd[N / 2 + i] = b[2 * i + 1];
    }
  }

  /// r (N/2 lanes) <- even-indexed lanes of a (N lanes).
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void filter_even(T* r, const T* a) {
    for (unsigned i = 0; i < N / 2; ++i) r[i] = a[2 * i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void filter_odd(T* r, const T* a) {
    for (unsigned i = 0; i < N / 2; ++i) r[i] = a[2 * i + 1];
  }

  // ---- reductions ----
  // Sequential on both backends: float reductions are order-sensitive, and
  // keeping one evaluation order is what makes the backends bit-exact.

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static T reduce_add(const T* a) {
    T s{};
    for (unsigned i = 0; i < N; ++i) s = static_cast<T>(s + a[i]);
    return s;
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static T reduce_min(const T* a) {
    T s = a[0];
    for (unsigned i = 1; i < N; ++i) s = std::min(s, a[i]);
    return s;
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static T reduce_max(const T* a) {
    T s = a[0];
    for (unsigned i = 1; i < N; ++i) s = std::max(s, a[i]);
    return s;
  }
};

// ---------------------------------------------------------------------------
// native_backend: the same operations on compiler vector extensions.
// ---------------------------------------------------------------------------

#if CGSIM_SIMD_HAVE_NATIVE

struct native_backend {
  static constexpr const char* name = "native";
  static constexpr bool vectorized = true;

 private:
  template <class T, unsigned N>
  struct vt {
    typedef T type __attribute__((vector_size(sizeof(T) * N)));
  };
  /// Host vector register of N T lanes.
  template <class T, unsigned N>
  using v = typename vt<T, N>::type;
  /// Same-shape signed integer vector (comparison results, shuffle masks).
  template <class T, unsigned N>
  using m = typename vt<detail::int_of_t<sizeof(T)>, N>::type;

  template <class T, unsigned N>
  static v<T, N> ld(const T* p) {
    v<T, N> r;
    std::memcpy(&r, p, sizeof r);
    return r;
  }
  template <class T, unsigned N>
  static void st(T* p, const v<T, N>& r) {
    std::memcpy(p, &r, sizeof r);
  }

  /// Lane-type conversion. GCC lowers a direct `__builtin_convertvector`
  /// between integer lanes whose widths differ by more than 2x to per-lane
  /// scalar code (byte extracts + shifts); stepping through the
  /// intermediate widths keeps every hop a packed convert. Value-identical
  /// to the one-step convert: sign/zero extension composes hop by hop
  /// (intermediate signedness follows the source), and integer narrowing
  /// truncates modulo the destination width either way.
  template <class A, class T, unsigned N>
  static v<A, N> cvt(const v<T, N>& x) {
    if constexpr (std::is_same_v<A, T>) {
      return x;
    } else if constexpr (std::is_integral_v<A> && std::is_integral_v<T> &&
                         sizeof(A) > 2 * sizeof(T)) {
      using MidS = detail::int_of_t<2 * sizeof(T)>;
      using Mid = std::conditional_t<std::is_signed_v<T>, MidS,
                                     std::make_unsigned_t<MidS>>;
      return cvt<A, Mid, N>(__builtin_convertvector(x, v<Mid, N>));
    } else if constexpr (std::is_integral_v<A> && std::is_integral_v<T> &&
                         sizeof(T) > 2 * sizeof(A)) {
      using MidS = detail::int_of_t<sizeof(T) / 2>;
      using Mid = std::conditional_t<std::is_signed_v<A>, MidS,
                                     std::make_unsigned_t<MidS>>;
      return cvt<A, Mid, N>(__builtin_convertvector(x, v<Mid, N>));
    } else {
      return __builtin_convertvector(x, v<A, N>);
    }
  }

  /// {0, 1, ..., N-1} as a shuffle-mask vector for T-sized lanes.
  template <class T, unsigned N>
  static m<T, N> lane_iota() {
    m<T, N> r{};
    for (unsigned i = 0; i < N; ++i) {
      r[i] = static_cast<detail::int_of_t<sizeof(T)>>(i);
    }
    return r;  // constant-folded at -O2
  }

  template <class T, unsigned N>
  static v<T, N> splat(T x) {
    v<T, N> r;
    for (unsigned i = 0; i < N; ++i) r[i] = x;
    return r;
  }

  // `__builtin_shuffle` (runtime mask) is a GCC extension; Clang only has
  // the constant-index `__builtin_shufflevector`. Lane permutations fall
  // back to plain loops on non-GCC compilers.
#if defined(__GNUC__) && !defined(__clang__)
  static constexpr bool kHaveDynShuffle = true;
#else
  static constexpr bool kHaveDynShuffle = false;
#endif

 public:
  // ---- element-wise arithmetic ----

  template <class T, unsigned N>
  static void add(T* r, const T* a, const T* b) {
    if constexpr (std::is_integral_v<T>) {
      st<T, N>(r, wrap_add<T, N>(ld<T, N>(a), ld<T, N>(b)));
    } else {
      st<T, N>(r, ld<T, N>(a) + ld<T, N>(b));
    }
  }

  template <class T, unsigned N>
  static void sub(T* r, const T* a, const T* b) {
    if constexpr (std::is_integral_v<T>) {
      st<T, N>(r, wrap_sub<T, N>(ld<T, N>(a), ld<T, N>(b)));
    } else {
      st<T, N>(r, ld<T, N>(a) - ld<T, N>(b));
    }
  }

  template <class T, unsigned N>
  static void neg(T* r, const T* a) {
    if constexpr (std::is_integral_v<T>) {
      st<T, N>(r, wrap_neg<T, N>(ld<T, N>(a)));
    } else {
      st<T, N>(r, -ld<T, N>(a));
    }
  }

  template <class T, unsigned N>
  static void abs_(T* r, const T* a) {
    const auto va = ld<T, N>(a);
    // Mirrors the scalar `a < 0 ? -a : a` lane-wise (keeps -0.0f and NaN
    // behaviour identical to the scalar backend); the integral negate wraps
    // (abs(INT_MIN) == INT_MIN on both backends, not UB).
    if constexpr (std::is_integral_v<T>) {
      st<T, N>(r, (va < splat<T, N>(T{})) ? wrap_neg<T, N>(va) : va);
    } else {
      st<T, N>(r, (va < splat<T, N>(T{})) ? -va : va);
    }
  }

  template <class T, unsigned N>
  static void min_(T* r, const T* a, const T* b) {
    const auto va = ld<T, N>(a);
    const auto vb = ld<T, N>(b);
    st<T, N>(r, (vb < va) ? vb : va);  // == std::min per lane
  }

  template <class T, unsigned N>
  static void max_(T* r, const T* a, const T* b) {
    const auto va = ld<T, N>(a);
    const auto vb = ld<T, N>(b);
    st<T, N>(r, (va < vb) ? vb : va);  // == std::max per lane
  }

  template <class T, unsigned N>
  static void clamp(T* r, const T* a, T lo, T hi) {
    const auto va = ld<T, N>(a);
    const auto vlo = splat<T, N>(lo);
    const auto vhi = splat<T, N>(hi);
    // Two canonical min/max ternaries, not one nested select: GCC folds
    // each into MIN_EXPR/MAX_EXPR (packed at any vector width), while the
    // nested form lowers to a lane select that scalarizes past ~2 registers.
    const auto vmin = (vhi < va) ? vhi : va;
    st<T, N>(r, (vmin < vlo) ? vlo : vmin);
  }

  template <class T, unsigned N>
  static void broadcast(T* r, T x) {
    st<T, N>(r, splat<T, N>(x));
  }

  template <class T, unsigned N>
  static void iota(T* r, T start, T step) {
    // Sequential adds, matching the scalar backend's float rounding.
    scalar_backend::iota<T, N>(r, start, step);
  }

  // ---- multiply / multiply-accumulate ----

 private:
  /// Loads N T lanes widened to the accumulator element type A.
  template <class A, class T, unsigned N>
  static v<A, N> ldw(const T* p) {
    return cvt<A, T, N>(ld<T, N>(p));
  }

  /// True when T x T products provably fit in int32 lanes: then the
  /// int64-accumulator multiply can run as a packed 32-bit multiply (the
  /// host has no packed 64-bit multiply below AVX-512) and widen after.
  /// Exact either way, so bit-identical to the full-width form.
  template <class A, class T>
  static constexpr bool kNarrowMul = std::is_integral_v<A> &&
                                     std::is_integral_v<T> && sizeof(A) == 8 &&
                                     sizeof(T) <= 2;

  /// a[i] * b[i] widened into A lanes, via int32 lanes when exact.
  template <class A, class T, unsigned N>
  static v<A, N> wmul(const T* a, const T* b) {
    if constexpr (kNarrowMul<A, T>) {
      return __builtin_convertvector(
          ldw<std::int32_t, T, N>(a) * ldw<std::int32_t, T, N>(b), v<A, N>);
    } else {
      return ldw<A, T, N>(a) * ldw<A, T, N>(b);
    }
  }

 public:
  template <class A, class T, unsigned N>
  static void mul(A* acc, const T* a, const T* b) {
    st<A, N>(acc, wmul<A, T, N>(a, b));
  }

  template <class A, class T, unsigned N>
  static void mac(A* acc, const T* a, const T* b) {
    st<A, N>(acc, ld<A, N>(acc) + wmul<A, T, N>(a, b));
  }

  template <class A, class T, unsigned N>
  static void msc(A* acc, const T* a, const T* b) {
    st<A, N>(acc, ld<A, N>(acc) - wmul<A, T, N>(a, b));
  }

  template <class A, class T, unsigned N>
  static void mul_s(A* acc, const T* a, T s) {
    st<A, N>(acc, ldw<A, T, N>(a) * splat<A, N>(static_cast<A>(s)));
  }

  template <class A, class T, unsigned N>
  static void mac_s(A* acc, const T* a, T s) {
    st<A, N>(acc,
             ld<A, N>(acc) + ldw<A, T, N>(a) * splat<A, N>(static_cast<A>(s)));
  }

  template <class A, class D, unsigned N>
  static void mac_bcast(A* acc, const D* data, A c) {
    if constexpr (kNarrowMul<A, D>) {
      // Coefficients come from a <=16-bit vector, but check anyway: the
      // narrow path is exact only when c * data fits in int32 lanes.
      if (c >= -32768 && c <= 32767) {
        const auto p = splat<std::int32_t, N>(static_cast<std::int32_t>(c)) *
                       ldw<std::int32_t, D, N>(data);
        st<A, N>(acc, ld<A, N>(acc) + __builtin_convertvector(p, v<A, N>));
        return;
      }
    }
    st<A, N>(acc, ld<A, N>(acc) + splat<A, N>(c) * ldw<A, D, N>(data));
  }

  template <class A, class D, unsigned N>
  static void mac_bcast_pair(A* acc, const D* d1, const D* d2, A c) {
    if constexpr (kNarrowMul<A, D>) {
      if (c >= -32768 && c <= 32767) {
        // c*(d1+d2) == c*d1 + c*d2 exactly in int64; each product fits in
        // an int32 lane, so two packed 32-bit multiplies replace the
        // scalarized 64-bit one.
        const auto vc = splat<std::int32_t, N>(static_cast<std::int32_t>(c));
        const auto p1 = vc * ldw<std::int32_t, D, N>(d1);
        const auto p2 = vc * ldw<std::int32_t, D, N>(d2);
        st<A, N>(acc, ld<A, N>(acc) + __builtin_convertvector(p1, v<A, N>) +
                          __builtin_convertvector(p2, v<A, N>));
        return;
      }
    }
    st<A, N>(acc, ld<A, N>(acc) +
                      splat<A, N>(c) * (ldw<A, D, N>(d1) + ldw<A, D, N>(d2)));
  }

  // ---- accumulator <-> vector moves (srs / ups) ----

  template <class T, unsigned N>
  static void srs(T* r, const std::int64_t* acc, int shift) {
    auto va = ld<std::int64_t, N>(acc);
    if (shift <= 0) {
      va <<= -shift;
    } else {
      va = (va + splat<std::int64_t, N>(std::int64_t{1} << (shift - 1))) >>
           shift;
    }
    const auto vlo =
        splat<std::int64_t, N>(std::numeric_limits<T>::min());
    const auto vhi =
        splat<std::int64_t, N>(std::numeric_limits<T>::max());
    // Saturate with two canonical min/max ternaries: GCC folds each into a
    // packed MIN_EXPR/MAX_EXPR at any width, where the equivalent nested
    // select scalarizes to per-lane cmovs once the vector spans more than
    // a couple of registers.
    va = (va > vhi) ? vhi : va;
    va = (va < vlo) ? vlo : va;
    st<T, N>(r, cvt<T, std::int64_t, N>(va));
  }

  template <class T, unsigned N>
  static void ups(std::int64_t* acc, const T* p, int shift) {
    st<std::int64_t, N>(acc, ldw<std::int64_t, T, N>(p) << shift);
  }

  template <class Dst, class Src, unsigned N>
  static void convert(Dst* r, const Src* a) {
    if constexpr (std::is_same_v<Dst, Src>) {
      std::memcpy(r, a, N * sizeof(Dst));
    } else {
      st<Dst, N>(r, cvt<Dst, Src, N>(ld<Src, N>(a)));
    }
  }

  // ---- ML extensions: dot-product MAC, 32-bit accumulators, converts ----

 private:
  /// Lane-wise wrapping add. Signed lane overflow is UB even in vector
  /// extensions, so the add runs in unsigned lanes (defined wrap); the bit
  /// pattern is what two's-complement wrapping produces.
  template <class T, unsigned N>
  static v<T, N> wrap_add(const v<T, N>& x, const v<T, N>& y) {
    using U = std::make_unsigned_t<T>;
    v<U, N> ux, uy;
    std::memcpy(&ux, &x, sizeof(ux));
    std::memcpy(&uy, &y, sizeof(uy));
    ux += uy;
    v<T, N> r;
    std::memcpy(&r, &ux, sizeof(r));
    return r;
  }

  /// Lane-wise wrapping subtract (same unsigned detour as wrap_add).
  template <class T, unsigned N>
  static v<T, N> wrap_sub(const v<T, N>& x, const v<T, N>& y) {
    using U = std::make_unsigned_t<T>;
    v<U, N> ux, uy;
    std::memcpy(&ux, &x, sizeof(ux));
    std::memcpy(&uy, &y, sizeof(uy));
    ux -= uy;
    v<T, N> r;
    std::memcpy(&r, &ux, sizeof(r));
    return r;
  }

  /// Lane-wise wrapping negate: -INT_MIN wraps to itself instead of UB.
  template <class T, unsigned N>
  static v<T, N> wrap_neg(const v<T, N>& x) {
    using U = std::make_unsigned_t<T>;
    v<U, N> ux;
    std::memcpy(&ux, &x, sizeof(ux));
    ux = v<U, N>{} - ux;
    v<T, N> r;
    std::memcpy(&r, &ux, sizeof(r));
    return r;
  }

  /// Splits a 2N-lane vector into its even and odd lanes, each widened to
  /// a double-width lane (sign-extended for signed T, zero-extended for
  /// unsigned): reinterpret each pair as one wide lane (little-endian:
  /// even lane = low half) and recover the halves with shifts. Every step
  /// is lane-local, which matters because GCC lowers cross-lane shuffles
  /// at these vector widths to scalar code.
  template <class T, unsigned N>
  static auto lane_split(const v<T, 2 * N>& x) {
    using WS = detail::int_of_t<2 * sizeof(T)>;
    using W = std::conditional_t<std::is_signed_v<T>, WS,
                                 std::make_unsigned_t<WS>>;
    using U = std::make_unsigned_t<WS>;
    constexpr int half = 8 * sizeof(T);
    v<U, N> u;
    std::memcpy(&u, &x, sizeof(u));
    const v<U, N> ulo = u << half;  // unsigned: left shift cannot be UB
    v<W, N> lo, hi;
    std::memcpy(&lo, &ulo, sizeof(lo));
    std::memcpy(&hi, &u, sizeof(hi));
    // For unsigned W, >> is logical: the even lanes zero-extend as needed.
    return std::pair<v<W, N>, v<W, N>>{lo >> half, hi >> half};
  }

  /// Sums adjacent lane pairs of a 2N-lane vector into N double-width
  /// lanes. Exact: the sum of two extended T values always fits W.
  template <class W, class T, unsigned N>
  static v<W, N> pair_sum_wide(const v<T, 2 * N>& x) {
    const auto [even, odd] = lane_split<T, N>(x);
    static_assert(std::is_same_v<decltype(even), const v<W, N>>);
    return even + odd;
  }

  /// Sums adjacent lane pairs modulo 2^|T|: reinterpret as unsigned
  /// double-width lanes, fold the high half onto the low half, truncate
  /// back. Lane-local like pair_sum_wide, and congruent to the exact pair
  /// sum modulo the lane width.
  template <class T, unsigned N>
  static v<T, N> pair_sum_mod(const v<T, 2 * N>& x) {
    using U = std::make_unsigned_t<detail::int_of_t<2 * sizeof(T)>>;
    v<U, N> u;
    std::memcpy(&u, &x, sizeof(u));
    u += u >> (8 * sizeof(T));
    return cvt<T, U, N>(u);
  }

 public:
  /// acc[l] += dot of the l-th 4-deep product group. Products are exact in
  /// double-width lanes; the 4-group reduction folds adjacent pairs with
  /// the lane-local reinterpret idiom above instead of cross-lane shuffles
  /// (which GCC scalarizes at these widths). Each narrowing step truncates
  /// modulo the accumulator width, so the result is congruent -- hence
  /// bit-identical -- to the scalar backend's exact int64 sum truncated
  /// once at the end.
  template <class A, class T, unsigned N>
  static void mac_dot4(A* acc, const T* a, const T* b) {
    using P = detail::int_of_t<2 * sizeof(T)>;  // exact product lane type
    if constexpr (std::endian::native != std::endian::little ||
                  (sizeof(P) > sizeof(A))) {
      scalar_backend::mac_dot4<A, T, N>(acc, a, b);
    } else {
      const v<P, 4 * N> p = cvt<P, T, 4 * N>(ld<T, 4 * N>(a)) *
                            cvt<P, T, 4 * N>(ld<T, 4 * N>(b));
      v<A, 2 * N> s2;
      if constexpr (sizeof(P) < sizeof(A)) {
        // Pair sums can exceed the product lane type: widen exactly.
        s2 = pair_sum_wide<A, P, 2 * N>(p);
      } else {
        // Product lanes already match the accumulator width: fold mod 2^|A|.
        s2 = pair_sum_mod<A, 2 * N>(p);
      }
      st<A, N>(acc, wrap_add<A, N>(ld<A, N>(acc), pair_sum_mod<A, N>(s2)));
    }
  }

  template <class T, unsigned N>
  static void srs32(T* r, const std::int32_t* acc, int shift) {
    // Widen to int64 lanes so the rounding bias cannot overflow, then the
    // int64 srs path (bit-identical to the scalar formula).
    alignas(32) std::int64_t wide[N];
    st<std::int64_t, N>(wide, __builtin_convertvector(
                                  ld<std::int32_t, N>(acc), v<std::int64_t, N>));
    srs<T, N>(r, wide, shift);
  }

  template <class T, unsigned N>
  static void ups32(std::int32_t* acc, const T* p, int shift) {
    st<std::int32_t, N>(acc, ldw<std::int32_t, T, N>(p) << shift);
  }

  template <class Dst, class Src, unsigned N>
  static void convert_sat(Dst* r, const Src* a) {
    static_assert(std::is_integral_v<Dst> && std::is_integral_v<Src> &&
                  sizeof(Dst) < sizeof(Src));
    const auto va = ld<Src, N>(a);
    const auto vlo = splat<Src, N>(
        static_cast<Src>(std::numeric_limits<Dst>::min()));
    const auto vhi = splat<Src, N>(
        static_cast<Src>(std::numeric_limits<Dst>::max()));
    const auto cmin = (va > vhi) ? vhi : va;       // canonical min/max pair:
    const auto c = (cmin < vlo) ? vlo : cmin;      // stays packed at any width
    st<Dst, N>(r, cvt<Dst, Src, N>(c));
  }

  template <unsigned N>
  static void bf16_to_f32(float* r, const std::uint16_t* a) {
    const auto wide = __builtin_convertvector(ld<std::uint16_t, N>(a),
                                              v<std::uint32_t, N>)
                      << 16;
    v<float, N> f;
    std::memcpy(&f, &wide, sizeof f);
    st<float, N>(r, f);
  }

  template <unsigned N>
  static void f32_to_bf16(std::uint16_t* r, const float* a) {
    const auto vf = ld<float, N>(a);
    v<std::uint32_t, N> u;
    std::memcpy(&u, &vf, sizeof u);
    // Same branchless RNE + NaN-quieting formula as the scalar backend.
    const auto nan = (u & splat<std::uint32_t, N>(0x7fffffffu)) >
                     splat<std::uint32_t, N>(0x7f800000u);
    const auto rne =
        (u + splat<std::uint32_t, N>(0x7fffu) +
         ((u >> 16) & splat<std::uint32_t, N>(1u))) >> 16;
    const auto quiet = (u >> 16) | splat<std::uint32_t, N>(0x0040u);
    st<std::uint16_t, N>(r, __builtin_convertvector(nan ? quiet : rne,
                                                    v<std::uint16_t, N>));
  }

  template <unsigned N>
  static void exp2_neg_q15(std::int32_t* r, const std::int32_t* up) {
    // Slice to one-register-wide steps: the shift clamps and the f==0 blend
    // only stay packed when the lane selects sit in a real machine vector
    // mode; on wider generic vectors GCC scalarizes them per lane once the
    // operands are register-resident (composed with surrounding vector code).
    if constexpr (N > 16 && N % 16 == 0) {
      for (unsigned i = 0; i < N; i += 16) exp2_neg_q15<16>(r + i, up + i);
      return;
    }
    using V = v<std::int32_t, N>;
    const auto sp = [](std::int32_t x) { return splat<std::int32_t, N>(x); };
    V u = ld<std::int32_t, N>(up);
    const V zero{};
    u = (u < zero) ? zero : u;
    const V n = u >> 15;
    const V f = u & sp(32767);
    const V x = sp(32768) - f;
    V t = sp(detail::kExp2C3);
    t = sp(detail::kExp2C2) + ((t * x) >> 15);
    t = sp(detail::kExp2C1) + ((t * x) >> 15);
    const V p = sp(32768) + ((t * x) >> 15);
    // Canonical min ternaries and a bitwise mask blend: both stay packed at
    // any vector width, where non-min/max lane selects scalarize once the
    // operands live in registers across more than a couple of zmms.
    const V sh0 = (n > sp(31)) ? sp(31) : n;
    const V n1 = n + sp(1);
    const V sh1 = (n1 > sp(31)) ? sp(31) : n1;
    const V r0 = sp(32768) >> sh0;
    const V r1 = p >> sh1;
    const V m = f == zero;  // -1/0 lanes
    st<std::int32_t, N>(r, (r0 & m) | (r1 & ~m));
  }

  // ---- compares and select ----

 private:
  /// Stores a lane-wise comparison result (0 / -1 lanes) as bools.
  template <class T, unsigned N>
  static void st_mask(bool* mp, const m<T, N>& cmp) {
    static_assert(sizeof(bool) == 1);
    using b8 = v<std::int8_t, N>;
    const b8 narrow = cvt<std::int8_t, detail::int_of_t<sizeof(T)>, N>(cmp) &
                      splat<std::int8_t, N>(1);
    std::memcpy(mp, &narrow, N);
  }

  /// Loads a bool mask as a 0 / nonzero T-sized integer vector.
  template <class T, unsigned N>
  static m<T, N> ld_mask(const bool* mp) {
    static_assert(sizeof(bool) == 1);
    v<std::int8_t, N> bytes;
    std::memcpy(&bytes, mp, N);
    return cvt<detail::int_of_t<sizeof(T)>, std::int8_t, N>(bytes);
  }

 public:
  template <class T, unsigned N>
  static void lt(bool* mp, const T* a, const T* b) {
    st_mask<T, N>(mp, ld<T, N>(a) < ld<T, N>(b));
  }

  template <class T, unsigned N>
  static void ge(bool* mp, const T* a, const T* b) {
    st_mask<T, N>(mp, ld<T, N>(a) >= ld<T, N>(b));
  }

  template <class T, unsigned N>
  static void select(T* r, const T* a, const T* b, const bool* mp) {
    st<T, N>(r, (ld_mask<T, N>(mp) != m<T, N>{}) ? ld<T, N>(a) : ld<T, N>(b));
  }

  // ---- lane permutations ----
  // GCC's __builtin_shuffle reads mask lanes modulo N, matching the scalar
  // backend's explicit `% N` for power-of-two N.

  template <class T, unsigned N>
  static void shuffle_down(T* r, const T* a, unsigned n) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      const auto idx = lane_iota<T, N>() +
                       splat<detail::int_of_t<sizeof(T)>, N>(
                           static_cast<detail::int_of_t<sizeof(T)>>(n % N));
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), idx));
#endif
    } else {
      scalar_backend::shuffle_down<T, N>(r, a, n);
    }
  }

  template <class T, unsigned N>
  static void shuffle_up(T* r, const T* a, unsigned n) {
    shuffle_down<T, N>(r, a, N - (n % N));
  }

  template <class T, unsigned N>
  static void reverse(T* r, const T* a) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      const auto idx =
          splat<detail::int_of_t<sizeof(T)>, N>(
              static_cast<detail::int_of_t<sizeof(T)>>(N - 1)) -
          lane_iota<T, N>();
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), idx));
#endif
    } else {
      scalar_backend::reverse<T, N>(r, a);
    }
  }

  template <class T, unsigned N>
  static void butterfly(T* r, const T* a, unsigned stride) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      const auto idx = lane_iota<T, N>() ^
                       splat<detail::int_of_t<sizeof(T)>, N>(
                           static_cast<detail::int_of_t<sizeof(T)>>(stride));
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), idx));
#endif
    } else {
      scalar_backend::butterfly<T, N>(r, a, stride);
    }
  }

  template <class T, unsigned N>
  static void permute(T* r, const T* a, const std::int32_t* idx) {
    if constexpr (kHaveDynShuffle && N <= 65536) {
#if defined(__GNUC__) && !defined(__clang__)
      // Truncating/extending int32 indices to lane-sized ones preserves the
      // value modulo N for power-of-two N <= 2^16 -- same lane selection as
      // the scalar `static_cast<unsigned>(idx) % N`.
      const auto mi = cvt<detail::int_of_t<sizeof(T)>, std::int32_t, N>(
          ld<std::int32_t, N>(idx));
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), mi));
#endif
    } else {
      scalar_backend::permute<T, N>(r, a, idx);
    }
  }

  template <class T, unsigned N>
  static void interleave_zip(T* lo, T* hi, const T* a, const T* b) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      using I = detail::int_of_t<sizeof(T)>;
      m<T, N> zlo{}, zhi{};
      for (unsigned i = 0; i < N / 2; ++i) {
        zlo[2 * i] = static_cast<I>(i);
        zlo[2 * i + 1] = static_cast<I>(N + i);
        zhi[2 * i] = static_cast<I>(N / 2 + i);
        zhi[2 * i + 1] = static_cast<I>(N + N / 2 + i);
      }  // constant-folded
      const auto va = ld<T, N>(a);
      const auto vb = ld<T, N>(b);
      st<T, N>(lo, __builtin_shuffle(va, vb, zlo));
      st<T, N>(hi, __builtin_shuffle(va, vb, zhi));
#endif
    } else {
      scalar_backend::interleave_zip<T, N>(lo, hi, a, b);
    }
  }

  template <class T, unsigned N>
  static void interleave_unzip(T* even, T* odd, const T* a, const T* b) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      using I = detail::int_of_t<sizeof(T)>;
      m<T, N> ze{}, zo{};
      for (unsigned i = 0; i < N; ++i) {
        ze[i] = static_cast<I>(2 * i);
        zo[i] = static_cast<I>(2 * i + 1);
      }  // constant-folded
      const auto va = ld<T, N>(a);
      const auto vb = ld<T, N>(b);
      st<T, N>(even, __builtin_shuffle(va, vb, ze));
      st<T, N>(odd, __builtin_shuffle(va, vb, zo));
#endif
    } else {
      scalar_backend::interleave_unzip<T, N>(even, odd, a, b);
    }
  }

  template <class T, unsigned N>
  static void filter_even(T* r, const T* a) {
    scalar_backend::filter_even<T, N>(r, a);  // N/2-lane strided copy
  }

  template <class T, unsigned N>
  static void filter_odd(T* r, const T* a) {
    scalar_backend::filter_odd<T, N>(r, a);
  }

  // ---- reductions ----
  // Integer lane folds are associative (adds wrap modulo 2^|T|, min/max
  // exactly), so a pairwise tree is bit-identical to the scalar backend's
  // sequential fold and runs in log2(N) lane-local steps. FP addition is
  // not associative, so float lanes keep the scalar sequential order.

 private:
  /// Pairwise tree fold: splits even/odd lanes into double-width vectors,
  /// combines them with `op`, narrows back to T (modulo 2^|T| for adds,
  /// exact for min/max), and recurses until one lane remains.
  template <class T, unsigned N, class F>
  static T fold_tree(const v<T, N>& x, F op) {
    if constexpr (N == 1) {
      return x[0];
    } else {
      using WS = detail::int_of_t<2 * sizeof(T)>;
      using W = std::conditional_t<std::is_signed_v<T>, WS,
                                   std::make_unsigned_t<WS>>;
      const auto [even, odd] = lane_split<T, N / 2>(x);
      return fold_tree<T, N / 2>(cvt<T, W, N / 2>(op(even, odd)), op);
    }
  }

  /// Tree folds need: integer lanes narrow enough to widen, a power-of-two
  /// lane count, and the little-endian pair reinterpretation.
  template <class T, unsigned N>
  static constexpr bool kTreeFold =
      std::is_integral_v<T> && sizeof(T) <= 4 && N > 1 &&
      (N & (N - 1)) == 0 && std::endian::native == std::endian::little;

 public:
  template <class T, unsigned N>
  static T reduce_add(const T* a) {
    if constexpr (kTreeFold<T, N>) {
      return fold_tree<T, N>(ld<T, N>(a),
                             [](auto e, auto o) { return e + o; });
    } else {
      return scalar_backend::reduce_add<T, N>(a);
    }
  }
  template <class T, unsigned N>
  static T reduce_min(const T* a) {
    if constexpr (kTreeFold<T, N>) {
      return fold_tree<T, N>(ld<T, N>(a),
                             [](auto e, auto o) { return (o < e) ? o : e; });
    } else {
      return scalar_backend::reduce_min<T, N>(a);
    }
  }
  template <class T, unsigned N>
  static T reduce_max(const T* a) {
    if constexpr (kTreeFold<T, N>) {
      return fold_tree<T, N>(ld<T, N>(a),
                             [](auto e, auto o) { return (o > e) ? o : e; });
    } else {
      return scalar_backend::reduce_max<T, N>(a);
    }
  }
};

#else  // !CGSIM_SIMD_HAVE_NATIVE

using native_backend = scalar_backend;

#endif

// The default backend the aie:: API dispatches to; the CGSIM_SIMD CMake
// option (native | scalar) controls CGSIM_SIMD_FORCE_SCALAR.
#if defined(CGSIM_SIMD_FORCE_SCALAR)
using backend = scalar_backend;
#else
using backend = native_backend;
#endif

}  // namespace aie::simd

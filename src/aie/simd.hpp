// aie -- portable SIMD execution backends for the AIE emulation layer.
//
// The functional emulation in api.hpp/accum.hpp used to evaluate every
// operation as an N-iteration per-lane loop. This header factors the lane
// arithmetic into two interchangeable *backends* so the emulated intrinsics
// execute as a handful of host vector instructions instead:
//
//   * `scalar_backend` -- the canonical per-lane loops. This is the
//     bit-exact reference semantics of every operation, kept deliberately
//     scalar (vectorization is disabled per-function on GCC) so the
//     scalar-vs-SIMD ablation in bench_ablation_simd measures per-lane
//     execution, not the autovectorizer.
//   * `native_backend` -- the same operations on GCC/Clang vector
//     extensions (`__attribute__((vector_size(...)))`): one emulated AIE
//     vector op maps onto one or two host SIMD instructions. On compilers
//     without vector extensions it degrades to `scalar_backend`.
//
// Both backends are always compiled, so equivalence tests and ablation
// benches can compare them within one binary. The *default* backend used
// by the aie:: API (`aie::simd::backend`) is selected at configure time
// with the CGSIM_SIMD CMake option (native | scalar); `scalar` defines
// CGSIM_SIMD_FORCE_SCALAR.
//
// Backends are pure lane arithmetic: they never touch instrumentation.
// OpCounts recording stays in the api layer and is therefore byte-identical
// across backends by construction (asserted by tests/aie/test_simd_backend).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <type_traits>

namespace aie::simd {

#if defined(__GNUC__) || defined(__clang__)
#define CGSIM_SIMD_HAVE_NATIVE 1
#else
#define CGSIM_SIMD_HAVE_NATIVE 0
#endif

// Pins the scalar backend's loops to per-lane code on GCC so that a
// "scalar" measurement means scalar execution (see header comment). This
// does not change results, only codegen.
#if defined(__GNUC__) && !defined(__clang__)
#define CGSIM_SIMD_SCALAR_LOOP \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define CGSIM_SIMD_SCALAR_LOOP
#endif

namespace detail {

/// Signed integer type with the same width as a vector lane of sizeof
/// `Bytes` -- the element type vector comparisons and shuffle masks use.
template <unsigned Bytes>
struct int_of;
template <>
struct int_of<1> {
  using type = std::int8_t;
};
template <>
struct int_of<2> {
  using type = std::int16_t;
};
template <>
struct int_of<4> {
  using type = std::int32_t;
};
template <>
struct int_of<8> {
  using type = std::int64_t;
};
template <unsigned Bytes>
using int_of_t = typename int_of<Bytes>::type;

/// Saturates an int64 accumulator lane into T's range (AIE srs clamp).
template <class T>
[[nodiscard]] constexpr T saturate_i64(std::int64_t v) {
  constexpr auto lo = static_cast<std::int64_t>(std::numeric_limits<T>::min());
  constexpr auto hi = static_cast<std::int64_t>(std::numeric_limits<T>::max());
  return static_cast<T>(std::clamp(v, lo, hi));
}

/// Arithmetic shift right with round-half-up, as AIE srs does by default.
[[nodiscard]] constexpr std::int64_t shift_round(std::int64_t v, int shift) {
  if (shift <= 0) return v << -shift;
  const std::int64_t bias = std::int64_t{1} << (shift - 1);
  return (v + bias) >> shift;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// scalar_backend: canonical per-lane loops (the reference semantics).
// ---------------------------------------------------------------------------

struct scalar_backend {
  static constexpr const char* name = "scalar";
  static constexpr bool vectorized = false;

  // ---- element-wise arithmetic ----

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void add(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = static_cast<T>(a[i] + b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void sub(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = static_cast<T>(a[i] - b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void neg(T* r, const T* a) {
    for (unsigned i = 0; i < N; ++i) r[i] = static_cast<T>(-a[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void abs_(T* r, const T* a) {
    for (unsigned i = 0; i < N; ++i) {
      r[i] = a[i] < T{} ? static_cast<T>(-a[i]) : a[i];
    }
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void min_(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = std::min(a[i], b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void max_(T* r, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) r[i] = std::max(a[i], b[i]);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void clamp(T* r, const T* a, T lo, T hi) {
    for (unsigned i = 0; i < N; ++i) r[i] = std::clamp(a[i], lo, hi);
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void broadcast(T* r, T v) {
    for (unsigned i = 0; i < N; ++i) r[i] = v;
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void iota(T* r, T start, T step) {
    T v = start;
    for (unsigned i = 0; i < N; ++i, v = static_cast<T>(v + step)) r[i] = v;
  }

  // ---- multiply / multiply-accumulate into A-typed accumulator lanes ----

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mul(A* acc, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = static_cast<A>(a[i]) * static_cast<A>(b[i]);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac(A* acc, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] + static_cast<A>(a[i]) * static_cast<A>(b[i]);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void msc(A* acc, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] - static_cast<A>(a[i]) * static_cast<A>(b[i]);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mul_s(A* acc, const T* a, T s) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = static_cast<A>(a[i]) * static_cast<A>(s);
    }
  }

  template <class A, class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac_s(A* acc, const T* a, T s) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] + static_cast<A>(a[i]) * static_cast<A>(s);
    }
  }

  /// acc[l] += c * data[l] over `N` contiguous data lanes -- the inner step
  /// of the contiguous sliding-multiply fast path.
  template <class A, class D, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac_bcast(A* acc, const D* data, A c) {
    for (unsigned i = 0; i < N; ++i) acc[i] = acc[i] + c * static_cast<A>(data[i]);
  }

  /// acc[l] += c * (d1[l] + d2[l]) -- the pre-add step of the symmetric
  /// sliding multiply (both data windows contiguous).
  template <class A, class D, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void mac_bcast_pair(A* acc, const D* d1,
                                                    const D* d2, A c) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = acc[i] + c * (static_cast<A>(d1[i]) + static_cast<A>(d2[i]));
    }
  }

  // ---- accumulator <-> vector moves (srs / ups) ----

  /// Shift-round-saturate int64 accumulator lanes down to T.
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void srs(T* r, const std::int64_t* acc,
                                         int shift) {
    for (unsigned i = 0; i < N; ++i) {
      r[i] = detail::saturate_i64<T>(detail::shift_round(acc[i], shift));
    }
  }

  /// Upshift T lanes into int64 accumulator lanes.
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void ups(std::int64_t* acc, const T* v,
                                         int shift) {
    for (unsigned i = 0; i < N; ++i) {
      acc[i] = static_cast<std::int64_t>(v[i]) << shift;
    }
  }

  /// Lane-wise static_cast between accumulator and vector element types
  /// (the float accfloat<->vector moves and srs on float accumulators).
  template <class Dst, class Src, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void convert(Dst* r, const Src* a) {
    for (unsigned i = 0; i < N; ++i) r[i] = static_cast<Dst>(a[i]);
  }

  // ---- compares and select ----

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void lt(bool* m, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) m[i] = a[i] < b[i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void ge(bool* m, const T* a, const T* b) {
    for (unsigned i = 0; i < N; ++i) m[i] = a[i] >= b[i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void select(T* r, const T* a, const T* b,
                                            const bool* m) {
    for (unsigned i = 0; i < N; ++i) r[i] = m[i] ? a[i] : b[i];
  }

  // ---- lane permutations ----

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void shuffle_down(T* r, const T* a,
                                                  unsigned n) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[(i + n) % N];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void shuffle_up(T* r, const T* a, unsigned n) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[(i + N - (n % N)) % N];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void reverse(T* r, const T* a) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[N - 1 - i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void butterfly(T* r, const T* a,
                                               unsigned stride) {
    for (unsigned i = 0; i < N; ++i) r[i] = a[(i ^ stride) % N];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void permute(T* r, const T* a,
                                             const std::int32_t* idx) {
    for (unsigned i = 0; i < N; ++i) {
      r[i] = a[static_cast<unsigned>(idx[i]) % N];
    }
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void interleave_zip(T* lo, T* hi, const T* a,
                                                    const T* b) {
    for (unsigned i = 0; i < N / 2; ++i) {
      lo[2 * i] = a[i];
      lo[2 * i + 1] = b[i];
      hi[2 * i] = a[N / 2 + i];
      hi[2 * i + 1] = b[N / 2 + i];
    }
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void interleave_unzip(T* even, T* odd,
                                                      const T* a, const T* b) {
    for (unsigned i = 0; i < N / 2; ++i) {
      even[i] = a[2 * i];
      odd[i] = a[2 * i + 1];
      even[N / 2 + i] = b[2 * i];
      odd[N / 2 + i] = b[2 * i + 1];
    }
  }

  /// r (N/2 lanes) <- even-indexed lanes of a (N lanes).
  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void filter_even(T* r, const T* a) {
    for (unsigned i = 0; i < N / 2; ++i) r[i] = a[2 * i];
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static void filter_odd(T* r, const T* a) {
    for (unsigned i = 0; i < N / 2; ++i) r[i] = a[2 * i + 1];
  }

  // ---- reductions ----
  // Sequential on both backends: float reductions are order-sensitive, and
  // keeping one evaluation order is what makes the backends bit-exact.

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static T reduce_add(const T* a) {
    T s{};
    for (unsigned i = 0; i < N; ++i) s = static_cast<T>(s + a[i]);
    return s;
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static T reduce_min(const T* a) {
    T s = a[0];
    for (unsigned i = 1; i < N; ++i) s = std::min(s, a[i]);
    return s;
  }

  template <class T, unsigned N>
  CGSIM_SIMD_SCALAR_LOOP static T reduce_max(const T* a) {
    T s = a[0];
    for (unsigned i = 1; i < N; ++i) s = std::max(s, a[i]);
    return s;
  }
};

// ---------------------------------------------------------------------------
// native_backend: the same operations on compiler vector extensions.
// ---------------------------------------------------------------------------

#if CGSIM_SIMD_HAVE_NATIVE

struct native_backend {
  static constexpr const char* name = "native";
  static constexpr bool vectorized = true;

 private:
  template <class T, unsigned N>
  struct vt {
    typedef T type __attribute__((vector_size(sizeof(T) * N)));
  };
  /// Host vector register of N T lanes.
  template <class T, unsigned N>
  using v = typename vt<T, N>::type;
  /// Same-shape signed integer vector (comparison results, shuffle masks).
  template <class T, unsigned N>
  using m = typename vt<detail::int_of_t<sizeof(T)>, N>::type;

  template <class T, unsigned N>
  static v<T, N> ld(const T* p) {
    v<T, N> r;
    std::memcpy(&r, p, sizeof r);
    return r;
  }
  template <class T, unsigned N>
  static void st(T* p, const v<T, N>& r) {
    std::memcpy(p, &r, sizeof r);
  }

  /// {0, 1, ..., N-1} as a shuffle-mask vector for T-sized lanes.
  template <class T, unsigned N>
  static m<T, N> lane_iota() {
    m<T, N> r{};
    for (unsigned i = 0; i < N; ++i) {
      r[i] = static_cast<detail::int_of_t<sizeof(T)>>(i);
    }
    return r;  // constant-folded at -O2
  }

  template <class T, unsigned N>
  static v<T, N> splat(T x) {
    v<T, N> r;
    for (unsigned i = 0; i < N; ++i) r[i] = x;
    return r;
  }

  // `__builtin_shuffle` (runtime mask) is a GCC extension; Clang only has
  // the constant-index `__builtin_shufflevector`. Lane permutations fall
  // back to plain loops on non-GCC compilers.
#if defined(__GNUC__) && !defined(__clang__)
  static constexpr bool kHaveDynShuffle = true;
#else
  static constexpr bool kHaveDynShuffle = false;
#endif

 public:
  // ---- element-wise arithmetic ----

  template <class T, unsigned N>
  static void add(T* r, const T* a, const T* b) {
    st<T, N>(r, ld<T, N>(a) + ld<T, N>(b));
  }

  template <class T, unsigned N>
  static void sub(T* r, const T* a, const T* b) {
    st<T, N>(r, ld<T, N>(a) - ld<T, N>(b));
  }

  template <class T, unsigned N>
  static void neg(T* r, const T* a) {
    st<T, N>(r, -ld<T, N>(a));
  }

  template <class T, unsigned N>
  static void abs_(T* r, const T* a) {
    const auto va = ld<T, N>(a);
    // Mirrors the scalar `a < 0 ? -a : a` lane-wise (keeps -0.0f and NaN
    // behaviour identical to the scalar backend).
    st<T, N>(r, (va < splat<T, N>(T{})) ? -va : va);
  }

  template <class T, unsigned N>
  static void min_(T* r, const T* a, const T* b) {
    const auto va = ld<T, N>(a);
    const auto vb = ld<T, N>(b);
    st<T, N>(r, (vb < va) ? vb : va);  // == std::min per lane
  }

  template <class T, unsigned N>
  static void max_(T* r, const T* a, const T* b) {
    const auto va = ld<T, N>(a);
    const auto vb = ld<T, N>(b);
    st<T, N>(r, (va < vb) ? vb : va);  // == std::max per lane
  }

  template <class T, unsigned N>
  static void clamp(T* r, const T* a, T lo, T hi) {
    const auto va = ld<T, N>(a);
    const auto vlo = splat<T, N>(lo);
    const auto vhi = splat<T, N>(hi);
    // std::clamp(v, lo, hi) == v < lo ? lo : (hi < v ? hi : v)
    st<T, N>(r, (va < vlo) ? vlo : ((vhi < va) ? vhi : va));
  }

  template <class T, unsigned N>
  static void broadcast(T* r, T x) {
    st<T, N>(r, splat<T, N>(x));
  }

  template <class T, unsigned N>
  static void iota(T* r, T start, T step) {
    // Sequential adds, matching the scalar backend's float rounding.
    scalar_backend::iota<T, N>(r, start, step);
  }

  // ---- multiply / multiply-accumulate ----

 private:
  /// Loads N T lanes widened to the accumulator element type A.
  template <class A, class T, unsigned N>
  static v<A, N> ldw(const T* p) {
    if constexpr (std::is_same_v<A, T>) {
      return ld<T, N>(p);
    } else {
      return __builtin_convertvector(ld<T, N>(p), v<A, N>);
    }
  }

  /// True when T x T products provably fit in int32 lanes: then the
  /// int64-accumulator multiply can run as a packed 32-bit multiply (the
  /// host has no packed 64-bit multiply below AVX-512) and widen after.
  /// Exact either way, so bit-identical to the full-width form.
  template <class A, class T>
  static constexpr bool kNarrowMul = std::is_integral_v<A> &&
                                     std::is_integral_v<T> && sizeof(A) == 8 &&
                                     sizeof(T) <= 2;

  /// a[i] * b[i] widened into A lanes, via int32 lanes when exact.
  template <class A, class T, unsigned N>
  static v<A, N> wmul(const T* a, const T* b) {
    if constexpr (kNarrowMul<A, T>) {
      return __builtin_convertvector(
          ldw<std::int32_t, T, N>(a) * ldw<std::int32_t, T, N>(b), v<A, N>);
    } else {
      return ldw<A, T, N>(a) * ldw<A, T, N>(b);
    }
  }

 public:
  template <class A, class T, unsigned N>
  static void mul(A* acc, const T* a, const T* b) {
    st<A, N>(acc, wmul<A, T, N>(a, b));
  }

  template <class A, class T, unsigned N>
  static void mac(A* acc, const T* a, const T* b) {
    st<A, N>(acc, ld<A, N>(acc) + wmul<A, T, N>(a, b));
  }

  template <class A, class T, unsigned N>
  static void msc(A* acc, const T* a, const T* b) {
    st<A, N>(acc, ld<A, N>(acc) - wmul<A, T, N>(a, b));
  }

  template <class A, class T, unsigned N>
  static void mul_s(A* acc, const T* a, T s) {
    st<A, N>(acc, ldw<A, T, N>(a) * splat<A, N>(static_cast<A>(s)));
  }

  template <class A, class T, unsigned N>
  static void mac_s(A* acc, const T* a, T s) {
    st<A, N>(acc,
             ld<A, N>(acc) + ldw<A, T, N>(a) * splat<A, N>(static_cast<A>(s)));
  }

  template <class A, class D, unsigned N>
  static void mac_bcast(A* acc, const D* data, A c) {
    if constexpr (kNarrowMul<A, D>) {
      // Coefficients come from a <=16-bit vector, but check anyway: the
      // narrow path is exact only when c * data fits in int32 lanes.
      if (c >= -32768 && c <= 32767) {
        const auto p = splat<std::int32_t, N>(static_cast<std::int32_t>(c)) *
                       ldw<std::int32_t, D, N>(data);
        st<A, N>(acc, ld<A, N>(acc) + __builtin_convertvector(p, v<A, N>));
        return;
      }
    }
    st<A, N>(acc, ld<A, N>(acc) + splat<A, N>(c) * ldw<A, D, N>(data));
  }

  template <class A, class D, unsigned N>
  static void mac_bcast_pair(A* acc, const D* d1, const D* d2, A c) {
    if constexpr (kNarrowMul<A, D>) {
      if (c >= -32768 && c <= 32767) {
        // c*(d1+d2) == c*d1 + c*d2 exactly in int64; each product fits in
        // an int32 lane, so two packed 32-bit multiplies replace the
        // scalarized 64-bit one.
        const auto vc = splat<std::int32_t, N>(static_cast<std::int32_t>(c));
        const auto p1 = vc * ldw<std::int32_t, D, N>(d1);
        const auto p2 = vc * ldw<std::int32_t, D, N>(d2);
        st<A, N>(acc, ld<A, N>(acc) + __builtin_convertvector(p1, v<A, N>) +
                          __builtin_convertvector(p2, v<A, N>));
        return;
      }
    }
    st<A, N>(acc, ld<A, N>(acc) +
                      splat<A, N>(c) * (ldw<A, D, N>(d1) + ldw<A, D, N>(d2)));
  }

  // ---- accumulator <-> vector moves (srs / ups) ----

  template <class T, unsigned N>
  static void srs(T* r, const std::int64_t* acc, int shift) {
    auto va = ld<std::int64_t, N>(acc);
    if (shift <= 0) {
      va <<= -shift;
    } else {
      va = (va + splat<std::int64_t, N>(std::int64_t{1} << (shift - 1))) >>
           shift;
    }
    const auto vlo =
        splat<std::int64_t, N>(std::numeric_limits<T>::min());
    const auto vhi =
        splat<std::int64_t, N>(std::numeric_limits<T>::max());
    va = (va < vlo) ? vlo : ((vhi < va) ? vhi : va);
    st<T, N>(r, __builtin_convertvector(va, v<T, N>));
  }

  template <class T, unsigned N>
  static void ups(std::int64_t* acc, const T* p, int shift) {
    st<std::int64_t, N>(acc, ldw<std::int64_t, T, N>(p) << shift);
  }

  template <class Dst, class Src, unsigned N>
  static void convert(Dst* r, const Src* a) {
    if constexpr (std::is_same_v<Dst, Src>) {
      std::memcpy(r, a, N * sizeof(Dst));
    } else {
      st<Dst, N>(r, __builtin_convertvector(ld<Src, N>(a), v<Dst, N>));
    }
  }

  // ---- compares and select ----

 private:
  /// Stores a lane-wise comparison result (0 / -1 lanes) as bools.
  template <class T, unsigned N>
  static void st_mask(bool* mp, const m<T, N>& cmp) {
    static_assert(sizeof(bool) == 1);
    using b8 = v<std::int8_t, N>;
    const b8 narrow = __builtin_convertvector(cmp, b8) & splat<std::int8_t, N>(1);
    std::memcpy(mp, &narrow, N);
  }

  /// Loads a bool mask as a 0 / nonzero T-sized integer vector.
  template <class T, unsigned N>
  static m<T, N> ld_mask(const bool* mp) {
    static_assert(sizeof(bool) == 1);
    v<std::int8_t, N> bytes;
    std::memcpy(&bytes, mp, N);
    return __builtin_convertvector(bytes, m<T, N>);
  }

 public:
  template <class T, unsigned N>
  static void lt(bool* mp, const T* a, const T* b) {
    st_mask<T, N>(mp, ld<T, N>(a) < ld<T, N>(b));
  }

  template <class T, unsigned N>
  static void ge(bool* mp, const T* a, const T* b) {
    st_mask<T, N>(mp, ld<T, N>(a) >= ld<T, N>(b));
  }

  template <class T, unsigned N>
  static void select(T* r, const T* a, const T* b, const bool* mp) {
    st<T, N>(r, (ld_mask<T, N>(mp) != m<T, N>{}) ? ld<T, N>(a) : ld<T, N>(b));
  }

  // ---- lane permutations ----
  // GCC's __builtin_shuffle reads mask lanes modulo N, matching the scalar
  // backend's explicit `% N` for power-of-two N.

  template <class T, unsigned N>
  static void shuffle_down(T* r, const T* a, unsigned n) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      const auto idx = lane_iota<T, N>() +
                       splat<detail::int_of_t<sizeof(T)>, N>(
                           static_cast<detail::int_of_t<sizeof(T)>>(n % N));
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), idx));
#endif
    } else {
      scalar_backend::shuffle_down<T, N>(r, a, n);
    }
  }

  template <class T, unsigned N>
  static void shuffle_up(T* r, const T* a, unsigned n) {
    shuffle_down<T, N>(r, a, N - (n % N));
  }

  template <class T, unsigned N>
  static void reverse(T* r, const T* a) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      const auto idx =
          splat<detail::int_of_t<sizeof(T)>, N>(
              static_cast<detail::int_of_t<sizeof(T)>>(N - 1)) -
          lane_iota<T, N>();
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), idx));
#endif
    } else {
      scalar_backend::reverse<T, N>(r, a);
    }
  }

  template <class T, unsigned N>
  static void butterfly(T* r, const T* a, unsigned stride) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      const auto idx = lane_iota<T, N>() ^
                       splat<detail::int_of_t<sizeof(T)>, N>(
                           static_cast<detail::int_of_t<sizeof(T)>>(stride));
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), idx));
#endif
    } else {
      scalar_backend::butterfly<T, N>(r, a, stride);
    }
  }

  template <class T, unsigned N>
  static void permute(T* r, const T* a, const std::int32_t* idx) {
    if constexpr (kHaveDynShuffle && N <= 65536) {
#if defined(__GNUC__) && !defined(__clang__)
      // Truncating/extending int32 indices to lane-sized ones preserves the
      // value modulo N for power-of-two N <= 2^16 -- same lane selection as
      // the scalar `static_cast<unsigned>(idx) % N`.
      const auto mi = __builtin_convertvector(ld<std::int32_t, N>(idx),
                                              m<T, N>);
      st<T, N>(r, __builtin_shuffle(ld<T, N>(a), mi));
#endif
    } else {
      scalar_backend::permute<T, N>(r, a, idx);
    }
  }

  template <class T, unsigned N>
  static void interleave_zip(T* lo, T* hi, const T* a, const T* b) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      using I = detail::int_of_t<sizeof(T)>;
      m<T, N> zlo{}, zhi{};
      for (unsigned i = 0; i < N / 2; ++i) {
        zlo[2 * i] = static_cast<I>(i);
        zlo[2 * i + 1] = static_cast<I>(N + i);
        zhi[2 * i] = static_cast<I>(N / 2 + i);
        zhi[2 * i + 1] = static_cast<I>(N + N / 2 + i);
      }  // constant-folded
      const auto va = ld<T, N>(a);
      const auto vb = ld<T, N>(b);
      st<T, N>(lo, __builtin_shuffle(va, vb, zlo));
      st<T, N>(hi, __builtin_shuffle(va, vb, zhi));
#endif
    } else {
      scalar_backend::interleave_zip<T, N>(lo, hi, a, b);
    }
  }

  template <class T, unsigned N>
  static void interleave_unzip(T* even, T* odd, const T* a, const T* b) {
    if constexpr (kHaveDynShuffle) {
#if defined(__GNUC__) && !defined(__clang__)
      using I = detail::int_of_t<sizeof(T)>;
      m<T, N> ze{}, zo{};
      for (unsigned i = 0; i < N; ++i) {
        ze[i] = static_cast<I>(2 * i);
        zo[i] = static_cast<I>(2 * i + 1);
      }  // constant-folded
      const auto va = ld<T, N>(a);
      const auto vb = ld<T, N>(b);
      st<T, N>(even, __builtin_shuffle(va, vb, ze));
      st<T, N>(odd, __builtin_shuffle(va, vb, zo));
#endif
    } else {
      scalar_backend::interleave_unzip<T, N>(even, odd, a, b);
    }
  }

  template <class T, unsigned N>
  static void filter_even(T* r, const T* a) {
    scalar_backend::filter_even<T, N>(r, a);  // N/2-lane strided copy
  }

  template <class T, unsigned N>
  static void filter_odd(T* r, const T* a) {
    scalar_backend::filter_odd<T, N>(r, a);
  }

  // ---- reductions (sequential; see scalar_backend note) ----

  template <class T, unsigned N>
  static T reduce_add(const T* a) {
    return scalar_backend::reduce_add<T, N>(a);
  }
  template <class T, unsigned N>
  static T reduce_min(const T* a) {
    return scalar_backend::reduce_min<T, N>(a);
  }
  template <class T, unsigned N>
  static T reduce_max(const T* a) {
    return scalar_backend::reduce_max<T, N>(a);
  }
};

#else  // !CGSIM_SIMD_HAVE_NATIVE

using native_backend = scalar_backend;

#endif

// The default backend the aie:: API dispatches to; the CGSIM_SIMD CMake
// option (native | scalar) controls CGSIM_SIMD_FORCE_SCALAR.
#if defined(CGSIM_SIMD_FORCE_SCALAR)
using backend = scalar_backend;
#else
using backend = native_backend;
#endif

}  // namespace aie::simd

// aie -- operation instrumentation feeding the cycle-approximate simulator.
//
// The paper links AMD's proprietary x86 models of the AIE intrinsics into
// cgsim (Section 3.9) and measures cycle counts with AMD's aiesim. Neither
// is redistributable, so this emulation layer counts the operations a
// kernel executes (classified by VLIW issue slot) and the aiesim substitute
// converts the counts into cycles with a VLIW issue model (see
// src/aiesim/cost_model.hpp and DESIGN.md, substitution #2).
//
// Instrumentation is collected into whichever OpCounter is currently
// *active* (a thread-local pointer). When none is active -- the common case
// for functional simulation -- recording is a single predictable branch.
// The hot path pays one record() per emulated *operation*, never per lane:
// multi-issue ops pass their issue count as `n` instead of looping, and
// kernels with per-element scalar work batch it into one call (see
// src/apps/iir.hpp). Around a kernel activation the aiesim engine uses
// ScopedCounterBatch, which caches the destination counter and accumulates
// into a stack-local OpCounts, merging once per activation.
//
// Defining CGSIM_AIE_NO_INSTRUMENT (CMake option CGSIM_INSTRUMENT=OFF)
// compiles recording out entirely for pure functional runs; the
// cycle-approximate backend then sees all-zero counts, so only use it for
// builds that never ask for timing.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace aie {

/// Classification of emulated operations by the AIE VLIW issue slot they
/// occupy (UG1079: one vector op, two loads, one store and scalar/move ops
/// can issue per cycle).
enum class OpClass : std::uint8_t {
  vector_mac,   ///< vector multiply-accumulate (the fixed/float MAC path)
  vector_alu,   ///< vector add/sub/min/max/compare/select
  vector_shift, ///< shift-round-saturate, upshift
  shuffle,      ///< lane permutes, extracts, interleaves
  load,         ///< 128/256-bit vector load
  store,        ///< vector store
  scalar,       ///< scalar ALU / address computation
};

constexpr std::size_t kNumOpClasses = 7;

[[nodiscard]] constexpr std::string_view op_class_name(OpClass c) {
  switch (c) {
    case OpClass::vector_mac: return "vector_mac";
    case OpClass::vector_alu: return "vector_alu";
    case OpClass::vector_shift: return "vector_shift";
    case OpClass::shuffle: return "shuffle";
    case OpClass::load: return "load";
    case OpClass::store: return "store";
    case OpClass::scalar: return "scalar";
  }
  return "?";
}

/// Accumulated operation counts for one kernel activation window.
struct OpCounts {
  std::array<std::uint64_t, kNumOpClasses> ops{};

  [[nodiscard]] std::uint64_t operator[](OpClass c) const {
    return ops[static_cast<std::size_t>(c)];
  }
  void add(OpClass c, std::uint64_t n) {
    ops[static_cast<std::size_t>(c)] += n;
  }
  OpCounts& operator+=(const OpCounts& o) {
    for (std::size_t i = 0; i < kNumOpClasses; ++i) ops[i] += o.ops[i];
    return *this;
  }
  [[nodiscard]] bool operator==(const OpCounts&) const = default;
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto v : ops) t += v;
    return t;
  }
};

/// Collects instrumentation while attached; the aiesim engine attaches one
/// counter per simulated tile around every kernel resumption.
class OpCounter {
 public:
  OpCounts counts{};

  void reset() { counts = OpCounts{}; }
};

namespace detail {
inline thread_local OpCounter* g_active_counter = nullptr;
}

/// RAII activation of an OpCounter on the current thread.
class ScopedCounter {
 public:
  explicit ScopedCounter(OpCounter* c) : prev_(detail::g_active_counter) {
    detail::g_active_counter = c;
  }
  ~ScopedCounter() { detail::g_active_counter = prev_; }
  ScopedCounter(const ScopedCounter&) = delete;
  ScopedCounter& operator=(const ScopedCounter&) = delete;

 private:
  OpCounter* prev_;
};

[[nodiscard]] inline OpCounter* active_counter() {
  return detail::g_active_counter;
}

inline void set_active_counter(OpCounter* c) {
  detail::g_active_counter = c;
}

/// Records `n` operations of class `c` into the active counter, if any.
#if defined(CGSIM_AIE_NO_INSTRUMENT)
inline void record(OpClass, std::uint64_t = 1) {}
#else
inline void record(OpClass c, std::uint64_t n = 1) {
  if (OpCounter* cnt = detail::g_active_counter; cnt != nullptr) {
    cnt->counts.add(c, n);
  }
}
#endif

/// Batched activation for one kernel activation window: caches the
/// destination counter once, redirects all record() calls to a stack-local
/// (cache-hot) OpCounts, and merges into the destination with a single
/// add when the activation ends. Final counts are byte-identical to
/// attaching the destination directly with ScopedCounter.
class ScopedCounterBatch {
 public:
  // A null destination deactivates counting, matching ScopedCounter{nullptr}.
  explicit ScopedCounterBatch(OpCounter* dest)
      : dest_(dest), scoped_(dest != nullptr ? &local_ : nullptr) {}
  ~ScopedCounterBatch() {
    if (dest_ != nullptr) dest_->counts += local_.counts;
  }
  ScopedCounterBatch(const ScopedCounterBatch&) = delete;
  ScopedCounterBatch& operator=(const ScopedCounterBatch&) = delete;

 private:
  OpCounter local_{};
  OpCounter* dest_;
  ScopedCounter scoped_;
};

}  // namespace aie

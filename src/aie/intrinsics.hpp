// aie -- AIE1 intrinsic-style compatibility layer.
//
// AMD's Vitis-Tutorials kernels predate the aie:: API in places and call
// raw intrinsics (`fpmac`, `mac16`, `upd_w`, `ext_w`, ...). The paper's
// ported examples "rely exclusively on standard C++, AIE intrinsics, and
// the AIE vector API" (Section 5.1); this header provides the intrinsic
// spellings on top of the functional emulation so such kernels port
// verbatim. Only the widely-used subset is covered; everything forwards to
// src/aie/api.hpp and records the same instrumentation.
#pragma once

#include "accum.hpp"
#include "api.hpp"
#include "vector.hpp"

namespace aie::intrinsics {

// ---- floating-point MAC family (v8float accumulators) ----

/// acc = acc + a * b (lane-wise), AIE1 `fpmac`.
template <class B = simd::backend>
[[nodiscard]] inline accfloat<8> fpmac(const accfloat<8>& acc,
                                       const vector<float, 8>& a,
                                       const vector<float, 8>& b) {
  return mac<B>(acc, a, b);
}

/// acc = a * b, AIE1 `fpmul`.
template <class B = simd::backend>
[[nodiscard]] inline accfloat<8> fpmul(const vector<float, 8>& a,
                                       const vector<float, 8>& b) {
  return mul<B>(a, b);
}

/// acc = acc - a * b, AIE1 `fpmsc`.
template <class B = simd::backend>
[[nodiscard]] inline accfloat<8> fpmsc(const accfloat<8>& acc,
                                       const vector<float, 8>& a,
                                       const vector<float, 8>& b) {
  return msc<B>(acc, a, b);
}

// ---- int16 MAC family (acc48 accumulators) ----

/// 16-lane int16 multiply into acc48, AIE1 `mul16` (unit-stride form).
template <class B = simd::backend>
[[nodiscard]] inline acc48<16> mul16(const vector<std::int16_t, 16>& a,
                                     const vector<std::int16_t, 16>& b) {
  return mul<B>(a, b);
}

/// 16-lane int16 MAC into acc48, AIE1 `mac16` (unit-stride form).
template <class B = simd::backend>
[[nodiscard]] inline acc48<16> mac16(const acc48<16>& acc,
                                     const vector<std::int16_t, 16>& a,
                                     const vector<std::int16_t, 16>& b) {
  return mac<B>(acc, a, b);
}

// ---- vector register manipulation ----

/// Updates 256-bit half `idx` of a 512-bit register, AIE1 `upd_w`.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> upd_w(vector<T, N> big, unsigned idx,
                                        const vector<T, N / 2>& half) {
  big.insert(idx, half);
  return big;
}

/// Extracts 256-bit half `idx` of a 512-bit register, AIE1 `ext_w`.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N / 2> ext_w(const vector<T, N>& big,
                                            unsigned idx) {
  return big.template extract<2>(idx);
}

/// Single-lane update, AIE1 `upd_elem`.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> upd_elem(vector<T, N> v, unsigned lane,
                                           T value) {
  record(OpClass::scalar);
  v.set(lane, value);
  return v;
}

/// Single-lane extract, AIE1 `ext_elem`.
template <class T, unsigned N>
[[nodiscard]] inline T ext_elem(const vector<T, N>& v, unsigned lane) {
  record(OpClass::scalar);
  return v.get(lane);
}

/// Concatenates two registers, AIE1 `concat`.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, 2 * N> concat(const vector<T, N>& lo,
                                             const vector<T, N>& hi) {
  record(OpClass::shuffle);
  vector<T, 2 * N> r;
  r.insert(0, lo);
  r.insert(1, hi);
  return r;
}

/// Byte-wise register shift by whole lanes, AIE1 `shft_elem` style.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> shift_elements(const vector<T, N>& v,
                                                 int lanes) {
  record(OpClass::shuffle);
  vector<T, N> r;
  for (unsigned i = 0; i < N; ++i) {
    const int src = static_cast<int>(i) - lanes;
    r.set(i, src >= 0 && src < static_cast<int>(N)
                 ? v.get(static_cast<unsigned>(src))
                 : T{});
  }
  return r;
}

}  // namespace aie::intrinsics

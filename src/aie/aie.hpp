// aie -- umbrella header for the AIE intrinsics/API emulation layer.
//
// Stands in for AMD's proprietary x86 emulation of the AIE vector API
// (paper Section 3.9): cgsim kernels include this header instead of the
// aietools copy the paper requires users to supply.
#pragma once

#include <utility>  // IWYU pragma: keep

#include "accum.hpp"       // IWYU pragma: export
#include "api.hpp"         // IWYU pragma: export
#include "cycle_model.hpp" // IWYU pragma: export
#include "intrinsics.hpp"  // IWYU pragma: export
#include "vector.hpp"      // IWYU pragma: export

// aie -- functional emulation of the AIE vector register types.
//
// Substitutes AMD's x86 emulation library (paper Section 3.9): kernels
// written against the AIE vector API compile and execute on the host with
// identical arithmetic results. Each operation records its VLIW issue-slot
// class so the cycle-approximate simulator can reconstruct timing.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "cycle_model.hpp"
#include "simd.hpp"

namespace aie {

/// Storage-only brain-float16 lane type (the AIE-ML ML datatype). A bf16
/// pattern is the high half of an IEEE f32 pattern; arithmetic happens in
/// float vectors/accumulators after an explicit widen (aie::to_float /
/// aie::to_bf16), mirroring how AIE-ML kernels stage bf16 data through
/// fp32 compute.
struct bf16 {
  std::uint16_t bits = 0;
  constexpr bool operator==(const bf16&) const = default;
};

/// Scalar bf16 -> f32 widen (lane-level building block; the vector form
/// aie::to_float records instrumentation, this does not).
[[nodiscard]] constexpr float bf16_to_float(bf16 v) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(v.bits) << 16);
}

/// Scalar f32 -> bf16 narrow, round-to-nearest-even, NaNs quieted -- the
/// same formula as the backends' vector op (simd.hpp f32_to_bf16).
[[nodiscard]] constexpr bf16 float_to_bf16(float f) {
  const auto u = std::bit_cast<std::uint32_t>(f);
  const bool nan = (u & 0x7fffffffu) > 0x7f800000u;
  const std::uint32_t rne = (u + 0x7fffu + ((u >> 16) & 1u)) >> 16;
  const std::uint32_t quiet = (u >> 16) | 0x0040u;
  return bf16{static_cast<std::uint16_t>(nan ? quiet : rne)};
}

/// A fixed-width SIMD register of N lanes of element type T.
/// Mirrors aie::vector<T, Elems> from the AIE API (UG1079).
///
/// Lane storage is always value-initialized: a default-constructed vector
/// is all-zero, and an initializer list shorter than N leaves the trailing
/// lanes zero. Functional results therefore never depend on stack garbage
/// (and are identical across the SIMD and scalar execution backends).
template <class T, unsigned N>
class vector {
  static_assert(N > 0 && (N & (N - 1)) == 0, "lane count must be a power of two");

 public:
  using value_type = T;
  static constexpr unsigned size_v = N;

  constexpr vector() = default;
  constexpr vector(std::initializer_list<T> init) {
    unsigned i = 0;
    for (T v : init) {
      if (i == N) break;
      lanes_[i++] = v;
    }
  }

  [[nodiscard]] static constexpr unsigned size() { return N; }

  [[nodiscard]] constexpr T get(unsigned i) const { return lanes_[i]; }
  constexpr void set(unsigned i, T v) { lanes_[i] = v; }
  [[nodiscard]] constexpr T operator[](unsigned i) const { return lanes_[i]; }

  [[nodiscard]] constexpr const std::array<T, N>& data() const {
    return lanes_;
  }
  [[nodiscard]] constexpr std::array<T, N>& data() { return lanes_; }

  /// Extracts sub-vector `part` of `N / Parts` lanes (AIE `extract`).
  /// A contiguous lane slice: one block copy regardless of backend.
  template <unsigned Parts>
  [[nodiscard]] vector<T, N / Parts> extract(unsigned part) const {
    static_assert(Parts > 0 && N % Parts == 0);
    record(OpClass::shuffle);
    vector<T, N / Parts> r;
    std::memcpy(r.data().data(), lanes_.data() + part * (N / Parts),
                (N / Parts) * sizeof(T));
    return r;
  }

  /// Inserts `sub` as part `part` (AIE `insert`).
  template <unsigned M>
  vector& insert(unsigned part, const vector<T, M>& sub) {
    static_assert(M <= N && N % M == 0);
    record(OpClass::shuffle);
    std::memcpy(lanes_.data() + part * M, sub.data().data(), M * sizeof(T));
    return *this;
  }

  /// Widens into the lower half of a 2N vector (upper lanes zero).
  [[nodiscard]] vector<T, 2 * N> grow() const {
    record(OpClass::shuffle);
    vector<T, 2 * N> r;  // value-initialized: upper lanes stay zero
    std::memcpy(r.data().data(), lanes_.data(), N * sizeof(T));
    return r;
  }

  [[nodiscard]] constexpr bool operator==(const vector&) const = default;

 private:
  std::array<T, N> lanes_{};
};

// Common AIE register shorthands.
using v4int32 = vector<std::int32_t, 4>;
using v8int32 = vector<std::int32_t, 8>;
using v16int32 = vector<std::int32_t, 16>;
using v8int16 = vector<std::int16_t, 8>;
using v16int16 = vector<std::int16_t, 16>;
using v32int16 = vector<std::int16_t, 32>;
using v16int8 = vector<std::int8_t, 16>;
using v32int8 = vector<std::int8_t, 32>;
using v4float = vector<float, 4>;
using v8float = vector<float, 8>;
using v16float = vector<float, 16>;
using v16bfloat16 = vector<bf16, 16>;
using v64int8 = vector<std::int8_t, 64>;

/// Loads N lanes from (aligned) memory -- AIE `aie::load_v<N>(ptr)`.
template <unsigned N, class T>
[[nodiscard]] inline vector<T, N> load_v(const T* ptr) {
  record(OpClass::load, (N * sizeof(T) + 31) / 32);  // 256-bit loads
  vector<T, N> r;
  std::memcpy(r.data().data(), ptr, N * sizeof(T));
  return r;
}

/// Stores all lanes to memory -- AIE `aie::store_v(ptr, v)`.
template <class T, unsigned N>
inline void store_v(T* ptr, const vector<T, N>& v) {
  record(OpClass::store, (N * sizeof(T) + 31) / 32);
  std::memcpy(ptr, v.data().data(), N * sizeof(T));
}

/// All-zero vector -- AIE `aie::zeros<T, N>()`.
template <class T, unsigned N>
[[nodiscard]] inline vector<T, N> zeros() {
  record(OpClass::vector_alu);
  return vector<T, N>{};
}

/// Splats `v` across all lanes -- AIE `aie::broadcast<T, N>(v)`.
template <class T, unsigned N, class B = simd::backend>
[[nodiscard]] inline vector<T, N> broadcast(T v) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template broadcast<T, N>(r.data().data(), v);
  return r;
}

/// Lane iota {0, 1, ...} scaled by `step` -- AIE `aie::iota`.
template <class T, unsigned N, class B = simd::backend>
[[nodiscard]] inline vector<T, N> iota(T start = T{0}, T step = T{1}) {
  record(OpClass::vector_alu);
  vector<T, N> r;
  B::template iota<T, N>(r.data().data(), start, step);
  return r;
}

/// Per-lane boolean mask -- mirrors aie::mask<N>.
template <unsigned N>
class mask {
 public:
  [[nodiscard]] constexpr bool get(unsigned i) const { return bits_[i]; }
  constexpr void set(unsigned i, bool v) { bits_[i] = v; }

  [[nodiscard]] constexpr const std::array<bool, N>& data() const {
    return bits_;
  }
  [[nodiscard]] constexpr std::array<bool, N>& data() { return bits_; }
  [[nodiscard]] constexpr unsigned count() const {
    unsigned c = 0;
    for (bool b : bits_) c += b ? 1u : 0u;
    return c;
  }
  [[nodiscard]] constexpr bool operator==(const mask&) const = default;

 private:
  std::array<bool, N> bits_{};
};

}  // namespace aie

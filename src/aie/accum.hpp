// aie -- functional emulation of the AIE accumulator register types.
//
// AIE fixed-point MACs accumulate into wide (48/80-bit) registers that are
// moved back to vectors with an explicit shift-round-saturate (srs) and
// widened from vectors with an upshift (ups). Emulated here on int64 /
// float lanes with the same rounding and saturation semantics the AIE uses
// by default (round-to-nearest-even is configurable on hardware; we
// implement round-half-up, aiecompiler's default for srs).
//
// The lane arithmetic executes on the selected SIMD backend (simd.hpp);
// every operation optionally takes an explicit backend template parameter
// for the equivalence tests and ablation benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "cycle_model.hpp"
#include "simd.hpp"
#include "vector.hpp"

namespace aie {

struct acc48_tag {};   ///< 48-bit fixed-point accumulator lanes
struct acc80_tag {};   ///< 80-bit fixed-point accumulator lanes
struct acc32_tag {};   ///< 32-bit fixed-point accumulator lanes (AIE-ML MACs)
struct accfloat_tag {};///< single-precision float accumulator lanes

namespace detail {
template <class Tag>
struct acc_storage {
  using type = std::int64_t;
};
template <>
struct acc_storage<acc32_tag> {
  using type = std::int32_t;
};
template <>
struct acc_storage<accfloat_tag> {
  using type = float;
};
}  // namespace detail

/// An accumulator register of N lanes; Tag selects the lane format.
/// Mirrors aie::accum<acc48, Elems> from the AIE API. Lane storage is
/// always value-initialized (see aie::vector).
template <class Tag, unsigned N>
class accum {
 public:
  using storage = typename detail::acc_storage<Tag>::type;
  static constexpr unsigned size_v = N;

  constexpr accum() = default;

  [[nodiscard]] static constexpr unsigned size() { return N; }
  [[nodiscard]] constexpr storage get(unsigned i) const { return lanes_[i]; }
  constexpr void set(unsigned i, storage v) { lanes_[i] = v; }

  [[nodiscard]] constexpr const std::array<storage, N>& data() const {
    return lanes_;
  }
  [[nodiscard]] constexpr std::array<storage, N>& data() { return lanes_; }

  [[nodiscard]] constexpr bool operator==(const accum&) const = default;

 private:
  std::array<storage, N> lanes_{};
};

template <unsigned N>
using acc48 = accum<acc48_tag, N>;
template <unsigned N>
using acc80 = accum<acc80_tag, N>;
template <unsigned N>
using acc32 = accum<acc32_tag, N>;
template <unsigned N>
using accfloat = accum<accfloat_tag, N>;

namespace detail {

// Canonical srs helpers, shared with the SIMD backends (simd.hpp).
using simd::detail::saturate_i64;
using simd::detail::shift_round;

}  // namespace detail

/// Shift-round-saturate an accumulator back to a vector (AIE `srs`).
template <class T, class B = simd::backend, class Tag, unsigned N>
[[nodiscard]] inline vector<T, N> srs(const accum<Tag, N>& a, int shift) {
  record(OpClass::vector_shift);
  vector<T, N> r;
  if constexpr (std::is_same_v<Tag, accfloat_tag>) {
    B::template convert<T, float, N>(r.data().data(), a.data().data());
    (void)shift;
  } else if constexpr (std::is_same_v<Tag, acc32_tag>) {
    B::template srs32<T, N>(r.data().data(), a.data().data(), shift);
  } else {
    B::template srs<T, N>(r.data().data(), a.data().data(), shift);
  }
  return r;
}

/// Upshift a vector into an accumulator (AIE `ups`).
template <class Tag = acc48_tag, class B = simd::backend, class T, unsigned N>
[[nodiscard]] inline accum<Tag, N> ups(const vector<T, N>& v, int shift) {
  record(OpClass::vector_shift);
  accum<Tag, N> a;
  if constexpr (std::is_same_v<Tag, accfloat_tag>) {
    B::template convert<float, T, N>(a.data().data(), v.data().data());
    (void)shift;
  } else if constexpr (std::is_same_v<Tag, acc32_tag>) {
    B::template ups32<T, N>(a.data().data(), v.data().data(), shift);
  } else {
    B::template ups<T, N>(a.data().data(), v.data().data(), shift);
  }
  return a;
}

/// Converts a float vector to a float accumulator (identity lanes).
template <class B = simd::backend, unsigned N>
[[nodiscard]] inline accfloat<N> to_accum(const vector<float, N>& v) {
  record(OpClass::vector_alu);
  accfloat<N> a;
  B::template convert<float, float, N>(a.data().data(), v.data().data());
  return a;
}

/// Extracts the lanes of a float accumulator as a vector.
template <class B = simd::backend, unsigned N>
[[nodiscard]] inline vector<float, N> to_vector(const accfloat<N>& a) {
  record(OpClass::vector_alu);
  vector<float, N> v;
  B::template convert<float, float, N>(v.data().data(), a.data().data());
  return v;
}

}  // namespace aie

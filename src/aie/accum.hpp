// aie -- functional emulation of the AIE accumulator register types.
//
// AIE fixed-point MACs accumulate into wide (48/80-bit) registers that are
// moved back to vectors with an explicit shift-round-saturate (srs) and
// widened from vectors with an upshift (ups). Emulated here on int64 /
// float lanes with the same rounding and saturation semantics the AIE uses
// by default (round-to-nearest-even is configurable on hardware; we
// implement round-half-up, aiecompiler's default for srs).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "cycle_model.hpp"
#include "vector.hpp"

namespace aie {

struct acc48_tag {};   ///< 48-bit fixed-point accumulator lanes
struct acc80_tag {};   ///< 80-bit fixed-point accumulator lanes
struct accfloat_tag {};///< single-precision float accumulator lanes

namespace detail {
template <class Tag>
struct acc_storage {
  using type = std::int64_t;
};
template <>
struct acc_storage<accfloat_tag> {
  using type = float;
};
}  // namespace detail

/// An accumulator register of N lanes; Tag selects the lane format.
/// Mirrors aie::accum<acc48, Elems> from the AIE API.
template <class Tag, unsigned N>
class accum {
 public:
  using storage = typename detail::acc_storage<Tag>::type;
  static constexpr unsigned size_v = N;

  constexpr accum() = default;

  [[nodiscard]] static constexpr unsigned size() { return N; }
  [[nodiscard]] constexpr storage get(unsigned i) const { return lanes_[i]; }
  constexpr void set(unsigned i, storage v) { lanes_[i] = v; }

  [[nodiscard]] constexpr bool operator==(const accum&) const = default;

 private:
  std::array<storage, N> lanes_{};
};

template <unsigned N>
using acc48 = accum<acc48_tag, N>;
template <unsigned N>
using acc80 = accum<acc80_tag, N>;
template <unsigned N>
using accfloat = accum<accfloat_tag, N>;

namespace detail {

template <class T>
[[nodiscard]] constexpr T saturate_i64(std::int64_t v) {
  constexpr auto lo = static_cast<std::int64_t>(std::numeric_limits<T>::min());
  constexpr auto hi = static_cast<std::int64_t>(std::numeric_limits<T>::max());
  return static_cast<T>(std::clamp(v, lo, hi));
}

/// Arithmetic shift right with round-half-up, as AIE srs does by default.
[[nodiscard]] constexpr std::int64_t shift_round(std::int64_t v, int shift) {
  if (shift <= 0) return v << -shift;
  const std::int64_t bias = std::int64_t{1} << (shift - 1);
  return (v + bias) >> shift;
}

}  // namespace detail

/// Shift-round-saturate an accumulator back to a vector (AIE `srs`).
template <class T, class Tag, unsigned N>
[[nodiscard]] inline vector<T, N> srs(const accum<Tag, N>& a, int shift) {
  record(OpClass::vector_shift);
  vector<T, N> r;
  if constexpr (std::is_same_v<Tag, accfloat_tag>) {
    for (unsigned i = 0; i < N; ++i) r.set(i, static_cast<T>(a.get(i)));
    (void)shift;
  } else {
    for (unsigned i = 0; i < N; ++i) {
      r.set(i, detail::saturate_i64<T>(detail::shift_round(a.get(i), shift)));
    }
  }
  return r;
}

/// Upshift a vector into an accumulator (AIE `ups`).
template <class Tag = acc48_tag, class T, unsigned N>
[[nodiscard]] inline accum<Tag, N> ups(const vector<T, N>& v, int shift) {
  record(OpClass::vector_shift);
  accum<Tag, N> a;
  if constexpr (std::is_same_v<Tag, accfloat_tag>) {
    for (unsigned i = 0; i < N; ++i) {
      a.set(i, static_cast<float>(v.get(i)));
    }
    (void)shift;
  } else {
    for (unsigned i = 0; i < N; ++i) {
      a.set(i, static_cast<std::int64_t>(v.get(i)) << shift);
    }
  }
  return a;
}

/// Converts a float vector to a float accumulator (identity lanes).
template <unsigned N>
[[nodiscard]] inline accfloat<N> to_accum(const vector<float, N>& v) {
  record(OpClass::vector_alu);
  accfloat<N> a;
  for (unsigned i = 0; i < N; ++i) a.set(i, v.get(i));
  return a;
}

/// Extracts the lanes of a float accumulator as a vector.
template <unsigned N>
[[nodiscard]] inline vector<float, N> to_vector(const accfloat<N>& a) {
  record(OpClass::vector_alu);
  vector<float, N> v;
  for (unsigned i = 0; i < N; ++i) v.set(i, a.get(i));
  return v;
}

}  // namespace aie

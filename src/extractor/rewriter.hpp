// extractor -- standard kernel source transformations (paper Section 4.4).
//
// Realm-independent rewrites shared by all backends:
//   * co_await removal -- turns the coroutine-based asynchronous stream
//     operations into synchronous blocking calls, removing the dependency
//     on cgsim's cooperative multitasking framework;
//   * declaration/definition splitting -- each kernel is processed twice,
//     once for a forward declaration (call signature only) and once for
//     the full definition;
//   * port-type respelling -- realms provide their own implementations of
//     KernelReadPort / KernelWritePort (Section 4.4 last paragraph), so the
//     extracted source drops the cgsim namespace qualification and binds
//     against the realm's header instead.
#pragma once

#include <string>
#include <string_view>

#include "scanner.hpp"
#include "source_file.hpp"

namespace cgx {

/// Removes every `co_await` token (plus one following space) from `code`.
[[nodiscard]] std::string strip_co_await(std::string_view code);

/// Drops `cgsim::` / `::cgsim::` qualifications so the extracted kernel
/// binds against the realm-provided port implementations.
[[nodiscard]] std::string strip_cgsim_namespace(std::string_view code);

/// Normalizes runs of whitespace introduced by the rewrites.
[[nodiscard]] std::string collapse_blank_runs(std::string_view code);

/// Replaces every standalone identifier token `from` with `to` (template
/// parameter substitution for COMPUTE_KERNEL_TEMPLATE instantiations).
[[nodiscard]] std::string substitute_identifier(std::string_view code,
                                                std::string_view from,
                                                std::string_view to);

/// The transformed parameter list of a kernel (settings template arguments
/// preserved; cgsim qualification removed).
[[nodiscard]] std::string kernel_params(const SourceFile& file,
                                        const KernelSite& site);

/// Forward declaration: `void <name>(<params>);` -- template kernels get a
/// `template <class TP>` head.
[[nodiscard]] std::string kernel_declaration(const SourceFile& file,
                                             const KernelSite& site);

/// Full definition: `void <name>(<params>) { <body-without-co_await> }`
[[nodiscard]] std::string kernel_definition(const SourceFile& file,
                                            const KernelSite& site);

}  // namespace cgx

#include "scanner.hpp"

#include <algorithm>
#include <cctype>
#include <set>

namespace cgx {

namespace {

/// Keywords and common library identifiers that never name a co-extractable
/// declaration; filtering them keeps `referenced` lists small.
const std::set<std::string, std::less<>>& noise_identifiers() {
  static const std::set<std::string, std::less<>> kNoise{
      "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
      "class", "co_await", "co_return", "co_yield", "const", "consteval",
      "constexpr", "constinit", "continue", "decltype", "default", "delete",
      "do", "double", "else", "enum", "explicit", "extern", "false", "float",
      "for", "friend", "goto", "if", "inline", "int", "long", "mutable",
      "namespace", "new", "noexcept", "nullptr", "operator", "private",
      "protected", "public", "register", "requires", "return", "short",
      "signed", "sizeof", "static", "static_assert", "struct", "switch",
      "template", "this", "throw", "true", "try", "typedef", "typename",
      "union", "unsigned", "using", "virtual", "void", "volatile",
      "wchar_t", "while", "std", "size_t", "int8_t", "int16_t", "int32_t",
      "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
  };
  return kNoise;
}

[[nodiscard]] bool is_code(const Token& t) {
  return t.kind != TokKind::comment && t.kind != TokKind::preprocessor &&
         t.kind != TokKind::end_of_file;
}

class Scanner {
 public:
  Scanner(const SourceFile& file, const std::vector<Token>& toks)
      : file_(file), toks_(toks) {}

  ScanResult run() {
    find_includes();
    find_kernels();
    find_decls();
    return std::move(result_);
  }

 private:
  // --- includes ---
  void find_includes() {
    for (const Token& t : toks_) {
      if (t.kind != TokKind::preprocessor) continue;
      std::string_view s = t.text;
      std::size_t p = s.find_first_not_of("# \t");
      if (p == std::string_view::npos || !s.substr(p).starts_with("include")) {
        continue;
      }
      p = s.find_first_of("<\"", p);
      if (p == std::string_view::npos) continue;
      const char close = s[p] == '<' ? '>' : '"';
      const std::size_t q = s.find(close, p + 1);
      if (q == std::string_view::npos) continue;
      result_.includes.push_back(IncludeDirective{
          std::string{s.substr(p + 1, q - p - 1)}, s[p] == '<', t.range()});
    }
  }

  // --- kernel macro expansion ranges ---
  void find_kernels() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const bool is_template = toks_[i].is_ident("COMPUTE_KERNEL_TEMPLATE");
      if (!toks_[i].is_ident("COMPUTE_KERNEL") && !is_template) continue;
      KernelSite site{};
      site.is_template = is_template;
      const std::size_t start = i;
      std::size_t j = next_code(i + 1);
      if (j >= toks_.size() || !toks_[j].is("(")) continue;
      // Macro arguments: realm , name , params... )
      const std::size_t open = j;
      const std::size_t close = match_paren(open);
      if (close == npos) continue;
      std::vector<std::size_t> commas;  // depth-1 commas
      int depth = 0;
      for (std::size_t k = open; k <= close; ++k) {
        if (!is_code(toks_[k])) continue;
        if (toks_[k].is("(") || toks_[k].is("[") || toks_[k].is("{")) ++depth;
        if (toks_[k].is(")") || toks_[k].is("]") || toks_[k].is("}")) --depth;
        if (depth == 1 && toks_[k].is(",")) commas.push_back(k);
      }
      // realm , name [, type-param] , params...
      const std::size_t needed = is_template ? 3u : 2u;
      if (commas.size() < needed) continue;
      site.realm = slice_text(open + 1, commas[0]);
      site.name = slice_text(commas[0] + 1, commas[1]);
      if (is_template) {
        site.template_param = slice_text(commas[1] + 1, commas[2]);
      }
      const std::size_t params_from = commas[needed - 1];
      site.params_range =
          SourceRange{toks_[next_code(params_from + 1)].offset,
                      toks_[close].offset};
      // Body block.
      std::size_t b = next_code(close + 1);
      if (b >= toks_.size() || !toks_[b].is("{")) continue;
      const std::size_t bend = match_brace(b);
      if (bend == npos) continue;
      site.body_range = SourceRange{toks_[b].offset,
                                    toks_[bend].offset + 1};
      site.full_range = SourceRange{toks_[start].offset,
                                    toks_[bend].offset + 1};
      result_.kernels.push_back(std::move(site));
      i = bend;
    }
  }

  // --- declaration units (recursing into namespace blocks) ---
  void find_decls() {
    scan_block(0, toks_.size(), "");
    assign_kernel_namespaces();
  }

  void scan_block(std::size_t i, std::size_t end, const std::string& ns) {
    while (i < end && toks_[i].kind != TokKind::end_of_file) {
      const Token& t = toks_[i];
      if (!is_code(t)) {
        ++i;
        continue;
      }
      if (in_kernel(t.offset)) {  // kernels are handled separately
        i = skip_past_kernel(i);
        continue;
      }
      if (t.is_ident("CGSIM_EXTRACTABLE")) {  // registration marker
        i = skip_call_statement(i);
        continue;
      }
      if (t.is_ident("namespace")) {
        // `namespace a::b { ... }` -> recurse; `namespace x = y;` -> unit.
        std::string name;
        std::size_t j = next_code(i + 1);
        while (j < end && (toks_[j].kind == TokKind::identifier ||
                           toks_[j].is("::"))) {
          name += toks_[j].text;
          j = next_code(j + 1);
        }
        if (j < end && toks_[j].is("{")) {
          const std::size_t close = match_brace(j);
          if (close == npos) break;
          const std::string inner_ns =
              name.empty() ? ns : ns + name + "::";
          namespace_ranges_.push_back(
              {SourceRange{toks_[i].offset,
                           toks_[close].offset + 1},
               inner_ns});
          scan_block(j + 1, close, inner_ns);
          i = close + 1;
          continue;
        }
      }
      // One declaration unit starts here.
      const std::size_t unit_start = i;
      std::size_t uend = unit_end(unit_start);
      if (uend == npos || uend >= end) uend = std::min(uend, end - 1);
      if (uend == npos) break;
      DeclUnit unit{};
      unit.namespace_prefix = ns;
      unit.range = SourceRange{toks_[unit_start].offset,
                               toks_[uend].offset + toks_[uend].text.size()};
      analyze_unit(unit, unit_start, uend);
      result_.decls.push_back(std::move(unit));
      i = uend + 1;
    }
  }

  /// Deepest namespace block containing each kernel gives its prefix.
  void assign_kernel_namespaces() {
    for (KernelSite& k : result_.kernels) {
      // Deeper namespaces have smaller ranges; prefer the smallest match.
      std::size_t best = static_cast<std::size_t>(-1);
      for (const auto& [range, ns] : namespace_ranges_) {
        if (range.contains(k.full_range.begin) && range.size() < best) {
          best = range.size();
          k.namespace_prefix = ns;
        }
      }
    }
  }

  /// Index of the token that terminates the unit starting at `start`:
  /// a `;` at depth 0, or the `}` of a depth-0 brace block (plus a trailing
  /// `;` when present, as structs/classes require).
  [[nodiscard]] std::size_t unit_end(std::size_t start) {
    int depth = 0;
    for (std::size_t k = start; k < toks_.size(); ++k) {
      const Token& t = toks_[k];
      if (!is_code(t)) continue;
      if (t.is("(") || t.is("[")) ++depth;
      if (t.is(")") || t.is("]")) --depth;
      if (t.is("{")) ++depth;
      if (t.is("}")) {
        --depth;
        if (depth == 0) {
          const std::size_t n = next_code(k + 1);
          return (n < toks_.size() && toks_[n].is(";")) ? n : k;
        }
      }
      if (depth == 0 && t.is(";")) return k;
    }
    return npos;
  }

  void analyze_unit(DeclUnit& unit, std::size_t start, std::size_t end) {
    const auto& noise = noise_identifiers();
    std::set<std::string, std::less<>> declared;
    int depth = 0;
    for (std::size_t k = start; k <= end; ++k) {
      const Token& t = toks_[k];
      if (!is_code(t)) continue;
      if (t.is("(") || t.is("[") || t.is("{")) {
        ++depth;
        continue;
      }
      if (t.is(")") || t.is("]") || t.is("}")) {
        --depth;
        continue;
      }
      if (t.kind != TokKind::identifier) continue;
      const std::string name{t.text};
      // Declared-name heuristics (over-collection is safe: it only makes
      // co-extraction more inclusive).
      const bool at_top = depth == 0;
      if (at_top) {
        const Token* prev = prev_code(k);
        const Token* next = next_code_tok(k);
        const bool after_tag =
            prev != nullptr &&
            (prev->is_ident("struct") || prev->is_ident("class") ||
             prev->is_ident("enum") || prev->is_ident("union") ||
             prev->is_ident("namespace"));
        const bool before_open_paren = next != nullptr && next->is("(");
        const bool var_like =
            next != nullptr && (next->is("=") || next->is(";") ||
                                next->is("[") || next->is("{"));
        const bool after_scope = prev != nullptr && prev->is("::");
        if ((after_tag || before_open_paren || var_like) && !after_scope &&
            !noise.contains(name)) {
          declared.insert(name);
        }
      }
      if (!noise.contains(name)) {
        unit.referenced.push_back(name);
      }
    }
    unit.declared.assign(declared.begin(), declared.end());
    // Referenced = mentioned minus declared.
    std::erase_if(unit.referenced, [&](const std::string& n) {
      return declared.contains(n);
    });
    std::sort(unit.referenced.begin(), unit.referenced.end());
    unit.referenced.erase(
        std::unique(unit.referenced.begin(), unit.referenced.end()),
        unit.referenced.end());
  }

  // --- helpers ---
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t next_code(std::size_t i) const {
    while (i < toks_.size() && !is_code(toks_[i])) ++i;
    return i;
  }
  [[nodiscard]] const Token* next_code_tok(std::size_t i) const {
    const std::size_t n = next_code(i + 1);
    return n < toks_.size() ? &toks_[n] : nullptr;
  }
  [[nodiscard]] const Token* prev_code(std::size_t i) const {
    while (i > 0) {
      --i;
      if (is_code(toks_[i])) return &toks_[i];
    }
    return nullptr;
  }

  [[nodiscard]] std::size_t match_paren(std::size_t open) const {
    int depth = 0;
    for (std::size_t k = open; k < toks_.size(); ++k) {
      if (!is_code(toks_[k])) continue;
      if (toks_[k].is("(")) ++depth;
      if (toks_[k].is(")")) {
        if (--depth == 0) return k;
      }
    }
    return npos;
  }
  [[nodiscard]] std::size_t match_brace(std::size_t open) const {
    int depth = 0;
    for (std::size_t k = open; k < toks_.size(); ++k) {
      if (!is_code(toks_[k])) continue;
      if (toks_[k].is("{")) ++depth;
      if (toks_[k].is("}")) {
        if (--depth == 0) return k;
      }
    }
    return npos;
  }

  [[nodiscard]] bool in_kernel(std::size_t offset) const {
    return std::any_of(result_.kernels.begin(), result_.kernels.end(),
                       [&](const KernelSite& s) {
                         return s.full_range.contains(offset);
                       });
  }
  [[nodiscard]] std::size_t skip_past_kernel(std::size_t i) const {
    const std::size_t off = toks_[i].offset;
    for (const KernelSite& s : result_.kernels) {
      if (s.full_range.contains(off)) {
        while (i < toks_.size() && toks_[i].offset < s.full_range.end) ++i;
        // Tolerate a trailing `;` after the kernel body.
        const std::size_t n = next_code(i);
        return (n < toks_.size() && toks_[n].is(";")) ? n + 1 : i;
      }
    }
    return i + 1;
  }
  [[nodiscard]] std::size_t skip_call_statement(std::size_t i) const {
    while (i < toks_.size() && !toks_[i].is(";")) ++i;
    return i + 1;
  }

  /// Source text between token indices [from, to), trimmed.
  [[nodiscard]] std::string slice_text(std::size_t from, std::size_t to) const {
    from = next_code(from);
    if (from >= to) return {};
    std::size_t last = to;
    while (last > from && !is_code(toks_[last - 1])) --last;
    if (last == from) return {};
    const std::size_t b = toks_[from].offset;
    const std::size_t e = toks_[last - 1].offset + toks_[last - 1].text.size();
    std::string s{file_.text(SourceRange{b, e})};
    return s;
  }

  const SourceFile& file_;
  const std::vector<Token>& toks_;
  ScanResult result_{};
  std::vector<std::pair<SourceRange, std::string>> namespace_ranges_;
};

}  // namespace

ScanResult scan(const SourceFile& file, const std::vector<Token>& tokens) {
  return Scanner{file, tokens}.run();
}

const KernelSite* find_kernel(const ScanResult& s, std::string_view name) {
  for (const KernelSite& k : s.kernels) {
    if (k.name == name) return &k;
  }
  return nullptr;
}

}  // namespace cgx

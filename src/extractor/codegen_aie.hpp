// extractor -- AIE realm code generator (paper Sections 4.5 and 4.7).
//
// Emits, per compute graph, the two headers AMD's AIE graph programming
// guide (UG1079) recommends -- kernel_decls.hpp with the declarations of
// all AIE-realm kernel functions, and graph.hpp defining the adf::graph
// (kernel instantiations, external I/O ports, connectivity and
// user-defined attributes) -- plus one .cc source per kernel containing the
// transformed kernel function, its co-extracted dependencies, and the
// adapter thunk that converts AIE-specific kernel parameters (streams,
// windows, runtime parameters) into the generic KernelReadPort /
// KernelWritePort types the kernel body expects (Section 4.5).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "coextract.hpp"
#include "graph_desc.hpp"
#include "scanner.hpp"
#include "source_file.hpp"

namespace cgx {

/// A generated AIE project: file name -> contents.
struct GeneratedProject {
  std::map<std::string, std::string> files;
  std::vector<std::string> warnings;
};

/// Generates the AIE-realm project for `graph`. `file` and `scan` describe
/// the prototype source that defines the kernels.
[[nodiscard]] GeneratedProject generate_aie_project(
    const GraphDesc& graph, const SourceFile& file, const ScanResult& scan,
    const CoextractConfig& coextract_cfg = {});

/// The static support header implementing cgsim's port API on top of the
/// native AIE streaming interfaces (paper Section 4.4, last paragraph).
[[nodiscard]] std::string aie_port_support_header();

}  // namespace cgx

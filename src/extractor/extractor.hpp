// extractor -- top-level driver (paper Section 4, Figure 5).
//
// Orchestrates the extraction flow: graph ingestion from the registry,
// realm partitioning, kernel transformation, co-extraction, and realm code
// generation, writing one Vitis-compatible project directory per graph.
// The `noextract` realm excludes kernels from extraction (Section 4).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "codegen_aie.hpp"
#include "coextract.hpp"
#include "graph_desc.hpp"
#include "registry.hpp"
#include "scanner.hpp"
#include "source_file.hpp"

namespace cgx {

struct ExtractOptions {
  std::string out_dir = "cgx_out";  ///< project root; one subdir per graph
  bool write_files = true;          ///< false: in-memory only (tests)
  CoextractConfig coextract{};
};

/// Result of extracting one graph.
struct ExtractReport {
  std::string graph_name;
  /// Generated files from all realm backends (HLS files carry an `hls/`
  /// prefix -- paper Section 4.7: realm-specific generators may emit
  /// multiple source files).
  GeneratedProject project;
  /// Where files were written (empty when write_files is false).
  std::string out_dir;
  int aie_kernels = 0;
  int hls_kernels = 0;
  int noextract_kernels = 0;
  int intra_realm_edges = 0;
  int inter_realm_edges = 0;
  int global_edges = 0;
};

/// Extracts a single graph description whose source file is already loaded.
[[nodiscard]] ExtractReport extract_graph(const GraphDesc& graph,
                                          const SourceFile& file,
                                          const ExtractOptions& opts);

/// Extracts every graph in the global registry (loading each defining
/// source file from disk) and returns one report per graph.
[[nodiscard]] std::vector<ExtractReport> extract_all(
    const ExtractOptions& opts);

/// Writes a generated project under `dir` (creating directories).
void write_project(const GeneratedProject& p, const std::string& dir);

}  // namespace cgx

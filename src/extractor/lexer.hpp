// extractor -- C++ token lexer.
//
// A from-scratch tokenizer sufficient for the structural source analysis
// the extractor performs (DESIGN.md substitution #4 for Clang LibTooling's
// lexing layer): identifiers, literals (including raw strings), comments,
// preprocessor directives and punctuation, each with byte offsets back
// into the original file so rewrites can splice text precisely.
#pragma once

#include <string_view>
#include <vector>

#include "source_file.hpp"

namespace cgx {

enum class TokKind {
  identifier,
  number,
  string_lit,
  char_lit,
  punct,
  preprocessor,  ///< whole directive line(s), e.g. `#include <x>`
  comment,       ///< // or /* */ (kept: rewrites preserve comments)
  end_of_file,
};

struct Token {
  TokKind kind = TokKind::end_of_file;
  std::string_view text{};  ///< view into the SourceFile text
  std::size_t offset = 0;   ///< byte offset of the first character

  [[nodiscard]] SourceRange range() const {
    return SourceRange{offset, offset + text.size()};
  }
  [[nodiscard]] bool is(std::string_view s) const { return text == s; }
  [[nodiscard]] bool is_ident(std::string_view s) const {
    return kind == TokKind::identifier && text == s;
  }
};

/// Tokenizes `text` (which must outlive the returned tokens). Whitespace is
/// dropped; comments and preprocessor directives are kept as single tokens.
[[nodiscard]] std::vector<Token> lex(std::string_view text);

/// Convenience: lexes a SourceFile.
[[nodiscard]] inline std::vector<Token> lex(const SourceFile& f) {
  return lex(f.text());
}

}  // namespace cgx

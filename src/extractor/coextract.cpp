#include "coextract.hpp"

#include <algorithm>

#include "lexer.hpp"

namespace cgx {

namespace {

/// Identifiers mentioned in a source range.
std::set<std::string> identifiers_in(const SourceFile& file, SourceRange r) {
  std::set<std::string> ids;
  for (const Token& t : lex(file.text(r))) {
    if (t.kind == TokKind::identifier) ids.emplace(t.text);
  }
  return ids;
}

bool blacklisted(const IncludeDirective& inc, const CoextractConfig& cfg) {
  return std::any_of(cfg.header_blacklist.begin(), cfg.header_blacklist.end(),
                     [&](const std::string& b) {
                       return inc.header == b ||
                              inc.header.ends_with("/" + b);
                     });
}

}  // namespace

CoextractResult coextract(const SourceFile& file, const ScanResult& scan,
                          const std::vector<const KernelSite*>& roots,
                          const CoextractConfig& cfg) {
  // Seed the worklist with everything the kernels mention.
  std::set<std::string> wanted;
  for (const KernelSite* k : roots) {
    for (const std::string& id : identifiers_in(file, k->params_range)) {
      wanted.insert(id);
    }
    for (const std::string& id : identifiers_in(file, k->body_range)) {
      wanted.insert(id);
    }
  }

  // Transitive closure over declaration units: a unit is pulled in when it
  // declares a wanted name; pulling it in makes its references wanted too.
  std::vector<bool> selected(scan.decls.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < scan.decls.size(); ++i) {
      if (selected[i]) continue;
      const DeclUnit& d = scan.decls[i];
      const bool hit = std::any_of(
          d.declared.begin(), d.declared.end(),
          [&](const std::string& n) { return wanted.contains(n); });
      if (!hit) continue;
      selected[i] = true;
      changed = true;
      for (const std::string& r : d.referenced) wanted.insert(r);
    }
  }

  CoextractResult out;
  for (std::size_t i = 0; i < scan.decls.size(); ++i) {
    if (selected[i]) out.decls.push_back(&scan.decls[i]);
  }
  std::sort(out.decls.begin(), out.decls.end(),
            [](const DeclUnit* a, const DeclUnit* b) {
              return a->range.begin < b->range.begin;
            });
  for (const IncludeDirective& inc : scan.includes) {
    if (!blacklisted(inc, cfg)) out.includes.push_back(&inc);
  }
  return out;
}

}  // namespace cgx

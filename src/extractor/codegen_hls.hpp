// extractor -- HLS realm code generator.
//
// The paper's extractor generates code only for the AIE target but was
// architected for additional realms (Section 6: "This design will enable
// the development of code generators for additional targets, including
// FPGAs via HLS"). This backend realizes that extension: kernels annotated
// with the `hls` realm become Vitis-HLS top functions with AXI-Stream
// (hls::stream) interfaces, and the realm's intra-realm connectivity is
// emitted as a DATAFLOW wrapper.
//
// Generated files (all under an `hls/` prefix in the project):
//   hls_kernel_ports.hpp  -- KernelReadPort/KernelWritePort over hls::stream
//   hls_kernels.hpp       -- co-extracted declarations + kernel/top decls
//   <kernel>_hls.cpp      -- transformed kernel + extern "C" top function
//   <graph>_dataflow.cpp  -- DATAFLOW wrapper wiring the intra-realm edges
#pragma once

#include "codegen_aie.hpp"  // GeneratedProject
#include "coextract.hpp"
#include "graph_desc.hpp"
#include "scanner.hpp"
#include "source_file.hpp"

namespace cgx {

/// Generates the HLS-realm project for `graph`; empty when the graph has
/// no kernels in the hls realm.
[[nodiscard]] GeneratedProject generate_hls_project(
    const GraphDesc& graph, const SourceFile& file, const ScanResult& scan,
    const CoextractConfig& coextract_cfg = {});

/// The static support header implementing cgsim's port API on top of
/// hls::stream (the HLS analogue of paper Section 4.4's realm port types).
[[nodiscard]] std::string hls_port_support_header();

}  // namespace cgx

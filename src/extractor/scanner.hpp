// extractor -- structural source scanning.
//
// Recovers from the token stream what the paper's extractor gets from the
// Clang AST (Sections 4.4 and 4.6):
//   * COMPUTE_KERNEL macro *expansion ranges* -- the paper stresses that
//     the rewriter must operate on the full expansion range because kernel
//     functions are defined through a preprocessor macro (footnote 3);
//   * top-level declaration units (types, constants, helper functions,
//     namespaces) with the names they declare and the identifiers they
//     reference, feeding transitive co-extraction;
//   * #include directives.
#pragma once

#include <string>
#include <vector>

#include "lexer.hpp"
#include "source_file.hpp"

namespace cgx {

/// One COMPUTE_KERNEL(realm, name, params...) { body } occurrence.
struct KernelSite {
  std::string name;          ///< kernel name (2nd macro argument)
  std::string realm;         ///< realm spelling (1st macro argument)
  SourceRange full_range{};  ///< macro name through closing body brace
  SourceRange params_range{};///< inside the macro parens, after `name,`
  SourceRange body_range{};  ///< including the outer braces
  std::string namespace_prefix;  ///< e.g. "apps::bitonic::" (may be empty)
  bool is_template = false;      ///< COMPUTE_KERNEL_TEMPLATE site
  std::string template_param;    ///< the type parameter name (e.g. "T")
};

/// One declaration unit (everything between the end of the previous unit
/// and the `;` or closing brace that finishes this one). Units inside
/// namespace blocks are scanned individually and carry the enclosing
/// namespace spelling so the code generator can re-wrap them.
struct DeclUnit {
  std::vector<std::string> declared;    ///< names this unit introduces
  std::vector<std::string> referenced;  ///< identifiers it mentions
  SourceRange range{};
  std::string namespace_prefix;  ///< e.g. "util::" (empty at file scope)
};

struct IncludeDirective {
  std::string header;  ///< path between the delimiters
  bool angled = false; ///< <...> vs "..."
  SourceRange range{};
};

/// Full structural scan of one source file.
struct ScanResult {
  std::vector<KernelSite> kernels;
  std::vector<DeclUnit> decls;
  std::vector<IncludeDirective> includes;
};

[[nodiscard]] ScanResult scan(const SourceFile& file,
                              const std::vector<Token>& tokens);

[[nodiscard]] inline ScanResult scan(const SourceFile& file) {
  return scan(file, lex(file));
}

/// Finds the kernel site for `name`; nullptr when absent.
[[nodiscard]] const KernelSite* find_kernel(const ScanResult& s,
                                            std::string_view name);

}  // namespace cgx

#include "rewriter.hpp"

#include <cctype>

#include "lexer.hpp"

namespace cgx {

namespace {

/// Replaces tokens matching `pred` with nothing, eating one adjacent space.
template <class Pred>
std::string drop_tokens(std::string_view code, Pred pred) {
  const std::vector<Token> toks = lex(code);
  std::string out;
  out.reserve(code.size());
  std::size_t pos = 0;
  for (const Token& t : toks) {
    if (t.kind == TokKind::end_of_file) break;
    if (!pred(t)) continue;
    out.append(code.substr(pos, t.offset - pos));
    pos = t.offset + t.text.size();
    if (pos < code.size() && code[pos] == ' ') ++pos;  // eat one space
  }
  out.append(code.substr(pos));
  return out;
}

}  // namespace

std::string strip_co_await(std::string_view code) {
  return drop_tokens(code,
                     [](const Token& t) { return t.is_ident("co_await"); });
}

std::string strip_cgsim_namespace(std::string_view code) {
  // Token-aware removal of `cgsim ::` (and a leading `::`) sequences.
  const std::vector<Token> toks = lex(code);
  std::string out;
  out.reserve(code.size());
  std::size_t pos = 0;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!toks[i].is_ident("cgsim") || !toks[i + 1].is("::")) continue;
    std::size_t begin = toks[i].offset;
    // Also swallow a directly preceding `::` (fully qualified spelling).
    if (i > 0 && toks[i - 1].is("::") &&
        toks[i - 1].offset + 2 == toks[i].offset) {
      begin = toks[i - 1].offset;
    }
    if (begin < pos) continue;  // already consumed
    out.append(code.substr(pos, begin - pos));
    pos = toks[i + 1].offset + 2;
  }
  out.append(code.substr(pos));
  return out;
}

std::string collapse_blank_runs(std::string_view code) {
  std::string out;
  out.reserve(code.size());
  int blank_lines = 0;
  std::size_t line_start = 0;
  for (std::size_t i = 0; i <= code.size(); ++i) {
    if (i == code.size() || code[i] == '\n') {
      const std::string_view line = code.substr(line_start, i - line_start);
      const bool blank =
          line.find_first_not_of(" \t\r") == std::string_view::npos;
      blank_lines = blank ? blank_lines + 1 : 0;
      if (blank_lines <= 1) {
        out.append(line);
        if (i < code.size()) out.push_back('\n');
      }
      line_start = i + 1;
    }
  }
  return out;
}

std::string substitute_identifier(std::string_view code,
                                  std::string_view from, std::string_view to) {
  const std::vector<Token> toks = lex(code);
  std::string out;
  out.reserve(code.size());
  std::size_t pos = 0;
  for (const Token& t : toks) {
    if (t.kind != TokKind::identifier || t.text != from) continue;
    out.append(code.substr(pos, t.offset - pos));
    out.append(to);
    pos = t.offset + t.text.size();
  }
  out.append(code.substr(pos));
  return out;
}

namespace {
[[nodiscard]] std::string template_head(const KernelSite& site) {
  return site.is_template
             ? "template <class " + site.template_param + ">\n"
             : std::string{};
}
}  // namespace

std::string kernel_params(const SourceFile& file, const KernelSite& site) {
  return strip_cgsim_namespace(file.text(site.params_range));
}

std::string kernel_declaration(const SourceFile& file,
                               const KernelSite& site) {
  return template_head(site) + "void " + site.name + "(" +
         kernel_params(file, site) + ");";
}

std::string kernel_definition(const SourceFile& file,
                              const KernelSite& site) {
  const std::string body =
      strip_cgsim_namespace(strip_co_await(file.text(site.body_range)));
  return template_head(site) + "void " + site.name + "(" +
         kernel_params(file, site) + ") " + collapse_blank_runs(body);
}

}  // namespace cgx

#include "lexer.hpp"

#include <cctype>

namespace cgx {

namespace {

[[nodiscard]] bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// Multi-character punctuators, longest first so maximal munch works.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>",                              // 3
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",     // 2
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    ".*",
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  std::vector<Token> run() {
    std::vector<Token> toks;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        at_line_start_ = true;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
        continue;
      }
      const std::size_t start = pos_;
      if (c == '/' && peek(1) == '/') {
        skip_line_comment();
        emit(toks, TokKind::comment, start);
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        skip_block_comment();
        emit(toks, TokKind::comment, start);
        continue;
      }
      if (c == '#' && at_line_start_) {
        skip_preprocessor();
        emit(toks, TokKind::preprocessor, start);
        continue;
      }
      at_line_start_ = false;
      if (c == 'R' && peek(1) == '"') {
        skip_raw_string();
        emit(toks, TokKind::string_lit, start);
        continue;
      }
      if (c == '"') {
        skip_quoted('"');
        emit(toks, TokKind::string_lit, start);
        continue;
      }
      if (c == '\'') {
        skip_quoted('\'');
        emit(toks, TokKind::char_lit, start);
        continue;
      }
      if (is_ident_start(c)) {
        while (pos_ < text_.size() && is_ident_char(text_[pos_])) ++pos_;
        emit(toks, TokKind::identifier, start);
        continue;
      }
      if (is_digit(c) || (c == '.' && is_digit(peek(1)))) {
        skip_number();
        emit(toks, TokKind::number, start);
        continue;
      }
      skip_punct();
      emit(toks, TokKind::punct, start);
    }
    toks.push_back(Token{TokKind::end_of_file, {}, text_.size()});
    return toks;
  }

 private:
  [[nodiscard]] char peek(std::size_t n) const {
    return pos_ + n < text_.size() ? text_[pos_ + n] : '\0';
  }

  void emit(std::vector<Token>& toks, TokKind kind, std::size_t start) {
    toks.push_back(Token{kind, text_.substr(start, pos_ - start), start});
  }

  void skip_line_comment() {
    while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
  }

  void skip_block_comment() {
    pos_ += 2;
    while (pos_ + 1 < text_.size() &&
           !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
      ++pos_;
    }
    pos_ = pos_ + 2 <= text_.size() ? pos_ + 2 : text_.size();
  }

  // A directive spans to end of line, honouring backslash continuations.
  void skip_preprocessor() {
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\\' && peek(1) == '\n') {
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == '\n') break;
      ++pos_;
    }
  }

  void skip_quoted(char quote) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      if (text_[pos_] == '\\') {
        pos_ += 2;
        continue;
      }
      if (text_[pos_] == quote) {
        ++pos_;
        return;
      }
      ++pos_;
    }
  }

  void skip_raw_string() {
    // R"delim( ... )delim"
    pos_ += 2;  // R"
    std::size_t dstart = pos_;
    while (pos_ < text_.size() && text_[pos_] != '(') ++pos_;
    const std::string_view delim = text_.substr(dstart, pos_ - dstart);
    ++pos_;  // (
    const std::string closer = ")" + std::string{delim} + "\"";
    const std::size_t found = text_.find(closer, pos_);
    pos_ = found == std::string_view::npos ? text_.size()
                                           : found + closer.size();
  }

  void skip_number() {
    // pp-number: digits, idents, dots, exponent signs, digit separators.
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (is_ident_char(c) || c == '.' || c == '\'') {
        ++pos_;
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > 0) {
        const char prev = text_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          ++pos_;
          continue;
        }
      }
      break;
    }
  }

  void skip_punct() {
    const std::string_view rest = text_.substr(pos_);
    for (std::string_view p : kPuncts) {
      if (rest.starts_with(p)) {
        pos_ += p.size();
        return;
      }
    }
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool at_line_start_ = true;
};

}  // namespace

std::vector<Token> lex(std::string_view text) { return Lexer{text}.run(); }

}  // namespace cgx

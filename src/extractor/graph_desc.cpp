#include "graph_desc.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace cgx {

GraphDesc GraphDesc::from_view(const cgsim::GraphView& g, std::string name,
                               std::string source_path) {
  GraphDesc d;
  d.name = std::move(name);
  d.source_path = std::move(source_path);
  d.edges.reserve(g.edges.size());
  for (const cgsim::FlatEdge& e : g.edges) {
    EdgeDesc ed;
    const cgsim::ChannelVTable& vt = e.vtable();
    ed.type_name = std::string{vt.type_name};
    ed.elem_size = vt.elem_size;
    ed.settings = e.settings;
    ed.attrs.assign(e.attrs, e.attrs + e.n_attrs);
    ed.n_producers = e.n_producers;
    ed.n_consumers = e.n_consumers;
    d.edges.push_back(std::move(ed));
  }
  d.kernels.reserve(g.kernels.size());
  for (const cgsim::FlatKernel& k : g.kernels) {
    KernelDesc kd;
    kd.name = std::string{k.name};
    kd.realm = k.realm;
    for (int p = 0; p < k.nports; ++p) {
      const cgsim::FlatPort& fp =
          g.ports[static_cast<std::size_t>(k.first_port + p)];
      kd.ports.push_back(
          PortDesc{fp.is_read, fp.edge, fp.settings, fp.endpoint});
    }
    d.kernels.push_back(std::move(kd));
  }
  for (const cgsim::FlatGlobal& in : g.inputs) d.input_edges.push_back(in.edge);
  for (const cgsim::FlatGlobal& out : g.outputs) {
    d.output_edges.push_back(out.edge);
  }
  classify_ports(d);
  return d;
}

bool GraphDesc::is_global_edge(int e) const {
  return std::find(input_edges.begin(), input_edges.end(), e) !=
             input_edges.end() ||
         std::find(output_edges.begin(), output_edges.end(), e) !=
             output_edges.end();
}

void classify_ports(GraphDesc& g) {
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const int edge = static_cast<int>(e);
    if (g.is_global_edge(edge)) {
      g.edges[e].cls = PortClass::global_io;
      continue;
    }
    std::set<cgsim::Realm> realms;
    for (const KernelDesc& k : g.kernels) {
      for (const PortDesc& p : k.ports) {
        if (p.edge == edge) realms.insert(k.realm);
      }
    }
    g.edges[e].cls = realms.size() > 1 ? PortClass::inter_realm
                                       : PortClass::intra_realm;
  }
}

std::vector<const KernelDesc*> kernels_in_realm(const GraphDesc& g,
                                                cgsim::Realm realm) {
  std::vector<const KernelDesc*> out;
  for (const KernelDesc& k : g.kernels) {
    if (k.realm == realm) out.push_back(&k);
  }
  return out;
}

std::vector<cgsim::Realm> realms_of(const GraphDesc& g) {
  std::vector<cgsim::Realm> out;
  for (const KernelDesc& k : g.kernels) {
    if (std::find(out.begin(), out.end(), k.realm) == out.end()) {
      out.push_back(k.realm);
    }
  }
  return out;
}

}  // namespace cgx

// extractor -- registration of extractable compute graphs.
//
// The paper marks extractable graphs with a custom Clang attribute
// (`extract_compute_graph`, Section 4.2). Without a patched compiler, this
// reproduction uses a registration macro with identical information
// content: the graph variable (whose flattened value the host compiler's
// constexpr evaluator already produced), its spelled name, and the defining
// source file.
#pragma once

#include <string>
#include <vector>

#include "core/graph_view.hpp"
#include "graph_desc.hpp"

namespace cgx {

/// Static-initialization hook appending one graph to the global registry.
class Registration {
 public:
  Registration(const char* name, const char* file, cgsim::GraphView view);
};

/// All graphs registered in this process, in registration order.
[[nodiscard]] const std::vector<GraphDesc>& registry();

/// Testing hook: clears the registry.
void clear_registry();

/// Registers one graph described programmatically (used by tests and by
/// tools that synthesize descriptions without a live FlatGraph).
void register_graph(GraphDesc desc);

}  // namespace cgx

/// Marks a constexpr cgsim graph variable as extractable -- the moral
/// equivalent of the paper's `extract_compute_graph` attribute:
///
///   constexpr auto my_graph = cgsim::make_compute_graph_v<...>;
///   CGSIM_EXTRACTABLE(my_graph);
#define CGSIM_EXTRACTABLE(graph_var)                                    \
  static const ::cgx::Registration graph_var##_cgx_registration {      \
    #graph_var, __FILE__, (graph_var).view()                           \
  }

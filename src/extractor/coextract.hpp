// extractor -- co-extraction of referenced code (paper Section 4.6).
//
// Kernels may use custom data types, constant lookup tables and helper
// functions defined at global scope in the prototype source. The extractor
// computes the transitive closure of declarations a kernel references and
// includes them (plus the file's #include directives, minus a per-realm
// blacklist of simulation-only headers) in the generated kernel sources.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "scanner.hpp"
#include "source_file.hpp"

namespace cgx {

/// Per-realm header blacklist (paper: "to prevent simulation-specific
/// helpers from being included in hardware builds") and mapping of
/// simulation headers onto their hardware-toolchain equivalents.
struct CoextractConfig {
  std::vector<std::string> header_blacklist{
      "core/cgsim.hpp",
      "cgsim.hpp",
      "cgsim/cgsim.hpp",
      "extractor/registry.hpp",
      "registry.hpp",
  };
  /// simulation header -> header to emit instead (empty = keep as is).
  std::vector<std::pair<std::string, std::string>> header_map{
      {"aie/aie.hpp", "aie_api/aie.hpp"},
  };

  /// The header to emit for `inc`, after mapping.
  [[nodiscard]] std::string mapped(const std::string& header) const {
    for (const auto& [from, to] : header_map) {
      if (header == from || header.ends_with("/" + from)) return to;
    }
    return header;
  }
};

struct CoextractResult {
  /// Declaration units to copy, in original source order.
  std::vector<const DeclUnit*> decls;
  /// Include directives to re-emit, in original source order.
  std::vector<const IncludeDirective*> includes;
};

/// Closure of declarations transitively referenced from the kernels named
/// in `roots` (their parameter lists and bodies).
[[nodiscard]] CoextractResult coextract(const SourceFile& file,
                                        const ScanResult& scan,
                                        const std::vector<const KernelSite*>& roots,
                                        const CoextractConfig& cfg = {});

}  // namespace cgx

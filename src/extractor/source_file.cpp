#include "source_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace cgx {

SourceFile::SourceFile(std::string path, std::string text)
    : path_(std::move(path)), text_(std::move(text)) {
  index_lines();
}

SourceFile SourceFile::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error{"cannot open source file: " + path};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return SourceFile{path, std::move(ss).str()};
}

void SourceFile::index_lines() {
  line_starts_.clear();
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') line_starts_.push_back(i + 1);
  }
}

SourceLoc SourceFile::loc(std::size_t offset) const {
  offset = std::min(offset, text_.size());
  const auto it =
      std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  const auto line_idx =
      static_cast<std::size_t>(std::distance(line_starts_.begin(), it)) - 1;
  return SourceLoc{offset, static_cast<int>(line_idx) + 1,
                   static_cast<int>(offset - line_starts_[line_idx]) + 1};
}

}  // namespace cgx

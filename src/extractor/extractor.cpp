#include "extractor.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "codegen_hls.hpp"
#include "manifest.hpp"

namespace cgx {

ExtractReport extract_graph(const GraphDesc& graph, const SourceFile& file,
                            const ExtractOptions& opts) {
  ExtractReport rep;
  rep.graph_name = graph.name;
  const ScanResult sc = scan(file);

  for (const KernelDesc& k : graph.kernels) {
    if (k.realm == cgsim::Realm::aie) ++rep.aie_kernels;
    if (k.realm == cgsim::Realm::hls) ++rep.hls_kernels;
    if (k.realm == cgsim::Realm::noextract) ++rep.noextract_kernels;
  }
  for (const EdgeDesc& e : graph.edges) {
    switch (e.cls) {
      case PortClass::intra_realm: ++rep.intra_realm_edges; break;
      case PortClass::inter_realm: ++rep.inter_realm_edges; break;
      case PortClass::global_io: ++rep.global_edges; break;
    }
  }

  if (rep.aie_kernels > 0) {
    rep.project = generate_aie_project(graph, file, sc, opts.coextract);
  }
  GeneratedProject hls = generate_hls_project(graph, file, sc,
                                              opts.coextract);
  for (auto& [name, text] : hls.files) {
    rep.project.files.emplace(name, std::move(text));
  }
  for (auto& w : hls.warnings) {
    rep.project.warnings.push_back(std::move(w));
  }
  rep.project.files["graph.json"] = graph_manifest_json(graph);
  if (opts.write_files) {
    rep.out_dir = opts.out_dir + "/" + graph.name;
    write_project(rep.project, rep.out_dir);
  }
  return rep;
}

std::vector<ExtractReport> extract_all(const ExtractOptions& opts) {
  std::vector<ExtractReport> reports;
  for (const GraphDesc& g : registry()) {
    const SourceFile file = SourceFile::load(g.source_path);
    reports.push_back(extract_graph(g, file, opts));
  }
  return reports;
}

void write_project(const GeneratedProject& p, const std::string& dir) {
  std::filesystem::create_directories(dir);
  for (const auto& [name, contents] : p.files) {
    const std::filesystem::path path = std::filesystem::path{dir} / name;
    std::filesystem::create_directories(path.parent_path());
    std::ofstream out{path, std::ios::binary};
    if (!out) throw std::runtime_error{"cannot write " + path.string()};
    out << contents;
  }
}

}  // namespace cgx

#include "manifest.hpp"

#include <sstream>

namespace cgx {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string esc(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_settings(std::ostringstream& os, const cgsim::PortSettings& s) {
  os << "{\"beat_bits\": " << cgsim::effective_beat_bits(s)
     << ", \"rtp\": " << (s.rtp ? "true" : "false") << ", \"buffer\": \""
     << cgsim::buffer_mode_name(s.buffer) << "\", \"window_size\": "
     << s.window_size << ", \"io\": \"" << cgsim::io_kind_name(s.io)
     << "\"}";
}

}  // namespace

std::string graph_manifest_json(const GraphDesc& g) {
  std::ostringstream os;
  os << "{\n  \"graph\": \"" << esc(g.name) << "\",\n  \"source\": \""
     << esc(g.source_path) << "\",\n  \"kernels\": [\n";
  for (std::size_t k = 0; k < g.kernels.size(); ++k) {
    const KernelDesc& kd = g.kernels[k];
    os << "    {\"name\": \"" << esc(kd.name) << "\", \"realm\": \""
       << cgsim::realm_name(kd.realm) << "\", \"ports\": [";
    for (std::size_t p = 0; p < kd.ports.size(); ++p) {
      const PortDesc& pd = kd.ports[p];
      os << (p > 0 ? ", " : "") << "{\"dir\": \""
         << (pd.is_read ? "in" : "out") << "\", \"edge\": " << pd.edge
         << "}";
    }
    os << "]}" << (k + 1 < g.kernels.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"edges\": [\n";
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const EdgeDesc& ed = g.edges[e];
    os << "    {\"id\": " << e << ", \"type\": \"" << esc(ed.type_name)
       << "\", \"bytes\": " << ed.elem_size << ", \"class\": \""
       << port_class_name(ed.cls) << "\", \"producers\": "
       << ed.n_producers << ", \"consumers\": " << ed.n_consumers
       << ", \"settings\": ";
    write_settings(os, ed.settings);
    if (!ed.attrs.empty()) {
      os << ", \"attributes\": {";
      for (std::size_t a = 0; a < ed.attrs.size(); ++a) {
        const cgsim::Attribute& at = ed.attrs[a];
        os << (a > 0 ? ", " : "") << "\"" << esc(at.key) << "\": ";
        if (at.is_int) {
          os << at.int_value;
        } else {
          os << "\"" << esc(at.str_value) << "\"";
        }
      }
      os << "}";
    }
    os << "}" << (e + 1 < g.edges.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"inputs\": [";
  for (std::size_t i = 0; i < g.input_edges.size(); ++i) {
    os << (i > 0 ? ", " : "") << g.input_edges[i];
  }
  os << "],\n  \"outputs\": [";
  for (std::size_t o = 0; o < g.output_edges.size(); ++o) {
    os << (o > 0 ? ", " : "") << g.output_edges[o];
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace cgx

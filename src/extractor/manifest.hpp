// extractor -- machine-readable graph manifest (graph.json).
//
// Downstream tooling (build systems, visualizers, CI checks on extracted
// projects) should not have to re-parse generated C++ to learn a graph's
// structure. The manifest serializes the deserialized GraphDesc -- kernels
// with realms and ports, edges with types/settings/attributes/partitioning
// class, and the global interface -- as JSON.
#pragma once

#include <string>

#include "graph_desc.hpp"

namespace cgx {

/// Serializes `g` as pretty-printed JSON.
[[nodiscard]] std::string graph_manifest_json(const GraphDesc& g);

}  // namespace cgx

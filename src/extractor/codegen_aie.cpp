#include "codegen_aie.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "rewriter.hpp"

namespace cgx {

namespace {

/// One parsed kernel signature parameter: type spelling + name.
struct Param {
  std::string type;
  std::string name;
};

/// Splits a parameter list at depth-0 commas and separates the trailing
/// identifier (the parameter name) from the type spelling.
std::vector<Param> parse_params(const std::string& params) {
  std::vector<Param> out;
  int depth = 0;
  std::size_t start = 0;
  auto flush = [&](std::size_t end) {
    std::string piece = params.substr(start, end - start);
    // Trim.
    const auto b = piece.find_first_not_of(" \t\r\n");
    const auto e = piece.find_last_not_of(" \t\r\n");
    if (b == std::string::npos) return;
    piece = piece.substr(b, e - b + 1);
    // The parameter name is the trailing identifier.
    std::size_t n = piece.size();
    while (n > 0 && (std::isalnum(static_cast<unsigned char>(piece[n - 1])) !=
                         0 ||
                     piece[n - 1] == '_')) {
      --n;
    }
    Param p;
    p.name = piece.substr(n);
    p.type = piece.substr(0, n);
    const auto te = p.type.find_last_not_of(" \t\r\n");
    p.type = te == std::string::npos ? p.type : p.type.substr(0, te + 1);
    out.push_back(std::move(p));
  };
  for (std::size_t i = 0; i < params.size(); ++i) {
    const char c = params[i];
    if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
    if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      flush(i);
      start = i + 1;
    }
  }
  flush(params.size());
  return out;
}

/// Wraps `text` in its namespace block when `prefix` (e.g. "a::b::") is
/// non-empty.
[[nodiscard]] std::string in_namespace(const std::string& prefix,
                                       const std::string& text) {
  if (prefix.empty()) return text;
  const std::string name = prefix.substr(0, prefix.size() - 2);
  return "namespace " + name + " {\n" + text + "\n}  // namespace " + name;
}

/// "caster<int>" -> "caster"; plain names pass through.
[[nodiscard]] std::string base_of(const std::string& name) {
  const auto p = name.find('<');
  return p == std::string::npos ? name : name.substr(0, p);
}

/// "caster<int>" -> "int"; "" for plain names.
[[nodiscard]] std::string inst_arg_of(const std::string& name) {
  const auto p = name.find('<');
  if (p == std::string::npos) return {};
  return name.substr(p + 1, name.size() - p - 2);
}

/// C identifier for an (instantiated) kernel name: "caster<int>" ->
/// "caster_int".
[[nodiscard]] std::string sanitize(const std::string& name) {
  std::string out;
  bool last_us = false;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      out.push_back(c);
      last_us = false;
    } else if (!last_us && !out.empty()) {
      out.push_back('_');
      last_us = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

[[nodiscard]] bool is_window(const cgsim::PortSettings& s) {
  return s.buffer == cgsim::BufferMode::window ||
         s.buffer == cgsim::BufferMode::pingpong;
}

[[nodiscard]] std::string plio_width(const cgsim::PortSettings& s) {
  switch (cgsim::effective_beat_bits(s)) {
    case 64: return "adf::plio_64_bits";
    case 128: return "adf::plio_128_bits";
    default: return "adf::plio_32_bits";
  }
}

/// adf endpoint reference of one side of a connection.
struct Endpoint {
  std::string ref;   ///< e.g. "k0.out[1]" or "plio_in_0.out[0]"
  bool is_rtp = false;
};

class AieCodegen {
 public:
  AieCodegen(const GraphDesc& graph, const SourceFile& file,
             const ScanResult& scan, const CoextractConfig& cfg)
      : g_(graph), file_(file), scan_(scan), cfg_(cfg) {}

  GeneratedProject run() {
    collect_kernels();
    out_.files["aie_kernel_ports.hpp"] = aie_port_support_header();
    out_.files["kernel_decls.hpp"] = gen_kernel_decls();
    out_.files["graph.hpp"] = gen_graph();
    out_.files["graph.cpp"] = gen_graph_main();
    out_.files["Makefile"] = gen_makefile();
    for (const auto& [base, site] : bases_) {
      out_.files[base + ".cc"] = gen_kernel_source(base, site);
    }
    return std::move(out_);
  }

 private:
  void collect_kernels() {
    for (const KernelDesc& k : g_.kernels) {
      if (k.realm != cgsim::Realm::aie) continue;
      aie_kernels_.push_back(&k);
      if (sites_.contains(k.name)) continue;
      const std::string base = base_of(k.name);
      const KernelSite* site = find_kernel(scan_, base);
      if (site == nullptr) {
        if (!bases_.contains(base)) {
          out_.warnings.push_back("kernel '" + base +
                                  "' not found in source " + file_.path());
          bases_.emplace(base, nullptr);
        }
        continue;
      }
      sites_.emplace(k.name, site);
      bases_.emplace(base, site);
    }
    std::erase_if(bases_, [](const auto& kv) { return kv.second == nullptr; });
  }

  /// First AIE kernel instance with `name` (instances share one source).
  [[nodiscard]] const KernelDesc* desc_for(const std::string& name) const {
    for (const KernelDesc* k : aie_kernels_) {
      if (k->name == name) return k;
    }
    return nullptr;
  }

  // ---- kernel_decls.hpp (paper Section 4.7) ----
  std::string gen_kernel_decls() {
    std::ostringstream os;
    os << "// Generated by cgx (cgsim graph extractor) from "
       << file_.path() << "\n"
       << "// Kernel declarations for graph '" << g_.name << "' (AIE realm)"
       << "\n#pragma once\n\n#include \"aie_kernel_ports.hpp\"\n\n";

    // Co-extracted includes and declarations (paper Section 4.6).
    std::vector<const KernelSite*> roots;
    for (const auto& [base, site] : bases_) roots.push_back(site);
    const CoextractResult co = coextract(file_, scan_, roots, cfg_);
    for (const IncludeDirective* inc : co.includes) {
      const std::string mapped = cfg_.mapped(inc->header);
      const bool angled = inc->angled || mapped != inc->header;
      os << "#include " << (angled ? "<" : "\"") << mapped
         << (angled ? ">" : "\"") << "\n";
    }
    if (!co.includes.empty()) os << "\n";
    if (!co.decls.empty()) {
      os << "// --- co-extracted declarations ---\n";
      for (const DeclUnit* d : co.decls) {
        os << in_namespace(
                  d->namespace_prefix,
                  std::string{strip_cgsim_namespace(file_.text(d->range))})
           << "\n\n";
      }
    }

    os << "// --- kernel forward declarations ---\n";
    for (const auto& [base, site] : bases_) {
      os << in_namespace(site->namespace_prefix,
                         kernel_declaration(file_, *site))
         << "\n";
    }
    os << "\n// --- AIE entry points (adapter thunks, Section 4.5) ---\n";
    for (const auto& [name, site] : sites_) {
      os << thunk_signature(name) << ";\n";
    }
    return os.str();
  }

  // ---- per-kernel .cc (paper Sections 4.4-4.6) ----
  std::string gen_kernel_source(const std::string& base,
                                const KernelSite* site) {
    std::ostringstream os;
    os << "// Generated by cgx from " << file_.path() << " (kernel '" << base
       << "', lines around " << file_.line_of(site->full_range.begin)
       << ")\n#include \"kernel_decls.hpp\"\n\n"
       << "// --- transformed kernel definition (coroutine awaits removed,"
          " paper Section 4.4) ---\n"
       << in_namespace(site->namespace_prefix, kernel_definition(file_, *site))
       << "\n\n"
       << "// --- AIE adapter thunk(s): convert native AIE parameters into\n"
       << "// --- the generic cgsim port types (paper Section 4.5) ---\n";
    for (const auto& [name, inst_site] : sites_) {
      if (inst_site != site || base_of(name) != base) continue;
      emit_thunk(os, name, site);
    }
    return os.str();
  }

  void emit_thunk(std::ostringstream& os, const std::string& name,
                  const KernelSite* site) {
    os << thunk_signature(name) << " {\n";
    std::string params_text = kernel_params(file_, *site);
    if (site->is_template) {
      // Substitute the type parameter with this instantiation's argument.
      params_text = substitute_identifier(params_text, site->template_param,
                                          inst_arg_of(name));
    }
    const auto params = parse_params(params_text);
    if (!site->namespace_prefix.empty()) {
      // Resolve the kernel and any namespace-local settings constants /
      // element types used as template arguments.
      os << "  using namespace "
         << site->namespace_prefix.substr(0,
                                          site->namespace_prefix.size() - 2)
         << ";\n";
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      os << "  " << params[i].type << " port_" << i << "{native_" << i
         << "};\n";
    }
    // Template instantiations call with an explicit template argument.
    os << "  " << (site->is_template ? name : base_of(name)) << "(";
    for (std::size_t i = 0; i < params.size(); ++i) {
      os << (i > 0 ? ", " : "") << "port_" << i;
    }
    os << ");\n}\n\n";
  }

  /// Native AIE signature of the thunk.
  std::string thunk_signature(const std::string& name) {
    const KernelDesc* kd = desc_for(name);
    std::ostringstream os;
    os << "void " << sanitize(name) << "_aie(";
    for (std::size_t i = 0; kd != nullptr && i < kd->ports.size(); ++i) {
      const PortDesc& p = kd->ports[i];
      const EdgeDesc& e = g_.edges[static_cast<std::size_t>(p.edge)];
      if (i > 0) os << ", ";
      if (p.settings.rtp) {
        os << e.type_name << (p.is_read ? " " : "* ") << "native_" << i;
      } else if (is_window(p.settings)) {
        os << (p.is_read ? "input_window<" : "output_window<") << e.type_name
           << ">* native_" << i;
      } else {
        os << (p.is_read ? "input_stream<" : "output_stream<") << e.type_name
           << ">* native_" << i;
      }
    }
    os << ")";
    return os.str();
  }

  // ---- graph.hpp (paper Section 4.7) ----
  std::string gen_graph() {
    std::ostringstream os;
    os << "// Generated by cgx from " << file_.path() << "\n"
       << "// adf::graph definition for '" << g_.name << "' (AIE realm)\n"
       << "#pragma once\n\n#include <adf.h>\n\n#include "
          "\"kernel_decls.hpp\"\n\n"
       << "class " << g_.name << "_aie : public adf::graph {\n public:\n";

    // External interface members: one PLIO (or RTP port) per global or
    // inter-realm edge touched by an AIE kernel.
    const auto edge_io = external_edges();
    for (const auto& [edge, dir] : edge_io) {
      const EdgeDesc& e = g_.edges[static_cast<std::size_t>(edge)];
      const std::string n = io_name(edge);
      if (e.settings.rtp) {
        os << "  adf::" << (dir ? "input" : "output") << "_port " << n
           << ";  // runtime parameter\n";
      } else if (e.settings.io == cgsim::IoKind::gmio) {
        os << "  adf::" << (dir ? "input" : "output") << "_gmio " << n
           << ";  // " << port_class_name(e.cls) << " (global memory)\n";
      } else {
        os << "  adf::" << (dir ? "input" : "output") << "_plio " << n
           << ";  // " << port_class_name(e.cls) << ", "
           << e.attr_or("plio_name", "unnamed") << "\n";
      }
    }
    for (std::size_t i = 0; i < aie_kernels_.size(); ++i) {
      os << "  adf::kernel k" << i << ";  // " << aie_kernels_[i]->name
         << "\n";
    }

    os << "\n  " << g_.name << "_aie() {\n";
    // Kernel instantiation.
    for (std::size_t i = 0; i < aie_kernels_.size(); ++i) {
      const std::string& n = aie_kernels_[i]->name;
      os << "    k" << i << " = adf::kernel::create(" << sanitize(n)
         << "_aie);\n"
         << "    adf::source(k" << i << ") = \"" << base_of(n)
         << ".cc\";\n"
         << "    adf::runtime<adf::ratio>(k" << i << ") = 0.9;\n";
    }
    // External port instantiation.
    for (const auto& [edge, dir] : edge_io) {
      const EdgeDesc& e = g_.edges[static_cast<std::size_t>(edge)];
      const std::string n = io_name(edge);
      if (e.settings.rtp) continue;  // RTP ports need no create()
      if (e.settings.io == cgsim::IoKind::gmio) {
        // burst length 256, 1000 MB/s required bandwidth (UG1079 defaults).
        os << "    " << n << " = adf::" << (dir ? "input" : "output")
           << "_gmio::create(\"" << e.attr_or("gmio_name", n)
           << "\", 256, 1000);\n";
      } else {
        os << "    " << n << " = adf::" << (dir ? "input" : "output")
           << "_plio::create(\"" << e.attr_or("plio_name", n) << "\", "
           << plio_width(e.settings) << ", \"data/" << n << ".txt\");\n";
      }
    }
    // Connectivity.
    os << "\n";
    emit_connections(os, edge_io);
    os << "  }\n};\n";
    return os.str();
  }

  /// Top-level simulation driver instantiating the graph, as UG1076's
  /// standalone-graph flow expects.
  std::string gen_graph_main() {
    std::ostringstream os;
    os << "// Generated by cgx: aiesimulator / x86simulator driver for '"
       << g_.name << "'\n#include \"graph.hpp\"\n\n"
       << g_.name << "_aie the_graph;\n\n"
       << "#if defined(__AIESIM__) || defined(__X86SIM__)\n"
       << "int main() {\n"
       << "  the_graph.init();\n"
       << "  the_graph.run(/*iterations=*/16);\n"
       << "  the_graph.end();\n"
       << "  return 0;\n"
       << "}\n"
       << "#endif\n";
    return os.str();
  }

  /// Build rules for AMD's aiecompiler + simulators (UG1076 flow).
  std::string gen_makefile() {
    std::ostringstream os;
    os << "# Generated by cgx: Vitis AIE build flow for graph '" << g_.name
       << "'\n"
       << "# Requires a Vitis installation (aiecompiler on PATH) and a\n"
       << "# Versal platform .xpfm.\n\n"
       << "PLATFORM ?= xilinx_vck190_base_202420_1\n"
       << "WORKDIR  ?= Work\n\n"
       << "SOURCES := graph.cpp";
    for (const auto& [base, site] : bases_) os << " " << base << ".cc";
    os << "\n\nall: $(WORKDIR)/libadf.a\n\n"
       << "$(WORKDIR)/libadf.a: $(SOURCES) graph.hpp kernel_decls.hpp\n"
       << "\taiecompiler --platform=$(PLATFORM) -workdir=$(WORKDIR) \\\n"
       << "\t  --include=. graph.cpp\n\n"
       << "aiesim: all\n"
       << "\taiesimulator --pkg-dir=$(WORKDIR)\n\n"
       << "x86sim: all\n"
       << "\tx86simulator --pkg-dir=$(WORKDIR)\n\n"
       << "clean:\n"
       << "\trm -rf $(WORKDIR) aiesimulator_output x86simulator_output\n\n"
       << ".PHONY: all aiesim x86sim clean\n";
    return os.str();
  }

  /// Edges needing an external interface on the AIE subgraph, with
  /// direction (true = into the AIE array).
  [[nodiscard]] std::vector<std::pair<int, bool>> external_edges() const {
    std::vector<std::pair<int, bool>> out;
    std::set<int> seen;
    for (const KernelDesc* k : aie_kernels_) {
      for (const PortDesc& p : k->ports) {
        const EdgeDesc& e = g_.edges[static_cast<std::size_t>(p.edge)];
        if (e.cls == PortClass::intra_realm) continue;
        if (!seen.insert(p.edge).second) continue;
        out.emplace_back(p.edge, p.is_read);
      }
    }
    return out;
  }

  [[nodiscard]] std::string io_name(int edge) const {
    const EdgeDesc& e = g_.edges[static_cast<std::size_t>(edge)];
    const char* prefix = e.settings.rtp ? "rtp_e"
                         : e.settings.io == cgsim::IoKind::gmio ? "gmio_e"
                                                                : "plio_e";
    return prefix + std::to_string(edge);
  }

  void emit_connections(std::ostringstream& os,
                        const std::vector<std::pair<int, bool>>& edge_io) {
    // Per-kernel-instance in/out slot numbering, in signature order.
    struct Slot {
      std::string ref;
      bool rtp;
    };
    std::vector<std::vector<Slot>> producers(g_.edges.size());
    std::vector<std::vector<Slot>> consumers(g_.edges.size());
    for (std::size_t i = 0; i < aie_kernels_.size(); ++i) {
      int in_slot = 0;
      int out_slot = 0;
      for (const PortDesc& p : aie_kernels_[i]->ports) {
        const auto edge = static_cast<std::size_t>(p.edge);
        const std::string kref = "k" + std::to_string(i);
        if (p.is_read) {
          consumers[edge].push_back(
              Slot{kref + ".in[" + std::to_string(in_slot++) + "]",
                   p.settings.rtp});
        } else {
          producers[edge].push_back(
              Slot{kref + ".out[" + std::to_string(out_slot++) + "]",
                   p.settings.rtp});
        }
      }
    }
    for (const auto& [edge, into_aie] : edge_io) {
      const auto e = static_cast<std::size_t>(edge);
      const std::string n = io_name(edge);
      if (into_aie) {
        producers[e].push_back(Slot{n + (g_.edges[e].settings.rtp
                                             ? ""
                                             : ".out[0]"),
                                    g_.edges[e].settings.rtp});
      } else {
        consumers[e].push_back(Slot{n + (g_.edges[e].settings.rtp
                                             ? ""
                                             : ".in[0]"),
                                    g_.edges[e].settings.rtp});
      }
    }
    for (std::size_t e = 0; e < g_.edges.size(); ++e) {
      const EdgeDesc& ed = g_.edges[e];
      for (const Slot& src : producers[e]) {
        for (const Slot& dst : consumers[e]) {
          if (ed.settings.rtp) {
            os << "    adf::connect<adf::parameter>(" << src.ref
               << ", adf::async(" << dst.ref << "));\n";
          } else if (is_window(ed.settings)) {
            os << "    adf::connect<adf::window<"
               << ed.elem_size << ">>(" << src.ref << ", " << dst.ref
               << ");\n";
          } else {
            os << "    adf::connect<adf::stream>(" << src.ref << ", "
               << dst.ref << ");\n";
          }
        }
      }
    }
  }

  const GraphDesc& g_;
  const SourceFile& file_;
  const ScanResult& scan_;
  CoextractConfig cfg_;
  std::vector<const KernelDesc*> aie_kernels_;
  std::map<std::string, const KernelSite*> sites_;   // instance name -> site
  std::map<std::string, const KernelSite*> bases_;   // base name -> site
  GeneratedProject out_{};
};

}  // namespace

GeneratedProject generate_aie_project(const GraphDesc& graph,
                                      const SourceFile& file,
                                      const ScanResult& scan,
                                      const CoextractConfig& coextract_cfg) {
  return AieCodegen{graph, file, scan, coextract_cfg}.run();
}

std::string aie_port_support_header() {
  return R"(// Generated by cgx: AIE-realm implementation of the cgsim port API.
// The extractor removes co_await from kernel bodies (paper Section 4.4);
// the port types below adapt the resulting synchronous get()/put() calls
// to the native AIE streaming interfaces. Compile with the AMD Vitis
// aiecompiler; this header has no cgsim dependency.
#pragma once

#include <adf.h>

enum class BufferMode { unspecified, stream, window, pingpong };
enum class IoKind { unspecified, plio, gmio };

struct PortSettings {
  int beat_bits = 0;
  bool rtp = false;
  BufferMode buffer = BufferMode::unspecified;
  int window_size = 0;
  IoKind io = IoKind::unspecified;
};

template <class T, PortSettings S = PortSettings{}>
class KernelReadPort {
 public:
  explicit KernelReadPort(input_stream<T>* s) : stream_(s) {}
  explicit KernelReadPort(input_window<T>* w) : window_(w) {}
  explicit KernelReadPort(T rtp) : rtp_value_(rtp) {}

  T get() {
    if (window_) { T v; window_readincr(window_, v); return v; }
    if (stream_) return readincr(stream_);
    return rtp_value_;
  }

  // Bulk read (cgsim get_n): fills the span-like container element by
  // element. Templated so the header needs no <span> in the adf
  // environment; on hardware the whole batch lives in one window.
  template <class Span>
  unsigned get_n(Span out) {
    for (auto& v : out) v = get();
    return static_cast<unsigned>(out.size());
  }

  struct Awaitable { T value; T await_resume() { return value; } };
  Awaitable operator co_await() = delete;  // co_await was removed

 private:
  input_stream<T>* stream_ = nullptr;
  input_window<T>* window_ = nullptr;
  T rtp_value_{};
};

template <class T, PortSettings S = PortSettings{}>
class KernelWritePort {
 public:
  explicit KernelWritePort(output_stream<T>* s) : stream_(s) {}
  explicit KernelWritePort(output_window<T>* w) : window_(w) {}
  explicit KernelWritePort(T* rtp) : rtp_out_(rtp) {}

  void put(const T& v) {
    if (window_) { window_writeincr(window_, v); return; }
    if (stream_) { writeincr(stream_, v); return; }
    *rtp_out_ = v;
  }

  // Bulk write (cgsim put_n): drains the span-like container element by
  // element; see KernelReadPort::get_n.
  template <class Span>
  void put_n(Span in) {
    for (const auto& v : in) put(v);
  }

 private:
  output_stream<T>* stream_ = nullptr;
  output_window<T>* window_ = nullptr;
  T* rtp_out_ = nullptr;
};
)";
}

}  // namespace cgx

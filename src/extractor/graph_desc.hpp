// extractor -- deserialized compute-graph description (paper Section 4.2).
//
// The paper's extractor asks Clang's constexpr interpreter for the value of
// every global annotated with the extract_compute_graph attribute and
// deserializes the flattened structure back into a pointer-based graph.
// This reproduction preserves the same trick with the host toolchain
// available (DESIGN.md substitution #4): the user's translation unit is
// compiled normally -- the compiler's constexpr evaluator has already
// produced the FlatGraph -- and CGSIM_EXTRACTABLE registers the result for
// the extractor, which converts it into the mutable description below.
// Type information is recovered from the serialized per-type vtables, the
// runtime analogue of following the thunk's template arguments.
#pragma once

#include <string>
#include <vector>

#include "core/graph_view.hpp"
#include "core/port_config.hpp"
#include "core/types.hpp"

namespace cgx {

/// Classification of a connection after realm partitioning
/// (paper Section 4.3).
enum class PortClass {
  intra_realm,  ///< both endpoints in one realm
  inter_realm,  ///< crosses realms
  global_io,    ///< enters or leaves the graph
};

[[nodiscard]] constexpr std::string_view port_class_name(PortClass c) {
  switch (c) {
    case PortClass::intra_realm: return "intra-realm";
    case PortClass::inter_realm: return "inter-realm";
    case PortClass::global_io: return "global";
  }
  return "?";
}

struct PortDesc {
  bool is_read = false;
  int edge = -1;
  cgsim::PortSettings settings{};
  int endpoint = -1;
};

struct KernelDesc {
  std::string name;
  cgsim::Realm realm = cgsim::Realm::aie;
  std::vector<PortDesc> ports;
};

struct EdgeDesc {
  std::string type_name;      ///< C++ spelling of the element type
  std::size_t elem_size = 0;  ///< sizeof the element type
  cgsim::PortSettings settings{};
  std::vector<cgsim::Attribute> attrs;
  int n_producers = 0;
  int n_consumers = 0;
  PortClass cls = PortClass::intra_realm;  // filled by partitioning

  /// Looks up a string attribute; returns `def` when absent.
  [[nodiscard]] std::string_view attr_or(std::string_view key,
                                         std::string_view def) const {
    for (const auto& a : attrs) {
      if (!a.is_int && a.key == key) return a.str_value;
    }
    return def;
  }
};

/// A complete, mutable description of one extractable compute graph.
struct GraphDesc {
  std::string name;         ///< name of the constexpr graph variable
  std::string source_path;  ///< file that defines graph and kernels
  std::vector<KernelDesc> kernels;
  std::vector<EdgeDesc> edges;
  std::vector<int> input_edges;
  std::vector<int> output_edges;

  /// Deserializes a flattened graph (paper Section 4.2).
  static GraphDesc from_view(const cgsim::GraphView& g, std::string name,
                             std::string source_path);

  [[nodiscard]] bool is_global_edge(int e) const;
};

/// Computes each connection's PortClass from the kernel realm annotations
/// (paper Section 4.3) and stores it on the edges.
void classify_ports(GraphDesc& g);

/// Kernels of `g` belonging to `realm`, in graph order.
[[nodiscard]] std::vector<const KernelDesc*> kernels_in_realm(
    const GraphDesc& g, cgsim::Realm realm);

/// Distinct realms used by the graph's kernels.
[[nodiscard]] std::vector<cgsim::Realm> realms_of(const GraphDesc& g);

}  // namespace cgx

#include "registry.hpp"

#include <utility>

namespace cgx {

namespace {
std::vector<GraphDesc>& mutable_registry() {
  static std::vector<GraphDesc> g;
  return g;
}
}  // namespace

Registration::Registration(const char* name, const char* file,
                           cgsim::GraphView view) {
  mutable_registry().push_back(GraphDesc::from_view(view, name, file));
}

const std::vector<GraphDesc>& registry() { return mutable_registry(); }

void clear_registry() { mutable_registry().clear(); }

void register_graph(GraphDesc desc) {
  mutable_registry().push_back(std::move(desc));
}

}  // namespace cgx

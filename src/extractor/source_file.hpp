// extractor -- source file loading and location mapping.
//
// The graph extractor (paper Section 4) operates on the original C++
// source text: kernel functions are isolated by cutting their macro
// expansion ranges out of the file (Section 4.4). SourceFile owns the text
// and provides offset <-> line/column mapping for diagnostics.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace cgx {

struct SourceLoc {
  std::size_t offset = 0;
  int line = 1;  // 1-based
  int column = 1;
};

/// A half-open byte range [begin, end) in a source file.
struct SourceRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool contains(std::size_t off) const {
    return off >= begin && off < end;
  }
  [[nodiscard]] bool operator==(const SourceRange&) const = default;
};

/// An in-memory source file with line mapping.
class SourceFile {
 public:
  SourceFile() = default;
  SourceFile(std::string path, std::string text);

  /// Loads `path` from disk; throws std::runtime_error when unreadable.
  static SourceFile load(const std::string& path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::string_view text() const { return text_; }
  [[nodiscard]] std::string_view text(SourceRange r) const {
    return std::string_view{text_}.substr(r.begin, r.size());
  }

  [[nodiscard]] SourceLoc loc(std::size_t offset) const;
  [[nodiscard]] int line_of(std::size_t offset) const {
    return loc(offset).line;
  }

 private:
  void index_lines();

  std::string path_;
  std::string text_;
  std::vector<std::size_t> line_starts_;  // offset of each line start
};

}  // namespace cgx

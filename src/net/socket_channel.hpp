// cgsim::net -- SocketChannel: the channel interface over a stream socket,
// so one edge of a graph can span processes (or hosts).
//
// Each endpoint owns one side of a connected socket and behaves as a
// normal TypedChannel<T> to the kernels bound to it: the producer process
// pushes into its endpoint, the frames cross the wire, and the consumer
// process pops out of its endpoint. Elements must be trivially copyable
// (the same restriction the serialized-graph service imposes -- bytes are
// the wire format).
//
// Throughput model:
//   * pushes stage into an element buffer and leave as ONE data frame per
//     flush (threshold-triggered or explicit), so a bulk put_n crosses the
//     socket as a single writev of [header | payload];
//   * flow control is credit-based: a sender consumes credit bytes per
//     element staged and parks (ChanStatus::blocked) when the window is
//     exhausted; the receiver grants credit back as the application
//     actually pops, so a slow consumer exerts backpressure end-to-end
//     instead of ballooning the receive queue;
//   * end-of-stream and consumer-side closure travel as explicit frames,
//     mapping onto producer_done()/consumer_done() closure semantics.
//
// Concurrency contract: one thread drives an endpoint at a time (the coop
// scheduler thread calling pump(), or the single kernel thread inside
// blocking ops). Cooperative waiters are completed from pump(), which the
// owning event loop calls when the fd turns readable/writable -- the same
// completion protocol CoopChannel uses, with the I/O loop as completer.
#pragma once

#include <cassert>
#include <cstring>
#include <deque>
#include <type_traits>
#include <vector>

#include "../core/channel.hpp"
#include "../core/task.hpp"
#include "frame.hpp"
#include "shm_ring.hpp"
#include "socket.hpp"

namespace cgsim::net {

struct SocketChannelOptions {
  std::size_t flush_threshold = 64 << 10;  ///< staged bytes per data frame
  std::size_t credit_window = 4 << 20;     ///< send budget before parking
  std::size_t credit_refresh = 1 << 20;    ///< popped bytes per credit grant
  std::uint64_t stream = 1;                ///< stream id on the wire
  /// Batches of at least this many bytes take the shm ring (when one is
  /// attached); smaller ones stay on the socket, whose syscall is already
  /// amortized by frame staging.
  std::size_t shm_threshold = 4 << 10;
};

/// One endpoint of a socket-backed channel edge. `consumers` counts LOCAL
/// consumer endpoints (the remote side has its own object).
template <class T>
class SocketChannel final : public TypedChannel<T> {
  static_assert(std::is_trivially_copyable_v<T>,
                "socket channels carry raw bytes; T must be trivially "
                "copyable");
  using Base = TypedChannel<T>;
  using typename Base::BulkPopWaiter;
  using typename Base::BulkPushWaiter;
  using typename Base::PopWaiter;
  using typename Base::PushWaiter;

 public:
  SocketChannel(int consumers, Fd fd, Executor* exec = nullptr,
                SocketChannelOptions opts = {})
      : Base(consumers), fd_(std::move(fd)), exec_(exec), opts_(opts),
        send_credit_(opts.credit_window) {
    assert(consumers <= 1 && "socket channels carry point-to-point edges");
    // The channel is poll-driven throughout (blocking ops park in
    // wait_fd, not in the syscalls): a blocking fd would let writev
    // wedge this thread in the kernel on a full buffer, where the
    // peer's goodbye -- the only thing that could release it -- is
    // invisible.
    set_nonblocking(fd_.get());
    this->popped_.assign(static_cast<std::size_t>(std::max(consumers, 1)),
                         0);
    this->consumers_open_ = consumers;
  }

  ~SocketChannel() override = default;

  [[nodiscard]] int fd() const { return fd_.get(); }

  /// Attaches a negotiated shared-memory plane: `tx` is the ring this
  /// endpoint produces into, `rx` the one it consumes from (views borrowed
  /// from a ShmPlane the caller keeps alive). Bulk pushes of at least
  /// `opts.shm_threshold` bytes then travel the ring; a `data_shm` control
  /// frame on the socket announces each segment, so cross-path ordering
  /// follows socket order. The ring payload is written BEFORE the control
  /// frame is sent, so announced bytes are always already present and the
  /// receiver never waits on the ring.
  void attach_shm(ShmRing tx, ShmRing rx) {
    shm_tx_ = tx;
    shm_rx_ = rx;
    shm_attached_ = true;
  }

  [[nodiscard]] bool shm_attached() const { return shm_attached_; }
  /// Payload bytes that traveled the ring (tx / rx side), for tests and
  /// benchmarks asserting the fast path actually engaged.
  [[nodiscard]] std::uint64_t shm_tx_bytes() const { return shm_tx_bytes_; }
  [[nodiscard]] std::uint64_t shm_rx_bytes() const { return shm_rx_bytes_; }

  // --- cooperative fast path -------------------------------------------

  ChanStatus try_push(const T& v) override {
    ChanStatus st{};
    try_push_n(&v, 1, st);
    return st;
  }

  ChanStatus try_pop(int consumer, T& out) override {
    ChanStatus st{};
    try_pop_n(consumer, &out, 1, st);
    return st;
  }

  std::size_t try_push_n(const T* src, std::size_t n,
                         ChanStatus& st) override {
    if (peer_consumer_closed_ || io_error_) {
      st = ChanStatus::closed;
      return 0;
    }
    const std::size_t budget = send_credit_ / sizeof(T);
    const std::size_t k = std::min(n, budget);
    if (k > 0 && !push_via_shm(src, k)) {
      tx_.insert(tx_.end(), src, src + k);
      send_credit_ -= k * sizeof(T);
      this->pushed_ += k;
      if (tx_.size() * sizeof(T) >= opts_.flush_threshold) flush();
    }
    st = k == n ? ChanStatus::ok : ChanStatus::blocked;
    return k;
  }

  std::size_t try_pop_n(int consumer, T* dst, std::size_t n,
                        ChanStatus& st) override {
    const std::size_t k = std::min(n, rx_total_);
    take(consumer, dst, k);
    if (k == n) {
      st = ChanStatus::ok;
    } else if (pop_closed()) {
      st = ChanStatus::closed;
    } else {
      st = ChanStatus::blocked;
    }
    return k;
  }

  // --- cooperative completion ------------------------------------------

  void add_push_waiter(PushWaiter w) override {
    ChanStatus st{};
    if (try_push_n(w.value, 1, st) == 1 || st == ChanStatus::closed) {
      *w.status = st;
      ready(w.h);
      return;
    }
    push_waiters_.push_back(w);
    ++push_parks_;
  }

  void add_pop_waiter(PopWaiter w) override {
    if (!rx_.empty()) {
      take(w.consumer, w.out, 1);
      *w.status = ChanStatus::ok;
      ready(w.h);
      return;
    }
    if (pop_closed()) {
      *w.status = ChanStatus::closed;
      ready(w.h);
      return;
    }
    pop_waiters_.push_back(w);
  }

  void add_bulk_push_waiter(BulkPushWaiter w) override {
    advance_bulk_push(w);
    if (w.done == w.n) {
      *w.moved = w.n;
      *w.status = ChanStatus::ok;
      ready(w.h);
    } else if (peer_consumer_closed_ || io_error_) {
      *w.moved = w.done;
      *w.status = ChanStatus::closed;
      ready(w.h);
    } else {
      bulk_push_waiters_.push_back(w);
      ++push_parks_;
    }
  }

  void add_bulk_pop_waiter(BulkPopWaiter w) override {
    advance_bulk_pop(w);
    if (w.done == w.n) {
      *w.moved = w.n;
      *w.status = ChanStatus::ok;
      ready(w.h);
    } else if (pop_closed()) {
      *w.moved = w.done;
      *w.status = ChanStatus::closed;
      ready(w.h);
    } else {
      bulk_pop_waiters_.push_back(w);
    }
  }

  // --- blocking (threaded runtime / host-side driver) ------------------

  bool blocking_push(const T& v) override {
    for (;;) {
      ChanStatus st = try_push(v);
      if (st == ChanStatus::ok) return true;
      if (st == ChanStatus::closed) return false;
      flush();                       // free credit can only arrive by wire
      if (io_error_) return false;
      wait_fd(fd_.get(), false, -1);
      pump_fill();
    }
  }

  bool blocking_pop(int consumer, T& out) override {
    for (;;) {
      ChanStatus st = try_pop(consumer, out);
      if (st == ChanStatus::ok) return true;
      if (st == ChanStatus::closed) return false;
      flush();                       // outstanding credit grant, if any
      if (io_error_) return false;
      wait_fd(fd_.get(), false, -1);
      pump_fill();
    }
  }

  // --- closure ----------------------------------------------------------

  void producer_done() override {
    if (--this->producers_open_ == 0) {
      stage_tx_frame();  // staged data must precede eos on the wire
      writer_.frame(FrameType::end_of_stream, opts_.stream, nullptr, 0);
      flush();
    }
  }

  void consumer_done(int consumer) override {
    (void)consumer;
    if (this->consumers_open_ > 0 && --this->consumers_open_ == 0) {
      writer_.frame(FrameType::goodbye, opts_.stream, nullptr, 0);
      flush();
    }
  }

  [[nodiscard]] std::uint64_t push_parks() const override {
    return push_parks_;
  }

  // --- I/O pump (owner loop / tests) ------------------------------------

  /// Drains readable frames and flushes pending output; completes parked
  /// waiters as data, credit or closure arrives. Returns true if any
  /// frame moved in either direction. Nonblocking when the fd is.
  bool pump() {
    const std::uint64_t before =
        reader_.parsed_frames() + writer_.flushed_bytes();
    flush();
    pump_fill();
    return reader_.parsed_frames() + writer_.flushed_bytes() != before;
  }

  /// Frames staged elements and writes as much as the kernel accepts.
  void flush() {
    if (in_flush_) return;  // re-entered via pump_fill -> service_waiters
    stage_tx_frame();
    if (!writer_.empty()) {
      // Zero-copy segments reference tx_; a would_block must not leave
      // them dangling, so retry until the frame fully leaves or the
      // kernel truly refuses. While parked on a full send buffer, drain
      // the read side too: the credit grant that will make the peer
      // resume reading -- or its goodbye, if it stopped for good -- can
      // only arrive by wire, and ignoring it would deadlock both ends.
      in_flush_ = true;
      FrameWriter::IoResult r = writer_.flush(fd_.get());
      while (r == FrameWriter::IoResult::would_block) {
        pump_fill();
        if (peer_consumer_closed_ || io_error_) {
          writer_.clear();  // undeliverable; drop dangling zero-copy refs
          break;
        }
        if (!wait_fd_rw(fd_.get(), 10'000)) {
          r = FrameWriter::IoResult::error;  // peer wedged; give up
          break;
        }
        r = writer_.flush(fd_.get());
      }
      in_flush_ = false;
      if (r == FrameWriter::IoResult::error) {
        writer_.clear();  // drop dangling zero-copy refs before tx_ dies
        mark_error();
      }
    }
    tx_.clear();
    tx_staged_ = false;
  }

  /// Turns the staged element buffer into one queued data frame.
  void stage_tx_frame() {
    if (tx_staged_ || tx_.empty()) return;
    writer_.frame(FrameType::data, opts_.stream, tx_.data(),
                  tx_.size() * sizeof(T));
    tx_staged_ = true;
  }

  [[nodiscard]] bool eos_received() const { return eos_received_; }
  [[nodiscard]] bool failed() const { return io_error_; }
  [[nodiscard]] std::size_t rx_buffered() const { return rx_total_; }

 private:
  /// One in-order slice of received data: socket-delivered elements live
  /// in rx_, ring-delivered ones stay IN the ring until popped (zero-copy
  /// until the final memcpy into the consumer's buffer).
  struct RxSeg {
    bool ring = false;
    std::size_t count = 0;  ///< elements
  };

  [[nodiscard]] bool pop_closed() const {
    return rx_total_ == 0 && (eos_received_ || io_error_);
  }

  /// Ships `k` elements through the shm ring: payload first, then the
  /// announcing data_shm frame on the socket. All-or-nothing -- a full
  /// ring returns false and the batch takes the socket instead (pure
  /// throughput fallback, never a stall).
  bool push_via_shm(const T* src, std::size_t k) {
    const std::size_t nbytes = k * sizeof(T);
    if (!shm_attached_ || nbytes < opts_.shm_threshold) return false;
    if (!shm_tx_.try_write(src, nbytes)) return false;
    // Staged socket data must be framed before the announcement so the
    // receiver sees the two paths in push order. (After the ring write:
    // the fallback path must leave no zero-copy frame referencing tx_.)
    stage_tx_frame();
    shm_tx_bytes_ += nbytes;
    send_credit_ -= nbytes;
    this->pushed_ += k;
    std::string ann;
    put_varint(ann, nbytes);
    writer_.frame_str(FrameType::data_shm, opts_.stream, ann);
    flush();
    return true;
  }

  void ready(std::coroutine_handle<> h) {
    assert(exec_ != nullptr &&
           "cooperative ops on a SocketChannel require an executor");
    exec_->make_ready(h, 0);
  }

  void take(int consumer, T* dst, std::size_t k) {
    std::size_t left = k;
    while (left > 0) {
      RxSeg& seg = rx_segs_.front();
      const std::size_t m = std::min(left, seg.count);
      if (seg.ring) {
        // Announced ring bytes were written before the announcing frame
        // was sent, so they are guaranteed present.
        const bool ok = shm_rx_.try_read_exact(dst, m * sizeof(T));
        assert(ok && "shm protocol violation: announced bytes missing");
        (void)ok;
        shm_rx_bytes_ += m * sizeof(T);
        dst += m;
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          *dst++ = rx_.front();
          rx_.pop_front();
        }
      }
      seg.count -= m;
      left -= m;
      if (seg.count == 0) rx_segs_.pop_front();
    }
    rx_total_ -= k;
    if (k == 0) return;
    this->popped_[static_cast<std::size_t>(consumer)] += k;
    popped_since_grant_ += k * sizeof(T);
    if (popped_since_grant_ >= opts_.credit_refresh) {
      std::string grant;
      put_varint(grant, popped_since_grant_);
      popped_since_grant_ = 0;
      writer_.frame_str(FrameType::credit, opts_.stream, grant);
      flush();
    }
  }

  void advance_bulk_push(BulkPushWaiter& w) {
    ChanStatus st{};
    w.done += try_push_n(w.src + w.done, w.n - w.done, st);
  }

  void advance_bulk_pop(BulkPopWaiter& w) {
    ChanStatus st{};
    w.done += try_pop_n(w.consumer, w.dst + w.done, w.n - w.done, st);
  }

  /// Reads every available frame and applies it.
  void pump_fill() {
    if (io_error_) return;
    for (;;) {
      FrameView f;
      std::string err;
      switch (reader_.next(f, &err)) {
        case FrameReader::ParseResult::frame:
          apply(f);
          continue;
        case FrameReader::ParseResult::corrupt:
          mark_error();
          return;
        case FrameReader::ParseResult::need_more:
          break;
      }
      // Only read when data is pending: on a blocking fd a bare readv of
      // a drained socket would wedge this thread (poll(0) costs nothing
      // on the nonblocking epoll path, which would get EAGAIN anyway).
      if (!wait_fd(fd_.get(), false, 0)) break;
      const auto io = reader_.fill(fd_.get());
      if (io == FrameReader::IoResult::would_block) break;
      if (io == FrameReader::IoResult::eof ||
          io == FrameReader::IoResult::error) {
        // A clean EOF after end_of_stream is normal teardown; anything
        // else is a failure that must release parked kernels.
        if (!(io == FrameReader::IoResult::eof && eos_received_)) {
          mark_error();
        }
        break;
      }
    }
    service_waiters();
  }

  void apply(const FrameView& f) {
    switch (f.type) {
      case FrameType::data: {
        const std::size_t count = f.payload.size() / sizeof(T);
        for (std::size_t i = 0; i < count; ++i) {
          T v;
          std::memcpy(&v, f.payload.data() + i * sizeof(T), sizeof(T));
          rx_.push_back(v);
        }
        append_seg(false, count);
        break;
      }
      case FrameType::data_shm: {
        const std::byte* p = f.payload.data();
        std::uint64_t nbytes = 0;
        if (shm_attached_ &&
            get_varint(p, p + f.payload.size(), nbytes) &&
            nbytes % sizeof(T) == 0) {
          append_seg(true, static_cast<std::size_t>(nbytes) / sizeof(T));
        } else {
          mark_error();  // announcement without a ring (or torn): fatal
        }
        break;
      }
      case FrameType::credit: {
        const std::byte* p = f.payload.data();
        std::uint64_t grant = 0;
        if (get_varint(p, p + f.payload.size(), grant)) {
          send_credit_ += static_cast<std::size_t>(grant);
        }
        break;
      }
      case FrameType::end_of_stream:
        eos_received_ = true;
        break;
      case FrameType::goodbye:
        peer_consumer_closed_ = true;
        break;
      default:
        break;  // unknown frame types are ignored (forward compat)
    }
  }

  /// Completes every parked waiter whose operation became possible (or
  /// terminally impossible).
  void service_waiters() {
    while (!pop_waiters_.empty() && (!rx_.empty() || pop_closed())) {
      PopWaiter w = pop_waiters_.front();
      pop_waiters_.pop_front();
      if (!rx_.empty()) {
        take(w.consumer, w.out, 1);
        *w.status = ChanStatus::ok;
      } else {
        *w.status = ChanStatus::closed;
      }
      ready(w.h);
    }
    while (!bulk_pop_waiters_.empty() &&
           (!rx_.empty() || pop_closed())) {
      BulkPopWaiter& w = bulk_pop_waiters_.front();
      advance_bulk_pop(w);
      if (w.done == w.n || pop_closed()) {
        *w.moved = w.done;
        *w.status = w.done == w.n ? ChanStatus::ok : ChanStatus::closed;
        ready(w.h);
        bulk_pop_waiters_.pop_front();
      } else {
        break;  // partial fill; stay parked for the next frame
      }
    }
    while (!push_waiters_.empty() &&
           (send_credit_ >= sizeof(T) || peer_consumer_closed_ ||
            io_error_)) {
      PushWaiter w = push_waiters_.front();
      push_waiters_.pop_front();
      ChanStatus st{};
      if (try_push_n(w.value, 1, st) == 1) {
        *w.status = ChanStatus::ok;
      } else {
        *w.status = ChanStatus::closed;
      }
      ready(w.h);
    }
    while (!bulk_push_waiters_.empty() &&
           (send_credit_ >= sizeof(T) || peer_consumer_closed_ ||
            io_error_)) {
      BulkPushWaiter& w = bulk_push_waiters_.front();
      advance_bulk_push(w);
      if (w.done == w.n) {
        *w.moved = w.n;
        *w.status = ChanStatus::ok;
        ready(w.h);
        bulk_push_waiters_.pop_front();
      } else if (peer_consumer_closed_ || io_error_) {
        *w.moved = w.done;
        *w.status = ChanStatus::closed;
        ready(w.h);
        bulk_push_waiters_.pop_front();
      } else {
        break;
      }
    }
  }

  void append_seg(bool ring, std::size_t count) {
    if (count == 0) return;
    if (!rx_segs_.empty() && rx_segs_.back().ring == ring) {
      rx_segs_.back().count += count;  // merge: adjacent same-path slices
    } else {
      rx_segs_.push_back(RxSeg{ring, count});
    }
    rx_total_ += count;
  }

  void mark_error() {
    io_error_ = true;
    service_waiters();  // release everyone with closed
  }

  Fd fd_;
  Executor* exec_;
  SocketChannelOptions opts_;
  FrameWriter writer_;
  FrameReader reader_;
  std::vector<T> tx_;           ///< staged outgoing elements
  bool tx_staged_ = false;      ///< tx_ already queued as a data frame
  bool in_flush_ = false;       ///< reentry guard (pump_fill -> waiters)
  std::deque<T> rx_;            ///< socket-received, not yet popped
  std::deque<RxSeg> rx_segs_;   ///< in-order map of rx_ + ring residency
  std::size_t rx_total_ = 0;    ///< total poppable elements (both paths)
  ShmRing shm_tx_;              ///< produce side of the attached plane
  ShmRing shm_rx_;              ///< consume side of the attached plane
  bool shm_attached_ = false;
  std::uint64_t shm_tx_bytes_ = 0;
  std::uint64_t shm_rx_bytes_ = 0;
  std::size_t send_credit_;     ///< bytes we may still stage
  std::size_t popped_since_grant_ = 0;
  bool eos_received_ = false;
  bool peer_consumer_closed_ = false;
  bool io_error_ = false;
  std::uint64_t push_parks_ = 0;
  std::deque<PushWaiter> push_waiters_;
  std::deque<PopWaiter> pop_waiters_;
  std::deque<BulkPushWaiter> bulk_push_waiters_;
  std::deque<BulkPopWaiter> bulk_pop_waiters_;
};

}  // namespace cgsim::net

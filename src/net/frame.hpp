// cgsim::net -- length-framed binary wire protocol (the channel/service
// transport).
//
// A connection is a stream of frames:
//
//   +------+-------+-------------+---------------+------------+---------+
//   | type | flags | stream id   | payload len   | header crc | payload |
//   | u8   | u8    | varint u64  | varint u64    | u32 LE     | bytes   |
//   +------+-------+-------------+---------------+------------+---------+
//
// The header CRC (CRC-32, reflected 0xEDB88320) covers every header byte
// before it, so a desynchronized or corrupted stream is detected at the
// frame boundary instead of producing a garbage length that runs away
// with the parser. Payload integrity is delegated to the transport (TCP /
// AF_UNIX are reliable); kFlagPayloadCrc appends a payload CRC for
// transports that want it end-to-end.
//
// Throughput comes from batching, not from per-frame cleverness:
//   * FrameWriter queues any number of frames and flushes them with one
//     writev() -- headers live in an append-only arena, bulk payloads are
//     referenced in place (zero copy), so a put_n of 64k elements crosses
//     the socket as one syscall with two iovecs;
//   * FrameReader refills with one readv() into its parse buffer plus a
//     spill buffer, then yields complete frames without copying payloads
//     (FrameView borrows into the buffer until the next fill()).
//
// The handshake is versioned: both sides open with a `hello` frame
// carrying magic, protocol version and a feature bitmap; a version
// mismatch is an explicit `reject` frame, not a silent desync.
#pragma once

#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "socket.hpp"

namespace cgsim::net {

// ---------------------------------------------------------------------------
// varint (LEB128) + CRC-32.
// ---------------------------------------------------------------------------

/// Appends `v` as a base-128 varint (1..10 bytes).
inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Reads a varint from `p..end`; advances `p`. Returns false on truncation
/// or a varint wider than 64 bits.
inline bool get_varint(const std::byte*& p, const std::byte* end,
                       std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (p == end) return false;
    const auto b = static_cast<std::uint8_t>(*p++);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;
}

namespace detail {
struct Crc32Table {
  std::array<std::uint32_t, 256> t{};
  constexpr Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};
inline constexpr Crc32Table crc32_table{};
}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n,
                                         std::uint32_t seed = 0) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::crc32_table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return ~c;
}

// ---------------------------------------------------------------------------
// Frame types + handshake.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kWireMagic = 0x4347534eu;  // "CGSN"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kMaxFrameLen = 64u << 20;  ///< parser sanity cap

enum class FrameType : std::uint8_t {
  hello = 1,        ///< handshake open: magic, version, features
  hello_ack = 2,    ///< handshake accept: version, features
  reject = 3,       ///< handshake refuse: string reason (then close)
  data = 4,         ///< channel payload: raw elements
  end_of_stream = 5,///< producer side is done (channel close)
  credit = 6,       ///< flow control: varint bytes granted
  open_session = 7, ///< service: mode + serialized graph
  open_ack = 8,     ///< service: accepted, varint input credit
  input_chunk = 9,  ///< service: varint input idx + element bytes
  rtp_update = 10,  ///< service: varint input idx + one element
  finish_inputs = 11,  ///< service: end-of-stream on every input; run
  output_chunk = 12,   ///< service: varint output idx + element bytes
  session_result = 13, ///< service: digest / cycles / warm flags
  session_error = 14,  ///< service: string message (session survives conn)
  close_session = 15,  ///< service: free server-side session state
  goodbye = 16,        ///< orderly connection shutdown
  // Shared-memory data plane (negotiated via kFeatureShm). Control frames
  // stay on the socket; the payload bytes they announce travel through
  // the shm ring (written BEFORE the frame is sent, so the receiver never
  // waits on the ring).
  shm_setup = 17,   ///< client: varint ring bytes + segment name
  shm_ack = 18,     ///< server: u8 accepted (0: fall back to the wire)
  shm_chunk = 19,   ///< input_chunk via ring: varint idx + varint nbytes
  shm_rtp = 20,     ///< rtp_update via ring: varint idx + varint nbytes
  shm_output = 21,  ///< output_chunk via ring: varint idx + varint nbytes
  data_shm = 22,    ///< channel elements via ring: varint element count
};

inline constexpr std::uint8_t kFlagPayloadCrc = 0x1;

/// Handshake feature bits (Hello::features). The server acks the subset it
/// accepts; a feature is active only when both sides agreed.
inline constexpr std::uint32_t kFeatureShm = 0x1;

/// Decoded frame header + borrowed payload (valid until the reader's next
/// fill()).
struct FrameView {
  FrameType type{};
  std::uint8_t flags = 0;
  std::uint64_t stream = 0;
  std::span<const std::byte> payload{};
};

/// Serialized hello/hello_ack payload.
struct Hello {
  std::uint32_t magic = kWireMagic;
  std::uint16_t version = kWireVersion;
  std::uint32_t features = 0;

  [[nodiscard]] std::string encode() const {
    std::string s;
    put_varint(s, magic);
    put_varint(s, version);
    put_varint(s, features);
    return s;
  }
  [[nodiscard]] static bool decode(std::span<const std::byte> p, Hello& h) {
    const std::byte* it = p.data();
    const std::byte* end = it + p.size();
    std::uint64_t magic = 0, version = 0, features = 0;
    if (!get_varint(it, end, magic) || !get_varint(it, end, version) ||
        !get_varint(it, end, features)) {
      return false;
    }
    h.magic = static_cast<std::uint32_t>(magic);
    h.version = static_cast<std::uint16_t>(version);
    h.features = static_cast<std::uint32_t>(features);
    return true;
  }
};

// ---------------------------------------------------------------------------
// FrameWriter: queue frames, flush with one writev().
// ---------------------------------------------------------------------------

/// Queues frames for a single file descriptor and flushes them in batches.
/// Small payloads are copied into the header arena (one contiguous iovec
/// per run of small frames); payloads at or above the zero-copy threshold
/// are referenced in place -- the caller must keep them alive until
/// flush() returns (bulk channel ops flush before returning for exactly
/// that reason).
class FrameWriter {
 public:
  explicit FrameWriter(std::size_t zero_copy_threshold = 1024)
      : zc_threshold_(zero_copy_threshold) {}

  /// Queues one frame. `copy == false` only borrows `payload`.
  void frame(FrameType type, std::uint64_t stream, const void* payload,
             std::size_t n, std::uint8_t flags = 0) {
    std::string hdr;
    hdr.reserve(24);
    hdr.push_back(static_cast<char>(type));
    hdr.push_back(static_cast<char>(flags));
    put_varint(hdr, stream);
    put_varint(hdr, n);
    const std::uint32_t crc = crc32(hdr.data(), hdr.size());
    append_u32(hdr, crc);
    append_arena(hdr.data(), hdr.size());
    if (n > 0) {
      if (n < zc_threshold_) {
        append_arena(payload, n);
      } else {
        segs_.push_back(Seg{0, n, payload});
      }
    }
    if ((flags & kFlagPayloadCrc) != 0) {
      std::string tail;
      append_u32(tail, crc32(payload, n));
      append_arena(tail.data(), tail.size());
    }
    ++queued_frames_;
    queued_bytes_ += hdr.size() + n;
  }

  void frame_str(FrameType type, std::uint64_t stream,
                 const std::string& payload, std::uint8_t flags = 0) {
    frame(type, stream, payload.data(), payload.size(), flags);
  }

  [[nodiscard]] bool empty() const { return segs_.empty(); }
  [[nodiscard]] std::size_t pending_bytes() const { return queued_bytes_; }
  [[nodiscard]] std::size_t pending_frames() const { return queued_frames_; }
  [[nodiscard]] std::uint64_t flushed_bytes() const { return flushed_bytes_; }
  [[nodiscard]] std::uint64_t writev_calls() const { return writev_calls_; }

  enum class IoResult : std::uint8_t { ok, would_block, error };

  /// Writes every queued frame with as few writev() calls as possible.
  /// On would_block (nonblocking fd, kernel buffer full) the consumed
  /// prefix is dropped and the remainder stays queued; call again when the
  /// fd turns writable. Zero-copy payload segments survive a would_block
  /// in place, so their backing storage must outlive the retry.
  IoResult flush(int fd) {
    while (cursor_seg_ < segs_.size()) {
      iovec iov[kMaxIov];
      int n_iov = 0;
      std::size_t bytes = 0;
      for (std::size_t s = cursor_seg_;
           s < segs_.size() && n_iov < kMaxIov; ++s) {
        const Seg& seg = segs_[s];
        const std::size_t skip = s == cursor_seg_ ? cursor_off_ : 0;
        const auto* base =
            seg.ext != nullptr
                ? static_cast<const std::byte*>(seg.ext)
                : reinterpret_cast<const std::byte*>(arena_.data()) + seg.off;
        iov[n_iov].iov_base =
            const_cast<std::byte*>(base + skip);  // NOLINT: writev API
        iov[n_iov].iov_len = seg.len - skip;
        bytes += iov[n_iov].iov_len;
        ++n_iov;
      }
      const ssize_t w = ::writev(fd, iov, n_iov);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          return IoResult::would_block;
        }
        return IoResult::error;
      }
      ++writev_calls_;
      flushed_bytes_ += static_cast<std::uint64_t>(w);
      advance(static_cast<std::size_t>(w));
    }
    clear();
    return IoResult::ok;
  }

  /// Drops all queued frames (connection teardown).
  void clear() {
    arena_.clear();
    segs_.clear();
    cursor_seg_ = 0;
    cursor_off_ = 0;
    queued_bytes_ = 0;
    queued_frames_ = 0;
  }

 private:
  static constexpr int kMaxIov = 64;

  struct Seg {
    std::size_t off;   ///< offset into arena_ (internal segments)
    std::size_t len;
    const void* ext;   ///< non-null: external zero-copy payload
  };

  static void append_u32(std::string& s, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  /// Appends bytes to the header arena, extending the previous arena
  /// segment when contiguous so consecutive small frames collapse into
  /// one iovec.
  void append_arena(const void* data, std::size_t n) {
    const std::size_t off = arena_.size();
    arena_.append(static_cast<const char*>(data), n);
    if (!segs_.empty() && segs_.back().ext == nullptr &&
        segs_.back().off + segs_.back().len == off &&
        cursor_seg_ < segs_.size()) {
      segs_.back().len += n;
    } else {
      segs_.push_back(Seg{off, n, nullptr});
    }
  }

  void advance(std::size_t n) {
    while (n > 0 && cursor_seg_ < segs_.size()) {
      const std::size_t left = segs_[cursor_seg_].len - cursor_off_;
      if (n < left) {
        cursor_off_ += n;
        return;
      }
      n -= left;
      ++cursor_seg_;
      cursor_off_ = 0;
    }
  }

  std::string arena_;       ///< headers + copied small payloads
  std::vector<Seg> segs_;
  std::size_t cursor_seg_ = 0;  ///< flush progress: segment index
  std::size_t cursor_off_ = 0;  ///< flush progress: offset into segment
  std::size_t zc_threshold_;
  std::size_t queued_bytes_ = 0;
  std::size_t queued_frames_ = 0;
  std::uint64_t flushed_bytes_ = 0;
  std::uint64_t writev_calls_ = 0;
};

// ---------------------------------------------------------------------------
// FrameReader: readv refills, incremental parse.
// ---------------------------------------------------------------------------

/// Buffered frame parser over a file descriptor. fill() performs one
/// readv() into the main buffer plus a fixed spill buffer (scatter-gather:
/// a burst larger than the primary capacity still lands in one syscall);
/// next() yields complete frames, whose payload views stay valid until the
/// following fill().
class FrameReader {
 public:
  explicit FrameReader(std::size_t initial_capacity = 64 << 10)
      : buf_(initial_capacity) {}

  enum class IoResult : std::uint8_t { ok, would_block, eof, error };

  /// One readv() worth of bytes. `ok` means at least one byte arrived.
  IoResult fill(int fd) {
    compact();
    if (buf_.size() - wr_ < kMinHeadroom) buf_.resize(buf_.size() * 2);
    std::array<std::byte, kSpillBytes> spill;
    iovec iov[2];
    iov[0].iov_base = buf_.data() + wr_;
    iov[0].iov_len = buf_.size() - wr_;
    iov[1].iov_base = spill.data();
    iov[1].iov_len = spill.size();
    ssize_t r;
    do {
      r = ::readv(fd, iov, 2);
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
      return errno == EAGAIN || errno == EWOULDBLOCK ? IoResult::would_block
                                                     : IoResult::error;
    }
    if (r == 0) return IoResult::eof;
    ++readv_calls_;
    received_bytes_ += static_cast<std::uint64_t>(r);
    const auto got = static_cast<std::size_t>(r);
    const std::size_t main_part = std::min(got, buf_.size() - wr_);
    wr_ += main_part;
    if (got > main_part) {
      const std::size_t extra = got - main_part;
      buf_.resize(std::max(buf_.size() * 2, wr_ + extra));
      std::memcpy(buf_.data() + wr_, spill.data(), extra);
      wr_ += extra;
    }
    return IoResult::ok;
  }

  enum class ParseResult : std::uint8_t { frame, need_more, corrupt };

  /// Parses the next complete frame out of the buffer. `frame` hands out
  /// views into the buffer (stable until the next fill()).
  ParseResult next(FrameView& out, std::string* error = nullptr) {
    const std::byte* base = buf_.data() + rd_;
    const std::byte* end = buf_.data() + wr_;
    if (end - base < 2) return ParseResult::need_more;
    const std::byte* p = base + 2;
    std::uint64_t stream = 0, len = 0;
    if (!get_varint(p, end, stream) || !get_varint(p, end, len)) {
      return ParseResult::need_more;
    }
    if (len > kMaxFrameLen) {
      if (error != nullptr) *error = "frame length exceeds cap";
      return ParseResult::corrupt;
    }
    if (end - p < 4) return ParseResult::need_more;
    std::uint32_t want_crc = 0;
    std::memcpy(&want_crc, p, 4);  // LE on every supported target
    const std::uint32_t got_crc =
        crc32(base, static_cast<std::size_t>(p - base));
    if (want_crc != got_crc) {
      if (error != nullptr) *error = "frame header CRC mismatch";
      return ParseResult::corrupt;
    }
    p += 4;
    const auto flags = static_cast<std::uint8_t>(base[1]);
    const std::size_t tail = (flags & kFlagPayloadCrc) != 0 ? 4 : 0;
    if (static_cast<std::size_t>(end - p) < len + tail) {
      return ParseResult::need_more;
    }
    if (tail != 0) {
      std::uint32_t want_pcrc = 0;
      std::memcpy(&want_pcrc, p + len, 4);
      if (want_pcrc != crc32(p, len)) {
        if (error != nullptr) *error = "frame payload CRC mismatch";
        return ParseResult::corrupt;
      }
    }
    out.type = static_cast<FrameType>(base[0]);
    out.flags = flags;
    out.stream = stream;
    out.payload = std::span<const std::byte>{p, static_cast<std::size_t>(len)};
    rd_ = static_cast<std::size_t>(p - buf_.data()) + len + tail;
    ++parsed_frames_;
    return ParseResult::frame;
  }

  [[nodiscard]] std::size_t buffered_bytes() const { return wr_ - rd_; }
  [[nodiscard]] std::uint64_t received_bytes() const {
    return received_bytes_;
  }
  [[nodiscard]] std::uint64_t readv_calls() const { return readv_calls_; }
  [[nodiscard]] std::uint64_t parsed_frames() const { return parsed_frames_; }

 private:
  static constexpr std::size_t kMinHeadroom = 4 << 10;
  static constexpr std::size_t kSpillBytes = 64 << 10;

  /// Reclaims consumed prefix. Only called from fill(), so no outstanding
  /// FrameView can be invalidated mid-parse.
  void compact() {
    if (rd_ == 0) return;
    if (rd_ == wr_) {
      rd_ = wr_ = 0;
      return;
    }
    std::memmove(buf_.data(), buf_.data() + rd_, wr_ - rd_);
    wr_ -= rd_;
    rd_ = 0;
  }

  std::vector<std::byte> buf_;
  std::size_t rd_ = 0;
  std::size_t wr_ = 0;
  std::uint64_t received_bytes_ = 0;
  std::uint64_t readv_calls_ = 0;
  std::uint64_t parsed_frames_ = 0;
};

// ---------------------------------------------------------------------------
// Blocking handshake helpers (client side / tests; the daemon's epoll loop
// handles hello inline in its state machine).
// ---------------------------------------------------------------------------

/// Sends `hello`, waits for `hello_ack`. Throws on reject or version skew.
/// Returns the feature subset the server acknowledged (old servers echo 0,
/// so requested features degrade to off rather than failing).
inline std::uint32_t client_handshake(int fd, FrameWriter& w, FrameReader& r,
                                      std::uint32_t features = 0) {
  const std::string h = Hello{kWireMagic, kWireVersion, features}.encode();
  w.frame_str(FrameType::hello, 0, h);
  if (w.flush(fd) != FrameWriter::IoResult::ok) {
    throw std::runtime_error{"handshake: flush failed"};
  }
  for (;;) {
    FrameView f;
    std::string err;
    const auto pr = r.next(f, &err);
    if (pr == FrameReader::ParseResult::corrupt) {
      throw std::runtime_error{"handshake: " + err};
    }
    if (pr == FrameReader::ParseResult::frame) {
      if (f.type == FrameType::reject) {
        throw std::runtime_error{
            "handshake rejected: " +
            std::string{reinterpret_cast<const char*>(f.payload.data()),
                        f.payload.size()}};
      }
      if (f.type != FrameType::hello_ack) {
        throw std::runtime_error{"handshake: unexpected frame"};
      }
      Hello ack;
      if (!Hello::decode(f.payload, ack) || ack.magic != kWireMagic ||
          ack.version != kWireVersion) {
        throw std::runtime_error{"handshake: bad hello_ack"};
      }
      return ack.features & features;
    }
    const auto io = r.fill(fd);
    if (io == FrameReader::IoResult::eof ||
        io == FrameReader::IoResult::error) {
      throw std::runtime_error{"handshake: connection lost"};
    }
    if (io == FrameReader::IoResult::would_block) {
      wait_fd(fd, false, -1);
    }
  }
}

}  // namespace cgsim::net

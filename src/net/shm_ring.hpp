// cgsim::net -- zero-copy shared-memory data plane for same-host peers.
//
// A ShmSegment is a POSIX shared-memory mapping (anonymous memfd for
// in-process use, named shm_open for cross-process negotiation over a
// socket: the initiator creates a named segment, ships the name in a
// control frame, and unlinks it once the peer has mapped it -- the
// mapping keeps the pages alive, the name does not outlive the
// handshake).
//
// Inside a segment lives a pair of lock-free SPSC byte rings (one per
// direction, see ShmPlane). Each ring is a classic monotonic-cursor
// design: `head` counts bytes ever produced, `tail` bytes ever consumed,
// both on their own cache line; data lands at cursor % capacity with at
// most two memcpys per transfer (wrap). Blocking ops park in a futex
// eventcount (seq word + waiter flag, seq-cst Dekker handoff) so an idle
// side costs nothing; an optional eventfd doorbell lets an epoll-driven
// consumer get readiness through its event loop instead of a futex.
//
// Protocol contract with the socket layer: payload bytes are written to
// the ring FIRST, the (tiny) control frame announcing them goes over the
// socket SECOND. The receiver therefore never waits on the ring -- by the
// time the control frame parses, the bytes are guaranteed present -- and
// ring occupancy is bounded by the credit window the socket layer already
// enforces.
#pragma once

#include <linux/futex.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <new>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "frame.hpp"
#include "socket.hpp"

namespace cgsim::net {

// ---------------------------------------------------------------------------
// Futex eventcount.
// ---------------------------------------------------------------------------

namespace shm_detail {

inline long futex_call(std::atomic<std::uint32_t>* addr, int op,
                       std::uint32_t val, const timespec* timeout) {
  return ::syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(addr), op, val,
                   timeout, nullptr, 0);
}

inline void futex_wake_all(std::atomic<std::uint32_t>* addr) {
  (void)futex_call(addr, FUTEX_WAKE, INT32_MAX, nullptr);
}

/// Waits while `*addr == expected`, up to `timeout_ms` (-1: forever).
inline void futex_wait(std::atomic<std::uint32_t>* addr,
                       std::uint32_t expected, int timeout_ms) {
  timespec ts{};
  timespec* tp = nullptr;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1'000'000;
    tp = &ts;
  }
  (void)futex_call(addr, FUTEX_WAIT, expected, tp);  // EAGAIN/EINTR: recheck
}

}  // namespace shm_detail

// ---------------------------------------------------------------------------
// Shared segment.
// ---------------------------------------------------------------------------

/// RAII shared-memory mapping. Move-only. Created anonymously (memfd) for
/// in-process planes or with a /dev/shm name for the socket handshake.
class ShmSegment {
 public:
  ShmSegment() = default;
  ShmSegment(ShmSegment&& o) noexcept { *this = std::move(o); }
  ShmSegment& operator=(ShmSegment&& o) noexcept {
    if (this != &o) {
      unmap();
      base_ = std::exchange(o.base_, nullptr);
      size_ = std::exchange(o.size_, 0);
      name_ = std::exchange(o.name_, {});
    }
    return *this;
  }
  ShmSegment(const ShmSegment&) = delete;
  ShmSegment& operator=(const ShmSegment&) = delete;
  ~ShmSegment() { unmap(); }

  /// Anonymous segment for in-process planes (both "sides" share the one
  /// mapping).
  static ShmSegment create_anon(std::size_t bytes) {
    Fd fd{static_cast<int>(
        ::syscall(SYS_memfd_create, "cgsim-shm", 0u))};
    if (!fd.valid()) throw_errno("memfd_create");
    return map_fd(fd.get(), bytes, /*truncate=*/true, {});
  }

  /// Named segment for the cross-process handshake. The name is unique to
  /// this process + call; the caller unlinks once the peer attached.
  static ShmSegment create_named(std::size_t bytes) {
    static std::atomic<std::uint32_t> counter{0};
    char name[64];
    std::snprintf(name, sizeof(name), "/cgsim-%d-%u",
                  static_cast<int>(::getpid()),
                  counter.fetch_add(1, std::memory_order_relaxed));
    const int raw = ::shm_open(name, O_CREAT | O_EXCL | O_RDWR, 0600);
    if (raw < 0) throw_errno("shm_open(create)");
    Fd fd{raw};
    ShmSegment s = map_fd(fd.get(), bytes, /*truncate=*/true, name);
    return s;
  }

  /// Attaches to a peer's named segment (validated by the caller against
  /// the negotiated layout). Throws when the name does not resolve --
  /// which is exactly what happens for a remote (different-host) peer, and
  /// is reported as a negotiation failure, not an error.
  static ShmSegment open_named(const std::string& name) {
    const int raw = ::shm_open(name.c_str(), O_RDWR, 0);
    if (raw < 0) throw_errno("shm_open(attach)");
    Fd fd{raw};
    struct stat st{};
    if (::fstat(fd.get(), &st) != 0) throw_errno("fstat(shm)");
    return map_fd(fd.get(), static_cast<std::size_t>(st.st_size),
                  /*truncate=*/false, name);
  }

  /// Removes the /dev/shm name (mappings stay alive). Idempotent.
  void unlink_name() {
    if (!name_.empty()) {
      ::shm_unlink(name_.c_str());
      name_.clear();
    }
  }

  [[nodiscard]] std::byte* data() const {
    return static_cast<std::byte*>(base_);
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool valid() const { return base_ != nullptr; }

 private:
  static ShmSegment map_fd(int fd, std::size_t bytes, bool truncate,
                           std::string name) {
    if (truncate && ::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      if (!name.empty()) ::shm_unlink(name.c_str());
      throw_errno("ftruncate(shm)");
    }
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                     0);
    if (p == MAP_FAILED) {
      if (!name.empty()) ::shm_unlink(name.c_str());
      throw_errno("mmap(shm)");
    }
    ShmSegment s;
    s.base_ = p;
    s.size_ = bytes;
    s.name_ = std::move(name);
    return s;
  }

  void unmap() {
    if (base_ != nullptr) {
      ::munmap(base_, size_);
      base_ = nullptr;
      size_ = 0;
    }
  }

  void* base_ = nullptr;
  std::size_t size_ = 0;
  std::string name_;  ///< non-empty until unlink_name()
};

// ---------------------------------------------------------------------------
// SPSC byte ring.
// ---------------------------------------------------------------------------

/// Shared-memory ring header. Lives inside the segment; producer and
/// consumer cursors are cache-line separated so the two sides never
/// false-share.
struct alignas(64) ShmRingHdr {
  std::atomic<std::uint64_t> head{0};  ///< bytes ever produced
  char pad0[56];
  std::atomic<std::uint64_t> tail{0};  ///< bytes ever consumed
  char pad1[56];
  std::atomic<std::uint32_t> data_seq{0};    ///< bumped on publish
  std::atomic<std::uint32_t> space_seq{0};   ///< bumped on consume
  std::atomic<std::uint32_t> data_waiter{0};
  std::atomic<std::uint32_t> space_waiter{0};
  std::atomic<std::uint32_t> doorbell_armed{0};
  std::uint32_t pad2{0};
  std::uint64_t capacity{0};  ///< data bytes, power of two
};
static_assert(sizeof(ShmRingHdr) == 192);

/// Non-owning SPSC view over one (header, data) region. Exactly one
/// producer thread and one consumer thread may touch a ring; which role a
/// view plays is the caller's contract (ShmPlane hands out tx/rx pairs).
class ShmRing {
 public:
  ShmRing() = default;
  ShmRing(ShmRingHdr* h, std::byte* data) : h_(h), data_(data) {}

  /// Formats a fresh ring in place (initiator side only).
  static void init(ShmRingHdr* h, std::uint64_t capacity) {
    new (h) ShmRingHdr{};
    h->capacity = capacity;
  }

  [[nodiscard]] bool valid() const { return h_ != nullptr; }
  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(h_->capacity);
  }
  [[nodiscard]] std::size_t readable() const {
    return static_cast<std::size_t>(
        h_->head.load(std::memory_order_acquire) -
        h_->tail.load(std::memory_order_acquire));
  }
  [[nodiscard]] std::size_t free_bytes() const {
    return capacity() - readable();
  }

  // --- producer side ------------------------------------------------------

  /// All-or-nothing nonblocking write.
  bool try_write(const void* src, std::size_t n) {
    if (n > free_bytes()) return false;
    const std::uint64_t head = h_->head.load(std::memory_order_relaxed);
    copy_in(head, src, n);
    h_->head.store(head + n, std::memory_order_seq_cst);
    wake_consumer();
    return true;
  }

  /// Blocking write: parks in the futex while the consumer catches up.
  /// Returns false on timeout (`timeout_ms` < 0: wait forever). `n` may
  /// exceed the free space but not the capacity.
  bool write_all(const void* src, std::size_t n, int timeout_ms = -1) {
    const auto* p = static_cast<const std::byte*>(src);
    while (n > 0) {
      const std::size_t chunk = std::min(n, capacity());
      if (!wait_for_space(chunk, timeout_ms)) return false;
      const std::uint64_t head = h_->head.load(std::memory_order_relaxed);
      copy_in(head, p, chunk);
      h_->head.store(head + chunk, std::memory_order_seq_cst);
      wake_consumer();
      p += chunk;
      n -= chunk;
    }
    return true;
  }

  /// Arms the producer-side eventfd doorbell: after every publish, if the
  /// consumer flagged interest (arm_doorbell), one event is written so an
  /// epoll loop wakes without a futex. The fd is process-local.
  void set_doorbell_fd(int fd) { doorbell_fd_ = fd; }

  // --- consumer side ------------------------------------------------------

  /// All-or-nothing nonblocking read of exactly `n` bytes. The service
  /// protocol guarantees announced bytes are present, so a false return
  /// there is a protocol violation, not a retry condition.
  bool try_read_exact(void* dst, std::size_t n) {
    if (readable() < n) return false;
    const std::uint64_t tail = h_->tail.load(std::memory_order_relaxed);
    copy_out(tail, dst, n);
    h_->tail.store(tail + n, std::memory_order_seq_cst);
    wake_producer();
    return true;
  }

  /// Blocking read of exactly `n` bytes; false on timeout.
  bool read_all(void* dst, std::size_t n, int timeout_ms = -1) {
    auto* p = static_cast<std::byte*>(dst);
    while (n > 0) {
      const std::size_t chunk = std::min(n, capacity());
      if (!wait_for_data(chunk, timeout_ms)) return false;
      const std::uint64_t tail = h_->tail.load(std::memory_order_relaxed);
      copy_out(tail, p, chunk);
      h_->tail.store(tail + chunk, std::memory_order_seq_cst);
      wake_producer();
      p += chunk;
      n -= chunk;
    }
    return true;
  }

  /// Zero-copy read: exposes the next `n` readable bytes as at most two
  /// borrowed spans (wrap), then `consume(n)` releases them. The spans are
  /// valid until consume(); the producer cannot overwrite unconsumed
  /// bytes.
  bool peek(std::size_t n, std::span<const std::byte>& a,
            std::span<const std::byte>& b) const {
    if (readable() < n) return false;
    const std::uint64_t tail = h_->tail.load(std::memory_order_relaxed);
    const std::size_t off = static_cast<std::size_t>(tail) & mask();
    const std::size_t first = std::min(n, capacity() - off);
    a = std::span<const std::byte>{data_ + off, first};
    b = std::span<const std::byte>{data_, n - first};
    return true;
  }

  void consume(std::size_t n) {
    const std::uint64_t tail = h_->tail.load(std::memory_order_relaxed);
    h_->tail.store(tail + n, std::memory_order_seq_cst);
    wake_producer();
  }

  /// Consumer interest in the eventfd doorbell (see set_doorbell_fd).
  void arm_doorbell(bool on) {
    h_->doorbell_armed.store(on ? 1 : 0, std::memory_order_seq_cst);
  }

 private:
  [[nodiscard]] std::size_t mask() const {
    return static_cast<std::size_t>(h_->capacity) - 1;
  }

  void copy_in(std::uint64_t head, const void* src, std::size_t n) {
    const std::size_t off = static_cast<std::size_t>(head) & mask();
    const std::size_t first = std::min(n, capacity() - off);
    std::memcpy(data_ + off, src, first);
    if (n > first) {
      std::memcpy(data_, static_cast<const std::byte*>(src) + first,
                  n - first);
    }
  }

  void copy_out(std::uint64_t tail, void* dst, std::size_t n) const {
    const std::size_t off = static_cast<std::size_t>(tail) & mask();
    const std::size_t first = std::min(n, capacity() - off);
    std::memcpy(dst, data_ + off, first);
    if (n > first) {
      std::memcpy(static_cast<std::byte*>(dst) + first, data_, n - first);
    }
  }

  void wake_consumer() {
    if (h_->data_waiter.exchange(0, std::memory_order_seq_cst) != 0) {
      h_->data_seq.fetch_add(1, std::memory_order_seq_cst);
      shm_detail::futex_wake_all(&h_->data_seq);
    }
    if (doorbell_fd_ >= 0 &&
        h_->doorbell_armed.load(std::memory_order_seq_cst) != 0) {
      const std::uint64_t one = 1;
      [[maybe_unused]] const ssize_t w =
          ::write(doorbell_fd_, &one, sizeof(one));
    }
  }

  void wake_producer() {
    if (h_->space_waiter.exchange(0, std::memory_order_seq_cst) != 0) {
      h_->space_seq.fetch_add(1, std::memory_order_seq_cst);
      shm_detail::futex_wake_all(&h_->space_seq);
    }
  }

  /// Futex eventcount wait: flag interest, recheck, sleep on the seq word.
  /// The seq-guarded FUTEX_WAIT makes the flag purely an optimization --
  /// a publish between the seq load and the sleep bumps the seq and the
  /// wait returns immediately.
  template <class Ready>
  bool eventcount_wait(std::atomic<std::uint32_t>& waiter,
                       std::atomic<std::uint32_t>& seq, Ready ready,
                       int timeout_ms) {
    const auto deadline =
        timeout_ms < 0
            ? std::chrono::steady_clock::time_point::max()
            : std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (ready()) return true;
      const std::uint32_t s = seq.load(std::memory_order_seq_cst);
      waiter.store(1, std::memory_order_seq_cst);
      if (ready()) return true;
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                              deadline - std::chrono::steady_clock::now())
                              .count();
        if (left <= 0) return ready();
        wait_ms = static_cast<int>(left);
      }
      shm_detail::futex_wait(&seq, s, wait_ms);
    }
  }

  bool wait_for_space(std::size_t n, int timeout_ms) {
    return eventcount_wait(h_->space_waiter, h_->space_seq,
                           [&] { return free_bytes() >= n; }, timeout_ms);
  }

  bool wait_for_data(std::size_t n, int timeout_ms) {
    return eventcount_wait(h_->data_waiter, h_->data_seq,
                           [&] { return readable() >= n; }, timeout_ms);
  }

  ShmRingHdr* h_ = nullptr;
  std::byte* data_ = nullptr;
  int doorbell_fd_ = -1;
};

// ---------------------------------------------------------------------------
// Plane: one segment, two rings (one per direction).
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kShmPlaneMagic = 0x43475348u;  // "CGSH"
inline constexpr std::uint32_t kShmPlaneVersion = 1;

struct ShmPlaneHdr {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t ring_bytes = 0;  ///< data capacity per ring
};

/// Bidirectional data plane over one segment:
///
///   [plane hdr | ring A hdr | ring A data | ring B hdr | ring B data]
///
/// The INITIATOR (client) produces into ring A and consumes ring B; the
/// PEER (daemon) the other way around. tx()/rx() are pre-resolved for the
/// local role.
class ShmPlane {
 public:
  /// Smallest useful plane; create_* round the per-ring capacity down to a
  /// power of two.
  static constexpr std::size_t kMinRingBytes = 4096;

  /// Creates + formats a plane in a NAMED segment (socket handshake).
  static ShmPlane create_initiator(std::size_t ring_bytes) {
    return create(ring_bytes, /*named=*/true);
  }

  /// Creates + formats a plane in an anonymous segment (in-process use:
  /// hand `*this` to one side and `peer_view()` to the other).
  static ShmPlane create_anon(std::size_t ring_bytes) {
    return create(ring_bytes, /*named=*/false);
  }

  /// Attaches to an initiator's named segment and validates the layout.
  /// Throws when the name does not resolve or the header is foreign.
  static ShmPlane attach_peer(const std::string& name) {
    ShmPlane p;
    p.seg_ = ShmSegment::open_named(name);
    p.seg_.unlink_name();  // attached: the name has done its job
    const auto* ph = reinterpret_cast<const ShmPlaneHdr*>(p.seg_.data());
    if (p.seg_.size() < sizeof(ShmPlaneHdr) ||
        ph->magic != kShmPlaneMagic || ph->version != kShmPlaneVersion ||
        p.seg_.size() < layout_bytes(ph->ring_bytes)) {
      throw std::runtime_error{"shm plane: foreign or corrupt segment"};
    }
    p.wire(static_cast<std::size_t>(ph->ring_bytes), /*initiator=*/false);
    return p;
  }

  ShmPlane() = default;
  ShmPlane(ShmPlane&& o) noexcept { *this = std::move(o); }
  ShmPlane& operator=(ShmPlane&& o) noexcept {
    if (this != &o) {
      seg_ = std::move(o.seg_);
      tx_ = o.tx_;
      rx_ = o.rx_;
      ring_bytes_ = o.ring_bytes_;
      initiator_ = o.initiator_;
    }
    return *this;
  }

  /// In-process: the opposite-role view over the same anonymous segment.
  /// The returned plane borrows this plane's mapping (must not outlive
  /// it).
  [[nodiscard]] ShmPlane peer_view() {
    ShmPlane p;
    p.ring_bytes_ = ring_bytes_;
    p.initiator_ = !initiator_;
    p.wire_over(seg_.data(), ring_bytes_, p.initiator_);
    return p;
  }

  [[nodiscard]] ShmRing& tx() { return tx_; }
  [[nodiscard]] ShmRing& rx() { return rx_; }
  [[nodiscard]] const std::string& name() const { return seg_.name(); }
  [[nodiscard]] std::size_t ring_bytes() const { return ring_bytes_; }
  [[nodiscard]] bool valid() const { return tx_.valid(); }
  void unlink_name() { seg_.unlink_name(); }

  [[nodiscard]] static std::size_t layout_bytes(std::uint64_t ring_bytes) {
    return 64 + 2 * (sizeof(ShmRingHdr) + static_cast<std::size_t>(
                                              ring_bytes));
  }

 private:
  static ShmPlane create(std::size_t ring_bytes, bool named) {
    std::size_t cap = kMinRingBytes;
    while (cap * 2 <= ring_bytes) cap *= 2;  // round down to power of two
    ShmPlane p;
    const std::size_t total = layout_bytes(cap);
    p.seg_ = named ? ShmSegment::create_named(total)
                   : ShmSegment::create_anon(total);
    auto* ph = reinterpret_cast<ShmPlaneHdr*>(p.seg_.data());
    ph->magic = kShmPlaneMagic;
    ph->version = kShmPlaneVersion;
    ph->ring_bytes = cap;
    ShmRing::init(ring_hdr(p.seg_.data(), cap, 0), cap);
    ShmRing::init(ring_hdr(p.seg_.data(), cap, 1), cap);
    p.wire(cap, /*initiator=*/true);
    return p;
  }

  static ShmRingHdr* ring_hdr(std::byte* base, std::size_t cap, int which) {
    return reinterpret_cast<ShmRingHdr*>(
        base + 64 + static_cast<std::size_t>(which) *
                        (sizeof(ShmRingHdr) + cap));
  }
  static std::byte* ring_data(std::byte* base, std::size_t cap, int which) {
    return reinterpret_cast<std::byte*>(ring_hdr(base, cap, which)) +
           sizeof(ShmRingHdr);
  }

  void wire(std::size_t cap, bool initiator) {
    ring_bytes_ = cap;
    initiator_ = initiator;
    wire_over(seg_.data(), cap, initiator);
  }

  void wire_over(std::byte* base, std::size_t cap, bool initiator) {
    ShmRing a{ring_hdr(base, cap, 0), ring_data(base, cap, 0)};
    ShmRing b{ring_hdr(base, cap, 1), ring_data(base, cap, 1)};
    tx_ = initiator ? a : b;
    rx_ = initiator ? b : a;
  }

  ShmSegment seg_;
  ShmRing tx_;
  ShmRing rx_;
  std::size_t ring_bytes_ = 0;
  bool initiator_ = true;
};

// ---------------------------------------------------------------------------
// shm_setup codec (payload of FrameType::shm_setup).
// ---------------------------------------------------------------------------

struct ShmSetupMsg {
  std::uint64_t ring_bytes = 0;
  std::string name;

  [[nodiscard]] std::string encode() const {
    std::string s;
    put_varint(s, ring_bytes);
    s.append(name);
    return s;
  }
  [[nodiscard]] static bool decode(std::span<const std::byte> p,
                                   ShmSetupMsg& m) {
    const std::byte* it = p.data();
    const std::byte* end = it + p.size();
    if (!get_varint(it, end, m.ring_bytes)) return false;
    m.name.assign(reinterpret_cast<const char*>(it),
                  static_cast<std::size_t>(end - it));
    return !m.name.empty() && m.name.front() == '/';
  }
};

}  // namespace cgsim::net

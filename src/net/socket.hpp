// cgsim::net -- minimal POSIX socket plumbing for the channel transport
// and the simulation service.
//
// Everything here is deliberately thin: RAII file descriptors, loopback
// TCP and Unix-domain listeners/connectors, socketpairs for in-process
// tests, and the two fcntl toggles the epoll loop needs. No abstraction
// over address families beyond what the daemon actually binds.
#pragma once

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace cgsim::net {

/// Owning file descriptor. Move-only; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Relinquishes ownership.
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

[[noreturn]] inline void throw_errno(const char* what) {
  throw std::runtime_error{std::string{what} + ": " +
                           std::strerror(errno)};
}

inline void set_nonblocking(int fd, bool on = true) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

/// Disables Nagle on TCP sockets; a silent no-op for AF_UNIX, where the
/// option does not exist. Small result frames must not wait on delayed
/// acks.
inline void set_nodelay(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Connected in-process pair (AF_UNIX stream). `[0]` and `[1]` are
/// symmetric peers.
inline std::pair<Fd, Fd> socket_pair() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw_errno("socketpair");
  }
  return {Fd{sv[0]}, Fd{sv[1]}};
}

/// Listening Unix-domain stream socket at `path` (unlinked first so a
/// stale socket file from a crashed run cannot block the bind).
inline Fd listen_unix(const std::string& path, int backlog = 128) {
  Fd fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument{"unix socket path too long: " + path};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind(AF_UNIX)");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  return fd;
}

inline Fd connect_unix(const std::string& path) {
  Fd fd{::socket(AF_UNIX, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::invalid_argument{"unix socket path too long: " + path};
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect(AF_UNIX)");
  }
  return fd;
}

/// Listening TCP socket on 127.0.0.1:`port` (0 = ephemeral). The bound
/// port is written back through `bound_port`.
inline Fd listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port,
                              int backlog = 128) {
  Fd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind(127.0.0.1)");
  }
  if (::listen(fd.get(), backlog) != 0) throw_errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) !=
        0) {
      throw_errno("getsockname");
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

inline Fd connect_tcp_loopback(std::uint16_t port) {
  Fd fd{::socket(AF_INET, SOCK_STREAM, 0)};
  if (!fd.valid()) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw_errno("connect(127.0.0.1)");
  }
  set_nodelay(fd.get());
  return fd;
}

/// Blocks until `fd` is readable (`want_write == false`) or writable.
/// Returns false on timeout. -1 waits forever.
inline bool wait_fd(int fd, bool want_write, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = want_write ? POLLOUT : POLLIN;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;
    if (r == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

/// Blocks until `fd` is readable OR writable; a writer parked on a full
/// kernel buffer must also notice inbound frames (credit, goodbye).
/// Returns false on timeout. -1 waits forever.
inline bool wait_fd_rw(int fd, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = POLLIN | POLLOUT;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;
    if (r == 0) return false;
    if (errno != EINTR) throw_errno("poll");
  }
}

}  // namespace cgsim::net

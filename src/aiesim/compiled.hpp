// aiesim -- ahead-of-time graph compilation for the cycle-approximate
// engine.
//
// Binding a graph to a SimEngine derives a set of static tables from the
// flattened graph, the cost model and the placement: per-edge global/output
// flags, per-edge routing-hop cycles, and the per-(edge, side, generated)
// port-access costs the hot path reads on every element. None of that
// depends on run-time data, so it is hoisted here into a CompiledGraph
// artifact built once and reused:
//   * SimEngine::bind() copies the tables instead of recomputing them,
//     which removes the placement scan, the hop matrix and every first-
//     touch cost computation from the per-run setup path;
//   * a process-wide CompiledGraphCache memoizes artifacts keyed on the
//     *complete serialized input* of compile() -- graph topology and
//     settings, cost-model constants, placement directives -- so repeated
//     simulations of the same configuration (parameter sweeps, warm-up +
//     measure loops, test suites) compile exactly once;
//   * the artifact also carries the kernel/edge adjacency lists the
//     incremental re-simulation layer (resim.hpp) uses to compute affected
//     cones, so cone analysis never rescans the port table.
//
// The cache key is an exact-match byte serialization, not a hash: two
// configurations collide only if every field compile() reads is identical,
// in which case sharing the artifact is correct by construction. Keys
// contain no pointers, so equal graphs rebuilt at different addresses
// still share one entry. The cache can optionally write through to a
// persistent on-disk store (compiled_store.hpp) keyed on the same bytes,
// so a restarted process binds warm from its first request.
//
// The artifact is stored as one flat 8-byte-aligned arena whose byte
// layout IS the on-disk payload format (compiled_store.hpp prepends only
// a CRC header): compile() builds the arena directly and the table
// members are spans into it, so persisting an artifact is a single write
// and loading one back is mmap + checksum + pointer fixup -- no per-table
// deserialization, which is what keeps a restarted daemon's first bind a
// small fraction of a recompile.
#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/graph_view.hpp"
#include "cost_model.hpp"
#include "placement.hpp"

namespace aiesim {

/// Memoized port-access cost plus every cost-relevant input it was derived
/// from (everything CostModel::port_cycles reads besides the per-edge
/// constants), compared field-by-field so distinct settings can never
/// alias to one memo entry. Compiled entries are seeded from the edge's
/// merged settings; a port accessing the edge with different settings
/// fails the field comparison and recomputes at run time.
struct EdgeCost {
  bool valid = false;
  bool window = false;
  bool gmio = false;
  int beat_bits = 0;
  std::size_t elem_bytes = 0;
  std::uint64_t cycles = 0;
};

/// Per-edge flag bits shared by the engine and the compiler.
inline constexpr std::uint8_t kEdgeGlobal = 1;     ///< global in or out
inline constexpr std::uint8_t kEdgeGlobalOut = 2;  ///< global output

/// CSR adjacency over the artifact arena: `offsets` has size()+1 entries
/// and `operator[]` returns one kernel's/edge's neighbor list as a span,
/// so cone traversal reads the (possibly mmap'd) artifact in place -- no
/// per-list vectors exist in any representation of the artifact.
struct AdjTable {
  std::span<const std::uint32_t> offsets;
  std::span<const std::int32_t> values;

  [[nodiscard]] std::size_t size() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] std::span<const std::int32_t> operator[](
      std::size_t i) const {
    return values.subspan(offsets[i], offsets[i + 1] - offsets[i]);
  }
};

/// The ahead-of-time-compiled form of (graph, cost model, placement):
/// every static table the engine's fast path indexes, plus the adjacency
/// the incremental re-simulation layer traverses. Immutable after
/// compile(); safely shared across engines.
///
/// All table members are spans into `backing`, a single flat arena whose
/// bytes are exactly the persistent payload format -- either heap memory
/// built by compile_graph() or a read-only file mapping made by the
/// on-disk store. Copies of the struct share the arena.
struct CompiledGraph {
  std::string key;  ///< canonical serialized input (cache identity)

  CostModel cost{};
  bool generated_io = false;
  int array_columns = 8;

  /// Per-kernel tile coordinates (the placement; engines rebuild a
  /// Placement object from this at bind time).
  std::span<const TileCoord> placement_coords;
  std::span<const std::uint8_t> edge_flags;  ///< kEdgeGlobal / kEdgeGlobalOut
  std::span<const std::uint64_t> edge_hop;   ///< routing cycles per element
  /// [edge * 4 + is_read * 2 + generated] port costs, pre-seeded from the
  /// edge's merged settings (see EdgeCost).
  std::span<const EdgeCost> edge_cost;

  // Kernel/edge adjacency (kernel and edge indices of the flattened
  // graph). Source/sink tasks are not kernels and do not appear here;
  // edges touching them simply have fewer kernel endpoints.
  AdjTable kernel_in_edges;
  AdjTable kernel_out_edges;
  AdjTable edge_producer_kernels;
  AdjTable edge_consumer_kernels;

  std::size_t n_kernels = 0;
  std::size_t n_edges = 0;

  /// Runtime provenance, not part of the artifact: true when this object
  /// was deserialized from the persistent on-disk store instead of
  /// compiled in-process.
  bool from_store = false;

  /// The flat arena every span above points into, plus its extent: the
  /// exact payload the on-disk store writes/maps (see compiled_store.hpp).
  std::shared_ptr<const void> backing;
  const char* payload_data = nullptr;
  std::size_t payload_bytes = 0;

  [[nodiscard]] std::string_view payload() const {
    return {payload_data, payload_bytes};
  }
};

/// Persistence hook for the cache: implemented by CompiledStore
/// (compiled_store.hpp). Kept abstract here so the cache stays free of
/// file-format details and no include cycle forms.
struct CompiledArtifactStore {
  virtual ~CompiledArtifactStore() = default;
  /// Returns the artifact for `key`, or nullptr (missing / corrupt /
  /// stale -- the caller recompiles; a bad file must never throw).
  virtual std::shared_ptr<const CompiledGraph> load(
      const std::string& key) = 0;
  /// Persists a freshly compiled artifact (best effort; failures are
  /// swallowed into stats -- the in-process cache still has the entry).
  virtual void save(const CompiledGraph& cg) = 0;
};

namespace detail {

/// Append-only byte serializer for cache keys: fixed-width fields are
/// appended by value, strings with a length prefix, so no two distinct
/// field sequences serialize to the same bytes.
class KeyWriter {
 public:
  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* b = reinterpret_cast<const char*>(&v);
    out_.append(b, sizeof(T));
  }
  void put_str(std::string_view s) {
    put(s.size());
    out_.append(s.data(), s.size());
  }
  void reserve(std::size_t n) { out_.reserve(n); }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

inline void key_settings(KeyWriter& w, const cgsim::PortSettings& s) {
  w.put(s.beat_bits);
  w.put(s.rtp);
  w.put(static_cast<std::uint8_t>(s.buffer));
  w.put(s.window_size);
  w.put(static_cast<std::uint8_t>(s.io));
}

[[nodiscard]] constexpr std::size_t align8(std::size_t n) {
  return (n + 7u) & ~std::size_t{7};
}

// ---------------------------------------------------------------------------
// Flat artifact payload. One 8-aligned arena, written once by
// compile_graph() and parsed in place by the store (compiled_store.hpp):
//
//   u64 n_kernels | u64 n_edges | u64 generated_io | u64 array_columns
//   15 x 8-byte cost-model fields (doubles raw, ints widened to i64)
//   u64 key_bytes | key bytes, zero-padded to 8
//   n_kernels x TileCoord                     (placement)
//   n_edges   x u8, zero-padded to 8          (edge_flags)
//   n_edges   x u64                           (edge_hop)
//   4*n_edges x EdgeCost                      (edge_cost)
//   4 x CSR table (kernel_in, kernel_out, edge_producers, edge_consumers):
//     u64 nvals | (n+1) x u32 offsets, padded | nvals x i32 values, padded
//
// Every scalar is 8 bytes and every array section is padded to an 8-byte
// boundary, so all spans into the arena are naturally aligned whether it
// lives on the heap or at (page-aligned file mapping + 24-byte header).
// ---------------------------------------------------------------------------

static_assert(std::is_trivially_copyable_v<EdgeCost> &&
              alignof(EdgeCost) <= 8);
static_assert(std::is_trivially_copyable_v<TileCoord> &&
              alignof(TileCoord) <= 8);

/// Bump-pointer writer over a pre-sized zeroed arena. Array sections are
/// handed back as writable spans so compile_graph() fills tables in their
/// final resting place; scalars land as full 8-byte slots.
class ArenaWriter {
 public:
  explicit ArenaWriter(std::size_t bytes)
      : buf_(std::make_shared<std::vector<std::uint64_t>>(
            align8(bytes) / 8)),  // value-init: arena (incl. padding) is 0
        cap_(bytes) {}

  void u64(std::uint64_t v) { std::memcpy(grab(8), &v, 8); }
  void f64(double v) { std::memcpy(grab(8), &v, 8); }

  template <class T>
  [[nodiscard]] std::span<T> arr(std::size_t count) {
    return {reinterpret_cast<T*>(grab(count * sizeof(T))), count};
  }
  void bytes(const void* p, std::size_t n) { std::memcpy(grab(n), p, n); }

  /// Transfers arena ownership into the artifact and rebinds the given
  /// object's payload view; call exactly once, after the last write.
  void finish(CompiledGraph& cg) {
    cg.payload_data = reinterpret_cast<const char*>(buf_->data());
    cg.payload_bytes = off_;
    cg.backing = std::shared_ptr<const void>(buf_, buf_->data());
  }

 private:
  char* grab(std::size_t n) {
    char* p = reinterpret_cast<char*>(buf_->data()) + off_;
    off_ += align8(n);
    if (off_ > align8(cap_)) std::abort();  // layout arithmetic bug
    return p;
  }

  std::shared_ptr<std::vector<std::uint64_t>> buf_;
  std::size_t cap_ = 0;
  std::size_t off_ = 0;
};

}  // namespace detail

/// Canonical serialization of every input compile() reads. Exact-match
/// identity: graphs that serialize equally compile to identical tables.
[[nodiscard]] inline std::string compiled_graph_key(
    const cgsim::GraphView& g, const CostModel& cost, bool generated_io,
    const std::map<std::string, TileCoord>& placement, int array_columns) {
  detail::KeyWriter w;
  // Keys run to tens of KiB on large graphs; one upper-bound reserve
  // (per-section field widths + name bytes) beats a dozen geometric
  // regrow copies on a hot path both the compile and load sides pay.
  std::size_t names = 0;
  for (const auto& [name, coord] : placement) names += name.size();
  for (const cgsim::FlatKernel& k : g.kernels) names += k.name.size();
  w.reserve(256 + names + 24 * placement.size() + 24 * g.kernels.size() +
            40 * g.ports.size() + 48 * g.edges.size() +
            16 * (g.inputs.size() + g.outputs.size()));
  w.put(cost.vector_slots);
  w.put(cost.shuffle_slots);
  w.put(cost.load_slots);
  w.put(cost.store_slots);
  w.put(cost.scalar_slots);
  w.put(cost.activation_ramp);
  w.put(cost.stream_beat_bits);
  w.put(cost.plio_clock_ratio);
  w.put(cost.stream_access_overhead);
  w.put(cost.generated_beat_factor);
  w.put(cost.window_sync_cycles);
  w.put(cost.window_bytes_per_cycle);
  w.put(cost.hop_cycles);
  w.put(cost.gmio_setup_cycles);
  w.put(cost.gmio_bytes_per_cycle);
  w.put(generated_io);
  w.put(array_columns);
  w.put(placement.size());
  for (const auto& [name, coord] : placement) {  // std::map: sorted, canonical
    w.put_str(name);
    w.put(coord.col);
    w.put(coord.row);
  }
  w.put(g.kernels.size());
  for (const cgsim::FlatKernel& k : g.kernels) {
    w.put_str(k.name);
    w.put(k.first_port);
    w.put(k.nports);
  }
  w.put(g.ports.size());
  for (const cgsim::FlatPort& p : g.ports) {
    w.put(p.is_read);
    w.put(p.edge);
    w.put(p.endpoint);
    detail::key_settings(w, p.settings);
  }
  w.put(g.edges.size());
  for (const cgsim::FlatEdge& e : g.edges) {
    detail::key_settings(w, e.settings);
    w.put(e.capacity);
    w.put(e.n_producers);
    w.put(e.n_consumers);
    w.put(e.vtable().elem_size);
  }
  w.put(g.inputs.size());
  for (const cgsim::FlatGlobal& in : g.inputs) {
    w.put(in.edge);
    w.put(in.endpoint);
  }
  w.put(g.outputs.size());
  for (const cgsim::FlatGlobal& out : g.outputs) {
    w.put(out.edge);
    w.put(out.endpoint);
  }
  return w.take();
}

namespace detail {

/// Emits the 15 cost-model fields as fixed 8-byte slots (format above).
inline void arena_cost(ArenaWriter& w, const CostModel& c) {
  w.f64(c.vector_slots);
  w.f64(c.shuffle_slots);
  w.f64(c.load_slots);
  w.f64(c.store_slots);
  w.f64(c.scalar_slots);
  w.f64(c.activation_ramp);
  w.u64(static_cast<std::uint64_t>(c.stream_beat_bits));
  w.f64(c.plio_clock_ratio);
  w.f64(c.stream_access_overhead);
  w.f64(c.generated_beat_factor);
  w.f64(c.window_sync_cycles);
  w.f64(c.window_bytes_per_cycle);
  w.f64(c.hop_cycles);
  w.f64(c.gmio_setup_cycles);
  w.f64(c.gmio_bytes_per_cycle);
}

/// A CSR table mid-construction: the artifact view plus the writable
/// values section the second adjacency pass fills through.
struct CsrBuild {
  AdjTable table;
  std::span<std::int32_t> fill;
};

/// Degree counts -> CSR offsets (prefix sum); `deg` becomes the per-list
/// fill cursor for the second pass.
inline CsrBuild arena_csr(ArenaWriter& w, std::vector<std::uint32_t>& deg,
                          std::uint64_t nvals) {
  w.u64(nvals);
  auto offs = w.arr<std::uint32_t>(deg.size() + 1);
  std::uint32_t at = 0;
  for (std::size_t i = 0; i < deg.size(); ++i) {
    offs[i] = at;
    at += deg[i];
    deg[i] = offs[i];  // fill cursor
  }
  offs[deg.size()] = at;
  auto vals = w.arr<std::int32_t>(nvals);
  return CsrBuild{AdjTable{offs, vals}, vals};
}

}  // namespace detail

/// Builds the compiled artifact for (graph, cost model, placement). Pure:
/// reads only its arguments, touches no channels or contexts. The tables
/// are written straight into the artifact's flat arena (format above), so
/// the result is ready to persist byte-for-byte.
[[nodiscard]] inline std::shared_ptr<const CompiledGraph> compile_graph(
    const cgsim::GraphView& g, const CostModel& cost, bool generated_io,
    const std::map<std::string, TileCoord>& placement, int array_columns) {
  auto cg = std::make_shared<CompiledGraph>();
  cg->key = compiled_graph_key(g, cost, generated_io, placement,
                               array_columns);
  cg->cost = cost;
  cg->generated_io = generated_io;
  cg->array_columns = array_columns;
  const std::size_t nk = g.kernels.size();
  const std::size_t ne = g.edges.size();
  cg->n_kernels = nk;
  cg->n_edges = ne;

  const Placement place =
      Placement::explicit_by_name(g, placement, array_columns);
  const std::vector<int> hops = place.all_edge_hops(g);

  // Adjacency degrees: one counting pass over the port table sizes all
  // four CSR tables exactly.
  std::vector<std::uint32_t> in_deg(nk, 0), out_deg(nk, 0);
  std::vector<std::uint32_t> prod_deg(ne, 0), cons_deg(ne, 0);
  std::uint64_t n_in = 0, n_out = 0;
  for (std::size_t k = 0; k < nk; ++k) {
    const cgsim::FlatKernel& fk = g.kernels[k];
    for (int pi = 0; pi < fk.nports; ++pi) {
      const cgsim::FlatPort& fp =
          g.ports[static_cast<std::size_t>(fk.first_port + pi)];
      const auto e = static_cast<std::size_t>(fp.edge);
      if (fp.is_read) {
        ++in_deg[k];
        ++cons_deg[e];
        ++n_in;
      } else {
        ++out_deg[k];
        ++prod_deg[e];
        ++n_out;
      }
    }
  }

  using detail::align8;
  const auto csr_bytes = [](std::size_t n, std::uint64_t nvals) {
    return 8 + align8((n + 1) * 4) + align8(nvals * 4);
  };
  const std::size_t total =
      8 * 4 + 8 * 15 +                          // meta + cost model
      8 + align8(cg->key.size()) +              // key
      align8(nk * sizeof(TileCoord)) +          // placement
      align8(ne) +                              // edge_flags
      ne * 8 +                                  // edge_hop
      align8(ne * 4 * sizeof(EdgeCost)) +       // edge_cost
      2 * csr_bytes(nk, n_in) + csr_bytes(ne, n_out) + csr_bytes(ne, n_in);

  detail::ArenaWriter w{total};
  w.u64(nk);
  w.u64(ne);
  w.u64(generated_io ? 1 : 0);
  w.u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(array_columns)));
  detail::arena_cost(w, cost);
  w.u64(cg->key.size());
  w.bytes(cg->key.data(), cg->key.size());

  auto coords = w.arr<TileCoord>(nk);
  std::memcpy(coords.data(), place.coords().data(),
              nk * sizeof(TileCoord));
  cg->placement_coords = coords;

  auto flags = w.arr<std::uint8_t>(ne);
  for (const cgsim::FlatGlobal& in : g.inputs) {
    flags[static_cast<std::size_t>(in.edge)] |= kEdgeGlobal;
  }
  for (const cgsim::FlatGlobal& out : g.outputs) {
    flags[static_cast<std::size_t>(out.edge)] |=
        kEdgeGlobal | kEdgeGlobalOut;
  }
  cg->edge_flags = flags;

  auto hop = w.arr<std::uint64_t>(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    hop[e] = hops[e] > 0 ? static_cast<std::uint64_t>(
                               hops[e] * cost.hop_cycles + 0.5)
                         : 0;
  }
  cg->edge_hop = hop;

  // Pre-seed the per-(edge, side, generated) cost memo from the edge's
  // merged settings and element width -- for graphs whose ports inherit
  // the edge settings (the common case) the run never computes a port
  // cost; divergent per-port settings fail EdgeCost's field comparison
  // and recompute exactly as before. Fields are assigned one by one onto
  // the zeroed arena so struct padding stays deterministic in the file.
  auto ecost = w.arr<EdgeCost>(ne * 4);
  for (std::size_t e = 0; e < ne; ++e) {
    const cgsim::FlatEdge& fe = g.edges[e];
    const cgsim::PortSettings& s = fe.settings;
    const bool global_io = (flags[e] & kEdgeGlobal) != 0;
    const bool window = s.buffer == cgsim::BufferMode::window ||
                        s.buffer == cgsim::BufferMode::pingpong;
    const bool gmio = s.io == cgsim::IoKind::gmio;
    const std::size_t elem = fe.vtable().elem_size;
    for (int side = 0; side < 4; ++side) {
      EdgeCost& c = ecost[e * 4 + static_cast<std::size_t>(side)];
      c.valid = true;
      c.window = window;
      c.gmio = gmio;
      c.beat_bits = s.beat_bits;
      c.elem_bytes = elem;
      c.cycles = cost.port_cycles(s, elem, global_io, (side & 1) != 0);
    }
  }
  cg->edge_cost = ecost;

  auto kin = detail::arena_csr(w, in_deg, n_in);
  auto kout = detail::arena_csr(w, out_deg, n_out);
  auto eprod = detail::arena_csr(w, prod_deg, n_out);
  auto econs = detail::arena_csr(w, cons_deg, n_in);
  for (std::size_t k = 0; k < nk; ++k) {
    const cgsim::FlatKernel& fk = g.kernels[k];
    for (int pi = 0; pi < fk.nports; ++pi) {
      const cgsim::FlatPort& fp =
          g.ports[static_cast<std::size_t>(fk.first_port + pi)];
      const auto e = static_cast<std::size_t>(fp.edge);
      // The degree vectors are fill cursors now (see arena_csr).
      if (fp.is_read) {
        kin.fill[in_deg[k]++] = fp.edge;
        econs.fill[cons_deg[e]++] = static_cast<std::int32_t>(k);
      } else {
        kout.fill[out_deg[k]++] = fp.edge;
        eprod.fill[prod_deg[e]++] = static_cast<std::int32_t>(k);
      }
    }
  }
  cg->kernel_in_edges = kin.table;
  cg->kernel_out_edges = kout.table;
  cg->edge_producer_kernels = eprod.table;
  cg->edge_consumer_kernels = econs.table;

  w.finish(*cg);
  return cg;
}

/// Process-wide LRU cache of compiled artifacts, keyed on the canonical
/// serialization. Thread-safe; entries are shared_ptr<const>, so an
/// eviction never invalidates an artifact still in use by an engine.
class CompiledGraphCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::uint64_t store_hits = 0;    ///< misses served by the on-disk store
    std::uint64_t store_writes = 0;  ///< fresh compiles persisted to disk
  };

  static CompiledGraphCache& instance() {
    static CompiledGraphCache cache;
    return cache;
  }

  /// Looks the configuration up: in-memory LRU first, then (when a store
  /// is attached) the persistent on-disk store, compiling only when both
  /// miss. Freshly compiled artifacts are written through to the store.
  [[nodiscard]] std::shared_ptr<const CompiledGraph> get_or_compile(
      const cgsim::GraphView& g, const CostModel& cost, bool generated_io,
      const std::map<std::string, TileCoord>& placement,
      int array_columns) {
    std::string key =
        compiled_graph_key(g, cost, generated_io, placement, array_columns);
    std::shared_ptr<CompiledArtifactStore> store;
    {
      std::lock_guard lock{mu_};
      auto it = map_.find(key);
      if (it != map_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.value;
      }
      ++misses_;
      store = store_;
    }
    // Load/compile outside the lock: both are pure over an exact key, so
    // two threads racing the same key produce identical artifacts and the
    // loser's insert is a no-op.
    if (store != nullptr) {
      if (auto loaded = store->load(key)) {
        std::lock_guard lock{mu_};
        ++store_hits_;
        return insert_locked(std::move(key), std::move(loaded));
      }
    }
    auto cg = compile_graph(g, cost, generated_io, placement, array_columns);
    if (store != nullptr) store->save(*cg);
    std::lock_guard lock{mu_};
    if (store != nullptr) ++store_writes_;
    return insert_locked(std::move(key), std::move(cg));
  }

  /// Attaches (or with nullptr detaches) the persistent store consulted
  /// on in-memory misses. The cgsimd daemon wires this from --cache-dir.
  void set_store(std::shared_ptr<CompiledArtifactStore> s) {
    std::lock_guard lock{mu_};
    store_ = std::move(s);
  }

  [[nodiscard]] std::shared_ptr<CompiledArtifactStore> store() const {
    std::lock_guard lock{mu_};
    return store_;
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard lock{mu_};
    return Stats{hits_,    misses_,      evictions_,
                 map_.size(), store_hits_, store_writes_};
  }

  void clear() {
    std::lock_guard lock{mu_};
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evictions_ = 0;
    store_hits_ = store_writes_ = 0;
  }

  /// Maximum retained artifacts (drops LRU overflow immediately).
  void set_capacity(std::size_t n) {
    std::lock_guard lock{mu_};
    capacity_ = n == 0 ? 1 : n;
    while (map_.size() > capacity_) {
      ++evictions_;
      map_.erase(lru_.back());
      lru_.pop_back();
    }
  }

 private:
  struct Entry {
    std::shared_ptr<const CompiledGraph> value;
    std::list<std::string>::iterator lru_pos;
  };

  /// Dedup-insert under mu_: a racing thread's earlier insert wins.
  std::shared_ptr<const CompiledGraph> insert_locked(
      std::string key, std::shared_ptr<const CompiledGraph> cg) {
    auto it = map_.find(key);
    if (it != map_.end()) return it->second.value;
    lru_.push_front(key);
    map_.emplace(std::move(key), Entry{cg, lru_.begin()});
    while (map_.size() > capacity_) {
      ++evictions_;
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    return cg;
  }

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< most recent first
  std::size_t capacity_ = 64;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t store_hits_ = 0;
  std::uint64_t store_writes_ = 0;
  std::shared_ptr<CompiledArtifactStore> store_;
};

}  // namespace aiesim

// aiesim -- ahead-of-time graph compilation for the cycle-approximate
// engine.
//
// Binding a graph to a SimEngine derives a set of static tables from the
// flattened graph, the cost model and the placement: per-edge global/output
// flags, per-edge routing-hop cycles, and the per-(edge, side, generated)
// port-access costs the hot path reads on every element. None of that
// depends on run-time data, so it is hoisted here into a CompiledGraph
// artifact built once and reused:
//   * SimEngine::bind() copies the tables instead of recomputing them,
//     which removes the placement scan, the hop matrix and every first-
//     touch cost computation from the per-run setup path;
//   * a process-wide CompiledGraphCache memoizes artifacts keyed on the
//     *complete serialized input* of compile() -- graph topology and
//     settings, cost-model constants, placement directives -- so repeated
//     simulations of the same configuration (parameter sweeps, warm-up +
//     measure loops, test suites) compile exactly once;
//   * the artifact also carries the kernel/edge adjacency lists the
//     incremental re-simulation layer (resim.hpp) uses to compute affected
//     cones, so cone analysis never rescans the port table.
//
// The cache key is an exact-match byte serialization, not a hash: two
// configurations collide only if every field compile() reads is identical,
// in which case sharing the artifact is correct by construction. Keys
// contain no pointers, so equal graphs rebuilt at different addresses
// still share one entry; the cache is in-process only and never persisted.
#pragma once

#include <cstdint>
#include <cstring>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "core/graph_view.hpp"
#include "cost_model.hpp"
#include "placement.hpp"

namespace aiesim {

/// Memoized port-access cost plus every cost-relevant input it was derived
/// from (everything CostModel::port_cycles reads besides the per-edge
/// constants), compared field-by-field so distinct settings can never
/// alias to one memo entry. Compiled entries are seeded from the edge's
/// merged settings; a port accessing the edge with different settings
/// fails the field comparison and recomputes at run time.
struct EdgeCost {
  bool valid = false;
  bool window = false;
  bool gmio = false;
  int beat_bits = 0;
  std::size_t elem_bytes = 0;
  std::uint64_t cycles = 0;
};

/// Per-edge flag bits shared by the engine and the compiler.
inline constexpr std::uint8_t kEdgeGlobal = 1;     ///< global in or out
inline constexpr std::uint8_t kEdgeGlobalOut = 2;  ///< global output

/// The ahead-of-time-compiled form of (graph, cost model, placement):
/// every static table the engine's fast path indexes, plus the adjacency
/// the incremental re-simulation layer traverses. Immutable after
/// compile(); safely shared across engines.
struct CompiledGraph {
  std::string key;  ///< canonical serialized input (cache identity)

  CostModel cost{};
  bool generated_io = false;
  int array_columns = 8;

  Placement placement;
  std::vector<std::uint8_t> edge_flags;  ///< kEdgeGlobal / kEdgeGlobalOut
  std::vector<std::uint64_t> edge_hop;   ///< routing cycles per element
  /// [edge * 4 + is_read * 2 + generated] port costs, pre-seeded from the
  /// edge's merged settings (see EdgeCost).
  std::vector<EdgeCost> edge_cost;

  // Kernel/edge adjacency (kernel and edge indices of the flattened
  // graph). Source/sink tasks are not kernels and do not appear here;
  // edges touching them simply have fewer kernel endpoints.
  std::vector<std::vector<int>> kernel_in_edges;
  std::vector<std::vector<int>> kernel_out_edges;
  std::vector<std::vector<int>> edge_producer_kernels;
  std::vector<std::vector<int>> edge_consumer_kernels;

  std::size_t n_kernels = 0;
  std::size_t n_edges = 0;
};

namespace detail {

/// Append-only byte serializer for cache keys: fixed-width fields are
/// appended by value, strings with a length prefix, so no two distinct
/// field sequences serialize to the same bytes.
class KeyWriter {
 public:
  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* b = reinterpret_cast<const char*>(&v);
    out_.append(b, sizeof(T));
  }
  void put_str(std::string_view s) {
    put(s.size());
    out_.append(s.data(), s.size());
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

inline void key_settings(KeyWriter& w, const cgsim::PortSettings& s) {
  w.put(s.beat_bits);
  w.put(s.rtp);
  w.put(static_cast<std::uint8_t>(s.buffer));
  w.put(s.window_size);
  w.put(static_cast<std::uint8_t>(s.io));
}

}  // namespace detail

/// Canonical serialization of every input compile() reads. Exact-match
/// identity: graphs that serialize equally compile to identical tables.
[[nodiscard]] inline std::string compiled_graph_key(
    const cgsim::GraphView& g, const CostModel& cost, bool generated_io,
    const std::map<std::string, TileCoord>& placement, int array_columns) {
  detail::KeyWriter w;
  w.put(cost.vector_slots);
  w.put(cost.shuffle_slots);
  w.put(cost.load_slots);
  w.put(cost.store_slots);
  w.put(cost.scalar_slots);
  w.put(cost.activation_ramp);
  w.put(cost.stream_beat_bits);
  w.put(cost.plio_clock_ratio);
  w.put(cost.stream_access_overhead);
  w.put(cost.generated_beat_factor);
  w.put(cost.window_sync_cycles);
  w.put(cost.window_bytes_per_cycle);
  w.put(cost.hop_cycles);
  w.put(cost.gmio_setup_cycles);
  w.put(cost.gmio_bytes_per_cycle);
  w.put(generated_io);
  w.put(array_columns);
  w.put(placement.size());
  for (const auto& [name, coord] : placement) {  // std::map: sorted, canonical
    w.put_str(name);
    w.put(coord.col);
    w.put(coord.row);
  }
  w.put(g.kernels.size());
  for (const cgsim::FlatKernel& k : g.kernels) {
    w.put_str(k.name);
    w.put(k.first_port);
    w.put(k.nports);
  }
  w.put(g.ports.size());
  for (const cgsim::FlatPort& p : g.ports) {
    w.put(p.is_read);
    w.put(p.edge);
    w.put(p.endpoint);
    detail::key_settings(w, p.settings);
  }
  w.put(g.edges.size());
  for (const cgsim::FlatEdge& e : g.edges) {
    detail::key_settings(w, e.settings);
    w.put(e.capacity);
    w.put(e.n_producers);
    w.put(e.n_consumers);
    w.put(e.vtable().elem_size);
  }
  w.put(g.inputs.size());
  for (const cgsim::FlatGlobal& in : g.inputs) {
    w.put(in.edge);
    w.put(in.endpoint);
  }
  w.put(g.outputs.size());
  for (const cgsim::FlatGlobal& out : g.outputs) {
    w.put(out.edge);
    w.put(out.endpoint);
  }
  return w.take();
}

/// Builds the compiled artifact for (graph, cost model, placement). Pure:
/// reads only its arguments, touches no channels or contexts.
[[nodiscard]] inline std::shared_ptr<const CompiledGraph> compile_graph(
    const cgsim::GraphView& g, const CostModel& cost, bool generated_io,
    const std::map<std::string, TileCoord>& placement, int array_columns) {
  auto cg = std::make_shared<CompiledGraph>();
  cg->key = compiled_graph_key(g, cost, generated_io, placement,
                               array_columns);
  cg->cost = cost;
  cg->generated_io = generated_io;
  cg->array_columns = array_columns;
  cg->n_kernels = g.kernels.size();
  cg->n_edges = g.edges.size();
  cg->placement = Placement::explicit_by_name(g, placement, array_columns);

  cg->edge_flags.assign(g.edges.size(), 0);
  for (const cgsim::FlatGlobal& in : g.inputs) {
    cg->edge_flags[static_cast<std::size_t>(in.edge)] |= kEdgeGlobal;
  }
  for (const cgsim::FlatGlobal& out : g.outputs) {
    cg->edge_flags[static_cast<std::size_t>(out.edge)] |=
        kEdgeGlobal | kEdgeGlobalOut;
  }

  cg->edge_hop.assign(g.edges.size(), 0);
  const std::vector<int> hops = cg->placement.all_edge_hops(g);
  for (std::size_t e = 0; e < hops.size(); ++e) {
    if (hops[e] > 0) {
      cg->edge_hop[e] =
          static_cast<std::uint64_t>(hops[e] * cost.hop_cycles + 0.5);
    }
  }

  // Pre-seed the per-(edge, side, generated) cost memo from the edge's
  // merged settings and element width -- for graphs whose ports inherit
  // the edge settings (the common case) the run never computes a port
  // cost; divergent per-port settings fail EdgeCost's field comparison
  // and recompute exactly as before.
  cg->edge_cost.assign(g.edges.size() * 4, EdgeCost{});
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const cgsim::FlatEdge& fe = g.edges[e];
    const cgsim::PortSettings& s = fe.settings;
    const bool global_io = (cg->edge_flags[e] & kEdgeGlobal) != 0;
    const bool window = s.buffer == cgsim::BufferMode::window ||
                        s.buffer == cgsim::BufferMode::pingpong;
    const bool gmio = s.io == cgsim::IoKind::gmio;
    const std::size_t elem = fe.vtable().elem_size;
    for (int side = 0; side < 4; ++side) {
      EdgeCost& c = cg->edge_cost[e * 4 + static_cast<std::size_t>(side)];
      c.valid = true;
      c.window = window;
      c.gmio = gmio;
      c.beat_bits = s.beat_bits;
      c.elem_bytes = elem;
      c.cycles = cost.port_cycles(s, elem, global_io, (side & 1) != 0);
    }
  }

  cg->kernel_in_edges.resize(g.kernels.size());
  cg->kernel_out_edges.resize(g.kernels.size());
  cg->edge_producer_kernels.resize(g.edges.size());
  cg->edge_consumer_kernels.resize(g.edges.size());
  for (std::size_t k = 0; k < g.kernels.size(); ++k) {
    const cgsim::FlatKernel& fk = g.kernels[k];
    for (int pi = 0; pi < fk.nports; ++pi) {
      const cgsim::FlatPort& fp =
          g.ports[static_cast<std::size_t>(fk.first_port + pi)];
      const auto e = static_cast<std::size_t>(fp.edge);
      if (fp.is_read) {
        cg->kernel_in_edges[k].push_back(fp.edge);
        cg->edge_consumer_kernels[e].push_back(static_cast<int>(k));
      } else {
        cg->kernel_out_edges[k].push_back(fp.edge);
        cg->edge_producer_kernels[e].push_back(static_cast<int>(k));
      }
    }
  }
  return cg;
}

/// Process-wide LRU cache of compiled artifacts, keyed on the canonical
/// serialization. Thread-safe; entries are shared_ptr<const>, so an
/// eviction never invalidates an artifact still in use by an engine.
class CompiledGraphCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };

  static CompiledGraphCache& instance() {
    static CompiledGraphCache cache;
    return cache;
  }

  /// Looks the configuration up, compiling and inserting on miss.
  [[nodiscard]] std::shared_ptr<const CompiledGraph> get_or_compile(
      const cgsim::GraphView& g, const CostModel& cost, bool generated_io,
      const std::map<std::string, TileCoord>& placement,
      int array_columns) {
    std::string key =
        compiled_graph_key(g, cost, generated_io, placement, array_columns);
    {
      std::lock_guard lock{mu_};
      auto it = map_.find(key);
      if (it != map_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.value;
      }
      ++misses_;
    }
    // Compile outside the lock: compilation is pure and keyed exactly, so
    // two threads racing the same key build identical artifacts and the
    // loser's insert is a no-op.
    auto cg = compile_graph(g, cost, generated_io, placement, array_columns);
    std::lock_guard lock{mu_};
    auto it = map_.find(key);
    if (it != map_.end()) return it->second.value;
    lru_.push_front(key);
    map_.emplace(std::move(key), Entry{cg, lru_.begin()});
    while (map_.size() > capacity_) {
      ++evictions_;
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    return cg;
  }

  [[nodiscard]] Stats stats() const {
    std::lock_guard lock{mu_};
    return Stats{hits_, misses_, evictions_, map_.size()};
  }

  void clear() {
    std::lock_guard lock{mu_};
    map_.clear();
    lru_.clear();
    hits_ = misses_ = evictions_ = 0;
  }

  /// Maximum retained artifacts (drops LRU overflow immediately).
  void set_capacity(std::size_t n) {
    std::lock_guard lock{mu_};
    capacity_ = n == 0 ? 1 : n;
    while (map_.size() > capacity_) {
      ++evictions_;
      map_.erase(lru_.back());
      lru_.pop_back();
    }
  }

 private:
  struct Entry {
    std::shared_ptr<const CompiledGraph> value;
    std::list<std::string>::iterator lru_pos;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  ///< most recent first
  std::size_t capacity_ = 64;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace aiesim

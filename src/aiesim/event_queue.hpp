// aiesim -- event queues for the cycle-approximate engine.
//
// The engine orders kernel activations by (virtual time, sequence number):
// among simultaneous events the queue is FIFO in push order, which makes
// simulation runs deterministic and independent of container internals.
// That contract is locked in by tests/aiesim/test_event_queue.cpp.
//
// Two implementations share it:
//   * PriorityEventQueue -- the reference structure, a std::priority_queue
//     with O(log n) push/pop. Retained as the baseline the timing wheel is
//     fuzz-compared (and benchmarked) against.
//   * TimingWheelQueue -- a hierarchical timing wheel / bucket queue keyed
//     on cycle time. Pushes hash into 64-slot levels of geometrically
//     growing slot width; same-cycle events share one level-0 slot and
//     drain in push order, so pop is O(1) off the occupancy bitmasks.
//     Wakes dated before the wheel floor (a consumer woken with the stamp
//     of an item produced in its past) keep exact (time, seq) order
//     through a small sorted side array.
#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

namespace aiesim {

/// One scheduled kernel activation.
struct Event {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;  ///< FIFO among simultaneous events
  std::coroutine_handle<> h;
};

/// Reference queue: binary heap ordered by (time, seq).
class PriorityEventQueue {
 public:
  void push(const Event& e) { q_.push(e); }

  /// Pops the earliest event (ties broken by lowest seq) into `out`;
  /// returns false when empty.
  bool pop(Event& out) {
    if (q_.empty()) return false;
    out = q_.top();
    q_.pop();
    return true;
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  struct After {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, After> q_;
};

/// Hierarchical timing wheel: kLevels levels of 64 slots; a level-l slot
/// spans 64^l cycles, so the wheel covers 64^kLevels cycles ahead of its
/// floor (the largest time popped from the wheel so far). Level-0 slots are
/// one cycle wide: all events in a slot share a timestamp and drain FIFO,
/// which is exactly the engine's same-cycle seq contract. Pops locate the
/// next slot with one count-trailing-zeros over the per-level occupancy
/// bitmask; entering a higher-level window cascades its slot down,
/// front-inserting so older (lower-seq) events stay ahead of same-time
/// events pushed directly to the lower level.
///
/// Exactness notes (fuzz-checked against PriorityEventQueue):
///  * equal-time events never split across levels once popping reaches
///    them: cascades complete before the window's first pop;
///  * pushes dated before the floor (a consumer woken with the stamp of an
///    item produced in its virtual past) go to `past_`, kept sorted by
///    (time, seq); everything there precedes the whole wheel by
///    construction, so draining it first preserves global order;
///  * pushes beyond the horizon go to `over_` and are re-filed when the
///    wheel approaches them.
class TimingWheelQueue {
 public:
  void push(const Event& e) {
    ++size_;
    if (e.time < floor_) {
      const auto before = [](const Event& a, const Event& b) {
        return a.time != b.time ? a.time < b.time : a.seq < b.seq;
      };
      past_.insert(std::upper_bound(past_.begin() +
                                        static_cast<std::ptrdiff_t>(past_head_),
                                    past_.end(), e, before),
                   e);
      return;
    }
    file(e);
  }

  bool pop(Event& out) {
    if (past_head_ < past_.size()) {
      // All past events predate the wheel floor, hence the whole wheel.
      out = past_[past_head_++];
      if (past_head_ == past_.size()) {
        past_.clear();
        past_head_ = 0;
      }
      --size_;
      return true;
    }
    if (size_ == 0) return false;
    for (;;) {
      const unsigned pos0 = static_cast<unsigned>(floor_ & 63);
      const std::uint64_t hi0 = occ_[0] & (~std::uint64_t{0} << pos0);
      if (hi0 != 0) {
        // Level-0 slots at or after the floor position hold events of the
        // current 64-cycle window; the lowest set bit is the next cycle.
        const unsigned s = static_cast<unsigned>(std::countr_zero(hi0));
        const std::uint64_t t0 = (floor_ & ~std::uint64_t{63}) + s;
        if (!over_.empty() && over_min_ <= t0) {
          // An overflow entry (always an older push than any same-time
          // wheel entry) dates at or before the next slot: re-file it
          // before popping, or the (time, seq) merge breaks -- and the
          // floor could overrun over_min_, later underflowing the
          // level-index computation in file_front().
          refile_overflow();
          continue;
        }
        Slot& sl = level_[0][s];
        out = sl.v[sl.head++];
        floor_ = out.time;
        if (sl.head == sl.v.size()) {
          sl.v.clear();
          sl.head = 0;
          occ_[0] &= ~(std::uint64_t{1} << s);
        }
        --size_;
        return true;
      }
      advance();
    }
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  static constexpr int kLevels = 5;
  static constexpr std::uint64_t kSpan = std::uint64_t{1}
                                         << (6 * kLevels);  // 2^30 cycles

  struct Slot {
    std::vector<Event> v;
    std::size_t head = 0;  ///< drained prefix (level 0 only)
  };

  void file(const Event& e) {
    const std::uint64_t d = e.time - floor_;
    if (d >= kSpan) {
      over_min_ = std::min(over_min_, e.time);
      over_.push_back(e);
      return;
    }
    const int l = d == 0 ? 0 : (std::bit_width(d) - 1) / 6;
    const unsigned s = static_cast<unsigned>((e.time >> (6 * l)) & 63);
    level_[l][s].v.push_back(e);
    occ_[l] |= std::uint64_t{1} << s;
  }

  /// Re-files `e` during a cascade or an overflow re-file. Among same-time
  /// entries a slot must stay seq-ordered. Cascaded events are *usually*
  /// the oldest of their cycle (floor_ only grows, so later pushes of a
  /// given time file at the same or a lower level) and land at the front --
  /// but an overflow re-file can drop an even older entry into a lower
  /// level while its same-cycle peers still sit in a higher slot awaiting
  /// cascade, so the insert position is found by seq among same-time
  /// entries rather than assumed to be the front. Order against
  /// different-time entries of a level>0 slot is immaterial: cascading
  /// re-sorts by time. Callers iterate sources in reverse so insertion
  /// preserves the sources' own order.
  void file_front(const Event& e) {
    const std::uint64_t d = e.time - floor_;
    const int l = d == 0 ? 0 : (std::bit_width(d) - 1) / 6;
    const unsigned s = static_cast<unsigned>((e.time >> (6 * l)) & 63);
    Slot& sl = level_[l][s];
    // Same-time entries in a slot are seq-ascending (pushes append in seq
    // order, and this insert keeps the invariant), so scanning backwards
    // for the last same-time lower-seq entry yields the position.
    std::size_t pos = sl.head;
    for (std::size_t i = sl.v.size(); i-- > sl.head;) {
      if (sl.v[i].time == e.time && sl.v[i].seq < e.seq) {
        pos = i + 1;
        break;
      }
    }
    sl.v.insert(sl.v.begin() + static_cast<std::ptrdiff_t>(pos), e);
    occ_[l] |= std::uint64_t{1} << s;
  }

  /// Re-files every overflow event now within the wheel span. Iterated in
  /// reverse so file_front() preserves the entries' own push order; the
  /// remainder (still beyond the span) stays in `over_` with a fresh
  /// minimum. Requires floor_ <= over_min_, which pop()'s pre-pop check
  /// and advance()'s refile-before-advance ordering maintain.
  void refile_overflow() {
    std::vector<Event> keep;
    over_min_ = ~std::uint64_t{0};
    for (std::size_t i = over_.size(); i-- > 0;) {
      const Event& e = over_[i];
      if (e.time - floor_ < kSpan) {
        file_front(e);
      } else {
        over_min_ = std::min(over_min_, e.time);
        keep.push_back(e);
      }
    }
    std::reverse(keep.begin(), keep.end());
    over_ = std::move(keep);
  }

  /// The current level-0 window is exhausted: jump the floor to the next
  /// occupied window and cascade down every level whose window starts
  /// exactly there. Candidates across levels can tie -- e.g. a level-1
  /// slot for [4096,4160) and a level-2 slot for [4096,8192) both bid
  /// 4096 -- and entering a window without cascading its slot would leave
  /// events stranded at slot == pos (misread as next-lap), so ALL tied
  /// slots cascade, not just one.
  void advance() {
    std::uint64_t cand[kLevels];
    std::uint64_t best_t = ~std::uint64_t{0};
    for (int l = 0; l < kLevels; ++l) {
      cand[l] = ~std::uint64_t{0};
      if (occ_[l] == 0) continue;
      const int shift = 6 * l;
      const unsigned pos = static_cast<unsigned>((floor_ >> shift) & 63);
      const std::uint64_t lap = std::uint64_t{1} << (shift + 6);
      const std::uint64_t lap_base = floor_ & ~(lap - 1);
      // The slot the floor currently sits in was cascaded on entry (and at
      // level 0 fully drained before advance() runs), so a set bit at
      // `pos` can only mean next-lap events.
      const std::uint64_t hi =
          occ_[l] & (~std::uint64_t{0} << pos) & ~(std::uint64_t{1} << pos);
      if (hi != 0) {
        const auto s = static_cast<unsigned>(std::countr_zero(hi));
        cand[l] = lap_base + (std::uint64_t{s} << shift);
      } else {
        const auto s = static_cast<unsigned>(std::countr_zero(occ_[l]));
        cand[l] = lap_base + lap + (std::uint64_t{s} << shift);
      }
      best_t = std::min(best_t, cand[l]);
    }
    // Overflow events re-file once the next stop is at or past their
    // minimum; <= so equal-time overflow entries (always older than wheel
    // entries of the same time) get filed before that time pops.
    if (!over_.empty() && over_min_ <= best_t) {
      if (best_t == ~std::uint64_t{0}) {
        floor_ = over_min_;  // wheel empty: jump straight there
      }
      refile_overflow();
      return;
    }
    floor_ = best_t;
    // Cascade tied levels lowest-first: a level-l slot's events re-file at
    // levels < l into slots strictly after the new floor's position, so a
    // higher tied level never refills a slot cascaded before it -- and for
    // same-time events split across levels or re-filed from the overflow
    // array, file_front's seq-aware insert keeps each slot's same-cycle
    // entries in push order.
    for (int l = 1; l < kLevels; ++l) {
      if (cand[l] != best_t) continue;
      const auto s = static_cast<unsigned>((floor_ >> (6 * l)) & 63);
      Slot& sl = level_[l][s];
      occ_[l] &= ~(std::uint64_t{1} << s);
      std::vector<Event> moved = std::move(sl.v);
      sl.v.clear();
      sl.head = 0;
      for (std::size_t i = moved.size(); i-- > 0;) file_front(moved[i]);
    }
  }

  Slot level_[kLevels][64];
  std::uint64_t occ_[kLevels]{};
  std::uint64_t floor_ = 0;
  std::size_t size_ = 0;
  std::vector<Event> past_;
  std::size_t past_head_ = 0;
  std::vector<Event> over_;
  std::uint64_t over_min_ = ~std::uint64_t{0};
};

}  // namespace aiesim

// aiesim -- event queues for the cycle-approximate engine.
//
// The engine orders kernel activations by (virtual time, sequence number):
// among simultaneous events the queue is FIFO in push order, which makes
// simulation runs deterministic and independent of container internals.
// That contract is locked in by tests/aiesim/test_event_queue.cpp.
//
// Two implementations share it:
//   * PriorityEventQueue -- the reference structure, a std::priority_queue
//     with O(log n) push/pop. Retained as the baseline the timing wheel is
//     fuzz-compared (and benchmarked) against.
//   * TimingWheelQueue -- a hierarchical timing wheel / bucket queue keyed
//     on cycle time. Pushes hash into 64-slot levels of geometrically
//     growing slot width; same-cycle events share one level-0 slot and
//     drain in push order, so pop is O(1) off the occupancy bitmasks.
//     Wakes dated before the wheel floor (a consumer woken with the stamp
//     of an item produced in its past) keep exact (time, seq) order
//     through a small sorted side array.
#pragma once

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

namespace aiesim {

/// One scheduled kernel activation.
struct Event {
  std::uint64_t time = 0;
  std::uint64_t seq = 0;  ///< FIFO among simultaneous events
  std::coroutine_handle<> h;
};

/// Reference queue: binary heap ordered by (time, seq).
class PriorityEventQueue {
 public:
  void push(const Event& e) { q_.push(e); }

  /// Pops the earliest event (ties broken by lowest seq) into `out`;
  /// returns false when empty.
  bool pop(Event& out) {
    if (q_.empty()) return false;
    out = q_.top();
    q_.pop();
    return true;
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  struct After {
    [[nodiscard]] bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, After> q_;
};

}  // namespace aiesim

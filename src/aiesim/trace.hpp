// aiesim -- execution trace (the measurement instrument of paper Table 1).
//
// AMD's aiesim reports per-iteration timestamps in its execution trace; the
// paper derives "processing time per input block" from the deltas. This
// trace records one event per element a kernel writes to a global output,
// in virtual AIE cycles, and computes the same statistics.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace aiesim {

struct TraceEvent {
  std::uint64_t cycles = 0;     ///< virtual time of the event (AIE cycles)
  std::string kernel;           ///< producing kernel name
  std::uint64_t iteration = 0;  ///< running iteration count of that kernel
};

/// Ordered list of output-iteration events in virtual time.
class Trace {
 public:
  void record(std::uint64_t cycles, std::string kernel,
              std::uint64_t iteration) {
    events_.push_back(TraceEvent{cycles, std::move(kernel), iteration});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// Steady-state cycles between consecutive output iterations, skipping
  /// `warmup` leading events (pipeline fill).
  [[nodiscard]] double mean_iteration_delta(std::size_t warmup = 1) const {
    if (events_.size() < warmup + 2) return 0.0;
    const std::uint64_t first = events_[warmup].cycles;
    const std::uint64_t last = events_.back().cycles;
    return static_cast<double>(last - first) /
           static_cast<double>(events_.size() - warmup - 1);
  }

  /// Dumps the trace in a simple line format.
  void dump(std::ostream& os) const {
    os << "# aiesim-substitute execution trace (cycles @ AIE clock)\n";
    for (const TraceEvent& e : events_) {
      os << "t=" << e.cycles << " kernel=" << e.kernel
         << " iteration=" << e.iteration << "\n";
    }
  }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace aiesim

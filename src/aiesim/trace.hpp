// aiesim -- execution trace (the measurement instrument of paper Table 1).
//
// AMD's aiesim reports per-iteration timestamps in its execution trace; the
// paper derives "processing time per input block" from the deltas. This
// trace records one event per element a kernel writes to a global output,
// in virtual AIE cycles, and computes the same statistics.
//
// The engine's fast path records into an append-only store: kernel names
// are interned once at bind time, records carry a 12-byte POD (cycles,
// name id, iteration) into fixed-size chunks whose capacity is reserved up
// front, so the hot path never copies a string or reallocates an element.
// The string-based events() view is materialized lazily for consumers; the
// reference engine variant still records through the legacy string
// overload, and both funnel into the same store so their digests compare.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace aiesim {

struct TraceEvent {
  std::uint64_t cycles = 0;     ///< virtual time of the event (AIE cycles)
  std::string kernel;           ///< producing kernel name
  std::uint64_t iteration = 0;  ///< running iteration count of that kernel
};

/// Ordered list of output-iteration events in virtual time.
class Trace {
 public:
  /// Compact stored form: the kernel name is an interned id.
  struct Record {
    std::uint64_t cycles = 0;
    std::uint32_t name = 0;
    std::uint64_t iteration = 0;
  };

  static constexpr std::uint32_t kNoName = 0xFFFFFFFFu;

  /// Returns a stable id for `kernel`, interning it on first use.
  std::uint32_t intern(std::string_view kernel) {
    for (std::uint32_t i = 0; i < names_.size(); ++i) {
      if (names_[i] == kernel) return i;
    }
    names_.emplace_back(kernel);
    return static_cast<std::uint32_t>(names_.size() - 1);
  }

  /// Pre-sizes the name table and the first record chunk so that a run
  /// recording up to `records_hint` events performs no element copies.
  void reserve(std::size_t names_hint, std::size_t records_hint) {
    names_.reserve(names_.size() + names_hint);
    chunks_.reserve(chunks_.size() + records_hint / kChunkSize + 1);
    if (chunks_.empty()) new_chunk();
  }

  /// Fast path: append by interned name id.
  void record(std::uint64_t cycles, std::uint32_t name,
              std::uint64_t iteration) {
    if (chunks_.empty() || chunks_.back().size() == kChunkSize) new_chunk();
    chunks_.back().push_back(Record{cycles, name, iteration});
    ++size_;
    cache_valid_ = false;
  }

  /// Legacy path (reference engine variant, direct users): interns on the
  /// way in.
  void record(std::uint64_t cycles, const std::string& kernel,
              std::uint64_t iteration) {
    record(cycles, intern(kernel), iteration);
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] const std::string& name(std::uint32_t id) const {
    return names_[id];
  }

  [[nodiscard]] std::size_t name_count() const { return names_.size(); }

  /// Record-level view (interned-id form) for layers that merge traces
  /// without materializing strings; `i < size()`.
  [[nodiscard]] const Record& record_at(std::size_t i) const { return at(i); }

  /// String-typed view, materialized on first use after recording.
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    if (!cache_valid_) {
      events_cache_.clear();
      events_cache_.reserve(size_);
      for (std::size_t i = 0; i < size_; ++i) {
        const Record& r = at(i);
        events_cache_.push_back(
            TraceEvent{r.cycles, names_[r.name], r.iteration});
      }
      cache_valid_ = true;
    }
    return events_cache_;
  }

  /// Steady-state cycles between consecutive output iterations, skipping
  /// `warmup` leading events (pipeline fill).
  [[nodiscard]] double mean_iteration_delta(std::size_t warmup = 1) const {
    if (size_ < warmup + 2) return 0.0;
    const std::uint64_t first = at(warmup).cycles;
    const std::uint64_t last = at(size_ - 1).cycles;
    return static_cast<double>(last - first) /
           static_cast<double>(size_ - warmup - 1);
  }

  /// Dumps the trace in a simple line format.
  void dump(std::ostream& os) const {
    os << "# aiesim-substitute execution trace (cycles @ AIE clock)\n";
    for (std::size_t i = 0; i < size_; ++i) {
      const Record& r = at(i);
      os << "t=" << r.cycles << " kernel=" << names_[r.name]
         << " iteration=" << r.iteration << "\n";
    }
  }

  /// Digest of the trace as a *multiset* of records: each record is hashed
  /// independently with FNV-1a over (cycles, kernel name characters,
  /// iteration), and the per-record hashes are combined by wrapping
  /// addition. Two independence properties follow:
  ///  * intern-order independence -- the name *strings* are hashed, not the
  ///    intern ids, so the fast variant (names interned at bind) and the
  ///    reference variant (interned on first record) digest identically;
  ///  * record-order independence -- addition commutes, so a trace spliced
  ///    together from a partial re-simulation plus cached baseline records
  ///    digests identically to the full run that produced the same events.
  [[nodiscard]] std::uint64_t digest() const {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const Record& r = at(i);
      std::uint64_t h = 14695981039346656037ull;
      const auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 8; ++b) {
          h = (h ^ (v & 0xFF)) * 1099511628211ull;
          v >>= 8;
        }
      };
      mix(r.cycles);
      for (const char c : names_[r.name]) {
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
      }
      mix(r.iteration);
      sum += h;
    }
    return sum;
  }

 private:
  static constexpr std::size_t kChunkSize = 4096;

  void new_chunk() {
    chunks_.emplace_back();
    chunks_.back().reserve(kChunkSize);
  }

  [[nodiscard]] const Record& at(std::size_t i) const {
    return chunks_[i / kChunkSize][i % kChunkSize];
  }

  std::vector<std::string> names_;
  std::vector<std::vector<Record>> chunks_;  ///< all but last full
  std::size_t size_ = 0;
  mutable std::vector<TraceEvent> events_cache_;
  mutable bool cache_valid_ = false;
};

}  // namespace aiesim

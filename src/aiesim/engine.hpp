// aiesim -- cycle-approximate AIE-array simulation engine
// (DESIGN.md substitution #2 for AMD's aiesim).
//
// The engine executes a cgsim graph in *virtual time*: every kernel owns a
// simulated AIE tile with its own cycle clock. Kernel coroutines run
// functionally; their instrumented operation counts (src/aie/cycle_model)
// are converted to cycles with the VLIW cost model after each activation
// segment, stream/window accesses are charged at the access point, and
// cross-kernel data dependencies propagate time through per-item
// virtual-time stamps in the channels. An event queue orders kernel
// activations by tile time, exactly like an event-driven RTL simulator.
//
// Detail levels:
//   * DetailLevel::event -- event-driven only; fast.
//   * DetailLevel::cycle -- additionally steps per-tile pipeline state for
//     every simulated cycle, reproducing the characteristic wall-clock cost
//     of cycle-approximate simulation (paper Table 2's aiesim column).
//
// Engine variants (bit-identical observable results; checked in-tree by
// tests/aiesim/test_engine.cpp and gated by bench_ablation_aiesim):
//   * EngineVariant::fast -- timing-wheel event queue, tasks and channels
//     resolved to dense integer ids at bind so the hot path indexes flat
//     arrays (task states, per-edge global/output flags, hop costs, a lazy
//     port-cost cache) instead of hashing pointers, block-stepped micro
//     model (SIMD busy spans, GF(2) LFSR jump-ahead across stalls),
//     buffered trace records.
//   * EngineVariant::reference -- the original structures: binary-heap
//     queue, unordered_map/set lookups keyed on pointers, one micro-model
//     loop iteration per cycle, string trace records. Retained as the
//     baseline the fast path is verified and benchmarked against.
#pragma once

#include <algorithm>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aie/cycle_model.hpp"
#include "compiled.hpp"
#include "core/cgsim.hpp"
#include "cost_model.hpp"
#include "event_queue.hpp"
#include "micro_model.hpp"
#include "placement.hpp"
#include "trace.hpp"

namespace aiesim {

enum class DetailLevel : std::uint8_t {
  event,  ///< event-driven virtual time only
  cycle,  ///< plus per-cycle tile pipeline stepping
};

enum class EngineVariant : std::uint8_t {
  fast,       ///< timing wheel + dense id tables + block-stepped micro model
  reference,  ///< original heap + hash lookups + per-cycle loop
};

[[nodiscard]] constexpr const char* to_string(EngineVariant v) {
  return v == EngineVariant::fast ? "fast" : "reference";
}

/// Configuration of one cycle-approximate simulation run.
struct SimConfig {
  CostModel cost{};
  /// Model the extracted (generated) kernel I/O instead of the
  /// hand-optimized native stream access (paper Section 5.2).
  bool generated_io = false;
  DetailLevel detail = DetailLevel::event;
  EngineVariant engine = EngineVariant::fast;
  double aie_mhz = 1250.0;  ///< paper Section 5.2 configuration
  double pl_mhz = 625.0;
  int repetitions = 1;  ///< input replay count (paper Table 2)
  /// Explicit kernel-to-tile placement (by kernel name); kernels not
  /// listed here get automatic snake placement on the array grid.
  std::map<std::string, TileCoord> placement{};
  int array_columns = 8;  ///< grid width used by automatic placement
};

/// Per-kernel (per simulated tile) accounting.
struct TileStats {
  std::string kernel;
  std::uint64_t busy_cycles = 0;   ///< compute + port-access cycles charged
  std::uint64_t final_clock = 0;   ///< tile time at quiescence
  std::uint64_t activations = 0;   ///< scheduler segments executed
  aie::OpCounts ops{};             ///< accumulated instrumentation
  std::uint64_t iterations = 0;    ///< global-output elements written

  /// Fraction of the makespan this tile spent busy.
  [[nodiscard]] double utilization(std::uint64_t makespan) const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(busy_cycles) /
                               static_cast<double>(makespan);
  }
};

/// Result of a simulation: functional statistics plus virtual timing.
struct SimResult {
  cgsim::RunResult run{};
  std::uint64_t virtual_cycles = 0;  ///< makespan over all tiles
  double ns_total = 0.0;             ///< makespan at the AIE clock
  Trace trace{};
  std::uint64_t output_items = 0;
  std::vector<TileStats> tiles;      ///< one entry per kernel
  std::uint64_t step_checksum = 0;   ///< micro-model checksum (cycle detail)

  /// Steady-state nanoseconds between output iterations.
  [[nodiscard]] double ns_per_iteration(double aie_mhz,
                                        std::size_t warmup = 1) const {
    return trace.mean_iteration_delta(warmup) * 1e3 / aie_mhz;
  }
};

/// The virtual-time executor + accounting hooks.
class SimEngine final : public cgsim::Executor, public cgsim::SimHooks {
 public:
  explicit SimEngine(const SimConfig& cfg)
      : cfg_(cfg), fast_(cfg.engine == EngineVariant::fast) {}

  /// Collects per-task metadata and resolves channels/tasks to dense ids;
  /// call after all sources/sinks are attached. Names are backfilled into
  /// any task states created before the context was attached, so traces
  /// and tile stats never show anonymous tasks.
  ///
  /// When `compiled` is non-null (and matches cfg_: same graph, cost model,
  /// placement directives), the fast variant copies its precomputed tables
  /// instead of deriving them -- the graph-compilation fast path. The
  /// reference variant ignores it by design: it is the baseline the
  /// compiled path is verified against.
  void bind(cgsim::RuntimeContext& ctx,
            const CompiledGraph* compiled = nullptr) {
    ctx_ = &ctx;
    const cgsim::GraphView& g = ctx.graph();
    if (fast_) {
      if (compiled != nullptr) {
        // The artifact's tables are read-only spans into its arena; the
        // engine keeps private copies because edge_cost_ entries are
        // overwritten at run time on settings mismatches.
        placement_ = Placement::from_coords(
            {compiled->placement_coords.begin(),
             compiled->placement_coords.end()});
        edge_flags_.assign(compiled->edge_flags.begin(),
                           compiled->edge_flags.end());
        edge_hop_.assign(compiled->edge_hop.begin(),
                         compiled->edge_hop.end());
        edge_cost_.assign(compiled->edge_cost.begin(),
                          compiled->edge_cost.end());
      } else {
        // Kernel-to-tile placement: intra-array streams pay per-hop switch
        // latency proportional to the Manhattan distance between tiles.
        placement_ = Placement::explicit_by_name(g, cfg_.placement,
                                                 cfg_.array_columns);
        bind_fast_tables(g);
      }
      bind_fast_tasks(ctx);
    } else {
      placement_ = Placement::explicit_by_name(g, cfg_.placement,
                                               cfg_.array_columns);
      bind_reference(ctx, g);
    }
  }

  // --- Executor ---
  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    TaskState& s = state_for(h);
    const std::uint64_t t = std::max(s.clock, not_before);
    const Event ev{t, seq_++, h};
    if (fast_) {
      wheel_.push(ev);
    } else {
      heap_.push(ev);
    }
  }

  // --- SimHooks ---
  [[nodiscard]] std::uint64_t now() const override {
    if (current_ == nullptr) return 0;
    return segment_base_ + cfg_.cost.compute_cycles(current_->counter.counts) +
           port_pending_;
  }

  void charge_port_access(const cgsim::PortSettings& s,
                          std::size_t elem_bytes, bool is_read,
                          const cgsim::ChannelBase* ch) override {
    if (current_ == nullptr) return;
    const bool generated = cfg_.generated_io && current_->is_kernel;
    if (fast_) {
      const int e = ch->edge_id();
      if (e < 0 || static_cast<std::size_t>(e) >= edge_flags_.size()) {
        // Channel from outside the bound graph: no global/hop metadata.
        port_pending_ += cfg_.cost.port_cycles(s, elem_bytes, false,
                                               generated);
        return;
      }
      const std::uint8_t flags = edge_flags_[static_cast<std::size_t>(e)];
      // The element width is a property of the edge, but the two sides of
      // an edge may access it through ports with different settings (a
      // stream_source writes with default settings into a window-read
      // kernel port), so the cost is cached per (edge, side, generated)
      // and the cache entry remembers every cost-relevant input it was
      // computed from, compared field-by-field -- a mismatch (possible
      // when a broadcast edge mixes kernel and sink readers) recomputes
      // and overwrites. A packed key would collide for beat widths whose
      // low bits alias after shifting; the fields cannot.
      const bool window = s.buffer == cgsim::BufferMode::window ||
                          s.buffer == cgsim::BufferMode::pingpong;
      const bool gmio = s.io == cgsim::IoKind::gmio;
      EdgeCost& cached =
          edge_cost_[static_cast<std::size_t>(e) * 4 + (is_read ? 2 : 0) +
                     (generated ? 1 : 0)];
      if (!cached.valid || cached.window != window || cached.gmio != gmio ||
          cached.beat_bits != s.beat_bits ||
          cached.elem_bytes != elem_bytes) {
        cached.valid = true;
        cached.window = window;
        cached.gmio = gmio;
        cached.beat_bits = s.beat_bits;
        cached.elem_bytes = elem_bytes;
        cached.cycles = cfg_.cost.port_cycles(
            s, elem_bytes, (flags & kEdgeGlobal) != 0, generated);
      }
      port_pending_ += cached.cycles;
      if (is_read) {
        // Stream-switch routing latency, charged once per element on the
        // consuming side (0 for co-located or global endpoints).
        port_pending_ += edge_hop_[static_cast<std::size_t>(e)];
      }
      if (!is_read && current_->is_kernel && (flags & kEdgeGlobalOut) != 0) {
        if (current_->trace_name == Trace::kNoName) {
          current_->trace_name = trace_.intern(current_->name);
        }
        trace_.record(now(), current_->trace_name, ++current_->iterations);
        ++output_items_;
      }
      return;
    }
    const bool global_io = global_.contains(ch);
    port_pending_ +=
        cfg_.cost.port_cycles(s, elem_bytes, global_io, generated);
    if (is_read) {
      const auto hop = hop_cost_.find(ch);
      if (hop != hop_cost_.end()) port_pending_ += hop->second;
    }
    if (!is_read && current_->is_kernel && global_out_.contains(ch)) {
      trace_.record(now(), current_->name, ++current_->iterations);
      ++output_items_;
    }
  }

  /// Runs to quiescence. The context must already be bound and started.
  cgsim::RunResult run() {
    cgsim::RunResult r{};
    Event ev;
    const bool cycle_detail = cfg_.detail == DetailLevel::cycle;
    while (fast_ ? wheel_.pop(ev) : heap_.pop(ev)) {
      TaskState& s = state_for(ev.h);
      segment_base_ = std::max(s.clock, ev.time);
      current_ = &s;
      port_pending_ = 0;
      s.counter.reset();
      {
        // Batched: records accumulate into a stack-local OpCounts and merge
        // into the tile counter once per activation (same final counts).
        aie::ScopedCounterBatch scoped{&s.counter};
        ev.h.resume();
      }
      ++r.resumes;
      const std::uint64_t end = segment_base_ +
                                cfg_.cost.compute_cycles(s.counter.counts) +
                                port_pending_;
      if (cycle_detail) {
        // Stall cycles (tile waiting on data) advance only the LFSR time
        // base; busy cycles do the full micro-model update.
        const std::uint64_t stall = segment_base_ - s.clock;
        const std::uint64_t busy = end - segment_base_;
        if (fast_) {
          if (stall != 0) micro_fast_.step_stall(stall);
          if (busy != 0) micro_fast_.step_busy(busy);
        } else {
          if (stall != 0) micro_ref_.step_stall(stall);
          if (busy != 0) micro_ref_.step_busy(busy);
        }
      }
      s.busy_cycles += end - segment_base_;
      ++s.activations;
      s.total_ops += s.counter.counts;
      s.clock = end;
      makespan_ = std::max(makespan_, end);
      current_ = nullptr;
      if (ev.h.done()) ctx_->on_task_finished(ev.h);
    }
    r.virtual_cycles = makespan_;
    assert(state_tables_stable() &&
           "task state tables grew after bind-time reserve");
    return r;
  }

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }

  /// Per-kernel tile statistics, ordered by kernel name (deterministic
  /// across engine variants).
  [[nodiscard]] std::vector<TileStats> tile_stats() const {
    std::vector<TileStats> out;
    const auto add = [&out](const TaskState& s) {
      if (!s.is_kernel) return;
      out.push_back(TileStats{s.name, s.busy_cycles, s.clock, s.activations,
                              s.total_ops, s.iterations});
    };
    if (fast_) {
      for (const TaskState& s : states_) add(s);
      for (const TaskState& s : overflow_states_) add(s);
    } else {
      for (const auto& [addr, s] : ref_states_) add(s);
    }
    std::sort(out.begin(), out.end(),
              [](const TileStats& a, const TileStats& b) {
                return a.kernel < b.kernel;
              });
    return out;
  }

  /// Per-kernel tile statistics indexed by flattened-graph kernel id;
  /// kernels the engine never saw keep a default entry. The incremental
  /// re-simulation layer splices baseline and partial-run stats by this
  /// index.
  [[nodiscard]] std::vector<TileStats> tile_stats_by_kernel(
      std::size_t n_kernels) const {
    std::vector<TileStats> out(n_kernels);
    const auto add = [&out, n_kernels](const TaskState& s) {
      if (s.kernel_index < 0 ||
          static_cast<std::size_t>(s.kernel_index) >= n_kernels) {
        return;
      }
      out[static_cast<std::size_t>(s.kernel_index)] =
          TileStats{s.name, s.busy_cycles, s.clock, s.activations,
                    s.total_ops, s.iterations};
    };
    if (fast_) {
      for (const TaskState& s : states_) add(s);
      for (const TaskState& s : overflow_states_) add(s);
    } else {
      for (const auto& [addr, s] : ref_states_) add(s);
    }
    return out;
  }

  /// Final tile clock of the task behind `h`; 0 when the engine never
  /// scheduled it. Read-only: never creates a state.
  [[nodiscard]] std::uint64_t task_clock(std::coroutine_handle<> h) const {
    if (fast_) {
      const TaskState* s = hindex_.find(h.address());
      return s == nullptr ? 0 : s->clock;
    }
    const auto it = ref_states_.find(h.address());
    return it == ref_states_.end() ? 0 : it->second.clock;
  }

  [[nodiscard]] std::uint64_t makespan() const { return makespan_; }
  [[nodiscard]] std::uint64_t output_items() const { return output_items_; }

  /// Checksum of the per-cycle pipeline stepping; consuming it keeps the
  /// cycle-detail work observable.
  [[nodiscard]] std::uint64_t step_checksum() const {
    return fast_ ? micro_fast_.checksum() : micro_ref_.checksum();
  }
  /// Full micro-model state, for bit-exactness comparison across variants.
  [[nodiscard]] MicroSnapshot micro_snapshot() const {
    return fast_ ? micro_fast_.snapshot() : micro_ref_.snapshot();
  }
  /// Resolves `h` to the address of its task state, creating the state if
  /// unknown -- the same lookup the hot path uses. Exposed so tests can
  /// pin that resolution (and the one-entry cache in front of it) survives
  /// HandleIndex rehashes with state identity intact.
  [[nodiscard]] const void* state_identity(std::coroutine_handle<> h) {
    return &state_for(h);
  }

  /// False if a task state had to be allocated after bind() reserved the
  /// dense tables, or if the one-entry state cache disagrees with the
  /// handle index it mirrors (instrumented builds assert on this at end
  /// of run).
  [[nodiscard]] bool state_tables_stable() const {
    if (tables_grew_) return false;
    if (cached_addr_ == nullptr) return true;
    return cache_generation_ == hindex_.generation() &&
           hindex_.find(cached_addr_) == cached_state_;
  }
  [[nodiscard]] EngineVariant variant() const { return cfg_.engine; }

 private:
  struct TaskState {
    std::uint64_t clock = 0;
    aie::OpCounter counter{};
    std::uint64_t iterations = 0;
    std::string name;
    bool is_kernel = false;
    int kernel_index = -1;  ///< flattened-graph kernel id (-1: source/sink)
    std::uint32_t trace_name = Trace::kNoName;
    std::uint64_t busy_cycles = 0;
    std::uint64_t activations = 0;
    aie::OpCounts total_ops{};
  };

  /// Open-addressing map from coroutine frame address to its dense task
  /// state -- one multiply-shift hash and a short probe instead of
  /// std::unordered_map's bucket chase on the resume path.
  class HandleIndex {
   public:
    void reserve(std::size_t n) { rehash(2 * (n + size_) + 8); }

    [[nodiscard]] TaskState* find(void* key) const {
      if (cap_ == 0) return nullptr;
      std::size_t i = hash(key) & (cap_ - 1);
      while (keys_[i] != nullptr) {
        if (keys_[i] == key) return vals_[i];
        i = (i + 1) & (cap_ - 1);
      }
      return nullptr;
    }

    void insert(void* key, TaskState* val) {
      if (2 * (size_ + 1) > cap_) rehash(cap_ == 0 ? 16 : cap_ * 2);
      std::size_t i = hash(key) & (cap_ - 1);
      while (keys_[i] != nullptr) i = (i + 1) & (cap_ - 1);
      keys_[i] = key;
      vals_[i] = val;
      ++size_;
    }

    /// Bumped every time rehash() reallocates the key/value storage.
    /// Callers that hold results of find() across inserts compare this to
    /// detect that their pointers came from a dropped table generation.
    [[nodiscard]] std::uint64_t generation() const { return generation_; }

   private:
    static std::size_t hash(void* p) {
      auto x = reinterpret_cast<std::uintptr_t>(p);
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }

    void rehash(std::size_t want) {
      std::size_t cap = 16;
      while (cap < want) cap *= 2;
      if (cap <= cap_) return;
      std::vector<void*> keys(cap, nullptr);
      std::vector<TaskState*> vals(cap);
      for (std::size_t i = 0; i < cap_; ++i) {
        if (keys_[i] == nullptr) continue;
        std::size_t j = hash(keys_[i]) & (cap - 1);
        while (keys[j] != nullptr) j = (j + 1) & (cap - 1);
        keys[j] = keys_[i];
        vals[j] = vals_[i];
      }
      keys_ = std::move(keys);
      vals_ = std::move(vals);
      cap_ = cap;
      ++generation_;
    }

    std::vector<void*> keys_;
    std::vector<TaskState*> vals_;
    std::size_t cap_ = 0;
    std::size_t size_ = 0;
    std::uint64_t generation_ = 0;
  };

  /// Derives the static per-edge tables (flags, hop costs, cost memo) from
  /// the graph and placement. compile_graph() produces the same tables
  /// ahead of time; bind() copies those instead when given a CompiledGraph.
  void bind_fast_tables(const cgsim::GraphView& g) {
    edge_flags_.assign(g.edges.size(), 0);
    edge_hop_.assign(g.edges.size(), 0);
    edge_cost_.assign(g.edges.size() * 4, EdgeCost{});
    for (const cgsim::FlatGlobal& in : g.inputs) {
      edge_flags_[static_cast<std::size_t>(in.edge)] |= kEdgeGlobal;
    }
    for (const cgsim::FlatGlobal& out : g.outputs) {
      edge_flags_[static_cast<std::size_t>(out.edge)] |=
          kEdgeGlobal | kEdgeGlobalOut;
    }
    const std::vector<int> hops = placement_.all_edge_hops(g);
    for (std::size_t e = 0; e < hops.size(); ++e) {
      if (hops[e] > 0) {
        edge_hop_[e] =
            static_cast<std::uint64_t>(hops[e] * cfg_.cost.hop_cycles + 0.5);
      }
    }
  }

  /// Resolves the context's tasks to dense task states.
  void bind_fast_tasks(cgsim::RuntimeContext& ctx) {
    // Dense task states in task-id order, sized once: pointers into
    // states_ stay valid for the whole run (emplace_back stays within the
    // reserved capacity, and post-bind discoveries go to overflow_states_).
    auto& tasks = ctx.tasks();
    states_.reserve(states_.size() + tasks.size());
    hindex_.reserve(tasks.size());
    // reserve()/insert() below may rehash; drop any pre-bind cache entry.
    cached_addr_ = nullptr;
    cached_state_ = nullptr;
    trace_.reserve(tasks.size(), 4096);
    for (auto& rec : tasks) {
      void* addr = rec.task.handle().address();
      if (addr == nullptr) continue;
      TaskState* s = hindex_.find(addr);
      if (s == nullptr) {
        states_.emplace_back();
        s = &states_.back();
        hindex_.insert(addr, s);
      }
      // Backfill: the state may predate the context (engine driven
      // manually before bind); it must not stay anonymous.
      s->name = rec.name;
      s->is_kernel = rec.kernel_index >= 0;
      s->kernel_index = rec.kernel_index;
      s->trace_name = trace_.intern(rec.name);
    }
    bound_ = true;
  }

  void bind_reference(cgsim::RuntimeContext& ctx, const cgsim::GraphView& g) {
    for (const cgsim::FlatGlobal& out : g.outputs) {
      global_out_.insert(ctx.channel(out.edge));
    }
    for (const cgsim::FlatGlobal& in : g.inputs) {
      global_.insert(ctx.channel(in.edge));
    }
    for (const cgsim::FlatGlobal& out : g.outputs) {
      global_.insert(ctx.channel(out.edge));
    }
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      const int hops = placement_.edge_hops(g, static_cast<int>(e));
      if (hops > 0) {
        hop_cost_[ctx.channel(static_cast<int>(e))] =
            static_cast<std::uint64_t>(hops * cfg_.cost.hop_cycles + 0.5);
      }
    }
    // Backfill names into states created before the context existed.
    for (auto& [addr, s] : ref_states_) {
      if (!s.name.empty()) continue;
      if (const auto* rec = ctx.record_for(
              std::coroutine_handle<>::from_address(addr))) {
        s.name = rec->name;
        s.is_kernel = rec->kernel_index >= 0;
        s.kernel_index = rec->kernel_index;
      }
    }
    bound_ = true;
  }

  TaskState& state_for(std::coroutine_handle<> h) {
    if (!fast_) {
      auto [it, inserted] = ref_states_.try_emplace(h.address());
      if (inserted && ctx_ != nullptr) {
        if (const auto* rec = ctx_->record_for(h)) {
          it->second.name = rec->name;
          it->second.is_kernel = rec->kernel_index >= 0;
          it->second.kernel_index = rec->kernel_index;
        }
      }
      return it->second;
    }
    void* addr = h.address();
    // The one-entry cache is only valid for the index generation it was
    // filled under: an insert() can rehash (reallocate) the table storage,
    // and a cache consulted across that boundary would answer from a
    // dropped generation.
    if (addr == cached_addr_ && cache_generation_ == hindex_.generation()) {
      return *cached_state_;
    }
    TaskState* s = hindex_.find(addr);
    if (s == nullptr) {
      // Task unknown at bind time: park it off the dense table so existing
      // TaskState pointers stay valid.
      if (bound_) tables_grew_ = true;
      overflow_states_.emplace_back();
      s = &overflow_states_.back();
      if (ctx_ != nullptr) {
        if (const auto* rec = ctx_->record_for(h)) {
          s->name = rec->name;
          s->is_kernel = rec->kernel_index >= 0;
          s->kernel_index = rec->kernel_index;
          s->trace_name = trace_.intern(rec->name);
        }
      }
      hindex_.insert(addr, s);
    }
    cached_addr_ = addr;
    cached_state_ = s;
    cache_generation_ = hindex_.generation();
    return *s;
  }

  // Edge flag bits and the EdgeCost memo struct live in compiled.hpp
  // (shared with the ahead-of-time graph compiler).

  SimConfig cfg_;
  bool fast_;
  cgsim::RuntimeContext* ctx_ = nullptr;

  // Event queues (one active per variant).
  TimingWheelQueue wheel_;
  PriorityEventQueue heap_;

  // Fast variant: dense tables resolved at bind.
  std::vector<TaskState> states_;          ///< task-id order, fixed capacity
  std::deque<TaskState> overflow_states_;  ///< post-bind discoveries
  HandleIndex hindex_;
  void* cached_addr_ = nullptr;  ///< consecutive events mostly hit one task
  TaskState* cached_state_ = nullptr;
  std::uint64_t cache_generation_ = 0;  ///< hindex_ generation of the cache
  std::vector<std::uint8_t> edge_flags_;
  std::vector<std::uint64_t> edge_hop_;  ///< routing cycles per element
  /// [edge * 4 + is_read * 2 + generated] memoized port costs.
  std::vector<EdgeCost> edge_cost_;
  bool bound_ = false;
  bool tables_grew_ = false;

  // Reference variant: original pointer-hashed lookups.
  std::unordered_map<void*, TaskState> ref_states_;
  std::unordered_set<const cgsim::ChannelBase*> global_out_;
  std::unordered_set<const cgsim::ChannelBase*> global_;
  std::unordered_map<const cgsim::ChannelBase*, std::uint64_t> hop_cost_;

  Placement placement_;
  TaskState* current_ = nullptr;
  std::uint64_t segment_base_ = 0;
  std::uint64_t port_pending_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t makespan_ = 0;
  std::uint64_t output_items_ = 0;
  Trace trace_;
  TileMicroRef micro_ref_;
  TileMicroFast micro_fast_;
};

/// Cycle-approximate simulation of a compute graph with positional data
/// sources and sinks, mirroring cgsim's invocation convention
/// (paper Section 3.7). The fast engine variant binds through the
/// process-wide compiled-graph cache, so repeated simulations of one
/// configuration skip the per-run table derivation.
template <class... Args>
SimResult simulate(const cgsim::GraphView& g, const SimConfig& cfg,
                   Args&&... args) {
  SimEngine engine{cfg};
  cgsim::RuntimeContext ctx{g, cgsim::ExecMode::sim, &engine, &engine};
  cgsim::RunOptions opts{cgsim::ExecMode::sim, cfg.repetitions};
  std::size_t pos = 0;
  (cgsim::detail::attach_io(ctx, g, opts, pos++, std::forward<Args>(args)),
   ...);
  std::shared_ptr<const CompiledGraph> compiled;
  if (cfg.engine == EngineVariant::fast) {
    compiled = CompiledGraphCache::instance().get_or_compile(
        g, cfg.cost, cfg.generated_io, cfg.placement, cfg.array_columns);
  }
  engine.bind(ctx, compiled.get());
  ctx.start_all();
  SimResult res{};
  res.run = ctx.finish(engine.run());
  res.virtual_cycles = engine.makespan();
  res.ns_total = static_cast<double>(res.virtual_cycles) * 1e3 / cfg.aie_mhz;
  res.trace = engine.trace();
  res.output_items = engine.output_items();
  res.tiles = engine.tile_stats();
  res.step_checksum = engine.step_checksum();
  return res;
}

}  // namespace aiesim

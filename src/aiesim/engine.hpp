// aiesim -- cycle-approximate AIE-array simulation engine
// (DESIGN.md substitution #2 for AMD's aiesim).
//
// The engine executes a cgsim graph in *virtual time*: every kernel owns a
// simulated AIE tile with its own cycle clock. Kernel coroutines run
// functionally; their instrumented operation counts (src/aie/cycle_model)
// are converted to cycles with the VLIW cost model after each activation
// segment, stream/window accesses are charged at the access point, and
// cross-kernel data dependencies propagate time through per-item
// virtual-time stamps in the channels. A priority queue orders kernel
// activations by tile time, exactly like an event-driven RTL simulator.
//
// Detail levels:
//   * DetailLevel::event -- event-driven only; fast.
//   * DetailLevel::cycle -- additionally steps per-tile pipeline state for
//     every simulated cycle, reproducing the characteristic wall-clock cost
//     of cycle-approximate simulation (paper Table 2's aiesim column).
#pragma once

#include <coroutine>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aie/cycle_model.hpp"
#include "core/cgsim.hpp"
#include "cost_model.hpp"
#include "event_queue.hpp"
#include "placement.hpp"
#include "trace.hpp"

namespace aiesim {

enum class DetailLevel : std::uint8_t {
  event,  ///< event-driven virtual time only
  cycle,  ///< plus per-cycle tile pipeline stepping
};

/// Configuration of one cycle-approximate simulation run.
struct SimConfig {
  CostModel cost{};
  /// Model the extracted (generated) kernel I/O instead of the
  /// hand-optimized native stream access (paper Section 5.2).
  bool generated_io = false;
  DetailLevel detail = DetailLevel::event;
  double aie_mhz = 1250.0;  ///< paper Section 5.2 configuration
  double pl_mhz = 625.0;
  int repetitions = 1;  ///< input replay count (paper Table 2)
  /// Explicit kernel-to-tile placement (by kernel name); kernels not
  /// listed here get automatic snake placement on the array grid.
  std::map<std::string, TileCoord> placement{};
  int array_columns = 8;  ///< grid width used by automatic placement
};

/// Per-kernel (per simulated tile) accounting.
struct TileStats {
  std::string kernel;
  std::uint64_t busy_cycles = 0;   ///< compute + port-access cycles charged
  std::uint64_t final_clock = 0;   ///< tile time at quiescence
  std::uint64_t activations = 0;   ///< scheduler segments executed
  aie::OpCounts ops{};             ///< accumulated instrumentation

  /// Fraction of the makespan this tile spent busy.
  [[nodiscard]] double utilization(std::uint64_t makespan) const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(busy_cycles) /
                               static_cast<double>(makespan);
  }
};

/// Result of a simulation: functional statistics plus virtual timing.
struct SimResult {
  cgsim::RunResult run{};
  std::uint64_t virtual_cycles = 0;  ///< makespan over all tiles
  double ns_total = 0.0;             ///< makespan at the AIE clock
  Trace trace{};
  std::uint64_t output_items = 0;
  std::vector<TileStats> tiles;      ///< one entry per kernel

  /// Steady-state nanoseconds between output iterations.
  [[nodiscard]] double ns_per_iteration(double aie_mhz,
                                        std::size_t warmup = 1) const {
    return trace.mean_iteration_delta(warmup) * 1e3 / aie_mhz;
  }
};

/// The virtual-time executor + accounting hooks.
class SimEngine final : public cgsim::Executor, public cgsim::SimHooks {
 public:
  explicit SimEngine(const SimConfig& cfg) : cfg_(cfg) {}

  /// Collects per-task metadata and the set of global-output channels;
  /// call after all sources/sinks are attached.
  void bind(cgsim::RuntimeContext& ctx) {
    ctx_ = &ctx;
    const cgsim::GraphView& g = ctx.graph();
    for (const cgsim::FlatGlobal& out : g.outputs) {
      global_out_.insert(ctx.channel(out.edge));
    }
    for (const cgsim::FlatGlobal& in : g.inputs) {
      global_.insert(ctx.channel(in.edge));
    }
    for (const cgsim::FlatGlobal& out : g.outputs) {
      global_.insert(ctx.channel(out.edge));
    }
    // Kernel-to-tile placement: intra-array streams pay per-hop switch
    // latency proportional to the Manhattan distance between tiles.
    placement_ =
        Placement::explicit_by_name(g, cfg_.placement, cfg_.array_columns);
    for (std::size_t e = 0; e < g.edges.size(); ++e) {
      const int hops = placement_.edge_hops(g, static_cast<int>(e));
      if (hops > 0) {
        hop_cost_[ctx.channel(static_cast<int>(e))] =
            static_cast<std::uint64_t>(hops * cfg_.cost.hop_cycles + 0.5);
      }
    }
  }

  // --- Executor ---
  void make_ready(std::coroutine_handle<> h,
                  std::uint64_t not_before) override {
    TaskState& s = state_for(h);
    const std::uint64_t t = std::max(s.clock, not_before);
    queue_.push(Event{t, seq_++, h});
  }

  // --- SimHooks ---
  [[nodiscard]] std::uint64_t now() const override {
    if (current_ == nullptr) return 0;
    return segment_base_ + cfg_.cost.compute_cycles(current_->counter.counts) +
           port_pending_;
  }

  void charge_port_access(const cgsim::PortSettings& s,
                          std::size_t elem_bytes, bool is_read,
                          const cgsim::ChannelBase* ch) override {
    if (current_ == nullptr) return;
    const bool global_io = global_.contains(ch);
    const bool generated = cfg_.generated_io && current_->is_kernel;
    port_pending_ +=
        cfg_.cost.port_cycles(s, elem_bytes, global_io, generated);
    if (is_read) {
      // Charge stream-switch routing latency once per element, on the
      // consuming side.
      const auto hop = hop_cost_.find(ch);
      if (hop != hop_cost_.end()) port_pending_ += hop->second;
    }
    if (!is_read && current_->is_kernel && global_out_.contains(ch)) {
      trace_.record(now(), current_->name, ++current_->iterations);
      ++output_items_;
    }
  }

  /// Runs to quiescence. The context must already be bound and started.
  cgsim::RunResult run() {
    cgsim::RunResult r{};
    Event ev;
    while (queue_.pop(ev)) {
      TaskState& s = state_for(ev.h);
      segment_base_ = std::max(s.clock, ev.time);
      current_ = &s;
      port_pending_ = 0;
      s.counter.reset();
      {
        // Batched: records accumulate into a stack-local OpCounts and merge
        // into the tile counter once per activation (same final counts).
        aie::ScopedCounterBatch scoped{&s.counter};
        ev.h.resume();
      }
      ++r.resumes;
      const std::uint64_t end = segment_base_ +
                                cfg_.cost.compute_cycles(s.counter.counts) +
                                port_pending_;
      if (cfg_.detail == DetailLevel::cycle && end > s.clock) {
        step_cycles(end - s.clock);
      }
      s.busy_cycles += end - segment_base_;
      ++s.activations;
      s.total_ops += s.counter.counts;
      s.clock = end;
      makespan_ = std::max(makespan_, end);
      current_ = nullptr;
      if (ev.h.done()) ctx_->on_task_finished(ev.h);
    }
    r.virtual_cycles = makespan_;
    return r;
  }

  [[nodiscard]] const Trace& trace() const { return trace_; }
  [[nodiscard]] const Placement& placement() const { return placement_; }
  /// Per-kernel tile statistics, in no particular order.
  [[nodiscard]] std::vector<TileStats> tile_stats() const {
    std::vector<TileStats> out;
    for (const auto& [addr, s] : states_) {
      if (!s.is_kernel) continue;
      out.push_back(TileStats{s.name, s.busy_cycles, s.clock,
                              s.activations, s.total_ops});
    }
    return out;
  }
  [[nodiscard]] std::uint64_t makespan() const { return makespan_; }
  [[nodiscard]] std::uint64_t output_items() const { return output_items_; }
  /// Checksum of the per-cycle pipeline stepping; consuming it keeps the
  /// cycle-detail work observable.
  [[nodiscard]] std::uint64_t step_checksum() const { return checksum_; }

 private:
  struct TaskState {
    std::uint64_t clock = 0;
    aie::OpCounter counter{};
    std::uint64_t iterations = 0;
    std::string name;
    bool is_kernel = false;
    std::uint64_t busy_cycles = 0;
    std::uint64_t activations = 0;
    aie::OpCounts total_ops{};
  };

  TaskState& state_for(std::coroutine_handle<> h) {
    auto [it, inserted] = states_.try_emplace(h.address());
    if (inserted && ctx_ != nullptr) {
      if (const auto* rec = ctx_->record_for(h)) {
        it->second.name = rec->name;
        it->second.is_kernel = rec->kernel_index >= 0;
      }
    }
    return it->second;
  }

  /// Per-cycle tile bookkeeping for DetailLevel::cycle: steps a tile
  /// micro-model one cycle at a time -- VLIW pipeline stages, the vector
  /// register scoreboard, stream FIFO occupancies and memory-bank
  /// arbitration. Updating this state for every simulated cycle is what
  /// makes real cycle-approximate simulators (aiesim) orders of magnitude
  /// slower than functional simulation (paper Table 2).
  void step_cycles(std::uint64_t n) {
    std::uint64_t lfsr = lfsr_;
    std::uint64_t sum = checksum_;
    for (std::uint64_t i = 0; i < n; ++i) {
      lfsr = (lfsr >> 1) ^ ((~(lfsr & 1) + 1) & 0xD800000000000000ull);
      // Advance the 8-stage VLIW pipeline (issue -> writeback).
      for (int s = 7; s > 0; --s) {
        pipe_[s] = pipe_[s - 1] + (lfsr >> s & 1);
      }
      pipe_[0] = lfsr & 0xFF;
      // Age the 32-entry vector register scoreboard; retire ready entries.
      for (auto& r : scoreboard_) {
        r = r > 0 ? r - 1 : (lfsr >> 17) & 0x7;
        sum += r;
      }
      // Stream FIFO occupancies (2 in + 2 out x 16-deep model).
      for (auto& f : fifo_) {
        f = (f + ((lfsr >> 5) & 3)) & 0xF;
        sum += f;
      }
      // Memory-bank arbitration round-robin state (8 banks).
      for (auto& b : banks_) {
        b = (b + 1) & 7;
        sum ^= b;
      }
      sum += pipe_[7];
    }
    lfsr_ = lfsr;
    checksum_ = sum;
  }

  SimConfig cfg_;
  cgsim::RuntimeContext* ctx_ = nullptr;
  PriorityEventQueue queue_;
  std::unordered_map<void*, TaskState> states_;
  std::unordered_set<const cgsim::ChannelBase*> global_out_;
  std::unordered_set<const cgsim::ChannelBase*> global_;
  Placement placement_;
  std::unordered_map<const cgsim::ChannelBase*, std::uint64_t> hop_cost_;
  TaskState* current_ = nullptr;
  std::uint64_t segment_base_ = 0;
  std::uint64_t port_pending_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t makespan_ = 0;
  std::uint64_t output_items_ = 0;
  Trace trace_;
  std::uint64_t lfsr_ = 0x9E3779B97F4A7C15ull;
  std::uint64_t pipe_[8]{};
  std::uint64_t scoreboard_[32]{};
  std::uint64_t fifo_[64]{};
  std::uint64_t banks_[8]{};
  std::uint64_t checksum_ = 0;
};

/// Cycle-approximate simulation of a compute graph with positional data
/// sources and sinks, mirroring cgsim's invocation convention
/// (paper Section 3.7).
template <class... Args>
SimResult simulate(const cgsim::GraphView& g, const SimConfig& cfg,
                   Args&&... args) {
  SimEngine engine{cfg};
  cgsim::RuntimeContext ctx{g, cgsim::ExecMode::sim, &engine, &engine};
  cgsim::RunOptions opts{cgsim::ExecMode::sim, cfg.repetitions};
  std::size_t pos = 0;
  (cgsim::detail::attach_io(ctx, g, opts, pos++, std::forward<Args>(args)),
   ...);
  engine.bind(ctx);
  ctx.start_all();
  SimResult res{};
  res.run = ctx.finish(engine.run());
  res.virtual_cycles = engine.makespan();
  res.ns_total = static_cast<double>(res.virtual_cycles) * 1e3 / cfg.aie_mhz;
  res.trace = engine.trace();
  res.output_items = engine.output_items();
  res.tiles = engine.tile_stats();
  return res;
}

}  // namespace aiesim

// aiesim -- incremental cone re-simulation on top of the compiled-graph
// fast path.
//
// A ResimSession keeps one simulation instance warm across runs: the
// RuntimeContext (channels + kernel coroutines) is reset in place instead
// of reconstructed, the engine rebinds through the compiled-graph cache,
// and -- the centerpiece -- when only a subset of the inputs changed (an
// RTP sweep, a re-tuned parameter), only the *affected cone* of kernels is
// re-simulated. Everything outside the cone is skipped entirely: its edge
// traffic is replayed byte-for-byte from baseline recordings (EdgeTap) at
// the recorded virtual-time stamps, and its statistics, trace records and
// output data are spliced from the baseline result. Every paper-level
// observable is bit-identical to a full run -- trace digest, makespan,
// output items and data, per-tile busy cycles / final clock / iterations
// -- enforced by differential tests. Scheduler-execution metadata
// (TileStats::activations, RunResult::resumes, step_checksum) reflects the
// partial run instead: a stamp-paced replay wakes its consumer once per
// item where the original producer pushed a whole burst in one scheduler
// segment, so segment *counts* are not reproducible without recording the
// baseline's ring-occupancy history -- and they carry no timing meaning.
//
// Cone closure (fixpoint over the compiled adjacency):
//   (A) k in C  =>  every kernel consumer of k's out-edges joins C
//       (fresh traffic flows forward);
//   (B) k in C  =>  every kernel consumer of k's in-edges joins C
//       (those edges are re-fed -- by a fresh source, a replay task, or a
//       cone producer -- so all their consumers see fresh traffic);
//   (C) a live edge with any kernel producer in C pulls *all* its kernel
//       producers into C (an edge cannot be half-replayed);
//   (D) a live edge fed by a global input pulls its kernel producers into
//       C (a fresh source will feed it, so replay cannot stand in).
// An edge is *live* when any kernel endpoint is in C. After the fixpoint,
// every kernel consumer of a live edge is in C, and a live edge's kernel
// producers are either all in C or all skipped; the latter are *replay
// edges*, re-fed from their baseline tap by a zero-cost replay coroutine.
//
// Exactness preconditions (violations fall back to a full warm rerun):
//   * replay edges must be tappable, park-free in the baseline, and have
//     nondecreasing stamp sequences (then the replay's ring occupancy
//     matches the original producers' cycle for cycle, so the post-run
//     `blocked == 0` check is an exact no-backpressure-divergence proof);
//   * a replay push that parks means the re-simulated consumers exerted
//     backpressure the baseline never saw -- the run is discarded and
//     re-executed in full;
//   * skipped outputs need a byte-replayable baseline (tap or saved RTP
//     value); DetailLevel::cycle cannot splice its global micro-model.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "engine.hpp"

namespace aiesim {

/// A warm, incrementally re-runnable simulation of one compute graph.
///
///   ResimSession s{graph.view(), cfg};
///   auto base = s.run(in, rtp, out);              // full baseline run
///   for (float v : sweep) {
///     rtp = v;
///     auto r = s.resimulate({1}, in, rtp, out);   // input #1 changed
///   }
class ResimSession {
 public:
  ResimSession(const cgsim::GraphView& g, SimConfig cfg)
      : graph_(g), cfg_(std::move(cfg)) {
    // Adjacency is needed for cone analysis under both engine variants;
    // the reference variant simply ignores the tables at bind.
    compiled_ = CompiledGraphCache::instance().get_or_compile(
        graph_, cfg_.cost, cfg_.generated_io, cfg_.placement,
        cfg_.array_columns);
  }

  ResimSession(const ResimSession&) = delete;
  ResimSession& operator=(const ResimSession&) = delete;

  /// Full simulation (positional sources/sinks as in aiesim::simulate()).
  /// The first call builds the runtime instance; later calls reset it in
  /// place (warm rerun). The result becomes the baseline for resimulate().
  template <class... Args>
  SimResult run(Args&&... args) {
    EntryGuard guard{*this};
    check_arity(sizeof...(args));
    return full_run_impl([&] {
      std::size_t pos = 0;
      (attach_io_arg(pos++, std::forward<Args>(args)), ...);
    });
  }

  /// Runtime-arity variant of run() for graphs whose shape is only known
  /// at run time (the service daemon's wire-deserialized graphs): every
  /// global input and output is a T-typed stream. inputs.size() and
  /// outputs.size() must match the graph's global counts.
  template <class T>
  SimResult run_streams(const std::vector<std::vector<T>>& inputs,
                        std::vector<std::vector<T>>& outputs) {
    EntryGuard guard{*this};
    check_arity(inputs.size() + outputs.size());
    return full_run_impl(make_stream_attach<T>(inputs, outputs));
  }

  /// Runtime-arity variant of resimulate(); same baseline/dirty-set
  /// contract. Unchanged inputs ride the cone-limited incremental path,
  /// which is what makes a warm daemon session cheap to re-drive.
  template <class T>
  SimResult resimulate_streams(const std::vector<std::size_t>& dirty_inputs,
                               const std::vector<std::vector<T>>& inputs,
                               std::vector<std::vector<T>>& outputs) {
    EntryGuard guard{*this};
    check_arity(inputs.size() + outputs.size());
    return resimulate_impl(dirty_inputs,
                           make_stream_attach<T>(inputs, outputs));
  }

  /// Re-simulates after the inputs listed in `dirty_inputs` (indices into
  /// the graph's global inputs) changed. All arguments are passed again;
  /// inputs NOT listed as dirty must hold the same data as the *baseline*
  /// run -- that is the caller's contract that makes cone skipping sound.
  /// The baseline advances only on full runs (run(), a fallback inside
  /// this call, resimulate_with_cost()); an incremental splice leaves it
  /// in place, so across consecutive incremental calls the dirty set is
  /// cumulative: keep listing every input that differs from the baseline,
  /// not just the ones that changed since the previous resimulate().
  /// Falls back to a full warm rerun whenever incremental execution cannot
  /// be proven exact (see file header); query last_was_incremental().
  template <class... Args>
  SimResult resimulate(const std::vector<std::size_t>& dirty_inputs,
                       Args&&... args) {
    EntryGuard guard{*this};
    check_arity(sizeof...(args));
    return resimulate_impl(dirty_inputs, [&] {
      std::size_t pos = 0;
      (attach_io_arg(pos++, std::forward<Args>(args)), ...);
    });
  }

  /// Changes the cost model and re-runs in full (cost constants affect
  /// every kernel, so there is no cone to narrow to); the warm context and
  /// the compiled-graph cache still make this far cheaper than a fresh
  /// simulate(). The result becomes the new baseline.
  template <class... Args>
  SimResult resimulate_with_cost(const CostModel& cost, Args&&... args) {
    EntryGuard guard{*this};
    check_arity(sizeof...(args));
    cfg_.cost = cost;
    compiled_ = CompiledGraphCache::instance().get_or_compile(
        graph_, cfg_.cost, cfg_.generated_io, cfg_.placement,
        cfg_.array_columns);
    return full_run_impl([&] {
      std::size_t pos = 0;
      (attach_io_arg(pos++, std::forward<Args>(args)), ...);
    });
  }

  /// True when the previous resimulate() ran incrementally (cone splice),
  /// false when it fell back to a full rerun.
  [[nodiscard]] bool last_was_incremental() const {
    return last_was_incremental_;
  }
  /// Kernels re-simulated by the last incremental run (0 for an empty
  /// cone; meaningless after a full run).
  [[nodiscard]] std::size_t last_cone_size() const { return last_cone_size_; }
  [[nodiscard]] const SimResult& baseline() const { return base_result_; }
  [[nodiscard]] const CompiledGraph& compiled() const { return *compiled_; }

 private:
  enum class Phase { baseline, incremental };

  /// Thread-affinity guard on the public entry points. A session is warm,
  /// mutable state (engine, channels, taps): it may move between threads
  /// across calls, but two threads must never be inside it at once. Sweep
  /// workers are expected to *check sessions out* of a cgsim::SessionPool
  /// rather than share one; this guard turns an accidental share into a
  /// deterministic std::logic_error instead of silent state corruption.
  class EntryGuard {
   public:
    explicit EntryGuard(ResimSession& s) : s_(s) {
      std::thread::id expected{};
      if (!s_.active_thread_.compare_exchange_strong(
              expected, std::this_thread::get_id(),
              std::memory_order_acq_rel)) {
        throw std::logic_error{
            "ResimSession entered concurrently from two threads; check "
            "sessions out of a pool instead of sharing one"};
      }
    }
    EntryGuard(const EntryGuard&) = delete;
    EntryGuard& operator=(const EntryGuard&) = delete;
    ~EntryGuard() {
      s_.active_thread_.store(std::thread::id{}, std::memory_order_release);
    }

   private:
    ResimSession& s_;
  };

  void check_arity(std::size_t n_args) const {
    if (n_args != graph_.inputs.size() + graph_.outputs.size()) {
      throw std::invalid_argument{
          "graph invocation: expected one argument per global input and "
          "output"};
    }
  }

  /// Binds a uniform stream-typed I/O list (the runtime-arity entry
  /// points). Captures by reference; the caller's containers must outlive
  /// the returned closure's use inside the same public call.
  template <class T>
  std::function<void()> make_stream_attach(
      const std::vector<std::vector<T>>& inputs,
      std::vector<std::vector<T>>& outputs) {
    return [this, &inputs, &outputs] {
      std::size_t pos = 0;
      for (const std::vector<T>& in : inputs) attach_io_arg(pos++, in);
      for (std::vector<T>& out : outputs) attach_io_arg(pos++, out);
    };
  }

  /// Body of resimulate(), shared by the variadic and runtime-arity entry
  /// points. `attach_io` re-binds every global input/output (it is invoked
  /// again on every fallback path, matching the original re-bind-per-run
  /// behaviour).
  SimResult resimulate_impl(const std::vector<std::size_t>& dirty_inputs,
                            const std::function<void()>& attach_io) {
    for (std::size_t idx : dirty_inputs) {
      if (idx >= graph_.inputs.size()) {
        throw std::out_of_range{"dirty input index out of range"};
      }
    }
    if (!base_valid_ || cfg_.detail == DetailLevel::cycle) {
      return full_run_impl(attach_io);
    }
    compute_cone(dirty_inputs);
    const std::size_t n_kernels = graph_.kernels.size();
    std::size_t cone_size = 0;
    for (char c : in_cone_) cone_size += static_cast<std::size_t>(c);
    if (cone_size == 0) {
      // Nothing is affected: refill the caller's outputs from the
      // baseline and hand back the baseline result.
      phase_ = Phase::incremental;
      attach_io();
      last_was_incremental_ = true;
      last_cone_size_ = 0;
      return base_result_;
    }
    if (cone_size == n_kernels || !incremental_preconditions_hold()) {
      return full_run_impl(attach_io);
    }

    phase_ = Phase::incremental;
    post_run_.clear();
    replay_blocked_ = 0;
    engine_.emplace(cfg_);  // same address: channel hook pointers stay valid
    // Kernels outside the cone never run: the mask keeps their task slots
    // (started=false) but skips building their coroutine frames.
    ctx_->reset_for_rerun(&in_cone_);
    attach_io();
    for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
      if (!is_replay_edge(e)) continue;
      cgsim::ChannelBase* ch = ctx_->channel(static_cast<int>(e));
      cgsim::RuntimeContext::TaskRecord rec;
      rec.name = "replay#" + std::to_string(e);
      // The replay coroutine stands in for every skipped kernel producer;
      // listing the channel once per producer balances producer_done so
      // consumers see end-of-stream exactly when the baseline closed.
      const std::size_t n_prod = compiled_->edge_producer_kernels[e].size();
      rec.out_channels.assign(n_prod, ch);
      rec.task = graph_.edges[e].vtable().make_replay(
          ch, &taps_[e], &*engine_, &replay_blocked_);
      ctx_->push_task(std::move(rec));
    }
    engine_->bind(*ctx_, compiled_.get());
    ctx_->start_all();
    cgsim::RunResult r = ctx_->finish(engine_->run());
    if (replay_blocked_ != 0 || r.deadlocked) {
      // The cone diverged enough to push back into the replayed past (or
      // wedged); the incremental run is not exact -- discard it.
      return full_run_impl(attach_io);
    }
    for (auto& f : post_run_) f();
    last_was_incremental_ = true;
    last_cone_size_ = cone_size;
    return splice(std::move(r));
  }

  /// Body of run() / every full-rerun fallback.
  SimResult full_run_impl(const std::function<void()>& attach_io) {
    phase_ = Phase::baseline;
    post_run_.clear();
    engine_.emplace(cfg_);
    if (ctx_ == nullptr) {
      ctx_ = std::make_unique<cgsim::RuntimeContext>(
          graph_, cgsim::ExecMode::sim, &*engine_, &*engine_);
    } else {
      ctx_->reset_for_rerun();
    }
    const std::size_t n_edges = graph_.edges.size();
    taps_.resize(n_edges);
    tappable_.assign(n_edges, 0);
    for (std::size_t e = 0; e < n_edges; ++e) {
      taps_[e].clear();
      tappable_[e] = graph_.edges[e].vtable().attach_tap(
                         ctx_->channel(static_cast<int>(e)), &taps_[e])
                         ? 1
                         : 0;
    }
    attach_io();
    engine_->bind(*ctx_, compiled_.get());
    ctx_->start_all();
    SimResult res{};
    res.run = ctx_->finish(engine_->run());
    res.virtual_cycles = engine_->makespan();
    res.ns_total =
        static_cast<double>(res.virtual_cycles) * 1e3 / cfg_.aie_mhz;
    res.trace = engine_->trace();
    res.output_items = engine_->output_items();
    res.tiles = engine_->tile_stats();
    res.step_checksum = engine_->step_checksum();
    capture_baseline(res);
    for (auto& f : post_run_) f();
    last_was_incremental_ = false;
    return res;
  }

  void capture_baseline(const SimResult& res) {
    const std::size_t n_edges = graph_.edges.size();
    edge_parks_.assign(n_edges, 0);
    for (std::size_t e = 0; e < n_edges; ++e) {
      edge_parks_[e] = ctx_->channel(static_cast<int>(e))->push_parks();
    }
    base_tiles_ = engine_->tile_stats_by_kernel(graph_.kernels.size());
    io_clocks_.clear();
    for (auto& rec : ctx_->tasks()) {
      if (rec.kernel_index >= 0 || !rec.started) continue;
      io_clocks_[rec.name] = engine_->task_clock(rec.task.handle());
    }
    out_popped_.assign(graph_.outputs.size(), 0);
    for (std::size_t j = 0; j < graph_.outputs.size(); ++j) {
      const cgsim::FlatGlobal& go = graph_.outputs[j];
      if (go.endpoint >= 0) {
        out_popped_[j] = ctx_->channel(go.edge)->popped(go.endpoint);
      }
    }
    base_result_ = res;
    base_valid_ = !res.run.deadlocked;
  }

  // --- cone analysis ---

  void compute_cone(const std::vector<std::size_t>& dirty_inputs) {
    const std::size_t n_kernels = graph_.kernels.size();
    const std::size_t n_edges = graph_.edges.size();
    in_cone_.assign(n_kernels, 0);
    edge_live_.assign(n_edges, 0);
    input_edge_.assign(n_edges, 0);
    for (const cgsim::FlatGlobal& in : graph_.inputs) {
      input_edge_[static_cast<std::size_t>(in.edge)] = 1;
    }
    for (std::size_t idx : dirty_inputs) {
      const auto e = static_cast<std::size_t>(graph_.inputs[idx].edge);
      for (int k : compiled_->edge_consumer_kernels[e]) {
        in_cone_[static_cast<std::size_t>(k)] = 1;
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t k = 0; k < n_kernels; ++k) {
        if (in_cone_[k] == 0) continue;
        for (int e : compiled_->kernel_out_edges[k]) {
          edge_live_[static_cast<std::size_t>(e)] = 1;
        }
        for (int e : compiled_->kernel_in_edges[k]) {
          edge_live_[static_cast<std::size_t>(e)] = 1;
        }
      }
      for (std::size_t e = 0; e < n_edges; ++e) {
        if (edge_live_[e] == 0) continue;
        for (int c : compiled_->edge_consumer_kernels[e]) {  // rules A, B
          if (in_cone_[static_cast<std::size_t>(c)] == 0) {
            in_cone_[static_cast<std::size_t>(c)] = 1;
            changed = true;
          }
        }
        bool pull_producers = input_edge_[e] != 0;  // rule D
        for (int p : compiled_->edge_producer_kernels[e]) {  // rule C
          if (in_cone_[static_cast<std::size_t>(p)] != 0) pull_producers = true;
        }
        if (pull_producers) {
          for (int p : compiled_->edge_producer_kernels[e]) {
            if (in_cone_[static_cast<std::size_t>(p)] == 0) {
              in_cone_[static_cast<std::size_t>(p)] = 1;
              changed = true;
            }
          }
        }
      }
    }
  }

  /// Live edge whose kernel producers are all skipped: re-fed by replay.
  [[nodiscard]] bool is_replay_edge(std::size_t e) const {
    if (edge_live_[e] == 0) return false;
    const auto& prods = compiled_->edge_producer_kernels[e];
    if (prods.empty()) return false;  // fed by a global source only
    for (int p : prods) {
      if (in_cone_[static_cast<std::size_t>(p)] != 0) return false;
    }
    return true;
  }

  [[nodiscard]] bool incremental_preconditions_hold() const {
    for (std::size_t e = 0; e < graph_.edges.size(); ++e) {
      if (!is_replay_edge(e)) continue;
      if (tappable_[e] == 0) return false;
      if (edge_parks_[e] != 0) return false;
      const auto& stamps = taps_[e].stamps;
      for (std::size_t i = 1; i < stamps.size(); ++i) {
        // Non-monotone stamps (multi-producer interleaving) would let the
        // replay's ring occupancy lag the original producers', weakening
        // the blocked-push divergence check from exact to conservative.
        if (stamps[i] < stamps[i - 1]) return false;
      }
    }
    for (std::size_t j = 0; j < graph_.outputs.size(); ++j) {
      const auto e = static_cast<std::size_t>(graph_.outputs[j].edge);
      if (edge_live_[e] != 0) continue;  // skipped output: must be
      if (graph_.edges[e].settings.rtp) {  // reconstructible from baseline
        if (!saved_rtp_.contains(j)) return false;
      } else if (tappable_[e] == 0) {
        return false;
      }
    }
    // Trace records are spliced by kernel *name*; a name shared between a
    // cone kernel and a skipped kernel would splice ambiguously.
    std::set<std::string_view> cone_names;
    std::set<std::string_view> skip_names;
    for (std::size_t k = 0; k < graph_.kernels.size(); ++k) {
      (in_cone_[k] != 0 ? cone_names : skip_names).insert(graph_.kernels[k].name);
    }
    for (std::string_view n : cone_names) {
      if (skip_names.contains(n)) return false;
    }
    return true;
  }

  // --- I/O attachment (both phases) ---

  template <class Arg>
  void attach_io_arg(std::size_t pos, Arg&& arg) {
    using V = std::remove_cvref_t<Arg>;
    const bool is_input = pos < graph_.inputs.size();
    const std::size_t idx = is_input ? pos : pos - graph_.inputs.size();
    constexpr bool sinkable = std::is_lvalue_reference_v<Arg&&> &&
                              !std::is_const_v<std::remove_reference_t<Arg>>;
    if constexpr (cgsim::detail::DataContainer<V>) {
      using T = typename V::value_type;
      if (is_input) {
        if (skip_io(graph_.inputs[idx].edge)) return;
        ctx_->add_stream_source<T>(idx, std::span<const T>{arg},
                                   cfg_.repetitions);
      } else if constexpr (sinkable) {
        const int e = graph_.outputs[idx].edge;
        if (skip_io(e)) {
          fill_output_from_tap<T>(static_cast<std::size_t>(e), arg);
          return;
        }
        arg.clear();
        ctx_->add_stream_sink<T>(idx, arg);
      } else {
        throw std::invalid_argument{
            "graph output sink must be a mutable lvalue container"};
      }
    } else {
      if (is_input) {
        if (skip_io(graph_.inputs[idx].edge)) return;
        ctx_->add_rtp_source<V>(idx, V{arg});
      } else if constexpr (sinkable) {
        if (skip_io(graph_.outputs[idx].edge)) {
          restore_rtp_output<V>(idx, arg);
          return;
        }
        ctx_->add_rtp_sink<V>(idx, arg);
        if (phase_ == Phase::baseline) {
          // The sink finalizer writes into `arg` during finish(); capture
          // the settled value afterwards so a later skipped run can
          // restore it.
          post_run_.push_back([this, idx, &arg] { save_rtp_output(idx, arg); });
        }
      } else {
        throw std::invalid_argument{
            "runtime-parameter sink must be a mutable lvalue"};
      }
    }
  }

  [[nodiscard]] bool skip_io(int edge) const {
    return phase_ == Phase::incremental &&
           edge_live_[static_cast<std::size_t>(edge)] == 0;
  }

  template <class T, class C>
  void fill_output_from_tap(std::size_t edge, C& out) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      const cgsim::EdgeTap& tap = taps_[edge];
      out.clear();
      out.resize(tap.count());
      if (!tap.data.empty()) {
        std::memcpy(out.data(), tap.data.data(), tap.data.size());
      }
    } else {
      // Unreachable: incremental_preconditions_hold() requires a tappable
      // edge, and non-trivially-copyable edges are never tappable.
      throw std::logic_error{"untapped output cannot be restored"};
    }
  }

  template <class V>
  void save_rtp_output(std::size_t idx, const V& value) {
    if constexpr (std::is_trivially_copyable_v<V>) {
      auto& bytes = saved_rtp_[idx];
      bytes.resize(sizeof(V));
      std::memcpy(bytes.data(), &value, sizeof(V));
    }
  }

  template <class V>
  void restore_rtp_output(std::size_t idx, V& out) {
    if constexpr (std::is_trivially_copyable_v<V>) {
      const auto it = saved_rtp_.find(idx);
      if (it != saved_rtp_.end() && it->second.size() == sizeof(V)) {
        std::memcpy(&out, it->second.data(), sizeof(V));
      }
    }
  }

  // --- result splicing ---

  SimResult splice(cgsim::RunResult r) {
    const std::size_t n_kernels = graph_.kernels.size();
    SimResult out{};
    std::vector<TileStats> tiles = engine_->tile_stats_by_kernel(n_kernels);
    std::uint64_t makespan = engine_->makespan();
    for (std::size_t k = 0; k < n_kernels; ++k) {
      if (in_cone_[k] != 0) continue;
      tiles[k] = base_tiles_[k];
      makespan = std::max(makespan, tiles[k].final_clock);
    }
    for (std::size_t i = 0; i < graph_.inputs.size(); ++i) {
      if (edge_live_[static_cast<std::size_t>(graph_.inputs[i].edge)] != 0) {
        continue;
      }
      for (const char* prefix : {"source#", "rtp-source#"}) {
        const auto it = io_clocks_.find(prefix + std::to_string(i));
        if (it != io_clocks_.end()) makespan = std::max(makespan, it->second);
      }
    }
    for (std::size_t j = 0; j < graph_.outputs.size(); ++j) {
      const auto e = static_cast<std::size_t>(graph_.outputs[j].edge);
      if (edge_live_[e] != 0) continue;
      r.items_consumed += out_popped_[j];
      const auto it = io_clocks_.find("sink#" + std::to_string(j));
      if (it != io_clocks_.end()) makespan = std::max(makespan, it->second);
    }
    r.virtual_cycles = makespan;
    out.run = r;
    out.virtual_cycles = makespan;
    out.ns_total = static_cast<double>(makespan) * 1e3 / cfg_.aie_mhz;
    out.output_items = 0;
    for (const TileStats& t : tiles) out.output_items += t.iterations;
    // Merged trace: the partial run's records plus the baseline records of
    // skipped kernels, time-sorted. The digest is order-independent, so it
    // matches a full run's digest bit for bit. The merge works on interned
    // records -- each source's name table is remapped into the output trace
    // once up front, so no strings are copied or re-interned per record
    // (the baseline trace dominates splice cost on wide graphs).
    std::set<std::string_view> skipped_names;
    for (std::size_t k = 0; k < n_kernels; ++k) {
      if (in_cone_[k] == 0) skipped_names.insert(graph_.kernels[k].name);
    }
    const Trace& bt = base_result_.trace;
    const Trace& pt = engine_->trace();
    std::vector<std::uint32_t> bmap(bt.name_count(), Trace::kNoName);
    for (std::uint32_t i = 0; i < bmap.size(); ++i) {
      if (skipped_names.contains(bt.name(i))) {
        bmap[i] = out.trace.intern(bt.name(i));
      }
    }
    std::vector<std::uint32_t> pmap(pt.name_count(), Trace::kNoName);
    for (std::uint32_t i = 0; i < pmap.size(); ++i) {
      pmap[i] = out.trace.intern(pt.name(i));
    }
    // Each source was recorded by an engine that retires events in
    // nondecreasing virtual time, so the two record streams are already
    // time-sorted: a linear two-pointer merge (baseline records filtered
    // to skipped kernels on the fly) keeps the spliced trace time-sorted
    // without a comparison sort over the full record set.
    out.trace.reserve(0, bt.size() + pt.size());
    std::size_t i = 0;
    std::size_t j = 0;
    const std::size_t nb = bt.size();
    const std::size_t np = pt.size();
    const auto skip_cone_records = [&] {
      while (i < nb && bmap[bt.record_at(i).name] == Trace::kNoName) ++i;
    };
    skip_cone_records();
    while (i < nb || j < np) {
      if (i < nb &&
          (j >= np || bt.record_at(i).cycles <= pt.record_at(j).cycles)) {
        const Trace::Record& r = bt.record_at(i++);
        out.trace.record(r.cycles, bmap[r.name], r.iteration);
        skip_cone_records();
      } else {
        const Trace::Record& r = pt.record_at(j++);
        out.trace.record(r.cycles, pmap[r.name], r.iteration);
      }
    }
    out.tiles = tiles;
    std::sort(out.tiles.begin(), out.tiles.end(),
              [](const TileStats& a, const TileStats& b) {
                return a.kernel < b.kernel;
              });
    out.step_checksum = engine_->step_checksum();
    return out;
  }

  cgsim::GraphView graph_;
  SimConfig cfg_;
  std::shared_ptr<const CompiledGraph> compiled_;
  // Engine before context: the context's channels hold pointers INTO the
  // engine (executor + sim hooks), and `emplace` reconstructs the engine
  // at the same address so those stay valid across reruns.
  std::optional<SimEngine> engine_;
  std::unique_ptr<cgsim::RuntimeContext> ctx_;

  // Baseline capture.
  bool base_valid_ = false;
  SimResult base_result_{};
  std::vector<TileStats> base_tiles_;            ///< by kernel index
  std::map<std::string, std::uint64_t> io_clocks_;  ///< source/sink clocks
  std::vector<std::uint64_t> out_popped_;        ///< per output index
  std::vector<cgsim::EdgeTap> taps_;                    ///< per edge (stable ptrs)
  std::vector<char> tappable_;
  std::vector<std::uint64_t> edge_parks_;
  std::map<std::size_t, std::vector<std::byte>> saved_rtp_;

  // Per-call scratch.
  Phase phase_ = Phase::baseline;
  std::vector<char> in_cone_;
  std::vector<char> edge_live_;
  std::vector<char> input_edge_;
  std::vector<std::function<void()>> post_run_;
  std::uint64_t replay_blocked_ = 0;
  bool last_was_incremental_ = false;
  std::size_t last_cone_size_ = 0;

  // Thread currently inside a public entry point (default id = none).
  std::atomic<std::thread::id> active_thread_{};
};

}  // namespace aiesim

// aiesim -- VLIW / stream / window cost model for the cycle-approximate
// AIE-array simulator (DESIGN.md substitution #2 for AMD's aiesim).
//
// Timing sources, in the spirit of UG1079's published microarchitecture:
//   * Compute: the AIE tile is a VLIW core issuing, per cycle, one vector
//     op, one shuffle/permute, two 256-bit loads, one store, and two scalar
//     ops. A kernel activation's cycle count is the maximum over the slot
//     pressures (perfect software pipelining, which is what the
//     hand-optimized AMD kernels achieve), plus a per-activation pipeline
//     ramp.
//   * Stream I/O: 32-bit beats, one per AIE cycle; PLIO crossings run at
//     the PL clock (625 MHz vs 1250 MHz => 2 AIE cycles per beat). Each
//     access additionally pays a fixed stall/handshake cost.
//   * Extracted (generated) kernels reach streams through the adapter
//     thunk the extractor emits around KernelReadPort/KernelWritePort;
//     aiecompiler schedules an extra move per beat that does not always
//     pair into a free VLIW slot. This is the per-beat penalty the paper
//     names as the primary source of the <= 15 % throughput loss
//     (paper Section 5.2).
//   * Window (ping-pong) I/O: one lock acquire/release handshake per
//     window plus 256 bits per cycle of local-memory movement -- identical
//     for native and generated kernels, which is why the window-based IIR
//     example shows parity in Table 1.
#pragma once

#include <algorithm>
#include <cstdint>

#include "aie/cycle_model.hpp"
#include "core/port_config.hpp"

namespace aiesim {

/// Tunable cost-model constants (cycles at the AIE clock).
struct CostModel {
  // VLIW issue widths.
  double vector_slots = 1.0;
  double shuffle_slots = 1.0;
  double load_slots = 2.0;
  double store_slots = 1.0;
  double scalar_slots = 2.0;
  /// Charged once per kernel activation segment: kernel function call,
  /// loop prologue/epilogue and pipeline ramp (aiecompiler kernels pay a
  /// comparable per-invocation overhead on hardware).
  double activation_ramp = 12.0;

  // Stream access.
  int stream_beat_bits = 32;
  double plio_clock_ratio = 2.0;       ///< AIE 1250 MHz / PL 625 MHz
  double stream_access_overhead = 24.0;///< handshake + pipeline stall
  double generated_beat_factor = 1.4;  ///< adapter-thunk move per beat

  // Window (ping-pong buffer) access.
  double window_sync_cycles = 48.0;    ///< lock acquire + release
  double window_bytes_per_cycle = 32.0;///< 256-bit local memory port

  /// Stream-switch latency per routing hop between tiles (2D array,
  /// paper Section 1), charged per element on intra-array streams.
  double hop_cycles = 2.0;

  // Global-memory I/O (GMIO extension, paper Section 6 future work):
  // NoC burst DMA, immune to the adapter-thunk penalty like windows.
  double gmio_setup_cycles = 150.0;    ///< DMA descriptor + NoC round trip
  double gmio_bytes_per_cycle = 8.0;   ///< ~10 GB/s per GMIO port @ 1.25 GHz

  /// Converts a kernel activation's instrumentation into compute cycles.
  [[nodiscard]] std::uint64_t compute_cycles(const aie::OpCounts& c) const {
    const double vec =
        static_cast<double>(c[aie::OpClass::vector_mac] +
                            c[aie::OpClass::vector_alu] +
                            c[aie::OpClass::vector_shift]) /
        vector_slots;
    const double shuf =
        static_cast<double>(c[aie::OpClass::shuffle]) / shuffle_slots;
    const double ld = static_cast<double>(c[aie::OpClass::load]) / load_slots;
    const double st =
        static_cast<double>(c[aie::OpClass::store]) / store_slots;
    const double sc =
        static_cast<double>(c[aie::OpClass::scalar]) / scalar_slots;
    const double cyc = std::max({vec, shuf, ld, st, sc});
    if (cyc == 0.0) return 0;
    return static_cast<std::uint64_t>(cyc + activation_ramp + 0.5);
  }

  /// Cycles for moving one `elem_bytes` element through a port.
  /// `global_io` marks PLIO crossings; `generated` marks extracted kernels
  /// whose stream access goes through the adapter thunk.
  [[nodiscard]] std::uint64_t port_cycles(const cgsim::PortSettings& s,
                                          std::size_t elem_bytes,
                                          bool global_io,
                                          bool generated) const {
    if (global_io && s.io == cgsim::IoKind::gmio) {
      const double move =
          static_cast<double>(elem_bytes) / gmio_bytes_per_cycle;
      return static_cast<std::uint64_t>(gmio_setup_cycles + move + 0.5);
    }
    const bool window = s.buffer == cgsim::BufferMode::window ||
                        s.buffer == cgsim::BufferMode::pingpong;
    if (window) {
      const double move =
          static_cast<double>(elem_bytes) / window_bytes_per_cycle;
      return static_cast<std::uint64_t>(window_sync_cycles + move + 0.5);
    }
    const auto beat_bits = static_cast<std::size_t>(
        s.beat_bits == 0 ? stream_beat_bits : s.beat_bits);
    const auto beats = static_cast<double>(
        (elem_bytes * 8 + beat_bits - 1) / beat_bits);  // ceil, in beats
    double per_beat = global_io ? plio_clock_ratio : 1.0;
    if (generated) per_beat *= generated_beat_factor;
    return static_cast<std::uint64_t>(beats * per_beat +
                                      stream_access_overhead + 0.5);
  }
};

}  // namespace aiesim
